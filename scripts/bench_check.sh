#!/bin/sh
# Guard rail that instrumentation (or any other change) stayed off the hot
# paths: rerun the PR 1 benchmark family (pipeline experiments + geo), the
# PR 4 serving family (sharded cloud store vs legacy), and the PR 5
# eco-routing family (warm/cold queries, invalidation, /v1/route) and fail
# if any benchmark regresses more than its tolerance vs the committed
# baselines.
#
# Usage: scripts/bench_check.sh [pr1.json] [pr4.json] [pr5.json] [pr6.json] [pr7.json] [pr8.json] [pr9.json] [pr10.json]
#   BENCH_TOLERANCE_PCT           allowed ns/op regression for the PR 1
#                                 family (default 10)
#   BENCH_SERVING_TOLERANCE_PCT   allowed ns/op regression for the serving
#                                 family; parallel mixed-load benchmarks are
#                                 noisier, so the default is looser (30)
#   BENCH_ECOROUTE_TOLERANCE_PCT  allowed ns/op regression for the
#                                 eco-routing family; the cold-query and
#                                 invalidation benches re-integrate fuel
#                                 costs over the whole network per op, so
#                                 the default is looser (30)
#   BENCH_INGEST_TOLERANCE_PCT    allowed ns/op regression for the ingest
#                                 family (PR 6: batched submits, wire
#                                 decode); end-to-end HTTP benches are
#                                 noisy, so the default is looser (30)
#   BENCH_FUSION_TOLERANCE_PCT    allowed ns/op regression for the fusion
#                                 accumulator family (PR 7: plain vs robust
#                                 Add); the loops churn a fresh window slice
#                                 per op and are cache-sensitive, so the
#                                 default is looser (30)
#   BENCH_OBS_TOLERANCE_PCT       allowed ns/op regression for the traced
#                                 ingest family (PR 8: tracing off / 1% /
#                                 full); end-to-end HTTP benches are noisy,
#                                 so the default is looser (30)
#   OBS_OVERHEAD_PCT              allowed TracedIngestFull overhead over
#                                 TracedIngestOff in the fresh measurement —
#                                 the PR 8 acceptance bar (default 5)
#   BENCH_ROUTESCALE_TOLERANCE_PCT  allowed ns/op regression for the
#                                 routescale family (PR 9: ALT vs CCH at
#                                 1×/10×/100× scale); the 100× fixtures and
#                                 matrix benches are long-running and
#                                 cache-sensitive, so the default is the
#                                 loosest (40)
#   ROUTESCALE_P95_NS             CCH warm point-query p95 budget on the
#                                 100× (country-scale) graph — the PR 9
#                                 sub-millisecond acceptance bar
#                                 (default 1000000)
#   ROUTESCALE_SPEEDUP_MIN        required ALT/CCH p95 ratio on 100× point
#                                 queries — the PR 9 ≥10× claim. Tail, not
#                                 mean: both p95s come from the same
#                                 deterministic hardest pairs in one run,
#                                 while ALT's mean swings several-fold with
#                                 machine load (its search allocates ~800 KB
#                                 per query; CCH's a few KB), and
#                                 the serving SLO is a tail bar anyway
#                                 (default 10)
#   CUSTOMIZE_SPEEDUP_MIN         required full/incremental customization
#                                 ns/op ratio after a one-road tick on the
#                                 100× graph — the PR 9 ≥5× claim
#                                 (default 5)
#   BENCH_EMISSION_TOLERANCE_PCT  allowed ns/op regression for the emission
#                                 family (PR 10: city-table full build /
#                                 one-road incremental / warm cache hit, plus
#                                 pollutant-objective routing); the builds
#                                 integrate four pollutants over every 5 m
#                                 cell of the 164.8 km network per op, so the
#                                 default is looser (30)
#   EMISSION_ROUTE_P95_NS         warm pollutant-objective (min-NOx) point-
#                                 query p95 budget — pollutant objectives
#                                 must stay under the same 1 ms serving bar
#                                 as the fuel objective (default 1000000)
#   BENCH_COUNT                   runs per benchmark; the best run is
#                                 compared, which filters scheduler noise
#                                 (default 3)
set -eu

cd "$(dirname "$0")/.."
baseline1="${1:-BENCH_PR1.json}"
baseline4="${2:-BENCH_PR4.json}"
baseline5="${3:-BENCH_PR5.json}"
baseline6="${4:-BENCH_PR6.json}"
baseline7="${5:-BENCH_PR7.json}"
baseline8="${6:-BENCH_PR8.json}"
baseline9="${7:-BENCH_PR9.json}"
baseline10="${8:-BENCH_PR10.json}"
tol1="${BENCH_TOLERANCE_PCT:-10}"
tol4="${BENCH_SERVING_TOLERANCE_PCT:-30}"
tol5="${BENCH_ECOROUTE_TOLERANCE_PCT:-30}"
tol6="${BENCH_INGEST_TOLERANCE_PCT:-30}"
tol7="${BENCH_FUSION_TOLERANCE_PCT:-30}"
tol8="${BENCH_OBS_TOLERANCE_PCT:-30}"
overhead8="${OBS_OVERHEAD_PCT:-5}"
tol9="${BENCH_ROUTESCALE_TOLERANCE_PCT:-40}"
p95bar9="${ROUTESCALE_P95_NS:-1000000}"
speedup9="${ROUTESCALE_SPEEDUP_MIN:-10}"
custspeedup9="${CUSTOMIZE_SPEEDUP_MIN:-5}"
tol10="${BENCH_EMISSION_TOLERANCE_PCT:-30}"
p95bar10="${EMISSION_ROUTE_P95_NS:-1000000}"
count="${BENCH_COUNT:-3}"

for b in "$baseline1" "$baseline4" "$baseline5" "$baseline6" "$baseline7" "$baseline8" "$baseline9" "$baseline10"; do
    if [ ! -f "$b" ]; then
        echo "bench_check: baseline $b not found" >&2
        exit 1
    fi
done

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# compare measured-output-file baseline tolerance: compares the best
# (minimum) measured ns/op per benchmark against the baseline's ns/op.
compare() {
    awk -v tol="$3" -v baseline="$2" '
    BEGIN {
        # Parse the baseline JSON (the simple one-object-per-line form
        # bench.sh writes): pull "name" and "ns_per_op" pairs.
        while ((getline line < baseline) > 0) {
            if (match(line, /"name": "[^"]+"/)) {
                name = substr(line, RSTART + 9, RLENGTH - 10)
                if (match(line, /"ns_per_op": [0-9.e+]+/)) {
                    base[name] = substr(line, RSTART + 13, RLENGTH - 13) + 0
                }
            }
        }
        close(baseline)
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op") {
                ns = $(i - 1) + 0
                if (!(name in best) || ns < best[name]) best[name] = ns
            }
        }
    }
    END {
        fail = 0
        checked = 0
        for (name in base) {
            if (!(name in best)) {
                printf "bench_check: MISSING  %-28s (in baseline, not measured)\n", name
                fail = 1
                continue
            }
            checked++
            delta = (best[name] - base[name]) * 100 / base[name]
            status = "ok"
            if (delta > tol) { status = "REGRESSED"; fail = 1 }
            printf "bench_check: %-9s %-28s base %14.0f ns/op, now %14.0f ns/op (%+.1f%%)\n", \
                status, name, base[name], best[name], delta
        }
        if (checked == 0) {
            print "bench_check: no benchmarks compared" > "/dev/stderr"
            fail = 1
        }
        if (fail) {
            printf "bench_check: FAIL (tolerance %s%%)\n", tol
            exit 1
        }
        printf "bench_check: OK (%d benchmarks within %s%%)\n", checked, tol
    }
    ' "$1"
}

go test -run '^$' -bench 'BenchmarkFigure(9a|9b|10a|10b)' -benchmem -benchtime=1x -count="$count" . >"$tmp"
go test -run '^$' -bench 'BenchmarkClosestS' -benchmem -count="$count" ./internal/geo >>"$tmp"
compare "$tmp" "$baseline1" "$tol1"

go test -run '^$' -bench 'BenchmarkServer|BenchmarkHandleFused' -benchmem -count="$count" ./internal/cloud >"$tmp"
compare "$tmp" "$baseline4" "$tol4"

go test -run '^$' -bench 'BenchmarkEcoRoute' -benchmem -count="$count" ./internal/ecoroute ./internal/cloud >"$tmp"
compare "$tmp" "$baseline5" "$tol5"

go test -run '^$' -bench 'BenchmarkIngest' -benchmem -count="$count" ./internal/cloud >"$tmp"
compare "$tmp" "$baseline6" "$tol6"

go test -run '^$' -bench 'BenchmarkFusionAccAdd' -benchmem -count="$count" ./internal/fusion >"$tmp"
compare "$tmp" "$baseline7" "$tol7"

# The traced-ingest family measures a single-digit-percent effect, smaller
# than the slow wall-clock drift of a shared machine; sequential -count runs
# (all Off, then all Full, minutes apart) alias that drift into the Off/Full
# ratio. Interleave the configs round-robin at a fixed iteration count and
# compare the per-benchmark median round.
obsdir="$(mktemp -d)"
trap 'rm -f "$tmp"; rm -rf "$obsdir"' EXIT
go test -c -o "$obsdir/cloud.test" ./internal/cloud
: >"$obsdir/raw.txt"
round=0
while [ "$round" -lt "$count" ]; do
    for b in Off Sampled Full; do
        "$obsdir/cloud.test" -test.run '^$' -test.bench "BenchmarkTracedIngest${b}\$" \
            -test.benchmem -test.benchtime=40000x | grep '^Benchmark' >>"$obsdir/raw.txt"
    done
    round=$((round + 1))
done
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""
    for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i - 1) + 0
    if (ns == "") next
    n = cnt[name]++
    val[name, n] = ns
    line[name, n] = $0
    if (!(name in seen)) { seen[name] = ++names; byidx[names] = name }
}
END {
    for (k = 1; k <= names; k++) {
        name = byidx[k]
        m = cnt[name]
        for (a = 0; a < m; a++) idx[a] = a
        for (a = 0; a < m; a++)
            for (b = a + 1; b < m; b++)
                if (val[name, idx[b]] < val[name, idx[a]]) {
                    t = idx[a]; idx[a] = idx[b]; idx[b] = t
                }
        print line[name, idx[int(m / 2)]]
    }
}
' "$obsdir/raw.txt" >"$tmp"
compare "$tmp" "$baseline8" "$tol8"
# The PR 8 acceptance bar: in the medians just measured, the fully sampled
# path must stay within OBS_OVERHEAD_PCT of the tracing-off baseline.
awk -v tol="$overhead8" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") {
            ns = $(i - 1) + 0
            if (!(name in best) || ns < best[name]) best[name] = ns
        }
    }
}
END {
    off = best["BenchmarkTracedIngestOff"]
    full = best["BenchmarkTracedIngestFull"]
    if (off == 0 || full == 0) {
        print "bench_check: traced-ingest overhead gate: benchmarks missing" > "/dev/stderr"
        exit 1
    }
    overhead = (full - off) * 100 / off
    printf "bench_check: traced-ingest overhead: off %.0f ns/op, full %.0f ns/op (%+.1f%%, bar %s%%)\n", \
        off, full, overhead, tol
    if (overhead > tol) {
        print "bench_check: FAIL (full tracing overhead above the bar)"
        exit 1
    }
    print "bench_check: OK (observability overhead within the bar)"
}
' "$tmp"

# The routescale family (PR 9): regression check against the baseline, then
# the three country-scale acceptance bars measured fresh — CCH p95 under a
# millisecond on the 100× graph, CCH's p95 at least ROUTESCALE_SPEEDUP_MIN
# times below ALT's there, and incremental re-customization at least
# CUSTOMIZE_SPEEDUP_MIN times cheaper than a full pass.
go test -run '^$' -bench 'BenchmarkRouteScale' -benchmem -timeout 30m -count="$count" ./internal/ecoroute ./internal/road >"$tmp"
compare "$tmp" "$baseline9" "$tol9"
awk -v p95bar="$p95bar9" -v qmin="$speedup9" -v cmin="$custspeedup9" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") {
            ns = $(i - 1) + 0
            if (!(name in best) || ns < best[name]) best[name] = ns
        }
        if ($(i) == "p95-ns") {
            p = $(i - 1) + 0
            if (!(name in p95) || p < p95[name]) p95[name] = p
        }
    }
}
END {
    fail = 0
    cchP95 = p95["BenchmarkRouteScaleCCHQuery100x"]
    altP95 = p95["BenchmarkRouteScaleALTQuery100x"]
    full = best["BenchmarkRouteScaleCCHCustomizeFull100x"]
    incr = best["BenchmarkRouteScaleCCHRecustomizeTick100x"]
    if (cchP95 == 0 || altP95 == 0 || full == 0 || incr == 0) {
        print "bench_check: routescale gates: benchmarks missing" > "/dev/stderr"
        exit 1
    }
    printf "bench_check: routescale CCH 100x p95 %.0f ns (bar %s ns)\n", cchP95, p95bar
    if (cchP95 > p95bar) { print "bench_check: FAIL (country-scale p95 above the bar)"; fail = 1 }
    printf "bench_check: routescale ALT/CCH 100x p95 speedup %.1fx (bar %sx)\n", altP95 / cchP95, qmin
    if (altP95 / cchP95 < qmin) { print "bench_check: FAIL (CCH speedup below the bar)"; fail = 1 }
    printf "bench_check: routescale full/incremental customization %.1fx (bar %sx)\n", full / incr, cmin
    if (full / incr < cmin) { print "bench_check: FAIL (incremental customization speedup below the bar)"; fail = 1 }
    if (fail) exit 1
    print "bench_check: OK (routescale acceptance bars hold)"
}
' "$tmp"

# The emission family (PR 10): regression check against the baseline, then
# two acceptance bars read from the same fresh run — the full city-table
# build must stay within tolerance of the committed baseline (checked by
# compare above), and warm pollutant-objective routing must keep its query
# p95 under the existing 1 ms serving bar.
go test -run '^$' -bench 'BenchmarkEmission' -benchmem -count="$count" ./internal/cloud ./internal/ecoroute >"$tmp"
compare "$tmp" "$baseline10" "$tol10"
awk -v p95bar="$p95bar10" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($(i) == "p95-ns") {
            p = $(i - 1) + 0
            if (!(name in p95) || p < p95[name]) p95[name] = p
        }
    }
}
END {
    q = p95["BenchmarkEmissionRouteQuery"]
    if (q == 0) {
        print "bench_check: emission routing p95 gate: benchmark missing" > "/dev/stderr"
        exit 1
    }
    printf "bench_check: emission (min-NOx) routing p95 %.0f ns (bar %s ns)\n", q, p95bar
    if (q > p95bar) {
        print "bench_check: FAIL (pollutant-objective query p95 above the bar)"
        exit 1
    }
    print "bench_check: OK (pollutant routing holds the serving bar)"
}
' "$tmp"
