#!/bin/sh
# Runs the tier-1 benchmark families and writes JSON snapshots with ns/op,
# B/op and allocs/op per benchmark:
#
#   - the Figure 9/10 experiments plus the geo ClosestS micro-benchmarks
#     (PR 1 baseline),
#   - the cloud serving benchmarks — sharded store vs the pre-sharding
#     legacy path (PR 4 baseline),
#   - the eco-routing benchmarks — warm/cold query latency, invalidation
#     cost, and the warm /v1/route serving path (PR 5 baseline), and
#   - the ingest benchmarks — per-submission cost of single-JSON vs batched
#     JSON/binary submits, plus wire-batch decode (PR 6 baseline), and
#   - the fusion accumulator benchmarks — plain Accumulator.Add vs the
#     robust policies (naive/huber/trimmed) on the same workload
#     (PR 7 baseline).
#
# Usage: scripts/bench.sh [pr1.json] [pr4.json] [pr5.json] [pr6.json] [pr7.json]
#   (defaults BENCH_PR1.json, BENCH_PR4.json, BENCH_PR5.json, BENCH_PR6.json,
#   BENCH_PR7.json)
set -eu

cd "$(dirname "$0")/.."
out1="${1:-BENCH_PR1.json}"
out4="${2:-BENCH_PR4.json}"
out5="${3:-BENCH_PR5.json}"
out6="${4:-BENCH_PR6.json}"
out7="${5:-BENCH_PR7.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# emit_json parses `BenchmarkName  iters  ns/op  B/op  allocs/op` lines from
# the file in $1 into a JSON array on stdout.
emit_json() {
    awk '
    BEGIN { print "[" }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
        ns = ""; bytes = ""; allocs = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i-1)
            if ($(i) == "B/op")      bytes = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { print "\n]" }
    ' "$1"
}

go test -run '^$' -bench 'BenchmarkFigure(9a|9b|10a|10b)' -benchmem -benchtime=1x . >"$tmp"
go test -run '^$' -bench 'BenchmarkClosestS' -benchmem ./internal/geo >>"$tmp"
emit_json "$tmp" >"$out1"
echo "wrote $out1:"
cat "$out1"

go test -run '^$' -bench 'BenchmarkServer|BenchmarkHandleFused' -benchmem ./internal/cloud >"$tmp"
emit_json "$tmp" >"$out4"
echo "wrote $out4:"
cat "$out4"

go test -run '^$' -bench 'BenchmarkEcoRoute' -benchmem ./internal/ecoroute ./internal/cloud >"$tmp"
emit_json "$tmp" >"$out5"
echo "wrote $out5:"
cat "$out5"

go test -run '^$' -bench 'BenchmarkIngest' -benchmem ./internal/cloud >"$tmp"
emit_json "$tmp" >"$out6"
echo "wrote $out6:"
cat "$out6"

go test -run '^$' -bench 'BenchmarkFusionAccAdd' -benchmem ./internal/fusion >"$tmp"
emit_json "$tmp" >"$out7"
echo "wrote $out7:"
cat "$out7"
