#!/bin/sh
# Runs the tier-1 benchmark families and writes JSON snapshots with ns/op,
# B/op and allocs/op per benchmark:
#
#   - the Figure 9/10 experiments plus the geo ClosestS micro-benchmarks
#     (PR 1 baseline),
#   - the cloud serving benchmarks — sharded store vs the pre-sharding
#     legacy path (PR 4 baseline),
#   - the eco-routing benchmarks — warm/cold query latency, invalidation
#     cost, and the warm /v1/route serving path (PR 5 baseline), and
#   - the ingest benchmarks — per-submission cost of single-JSON vs batched
#     JSON/binary submits, plus wire-batch decode (PR 6 baseline), and
#   - the fusion accumulator benchmarks — plain Accumulator.Add vs the
#     robust policies (naive/huber/trimmed) on the same workload
#     (PR 7 baseline), and
#   - the traced-ingest benchmarks — the mixed ingest path with tracing off,
#     1% head-sampled, and fully sampled, interleaved round-robin and
#     reduced to per-benchmark medians; Full vs Off is the observability
#     overhead claim (PR 8 baseline), and
#   - the routescale benchmarks — ALT vs CCH point queries at 1×/10×/100×
#     the paper's network, the full vs incremental customization pair, the
#     many-to-many matrices, and the road CSR-vs-map adjacency sweep
#     (PR 9 baseline; the 100× fixtures make this the slowest family), and
#   - the emission benchmarks — the city emission table (full build,
#     one-road incremental, warm cache hit) and the pollutant-objective
#     routing path (warm min-NOx queries with the p95 the acceptance bar
#     reads, plus the lazy per-bucket row build) (PR 10 baseline).
#
# Usage: scripts/bench.sh [pr1.json] [pr4.json] [pr5.json] [pr6.json] [pr7.json] [pr8.json] [pr9.json] [pr10.json]
#   (defaults BENCH_PR1.json, BENCH_PR4.json, BENCH_PR5.json, BENCH_PR6.json,
#   BENCH_PR7.json, BENCH_PR8.json, BENCH_PR9.json, BENCH_PR10.json)
set -eu

cd "$(dirname "$0")/.."
out1="${1:-BENCH_PR1.json}"
out4="${2:-BENCH_PR4.json}"
out5="${3:-BENCH_PR5.json}"
out6="${4:-BENCH_PR6.json}"
out7="${5:-BENCH_PR7.json}"
out8="${6:-BENCH_PR8.json}"
out9="${7:-BENCH_PR9.json}"
out10="${8:-BENCH_PR10.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# emit_json parses `BenchmarkName  iters  ns/op  B/op  allocs/op` lines from
# the file in $1 into a JSON array on stdout.
emit_json() {
    awk '
    BEGIN { print "[" }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
        ns = ""; bytes = ""; allocs = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i-1)
            if ($(i) == "B/op")      bytes = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { print "\n]" }
    ' "$1"
}

# median_rounds reduces repeated `BenchmarkName ...` lines in the file in $1
# to one line per benchmark: the round whose ns/op is the median. Medians of
# interleaved rounds (rather than the best of sequential ones) keep slow
# machine drift from aliasing into cross-benchmark ratios.
median_rounds() {
    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""
        for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i - 1) + 0
        if (ns == "") next
        n = cnt[name]++
        val[name, n] = ns
        line[name, n] = $0
        if (!(name in seen)) { seen[name] = ++names; byidx[names] = name }
    }
    END {
        for (k = 1; k <= names; k++) {
            name = byidx[k]
            m = cnt[name]
            for (a = 0; a < m; a++) idx[a] = a
            for (a = 0; a < m; a++)
                for (b = a + 1; b < m; b++)
                    if (val[name, idx[b]] < val[name, idx[a]]) {
                        t = idx[a]; idx[a] = idx[b]; idx[b] = t
                    }
            print line[name, idx[int(m / 2)]]
        }
    }
    ' "$1"
}

go test -run '^$' -bench 'BenchmarkFigure(9a|9b|10a|10b)' -benchmem -benchtime=1x . >"$tmp"
go test -run '^$' -bench 'BenchmarkClosestS' -benchmem ./internal/geo >>"$tmp"
emit_json "$tmp" >"$out1"
echo "wrote $out1:"
cat "$out1"

go test -run '^$' -bench 'BenchmarkServer|BenchmarkHandleFused' -benchmem ./internal/cloud >"$tmp"
emit_json "$tmp" >"$out4"
echo "wrote $out4:"
cat "$out4"

go test -run '^$' -bench 'BenchmarkEcoRoute' -benchmem ./internal/ecoroute ./internal/cloud >"$tmp"
emit_json "$tmp" >"$out5"
echo "wrote $out5:"
cat "$out5"

go test -run '^$' -bench 'BenchmarkIngest' -benchmem ./internal/cloud >"$tmp"
emit_json "$tmp" >"$out6"
echo "wrote $out6:"
cat "$out6"

go test -run '^$' -bench 'BenchmarkFusionAccAdd' -benchmem ./internal/fusion >"$tmp"
emit_json "$tmp" >"$out7"
echo "wrote $out7:"
cat "$out7"

# The traced-ingest family measures a single-digit-percent effect on
# machines whose wall clock drifts by more than that between invocations;
# sequential runs (all Off, then all Full, minutes apart) alias the drift
# into the Off/Full ratio. Build the test binary once, interleave the
# configs round-robin at a fixed iteration count, and snapshot the
# per-benchmark median round.
obsdir="$(mktemp -d)"
trap 'rm -f "$tmp"; rm -rf "$obsdir"' EXIT
go test -c -o "$obsdir/cloud.test" ./internal/cloud
: >"$tmp"
round=0
rounds="${BENCH_OBS_ROUNDS:-5}"
while [ "$round" -lt "$rounds" ]; do
    for b in Off Sampled Full; do
        "$obsdir/cloud.test" -test.run '^$' -test.bench "BenchmarkTracedIngest${b}\$" \
            -test.benchmem -test.benchtime=40000x | grep '^Benchmark' >>"$tmp"
    done
    round=$((round + 1))
done
median_rounds "$tmp" >"$obsdir/median.txt"
emit_json "$obsdir/median.txt" >"$out8"
echo "wrote $out8:"
cat "$out8"

# The routescale family builds the 10× and 100× country networks and both
# engines' preprocessed structures once per process, then times queries and
# customizations; the one-time fixtures dominate the wall clock, hence the
# long -timeout.
go test -run '^$' -bench 'BenchmarkRouteScale' -benchmem -timeout 30m ./internal/ecoroute ./internal/road >"$tmp"
emit_json "$tmp" >"$out9"
echo "wrote $out9:"
cat "$out9"

go test -run '^$' -bench 'BenchmarkEmission' -benchmem ./internal/cloud ./internal/ecoroute >"$tmp"
emit_json "$tmp" >"$out10"
echo "wrote $out10:"
cat "$out10"
