#!/bin/sh
# Runs the tier-1 benchmark family (Figure 9/10 experiments plus the geo
# ClosestS micro-benchmarks) and writes a JSON snapshot with ns/op, B/op and
# allocs/op per benchmark.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_PR1.json)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR1.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkFigure(9a|9b|10a|10b)' -benchmem -benchtime=1x . >"$tmp"
go test -run '^$' -bench 'BenchmarkClosestS' -benchmem ./internal/geo >>"$tmp"

# Parse `BenchmarkName  iters  ns/op  B/op  allocs/op` lines into JSON.
awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
