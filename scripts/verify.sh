#!/usr/bin/env bash
# Tier-1 verification gate: formatting, vet, build, and the full test suite
# under the race detector. CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (serving concurrency gate) =="
# The sharded cloud store, the fusion accumulator, and the eco-routing
# engine (atomic snapshot swap + landmark cache) are the packages with real
# lock hierarchies; run them first, uncached, so a data race there fails
# fast with a focused report.
go test -race -count=1 ./internal/cloud/... ./internal/fusion/... ./internal/ecoroute/...

echo "== go test -race (write coalescer gate) =="
# The batched-ingest coalescer interleaves enqueue, per-shard folding, and
# Close-time draining; hammer exactly those tests uncached so a regression
# in the shutdown or idempotency interleavings fails with a focused report.
go test -race -count=2 -run 'TestCoalescer|TestKeyRingConcurrent|TestBatched' ./internal/cloud

echo "== go test -race (robust fusion / device trust gate) =="
# The trust-weighted fusion path threads per-device state (reputation, bias)
# through the submit door, the batch codec, and the coalescer fold under a
# road-lock -> device-lock hierarchy; run the robust/device tests uncached so
# a determinism or locking regression fails with a focused report.
go test -race -count=1 -run 'TestRobust|TestDevice' ./internal/fusion ./internal/cloud

echo "== go test -race (contraction / customization gate) =="
# The CCH splits work across one-time contraction, per-metric customization
# (copy-on-write weight tables with refcounted recycling behind cchWMu), and
# lock-free query reads; the road CSR build feeds the node ordering. Run the
# CCH and determinism tests uncached and concurrently so a torn weight table
# or a non-deterministic ordering fails with a focused report.
go test -race -count=1 -run 'TestCCH|TestMatrixCtx|Deterministic|TestNetworkCSR' ./internal/ecoroute ./internal/road

echo "== go test -race (observability gate) =="
# The tracer ring, the tail-sampling trace store (late-span merge, linked-in
# fold spans), the SLO engine, and the traced ingest path (traceparent
# propagation across client retries and the coalescer queue) all run under
# concurrent submitters; run them uncached so a race or a lost span fails
# with a focused report.
go test -race -count=1 ./internal/obs/...
go test -race -count=2 -run 'TestTrace|TestSLO|TestExemplar|TestExposition|TestHealthz' ./internal/obs ./internal/cloud ./cmd/cloudfuse

echo "== go test -race (emission / pollutant routing gate) =="
# The emission path spans the opMode bin tables, the lazily built per-bucket
# pollutant cost rows inside the routing snapshot (sync.Once + atomic flag
# under concurrent queries), and the generation-keyed city-table cache on the
# cloud server; run those tests uncached so a torn row build, a stale table
# generation, or a Dijkstra/ALT/CCH pollutant-route mismatch fails with a
# focused report.
go test -race -count=1 -run 'TestOpMode|TestTripEmissions|TestEmission|TestRate|TestPollutant|TestPlanEmissions|TestMinNOx|TestObjective' \
    ./internal/emission ./internal/fuel ./internal/ecoroute ./internal/cloud

echo "== go test -race =="
go test -race ./...

echo "verify: OK"
