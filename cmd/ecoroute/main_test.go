package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"roadgrade/internal/ecoroute"
	"roadgrade/internal/road"
)

// TestUnknownObjectiveError: an unrecognized -objective must produce an error
// (the CLI exits non-zero on any run() error) whose message carries every
// valid objective — the same catalogue the engine's parser accepts.
func TestUnknownObjectiveError(t *testing.T) {
	err := unknownObjectiveError("scenic")
	if err == nil {
		t.Fatal("expected an error for an unknown objective")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"scenic"`) {
		t.Errorf("message does not name the bad objective: %q", msg)
	}
	objs := ecoroute.Objectives()
	if len(objs) < 8 {
		t.Fatalf("only %d objectives registered", len(objs))
	}
	for _, o := range objs {
		if !strings.Contains(msg, o.String()) {
			t.Errorf("message lacks valid objective %q: %q", o.String(), msg)
		}
	}
	if !strings.HasSuffix(msg, objectiveListText()) {
		t.Errorf("error does not end with the objective listing: %q", msg)
	}
	// Every listed objective must round-trip through the parser.
	for _, line := range strings.Split(objectiveListText(), "\n") {
		if _, err := ecoroute.ParseObjective(line); err != nil {
			t.Errorf("listed objective %q does not parse: %v", line, err)
		}
	}
}

func testEngine(t *testing.T) (*ecoroute.Engine, *road.Network) {
	t.Helper()
	net, err := road.GenerateNetwork(31, road.NetworkConfig{TargetStreetKM: 5})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	eng, err := ecoroute.NewEngine(net, ecoroute.TruthSource{}, ecoroute.Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return eng, net
}

// TestPanelRowsOrdered: the panel must report distance and time baselines
// first, then the requested eco objective, with the eco planner's fuel mean
// at or below both baselines'.
func TestPanelQueryMeans(t *testing.T) {
	eng, net := testEngine(t)
	objectives := []ecoroute.Objective{ecoroute.Distance, ecoroute.Time, ecoroute.Fuel}
	rows := make([]panelRow, 0, len(objectives))
	// Reuse the CLI's sampling logic indirectly by running a small panel
	// through panelQuery's core loop shape.
	sample := [][2]int{}
	for i := 0; len(sample) < 10; i++ {
		f := net.Nodes[(i*7)%len(net.Nodes)].ID
		to := net.Nodes[(i*13+5)%len(net.Nodes)].ID
		if f == to {
			continue
		}
		if _, err := eng.Route(ecoroute.Distance, 40, f, to); err != nil {
			continue
		}
		sample = append(sample, [2]int{f, to})
	}
	for _, o := range objectives {
		row := panelRow{Objective: o.String(), Pairs: len(sample)}
		for _, p := range sample {
			plan, err := eng.Route(o, 40, p[0], p[1])
			if err != nil {
				t.Fatalf("%s %d→%d: %v", o, p[0], p[1], err)
			}
			row.MeanLengthM += plan.LengthM
			row.MeanFuelGal += plan.FuelGal
		}
		k := float64(len(sample))
		row.MeanLengthM /= k
		row.MeanFuelGal /= k
		rows = append(rows, row)
	}
	if rows[2].MeanFuelGal > rows[0].MeanFuelGal || rows[2].MeanFuelGal > rows[1].MeanFuelGal {
		t.Errorf("min-fuel mean %.4f gal above a baseline (%.4f / %.4f)",
			rows[2].MeanFuelGal, rows[0].MeanFuelGal, rows[1].MeanFuelGal)
	}
	if rows[0].MeanLengthM > rows[1].MeanLengthM || rows[0].MeanLengthM > rows[2].MeanLengthM {
		t.Errorf("shortest mean length %.1f m above a baseline", rows[0].MeanLengthM)
	}
	// The wire form must round-trip for -format json consumers.
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []panelRow
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(rows) || math.Abs(back[2].MeanFuelGal-rows[2].MeanFuelGal) > 1e-12 {
		t.Error("panel rows did not round-trip through JSON")
	}
}
