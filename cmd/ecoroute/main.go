// Command ecoroute plans fuel/emission-optimal routes over a generated road
// network using the ground-truth gradient map — the offline counterpart of
// the cloud service's GET /v1/route.
//
// Usage:
//
//	ecoroute [-seed 1827] [-km 164.8] [-speed 40] [-objective fuel] \
//	         [-from N -to M | -pairs K] [-format table|json]
//
// With -from/-to it answers one query under every objective (the comparison a
// driver would want before picking a route). With -pairs it samples K random
// origin/destination pairs and reports the panel means per planner, like the
// `gradebench -exp ecoroutes` table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	"roadgrade/internal/ecoroute"
	"roadgrade/internal/emission"
	"roadgrade/internal/road"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ecoroute: %v\n", err)
		os.Exit(1)
	}
}

// objectiveListText renders the valid -objective values, one per line, in
// the engine's canonical order.
func objectiveListText() string {
	names := make([]string, 0, len(ecoroute.Objectives()))
	for _, o := range ecoroute.Objectives() {
		names = append(names, o.String())
	}
	return strings.Join(names, "\n")
}

// unknownObjectiveError builds the error for an unrecognized -objective
// value: the message carries every valid objective, so the CLI exits
// non-zero with the full catalogue (mirrors gradebench's unknown -exp).
func unknownObjectiveError(name string) error {
	return fmt.Errorf("unknown objective %q; valid objectives:\n%s", name, objectiveListText())
}

func run() error {
	seed := flag.Int64("seed", 1827, "network generator seed (1827 = the Charlottesville-scale network)")
	km := flag.Float64("km", 164.8, "target street length of the generated network (km)")
	speed := flag.Float64("speed", 40, "cruise speed (km/h), snapped to the engine's buckets")
	objective := flag.String("objective", "fuel", "routing objective: distance | time | fuel | co2 | nox | co | hc | pm")
	from := flag.Int("from", -1, "origin node id (with -to: single-query mode)")
	to := flag.Int("to", -1, "destination node id")
	pairs := flag.Int("pairs", 0, "sample this many random O/D pairs and report planner means")
	format := flag.String("format", "table", "output format: table | json")
	engine := flag.String("engine", "alt", "search engine: alt (landmark A*) | cch (contraction hierarchy, for country-scale -km)")
	flag.Parse()

	if *format != "table" && *format != "json" {
		return fmt.Errorf("unknown -format %q (want table | json)", *format)
	}
	obj, err := ecoroute.ParseObjective(*objective)
	if err != nil {
		return unknownObjectiveError(*objective)
	}
	alg, err := ecoroute.ParseAlgorithm(*engine)
	if err != nil {
		return err
	}
	net, err := road.GenerateNetwork(*seed, road.NetworkConfig{TargetStreetKM: *km})
	if err != nil {
		return err
	}
	eng, err := ecoroute.NewEngine(net, ecoroute.TruthSource{}, ecoroute.Config{Algorithm: alg})
	if err != nil {
		return err
	}

	switch {
	case *from >= 0 && *to >= 0:
		return singleQuery(eng, *speed, *from, *to, *format)
	case *pairs > 0:
		return panelQuery(eng, net, obj, *speed, *pairs, *seed, *format)
	default:
		return fmt.Errorf("need either -from and -to, or -pairs")
	}
}

// singleQuery answers one O/D query under every objective so the outputs can
// be compared side by side. Pollutant grams are filled for every plan (not
// just the pollutant objectives' own) so the table shows what a min-fuel
// route costs in NOx and vice versa.
func singleQuery(eng *ecoroute.Engine, speed float64, from, to int, format string) error {
	plans := make([]ecoroute.Plan, 0, len(ecoroute.Objectives()))
	for _, obj := range ecoroute.Objectives() {
		p, err := eng.Route(obj, speed, from, to)
		if err != nil {
			return err
		}
		if p.EmisG == (emission.Grams{}) {
			if p.EmisG, err = eng.PlanEmissions(p); err != nil {
				return err
			}
		}
		plans = append(plans, p)
	}
	if format == "json" {
		return json.NewEncoder(os.Stdout).Encode(plans)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "objective\troads\tlength (km)\ttime (s)\tfuel (gal)\tCO2 (kg)\tCO (g)\tNOx (g)\tHC (g)\tPM2.5 (g)")
	for _, p := range plans {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.1f\t%.4f\t%.3f\t%.2f\t%.3f\t%.3f\t%.4f\n",
			p.Objective, len(p.RoadIDs), p.LengthM/1000, p.TimeS, p.FuelGal, p.CO2G/1000,
			p.EmisG[emission.CO], p.EmisG[emission.NOx], p.EmisG[emission.HC], p.EmisG[emission.PM25])
	}
	return w.Flush()
}

// panelRow is one planner's panel means in the -pairs report.
type panelRow struct {
	Objective   string  `json:"objective"`
	Pairs       int     `json:"pairs"`
	MeanLengthM float64 `json:"mean_length_m"`
	MeanTimeS   float64 `json:"mean_time_s"`
	MeanFuelGal float64 `json:"mean_fuel_gal"`
	MeanCO2G    float64 `json:"mean_co2_g"`
	MeanNOxG    float64 `json:"mean_nox_g"`
}

// panelQuery samples random connected O/D pairs and reports per-planner
// means; the requested objective is listed alongside the distance and time
// baselines.
func panelQuery(eng *ecoroute.Engine, net *road.Network, obj ecoroute.Objective, speed float64, n int, seed int64, format string) error {
	objectives := []ecoroute.Objective{ecoroute.Distance, ecoroute.Time}
	if obj != ecoroute.Distance && obj != ecoroute.Time {
		objectives = append(objectives, obj)
	}
	rng := rand.New(rand.NewSource(seed + 97))
	type od struct{ from, to int }
	var sample []od
	for len(sample) < n {
		f := net.Nodes[rng.Intn(len(net.Nodes))].ID
		t := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if f == t {
			continue
		}
		if _, err := eng.Route(ecoroute.Distance, speed, f, t); err != nil {
			continue // disconnected pair; redraw
		}
		sample = append(sample, od{f, t})
	}
	rows := make([]panelRow, 0, len(objectives))
	for _, o := range objectives {
		row := panelRow{Objective: o.String(), Pairs: len(sample)}
		for _, p := range sample {
			plan, err := eng.Route(o, speed, p.from, p.to)
			if err != nil {
				return err
			}
			row.MeanLengthM += plan.LengthM
			row.MeanTimeS += plan.TimeS
			row.MeanFuelGal += plan.FuelGal
			row.MeanCO2G += plan.CO2G
			g := plan.EmisG
			if g == (emission.Grams{}) {
				if g, err = eng.PlanEmissions(plan); err != nil {
					return err
				}
			}
			row.MeanNOxG += g[emission.NOx]
		}
		k := float64(len(sample))
		row.MeanLengthM /= k
		row.MeanTimeS /= k
		row.MeanFuelGal /= k
		row.MeanCO2G /= k
		row.MeanNOxG /= k
		rows = append(rows, row)
	}
	if format == "json" {
		return json.NewEncoder(os.Stdout).Encode(rows)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "planner\tpairs\tmean length (km)\tmean time (s)\tmean fuel (gal)\tmean CO2 (kg)\tmean NOx (g)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.1f\t%.4f\t%.3f\t%.3f\n",
			r.Objective, r.Pairs, r.MeanLengthM/1000, r.MeanTimeS, r.MeanFuelGal, r.MeanCO2G/1000, r.MeanNOxG)
	}
	return w.Flush()
}
