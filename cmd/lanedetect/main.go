// Command lanedetect runs lane-change detection over a sensor trace.
//
// Usage:
//
//	lanedetect -in trace.csv -map red        # detect on a recorded trace
//	lanedetect -demo -seed 3                 # simulate a drive and detect
//
// The -map flag names the road geometry the trace was driven on (needed to
// derive w_steer = w_vehicle - w_road); for external traces recorded on the
// synthetic routes use the same name passed to gradesim.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"roadgrade/internal/core"
	"roadgrade/internal/lanechange"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/trace"
	"roadgrade/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lanedetect: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "sensor trace CSV (from gradesim -out)")
		mapKind = flag.String("map", "red", "road geometry: red | scurve | straight")
		demo    = flag.Bool("demo", false, "simulate a two-lane drive instead of reading -in")
		seed    = flag.Int64("seed", 1, "random seed for -demo")
	)
	flag.Parse()

	r, err := buildRoad(*mapKind)
	if err != nil {
		return err
	}

	var trc *sensors.Trace
	var truth []vehicle.LaneChangeEvent
	switch {
	case *demo:
		d := vehicle.DefaultDriver(40.0 / 3.6)
		d.LaneChangesPerKm = 2.5
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: d, Rng: rand.New(rand.NewSource(*seed)),
		})
		if err != nil {
			return fmt.Errorf("simulating demo trip: %w", err)
		}
		truth = trip.Changes
		if trc, err = sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(*seed+1))); err != nil {
			return fmt.Errorf("sampling sensors: %w", err)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("opening trace: %w", err)
		}
		defer func() { _ = f.Close() }()
		if trc, err = trace.ReadCSV(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("pass -in <trace.csv> or -demo")
	}

	p, err := core.NewPipeline(core.Config{})
	if err != nil {
		return err
	}
	adj, err := p.Adjust(trc, r.Line())
	if err != nil {
		return fmt.Errorf("running data adjustment: %w", err)
	}

	fmt.Printf("trace: %.0f s at %.0f Hz on %s\n", trc.Duration(), 1/trc.DT, r.ID())
	if truth != nil {
		fmt.Printf("ground-truth lane changes: %d\n", len(truth))
		for _, ev := range truth {
			fmt.Printf("  truth t=%.1f..%.1f s dir=%s\n", ev.StartT, ev.EndT, dirName(ev.Dir))
		}
	}
	fmt.Printf("detections: %d\n", len(adj.Detections))
	for _, det := range adj.Detections {
		fmt.Printf("  detected t=%.1f..%.1f s %v displacement=%.2f m\n",
			det.StartT, det.EndT, det.Dir, det.DisplacementM)
	}
	return nil
}

func buildRoad(kind string) (*road.Road, error) {
	switch kind {
	case "red":
		return road.RedRoute()
	case "scurve":
		return road.SCurveRoad(0, 0)
	case "straight":
		return road.StraightRoad("straight", 3000, 0, 2)
	default:
		return nil, fmt.Errorf("unknown map %q (want red | scurve | straight)", kind)
	}
}

func dirName(d int) lanechange.Direction {
	if d > 0 {
		return lanechange.Left
	}
	return lanechange.Right
}
