package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roadgrade/internal/cloud"
	"roadgrade/internal/faultinject"
	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// Fleet mode simulates the paper's crowd-sourcing stage at scale: N synthetic
// phones, each with its own vehicle class, sensor noise level, and calibration
// bias, repeatedly sense a road, estimate its gradient profile, and upload in
// batches through POST /v1/submit-batch. The harness multiplexes phones over
// a bounded worker pool (a goroutine per phone would melt at 1M), so memory
// is O(workers + phones-worth-of-static-attrs), not O(phones) goroutines.
//
// Everything is deterministic per -seed: a device's class, bias, and noise
// come from a per-device RNG, and its per-round drive from a per-(device,
// round) RNG, so two runs offer the same workload.

// vehicleClass shapes a device population segment. sigma is the class's
// typical gradient-noise level in radians (phones in trucks shake more than
// phones in cars); biasMax bounds the fixed mounting-angle bias a device
// carries across all of its drives.
type vehicleClass struct {
	name    string
	frac    float64
	sigma   float64
	biasMax float64
}

// builtinClasses are the known -mix names.
var builtinClasses = map[string]vehicleClass{
	"car":   {name: "car", sigma: 0.002, biasMax: 0.001},
	"truck": {name: "truck", sigma: 0.004, biasMax: 0.002},
	"bus":   {name: "bus", sigma: 0.003, biasMax: 0.0015},
}

// parseMix parses "car:0.7,truck:0.25,bus:0.05" into classes with fractions.
// Names must be known classes; fractions must be non-negative and sum to 1
// (within rounding).
func parseMix(s string) ([]vehicleClass, error) {
	var out []vehicleClass
	sum := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, fracStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name:fraction", part)
		}
		cls, known := builtinClasses[strings.TrimSpace(name)]
		if !known {
			return nil, fmt.Errorf("mix entry %q: unknown vehicle class (known: car, truck, bus)", part)
		}
		frac, err := strconv.ParseFloat(strings.TrimSpace(fracStr), 64)
		if err != nil || frac < 0 {
			return nil, fmt.Errorf("mix entry %q: bad fraction", part)
		}
		cls.frac = frac
		out = append(out, cls)
		sum += frac
	}
	if len(out) == 0 {
		return nil, errors.New("empty -mix")
	}
	if math.Abs(sum-1) > 0.01 {
		return nil, fmt.Errorf("mix fractions sum to %.3f, want 1", sum)
	}
	return out, nil
}

// device is one phone's static attributes, derived deterministically from the
// fleet seed and the device id.
type device struct {
	class byte    // index into the mix
	bias  float64 // fixed calibration bias folded into every estimate
	sigma float64 // this device's noise level (class sigma scaled 0.5x-1.5x)
	// adv, when non-nil, corrupts every profile this device submits
	// (-bad-frac of the fleet runs the -bad-class adversary).
	adv faultinject.Adversary
}

// devicePRNGMix decorrelates adjacent device ids into well-spread seeds
// (splitmix64's golden-ratio increment).
const devicePRNGMix uint64 = 0x9E3779B97F4A7C15

func deriveDevice(seed int64, id int, mix []vehicleClass, badFrac float64, adv faultinject.Adversary) device {
	rng := rand.New(rand.NewSource(seed ^ int64(uint64(id)*devicePRNGMix)))
	u := rng.Float64()
	cls := 0
	for acc, i := 0.0, 0; i < len(mix); i++ {
		acc += mix[i].frac
		if u < acc {
			cls = i
			break
		}
		cls = i // rounding tail lands on the last class
	}
	c := mix[cls]
	d := device{
		class: byte(cls),
		bias:  c.biasMax * (2*rng.Float64() - 1),
		sigma: c.sigma * (0.5 + rng.Float64()),
	}
	// Drawn after the attribute draws, so turning the adversary knob does
	// not reshuffle which class/bias/noise each device id gets.
	if adv != nil && rng.Float64() < badFrac {
		d.adv = adv
	}
	return d
}

// senseRoad is the phone-side sense->estimate step: the road's true terrain
// (deterministic per road id) plus the device's bias and noise, with the
// variance the device reports for its own noise level. Adversarial devices
// corrupt the finished estimate right before upload.
func senseRoad(rng *rand.Rand, dev device, road, cells, round int) *fusion.Profile {
	p := &fusion.Profile{
		SpacingM: 5,
		S:        make([]float64, cells),
		GradeRad: make([]float64, cells),
		Var:      make([]float64, cells),
	}
	phase := float64(road)
	variance := dev.sigma * dev.sigma
	for i := 0; i < cells; i++ {
		p.S[i] = float64(i) * 5
		p.GradeRad[i] = 0.03*math.Sin(float64(i)/40+phase) + dev.bias + dev.sigma*rng.NormFloat64()
		p.Var[i] = variance
	}
	if dev.adv != nil {
		dev.adv.Corrupt(p, round, rng)
	}
	return p
}

// fleetReport is the result of one fleet run.
type fleetReport struct {
	Config  config
	Classes []vehicleClass
	Counts  []uint64 // devices per class, aligned with Classes
	Bad     uint64   // devices assigned the adversary

	Submissions uint64 // offered (phones x rounds)
	Accepted    uint64
	Duplicate   uint64
	Rejected    uint64
	Shed        uint64 // still shed after the client's retry budget
	Errors      uint64 // whole-batch transport failures

	Wall      time.Duration
	Sustained float64 // accepted submissions per second
	BatchRTT  opStats // per-request SubmitBatch latency
	Obs       *obsSummary

	registry *obs.Registry
}

func (r *fleetReport) String() string {
	mode := "in-process"
	if r.Config.addr != "" {
		mode = r.Config.addr
	}
	codec := "json"
	if r.Config.binary {
		codec = "binary"
	}
	if r.Config.gzipOn {
		codec += "+gzip"
	}
	var classes strings.Builder
	for i, c := range r.Classes {
		if i > 0 {
			classes.WriteString("  ")
		}
		fmt.Fprintf(&classes, "%s %.1f%%", c.name, 100*float64(r.Counts[i])/float64(r.Config.phones))
	}
	if r.Config.badFrac > 0 {
		fmt.Fprintf(&classes, "  adversary %s %.1f%% (%d devices)",
			r.Config.badClass, 100*float64(r.Bad)/float64(r.Config.phones), r.Bad)
	}
	return fmt.Sprintf(
		"cloudload fleet: %s · %d phones · %d rounds · batch %d (%s) · %d workers · %d roads · seed %d\n"+
			"  submissions %d  (accepted %d, dup %d, rejected %d, shed %d, errors %d)\n"+
			"  wall        %v\n"+
			"  sustained   %.0f submissions/s\n"+
			"  batch RTT   p50 %7.3fms  p95 %7.3fms  p99 %7.3fms  (n=%d)\n"+
			"  classes     %s\n",
		mode, r.Config.phones, r.Config.rounds, r.Config.batch, codec, r.Config.clients, r.Config.roads, r.Config.seed,
		r.Submissions, r.Accepted, r.Duplicate, r.Rejected, r.Shed, r.Errors,
		r.Wall.Round(time.Millisecond), r.Sustained,
		r.BatchRTT.P50*1e3, r.BatchRTT.P95*1e3, r.BatchRTT.P99*1e3, r.BatchRTT.Count,
		classes.String()) + r.Obs.String()
}

// validateFleet fills fleet defaults and rejects nonsense. The shared knobs
// (clients, roads, cells, conns, retries) are validated here too, since
// validate() is the per-op harness's gate.
func (cfg *config) validateFleet() ([]vehicleClass, error) {
	if cfg.clients < 1 || cfg.roads < 1 || cfg.cells < 1 {
		return nil, errors.New("clients, roads and cells must be >= 1")
	}
	if cfg.phones < 1 {
		return nil, errors.New("-phones must be >= 1")
	}
	if cfg.rounds < 1 {
		return nil, errors.New("-rounds must be >= 1")
	}
	if cfg.batch < 1 || cfg.batch > 4096 {
		return nil, errors.New("-batch must be in [1, 4096]")
	}
	if cfg.stagger < 0 {
		return nil, errors.New("-stagger must be >= 0")
	}
	if cfg.badFrac < 0 || cfg.badFrac > 1 {
		return nil, errors.New("-bad-frac must be in [0, 1]")
	}
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return nil, fmt.Errorf("-mix: %w", err)
	}
	if cfg.conns <= 0 {
		cfg.conns = cfg.clients
	}
	if cfg.retries < 1 {
		cfg.retries = 1
	}
	return mix, cfg.validateObs()
}

// runFleet executes one fleet simulation and returns the report.
func runFleet(cfg config) (*fleetReport, error) {
	mix, err := cfg.validateFleet()
	if err != nil {
		return nil, err
	}
	var adv faultinject.Adversary
	if cfg.badFrac > 0 {
		if adv, err = faultinject.AdversaryByName(cfg.badClass); err != nil {
			return nil, fmt.Errorf("-bad-class: %w", err)
		}
	}
	var policy fusion.FusionPolicy
	if cfg.policy != "" {
		if policy, err = fusion.ParsePolicy(cfg.policy); err != nil {
			return nil, fmt.Errorf("-fusion-policy: %w", err)
		}
		if cfg.addr != "" {
			return nil, errors.New("-fusion-policy configures the in-process server; a remote -addr server picks its own")
		}
	}

	base := cfg.addr
	var srv *cloud.Server
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listening: %w", err)
		}
		if cfg.shards > 0 {
			srv = cloud.NewServerWithShards(cfg.shards)
		} else {
			srv = cloud.NewServer()
		}
		srv.Policy = policy
		srv.EnableCoalescing(cloud.CoalesceConfig{
			QueueDepth: cfg.queueDepth,
			BatchMax:   cfg.batchMax,
		})
		cleanup, err := enableObs(cfg, srv)
		defer cleanup()
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	// Static per-device attributes, derived once. 1M devices is ~17 MB.
	devices := make([]device, cfg.phones)
	counts := make([]uint64, len(mix))
	var badCount uint64
	for id := range devices {
		devices[id] = deriveDevice(cfg.seed, id, mix, cfg.badFrac, adv)
		counts[devices[id].class]++
		if devices[id].adv != nil {
			badCount++
		}
	}

	hc := &http.Client{Transport: cloud.NewTransport(cfg.conns)}
	defer hc.CloseIdleConnections()

	reg := obs.NewRegistry()
	batchHist := reg.Histogram("cloudload_fleet_batch_seconds", obs.LatencyBuckets)
	var accepted, duplicate, rejected, shed, errCount atomic.Uint64

	var wg sync.WaitGroup
	workerErr := make(chan error, cfg.clients)
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := []cloud.Option{
				cloud.WithRetry(cfg.retries, 50*time.Millisecond, time.Second),
				cloud.WithPerTryTimeout(30 * time.Second),
				cloud.WithBinaryBatch(cfg.binary),
				cloud.WithGzip(cfg.gzipOn),
			}
			c, err := cloud.NewClient(base, hc, opts...)
			if err != nil {
				workerErr <- err
				return
			}
			// This worker simulates the phone id range [lo, hi).
			lo := w * cfg.phones / cfg.clients
			hi := (w + 1) * cfg.phones / cfg.clients
			ctx := context.Background()
			items := make([]cloud.BatchItem, 0, cfg.batch)
			flush := func() {
				if len(items) == 0 {
					return
				}
				t0 := time.Now()
				res, err := c.SubmitBatch(ctx, items)
				batchHist.Observe(time.Since(t0).Seconds())
				if err != nil {
					errCount.Add(uint64(len(items)))
					items = items[:0]
					return
				}
				for _, r := range res {
					switch r.Status {
					case "accepted":
						accepted.Add(1)
					case "duplicate":
						duplicate.Add(1)
					case "shed":
						shed.Add(1)
					default:
						rejected.Add(1)
					}
				}
				items = items[:0]
			}
			for round := 0; round < cfg.rounds; round++ {
				// Staggered schedule: workers enter each round spread over
				// the stagger window instead of stampeding in lockstep.
				if cfg.stagger > 0 {
					time.Sleep(cfg.stagger * time.Duration(w) / time.Duration(cfg.clients))
				}
				for id := lo; id < hi; id++ {
					rng := rand.New(rand.NewSource(cfg.seed ^ int64(uint64(id)*devicePRNGMix) ^ int64(round+1)<<32))
					road := rng.Intn(cfg.roads)
					items = append(items, cloud.BatchItem{
						RoadID: roadID(road),
						// Cheap per-device sequence key: idempotent across
						// client retries without hashing the payload.
						Key:     fmt.Sprintf("d%x-r%d", id, round),
						Device:  fmt.Sprintf("ph-%x", id),
						Profile: senseRoad(rng, devices[id], road, cfg.cells, round),
					})
					if len(items) == cfg.batch {
						flush()
					}
				}
				flush()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(workerErr)
	if err := <-workerErr; err != nil {
		return nil, err
	}

	rep := &fleetReport{
		Config:      cfg,
		Classes:     mix,
		Counts:      counts,
		Bad:         badCount,
		Submissions: uint64(cfg.phones) * uint64(cfg.rounds),
		Accepted:    accepted.Load(),
		Duplicate:   duplicate.Load(),
		Rejected:    rejected.Load(),
		Shed:        shed.Load(),
		Errors:      errCount.Load(),
		Wall:        wall,
		Sustained:   float64(accepted.Load()) / wall.Seconds(),
		BatchRTT: opStats{
			Count: batchHist.Count(),
			P50:   batchHist.Quantile(0.50),
			P95:   batchHist.Quantile(0.95),
			P99:   batchHist.Quantile(0.99),
		},
		Obs:      collectObs(srv),
		registry: reg,
	}
	if rep.Rejected > 0 {
		return rep, fmt.Errorf("%d submissions rejected (the synthetic fleet should always validate)", rep.Rejected)
	}
	if rep.Errors > rep.Submissions/2 {
		return rep, fmt.Errorf("%d of %d submissions failed", rep.Errors, rep.Submissions)
	}
	return rep, nil
}

// sortedClassNames is used by tests to assert the mix parse.
func sortedClassNames(mix []vehicleClass) []string {
	names := make([]string, len(mix))
	for i, c := range mix {
		names[i] = c.name
	}
	sort.Strings(names)
	return names
}
