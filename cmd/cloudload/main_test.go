package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunInProcessSmall drives a tiny in-process load and checks the report
// adds up: every operation accounted for, no errors, quantiles populated.
func TestRunInProcessSmall(t *testing.T) {
	cfg := config{
		clients:  4,
		roads:    4,
		cells:    20,
		prefill:  8,
		readFrac: 0.75,
		ops:      400,
		seed:     1,
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != cfg.ops {
		t.Errorf("ops = %d, want %d", rep.Ops, cfg.ops)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	if got := int(rep.Fetch.Count + rep.Submit.Count); got != cfg.ops {
		t.Errorf("histograms recorded %d ops, want %d", got, cfg.ops)
	}
	if rep.Fetch.Count == 0 || rep.Submit.Count == 0 {
		t.Errorf("mix degenerate: fetch=%d submit=%d", rep.Fetch.Count, rep.Submit.Count)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v", rep.Throughput)
	}
	if rep.Fetch.P50 <= 0 || rep.Fetch.P99 < rep.Fetch.P50 {
		t.Errorf("fetch quantiles implausible: %+v", rep.Fetch)
	}
	out := rep.String()
	for _, want := range []string{"throughput", "fetch", "submit", "in-process"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunDurationMode checks the wall-clock stop condition.
func TestRunDurationMode(t *testing.T) {
	cfg := config{
		clients:  2,
		roads:    2,
		cells:    10,
		prefill:  2,
		readFrac: 1.0,
		duration: 150 * time.Millisecond,
		seed:     2,
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Error("duration mode performed no operations")
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []config{
		{clients: 0, roads: 1, cells: 1, ops: 1},
		{clients: 1, roads: 1, cells: 1, ops: 0},
		{clients: 1, roads: 1, cells: 1, ops: 10, readFrac: 1.5},
		{clients: 1, roads: 1, cells: 1, ops: 10, routeObjective: "scenic"},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	ok := config{clients: 2, roads: 1, cells: 1, ops: 10, readFrac: 0.5}
	if err := ok.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if ok.conns != 2 {
		t.Errorf("conns default = %d, want clients (2)", ok.conns)
	}
	if ok.routeObjective != "fuel" {
		t.Errorf("route objective default = %q, want fuel", ok.routeObjective)
	}
	nox := config{clients: 1, roads: 1, cells: 1, ops: 10, routeObjective: "nox"}
	if err := nox.validate(); err != nil {
		t.Errorf("nox route objective rejected: %v", err)
	}
}

func TestParseFlags(t *testing.T) {
	cfg, metrics, err := parseFlags([]string{"-clients", "3", "-read-frac", "0.5", "-metrics"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.clients != 3 || cfg.readFrac != 0.5 || !metrics {
		t.Errorf("parsed %+v metrics=%v", cfg, metrics)
	}
	if _, _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Error("unknown flag should error")
	}
}
