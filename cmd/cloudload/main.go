// Command cloudload is the serving load harness for the cloud fusion
// service: it drives a configurable mix of concurrent profile submissions
// and fused-profile fetches against either an in-process server (the
// default; measures the serving architecture itself) or a remote deployment
// (-addr), and reports throughput plus p50/p95/p99 latency per operation
// from internal/obs histograms.
//
// Usage:
//
//	cloudload                                # in-process, 8 clients, 90% reads
//	cloudload -clients 32 -read-frac 0.5     # heavier, balanced mix
//	cloudload -addr http://host:8080         # drive a remote cloudfuse
//	cloudload -roads 64 -prefill 64 -ops 100000 -metrics
//	cloudload -read-frac 0.6 -route-frac 0.3 -route-km 164.8 -route-engine cch
//	                                         # mixed fetch/submit/route workload
//
// The workload is deterministic per -seed: every worker derives its own RNG,
// so two runs issue the same operation sequence (timings differ, of course).
// Each road is prefilled with -prefill submissions before measurement, so
// fetches exercise the steady-state window the acceptance experiments use
// (64 submissions/road by default).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roadgrade/internal/cloud"
	"roadgrade/internal/ecoroute"
	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
	"roadgrade/internal/road"
)

func main() {
	cfg, metricsDump, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "cloudload: %v\n", err)
		os.Exit(2)
	}
	var out fmt.Stringer
	var registry *obs.Registry
	if cfg.fleet {
		rep, err := runFleet(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cloudload: %v\n", err)
			os.Exit(1)
		}
		out, registry = rep, rep.registry
	} else {
		rep, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cloudload: %v\n", err)
			os.Exit(1)
		}
		out, registry = rep, rep.registry
	}
	fmt.Print(out.String())
	if metricsDump {
		fmt.Fprintln(os.Stderr, "== metrics ==")
		_ = registry.WritePrometheus(os.Stderr)
	}
}

// config is one load run's shape.
type config struct {
	addr     string  // remote base URL; empty runs an in-process server
	clients  int     // concurrent workers
	roads    int     // distinct road ids in play
	cells    int     // cells per submitted profile
	prefill  int     // submissions per road before measurement
	readFrac float64 // fraction of measured ops that are fetches
	ops      int     // total measured operations (ignored if duration > 0)

	// Route mix (per-op mode): a -route-frac slice of measured ops are
	// GET /v1/route queries over a network generated from -route-km and
	// -route-seed. In-process runs enable routing on the server themselves
	// (-route-engine picks alt or cch); remote runs require the target
	// cloudfuse to be started with the same -route-km/-route-seed.
	routeFrac      float64
	routeKM        float64
	routeSeed      int64
	routeEngine    string
	routeObjective string        // objective the route mix queries (fuel, nox, ...)
	duration       time.Duration // measure for a fixed wall time instead
	seed           int64
	conns          int // transport MaxIdleConnsPerHost (0: clients)
	shards         int // in-process server shard count
	retries        int // client attempt budget (1 = no retries, measure the server)

	// Fleet mode (see fleet.go).
	fleet      bool
	phones     int
	rounds     int
	batch      int           // submissions per batched request
	binary     bool          // use the compact binary batch codec
	gzipOn     bool          // gzip request/response bodies
	mix        string        // vehicle class mix, e.g. "car:0.7,truck:0.25,bus:0.05"
	stagger    time.Duration // spread each round's start across workers
	queueDepth int           // in-process coalescer queue depth per shard (0: default)
	batchMax   int           // in-process coalescer fold batch cap (0: default)
	badFrac    float64       // fraction of devices running the adversary
	badClass   string        // adversary class name (internal/faultinject)
	policy     string        // in-process server fusion policy (naive/huber/trimmed)

	// Observability of the run itself (in-process server only).
	traceSample float64 // head-sample rate; > 0 enables tracing + keep-count summary
	slo         string  // SLO objective spec (see cloudfuse -slo); "" disables
}

func parseFlags(args []string) (config, bool, error) {
	fs := flag.NewFlagSet("cloudload", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running service (empty: in-process server)")
	fs.IntVar(&cfg.clients, "clients", 8, "concurrent client workers")
	fs.IntVar(&cfg.roads, "roads", 16, "distinct roads")
	fs.IntVar(&cfg.cells, "cells", 200, "cells per submitted profile (200 = 1 km at 5 m)")
	fs.IntVar(&cfg.prefill, "prefill", 64, "submissions per road before measurement")
	fs.Float64Var(&cfg.readFrac, "read-frac", 0.9, "fraction of measured ops that are fetches")
	fs.IntVar(&cfg.ops, "ops", 20000, "total measured operations")
	fs.DurationVar(&cfg.duration, "duration", 0, "measure for a fixed duration instead of -ops")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload seed (operation mix is deterministic per seed)")
	fs.Float64Var(&cfg.routeFrac, "route-frac", 0, "fraction of measured ops that are GET /v1/route queries (needs -route-km)")
	fs.Float64Var(&cfg.routeKM, "route-km", 0, "street-km of the routing network backing -route-frac (must match the server's for -addr)")
	fs.Int64Var(&cfg.routeSeed, "route-seed", 1827, "routing network generator seed (must match the server's for -addr)")
	fs.StringVar(&cfg.routeEngine, "route-engine", "alt", "in-process routing search engine: alt | cch")
	fs.StringVar(&cfg.routeObjective, "route-objective", "fuel", "objective the route mix queries (distance | time | fuel | co2 | nox | co | hc | pm)")
	fs.IntVar(&cfg.conns, "conns", 0, "transport MaxIdleConnsPerHost (0: match -clients)")
	fs.IntVar(&cfg.shards, "shards", 0, "in-process server shards (0: default)")
	fs.IntVar(&cfg.retries, "retries", 1, "client attempt budget (1 disables retries so latency is the server's)")
	metrics := fs.Bool("metrics", false, "dump the harness metrics registry (Prometheus text) to stderr")
	fs.BoolVar(&cfg.fleet, "fleet", false, "fleet mode: simulate -phones devices batch-submitting estimates")
	fs.IntVar(&cfg.phones, "phones", 10000, "fleet: synthetic devices")
	fs.IntVar(&cfg.rounds, "rounds", 1, "fleet: submission rounds (each phone submits once per round)")
	fs.IntVar(&cfg.batch, "batch", 256, "fleet: submissions per batched request")
	fs.BoolVar(&cfg.binary, "binary", true, "fleet: use the compact binary batch codec")
	fs.BoolVar(&cfg.gzipOn, "gzip", false, "fleet: gzip request/response bodies")
	fs.StringVar(&cfg.mix, "mix", "car:0.7,truck:0.25,bus:0.05", "fleet: vehicle class mix (name:fraction,...)")
	fs.DurationVar(&cfg.stagger, "stagger", 0, "fleet: spread each round's start across workers")
	fs.IntVar(&cfg.queueDepth, "queue-depth", 0, "fleet: in-process coalescer queue depth per shard (0: default)")
	fs.IntVar(&cfg.batchMax, "batch-max", 0, "fleet: in-process coalescer fold batch cap (0: default)")
	fs.Float64Var(&cfg.badFrac, "bad-frac", 0, "fleet: fraction of devices running the -bad-class adversary")
	fs.StringVar(&cfg.badClass, "bad-class", "const-bias", "fleet: adversary class (const-bias, drift-bias, collude, overconfident)")
	fs.StringVar(&cfg.policy, "fusion-policy", "", "fleet: in-process server fusion policy (naive, huber, trimmed; empty = naive)")
	fs.Float64Var(&cfg.traceSample, "trace-sample", 0, "in-process: trace the run at this head-sample rate and summarize kept traces (0 disables)")
	fs.StringVar(&cfg.slo, "slo", "", `in-process: evaluate SLO objectives over the run ("default" or a spec; see cloudfuse -slo)`)
	if err := fs.Parse(args); err != nil {
		return cfg, false, err
	}
	if err := checkFlagConflicts(fs, cfg.fleet); err != nil {
		fs.Usage()
		return cfg, false, err
	}
	return cfg, *metrics, nil
}

// Flags valid only with -fleet, and per-op harness flags that conflict with
// it. Shared knobs (clients, roads, cells, seed, conns, shards, retries,
// addr, metrics) are fine in either mode.
var (
	fleetOnlyFlags    = []string{"phones", "rounds", "batch", "binary", "gzip", "mix", "stagger", "queue-depth", "batch-max", "bad-frac", "bad-class", "fusion-policy"}
	perOpHarnessFlags = []string{"read-frac", "ops", "prefill", "duration", "route-frac", "route-km", "route-seed", "route-engine", "route-objective"}
)

// checkFlagConflicts rejects flag combinations that would silently do
// something other than what the user asked for: fleet-only flags without
// -fleet, and per-op workload flags alongside -fleet.
func checkFlagConflicts(fs *flag.FlagSet, fleet bool) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var offending []string
	check, context := fleetOnlyFlags, "-%s requires -fleet"
	if fleet {
		check, context = perOpHarnessFlags, "-%s conflicts with -fleet (per-op workload flag)"
	}
	for _, name := range check {
		if set[name] {
			offending = append(offending, fmt.Sprintf(context, name))
		}
	}
	if len(offending) > 0 {
		return errors.New(strings.Join(offending, "; "))
	}
	return nil
}

// opStats summarizes one operation type's latency histogram.
type opStats struct {
	Count         uint64
	P50, P95, P99 float64 // seconds
}

// report is the result of one load run.
type report struct {
	Config     config
	Ops        int
	Errors     int
	Wall       time.Duration
	Throughput float64 // ops/s
	Fetch      opStats
	Submit     opStats
	Route      opStats
	Obs        *obsSummary

	registry *obs.Registry
}

func (r *report) String() string {
	mode := "in-process"
	if r.Config.addr != "" {
		mode = r.Config.addr
	}
	f := func(s opStats) string {
		return fmt.Sprintf("p50 %7.3fms  p95 %7.3fms  p99 %7.3fms  (n=%d)",
			s.P50*1e3, s.P95*1e3, s.P99*1e3, s.Count)
	}
	out := fmt.Sprintf(
		"cloudload: %s · %d clients · %d roads · %d prefill · %.0f%% reads · seed %d\n"+
			"  ops         %d  (errors %d)\n"+
			"  wall        %v\n"+
			"  throughput  %.0f ops/s\n"+
			"  fetch       %s\n"+
			"  submit      %s\n",
		mode, r.Config.clients, r.Config.roads, r.Config.prefill, r.Config.readFrac*100, r.Config.seed,
		r.Ops, r.Errors, r.Wall.Round(time.Millisecond), r.Throughput,
		f(r.Fetch), f(r.Submit))
	if r.Config.routeFrac > 0 {
		out += fmt.Sprintf("  route       %s  [%s engine, %s objective]\n", f(r.Route), r.Config.routeEngine, r.Config.routeObjective)
	}
	return out + r.Obs.String()
}

// validate fills defaults and rejects nonsense.
func (cfg *config) validate() error {
	if cfg.clients < 1 || cfg.roads < 1 || cfg.cells < 1 {
		return errors.New("clients, roads and cells must be >= 1")
	}
	if cfg.readFrac < 0 || cfg.readFrac > 1 {
		return errors.New("read-frac must be in [0, 1]")
	}
	if cfg.routeFrac < 0 || cfg.routeFrac > 1 {
		return errors.New("route-frac must be in [0, 1]")
	}
	if cfg.readFrac+cfg.routeFrac > 1 {
		return errors.New("read-frac + route-frac must not exceed 1")
	}
	if cfg.routeFrac > 0 && cfg.routeKM <= 0 {
		return errors.New("-route-frac needs -route-km > 0")
	}
	if cfg.routeObjective == "" {
		cfg.routeObjective = "fuel"
	}
	if _, err := ecoroute.ParseObjective(cfg.routeObjective); err != nil {
		return fmt.Errorf("-route-objective: %w", err)
	}
	if cfg.ops < 1 && cfg.duration <= 0 {
		return errors.New("need -ops >= 1 or -duration > 0")
	}
	if cfg.conns <= 0 {
		cfg.conns = cfg.clients
	}
	if cfg.retries < 1 {
		cfg.retries = 1
	}
	return cfg.validateObs()
}

// validateObs gates the run-observability knobs shared by both modes.
func (cfg *config) validateObs() error {
	if cfg.traceSample < 0 || cfg.traceSample > 1 {
		return errors.New("-trace-sample must be in [0, 1]")
	}
	if cfg.addr != "" && (cfg.traceSample > 0 || cfg.slo != "") {
		return errors.New("-trace-sample and -slo instrument the in-process server; not valid with -addr")
	}
	return nil
}

// enableObs turns on tracing and the SLO engine on the in-process server per
// the config. The returned cleanup disables the shared process tracer so one
// run does not leak sampling into the next (tests run several).
func enableObs(cfg config, srv *cloud.Server) (func(), error) {
	cleanup := func() {}
	if cfg.traceSample > 0 {
		srv.EnableTracing(obs.StoreConfig{})
		obs.DefaultTracer.SetSampleRate(cfg.traceSample)
		cleanup = func() {
			obs.DefaultTracer.Disable()
			obs.DefaultTracer.SetSampleRate(1)
		}
	}
	if cfg.slo != "" {
		objectives, err := cloud.ParseObjectives(cfg.slo)
		if err != nil {
			return cleanup, err
		}
		if err := srv.EnableSLO(objectives); err != nil {
			return cleanup, err
		}
	}
	return cleanup, nil
}

// obsSummary is the optional tracing/SLO tail of a run report.
type obsSummary struct {
	kept    int
	reasons map[string]int
	slo     *obs.SLOReport
}

// collectObs snapshots the server's trace store and SLO engine after a run.
// Returns nil when neither was enabled (remote runs, default config).
func collectObs(srv *cloud.Server) *obsSummary {
	if srv == nil {
		return nil
	}
	var o obsSummary
	if st := srv.TraceStore(); st != nil {
		o.reasons = map[string]int{}
		for _, s := range st.Summaries() {
			o.kept++
			o.reasons[s.Reason]++
		}
	}
	if rep, ok := srv.SLOReport(); ok {
		o.slo = &rep
	}
	if o.reasons == nil && o.slo == nil {
		return nil
	}
	return &o
}

func (o *obsSummary) String() string {
	if o == nil {
		return ""
	}
	var b strings.Builder
	if o.reasons != nil {
		fmt.Fprintf(&b, "  traces      %d kept", o.kept)
		keys := make([]string, 0, len(o.reasons))
		for k := range o.reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			sep := " ("
			if i > 0 {
				sep = ", "
			}
			fmt.Fprintf(&b, "%s%s %d", sep, k, o.reasons[k])
		}
		if len(keys) > 0 {
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	if o.slo != nil {
		fmt.Fprintf(&b, "  slo         %s", o.slo.Status)
		for _, obj := range o.slo.Objectives {
			fmt.Fprintf(&b, " · %s %s (budget %.2f)", obj.Name, obj.Status, obj.BudgetRemaining)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// makeProfile builds one deterministic submission payload.
func makeProfile(rng *rand.Rand, cells int) *fusion.Profile {
	p := &fusion.Profile{
		SpacingM: 5,
		S:        make([]float64, cells),
		GradeRad: make([]float64, cells),
		Var:      make([]float64, cells),
	}
	for i := 0; i < cells; i++ {
		p.S[i] = float64(i) * 5
		p.GradeRad[i] = 0.05 * (rng.Float64() - 0.5)
		p.Var[i] = 1e-5 + 1e-4*rng.Float64()
	}
	return p
}

func roadID(i int) string { return fmt.Sprintf("road-%03d", i) }

// run executes one load run and returns the report.
func run(cfg config) (*report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	// The route mix needs the node-ID universe of the routing network; for
	// in-process runs the same network also backs the server's engine.
	var routeNet *road.Network
	if cfg.routeFrac > 0 {
		var err error
		routeNet, err = road.GenerateNetwork(cfg.routeSeed, road.NetworkConfig{TargetStreetKM: cfg.routeKM})
		if err != nil {
			return nil, fmt.Errorf("generating routing network: %w", err)
		}
	}

	base := cfg.addr
	var srv *cloud.Server
	if base == "" {
		// In-process mode: a real loopback listener so the harness
		// exercises the full HTTP serving path, not just the store.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listening: %w", err)
		}
		if cfg.shards > 0 {
			srv = cloud.NewServerWithShards(cfg.shards)
		} else {
			srv = cloud.NewServer()
		}
		if cfg.prefill > 0 {
			srv.MaxSubmissionsPerRoad = cfg.prefill
		}
		if routeNet != nil {
			alg, err := ecoroute.ParseAlgorithm(cfg.routeEngine)
			if err != nil {
				return nil, err
			}
			eng, err := ecoroute.NewEngine(routeNet, ecoroute.CloudSource{Store: srv}, ecoroute.Config{Algorithm: alg})
			if err != nil {
				return nil, fmt.Errorf("building routing engine: %w", err)
			}
			srv.EnableRouting(eng)
		}
		cleanup, err := enableObs(cfg, srv)
		defer cleanup()
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	hc := &http.Client{Transport: cloud.NewTransport(cfg.conns)}
	defer hc.CloseIdleConnections()
	newClient := func() (*cloud.Client, error) {
		return cloud.NewClient(base, hc,
			cloud.WithRetry(cfg.retries, 50*time.Millisecond, time.Second),
			cloud.WithPerTryTimeout(30*time.Second))
	}

	// Prefill every road to the steady-state window.
	ctx := context.Background()
	if cfg.prefill > 0 {
		var wg sync.WaitGroup
		errCh := make(chan error, cfg.roads)
		sem := make(chan struct{}, cfg.clients)
		for r := 0; r < cfg.roads; r++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(r int) {
				defer wg.Done()
				defer func() { <-sem }()
				c, err := newClient()
				if err != nil {
					errCh <- err
					return
				}
				rng := rand.New(rand.NewSource(cfg.seed + int64(1000+r)))
				for i := 0; i < cfg.prefill; i++ {
					if err := c.SubmitProfile(ctx, roadID(r), makeProfile(rng, cfg.cells)); err != nil {
						errCh <- fmt.Errorf("prefill road %d: %w", r, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return nil, err
		}
	}

	// Measured phase. Latency lands in obs histograms; quantiles come from
	// the same interpolation /metrics consumers see.
	reg := obs.NewRegistry()
	fetchHist := reg.Histogram("cloudload_fetch_seconds", obs.LatencyBuckets)
	submitHist := reg.Histogram("cloudload_submit_seconds", obs.LatencyBuckets)
	routeHist := reg.Histogram("cloudload_route_seconds", obs.LatencyBuckets)
	var opCount, errCount atomic.Int64

	perWorker := make([]int, cfg.clients)
	if cfg.duration <= 0 {
		for i := 0; i < cfg.ops; i++ {
			perWorker[i%cfg.clients]++
		}
	}
	deadline := time.Now().Add(cfg.duration)

	var wg sync.WaitGroup
	workerErr := make(chan error, cfg.clients)
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := newClient()
			if err != nil {
				workerErr <- err
				return
			}
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			for i := 0; ; i++ {
				if cfg.duration > 0 {
					if time.Now().After(deadline) {
						return
					}
				} else if i >= perWorker[w] {
					return
				}
				road := roadID(rng.Intn(cfg.roads))
				switch op := rng.Float64(); {
				case op < cfg.readFrac:
					t0 := time.Now()
					_, err = c.FetchProfile(ctx, road)
					fetchHist.Observe(time.Since(t0).Seconds())
				case op < cfg.readFrac+cfg.routeFrac:
					from := routeNet.Nodes[rng.Intn(len(routeNet.Nodes))].ID
					to := routeNet.Nodes[rng.Intn(len(routeNet.Nodes))].ID
					t0 := time.Now()
					_, err = c.Route(ctx, from, to, cfg.routeObjective, 40)
					routeHist.Observe(time.Since(t0).Seconds())
				default:
					p := makeProfile(rng, cfg.cells)
					t0 := time.Now()
					err = c.SubmitProfile(ctx, road, p)
					submitHist.Observe(time.Since(t0).Seconds())
				}
				opCount.Add(1)
				if err != nil {
					errCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(workerErr)
	if err := <-workerErr; err != nil {
		return nil, err
	}

	stats := func(h *obs.Histogram) opStats {
		return opStats{
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
	}
	rep := &report{
		Config:     cfg,
		Ops:        int(opCount.Load()),
		Errors:     int(errCount.Load()),
		Wall:       wall,
		Throughput: float64(opCount.Load()) / wall.Seconds(),
		Fetch:      stats(fetchHist),
		Submit:     stats(submitHist),
		Route:      stats(routeHist),
		Obs:        collectObs(srv),
		registry:   reg,
	}
	if rep.Errors > rep.Ops/2 {
		return rep, fmt.Errorf("%d of %d operations failed", rep.Errors, rep.Ops)
	}
	return rep, nil
}
