package main

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("car:0.7,truck:0.25,bus:0.05")
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedClassNames(mix); len(got) != 3 || got[0] != "bus" || got[1] != "car" || got[2] != "truck" {
		t.Errorf("classes = %v", got)
	}
	bad := []string{
		"",
		"car:0.5",               // sums to 0.5
		"car:0.7,tank:0.3",      // unknown class
		"car:0.7,truck:-0.3",    // negative fraction
		"car:0.7,truck:0.3:0.1", // ParseFloat rejects the extra field
		"car=1",                 // wrong separator
	}
	for _, s := range bad {
		if _, err := parseMix(s); err == nil {
			t.Errorf("parseMix(%q) should fail", s)
		}
	}
	// Exact-1 rounding tolerance.
	if _, err := parseMix("car:0.333,truck:0.333,bus:0.334"); err != nil {
		t.Errorf("near-1 mix rejected: %v", err)
	}
}

func TestFleetFlagConflicts(t *testing.T) {
	// Fleet-only flags without -fleet must be rejected with a non-parse
	// error (main exits 2 on it).
	for _, args := range [][]string{
		{"-phones", "100"},
		{"-batch", "64"},
		{"-binary=false"},
		{"-mix", "car:1"},
		{"-queue-depth", "10"},
		{"-bad-frac", "0.3"},
		{"-bad-class", "collude"},
		{"-fusion-policy", "huber"},
	} {
		if _, _, err := parseFlags(args); err == nil {
			t.Errorf("args %v should be rejected without -fleet", args)
		} else if !strings.Contains(err.Error(), "requires -fleet") {
			t.Errorf("args %v: unexpected error %v", args, err)
		}
	}
	// Per-op workload flags alongside -fleet must be rejected.
	for _, args := range [][]string{
		{"-fleet", "-read-frac", "0.5"},
		{"-fleet", "-ops", "100"},
		{"-fleet", "-prefill", "8"},
		{"-fleet", "-duration", "1s"},
	} {
		if _, _, err := parseFlags(args); err == nil {
			t.Errorf("args %v should be rejected", args)
		} else if !strings.Contains(err.Error(), "conflicts with -fleet") {
			t.Errorf("args %v: unexpected error %v", args, err)
		}
	}
	// Valid combinations parse.
	cfg, _, err := parseFlags([]string{"-fleet", "-phones", "500", "-batch", "32", "-gzip", "-clients", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.fleet || cfg.phones != 500 || cfg.batch != 32 || !cfg.gzipOn || cfg.clients != 4 {
		t.Errorf("parsed %+v", cfg)
	}
	if _, _, err := parseFlags([]string{"-clients", "4", "-ops", "100"}); err != nil {
		t.Errorf("plain per-op args rejected: %v", err)
	}
}

func TestFleetValidation(t *testing.T) {
	base := config{clients: 2, roads: 4, cells: 10, phones: 10, rounds: 1, batch: 8, mix: "car:1"}
	bad := []func(*config){
		func(c *config) { c.phones = 0 },
		func(c *config) { c.rounds = 0 },
		func(c *config) { c.batch = 0 },
		func(c *config) { c.batch = 5000 },
		func(c *config) { c.mix = "car:0.5" },
		func(c *config) { c.stagger = -time.Second },
		func(c *config) { c.clients = 0 },
		func(c *config) { c.badFrac = -0.1 },
		func(c *config) { c.badFrac = 1.5 },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := cfg.validateFleet(); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
	cfg := base
	if _, err := cfg.validateFleet(); err != nil {
		t.Errorf("valid fleet config rejected: %v", err)
	}
}

// TestRunFleetSmall drives a small fleet end to end: every submission
// accepted exactly once, deterministic class assignment, and no goroutine
// leak once the run (and its in-process server) is torn down.
func TestRunFleetSmall(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := config{
		clients: 4, roads: 8, cells: 20, seed: 3,
		fleet: true, phones: 300, rounds: 2, batch: 32,
		binary: true, mix: "car:0.7,truck:0.25,bus:0.05",
	}
	rep, err := runFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submissions != 600 {
		t.Errorf("submissions = %d, want 600", rep.Submissions)
	}
	if rep.Accepted != rep.Submissions || rep.Duplicate != 0 || rep.Rejected != 0 || rep.Shed != 0 || rep.Errors != 0 {
		t.Errorf("outcome %+v", rep)
	}
	if rep.Sustained <= 0 || rep.BatchRTT.Count == 0 {
		t.Errorf("throughput not measured: %+v", rep)
	}
	var total uint64
	for _, n := range rep.Counts {
		total += n
	}
	if total != uint64(cfg.phones) {
		t.Errorf("class counts sum to %d, want %d", total, cfg.phones)
	}
	out := rep.String()
	for _, want := range []string{"fleet", "sustained", "binary", "car"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Determinism: the same seed assigns the same classes.
	rep2, err := runFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Counts {
		if rep.Counts[i] != rep2.Counts[i] {
			t.Errorf("class %d count differs across runs: %d vs %d", i, rep.Counts[i], rep2.Counts[i])
		}
	}

	// No goroutine leak: the coalescer workers, HTTP server, and transport
	// must all wind down. Poll briefly — connection teardown is async.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d before, %d after fleet runs", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunFleetAdversarial turns on the poisoning knobs: a quarter of the
// fleet runs the constant-bias adversary against a huber-policy server. All
// submissions still validate and fold; the adversary assignment is
// deterministic per seed; the report names the adversary.
func TestRunFleetAdversarial(t *testing.T) {
	cfg := config{
		clients: 4, roads: 4, cells: 20, seed: 11,
		fleet: true, phones: 200, rounds: 2, batch: 32,
		binary: true, mix: "car:1",
		badFrac: 0.25, badClass: "const-bias", policy: "huber",
	}
	rep, err := runFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != rep.Submissions || rep.Rejected != 0 || rep.Errors != 0 {
		t.Errorf("adversarial fleet should still be accepted: %+v", rep)
	}
	// ~25% of 200 devices; the binomial draw should land well inside [20, 80].
	if rep.Bad < 20 || rep.Bad > 80 {
		t.Errorf("bad devices = %d, want ~50", rep.Bad)
	}
	if out := rep.String(); !strings.Contains(out, "const-bias") {
		t.Errorf("report does not name the adversary:\n%s", out)
	}
	rep2, err := runFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Bad != rep.Bad {
		t.Errorf("adversary assignment not deterministic: %d vs %d", rep.Bad, rep2.Bad)
	}

	if _, err := runFleet(config{
		clients: 1, roads: 1, cells: 5, fleet: true, phones: 2, rounds: 1, batch: 1,
		mix: "car:1", badFrac: 0.5, badClass: "nope",
	}); err == nil {
		t.Error("unknown -bad-class should fail")
	}
	if _, err := runFleet(config{
		clients: 1, roads: 1, cells: 5, fleet: true, phones: 2, rounds: 1, batch: 1,
		mix: "car:1", policy: "median",
	}); err == nil {
		t.Error("unknown -fusion-policy should fail")
	}
}

// TestRunFleetShedsGracefully forces admission-control pressure (tiny queue,
// no client retry budget) and checks degradation is graceful: shed counted
// per item, nothing rejected, no transport errors, and the run still reports.
func TestRunFleetShedsGracefully(t *testing.T) {
	cfg := config{
		clients: 4, roads: 4, cells: 10, seed: 4,
		fleet: true, phones: 400, rounds: 1, batch: 128,
		binary: true, mix: "car:1", retries: 1,
		shards: 1, queueDepth: 2, batchMax: 1,
	}
	rep, err := runFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Error("expected shedding with queue depth 2")
	}
	if rep.Rejected != 0 || rep.Errors != 0 {
		t.Errorf("unexpected hard failures: %+v", rep)
	}
	if rep.Accepted+rep.Shed+rep.Duplicate != rep.Submissions {
		t.Errorf("outcomes don't add up: %+v", rep)
	}
}
