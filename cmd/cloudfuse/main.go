// Command cloudfuse runs the cloud track-fusion service (§III-C3): vehicles
// POST per-road gradient profiles; the service fuses submissions and serves
// the network's profile.
//
// Usage:
//
//	cloudfuse -addr :8080 -drain 10s
//
// API:
//
//	POST /v1/roads/{id}/profiles   {"spacing_m":5,"grade_rad":[...],"var":[...]}
//	GET  /v1/roads/{id}/profile
//	GET  /v1/roads
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to the -drain timeout before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roadgrade/internal/cloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cloudfuse: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           cloud.NewServer().Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("cloudfuse listening on %s\n", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		fmt.Println("cloudfuse: shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		return nil
	}
}
