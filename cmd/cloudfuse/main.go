// Command cloudfuse runs the cloud track-fusion service (§III-C3): vehicles
// POST per-road gradient profiles; the service fuses submissions and serves
// the network's profile.
//
// Usage:
//
//	cloudfuse -addr :8080 -drain 10s -debug-addr 127.0.0.1:6060 -log-format text -shards 32
//
// API:
//
//	POST /v1/roads/{id}/profiles   {"spacing_m":5,"grade_rad":[...],"var":[...]}
//	POST /v1/submit-batch          many submissions per request (JSON or the
//	                               binary codec; gzip supported both ways),
//	                               folded through the write coalescer
//	GET  /v1/roads/{id}/profile
//	GET  /v1/roads
//	GET  /v1/devices/{id}          per-device trust state (reputation, learned
//	                               bias) under a robust -fusion-policy
//	GET  /v1/route                 eco-routing over the fused map (needs -route-km)
//	GET  /v1/emissions             city-wide per-road pollutant intensity table
//	                               over the fused map (needs -route-km -emissions)
//	GET  /v1/debug/traces          tail-sampled trace directory; ?id= renders
//	                               one trace as Chrome trace_event JSON
//	                               (needs -trace-sample > 0)
//
// Observability (on -debug-addr, kept off the public listener; empty
// disables):
//
//	GET /metrics        Prometheus text exposition (pipeline, fusion,
//	                    kalman, cloud, and runtime metrics) with trace
//	                    exemplars on the latency histograms
//	GET /healthz        liveness probe with build info, road/submission/
//	                    device counts, fleet reputation quantiles, coalescer
//	                    queue depth / shed totals, and — when -slo is set —
//	                    the burn-rate report (overall status degrades on a
//	                    fast burn)
//	GET /debug/pprof/   net/http/pprof profiles
//
// Distributed tracing is enabled with -trace-sample (W3C traceparent in,
// head-sampled roots otherwise); the tail-sampling store behind
// /v1/debug/traces always keeps errors, sheds, quarantines, and p99-slow
// traces and holds -trace-buffer of them.
//
// Requests are logged one structured line each (-log-format text|json) with
// method, route, status, bytes, duration, and the propagated X-Request-Id.
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to the -drain timeout before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"roadgrade/internal/cloud"
	"roadgrade/internal/ecoroute"
	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
	"roadgrade/internal/road"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cloudfuse: %v\n", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger for the chosen -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text | json)", format)
	}
}

// buildInfo reports what binary is answering the probe: the Go runtime and,
// when the binary was built inside a git checkout, the VCS revision stamp.
func buildInfo() map[string]any {
	out := map[string]any{"go_version": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out["module"] = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				out[s.Key] = s.Value
			}
		}
	}
	return out
}

// debugHandler builds the operational endpoint mux: metrics, health, pprof.
func debugHandler(srv *cloud.Server, start time.Time) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(obs.Default))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		roads := srv.Roads()
		submissions := 0
		for _, rs := range roads {
			submissions += rs.Submissions
		}
		enabled, queued, shed := srv.CoalesceStats()
		p10, p50, p90 := srv.ReputationQuantiles()
		// Without an SLO engine the probe is pure liveness ("ok"); with one,
		// its status is the worst objective's burn-rate verdict, so a
		// fast-burning error budget flips the probe before the budget is gone.
		status := "ok"
		body := map[string]any{
			"uptime_seconds": time.Since(start).Seconds(),
			"build":          buildInfo(),
			"roads":          len(roads),
			"submissions":    submissions,
			"devices": map[string]any{
				"count":          srv.Devices(),
				"reputation_p10": p10,
				"reputation_p50": p50,
				"reputation_p90": p90,
			},
			"coalescer": map[string]any{
				"enabled":     enabled,
				"queue_depth": queued,
				"shed_total":  shed,
			},
		}
		if rep, ok := srv.SLOReport(); ok {
			status = rep.Status
			body["slo"] = rep
		}
		if st := srv.TraceStore(); st != nil {
			body["traces"] = map[string]any{"kept": st.Len()}
		}
		body["status"] = status
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	debugAddr := flag.String("debug-addr", "127.0.0.1:6060", "debug listen address for /metrics, /healthz and /debug/pprof (empty disables)")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	shards := flag.Int("shards", 0, "store shard count, rounded up to a power of two (0: default 32)")
	routeKM := flag.Float64("route-km", 0, "enable GET /v1/route over a generated network of this many street-km (0 disables; 164.8 is the paper's area)")
	routeSeed := flag.Int64("route-seed", 1827, "network generator seed for -route-km")
	routeEngine := flag.String("route-engine", "alt", "routing search engine: alt (landmark A*) | cch (contraction hierarchy; pays a one-time contraction, then answers country-scale queries in sub-ms)")
	emissions := flag.Bool("emissions", false, "enable GET /v1/emissions (city-wide per-road pollutant table over the fused map; needs -route-km)")
	coalesce := flag.Bool("coalesce", true, "batched submits fold through per-shard write coalescing with admission control")
	queueDepth := flag.Int("queue-depth", 1024, "coalescer queue depth per shard (backpressure threshold)")
	batchMax := flag.Int("batch-max", 256, "max submissions folded per shard-lock acquisition")
	policyName := flag.String("fusion-policy", "naive", "per-road fusion policy: naive | huber | trimmed (robust policies weight submissions by device trust)")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling probability in [0,1] for distributed tracing (0 disables; inbound traceparent headers are always honored)")
	traceBuffer := flag.Int("trace-buffer", 256, "tail-sampled trace store capacity for GET /v1/debug/traces")
	sloSpec := flag.String("slo", "", `SLO objectives: "default", or comma-separated name:route:avail:<target> | name:route:latency:<target>:<threshold_s> (empty disables)`)
	flag.Parse()

	policy, err := fusion.ParsePolicy(*policyName)
	if err != nil {
		return err
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}
	start := time.Now()
	var fusionSrv *cloud.Server
	if *shards > 0 {
		fusionSrv = cloud.NewServerWithShards(*shards)
	} else {
		fusionSrv = cloud.NewServer()
	}
	fusionSrv.Logger = logger
	fusionSrv.Policy = policy
	if policy.Robust() {
		logger.Info("robust fusion enabled", "policy", string(policy.Policy))
	}
	if *coalesce {
		fusionSrv.EnableCoalescing(cloud.CoalesceConfig{
			QueueDepth: *queueDepth,
			BatchMax:   *batchMax,
		})
		logger.Info("write coalescing enabled", "queue_depth", *queueDepth, "batch_max", *batchMax)
	}
	if *routeKM > 0 {
		// Eco-routing over this server's own fused store: routes follow the
		// crowd-sourced gradient map as submissions land, falling back to
		// flat for roads nobody has driven yet.
		alg, err := ecoroute.ParseAlgorithm(*routeEngine)
		if err != nil {
			return err
		}
		net, err := road.GenerateNetwork(*routeSeed, road.NetworkConfig{TargetStreetKM: *routeKM})
		if err != nil {
			return fmt.Errorf("generating routing network: %w", err)
		}
		eng, err := ecoroute.NewEngine(net, ecoroute.CloudSource{Store: fusionSrv}, ecoroute.Config{Algorithm: alg})
		if err != nil {
			return fmt.Errorf("building routing engine: %w", err)
		}
		fusionSrv.EnableRouting(eng)
		logger.Info("routing enabled", "engine", alg, "street_km", net.TotalLengthM()/1000, "nodes", len(net.Nodes), "edges", len(net.Edges))
		if *emissions {
			if err := fusionSrv.EnableEmissions(net); err != nil {
				return fmt.Errorf("enabling emissions: %w", err)
			}
			logger.Info("emission maps enabled", "roads", len(net.Edges))
		}
	} else if *emissions {
		return errors.New("-emissions needs -route-km (the emission table is computed over the routing network)")
	}
	if *traceSample > 0 {
		fusionSrv.EnableTracing(obs.StoreConfig{Capacity: *traceBuffer})
		obs.DefaultTracer.SetSampleRate(*traceSample)
		logger.Info("tracing enabled", "sample_rate", *traceSample, "trace_buffer", *traceBuffer)
	}
	if *sloSpec != "" {
		objectives, err := cloud.ParseObjectives(*sloSpec)
		if err != nil {
			return err
		}
		if err := fusionSrv.EnableSLO(objectives); err != nil {
			return err
		}
		logger.Info("slo engine enabled", "objectives", len(objectives))
	}
	obs.RegisterRuntimeGauges(obs.Default)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           fusionSrv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	var dbgSrv *http.Server
	if *debugAddr != "" {
		// pprof exposes heap contents and the health endpoint is
		// unauthenticated, so the debug listener stays separate from the
		// public API (bind it to loopback or a private interface).
		dbgSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugHandler(fusionSrv, start),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listening", "addr", *debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	shutdownDebug := func(ctx context.Context) {
		if dbgSrv != nil {
			_ = dbgSrv.Shutdown(ctx)
		}
	}

	select {
	case err := <-errCh:
		shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		shutdownDebug(shutCtx)
		fusionSrv.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		logger.Info("shutting down, draining in-flight requests", "drain", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutdownDebug(shutCtx)
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		// With no more requests in flight, fold what the coalescer still has
		// queued before exiting: accepted items must not be lost.
		fusionSrv.Close()
		logger.Info("stopped", "uptime", time.Since(start))
		return nil
	}
}
