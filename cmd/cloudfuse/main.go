// Command cloudfuse runs the cloud track-fusion service (§III-C3): vehicles
// POST per-road gradient profiles; the service fuses submissions and serves
// the network's profile.
//
// Usage:
//
//	cloudfuse -addr :8080
//
// API:
//
//	POST /v1/roads/{id}/profiles   {"spacing_m":5,"grade_rad":[...],"var":[...]}
//	GET  /v1/roads/{id}/profile
//	GET  /v1/roads
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"roadgrade/internal/cloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cloudfuse: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           cloud.NewServer().Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("cloudfuse listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
