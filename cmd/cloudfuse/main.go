// Command cloudfuse runs the cloud track-fusion service (§III-C3): vehicles
// POST per-road gradient profiles; the service fuses submissions and serves
// the network's profile.
//
// Usage:
//
//	cloudfuse -addr :8080 -drain 10s -debug-addr 127.0.0.1:6060 -log-format text -shards 32
//
// API:
//
//	POST /v1/roads/{id}/profiles   {"spacing_m":5,"grade_rad":[...],"var":[...]}
//	POST /v1/submit-batch          many submissions per request (JSON or the
//	                               binary codec; gzip supported both ways),
//	                               folded through the write coalescer
//	GET  /v1/roads/{id}/profile
//	GET  /v1/roads
//	GET  /v1/devices/{id}          per-device trust state (reputation, learned
//	                               bias) under a robust -fusion-policy
//	GET  /v1/route                 eco-routing over the fused map (needs -route-km)
//
// Observability (on -debug-addr, kept off the public listener; empty
// disables):
//
//	GET /metrics        Prometheus text exposition (pipeline, fusion,
//	                    kalman, cloud, and runtime metrics)
//	GET /healthz        liveness probe with road/submission counts and
//	                    coalescer queue depth / shed totals
//	GET /debug/pprof/   net/http/pprof profiles
//
// Requests are logged one structured line each (-log-format text|json) with
// method, route, status, bytes, duration, and the propagated X-Request-Id.
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to the -drain timeout before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roadgrade/internal/cloud"
	"roadgrade/internal/ecoroute"
	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
	"roadgrade/internal/road"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cloudfuse: %v\n", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger for the chosen -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text | json)", format)
	}
}

// debugHandler builds the operational endpoint mux: metrics, health, pprof.
func debugHandler(srv *cloud.Server, start time.Time) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(obs.Default))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		roads := srv.Roads()
		submissions := 0
		for _, rs := range roads {
			submissions += rs.Submissions
		}
		enabled, queued, shed := srv.CoalesceStats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
			"roads":          len(roads),
			"submissions":    submissions,
			"coalescer": map[string]any{
				"enabled":     enabled,
				"queue_depth": queued,
				"shed_total":  shed,
			},
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	debugAddr := flag.String("debug-addr", "127.0.0.1:6060", "debug listen address for /metrics, /healthz and /debug/pprof (empty disables)")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	shards := flag.Int("shards", 0, "store shard count, rounded up to a power of two (0: default 32)")
	routeKM := flag.Float64("route-km", 0, "enable GET /v1/route over a generated network of this many street-km (0 disables; 164.8 is the paper's area)")
	routeSeed := flag.Int64("route-seed", 1827, "network generator seed for -route-km")
	coalesce := flag.Bool("coalesce", true, "batched submits fold through per-shard write coalescing with admission control")
	queueDepth := flag.Int("queue-depth", 1024, "coalescer queue depth per shard (backpressure threshold)")
	batchMax := flag.Int("batch-max", 256, "max submissions folded per shard-lock acquisition")
	policyName := flag.String("fusion-policy", "naive", "per-road fusion policy: naive | huber | trimmed (robust policies weight submissions by device trust)")
	flag.Parse()

	policy, err := fusion.ParsePolicy(*policyName)
	if err != nil {
		return err
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}
	start := time.Now()
	var fusionSrv *cloud.Server
	if *shards > 0 {
		fusionSrv = cloud.NewServerWithShards(*shards)
	} else {
		fusionSrv = cloud.NewServer()
	}
	fusionSrv.Logger = logger
	fusionSrv.Policy = policy
	if policy.Robust() {
		logger.Info("robust fusion enabled", "policy", string(policy.Policy))
	}
	if *coalesce {
		fusionSrv.EnableCoalescing(cloud.CoalesceConfig{
			QueueDepth: *queueDepth,
			BatchMax:   *batchMax,
		})
		logger.Info("write coalescing enabled", "queue_depth", *queueDepth, "batch_max", *batchMax)
	}
	if *routeKM > 0 {
		// Eco-routing over this server's own fused store: routes follow the
		// crowd-sourced gradient map as submissions land, falling back to
		// flat for roads nobody has driven yet.
		net, err := road.GenerateNetwork(*routeSeed, road.NetworkConfig{TargetStreetKM: *routeKM})
		if err != nil {
			return fmt.Errorf("generating routing network: %w", err)
		}
		eng, err := ecoroute.NewEngine(net, ecoroute.CloudSource{Store: fusionSrv}, ecoroute.Config{})
		if err != nil {
			return fmt.Errorf("building routing engine: %w", err)
		}
		fusionSrv.EnableRouting(eng)
		logger.Info("routing enabled", "street_km", net.TotalLengthM()/1000, "nodes", len(net.Nodes), "edges", len(net.Edges))
	}
	obs.RegisterRuntimeGauges(obs.Default)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           fusionSrv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	var dbgSrv *http.Server
	if *debugAddr != "" {
		// pprof exposes heap contents and the health endpoint is
		// unauthenticated, so the debug listener stays separate from the
		// public API (bind it to loopback or a private interface).
		dbgSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugHandler(fusionSrv, start),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listening", "addr", *debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	shutdownDebug := func(ctx context.Context) {
		if dbgSrv != nil {
			_ = dbgSrv.Shutdown(ctx)
		}
	}

	select {
	case err := <-errCh:
		shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		shutdownDebug(shutCtx)
		fusionSrv.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		logger.Info("shutting down, draining in-flight requests", "drain", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutdownDebug(shutCtx)
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		// With no more requests in flight, fold what the coalescer still has
		// queued before exiting: accepted items must not be lost.
		fusionSrv.Close()
		logger.Info("stopped", "uptime", time.Since(start))
		return nil
	}
}
