package main

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"roadgrade/internal/cloud"
	"roadgrade/internal/fusion"
)

// TestHealthzShape pins the /healthz contract: status, uptime, build info,
// road/submission/device counts with reputation quantiles, the coalescer
// block (enabled, queue_depth, shed_total), and — when the SLO engine is
// installed — the burn-rate report that load-balancer probes and dashboards
// read.
func TestHealthzShape(t *testing.T) {
	srv := cloud.NewServerWithShards(2)
	srv.EnableCoalescing(cloud.CoalesceConfig{})
	if err := srv.EnableSLO(cloud.DefaultObjectives()); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(1))
	p := &fusion.Profile{SpacingM: 5, S: make([]float64, 10), GradeRad: make([]float64, 10), Var: make([]float64, 10)}
	for i := range p.S {
		p.S[i] = float64(i) * 5
		p.GradeRad[i] = 0.01 * rng.NormFloat64()
		p.Var[i] = 1e-5
	}
	for i := 0; i < 3; i++ {
		if err := srv.Submit("r1", p); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(debugHandler(srv, time.Now().Add(-time.Second)))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Roads         int     `json:"roads"`
		Submissions   int     `json:"submissions"`
		Build         *struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
		Devices *struct {
			Count int     `json:"count"`
			P10   float64 `json:"reputation_p10"`
			P50   float64 `json:"reputation_p50"`
			P90   float64 `json:"reputation_p90"`
		} `json:"devices"`
		Coalescer *struct {
			Enabled    bool   `json:"enabled"`
			QueueDepth int    `json:"queue_depth"`
			ShedTotal  uint64 `json:"shed_total"`
		} `json:"coalescer"`
		SLO *struct {
			Status     string `json:"status"`
			Objectives []struct {
				Name            string  `json:"name"`
				BudgetRemaining float64 `json:"budget_remaining"`
			} `json:"objectives"`
		} `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q", body.Status)
	}
	if body.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v", body.UptimeSeconds)
	}
	if body.Roads != 1 || body.Submissions != 3 {
		t.Errorf("roads/submissions = %d/%d, want 1/3", body.Roads, body.Submissions)
	}
	if body.Build == nil || body.Build.GoVersion == "" {
		t.Errorf("build block = %+v, want go_version", body.Build)
	}
	if body.Devices == nil {
		t.Fatal("devices block missing")
	}
	// Direct Submit carries no device id: empty fleet reads fully trusted.
	if body.Devices.Count != 0 || body.Devices.P10 != 1 || body.Devices.P50 != 1 || body.Devices.P90 != 1 {
		t.Errorf("devices = %+v, want empty fully-trusted fleet", body.Devices)
	}
	if body.Coalescer == nil {
		t.Fatal("coalescer block missing")
	}
	if !body.Coalescer.Enabled {
		t.Error("coalescer.enabled = false on a coalescing server")
	}
	if body.Coalescer.QueueDepth < 0 {
		t.Errorf("queue_depth = %d", body.Coalescer.QueueDepth)
	}
	if body.SLO == nil {
		t.Fatal("slo block missing on an SLO-enabled server")
	}
	if body.SLO.Status != "ok" || len(body.SLO.Objectives) != 2 {
		t.Errorf("slo = %+v, want ok with 2 objectives", body.SLO)
	}
	for _, o := range body.SLO.Objectives {
		if o.BudgetRemaining != 1 {
			t.Errorf("objective %s budget_remaining = %v, want untouched 1", o.Name, o.BudgetRemaining)
		}
	}

	// A plain server (no coalescer, no SLO engine) still reports the
	// coalescer block, disabled, and omits the SLO block entirely.
	plain := cloud.NewServer()
	ts2 := httptest.NewServer(debugHandler(plain, time.Now()))
	defer ts2.Close()
	resp2, err := ts2.Client().Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body.SLO = nil
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Coalescer == nil || body.Coalescer.Enabled {
		t.Errorf("plain server coalescer block = %+v, want present and disabled", body.Coalescer)
	}
	if body.SLO != nil {
		t.Errorf("plain server slo block = %+v, want absent", body.SLO)
	}
}

// TestNewLogger covers the -log-format gate.
func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Error("unknown log format should error")
	}
}
