package main

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"roadgrade/internal/cloud"
	"roadgrade/internal/fusion"
)

// TestHealthzShape pins the /healthz contract: status, uptime, road and
// submission counts, and the coalescer block (enabled, queue_depth,
// shed_total) that load-balancer probes and dashboards read.
func TestHealthzShape(t *testing.T) {
	srv := cloud.NewServerWithShards(2)
	srv.EnableCoalescing(cloud.CoalesceConfig{})
	defer srv.Close()

	rng := rand.New(rand.NewSource(1))
	p := &fusion.Profile{SpacingM: 5, S: make([]float64, 10), GradeRad: make([]float64, 10), Var: make([]float64, 10)}
	for i := range p.S {
		p.S[i] = float64(i) * 5
		p.GradeRad[i] = 0.01 * rng.NormFloat64()
		p.Var[i] = 1e-5
	}
	for i := 0; i < 3; i++ {
		if err := srv.Submit("r1", p); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(debugHandler(srv, time.Now().Add(-time.Second)))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Roads         int     `json:"roads"`
		Submissions   int     `json:"submissions"`
		Coalescer     *struct {
			Enabled    bool   `json:"enabled"`
			QueueDepth int    `json:"queue_depth"`
			ShedTotal  uint64 `json:"shed_total"`
		} `json:"coalescer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q", body.Status)
	}
	if body.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v", body.UptimeSeconds)
	}
	if body.Roads != 1 || body.Submissions != 3 {
		t.Errorf("roads/submissions = %d/%d, want 1/3", body.Roads, body.Submissions)
	}
	if body.Coalescer == nil {
		t.Fatal("coalescer block missing")
	}
	if !body.Coalescer.Enabled {
		t.Error("coalescer.enabled = false on a coalescing server")
	}
	if body.Coalescer.QueueDepth < 0 {
		t.Errorf("queue_depth = %d", body.Coalescer.QueueDepth)
	}

	// A plain (non-coalescing) server still reports the block, disabled.
	plain := cloud.NewServer()
	ts2 := httptest.NewServer(debugHandler(plain, time.Now()))
	defer ts2.Close()
	resp2, err := ts2.Client().Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Coalescer == nil || body.Coalescer.Enabled {
		t.Errorf("plain server coalescer block = %+v, want present and disabled", body.Coalescer)
	}
}

// TestNewLogger covers the -log-format gate.
func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Error("unknown log format should error")
	}
}
