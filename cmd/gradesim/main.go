// Command gradesim simulates a drive with the smartphone sensor suite, runs
// the road gradient estimation pipeline, and writes results.
//
// Usage:
//
//	gradesim -road red -speed 40 -out trace.csv -profile profile.csv
//	gradesim -road scurve -seed 9
//	gradesim -road straight -grade 3 -length 1500
//	gradesim -road journey                  # multi-street route across a city
//	gradesim -mount-yaw 20 -mount-pitch 8   # misaligned phone + auto-alignment
//
// The trace CSV is the raw sensor log (plug it back in with the trace
// package); the profile CSV is the fused gradient estimate vs the true and
// §III-D reference grades.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"roadgrade/internal/core"
	"roadgrade/internal/frame"
	"roadgrade/internal/fusion"
	"roadgrade/internal/groundtruth"
	"roadgrade/internal/road"
	"roadgrade/internal/route"
	"roadgrade/internal/sensors"
	"roadgrade/internal/trace"
	"roadgrade/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gradesim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		roadKind   = flag.String("road", "red", "route: red | scurve | straight | journey")
		gradeDeg   = flag.Float64("grade", 3, "grade for -road straight (degrees)")
		lengthM    = flag.Float64("length", 1500, "length for -road straight (meters)")
		speedKmh   = flag.Float64("speed", 40, "cruise speed (km/h)")
		seed       = flag.Int64("seed", 1, "random seed")
		traceOut   = flag.String("out", "", "write raw sensor trace CSV to this path")
		profOut    = flag.String("profile", "", "write fused profile CSV to this path")
		mountYaw   = flag.Float64("mount-yaw", 0, "phone mount yaw (degrees)")
		mountPitch = flag.Float64("mount-pitch", 0, "phone mount pitch (degrees)")
		mountRoll  = flag.Float64("mount-roll", 0, "phone mount roll (degrees)")
	)
	flag.Parse()

	r, err := buildRoad(*roadKind, *lengthM, *gradeDeg, *seed)
	if err != nil {
		return err
	}
	misaligned := *mountYaw != 0 || *mountPitch != 0 || *mountRoll != 0
	d := vehicle.DefaultDriver(*speedKmh / 3.6)
	d.LaneChangesPerKm = 2
	tripCfg := vehicle.TripConfig{
		Road: r, Driver: d, Rng: rand.New(rand.NewSource(*seed)),
	}
	if misaligned {
		// Alignment needs the trip-start stop-and-launch window.
		tripCfg.WarmupStopS = 5
	}
	trip, err := vehicle.SimulateTrip(tripCfg)
	if err != nil {
		return fmt.Errorf("simulating trip: %w", err)
	}
	scfg := sensors.DefaultConfig()
	scfg.Mount = frame.Mount{
		Yaw:   road.Deg(*mountYaw),
		Pitch: road.Deg(*mountPitch),
		Roll:  road.Deg(*mountRoll),
	}
	trc, err := sensors.Sample(trip, scfg, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		return fmt.Errorf("sampling sensors: %w", err)
	}
	if misaligned {
		res, err := sensors.AlignTrace(trc)
		if err != nil {
			return fmt.Errorf("aligning phone mount: %w", err)
		}
		fmt.Printf("phone mount recovered: yaw=%.1f pitch=%.1f roll=%.1f deg\n",
			res.Mount.Yaw*180/math.Pi, res.Mount.Pitch*180/math.Pi, res.Mount.Roll*180/math.Pi)
	}
	fmt.Printf("road %s: %.2f km, %d lane changes, %.0f s drive\n",
		r.ID(), r.Length()/1000, len(trip.Changes), trc.Duration())

	p, err := core.NewPipeline(core.Config{})
	if err != nil {
		return err
	}
	tracks, err := p.EstimateAll(trc, r.Line())
	if err != nil {
		return fmt.Errorf("estimating tracks: %w", err)
	}
	prof, err := fusion.FuseTracks(tracks, 5, r.Length())
	if err != nil {
		return fmt.Errorf("fusing tracks: %w", err)
	}
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(*seed+2)))
	if err != nil {
		return fmt.Errorf("building reference: %w", err)
	}

	// Report accuracy.
	var sumErr float64
	var n int
	for i := range prof.S {
		if prof.S[i] < 100 || prof.S[i] > ref.Length() {
			continue
		}
		truth := ref.GradeAvgAt(prof.S[i], prof.SpacingM)
		sumErr += math.Abs(prof.GradeRad[i]-truth) * 180 / math.Pi
		n++
	}
	if n > 0 {
		fmt.Printf("mean |error| vs reference: %.3f deg over %d cells\n", sumErr/float64(n), n)
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error { return trace.WriteCSV(f, trc) }); err != nil {
			return err
		}
		fmt.Printf("sensor trace written to %s\n", *traceOut)
	}
	if *profOut != "" {
		if err := writeFile(*profOut, func(f *os.File) error { return writeProfileCSV(f, prof, r, ref) }); err != nil {
			return err
		}
		fmt.Printf("fused profile written to %s\n", *profOut)
	}
	return nil
}

func buildRoad(kind string, lengthM, gradeDeg float64, seed int64) (*road.Road, error) {
	switch kind {
	case "red":
		return road.RedRoute()
	case "scurve":
		return road.SCurveRoad(0, 0)
	case "straight":
		return road.StraightRoad("straight", lengthM, road.Deg(gradeDeg), 2)
	case "journey":
		return buildJourney(seed)
	default:
		return nil, fmt.Errorf("unknown road kind %q (want red | scurve | straight | journey)", kind)
	}
}

// buildJourney routes across a synthetic city and concatenates the streets.
func buildJourney(seed int64) (*road.Road, error) {
	net, err := road.GenerateNetwork(seed+1826, road.NetworkConfig{TargetStreetKM: 25})
	if err != nil {
		return nil, err
	}
	from := net.Nodes[0].ID
	to := net.Nodes[len(net.Nodes)-1].ID
	rt, err := route.Shortest(net, from, to, route.DistanceCost)
	if err != nil {
		return nil, err
	}
	roads := make([]*road.Road, 0, len(rt.Edges))
	for _, e := range rt.Edges {
		roads = append(roads, e.Road)
	}
	return road.Concat("journey", roads)
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}

func writeProfileCSV(f *os.File, prof *fusion.Profile, r *road.Road, ref *groundtruth.Reference) error {
	if _, err := fmt.Fprintln(f, "s_m,grade_est_deg,grade_true_deg,grade_ref_deg,var"); err != nil {
		return err
	}
	for i := range prof.S {
		s := prof.S[i]
		_, err := fmt.Fprintf(f, "%.1f,%.5f,%.5f,%.5f,%.8f\n",
			s,
			prof.GradeRad[i]*180/math.Pi,
			r.GradeAt(s)*180/math.Pi,
			ref.GradeAvgAt(s, prof.SpacingM)*180/math.Pi,
			prof.Var[i])
		if err != nil {
			return err
		}
	}
	return nil
}
