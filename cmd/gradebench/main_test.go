package main

import (
	"strings"
	"testing"

	"roadgrade/internal/experiment"
)

// TestUnknownExperimentError: an unrecognized -exp must produce an error (the
// CLI exits non-zero on any run() error) whose message carries every valid
// experiment ID — the same catalogue -list prints.
func TestUnknownExperimentError(t *testing.T) {
	err := unknownExpError("fig99")
	if err == nil {
		t.Fatal("expected an error for an unknown experiment")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"fig99"`) {
		t.Errorf("message does not name the bad ID: %q", msg)
	}
	names := experiment.Names()
	if len(names) == 0 {
		t.Fatal("no registered experiments")
	}
	for _, name := range names {
		if !strings.Contains(msg, name) {
			t.Errorf("message missing valid ID %q", name)
		}
	}
	if !strings.Contains(msg, listText()) {
		t.Errorf("message should embed the -list output verbatim")
	}
}
