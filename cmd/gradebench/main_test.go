package main

import (
	"sort"
	"strings"
	"testing"

	"roadgrade/internal/experiment"
)

// TestUnknownExperimentError: an unrecognized -exp must produce an error (the
// CLI exits non-zero on any run() error) whose message carries every valid
// experiment ID — the same catalogue -list prints.
func TestUnknownExperimentError(t *testing.T) {
	err := unknownExpError("fig99")
	if err == nil {
		t.Fatal("expected an error for an unknown experiment")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"fig99"`) {
		t.Errorf("message does not name the bad ID: %q", msg)
	}
	names := experiment.Names()
	if len(names) == 0 {
		t.Fatal("no registered experiments")
	}
	for _, name := range names {
		if !strings.Contains(msg, name) {
			t.Errorf("message missing valid ID %q", name)
		}
	}
	if !strings.Contains(msg, listText()) {
		t.Errorf("message should embed the -list output verbatim")
	}
}

// TestListingSortedAndDeterministic locks the -list catalogue: sorted,
// stable across calls (Names ranges a map — ordering must not leak through),
// and inclusive of the eco-routing experiment.
func TestListingSortedAndDeterministic(t *testing.T) {
	first := listText()
	names := strings.Split(first, "\n")
	if !sort.StringsAreSorted(names) {
		t.Errorf("listing is not sorted:\n%s", first)
	}
	found := false
	for _, n := range names {
		if n == "ecoroutes" {
			found = true
		}
	}
	if !found {
		t.Errorf("listing lacks the ecoroutes experiment:\n%s", first)
	}
	for i := 0; i < 20; i++ {
		if got := listText(); got != first {
			t.Fatalf("listing is not deterministic:\nfirst:\n%s\ncall %d:\n%s", first, i+2, got)
		}
	}
	if got := unknownExpError("nope").Error(); !strings.HasSuffix(got, first) {
		t.Errorf("unknown -exp error does not end with the sorted listing: %q", got)
	}
}
