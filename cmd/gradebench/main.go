// Command gradebench regenerates the paper's evaluation tables and figures
// on the simulated substrate.
//
// Usage:
//
//	gradebench -exp all            # run every experiment (full workloads)
//	gradebench -exp fig8a -seed 7  # one experiment, custom seed
//	gradebench -list               # list experiment IDs
//	gradebench -exp fig9b -quick   # shrunken workload (seconds, not minutes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"roadgrade/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gradebench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName    = flag.String("exp", "all", "experiment ID or 'all'")
		seed       = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		quick      = flag.Bool("quick", false, "use shrunken workloads")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		format     = flag.String("format", "text", "output format: text | json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiment.Names(), "\n"))
		return nil
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("creating heap profile: %w", err)
		}
		defer func() {
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gradebench: writing heap profile: %v\n", err)
			}
			f.Close()
		}()
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text | json)", *format)
	}
	opt := experiment.Options{Seed: *seed, Quick: *quick}
	var tables []experiment.Table
	if *expName == "all" {
		all, err := experiment.All(opt)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := experiment.Run(*expName, opt)
		if err != nil {
			return err
		}
		tables = []experiment.Table{t}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	return nil
}
