// Command gradebench regenerates the paper's evaluation tables and figures
// on the simulated substrate.
//
// Usage:
//
//	gradebench -exp all            # run every experiment (full workloads)
//	gradebench -exp fig8a -seed 7  # one experiment, custom seed
//	gradebench -list               # list experiment IDs
//	gradebench -exp fig9b -quick   # shrunken workload (seconds, not minutes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"roadgrade/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gradebench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName = flag.String("exp", "all", "experiment ID or 'all'")
		seed    = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		quick   = flag.Bool("quick", false, "use shrunken workloads")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		format  = flag.String("format", "text", "output format: text | json")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiment.Names(), "\n"))
		return nil
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text | json)", *format)
	}
	opt := experiment.Options{Seed: *seed, Quick: *quick}
	var tables []experiment.Table
	if *expName == "all" {
		all, err := experiment.All(opt)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := experiment.Run(*expName, opt)
		if err != nil {
			return err
		}
		tables = []experiment.Table{t}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	return nil
}
