// Command gradebench regenerates the paper's evaluation tables and figures
// on the simulated substrate.
//
// Usage:
//
//	gradebench -exp all             # run every experiment (full workloads)
//	gradebench -exp fig8a -seed 7   # one experiment, custom seed
//	gradebench -list                # list experiment IDs
//	gradebench -exp fig9b -quick    # shrunken workload (seconds, not minutes)
//	gradebench -exp fig9a -metrics  # dump the metrics registry after the run
//	gradebench -exp fig9a -tracefile t.json  # span timeline for chrome://tracing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"roadgrade/internal/experiment"
	"roadgrade/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gradebench: %v\n", err)
		os.Exit(1)
	}
}

// listText renders the experiment IDs exactly as `-list` prints them.
func listText() string {
	return strings.Join(experiment.Names(), "\n")
}

// unknownExpError builds the error for an unrecognized -exp value: the
// message carries the full valid-ID list, so the CLI exits non-zero with the
// same catalogue `-list` prints.
func unknownExpError(name string) error {
	return fmt.Errorf("unknown experiment %q; valid experiment IDs:\n%s", name, listText())
}

func run() error {
	var (
		expName    = flag.String("exp", "all", "experiment ID or 'all'")
		seed       = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		quick      = flag.Bool("quick", false, "use shrunken workloads")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		format     = flag.String("format", "text", "output format: text | json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metrics    = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text) to stderr after the run")
		traceFile  = flag.String("tracefile", "", "write the span timeline as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
		routeEng   = flag.String("route-engine", "", "routing experiments' search engine: alt | cch (empty: alt); route costs are identical either way")
	)
	flag.Parse()

	if *list {
		fmt.Println(listText())
		return nil
	}
	if *expName != "all" {
		if _, ok := experiment.Registry()[*expName]; !ok {
			return unknownExpError(*expName)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("creating heap profile: %w", err)
		}
		defer func() {
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gradebench: writing heap profile: %v\n", err)
			}
			f.Close()
		}()
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text | json)", *format)
	}
	if *traceFile != "" {
		obs.DefaultTracer.Enable()
	}
	if *metrics {
		obs.RegisterRuntimeGauges(obs.Default)
	}
	opt := experiment.Options{Seed: *seed, Quick: *quick, RouteEngine: *routeEng}
	var tables []experiment.Table
	if *expName == "all" {
		all, err := experiment.All(opt)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := experiment.Run(*expName, opt)
		if err != nil {
			return err
		}
		tables = []experiment.Table{t}
	}
	if *traceFile != "" {
		obs.DefaultTracer.Disable()
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		if err := obs.DefaultTracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing trace file: %w", err)
		}
	}
	// The metrics dump goes to stderr so table output on stdout stays
	// byte-identical (and diffable) with or without -metrics.
	if *metrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "== metrics ==")
			_ = obs.Default.WritePrometheus(os.Stderr)
		}()
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	return nil
}
