package mat

import (
	"fmt"
	"math"
)

// Vector helpers operate on plain []float64 so callers do not need to wrap
// sensor streams in Matrix values.

// Dot returns the inner product of u and v.
func Dot(u, v []float64) float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(u), len(v)))
	}
	var s float64
	for i, uv := range u {
		s += uv * v[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AxPlusY returns a*x + y element-wise as a new slice.
func AxPlusY(a float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AxPlusY length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a*x[i] + y[i]
	}
	return out
}

// SubVec returns u - v element-wise as a new slice.
func SubVec(u, v []float64) []float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("mat: SubVec length mismatch %d vs %d", len(u), len(v)))
	}
	out := make([]float64, len(u))
	for i := range u {
		out[i] = u[i] - v[i]
	}
	return out
}

// AddVec returns u + v element-wise as a new slice.
func AddVec(u, v []float64) []float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("mat: AddVec length mismatch %d vs %d", len(u), len(v)))
	}
	out := make([]float64, len(u))
	for i := range u {
		out[i] = u[i] + v[i]
	}
	return out
}

// ScaleVec returns a*v as a new slice.
func ScaleVec(a float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
