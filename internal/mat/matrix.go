// Package mat provides small dense matrix and vector algebra used throughout
// the road-gradient estimation pipeline: Kalman filter covariance updates,
// local-regression normal equations and track-fusion convex combinations.
//
// The Go standard library has no linear algebra, so this package implements
// the needed subset from scratch. Matrices are row-major, value-semantics-free
// (methods mutate the receiver only where documented) and sized for the tiny
// systems this project solves (state dimension 2-4, regression degree <= 3).
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular")

// ErrNotPSD is returned by Cholesky when the matrix is not positive definite.
var ErrNotPSD = errors.New("mat: matrix is not positive definite")

// Matrix is a dense, row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a rows x cols zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows requires at least one row and column")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: got %d cols, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d ...float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Mul returns a * b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Mul3 returns a * b * c, a common Kalman-update shape.
func Mul3(a, b, c *Matrix) *Matrix { return Mul(Mul(a, b), c) }

// Sum returns a + b.
func Sum(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: Sum dimension mismatch %dx%d + %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: Sub dimension mismatch %dx%d - %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(s float64, a *Matrix) *Matrix {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Transpose returns the transpose of a.
func Transpose(a *Matrix) *Matrix {
	out := New(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// Symmetrize returns (a + aᵀ)/2, used to keep covariance matrices symmetric
// under floating-point drift.
func Symmetrize(a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic("mat: Symmetrize requires a square matrix")
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[i*a.cols+j] = 0.5 * (a.data[i*a.cols+j] + a.data[j*a.cols+i])
		}
	}
	return out
}

// lu holds an LU factorization with partial pivoting: PA = LU.
type lu struct {
	f    *Matrix // packed L (unit lower, implicit 1s) and U
	perm []int   // row permutation
	sign int     // permutation sign, for Det
}

func factorLU(a *Matrix) (*lu, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: LU requires square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	f := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below the diagonal.
		p, max := k, math.Abs(f.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.data[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.data[k*n+j], f.data[p*n+j] = f.data[p*n+j], f.data[k*n+j]
			}
			perm[k], perm[p] = perm[p], perm[k]
			sign = -sign
		}
		piv := f.data[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.data[i*n+k] / piv
			f.data[i*n+k] = l
			for j := k + 1; j < n; j++ {
				f.data[i*n+j] -= l * f.data[k*n+j]
			}
		}
	}
	return &lu{f: f, perm: perm, sign: sign}, nil
}

// solveVec solves Ax = b given the factorization.
func (d *lu) solveVec(b []float64) []float64 {
	n := d.f.rows
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[d.perm[i]]
	}
	// Forward substitution (unit lower).
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= d.f.data[i*n+j] * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= d.f.data[i*n+j] * x[j]
		}
		x[i] /= d.f.data[i*n+i]
	}
	return x
}

// Solve solves A X = B for X. A must be square and nonsingular.
func Solve(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows {
		return nil, fmt.Errorf("mat: Solve dimension mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	f, err := factorLU(a)
	if err != nil {
		return nil, err
	}
	out := New(a.rows, b.cols)
	col := make([]float64, a.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < a.rows; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x := f.solveVec(col)
		for i := 0; i < a.rows; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out, nil
}

// SolveVec solves A x = b for a vector b.
func SolveVec(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("mat: SolveVec dimension mismatch %dx%d vs %d", a.rows, a.cols, len(b))
	}
	f, err := factorLU(a)
	if err != nil {
		return nil, err
	}
	return f.solveVec(b), nil
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// Det returns the determinant of a square matrix. A singular matrix yields 0.
func Det(a *Matrix) float64 {
	f, err := factorLU(a)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return 0
		}
		panic(err)
	}
	n := a.rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.f.data[i*n+i]
	}
	return det
}

// Cholesky returns the lower-triangular L with A = L Lᵀ, or ErrNotPSD.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Cholesky requires square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.data[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l.data[i*n+k] * l.data[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPSD
				}
				l.data[i*n+i] = math.Sqrt(sum)
			} else {
				l.data[i*n+j] = sum / l.data[j*n+j]
			}
		}
	}
	return l, nil
}

// IsPSD reports whether a symmetric matrix is positive semi-definite, within
// tolerance tol added to the diagonal.
func IsPSD(a *Matrix, tol float64) bool {
	shifted := a.Clone()
	for i := 0; i < shifted.rows; i++ {
		shifted.data[i*shifted.cols+i] += tol
	}
	_, err := Cholesky(Symmetrize(shifted))
	return err == nil
}

// MulVec returns A v as a new slice.
func MulVec(a *Matrix, v []float64) []float64 {
	if a.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.rows, a.cols, len(v)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// OuterProduct returns u vᵀ.
func OuterProduct(u, v []float64) *Matrix {
	out := New(len(u), len(v))
	for i, uv := range u {
		for j, vv := range v {
			out.data[i*out.cols+j] = uv * vv
		}
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func Trace(a *Matrix) float64 {
	if a.rows != a.cols {
		panic("mat: Trace requires a square matrix")
	}
	var t float64
	for i := 0; i < a.rows; i++ {
		t += a.data[i*a.cols+i]
	}
	return t
}

// MaxAbsDiff returns max |a_ij - b_ij|; a convenience for tests and
// convergence checks.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: MaxAbsDiff dimension mismatch")
	}
	var max float64
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.data[i*m.cols+j])
		}
		b.WriteString("]")
		if i != m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
