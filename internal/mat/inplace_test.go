package mat

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func mustEqual(t *testing.T, got, want *Matrix, op string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", op, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: (%d,%d) = %v, want %v (must be bit-identical)", op, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestIntoOpsBitIdentical checks every *Into op against its allocating
// counterpart on random matrices — the EKF's determinism rests on them being
// bit-for-bit equal, not just close.
func TestIntoOpsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		a := randMat(rng, n, m)
		b := randMat(rng, m, n)
		c := randMat(rng, n, m)
		sq := randMat(rng, n, n)

		mustEqual(t, MulInto(nil, a, b), Mul(a, b), "MulInto")
		mustEqual(t, TransposeInto(nil, a), Transpose(a), "TransposeInto")
		mustEqual(t, SumInto(nil, a, c), Sum(a, c), "SumInto")
		mustEqual(t, SubInto(nil, a, c), Sub(a, c), "SubInto")
		mustEqual(t, SymmetrizeInto(nil, sq), Symmetrize(sq), "SymmetrizeInto")
		mustEqual(t, CopyInto(nil, a), a.Clone(), "CopyInto")

		// Reused destinations (right shape) give the same answers.
		dst := New(n, n)
		mustEqual(t, MulInto(dst, a, b), Mul(a, b), "MulInto reused")
		// Aliased accumulate: dst == a is allowed for Sum/Sub.
		aCopy := a.Clone()
		mustEqual(t, SumInto(aCopy, aCopy, c), Sum(a, c), "SumInto aliased")

		v := make([]float64, m)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		gotV := MulVecInto(nil, a, v)
		wantV := MulVec(a, v)
		for i := range wantV {
			if gotV[i] != wantV[i] {
				t.Fatalf("MulVecInto[%d] = %v, want %v", i, gotV[i], wantV[i])
			}
		}
		u := make([]float64, m)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		gotS := SubVecInto(nil, v, u)
		wantS := SubVec(v, u)
		for i := range wantS {
			if gotS[i] != wantS[i] {
				t.Fatalf("SubVecInto[%d] = %v, want %v", i, gotS[i], wantS[i])
			}
		}
	}
}

func TestIntoAliasPanics(t *testing.T) {
	a := randMat(rand.New(rand.NewSource(6)), 3, 3)
	for name, fn := range map[string]func(){
		"MulInto":        func() { MulInto(a, a, a) },
		"TransposeInto":  func() { TransposeInto(a, a) },
		"SymmetrizeInto": func() { SymmetrizeInto(a, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: aliased dst did not panic", name)
				}
			}()
			fn()
		}()
	}
}
