package mat

import "fmt"

// In-place variants of the allocation-heavy operations. They exist for hot
// loops — the EKF runs a predict/update pair per sensor tick per velocity
// source per sweep direction, and the allocating API was the dominant heap
// churn of the evaluation suite. Each *Into function reuses dst when it has
// the right shape (allocating otherwise) and returns it, and performs the
// exact same arithmetic in the same order as its allocating counterpart, so
// results are bit-identical.

// ensureShape returns dst if it is rows x cols, else a fresh matrix.
func ensureShape(dst *Matrix, rows, cols int) *Matrix {
	if dst == nil || dst.rows != rows || dst.cols != cols {
		return New(rows, cols)
	}
	return dst
}

// MulInto computes a*b into dst and returns it. dst must not alias a or b.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	dst = ensureShape(dst, a.rows, b.cols)
	if dst == a || dst == b {
		panic("mat: MulInto dst aliases an input")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// TransposeInto computes aᵀ into dst and returns it. dst must not alias a.
func TransposeInto(dst, a *Matrix) *Matrix {
	dst = ensureShape(dst, a.cols, a.rows)
	if dst == a {
		panic("mat: TransposeInto dst aliases the input")
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			dst.data[j*dst.cols+i] = a.data[i*a.cols+j]
		}
	}
	return dst
}

// SumInto computes a+b into dst and returns it. dst may alias a or b.
func SumInto(dst, a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: SumInto dimension mismatch %dx%d + %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	dst = ensureShape(dst, a.rows, a.cols)
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
	return dst
}

// SubInto computes a-b into dst and returns it. dst may alias a or b.
func SubInto(dst, a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: SubInto dimension mismatch %dx%d - %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	dst = ensureShape(dst, a.rows, a.cols)
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
	return dst
}

// SymmetrizeInto computes (a + aᵀ)/2 into dst and returns it. dst must not
// alias a (elements are read transposed after their mirror is written).
func SymmetrizeInto(dst, a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic("mat: SymmetrizeInto requires a square matrix")
	}
	dst = ensureShape(dst, a.rows, a.cols)
	if dst == a {
		panic("mat: SymmetrizeInto dst aliases the input")
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			dst.data[i*a.cols+j] = 0.5 * (a.data[i*a.cols+j] + a.data[j*a.cols+i])
		}
	}
	return dst
}

// MulVecInto computes A*v into dst (reused when len matches) and returns it.
// dst must not alias v.
func MulVecInto(dst []float64, a *Matrix, v []float64) []float64 {
	if a.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVecInto dimension mismatch %dx%d * %d", a.rows, a.cols, len(v)))
	}
	if len(dst) != a.rows {
		dst = make([]float64, a.rows)
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
	return dst
}

// SubVecInto computes u-v into dst (reused when len matches) and returns it.
func SubVecInto(dst, u, v []float64) []float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("mat: SubVecInto length mismatch %d vs %d", len(u), len(v)))
	}
	if len(dst) != len(u) {
		dst = make([]float64, len(u))
	}
	for i := range u {
		dst[i] = u[i] - v[i]
	}
	return dst
}

// CopyInto copies a into dst (reusing dst when shapes match) and returns it.
func CopyInto(dst, a *Matrix) *Matrix {
	dst = ensureShape(dst, a.rows, a.cols)
	copy(dst.data, a.data)
	return dst
}
