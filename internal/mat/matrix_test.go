package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 4.5)
	if got := m.At(1, 2); got != 4.5 {
		t.Errorf("At(1,2) = %v, want 4.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 5.0 {
		t.Errorf("after Add, At(1,2) = %v, want 5.0", got)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows layout wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromRows with ragged rows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag(1, 1, 1)
	if MaxAbsDiff(id, d) != 0 {
		t.Errorf("Identity(3) != Diag(1,1,1)")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 4)
	if MaxAbsDiff(Mul(a, Identity(4)), a) > 1e-12 {
		t.Error("A*I != A")
	}
	if MaxAbsDiff(Mul(Identity(4), a), a) > 1e-12 {
		t.Error("I*A != A")
	}
}

func TestSumSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got, want := Sum(a, b), FromRows([][]float64{{5, 5}, {5, 5}}); MaxAbsDiff(got, want) != 0 {
		t.Errorf("Sum = %v", got)
	}
	if got, want := Sub(a, b), FromRows([][]float64{{-3, -1}, {1, 3}}); MaxAbsDiff(got, want) != 0 {
		t.Errorf("Sub = %v", got)
	}
	if got, want := Scale(2, a), FromRows([][]float64{{2, 4}, {6, 8}}); MaxAbsDiff(got, want) != 0 {
		t.Errorf("Scale = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := Transpose(a)
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := FromRows([][]float64{{3}, {5}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 2x + y = 3; x + 3y = 5 => x = 4/5, y = 7/5.
	if math.Abs(x.At(0, 0)-0.8) > 1e-12 || math.Abs(x.At(1, 0)-1.4) > 1e-12 {
		t.Errorf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Identity(2)); !errors.Is(err, ErrSingular) {
		t.Errorf("Solve singular err = %v, want ErrSingular", err)
	}
	if got := Det(a); got != 0 {
		t.Errorf("Det(singular) = %v, want 0", got)
	}
}

func TestDet(t *testing.T) {
	tests := []struct {
		name string
		m    *Matrix
		want float64
	}{
		{"identity", Identity(3), 1},
		{"2x2", FromRows([][]float64{{1, 2}, {3, 4}}), -2},
		{"3x3", FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}), 24},
		{"permuted", FromRows([][]float64{{0, 1}, {1, 0}}), -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Det(tt.m); math.Abs(got-tt.want) > 1e-10 {
				t.Errorf("Det = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 6; n++ {
		a := diagonallyDominant(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d Inverse: %v", n, err)
		}
		if d := MaxAbsDiff(Mul(a, inv), Identity(n)); d > 1e-9 {
			t.Errorf("n=%d: |A*A^-1 - I| = %g", n, d)
		}
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	if d := MaxAbsDiff(Mul(l, Transpose(l)), a); d > 1e-12 {
		t.Errorf("LL^T differs from A by %g", d)
	}
}

func TestCholeskyNotPSD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPSD) {
		t.Errorf("Cholesky err = %v, want ErrNotPSD", err)
	}
}

func TestIsPSD(t *testing.T) {
	if !IsPSD(FromRows([][]float64{{2, 1}, {1, 2}}), 1e-12) {
		t.Error("PSD matrix reported as not PSD")
	}
	if IsPSD(FromRows([][]float64{{1, 2}, {2, 1}}), 1e-12) {
		t.Error("indefinite matrix reported as PSD")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := MulVec(a, []float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestOuterProduct(t *testing.T) {
	got := OuterProduct([]float64{1, 2}, []float64{3, 4, 5})
	want := FromRows([][]float64{{3, 4, 5}, {6, 8, 10}})
	if MaxAbsDiff(got, want) != 0 {
		t.Errorf("OuterProduct = %v", got)
	}
}

func TestTrace(t *testing.T) {
	if got := Trace(FromRows([][]float64{{1, 9}, {9, 2}})); got != 3 {
		t.Errorf("Trace = %v, want 3", got)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 3}})
	s := Symmetrize(a)
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %v", s)
	}
}

func TestRowColClone(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	r[0] = 99 // must not alias
	if a.At(1, 0) != 3 {
		t.Error("Row returned aliasing slice")
	}
	c := a.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Errorf("Col = %v", c)
	}
	cl := a.Clone()
	cl.Set(0, 0, -1)
	if a.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

// Property: Solve(A, b) recovers x with Ax = b for diagonally dominant A.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := diagonallyDominant(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := MulVec(a, x)
		got, err := SolveVec(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (A B)^T = B^T A^T.
func TestTransposeMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := randomMatrix(r, n, m)
		b := randomMatrix(r, m, p)
		lhs := Transpose(Mul(a, b))
		rhs := Mul(Transpose(b), Transpose(a))
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: det(AB) = det(A) det(B).
func TestDetProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a := randomMatrix(r, n, n)
		b := randomMatrix(r, n, n)
		lhs := Det(Mul(a, b))
		rhs := Det(a) * Det(b)
		scale := math.Max(1, math.Abs(lhs))
		return math.Abs(lhs-rhs)/scale < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVecHelpers(t *testing.T) {
	u := []float64{1, 2, 3}
	v := []float64{4, 5, 6}
	if got := Dot(u, v); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := AxPlusY(2, u, v); got[0] != 6 || got[2] != 12 {
		t.Errorf("AxPlusY = %v", got)
	}
	if got := SubVec(v, u); got[0] != 3 || got[2] != 3 {
		t.Errorf("SubVec = %v", got)
	}
	if got := AddVec(v, u); got[0] != 5 || got[2] != 9 {
		t.Errorf("AddVec = %v", got)
	}
	if got := ScaleVec(3, u); got[1] != 6 {
		t.Errorf("ScaleVec = %v", got)
	}
	c := CloneVec(u)
	c[0] = 9
	if u[0] != 1 {
		t.Error("CloneVec aliases input")
	}
}

func TestStringSmoke(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {3, 4}}).String()
	if s == "" {
		t.Error("String returned empty")
	}
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	return m
}

// diagonallyDominant returns a random well-conditioned square matrix.
func diagonallyDominant(r *rand.Rand, n int) *Matrix {
	m := randomMatrix(r, n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			rowSum += math.Abs(m.At(i, j))
		}
		m.Set(i, i, rowSum+1)
	}
	return m
}

func BenchmarkMul4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randomMatrix(rng, 4, 4)
	y := randomMatrix(rng, 4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkInverse4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := diagonallyDominant(rng, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Inverse(x); err != nil {
			b.Fatal(err)
		}
	}
}
