package emission

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
)

// TripEmissions integrates the operating-mode model over a drive described
// by per-sample speed, acceleration and grade at interval dt, returning
// total grams per pollutant — the emission analog of fuel.TripFuel.
func TripEmissions(p Params, dt float64, v, a, grade []float64) (Grams, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return Grams{}, err
	}
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return Grams{}, fmt.Errorf("emission: invalid dt %v", dt)
	}
	if len(v) != len(a) || len(v) != len(grade) {
		return Grams{}, fmt.Errorf("emission: series length mismatch %d/%d/%d", len(v), len(a), len(grade))
	}
	var out Grams
	rates := p.rateTable()
	for i := range v {
		g := rates[p.OpModeFor(v[i], a[i], grade[i]).Index()]
		for s := range out {
			out[s] += g[s] * dt / 3600
		}
	}
	return out, nil
}

// RoadEmissions is the per-pollutant Figure 10(b) quantity for one road: a
// cruising vehicle's emission intensity, per pollutant, in grams per km.
type RoadEmissions struct {
	RoadID       string
	Class        road.Class
	LengthM      float64
	MeanGradeDeg float64
	// GramsPerKm is the per-vehicle emission intensity of each pollutant.
	GramsPerKm Grams
}

// cellStepM matches the fused grade map's 5 m cell spacing: integrating at
// the map's native resolution means no gradient information is discarded.
const cellStepM = 5.0

// RoadEmissionsAt integrates the operating-mode model along one road at
// constant cruise speed, sampling the gradient at the midpoint of every
// 5 m cell (mirroring fuel.RoadFuelAt's structure at the fused map's
// resolution). Because the bin lookup is a step function of grade, a road
// with one steep pitch can emit far more than its mean grade suggests —
// exactly the non-linearity the per-cell integration preserves.
func RoadEmissionsAt(r *road.Road, speedMS float64, grade fuel.GradeFunc, p Params) (RoadEmissions, error) {
	p = p.WithDefaults()
	if r == nil {
		return RoadEmissions{}, errors.New("emission: nil road")
	}
	if speedMS <= 0 || math.IsNaN(speedMS) || math.IsInf(speedMS, 0) {
		return RoadEmissions{}, fmt.Errorf("emission: speed %v must be positive", speedMS)
	}
	if grade == nil {
		return RoadEmissions{}, errors.New("emission: nil grade func")
	}
	if err := p.Validate(); err != nil {
		return RoadEmissions{}, err
	}
	length := r.Length()
	rates := p.rateTable()
	var total Grams
	var sumGrade float64
	var n int
	for s := 0.0; s < length; s += cellStepM {
		ds := cellStepM
		if s+ds > length {
			ds = length - s
		}
		g := grade(r, s+ds/2)
		row := rates[p.OpModeFor(speedMS, 0, g).Index()]
		dt := ds / speedMS
		for sp := range total {
			total[sp] += row[sp] * dt / 3600
		}
		sumGrade += g
		n++
	}
	out := RoadEmissions{RoadID: r.ID(), Class: r.Class(), LengthM: length}
	if n == 0 {
		// Degenerate zero-length road: report the point rate's intensity.
		g := grade(r, 0)
		row := rates[p.OpModeFor(speedMS, 0, g).Index()]
		out.MeanGradeDeg = g * 180 / math.Pi
		out.GramsPerKm = row.Scale(1 / (speedMS * 3.6))
		return out, nil
	}
	out.MeanGradeDeg = sumGrade / float64(n) * 180 / math.Pi
	out.GramsPerKm = total.Scale(1000 / length)
	return out, nil
}

// NetworkEmissions evaluates RoadEmissionsAt over every edge of a network
// — the data behind the pollutant extension of the Figure 10(b) city map.
func NetworkEmissions(net *road.Network, speedMS float64, grade fuel.GradeFunc, p Params) ([]RoadEmissions, error) {
	if net == nil || len(net.Edges) == 0 {
		return nil, errors.New("emission: empty network")
	}
	out := make([]RoadEmissions, 0, len(net.Edges))
	for _, e := range net.Edges {
		re, err := RoadEmissionsAt(e.Road, speedMS, grade, p)
		if err != nil {
			return nil, fmt.Errorf("emission: road %s: %w", e.Road.ID(), err)
		}
		out = append(out, re)
	}
	return out, nil
}
