// Package emission implements a MOVESTAR-style operating-mode emission
// model, closing the air-pollution half of the paper's title: where
// internal/fuel's Eq. (7) model predicts fuel (and the fuel-proportional
// CO₂/PM factors of §III-E), this package predicts the pollutants whose
// rates are NOT proportional to fuel — CO, NOx, HC, and PM2.5 — from the
// same instantaneous (speed, acceleration, grade) triple the gradient map
// makes computable per road.
//
// The model follows "MOVESTAR: An Open-Source Vehicle Fuel and Emission
// Model based on USEPA MOVES" (PAPERS.md): each second of operation is
// classified into an operating-mode bin keyed by Vehicle Specific Power
// (VSP) and a speed class, and each bin carries a per-pollutant emission
// rate (grams/hour). Binning is the load-bearing idea — emission rates are
// strongly non-linear in power demand (a catalyst running rich at high
// load emits CO orders of magnitude faster than at cruise), so a binned
// lookup reproduces behavior a smooth fuel-proportional model cannot:
// min-NOx routes genuinely diverge from min-fuel routes on hills.
//
// Bin boundaries are half-open intervals [lo, hi) evaluated on exact
// float64 constants, so an input landing exactly on a boundary classifies
// deterministically (no float-boundary flapping); see OpModeFor.
package emission

import (
	"fmt"
	"math"
	"strings"
)

// Pollutant identifies one modeled exhaust species.
type Pollutant int

const (
	// CO is carbon monoxide — dominated by rich combustion at high load.
	CO Pollutant = iota
	// NOx is oxides of nitrogen — driven by combustion temperature, rising
	// steeply with sustained power demand (hills).
	NOx
	// HC is unburned hydrocarbons.
	HC
	// PM25 is fine particulate matter (PM2.5).
	PM25

	// NumPollutants is the number of modeled species.
	NumPollutants = 4
)

// String returns the pollutant's short name.
func (p Pollutant) String() string {
	switch p {
	case CO:
		return "co"
	case NOx:
		return "nox"
	case HC:
		return "hc"
	case PM25:
		return "pm25"
	default:
		return fmt.Sprintf("Pollutant(%d)", int(p))
	}
}

// Pollutants lists every modeled pollutant in stable order.
func Pollutants() []Pollutant { return []Pollutant{CO, NOx, HC, PM25} }

// Grams holds one value per pollutant, indexed by Pollutant.
type Grams [NumPollutants]float64

// Get returns the value for one pollutant.
func (g Grams) Get(p Pollutant) float64 { return g[p] }

// Add accumulates other into g.
func (g *Grams) Add(other Grams) {
	for i := range g {
		g[i] += other[i]
	}
}

// Scale multiplies every species by f.
func (g Grams) Scale(f float64) Grams {
	for i := range g {
		g[i] *= f
	}
	return g
}

// VehicleClass selects a rate table; the classes mirror the fleet
// simulator's device mix (cloudload -mix car:…,truck:…,bus:…).
type VehicleClass int

const (
	// Car is the light-duty gasoline passenger car (the paper's Table II
	// vehicle).
	Car VehicleClass = iota
	// Truck is a diesel heavy truck: low CO, high NOx and PM.
	Truck
	// Bus is a diesel transit bus, between car and truck in most species.
	Bus

	numVehicleClasses = 3
)

// String returns the class name.
func (c VehicleClass) String() string {
	switch c {
	case Car:
		return "car"
	case Truck:
		return "truck"
	case Bus:
		return "bus"
	default:
		return fmt.Sprintf("VehicleClass(%d)", int(c))
	}
}

// VehicleClasses lists the modeled classes in stable order.
func VehicleClasses() []VehicleClass { return []VehicleClass{Car, Truck, Bus} }

// ParseVehicleClass resolves a class name (case-insensitive).
func ParseVehicleClass(s string) (VehicleClass, error) {
	switch strings.ToLower(s) {
	case "", "car":
		return Car, nil
	case "truck":
		return Truck, nil
	case "bus":
		return Bus, nil
	}
	return 0, fmt.Errorf("emission: unknown vehicle class %q (want car | truck | bus)", s)
}

// Params configure the model for one vehicle: the MOVES road-load
// coefficients that define VSP, and optionally an overriding rate table.
type Params struct {
	// Vehicle selects the built-in per-bin rate table (and documents which
	// fleet segment the road-load coefficients describe).
	Vehicle VehicleClass
	// MassTon is the vehicle mass in metric tons.
	MassTon float64
	// RollingKW is the rolling-resistance term A (kW·s/m): power per m/s.
	RollingKW float64
	// RotatingKW is the rotating-mass term B (kW·s²/m²).
	RotatingKW float64
	// DragKW is the aerodynamic term C (kW·s³/m³).
	DragKW float64
	// Rates, when non-nil, overrides the built-in per-bin rate table —
	// used by tests (the all-zero-rates property) and by calibration
	// studies. Nil selects the Vehicle class's table.
	Rates *RateTable
}

// ForVehicle returns the default parameters for a vehicle class. The car
// coefficients are the MOVES light-duty defaults (source type 21) with the
// Table II mass; truck and bus use heavier road loads.
func ForVehicle(c VehicleClass) Params {
	switch c {
	case Truck:
		return Params{Vehicle: Truck, MassTon: 14.0, RollingKW: 1.417, RotatingKW: 0.0, DragKW: 0.003588}
	case Bus:
		return Params{Vehicle: Bus, MassTon: 12.5, RollingKW: 1.083, RotatingKW: 0.0, DragKW: 0.003104}
	default:
		return Params{Vehicle: Car, MassTon: 1.479, RollingKW: 0.156461, RotatingKW: 0.00200193, DragKW: 0.000492646}
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.MassTon <= 0 || math.IsNaN(p.MassTon) || math.IsInf(p.MassTon, 0) {
		return fmt.Errorf("emission: mass %v must be positive", p.MassTon)
	}
	for _, v := range [...]float64{p.RollingKW, p.RotatingKW, p.DragKW} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("emission: negative or non-finite road-load coefficient %v", v)
		}
	}
	if p.Vehicle < 0 || int(p.Vehicle) >= numVehicleClasses {
		return fmt.Errorf("emission: unknown vehicle class %d", int(p.Vehicle))
	}
	return nil
}

// WithDefaults fills zero-valued road-load fields from the class defaults,
// so Params{Vehicle: emission.Truck} works as written.
func (p Params) WithDefaults() Params {
	if p.MassTon == 0 && p.RollingKW == 0 && p.RotatingKW == 0 && p.DragKW == 0 {
		def := ForVehicle(p.Vehicle)
		def.Rates = p.Rates
		return def
	}
	return p
}

// VSPKWPerTon evaluates Vehicle Specific Power in kW per metric ton at
// speed v (m/s), acceleration a (m/s²), and road grade θ (radians):
//
//	VSP = (A·v + B·v² + C·v³)/m + (a + g·sinθ)·v
//
// the canonical MOVES form. Grade enters exactly like acceleration — a 5%
// climb at cruise demands the same specific power as a ~0.5 m/s² surge on
// the flat, which is why gradient-blind emission maps are wrong on hills.
func (p Params) VSPKWPerTon(vMS, aMS2, gradeRad float64) float64 {
	road := (p.RollingKW*vMS + p.RotatingKW*vMS*vMS + p.DragKW*vMS*vMS*vMS) / p.MassTon
	return road + (aMS2+gravityMS2*math.Sin(gradeRad))*vMS
}

const gravityMS2 = 9.81

// Speed-class and braking boundaries, in MOVES' native mph converted at
// the exact statute factor. All comparisons in OpModeFor are half-open on
// these constants, so boundary inputs classify deterministically.
const (
	mphToMS = 0.44704
	// idleSpeedMS: below 1 mph the vehicle is idling (opMode 1).
	idleSpeedMS = 1 * mphToMS
	// midSpeedMS: the <25 mph / [25,50) mph class boundary.
	midSpeedMS = 25 * mphToMS
	// highSpeedMS: the [25,50) / ≥50 mph class boundary.
	highSpeedMS = 50 * mphToMS
	// brakeDecelMS2: deceleration at or beyond 2 mph/s is braking
	// (opMode 0) regardless of speed.
	brakeDecelMS2 = -2 * mphToMS
)

// OpMode is a MOVES operating-mode bin identifier. The IDs follow MOVES'
// running-exhaust numbering: 0 braking, 1 idle, 11–16 low speed class,
// 21–30 mid class (no 26), 33–40 high class (no 34/36).
type OpMode int

// The modeled operating-mode bins in ascending ID order.
const (
	OpBraking OpMode = 0
	OpIdle    OpMode = 1
)

// opModes lists every bin in stable (ascending) order; rate tables are
// indexed by position in this list.
var opModes = []OpMode{
	OpBraking, OpIdle,
	11, 12, 13, 14, 15, 16, // v < 25 mph, VSP bins
	21, 22, 23, 24, 25, 27, 28, 29, 30, // 25 ≤ v < 50 mph
	33, 35, 37, 38, 39, 40, // v ≥ 50 mph
}

// NumOpModes is the number of operating-mode bins.
const NumOpModes = 23

// opModeIndex maps a bin ID to its position in opModes.
var opModeIndex = func() map[OpMode]int {
	m := make(map[OpMode]int, len(opModes))
	for i, op := range opModes {
		m[op] = i
	}
	return m
}()

// OpModes lists the modeled bins in ascending ID order.
func OpModes() []OpMode { return append([]OpMode(nil), opModes...) }

// Index returns the bin's position in OpModes() (the rate-table row), or
// -1 for an unknown ID.
func (op OpMode) Index() int {
	if i, ok := opModeIndex[op]; ok {
		return i
	}
	return -1
}

// OpModeFor classifies one instant of operation. Precedence follows MOVES:
// braking first (hard deceleration dominates everything), then idle, then
// the speed class picks a VSP bin family. Every interval is half-open
// [lo, hi): an exact boundary value lands in the upper bin, always.
func (p Params) OpModeFor(vMS, aMS2, gradeRad float64) OpMode {
	// Non-physical inputs classify as idle: a negative or non-finite speed
	// is sensor garbage, and idle is the lowest-emitting running bin — the
	// conservative floor, mirroring fuel.RateGPH's 0-below-idle guard.
	if vMS < 0 || math.IsNaN(vMS) || math.IsInf(vMS, 0) ||
		math.IsNaN(aMS2) || math.IsInf(aMS2, 0) ||
		math.IsNaN(gradeRad) || math.IsInf(gradeRad, 0) {
		return OpIdle
	}
	if aMS2 <= brakeDecelMS2 {
		return OpBraking
	}
	if vMS < idleSpeedMS {
		return OpIdle
	}
	vsp := p.VSPKWPerTon(vMS, aMS2, gradeRad)
	switch {
	case vMS < midSpeedMS:
		switch {
		case vsp < 0:
			return 11
		case vsp < 3:
			return 12
		case vsp < 6:
			return 13
		case vsp < 9:
			return 14
		case vsp < 12:
			return 15
		default:
			return 16
		}
	case vMS < highSpeedMS:
		switch {
		case vsp < 0:
			return 21
		case vsp < 3:
			return 22
		case vsp < 6:
			return 23
		case vsp < 9:
			return 24
		case vsp < 12:
			return 25
		case vsp < 18:
			return 27
		case vsp < 24:
			return 28
		case vsp < 30:
			return 29
		default:
			return 30
		}
	default:
		switch {
		case vsp < 6:
			return 33
		case vsp < 12:
			return 35
		case vsp < 18:
			return 37
		case vsp < 24:
			return 38
		case vsp < 30:
			return 39
		default:
			return 40
		}
	}
}

// RateTable maps every operating-mode bin (by Index order) to its
// per-pollutant emission rates in grams/hour.
type RateTable [NumOpModes]Grams

// carRates is the light-duty gasoline table, shaped after the MOVESTAR
// reference curves (not copied — MOVESTAR ships MATLAB lookup data, these
// are smoothed g/hr values with the same structure): CO explodes in the
// enrichment bins at the top of each speed class, NOx climbs roughly
// geometrically with VSP (combustion temperature), HC is idle-heavy and
// grows slowly, PM2.5 is small but load-sensitive. Every rate is strictly
// positive so per-edge pollutant costs are positive (Dijkstra's
// precondition).
var carRates = RateTable{
	// opMode           CO      NOx    HC     PM2.5  (g/hr)
	{30, 0.60, 1.20, 0.050},    // 0  braking
	{20, 0.40, 1.00, 0.020},    // 1  idle
	{35, 0.90, 1.50, 0.030},    // 11 coast (<25 mph, VSP<0)
	{45, 1.40, 1.80, 0.045},    // 12
	{60, 2.20, 2.20, 0.070},    // 13
	{80, 3.40, 2.70, 0.110},    // 14
	{110, 5.00, 3.30, 0.170},   // 15
	{150, 7.40, 4.10, 0.260},   // 16
	{40, 1.20, 1.60, 0.040},    // 21 coast (25–50 mph, VSP<0)
	{55, 2.00, 2.00, 0.060},    // 22
	{75, 3.20, 2.50, 0.090},    // 23
	{100, 5.00, 3.10, 0.140},   // 24
	{135, 7.60, 3.90, 0.210},   // 25
	{190, 11.50, 5.00, 0.320},  // 27
	{280, 17.00, 6.60, 0.480},  // 28
	{420, 25.00, 8.80, 0.720},  // 29
	{620, 36.00, 12.00, 1.080}, // 30
	{90, 4.00, 2.80, 0.120},    // 33 (≥50 mph, VSP<6)
	{160, 8.00, 4.20, 0.240},   // 35
	{260, 14.00, 6.20, 0.420},  // 37
	{400, 23.00, 9.00, 0.700},  // 38
	{600, 36.00, 13.00, 1.100}, // 39
	{900, 55.00, 19.00, 1.700}, // 40
}

// classScale derives the diesel heavy-duty tables from the car table:
// diesel engines run lean (less CO enrichment relative to engine size),
// burn hot under load (much more NOx), and emit soot (much more PM).
var classScale = [numVehicleClasses]Grams{
	Car:   {1, 1, 1, 1},
	Truck: {1.8, 7.0, 2.2, 10.0},
	Bus:   {1.5, 5.5, 2.0, 7.0},
}

// rateTables holds the per-class tables, derived once at init.
var rateTables = func() [numVehicleClasses]RateTable {
	var out [numVehicleClasses]RateTable
	for c := range out {
		for i, g := range carRates {
			for p := range g {
				g[p] *= classScale[c][p]
			}
			out[c][i] = g
		}
	}
	return out
}()

// Rates returns the built-in rate table for a vehicle class.
func Rates(c VehicleClass) RateTable {
	if c < 0 || int(c) >= numVehicleClasses {
		return rateTables[Car]
	}
	return rateTables[c]
}

// rateTable resolves the effective table: an override if set, otherwise
// the class's built-in.
func (p Params) rateTable() *RateTable {
	if p.Rates != nil {
		return p.Rates
	}
	if p.Vehicle < 0 || int(p.Vehicle) >= numVehicleClasses {
		return &rateTables[Car]
	}
	return &rateTables[p.Vehicle]
}

// RatesGPH returns the per-pollutant emission rates (grams/hour) for one
// instant of operation: the rate row of the operating-mode bin that
// (v, a, grade) classifies into.
func (p Params) RatesGPH(vMS, aMS2, gradeRad float64) Grams {
	return p.rateTable()[p.OpModeFor(vMS, aMS2, gradeRad).Index()]
}
