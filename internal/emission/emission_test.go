package emission

import (
	"math"
	"testing"

	"roadgrade/internal/fuel"
	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

// linParams has zero road load and unit mass, so VSP = (a + g·sinθ)·v
// exactly — lets tests place inputs on exact bin boundaries.
func linParams() Params {
	return Params{Vehicle: Car, MassTon: 1}
}

func TestOpModeBoundariesDeterministic(t *testing.T) {
	p := linParams()
	justBelow := func(x float64) float64 { return math.Nextafter(x, math.Inf(-1)) }
	cases := []struct {
		name    string
		v, a, g float64
		want    OpMode
	}{
		// Braking threshold: exactly -2 mph/s is braking; one ulp above is not.
		{"brake-exact", 10, brakeDecelMS2, 0, OpBraking},
		{"brake-above", 10, justBelow(-brakeDecelMS2) * -1, 0, 11}, // a one ulp gentler than threshold, VSP<0
		{"brake-dominates-idle", 0.1, brakeDecelMS2, 0, OpBraking},
		// Idle threshold: below 1 mph idles; exactly 1 mph runs.
		{"idle-below", justBelow(idleSpeedMS), 0, 0, OpIdle},
		{"idle-exact-runs", idleSpeedMS, 1, 0, 12}, // VSP = 0.44704 ∈ [0,3)
		{"zero-speed", 0, 0, 0, OpIdle},
		// Speed-class edges: exactly 25 mph joins the mid class, exactly
		// 50 mph the high class; one ulp below stays in the lower class.
		{"class-mid-exact", midSpeedMS, 0, 0, 22}, // VSP = 0 → [0,3) mid bin
		{"class-mid-below", justBelow(midSpeedMS), 0, 0, 12},
		{"class-high-exact", highSpeedMS, 0, 0, 33}, // VSP = 0 → [0,6) high bin
		{"class-high-below", justBelow(highSpeedMS), 0, 0, 22},
		// VSP bin edges (VSP = a·v exactly with these params): an exact
		// edge value lands in the upper bin, one ulp below in the lower.
		{"vsp-0-exact", 2, 0, 0, 12},
		{"vsp-0-below", 2, justBelow(0), 0, 11},
		{"vsp-3-exact", 2, 1.5, 0, 13},
		{"vsp-3-below", 2, justBelow(1.5), 0, 12},
		{"vsp-6-exact", 2, 3, 0, 14},
		{"vsp-9-exact", 2, 4.5, 0, 15},
		{"vsp-12-exact", 2, 6, 0, 16},
		{"vsp-12-below", 2, justBelow(6), 0, 15},
		// Mid class upper bins: v = 16 m/s ∈ [25,50) mph.
		{"mid-vsp-12-exact", 16, 0.75, 0, 27},
		{"mid-vsp-18-exact", 16, 1.125, 0, 28},
		{"mid-vsp-24-exact", 16, 1.5, 0, 29},
		{"mid-vsp-30-exact", 16, 1.875, 0, 30},
		{"mid-vsp-30-below", 16, justBelow(1.875), 0, 29},
		// High class: v = 24 m/s ≥ 50 mph.
		{"high-vsp-6-exact", 24, 0.25, 0, 35},
		{"high-vsp-12-exact", 24, 0.5, 0, 37},
		{"high-vsp-18-exact", 24, 0.75, 0, 38},
		{"high-vsp-24-exact", 24, 1, 0, 39},
		{"high-vsp-30-exact", 24, 1.25, 0, 40},
		{"high-vsp-30-below", 24, justBelow(1.25), 0, 39},
		// Non-finite / non-physical inputs classify as idle.
		{"nan-speed", math.NaN(), 0, 0, OpIdle},
		{"inf-accel", 10, math.Inf(1), 0, OpIdle},
		{"nan-grade", 10, 0, math.NaN(), OpIdle},
		{"negative-speed", -3, 0, 0, OpIdle},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := p.OpModeFor(tc.v, tc.a, tc.g)
			if got != tc.want {
				t.Fatalf("OpModeFor(%v, %v, %v) = %d, want %d", tc.v, tc.a, tc.g, got, tc.want)
			}
			// Determinism: the same input always lands in the same bin.
			for i := 0; i < 3; i++ {
				if again := p.OpModeFor(tc.v, tc.a, tc.g); again != got {
					t.Fatalf("OpModeFor flapped: %d then %d", got, again)
				}
			}
		})
	}
}

func TestOpModeTableConsistency(t *testing.T) {
	ops := OpModes()
	if len(ops) != NumOpModes {
		t.Fatalf("OpModes() has %d bins, NumOpModes = %d", len(ops), NumOpModes)
	}
	for i, op := range ops {
		if op.Index() != i {
			t.Fatalf("bin %d Index() = %d, want %d", op, op.Index(), i)
		}
		if i > 0 && ops[i-1] >= op {
			t.Fatalf("bin IDs not ascending: %d before %d", ops[i-1], op)
		}
	}
	if OpMode(26).Index() != -1 || OpMode(34).Index() != -1 || OpMode(36).Index() != -1 {
		t.Fatal("MOVES skips bins 26, 34, 36; Index() must return -1 for them")
	}
}

func TestRatesStrictlyPositive(t *testing.T) {
	// Dijkstra requires positive edge costs: every bin of every class's
	// table must be strictly positive for every pollutant.
	for _, c := range VehicleClasses() {
		tab := Rates(c)
		for i, row := range tab {
			for _, sp := range Pollutants() {
				if row[sp] <= 0 {
					t.Fatalf("%s bin %d %s rate %v not positive", c, OpModes()[i], sp, row[sp])
				}
			}
		}
	}
}

func TestTruckBusScaledFromCar(t *testing.T) {
	car, truck := Rates(Car), Rates(Truck)
	if truck[0][NOx] <= car[0][NOx]*6 {
		t.Fatalf("truck NOx %v not scaled up from car %v", truck[0][NOx], car[0][NOx])
	}
	if got := ForVehicle(Truck); got.Vehicle != Truck || got.MassTon <= ForVehicle(Car).MassTon {
		t.Fatalf("ForVehicle(Truck) = %+v", got)
	}
}

func TestTripEmissionsZeroRatesExactlyZero(t *testing.T) {
	// Property: with an all-zero rate table, any trip emits exactly zero
	// grams of every pollutant — bit-exact, not approximately.
	p := ForVehicle(Car)
	p.Rates = &RateTable{}
	v := []float64{0, 3, 11.176, 22.352, 30, -1, math.Inf(1)}
	a := []float64{0, 1, -2, 0.5, -0.9, 0, 0}
	g := []float64{0, 0.05, -0.05, 0.02, 0, 0, 0}
	// Non-finite speed classifies as idle, which is still a table row —
	// so even garbage inputs must produce exactly zero.
	got, err := TripEmissions(p, 1, v, a, g)
	if err != nil {
		t.Fatalf("TripEmissions: %v", err)
	}
	if got != (Grams{}) {
		t.Fatalf("zero-rate trip emitted %v, want exact zeros", got)
	}
}

func TestTripEmissionsMatchesManualSum(t *testing.T) {
	p := ForVehicle(Car)
	dt := 0.5
	v := []float64{2, 8, 15, 24}
	a := []float64{0.3, 1.0, -1.0, 0.1}
	g := []float64{0, 0.03, -0.02, 0.01}
	got, err := TripEmissions(p, dt, v, a, g)
	if err != nil {
		t.Fatalf("TripEmissions: %v", err)
	}
	var want Grams
	for i := range v {
		r := p.RatesGPH(v[i], a[i], g[i])
		for s := range want {
			want[s] += r[s] * dt / 3600
		}
	}
	if got != want {
		t.Fatalf("TripEmissions = %v, manual sum = %v", got, want)
	}
	if _, err := TripEmissions(p, 0, v, a, g); err == nil {
		t.Fatal("dt=0 accepted")
	}
	if _, err := TripEmissions(p, 1, v, a, g[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func testRoad(t *testing.T, id string, grades []float64) *road.Road {
	t.Helper()
	lengthM := 5 * float64(len(grades))
	line, err := geo.NewPolyline([]geo.ENU{{E: 0, N: 0}, {E: lengthM, N: 0}})
	if err != nil {
		t.Fatalf("polyline: %v", err)
	}
	prof, err := road.NewProfileFromGrades(5, grades, 100)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	r, err := road.NewRoad(id, line, prof, nil, road.ClassCollector)
	if err != nil {
		t.Fatalf("road: %v", err)
	}
	return r
}

func TestRoadEmissionsUphillExceedsFlat(t *testing.T) {
	flatGr := make([]float64, 40)
	steepGr := make([]float64, 40)
	for i := range steepGr {
		steepGr[i] = 0.06 // 6% climb: two VSP bins above flat at urban speed
	}
	flat := testRoad(t, "flat", flatGr)
	steep := testRoad(t, "steep", steepGr)
	p := ForVehicle(Car)
	speed := 40.0 / 3.6
	fe, err := RoadEmissionsAt(flat, speed, fuel.TrueGrade, p)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	se, err := RoadEmissionsAt(steep, speed, fuel.TrueGrade, p)
	if err != nil {
		t.Fatalf("steep: %v", err)
	}
	for _, sp := range Pollutants() {
		if se.GramsPerKm[sp] <= fe.GramsPerKm[sp] {
			t.Fatalf("%s: steep %.4f g/km not above flat %.4f g/km", sp, se.GramsPerKm[sp], fe.GramsPerKm[sp])
		}
	}
	if se.MeanGradeDeg < 3 {
		t.Fatalf("steep road mean grade %.2f°, want ≥3°", se.MeanGradeDeg)
	}
	// Flat evaluation of the steep road must equal the flat road's rates:
	// same length, same class, grade forced to zero.
	sf, err := RoadEmissionsAt(steep, speed, fuel.FlatGrade, p)
	if err != nil {
		t.Fatalf("steep/flat: %v", err)
	}
	if sf.GramsPerKm != fe.GramsPerKm {
		t.Fatalf("flat-evaluated steep road %v != flat road %v", sf.GramsPerKm, fe.GramsPerKm)
	}
}

func TestNetworkEmissions(t *testing.T) {
	net, err := road.GenerateNetwork(7, road.NetworkConfig{TargetStreetKM: 3})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	rows, err := NetworkEmissions(net, 40.0/3.6, fuel.TrueGrade, ForVehicle(Car))
	if err != nil {
		t.Fatalf("NetworkEmissions: %v", err)
	}
	if len(rows) != len(net.Edges) {
		t.Fatalf("got %d rows for %d edges", len(rows), len(net.Edges))
	}
	for _, r := range rows {
		for _, sp := range Pollutants() {
			if r.GramsPerKm[sp] <= 0 || math.IsNaN(r.GramsPerKm[sp]) {
				t.Fatalf("road %s %s = %v", r.RoadID, sp, r.GramsPerKm[sp])
			}
		}
	}
}

func TestParseVehicleClass(t *testing.T) {
	for _, c := range VehicleClasses() {
		got, err := ParseVehicleClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseVehicleClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if got, err := ParseVehicleClass(""); err != nil || got != Car {
		t.Fatalf("empty class = %v, %v; want Car", got, err)
	}
	if _, err := ParseVehicleClass("tank"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestParamsDefaults(t *testing.T) {
	// Zero road-load Params pick up the class defaults.
	got, err := TripEmissions(Params{Vehicle: Truck}, 1, []float64{10}, []float64{0}, []float64{0})
	if err != nil {
		t.Fatalf("TripEmissions: %v", err)
	}
	def, err := TripEmissions(ForVehicle(Truck), 1, []float64{10}, []float64{0}, []float64{0})
	if err != nil {
		t.Fatalf("TripEmissions: %v", err)
	}
	if got != def {
		t.Fatalf("zero-value Params %v != ForVehicle defaults %v", got, def)
	}
	if err := (Params{Vehicle: Car, MassTon: -1}).Validate(); err == nil {
		t.Fatal("negative mass accepted")
	}
}
