// Package kalman provides the Extended Kalman Filter used by the road
// gradient estimator (§III-C2) and the altitude-EKF baseline. The filter is
// generic over a user-supplied nonlinear process/measurement model with
// analytic Jacobians, and uses the Joseph-form covariance update for
// numerical robustness over long traces.
package kalman

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/mat"
	"roadgrade/internal/obs"
)

// nisHist is the distribution of normalized innovation squared across every
// gated update in the process — the filter-consistency signal (NIS ≈ 1 when
// healthy; mass near the gate means the model disagrees with the sensors).
// Observing is three uncontended atomics, cheap enough for the per-tick path.
var nisHist = obs.Default.Histogram("kalman_nis", obs.NISBuckets)

// Model describes a discrete-time nonlinear system
//
//	x(t+1) = f(x(t)) + w,  w ~ N(0, Q)
//	z(t)   = h(x(t)) + v,  v ~ N(0, R)
//
// with analytic Jacobians F = ∂f/∂x and H = ∂h/∂x.
//
// Implementations may reuse one Matrix/slice buffer across calls of the
// same function (the hot models do, to keep the per-tick allocation count
// at zero); callers that retain a returned value past the next call must
// clone it.
type Model struct {
	StateDim int
	MeasDim  int
	// Predict evaluates f.
	Predict func(x []float64) []float64
	// PredictJacobian evaluates F at x.
	PredictJacobian func(x []float64) *mat.Matrix
	// Measure evaluates h.
	Measure func(x []float64) []float64
	// MeasureJacobian evaluates H at x.
	MeasureJacobian func(x []float64) *mat.Matrix
}

// Validate reports whether the model is complete.
func (m Model) Validate() error {
	switch {
	case m.StateDim <= 0:
		return fmt.Errorf("kalman: state dimension %d must be positive", m.StateDim)
	case m.MeasDim <= 0:
		return fmt.Errorf("kalman: measurement dimension %d must be positive", m.MeasDim)
	case m.Predict == nil || m.PredictJacobian == nil:
		return errors.New("kalman: Predict and PredictJacobian are required")
	case m.Measure == nil || m.MeasureJacobian == nil:
		return errors.New("kalman: Measure and MeasureJacobian are required")
	}
	return nil
}

// Filter is an EKF instance. Not safe for concurrent use.
type Filter struct {
	model Model
	x     []float64
	p     *mat.Matrix
	q     *mat.Matrix
	r     *mat.Matrix

	// Scratch buffers reused across steps (and across Reset): the filter
	// runs a predict/update pair per sensor tick, and allocating the
	// intermediates dominated the evaluation suite's heap churn.
	scr scratch
}

// scratch holds the intermediates of one predict/update step.
type scratch struct {
	nnA, nnB, nnC, nnD *mat.Matrix // n×n intermediates
	nnT                *mat.Matrix // n×n transpose scratch
	eye                *mat.Matrix // n×n identity (constant)
	mnHP               *mat.Matrix // m×n  H·P
	nmHT               *mat.Matrix // n×m  Hᵀ
	nmPHT              *mat.Matrix // n×m  P·Hᵀ
	nmK                *mat.Matrix // n×m  gain
	nmKR               *mat.Matrix // n×m  K·R
	mnKT               *mat.Matrix // m×n  Kᵀ
	mmS                *mat.Matrix // m×m  innovation covariance
	mmSInv             *mat.Matrix // m×m
	innov, kv          []float64
}

// NewFilter builds a filter with initial state x0, initial covariance p0,
// process noise q and measurement noise r.
func NewFilter(model Model, x0 []float64, p0, q, r *mat.Matrix) (*Filter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	n, m := model.StateDim, model.MeasDim
	if len(x0) != n {
		return nil, fmt.Errorf("kalman: x0 has dim %d, want %d", len(x0), n)
	}
	for name, mm := range map[string]*mat.Matrix{"p0": p0, "q": q} {
		if mm == nil || mm.Rows() != n || mm.Cols() != n {
			return nil, fmt.Errorf("kalman: %s must be %dx%d", name, n, n)
		}
	}
	if r == nil || r.Rows() != m || r.Cols() != m {
		return nil, fmt.Errorf("kalman: r must be %dx%d", m, m)
	}
	return &Filter{
		model: model,
		x:     mat.CloneVec(x0),
		p:     p0.Clone(),
		q:     q.Clone(),
		r:     r.Clone(),
		scr:   scratch{eye: mat.Identity(n)},
	}, nil
}

// Predict advances the state one step through the process model.
func (f *Filter) Predict() {
	s := &f.scr
	fj := f.model.PredictJacobian(f.x)
	f.x = f.model.Predict(f.x)
	if len(f.x) != f.model.StateDim {
		panic(fmt.Sprintf("kalman: Predict returned dim %d, want %d", len(f.x), f.model.StateDim))
	}
	// P = F P Fᵀ + Q
	s.nnA = mat.MulInto(s.nnA, fj, f.p)
	s.nnT = mat.TransposeInto(s.nnT, fj)
	s.nnB = mat.MulInto(s.nnB, s.nnA, s.nnT)
	s.nnB = mat.SumInto(s.nnB, s.nnB, f.q)
	f.p = mat.SymmetrizeInto(f.p, s.nnB)
}

// Update folds in measurement z and returns the innovation z − h(x). The
// returned slice is a scratch buffer valid until the next Update; clone it to
// retain.
func (f *Filter) Update(z []float64) ([]float64, error) {
	innov, _, err := f.UpdateGated(z, 0)
	return innov, err
}

// UpdateGated is Update with innovation gating: if gate > 0 and the
// normalized innovation squared νᵀS⁻¹ν exceeds the gate, the measurement is
// rejected — the state and covariance are left untouched — and accepted is
// false. Non-finite measurements are likewise rejected rather than erroring,
// so a stream carrying NaN bursts degrades to prediction-only instead of
// corrupting the filter. The returned innovation is a scratch buffer valid
// until the next update; clone it to retain.
func (f *Filter) UpdateGated(z []float64, gate float64) (innov []float64, accepted bool, err error) {
	if len(z) != f.model.MeasDim {
		return nil, false, fmt.Errorf("kalman: measurement dim %d, want %d", len(z), f.model.MeasDim)
	}
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false, nil
		}
	}
	s := &f.scr
	h := f.model.MeasureJacobian(f.x)
	pred := f.model.Measure(f.x)
	s.innov = mat.SubVecInto(s.innov, z, pred)

	// S = H P Hᵀ + R
	s.nmHT = mat.TransposeInto(s.nmHT, h)
	s.mnHP = mat.MulInto(s.mnHP, h, f.p)
	s.mmS = mat.MulInto(s.mmS, s.mnHP, s.nmHT)
	s.mmS = mat.SumInto(s.mmS, s.mmS, f.r)
	var sInv *mat.Matrix
	if f.model.MeasDim == 1 {
		// 1×1 inverse inline; same result (and same singularity test) as the
		// LU path below, without the factorization allocations.
		s00 := s.mmS.At(0, 0)
		if s00 == 0 || math.IsNaN(s00) {
			return nil, false, fmt.Errorf("kalman: innovation covariance singular: %w", mat.ErrSingular)
		}
		if s.mmSInv == nil {
			s.mmSInv = mat.New(1, 1)
		}
		s.mmSInv.Set(0, 0, 1/s00)
		sInv = s.mmSInv
	} else {
		var err error
		sInv, err = mat.Inverse(s.mmS)
		if err != nil {
			return nil, false, fmt.Errorf("kalman: innovation covariance singular: %w", err)
		}
	}
	if gate > 0 {
		// νᵀ S⁻¹ ν — for the common 1-D case this is ν²/S.
		var nis float64
		for i := 0; i < f.model.MeasDim; i++ {
			var row float64
			for j := 0; j < f.model.MeasDim; j++ {
				row += sInv.At(i, j) * s.innov[j]
			}
			nis += s.innov[i] * row
		}
		nisHist.Observe(nis)
		if nis > gate {
			return s.innov, false, nil
		}
	}
	// K = P Hᵀ S⁻¹
	s.nmPHT = mat.MulInto(s.nmPHT, f.p, s.nmHT)
	s.nmK = mat.MulInto(s.nmK, s.nmPHT, sInv)
	// x += K·innov
	s.kv = mat.MulVecInto(s.kv, s.nmK, s.innov)
	for i := range f.x {
		f.x[i] += s.kv[i]
	}
	// Joseph form: P = (I−KH) P (I−KH)ᵀ + K R Kᵀ
	s.nnA = mat.MulInto(s.nnA, s.nmK, h)
	s.nnB = mat.SubInto(s.nnB, s.eye, s.nnA)
	s.nnC = mat.MulInto(s.nnC, s.nnB, f.p)
	s.nnT = mat.TransposeInto(s.nnT, s.nnB)
	s.nnD = mat.MulInto(s.nnD, s.nnC, s.nnT)
	s.nmKR = mat.MulInto(s.nmKR, s.nmK, f.r)
	s.mnKT = mat.TransposeInto(s.mnKT, s.nmK)
	s.nnA = mat.MulInto(s.nnA, s.nmKR, s.mnKT)
	s.nnD = mat.SumInto(s.nnD, s.nnD, s.nnA)
	f.p = mat.SymmetrizeInto(f.p, s.nnD)
	return s.innov, true, nil
}

// Healthy reports whether the state and covariance are finite — the
// divergence test callers run before trusting (or resetting) the filter.
func (f *Filter) Healthy() bool {
	for _, v := range f.x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	n := f.model.StateDim
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := f.p.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// State returns a copy of the current state estimate.
func (f *Filter) State() []float64 { return mat.CloneVec(f.x) }

// StateAt returns one component of the state estimate without copying.
func (f *Filter) StateAt(i int) float64 { return f.x[i] }

// SetState overwrites the state estimate (e.g. re-anchoring after a gap).
func (f *Filter) SetState(x []float64) error {
	if len(x) != f.model.StateDim {
		return fmt.Errorf("kalman: state dim %d, want %d", len(x), f.model.StateDim)
	}
	f.x = mat.CloneVec(x)
	return nil
}

// Covariance returns a copy of the current estimate covariance.
func (f *Filter) Covariance() *mat.Matrix { return f.p.Clone() }

// CovarianceAt returns one element of the estimate covariance without
// copying the matrix.
func (f *Filter) CovarianceAt(i, j int) float64 { return f.p.At(i, j) }

// Reset reinitializes the state and covariance, keeping the model, noise
// matrices and scratch buffers. It lets one filter run several passes (e.g.
// the forward/backward sweeps of the two-pass estimator) without rebuilding.
func (f *Filter) Reset(x0 []float64, p0 *mat.Matrix) error {
	n := f.model.StateDim
	if len(x0) != n {
		return fmt.Errorf("kalman: x0 has dim %d, want %d", len(x0), n)
	}
	if p0 == nil || p0.Rows() != n || p0.Cols() != n {
		return fmt.Errorf("kalman: p0 must be %dx%d", n, n)
	}
	copy(f.x, x0)
	f.p = mat.CopyInto(f.p, p0)
	return nil
}
