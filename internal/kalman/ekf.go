// Package kalman provides the Extended Kalman Filter used by the road
// gradient estimator (§III-C2) and the altitude-EKF baseline. The filter is
// generic over a user-supplied nonlinear process/measurement model with
// analytic Jacobians, and uses the Joseph-form covariance update for
// numerical robustness over long traces.
package kalman

import (
	"errors"
	"fmt"

	"roadgrade/internal/mat"
)

// Model describes a discrete-time nonlinear system
//
//	x(t+1) = f(x(t)) + w,  w ~ N(0, Q)
//	z(t)   = h(x(t)) + v,  v ~ N(0, R)
//
// with analytic Jacobians F = ∂f/∂x and H = ∂h/∂x.
type Model struct {
	StateDim int
	MeasDim  int
	// Predict evaluates f.
	Predict func(x []float64) []float64
	// PredictJacobian evaluates F at x.
	PredictJacobian func(x []float64) *mat.Matrix
	// Measure evaluates h.
	Measure func(x []float64) []float64
	// MeasureJacobian evaluates H at x.
	MeasureJacobian func(x []float64) *mat.Matrix
}

// Validate reports whether the model is complete.
func (m Model) Validate() error {
	switch {
	case m.StateDim <= 0:
		return fmt.Errorf("kalman: state dimension %d must be positive", m.StateDim)
	case m.MeasDim <= 0:
		return fmt.Errorf("kalman: measurement dimension %d must be positive", m.MeasDim)
	case m.Predict == nil || m.PredictJacobian == nil:
		return errors.New("kalman: Predict and PredictJacobian are required")
	case m.Measure == nil || m.MeasureJacobian == nil:
		return errors.New("kalman: Measure and MeasureJacobian are required")
	}
	return nil
}

// Filter is an EKF instance. Not safe for concurrent use.
type Filter struct {
	model Model
	x     []float64
	p     *mat.Matrix
	q     *mat.Matrix
	r     *mat.Matrix
}

// NewFilter builds a filter with initial state x0, initial covariance p0,
// process noise q and measurement noise r.
func NewFilter(model Model, x0 []float64, p0, q, r *mat.Matrix) (*Filter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	n, m := model.StateDim, model.MeasDim
	if len(x0) != n {
		return nil, fmt.Errorf("kalman: x0 has dim %d, want %d", len(x0), n)
	}
	for name, mm := range map[string]*mat.Matrix{"p0": p0, "q": q} {
		if mm == nil || mm.Rows() != n || mm.Cols() != n {
			return nil, fmt.Errorf("kalman: %s must be %dx%d", name, n, n)
		}
	}
	if r == nil || r.Rows() != m || r.Cols() != m {
		return nil, fmt.Errorf("kalman: r must be %dx%d", m, m)
	}
	return &Filter{
		model: model,
		x:     mat.CloneVec(x0),
		p:     p0.Clone(),
		q:     q.Clone(),
		r:     r.Clone(),
	}, nil
}

// Predict advances the state one step through the process model.
func (f *Filter) Predict() {
	fj := f.model.PredictJacobian(f.x)
	f.x = f.model.Predict(f.x)
	if len(f.x) != f.model.StateDim {
		panic(fmt.Sprintf("kalman: Predict returned dim %d, want %d", len(f.x), f.model.StateDim))
	}
	// P = F P Fᵀ + Q
	f.p = mat.Symmetrize(mat.Sum(mat.Mul3(fj, f.p, mat.Transpose(fj)), f.q))
}

// Update folds in measurement z and returns the innovation z − h(x).
func (f *Filter) Update(z []float64) ([]float64, error) {
	if len(z) != f.model.MeasDim {
		return nil, fmt.Errorf("kalman: measurement dim %d, want %d", len(z), f.model.MeasDim)
	}
	h := f.model.MeasureJacobian(f.x)
	pred := f.model.Measure(f.x)
	innov := mat.SubVec(z, pred)

	// S = H P Hᵀ + R
	s := mat.Sum(mat.Mul3(h, f.p, mat.Transpose(h)), f.r)
	sInv, err := mat.Inverse(s)
	if err != nil {
		return nil, fmt.Errorf("kalman: innovation covariance singular: %w", err)
	}
	// K = P Hᵀ S⁻¹
	k := mat.Mul3(f.p, mat.Transpose(h), sInv)
	// x += K·innov
	f.x = mat.AddVec(f.x, mat.MulVec(k, innov))
	// Joseph form: P = (I−KH) P (I−KH)ᵀ + K R Kᵀ
	ikh := mat.Sub(mat.Identity(f.model.StateDim), mat.Mul(k, h))
	f.p = mat.Symmetrize(mat.Sum(
		mat.Mul3(ikh, f.p, mat.Transpose(ikh)),
		mat.Mul3(k, f.r, mat.Transpose(k)),
	))
	return innov, nil
}

// State returns a copy of the current state estimate.
func (f *Filter) State() []float64 { return mat.CloneVec(f.x) }

// SetState overwrites the state estimate (e.g. re-anchoring after a gap).
func (f *Filter) SetState(x []float64) error {
	if len(x) != f.model.StateDim {
		return fmt.Errorf("kalman: state dim %d, want %d", len(x), f.model.StateDim)
	}
	f.x = mat.CloneVec(x)
	return nil
}

// Covariance returns a copy of the current estimate covariance.
func (f *Filter) Covariance() *mat.Matrix { return f.p.Clone() }
