package kalman

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/mat"
)

// constVelModel is a linear constant-velocity model: state [pos, vel],
// measurement pos.
func constVelModel(dt float64) Model {
	return Model{
		StateDim: 2,
		MeasDim:  1,
		Predict: func(x []float64) []float64 {
			return []float64{x[0] + dt*x[1], x[1]}
		},
		PredictJacobian: func(x []float64) *mat.Matrix {
			return mat.FromRows([][]float64{{1, dt}, {0, 1}})
		},
		Measure: func(x []float64) []float64 { return []float64{x[0]} },
		MeasureJacobian: func(x []float64) *mat.Matrix {
			return mat.FromRows([][]float64{{1, 0}})
		},
	}
}

func TestModelValidate(t *testing.T) {
	good := constVelModel(0.1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{"state-dim", func(m *Model) { m.StateDim = 0 }},
		{"meas-dim", func(m *Model) { m.MeasDim = 0 }},
		{"predict", func(m *Model) { m.Predict = nil }},
		{"predict-jac", func(m *Model) { m.PredictJacobian = nil }},
		{"measure", func(m *Model) { m.Measure = nil }},
		{"measure-jac", func(m *Model) { m.MeasureJacobian = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := constVelModel(0.1)
			tt.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestNewFilterValidation(t *testing.T) {
	m := constVelModel(0.1)
	p := mat.Identity(2)
	q := mat.Scale(0.01, mat.Identity(2))
	r := mat.Diag(0.5)
	if _, err := NewFilter(m, []float64{0}, p, q, r); err == nil {
		t.Error("wrong x0 dim should error")
	}
	if _, err := NewFilter(m, []float64{0, 0}, mat.Identity(3), q, r); err == nil {
		t.Error("wrong p0 dim should error")
	}
	if _, err := NewFilter(m, []float64{0, 0}, p, nil, r); err == nil {
		t.Error("nil q should error")
	}
	if _, err := NewFilter(m, []float64{0, 0}, p, q, mat.Identity(2)); err == nil {
		t.Error("wrong r dim should error")
	}
	bad := m
	bad.Predict = nil
	if _, err := NewFilter(bad, []float64{0, 0}, p, q, r); err == nil {
		t.Error("invalid model should error")
	}
}

func TestFilterTracksConstantVelocity(t *testing.T) {
	const dt = 0.1
	m := constVelModel(dt)
	f, err := NewFilter(m,
		[]float64{0, 0},
		mat.Diag(10, 10),
		mat.Diag(1e-5, 1e-4),
		mat.Diag(0.25),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const trueVel = 3.0
	for i := 0; i < 600; i++ {
		truePos := trueVel * dt * float64(i)
		f.Predict()
		if _, err := f.Update([]float64{truePos + rng.NormFloat64()*0.5}); err != nil {
			t.Fatal(err)
		}
	}
	x := f.State()
	if math.Abs(x[1]-trueVel) > 0.1 {
		t.Errorf("velocity estimate %v, want ~%v", x[1], trueVel)
	}
	// Covariance must have contracted from the generous prior.
	p := f.Covariance()
	if p.At(0, 0) >= 10 || p.At(1, 1) >= 10 {
		t.Errorf("covariance did not contract: %v", p)
	}
}

// A nonlinear model: state [x], measurement x².
func TestFilterNonlinearMeasurement(t *testing.T) {
	m := Model{
		StateDim: 1,
		MeasDim:  1,
		Predict:  func(x []float64) []float64 { return []float64{x[0]} },
		PredictJacobian: func(x []float64) *mat.Matrix {
			return mat.Diag(1)
		},
		Measure: func(x []float64) []float64 { return []float64{x[0] * x[0]} },
		MeasureJacobian: func(x []float64) *mat.Matrix {
			return mat.Diag(2 * x[0])
		},
	}
	f, err := NewFilter(m, []float64{2.5}, mat.Diag(1), mat.Diag(1e-6), mat.Diag(0.01))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const trueX = 3.0
	for i := 0; i < 300; i++ {
		f.Predict()
		if _, err := f.Update([]float64{trueX*trueX + rng.NormFloat64()*0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.State()[0]; math.Abs(got-trueX) > 0.05 {
		t.Errorf("nonlinear estimate %v, want ~%v", got, trueX)
	}
}

func TestCovarianceStaysPSD(t *testing.T) {
	const dt = 0.05
	m := constVelModel(dt)
	f, err := NewFilter(m,
		[]float64{0, 0},
		mat.Diag(100, 100),
		mat.Diag(1e-6, 1e-5),
		mat.Diag(0.01),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		f.Predict()
		if i%3 == 0 { // intermittent measurements, like GPS
			if _, err := f.Update([]float64{rng.NormFloat64() * 3}); err != nil {
				t.Fatal(err)
			}
		}
		if !mat.IsPSD(f.Covariance(), 1e-9) {
			t.Fatalf("covariance lost PSD at step %d", i)
		}
	}
}

func TestInnovationReturned(t *testing.T) {
	m := constVelModel(0.1)
	f, err := NewFilter(m, []float64{5, 0}, mat.Diag(1, 1), mat.Diag(1e-6, 1e-6), mat.Diag(1))
	if err != nil {
		t.Fatal(err)
	}
	innov, err := f.Update([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(innov[0]-2) > 1e-12 {
		t.Errorf("innovation = %v, want 2", innov[0])
	}
}

func TestUpdateDimensionError(t *testing.T) {
	m := constVelModel(0.1)
	f, _ := NewFilter(m, []float64{0, 0}, mat.Diag(1, 1), mat.Diag(1, 1), mat.Diag(1))
	if _, err := f.Update([]float64{1, 2}); err == nil {
		t.Error("wrong measurement dim should error")
	}
}

func TestSetState(t *testing.T) {
	m := constVelModel(0.1)
	f, _ := NewFilter(m, []float64{0, 0}, mat.Diag(1, 1), mat.Diag(1, 1), mat.Diag(1))
	if err := f.SetState([]float64{9, 1}); err != nil {
		t.Fatal(err)
	}
	if got := f.State(); got[0] != 9 || got[1] != 1 {
		t.Errorf("State = %v", got)
	}
	if err := f.SetState([]float64{1}); err == nil {
		t.Error("wrong dim should error")
	}
}

func TestStateIsCopy(t *testing.T) {
	m := constVelModel(0.1)
	f, _ := NewFilter(m, []float64{1, 2}, mat.Diag(1, 1), mat.Diag(1, 1), mat.Diag(1))
	s := f.State()
	s[0] = 99
	if f.State()[0] != 1 {
		t.Error("State aliases filter internals")
	}
	p := f.Covariance()
	p.Set(0, 0, 99)
	if f.Covariance().At(0, 0) == 99 {
		t.Error("Covariance aliases filter internals")
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	m := constVelModel(0.05)
	f, err := NewFilter(m, []float64{0, 0}, mat.Diag(1, 1), mat.Diag(1e-5, 1e-4), mat.Diag(0.25))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Predict()
		if _, err := f.Update([]float64{float64(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
}
