package kalman

import (
	"math"
	"testing"

	"roadgrade/internal/mat"
)

func gatedTestFilter(t *testing.T) *Filter {
	t.Helper()
	f, err := NewFilter(constVelModel(0.1),
		[]float64{0, 0},
		mat.Diag(1, 1),
		mat.Diag(1e-4, 1e-4),
		mat.Diag(0.25),
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUpdateGatedAcceptsConsistentMeasurement(t *testing.T) {
	f := gatedTestFilter(t)
	f.Predict()
	innov, accepted, err := f.UpdateGated([]float64{0.1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !accepted {
		t.Fatal("small innovation rejected")
	}
	if len(innov) != 1 || math.Abs(innov[0]-0.1) > 1e-9 {
		t.Errorf("innovation = %v, want [0.1]", innov)
	}
	if math.Abs(f.StateAt(0)) < 1e-12 {
		t.Error("accepted update did not move the state")
	}
}

func TestUpdateGatedRejectsOutlier(t *testing.T) {
	f := gatedTestFilter(t)
	f.Predict()
	before := []float64{f.StateAt(0), f.StateAt(1)}
	// S = P + R ≈ 1.25; a 100-unit innovation has NIS ≈ 8000 >> gate 9.
	innov, accepted, err := f.UpdateGated([]float64{100}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Fatal("outlier passed the NIS gate")
	}
	if innov == nil {
		t.Error("rejected update should still report the innovation")
	}
	if f.StateAt(0) != before[0] || f.StateAt(1) != before[1] {
		t.Error("rejected update modified the state")
	}
}

func TestUpdateGatedZeroGateDisables(t *testing.T) {
	f := gatedTestFilter(t)
	f.Predict()
	_, accepted, err := f.UpdateGated([]float64{100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !accepted {
		t.Error("gate 0 must accept everything (gating disabled)")
	}
}

func TestUpdateGatedNonFiniteMeasurement(t *testing.T) {
	f := gatedTestFilter(t)
	f.Predict()
	before := []float64{f.StateAt(0), f.StateAt(1)}
	for _, z := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		innov, accepted, err := f.UpdateGated([]float64{z}, 9)
		if err != nil {
			t.Fatalf("non-finite z must not error, got %v", err)
		}
		if accepted || innov != nil {
			t.Errorf("non-finite z=%v was accepted", z)
		}
	}
	if f.StateAt(0) != before[0] || f.StateAt(1) != before[1] {
		t.Error("non-finite measurement modified the state")
	}
	if _, _, err := f.UpdateGated([]float64{1, 2}, 9); err == nil {
		t.Error("wrong measurement dimension should error")
	}
}

func TestHealthy(t *testing.T) {
	f := gatedTestFilter(t)
	if !f.Healthy() {
		t.Fatal("fresh filter reported unhealthy")
	}
	f.x[0] = math.NaN()
	if f.Healthy() {
		t.Error("NaN state reported healthy")
	}
	f.x[0] = 0
	f.p.Set(0, 1, math.Inf(1))
	if f.Healthy() {
		t.Error("Inf covariance reported healthy")
	}
}
