package kalman

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/mat"
)

func TestSmootherValidation(t *testing.T) {
	if _, err := NewSmoother(nil); err == nil {
		t.Error("nil filter should error")
	}
	f, _ := NewFilter(constVelModel(0.1), []float64{0, 0}, mat.Diag(1, 1), mat.Diag(1, 1), mat.Diag(1))
	s, err := NewSmoother(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update([]float64{1}); err == nil {
		t.Error("Update before Predict should error")
	}
	if _, _, err := s.Smooth(); err == nil {
		t.Error("Smooth with no steps should error")
	}
	if s.Filter() != f {
		t.Error("Filter accessor wrong")
	}
}

// RTS smoothing must beat the causal filter on a constant-velocity tracking
// problem with noisy position measurements.
func TestRTSBeatsForwardFilter(t *testing.T) {
	const (
		dt    = 0.1
		steps = 400
	)
	rng := rand.New(rand.NewSource(5))

	// Ground truth: velocity changes midway.
	truePos := make([]float64, steps)
	trueVel := make([]float64, steps)
	v := 2.0
	for i := 1; i < steps; i++ {
		if i == steps/2 {
			v = -1.5
		}
		trueVel[i] = v
		truePos[i] = truePos[i-1] + v*dt
	}

	f, err := NewFilter(constVelModel(dt),
		[]float64{0, 0},
		mat.Diag(10, 10),
		mat.Diag(1e-4, 5e-3),
		mat.Diag(1.0),
	)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSmoother(f)
	if err != nil {
		t.Fatal(err)
	}
	var fwdErr float64
	for i := 0; i < steps; i++ {
		sm.Predict()
		z := truePos[i] + rng.NormFloat64()
		if _, err := sm.Update([]float64{z}); err != nil {
			t.Fatal(err)
		}
		x := sm.Filter().State()
		fwdErr += math.Abs(x[1] - trueVel[i])
	}
	if sm.Len() != steps {
		t.Fatalf("recorded %d steps", sm.Len())
	}
	xs, ps, err := sm.Smooth()
	if err != nil {
		t.Fatal(err)
	}
	var smErr float64
	for i := range xs {
		smErr += math.Abs(xs[i][1] - trueVel[i])
		if !mat.IsPSD(ps[i], 1e-9) {
			t.Fatalf("smoothed covariance not PSD at %d", i)
		}
	}
	if smErr >= fwdErr*0.8 {
		t.Errorf("RTS velocity error %v not clearly below forward %v", smErr, fwdErr)
	}
	// Endpoint agreement: the smoothed last state equals the filtered one.
	last := sm.Filter().State()
	for j := range last {
		if math.Abs(xs[steps-1][j]-last[j]) > 1e-12 {
			t.Errorf("smoothed endpoint differs from filtered state")
		}
	}
}

// The smoother must also handle prediction-only stretches (missing
// measurements), interpolating through the gap.
func TestRTSWithMeasurementGaps(t *testing.T) {
	const dt = 0.1
	rng := rand.New(rand.NewSource(7))
	f, err := NewFilter(constVelModel(dt),
		[]float64{0, 0}, mat.Diag(10, 10), mat.Diag(1e-4, 1e-3), mat.Diag(0.25))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSmoother(f)
	if err != nil {
		t.Fatal(err)
	}
	const vTrue = 3.0
	for i := 0; i < 300; i++ {
		sm.Predict()
		if i%10 == 0 { // sparse measurements
			z := vTrue*dt*float64(i) + rng.NormFloat64()*0.5
			if _, err := sm.Update([]float64{z}); err != nil {
				t.Fatal(err)
			}
		}
	}
	xs, _, err := sm.Smooth()
	if err != nil {
		t.Fatal(err)
	}
	// Velocity estimate converges despite the gaps.
	var sum float64
	var n int
	for i := 100; i < len(xs); i++ {
		sum += xs[i][1]
		n++
	}
	if got := sum / float64(n); math.Abs(got-vTrue) > 0.15 {
		t.Errorf("smoothed velocity %v, want ~%v", got, vTrue)
	}
}

func BenchmarkRTSSmooth(b *testing.B) {
	const dt = 0.05
	rng := rand.New(rand.NewSource(9))
	build := func() *Smoother {
		f, _ := NewFilter(constVelModel(dt),
			[]float64{0, 0}, mat.Diag(1, 1), mat.Diag(1e-4, 1e-3), mat.Diag(0.25))
		sm, _ := NewSmoother(f)
		for i := 0; i < 2000; i++ {
			sm.Predict()
			if _, err := sm.Update([]float64{rng.NormFloat64()}); err != nil {
				b.Fatal(err)
			}
		}
		return sm
	}
	sm := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sm.Smooth(); err != nil {
			b.Fatal(err)
		}
	}
}
