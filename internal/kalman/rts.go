package kalman

import (
	"errors"
	"fmt"

	"roadgrade/internal/mat"
)

// Smoother wraps a Filter and records the per-step quantities a
// Rauch-Tung-Striebel (RTS) fixed-interval smoother needs, then produces the
// smoothed state sequence in a backward pass. It is the exact counterpart of
// the pipeline's forward-backward combination: RTS is statistically optimal
// for the model, at the cost of storing the whole trajectory.
type Smoother struct {
	f     *Filter
	steps []rtsStep
}

type rtsStep struct {
	// Prediction at this step (before the update), and its Jacobian.
	xPred []float64
	pPred *mat.Matrix
	fJac  *mat.Matrix
	// Filtered (post-update, or post-predict when no measurement arrived).
	xFilt []float64
	pFilt *mat.Matrix
}

// NewSmoother wraps a freshly constructed filter.
func NewSmoother(f *Filter) (*Smoother, error) {
	if f == nil {
		return nil, errors.New("kalman: nil filter")
	}
	return &Smoother{f: f}, nil
}

// Predict advances the filter one step, recording the prediction.
func (s *Smoother) Predict() {
	// Clone: the Model contract lets implementations reuse the Jacobian
	// buffer across calls, and the smoother retains one per step.
	fj := s.f.model.PredictJacobian(s.f.x).Clone()
	s.f.Predict()
	s.steps = append(s.steps, rtsStep{
		xPred: s.f.State(),
		pPred: s.f.Covariance(),
		fJac:  fj,
		xFilt: s.f.State(),
		pFilt: s.f.Covariance(),
	})
}

// Update folds in a measurement for the current step (call after Predict).
func (s *Smoother) Update(z []float64) ([]float64, error) {
	if len(s.steps) == 0 {
		return nil, errors.New("kalman: Update before Predict")
	}
	innov, err := s.f.Update(z)
	if err != nil {
		return nil, err
	}
	last := &s.steps[len(s.steps)-1]
	last.xFilt = s.f.State()
	last.pFilt = s.f.Covariance()
	return innov, nil
}

// Filter exposes the wrapped filter (e.g. for State between steps).
func (s *Smoother) Filter() *Filter { return s.f }

// Len returns the number of recorded steps.
func (s *Smoother) Len() int { return len(s.steps) }

// Smooth runs the RTS backward pass and returns the smoothed states and
// covariances, one per recorded step:
//
//	C_k     = P_k|k F_kᵀ P_{k+1|k}⁻¹
//	x_k|N   = x_k|k + C_k (x_{k+1|N} − x_{k+1|k})
//	P_k|N   = P_k|k + C_k (P_{k+1|N} − P_{k+1|k}) C_kᵀ
func (s *Smoother) Smooth() ([][]float64, []*mat.Matrix, error) {
	n := len(s.steps)
	if n == 0 {
		return nil, nil, errors.New("kalman: nothing recorded to smooth")
	}
	xs := make([][]float64, n)
	ps := make([]*mat.Matrix, n)
	xs[n-1] = mat.CloneVec(s.steps[n-1].xFilt)
	ps[n-1] = s.steps[n-1].pFilt.Clone()
	for k := n - 2; k >= 0; k-- {
		cur := s.steps[k]
		next := s.steps[k+1]
		pPredInv, err := mat.Inverse(next.pPred)
		if err != nil {
			return nil, nil, fmt.Errorf("kalman: RTS at step %d: %w", k, err)
		}
		c := mat.Mul3(cur.pFilt, mat.Transpose(next.fJac), pPredInv)
		dx := mat.SubVec(xs[k+1], next.xPred)
		xs[k] = mat.AddVec(cur.xFilt, mat.MulVec(c, dx))
		dp := mat.Sub(ps[k+1], next.pPred)
		ps[k] = mat.Symmetrize(mat.Sum(cur.pFilt, mat.Mul3(c, dp, mat.Transpose(c))))
	}
	return xs, ps, nil
}
