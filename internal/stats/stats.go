// Package stats provides the summary statistics and empirical distributions
// used by the evaluation harness: mean/median/percentiles, error metrics
// (MAE, RMSE, MRE as defined in DESIGN.md §1.3), empirical CDFs for the
// Figure 8(b)/9(b) comparisons, and histograms for the map figures.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no samples.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// MAE returns the mean absolute error between estimates and truth.
func MAE(est, truth []float64) (float64, error) {
	if err := checkPair(est, truth); err != nil {
		return 0, err
	}
	var s float64
	for i := range est {
		s += math.Abs(est[i] - truth[i])
	}
	return s / float64(len(est)), nil
}

// RMSE returns the root mean squared error between estimates and truth.
func RMSE(est, truth []float64) (float64, error) {
	if err := checkPair(est, truth); err != nil {
		return 0, err
	}
	var s float64
	for i := range est {
		d := est[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(est))), nil
}

// MRE returns the Mean Relative Error used throughout the evaluation:
// Σ|est_i − truth_i| / Σ|truth_i|. This normalised form matches the paper's
// percentage scale while remaining stable where the true gradient crosses
// zero (see DESIGN.md interpretation choice 3).
func MRE(est, truth []float64) (float64, error) {
	if err := checkPair(est, truth); err != nil {
		return 0, err
	}
	var num, den float64
	for i := range est {
		num += math.Abs(est[i] - truth[i])
		den += math.Abs(truth[i])
	}
	if den == 0 {
		return 0, errors.New("stats: MRE undefined for all-zero truth")
	}
	return num / den, nil
}

// AbsErrors returns the element-wise absolute errors |est_i - truth_i|.
func AbsErrors(est, truth []float64) ([]float64, error) {
	if err := checkPair(est, truth); err != nil {
		return nil, err
	}
	out := make([]float64, len(est))
	for i := range est {
		out[i] = math.Abs(est[i] - truth[i])
	}
	return out, nil
}

func checkPair(est, truth []float64) error {
	if len(est) == 0 {
		return ErrEmpty
	}
	if len(est) != len(truth) {
		return fmt.Errorf("stats: length mismatch %d vs %d", len(est), len(truth))
	}
	return nil
}

// CDF is an empirical cumulative distribution function over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. The input is copied.
func NewCDF(samples []float64) (*CDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// Index of first element > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with At(v) >= q, for
// q in (0, 1]. It answers questions like "the absolute estimation error at
// y=0.5 in the CDF figure".
func (c *CDF) Quantile(q float64) (float64, error) {
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range (0,1]", q)
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx], nil
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// Points renders the CDF as n evenly spaced (x, P(X<=x)) pairs spanning the
// sample range, suitable for plotting the paper's CDF figures.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = Point{X: x, Y: c.At(x)}
	}
	return out
}

// Point is a generic (x, y) pair for rendered series.
type Point struct {
	X float64
	Y float64
}

// Histogram bins samples into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	N        int
}

// NewHistogram bins samples into the given number of buckets. Samples outside
// [min, max] are clamped into the edge buckets.
func NewHistogram(samples []float64, min, max float64, buckets int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if buckets <= 0 || max <= min {
		return nil, fmt.Errorf("stats: invalid histogram spec [%v,%v] x%d", min, max, buckets)
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, buckets), N: len(samples)}
	width := (max - min) / float64(buckets)
	for _, s := range samples {
		idx := int((s - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= buckets {
			idx = buckets - 1
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	return float64(h.Counts[i]) / float64(h.N)
}

// Summary bundles the descriptive statistics most experiments report.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, _ := Min(xs)
	max, _ := Max(xs)
	med, _ := Median(xs)
	p90, _ := Percentile(xs, 90)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Median: med,
		P90:    p90,
		Max:    max,
	}, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g p90=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.Max)
}

// Online accumulates mean and variance incrementally (Welford's algorithm) —
// for streaming consumers that cannot hold the sample set.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples seen.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 before any samples).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased running variance (0 with fewer than two
// samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge combines another accumulator into this one (parallel Welford).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	total := o.n + other.n
	d := other.mean - o.mean
	o.m2 += other.m2 + d*d*float64(o.n)*float64(other.n)/float64(total)
	o.mean += d * float64(other.n) / float64(total)
	o.n = total
}
