package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negatives", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); got != tt.want {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Min(nil) should return ErrEmpty")
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Max(nil) should return ErrEmpty")
	}
	xs := []float64{3, -1, 4, 1}
	if got, _ := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got, _ := Max(xs); got != 4 {
		t.Errorf("Max = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
	if got, _ := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile single = %v", got)
	}
}

func TestErrorMetrics(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{1, 1, 5}
	mae, err := MAE(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if want := (0 + 1 + 2) / 3.0; math.Abs(mae-want) > 1e-12 {
		t.Errorf("MAE = %v, want %v", mae, want)
	}
	rmse, _ := RMSE(est, truth)
	if want := math.Sqrt((0 + 1 + 4) / 3.0); math.Abs(rmse-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	mre, _ := MRE(est, truth)
	if want := 3.0 / 7.0; math.Abs(mre-want) > 1e-12 {
		t.Errorf("MRE = %v, want %v", mre, want)
	}
	if _, err := MRE(est, []float64{0, 0, 0}); err == nil {
		t.Error("MRE with zero truth should error")
	}
	if _, err := MAE(est, []float64{1}); err == nil {
		t.Error("MAE length mismatch should error")
	}
	abs, _ := AbsErrors(est, truth)
	if abs[2] != 2 {
		t.Errorf("AbsErrors = %v", abs)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if q, _ := c.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", q)
	}
	if q, _ := c.Quantile(1); q != 4 {
		t.Errorf("Quantile(1) = %v, want 4", q)
	}
	if _, err := c.Quantile(0); err == nil {
		t.Error("Quantile(0) should error")
	}
	if _, err := NewCDF(nil); !errors.Is(err, ErrEmpty) {
		t.Error("NewCDF(nil) should return ErrEmpty")
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("Points len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 9 {
		t.Errorf("Points range [%v, %v]", pts[0].X, pts[len(pts)-1].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF points not monotone at %d", i)
		}
	}
	if got := c.Points(1); len(got) != 2 {
		t.Errorf("Points(1) len = %d, want clamped to 2", len(got))
	}
}

// Property: CDF is monotone nondecreasing and bounded in [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		probe := make([]float64, 20)
		for i := range probe {
			probe[i] = r.NormFloat64() * 20
		}
		sort.Float64s(probe)
		prev := 0.0
		for _, x := range probe {
			y := c.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At are near-inverse: At(Quantile(q)) >= q.
func TestQuantileInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 1} {
			v, err := c.Quantile(q)
			if err != nil {
				return false
			}
			if c.At(v) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.1, 0.9, 1.5, 2.5, -5, 99}, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets: [0,1): 0.1, 0.9, -5(clamped) => 3; [1,2): 1.5 => 1; [2,3]: 2.5, 99(clamped) => 2.
	want := []int{3, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.Fraction(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
	if _, err := NewHistogram(nil, 0, 1, 2); !errors.Is(err, ErrEmpty) {
		t.Error("NewHistogram(nil) should return ErrEmpty")
	}
	if _, err := NewHistogram([]float64{1}, 1, 0, 2); err == nil {
		t.Error("invalid range should error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Summarize(nil) should return ErrEmpty")
	}
}

func BenchmarkCDFAt(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c, _ := NewCDF(xs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.At(0.5)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 500)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if math.Abs(o.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	if math.Abs(o.StdDev()-StdDev(xs)) > 1e-9 {
		t.Errorf("online sd %v vs batch %v", o.StdDev(), StdDev(xs))
	}
}

func TestOnlineEdgeCases(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	o.Add(5)
	if o.Mean() != 5 || o.Variance() != 0 {
		t.Errorf("single sample: mean %v var %v", o.Mean(), o.Variance())
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var a, b, all Online
	for i := 0; i < 300; i++ {
		x := rng.ExpFloat64()
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged var %v vs %v", a.Variance(), all.Variance())
	}
	// Merging into empty adopts the other side.
	var empty Online
	empty.Merge(all)
	if empty.N() != all.N() || empty.Mean() != all.Mean() {
		t.Error("merge into empty wrong")
	}
	// Merging empty is a no-op.
	before := all
	all.Merge(Online{})
	if all != before {
		t.Error("merge of empty changed state")
	}
}
