package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

func sampleTrace(t *testing.T) *sensors.Trace {
	t.Helper()
	r, err := road.StraightRoad("io", 300, road.Deg(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:   r,
		Driver: vehicle.DefaultDriver(12),
		Rng:    rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("records %d, want %d", len(got.Records), len(tr.Records))
	}
	if got.DT != tr.DT {
		t.Errorf("dt = %v, want %v", got.DT, tr.DT)
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DT != tr.DT || len(got.Records) != len(tr.Records) {
		t.Fatalf("shape mismatch")
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestWriteNilTrace: nil is a programmer error, reported as ErrNilTrace by
// both writers.
func TestWriteNilTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); !errors.Is(err, ErrNilTrace) {
		t.Errorf("WriteCSV(nil) = %v, want ErrNilTrace", err)
	}
	if err := WriteJSON(&buf, nil); !errors.Is(err, ErrNilTrace) {
		t.Errorf("WriteJSON(nil) = %v, want ErrNilTrace", err)
	}
}

// TestWriteEmptyTrace: a trace with zero records is a valid no-op — CSV
// writes the header row only, JSON an empty records array — so an archiving
// job that captured nothing still produces well-formed output.
func TestWriteEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &sensors.Trace{}); err != nil {
		t.Fatalf("WriteCSV(empty) = %v, want header-only success", err)
	}
	if got, want := buf.String(), strings.Join(csvHeader, ",")+"\n"; got != want {
		t.Errorf("empty CSV = %q, want header only %q", got, want)
	}

	buf.Reset()
	if err := WriteJSON(&buf, &sensors.Trace{DT: 0.05}); err != nil {
		t.Fatalf("WriteJSON(empty) = %v, want success", err)
	}
	var round struct {
		DT      float64           `json:"dt"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("re-parsing empty JSON trace: %v", err)
	}
	if round.DT != 0.05 || round.Records == nil || len(round.Records) != 0 {
		t.Errorf("empty JSON trace = %+v, want dt preserved and records []", round)
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"header-only", strings.Join(csvHeader, ",") + "\n"},
		{"one-row", strings.Join(csvHeader, ",") + "\n0,0,0,0,0,0,false,0,0,0,0\n"},
		{"bad-header", "a,b\n1,2\n3,4\n"},
		{"wrong-column", "t,x,gyro_yaw,speedometer,can_speed,baro_alt,gps_valid,gps_e,gps_n,gps_alt,gps_speed\n" +
			"0,0,0,0,0,0,false,0,0,0,0\n0.05,0,0,0,0,0,false,0,0,0,0\n"},
		{"bad-float", strings.Join(csvHeader, ",") + "\n" +
			"x,0,0,0,0,0,false,0,0,0,0\n0.05,0,0,0,0,0,false,0,0,0,0\n"},
		{"bad-bool", strings.Join(csvHeader, ",") + "\n" +
			"0,0,0,0,0,0,maybe,0,0,0,0\n0.05,0,0,0,0,0,false,0,0,0,0\n"},
		{"non-increasing", strings.Join(csvHeader, ",") + "\n" +
			"1,0,0,0,0,0,false,0,0,0,0\n1,0,0,0,0,0,false,0,0,0,0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"no-records", `{"dt":0.05,"records":[]}`},
		{"bad-dt", `{"dt":0,"records":[{"t":0}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCSVIsPipelineCompatible(t *testing.T) {
	// A round-tripped trace must still drive the velocity extraction.
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range sensors.AllSources() {
		if _, err := got.Velocity(src); err != nil {
			t.Errorf("source %v after round trip: %v", src, err)
		}
	}
}

func BenchmarkWriteCSV(b *testing.B) {
	r, err := road.StraightRoad("io", 300, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: vehicle.DefaultDriver(12), Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}
