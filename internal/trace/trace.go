// Package trace serializes sensor traces so real phone logs can be plugged
// into the pipeline and simulated traces can be archived: CSV (one row per
// tick, spreadsheet-friendly) and JSON (full fidelity including ground truth
// when present).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"roadgrade/internal/sensors"
)

// csvHeader is the canonical column order.
var csvHeader = []string{
	"t", "accel_long", "gyro_yaw",
	"raw_accel_x", "raw_accel_y", "raw_accel_z",
	"raw_gyro_x", "raw_gyro_y", "raw_gyro_z",
	"speedometer", "can_speed", "can_torque", "baro_alt",
	"gps_valid", "gps_e", "gps_n", "gps_alt", "gps_speed",
}

// ErrNilTrace marks a nil *sensors.Trace passed to a writer — a programmer
// error, distinct from a valid empty trace (zero records), which writes the
// header/envelope only.
var ErrNilTrace = errors.New("trace: nil trace")

// WriteCSV writes the trace's sensor records (not ground truth) as CSV. A
// nil trace returns ErrNilTrace; an empty (zero-record) trace is a valid
// no-op that writes the header row only.
func WriteCSV(w io.Writer, tr *sensors.Trace) error {
	if tr == nil {
		return ErrNilTrace
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for i, rec := range tr.Records {
		row[0] = formatF(rec.T)
		row[1] = formatF(rec.AccelLong)
		row[2] = formatF(rec.GyroYaw)
		row[3] = formatF(rec.RawAccelX)
		row[4] = formatF(rec.RawAccelY)
		row[5] = formatF(rec.RawAccelZ)
		row[6] = formatF(rec.RawGyroX)
		row[7] = formatF(rec.RawGyroY)
		row[8] = formatF(rec.RawGyroZ)
		row[9] = formatF(rec.Speedometer)
		row[10] = formatF(rec.CANSpeed)
		row[11] = formatF(rec.CANTorque)
		row[12] = formatF(rec.BaroAlt)
		row[13] = strconv.FormatBool(rec.GPSValid)
		row[14] = formatF(rec.GPSE)
		row[15] = formatF(rec.GPSN)
		row[16] = formatF(rec.GPSAlt)
		row[17] = formatF(rec.GPSSpeed)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing CSV: %w", err)
	}
	return nil
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ReadCSV parses a CSV written by WriteCSV (or an external log in the same
// schema) into a trace. The sample interval is inferred from the first two
// timestamps.
func ReadCSV(r io.Reader) (*sensors.Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(rows) < 3 {
		return nil, errors.New("trace: CSV needs a header and at least two rows")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, name := range csvHeader {
		if rows[0][i] != name {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, rows[0][i], name)
		}
	}
	tr := &sensors.Trace{Records: make([]sensors.Record, 0, len(rows)-1)}
	for n, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", n+1, err)
		}
		tr.Records = append(tr.Records, rec)
	}
	tr.DT = tr.Records[1].T - tr.Records[0].T
	if tr.DT <= 0 {
		return nil, fmt.Errorf("trace: non-increasing timestamps (dt=%v)", tr.DT)
	}
	return tr, nil
}

func parseRow(row []string) (sensors.Record, error) {
	var rec sensors.Record
	fields := []*float64{
		&rec.T, &rec.AccelLong, &rec.GyroYaw,
		&rec.RawAccelX, &rec.RawAccelY, &rec.RawAccelZ,
		&rec.RawGyroX, &rec.RawGyroY, &rec.RawGyroZ,
		&rec.Speedometer, &rec.CANSpeed, &rec.CANTorque, &rec.BaroAlt,
		nil, &rec.GPSE, &rec.GPSN, &rec.GPSAlt, &rec.GPSSpeed,
	}
	for i, dst := range fields {
		if dst == nil {
			valid, err := strconv.ParseBool(row[i])
			if err != nil {
				return rec, fmt.Errorf("column %s: %w", csvHeader[i], err)
			}
			rec.GPSValid = valid
			continue
		}
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			return rec, fmt.Errorf("column %s: %w", csvHeader[i], err)
		}
		*dst = v
	}
	return rec, nil
}

// jsonTrace is the JSON wire form.
type jsonTrace struct {
	DT      float64          `json:"dt"`
	Records []sensors.Record `json:"records"`
}

// WriteJSON writes the trace as JSON (records only; ground truth is a
// simulator artifact and is not serialized). A nil trace returns ErrNilTrace;
// an empty (zero-record) trace is valid and encodes an empty records array.
func WriteJSON(w io.Writer, tr *sensors.Trace) error {
	if tr == nil {
		return ErrNilTrace
	}
	records := tr.Records
	if records == nil {
		records = []sensors.Record{}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonTrace{DT: tr.DT, Records: records}); err != nil {
		return fmt.Errorf("trace: encoding JSON: %w", err)
	}
	return nil
}

// ReadJSON parses a JSON trace.
func ReadJSON(r io.Reader) (*sensors.Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	if len(jt.Records) == 0 {
		return nil, errors.New("trace: JSON trace has no records")
	}
	if jt.DT <= 0 {
		return nil, fmt.Errorf("trace: invalid dt %v", jt.DT)
	}
	return &sensors.Trace{DT: jt.DT, Records: jt.Records}, nil
}
