// Package vehicle simulates the driving vehicle the smartphone rides in:
// longitudinal dynamics (the forward form of the paper's Eq. (3)), a driver
// model with target-speed tracking and stochastic lane changes, and trip
// simulation producing ground-truth state traces for the sensor models.
package vehicle

import (
	"fmt"
	"math"
)

// Gravity is the gravitational constant g (m/s²).
const Gravity = 9.81

// Params are the physical vehicle parameters of the paper's Eq. (3). The
// defaults approximate the Nissan Altima 2006 used in the experiments and
// the 1479 kg average passenger car of Table II.
type Params struct {
	MassKg        float64 // m, gross weight
	FrontalAreaM2 float64 // A_f
	DragCoeff     float64 // C_d
	AirDensity    float64 // ρ (kg/m³)
	WheelRadiusM  float64 // r
	RollResist    float64 // μ, rolling resistance coefficient
}

// DefaultParams returns the evaluation vehicle parameters.
func DefaultParams() Params {
	return Params{
		MassKg:        1479,
		FrontalAreaM2: 2.25,
		DragCoeff:     0.32,
		AirDensity:    1.225,
		WheelRadiusM:  0.31,
		RollResist:    0.012,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.MassKg <= 0:
		return fmt.Errorf("vehicle: mass %v must be positive", p.MassKg)
	case p.FrontalAreaM2 <= 0:
		return fmt.Errorf("vehicle: frontal area %v must be positive", p.FrontalAreaM2)
	case p.DragCoeff <= 0:
		return fmt.Errorf("vehicle: drag coefficient %v must be positive", p.DragCoeff)
	case p.AirDensity <= 0:
		return fmt.Errorf("vehicle: air density %v must be positive", p.AirDensity)
	case p.WheelRadiusM <= 0:
		return fmt.Errorf("vehicle: wheel radius %v must be positive", p.WheelRadiusM)
	case p.RollResist < 0:
		return fmt.Errorf("vehicle: rolling resistance %v must be non-negative", p.RollResist)
	}
	return nil
}

// Beta returns β = arcsin(μ/√(1+μ²)), the rolling-resistance angle constant
// of Eq. (3).
func (p Params) Beta() float64 {
	return math.Asin(p.RollResist / math.Sqrt(1+p.RollResist*p.RollResist))
}

// DragForce returns the aerodynamic drag force ½ρ·A_f·C_d·v² (N).
func (p Params) DragForce(v float64) float64 {
	return 0.5 * p.AirDensity * p.FrontalAreaM2 * p.DragCoeff * v * v
}

// DriveTorque returns the wheel torque M (N·m) needed to hold acceleration a
// at speed v on grade θ — the inverse of Eq. (3):
//
//	M = r (m·a + m·g·sin(θ+β)·√(1+μ²) ≈ r (m·a + m·g·sinθ + μ·m·g·cosθ + drag)
//
// We use the exact force balance rather than the paper's small-angle β
// shortcut; the two agree to <0.1% for road-scale μ.
func (p Params) DriveTorque(v, a, grade float64) float64 {
	force := p.MassKg*a +
		p.MassKg*Gravity*math.Sin(grade) +
		p.RollResist*p.MassKg*Gravity*math.Cos(grade) +
		p.DragForce(v)
	return force * p.WheelRadiusM
}

// GradeFromStates evaluates the paper's Eq. (3):
//
//	θ = arcsin(M/(r·m·g) − ρ·A_f·C_d·v²/(2·m·g) − a/g) − β
//
// returning the road gradient implied by torque M, speed v and
// acceleration a. The arcsin argument is clamped to [-1, 1].
func (p Params) GradeFromStates(torque, v, a float64) float64 {
	mg := p.MassKg * Gravity
	arg := torque/(p.WheelRadiusM*mg) - p.DragForce(v)/mg - a/Gravity
	if arg > 1 {
		arg = 1
	} else if arg < -1 {
		arg = -1
	}
	return math.Asin(arg) - p.Beta()
}

// GradeDrift evaluates the paper's Eq. (4), the road-gradient process model
// used by the EKF:
//
//	θ̇ = ρ·A_f·C_d·v·a / (m·g·cosθ)
func (p Params) GradeDrift(v, a, grade float64) float64 {
	return p.AirDensity * p.FrontalAreaM2 * p.DragCoeff * v * a /
		(p.MassKg * Gravity * math.Cos(grade))
}
