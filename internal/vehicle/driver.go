package vehicle

import (
	"fmt"
	"math"
	"math/rand"
)

// WLaneM is the average lane-change horizontal displacement the paper cites
// from [15]: 3.65 m.
const WLaneM = 3.65

// DriverProfile captures a driver's behaviour: target-speed tracking and
// lane-change steering style. The steering parameters (SteerPeakRad and the
// asymmetry) generate the per-driver bump features of Table I.
type DriverProfile struct {
	// Name identifies the driver in experiment output.
	Name string
	// TargetSpeedMS is the cruising speed the driver tracks.
	TargetSpeedMS float64
	// SpeedGain is the proportional speed-tracking gain (1/s).
	SpeedGain float64
	// MaxAccelMS2 / MaxDecelMS2 bound the commanded acceleration (decel
	// positive magnitude).
	MaxAccelMS2 float64
	MaxDecelMS2 float64
	// SpeedWobbleMS and SpeedWobblePeriodS add a smooth sinusoidal target
	// variation so the trace has realistic accelerations.
	SpeedWobbleMS      float64
	SpeedWobblePeriodS float64
	// SteerPeakRad is the peak steering rate δ (rad/s) of the first bump of
	// a lane change.
	SteerPeakRad float64
	// SteerAsym scales the second bump's peak relative to the first
	// (second = SteerAsym * first); duration compensates so heading
	// returns to the road direction.
	SteerAsym float64
	// LaneChangeDisplacementM is the lateral displacement of one lane
	// change (defaults to WLaneM).
	LaneChangeDisplacementM float64
	// LaneChangesPerKm is the expected lane-change rate on multi-lane
	// sections; the paper cites 0.36/mile ≈ 0.22/km averaged over all
	// roads, with urban rates much higher.
	LaneChangesPerKm float64
	// SteerJitterRad is the standard deviation of the in-lane heading
	// wander (an Ornstein-Uhlenbeck process): imperfect lane keeping that
	// puts low-level noise on the gyroscope between maneuvers. Zero (the
	// default) disables wander; ~0.004 rad is a calm human driver.
	SteerJitterRad float64
}

// DefaultDriver returns a nominal driver at the given cruise speed.
func DefaultDriver(targetSpeedMS float64) DriverProfile {
	return DriverProfile{
		Name:                    "default",
		TargetSpeedMS:           targetSpeedMS,
		SpeedGain:               0.35,
		MaxAccelMS2:             2.0,
		MaxDecelMS2:             2.5,
		SpeedWobbleMS:           1.2,
		SpeedWobblePeriodS:      37,
		SteerPeakRad:            0.14,
		SteerAsym:               1.0,
		LaneChangeDisplacementM: WLaneM,
		LaneChangesPerKm:        0.8,
	}
}

// Validate reports whether the profile is usable.
func (d DriverProfile) Validate() error {
	switch {
	case d.TargetSpeedMS <= 0:
		return fmt.Errorf("vehicle: driver target speed %v must be positive", d.TargetSpeedMS)
	case d.SpeedGain <= 0:
		return fmt.Errorf("vehicle: driver speed gain %v must be positive", d.SpeedGain)
	case d.MaxAccelMS2 <= 0 || d.MaxDecelMS2 <= 0:
		return fmt.Errorf("vehicle: driver accel bounds (%v, %v) must be positive", d.MaxAccelMS2, d.MaxDecelMS2)
	case d.SteerPeakRad <= 0:
		return fmt.Errorf("vehicle: driver steer peak %v must be positive", d.SteerPeakRad)
	case d.SteerAsym <= 0:
		return fmt.Errorf("vehicle: driver steer asymmetry %v must be positive", d.SteerAsym)
	case d.LaneChangesPerKm < 0:
		return fmt.Errorf("vehicle: lane change rate %v must be non-negative", d.LaneChangesPerKm)
	}
	return nil
}

func (d DriverProfile) displacement() float64 {
	if d.LaneChangeDisplacementM > 0 {
		return d.LaneChangeDisplacementM
	}
	return WLaneM
}

// StudyDrivers returns the ten simulated driver profiles used to calibrate
// the Table I bump features, spanning the 15-65 km/h speed range and a
// spread of steering aggressiveness, mirroring the paper's ten-driver
// steering study.
func StudyDrivers(rng *rand.Rand) []DriverProfile {
	drivers := make([]DriverProfile, 0, 10)
	for i := 0; i < 10; i++ {
		speedKmh := 15 + rng.Float64()*50
		d := DefaultDriver(speedKmh / 3.6)
		d.Name = fmt.Sprintf("driver-%02d", i+1)
		// Peak steering rates spread around the paper's 0.117-0.172 rad/s.
		d.SteerPeakRad = 0.12 + rng.Float64()*0.06
		d.SteerAsym = 0.8 + rng.Float64()*0.45
		d.LaneChangeDisplacementM = WLaneM * (0.94 + rng.Float64()*0.12)
		drivers = append(drivers, d)
	}
	return drivers
}

// laneChangePlan is one lane-change maneuver: two opposite steering-rate
// bumps (first with peak w1 lasting t1, second with peak w2 lasting t2)
// chosen so the heading deviation returns to zero and the lateral
// displacement equals the requested width.
//
// Phase 1 (t in [0, t1)):      w(t) = dir * w1 * sin(π t / t1)
// Phase 2 (t in [t1, t1+t2)):  w(t) = -dir * w2 * sin(π (t-t1) / t2)
//
// Heading restore requires w1*t1 = w2*t2; the lateral displacement is
// y = v * w1 * t1 * (t1 + t2) / π (small-angle), which fixes t1 for a
// given speed.
type laneChangePlan struct {
	dir    int // +1 left, -1 right
	w1, w2 float64
	t1, t2 float64
}

// planLaneChange solves the maneuver timing for a driver at speed v.
func planLaneChange(d DriverProfile, v float64, dir int) laneChangePlan {
	w1 := d.SteerPeakRad
	w2 := d.SteerPeakRad * d.SteerAsym
	k := w1 / w2 // t2 = k * t1 restores heading
	width := d.displacement()
	// width = v*w1*t1*(t1+t2)/π = v*w1*t1²(1+k)/π
	t1 := math.Sqrt(width * math.Pi / (v * w1 * (1 + k)))
	return laneChangePlan{dir: dir, w1: w1, w2: w2, t1: t1, t2: k * t1}
}

// duration returns the total maneuver time T'.
func (p laneChangePlan) duration() float64 { return p.t1 + p.t2 }

// steerRateAt returns the commanded steering rate at maneuver-relative time t.
func (p laneChangePlan) steerRateAt(t float64) float64 {
	sign := float64(p.dir)
	switch {
	case t < 0:
		return 0
	case t < p.t1:
		return sign * p.w1 * math.Sin(math.Pi*t/p.t1)
	case t < p.t1+p.t2:
		return -sign * p.w2 * math.Sin(math.Pi*(t-p.t1)/p.t2)
	default:
		return 0
	}
}
