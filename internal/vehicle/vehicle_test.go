package vehicle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadgrade/internal/road"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"mass", func(p *Params) { p.MassKg = 0 }},
		{"area", func(p *Params) { p.FrontalAreaM2 = -1 }},
		{"drag", func(p *Params) { p.DragCoeff = 0 }},
		{"density", func(p *Params) { p.AirDensity = 0 }},
		{"wheel", func(p *Params) { p.WheelRadiusM = 0 }},
		{"roll", func(p *Params) { p.RollResist = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestBeta(t *testing.T) {
	p := DefaultParams()
	// For small μ, β ≈ μ.
	if math.Abs(p.Beta()-p.RollResist) > 1e-4 {
		t.Errorf("Beta = %v, want ~%v", p.Beta(), p.RollResist)
	}
}

// Eq. (3) must invert the forward dynamics: grade -> torque -> grade.
func TestGradeTorqueRoundTrip(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		grade := (r.Float64()*2 - 1) * 0.12 // ±~7°
		v := 3 + r.Float64()*25
		a := (r.Float64()*2 - 1) * 2
		torque := p.DriveTorque(v, a, grade)
		got := p.GradeFromStates(torque, v, a)
		return math.Abs(got-grade) < 2e-3 // β small-angle approximation error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDragForceMonotone(t *testing.T) {
	p := DefaultParams()
	if p.DragForce(0) != 0 {
		t.Error("drag at rest nonzero")
	}
	if p.DragForce(30) <= p.DragForce(10) {
		t.Error("drag not increasing with speed")
	}
}

func TestGradeDriftSign(t *testing.T) {
	p := DefaultParams()
	// Eq. (4): sign follows v*a.
	if p.GradeDrift(20, 1, 0) <= 0 {
		t.Error("drift should be positive for accelerating vehicle")
	}
	if p.GradeDrift(20, -1, 0) >= 0 {
		t.Error("drift should be negative for decelerating vehicle")
	}
	if p.GradeDrift(20, 0, 0) != 0 {
		t.Error("drift should vanish at constant speed")
	}
}

func TestDriverValidate(t *testing.T) {
	if err := DefaultDriver(12).Validate(); err != nil {
		t.Fatalf("default driver invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*DriverProfile)
	}{
		{"speed", func(d *DriverProfile) { d.TargetSpeedMS = 0 }},
		{"gain", func(d *DriverProfile) { d.SpeedGain = 0 }},
		{"accel", func(d *DriverProfile) { d.MaxAccelMS2 = 0 }},
		{"steer", func(d *DriverProfile) { d.SteerPeakRad = 0 }},
		{"asym", func(d *DriverProfile) { d.SteerAsym = 0 }},
		{"rate", func(d *DriverProfile) { d.LaneChangesPerKm = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := DefaultDriver(12)
			tt.mutate(&d)
			if err := d.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestStudyDrivers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	drivers := StudyDrivers(rng)
	if len(drivers) != 10 {
		t.Fatalf("got %d drivers, want 10", len(drivers))
	}
	for _, d := range drivers {
		if err := d.Validate(); err != nil {
			t.Errorf("driver %s invalid: %v", d.Name, err)
		}
		kmh := d.TargetSpeedMS * 3.6
		if kmh < 15-1e-9 || kmh > 65+1e-9 {
			t.Errorf("driver %s speed %v km/h outside study range", d.Name, kmh)
		}
		if d.SteerPeakRad < 0.1 || d.SteerPeakRad > 0.2 {
			t.Errorf("driver %s steer peak %v outside plausible range", d.Name, d.SteerPeakRad)
		}
	}
}

func TestPlanLaneChangeGeometry(t *testing.T) {
	d := DefaultDriver(12)
	for _, dir := range []int{1, -1} {
		p := planLaneChange(d, 12, dir)
		// Heading restore: integral of phase 1 equals integral of phase 2.
		if math.Abs(p.w1*p.t1-p.w2*p.t2) > 1e-9 {
			t.Errorf("heading not restored: w1t1=%v w2t2=%v", p.w1*p.t1, p.w2*p.t2)
		}
		// First bump sign matches direction.
		if s := p.steerRateAt(p.t1 / 2); float64(dir)*s <= 0 {
			t.Errorf("dir %d first bump sign %v", dir, s)
		}
		if s := p.steerRateAt(p.t1 + p.t2/2); float64(dir)*s >= 0 {
			t.Errorf("dir %d second bump sign %v", dir, s)
		}
		if p.steerRateAt(-1) != 0 || p.steerRateAt(p.duration()+1) != 0 {
			t.Error("steer rate outside maneuver should be 0")
		}
	}
}

// Integrating the planned maneuver must displace the vehicle ~3.65 m
// laterally and restore the heading.
func TestLaneChangeDisplacement(t *testing.T) {
	speeds := []float64{15.0 / 3.6, 40.0 / 3.6, 65.0 / 3.6}
	for _, v := range speeds {
		d := DefaultDriver(v)
		states, err := SimulateSingleLaneChange(d, v, +1, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		last := states[len(states)-1]
		if math.Abs(last.Pos.N-WLaneM) > 0.4 {
			t.Errorf("v=%.1f: lateral displacement %v, want ~%v", v, last.Pos.N, WLaneM)
		}
		if math.Abs(last.SteerAngle) > 1e-9 {
			t.Errorf("v=%.1f: final steering angle %v, want 0", v, last.SteerAngle)
		}
	}
}

func TestLaneChangeAsymmetricDisplacement(t *testing.T) {
	v := 12.0
	d := DefaultDriver(v)
	d.SteerAsym = 1.3
	states, err := SimulateSingleLaneChange(d, v, -1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	last := states[len(states)-1]
	if math.Abs(last.Pos.N+WLaneM) > 0.4 {
		t.Errorf("right change displacement %v, want ~%v", last.Pos.N, -WLaneM)
	}
}

func TestSimulateSingleLaneChangeErrors(t *testing.T) {
	d := DefaultDriver(12)
	if _, err := SimulateSingleLaneChange(d, 0, 1, 0.01); err == nil {
		t.Error("zero speed should error")
	}
	if _, err := SimulateSingleLaneChange(d, 12, 0, 0.01); err == nil {
		t.Error("dir 0 should error")
	}
	bad := d
	bad.SteerPeakRad = 0
	if _, err := SimulateSingleLaneChange(bad, 12, 1, 0.01); err == nil {
		t.Error("invalid driver should error")
	}
}

func TestSimulateTripStraightRoad(t *testing.T) {
	r, err := road.StraightRoad("test", 800, road.Deg(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := SimulateTrip(TripConfig{
		Road:   r,
		Driver: DefaultDriver(15),
		Rng:    rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trip.States) == 0 {
		t.Fatal("no states")
	}
	last := trip.States[len(trip.States)-1]
	if last.S < 800 {
		t.Errorf("trip ended at s=%v, want >= 800", last.S)
	}
	// Single-lane road: no lane changes possible.
	if len(trip.Changes) != 0 {
		t.Errorf("lane changes on single-lane road: %d", len(trip.Changes))
	}
	// Grade matches road.
	mid := trip.States[len(trip.States)/2]
	if math.Abs(mid.Grade-road.Deg(2)) > 1e-9 {
		t.Errorf("grade = %v", mid.Grade)
	}
	// Speed stays near target.
	if mid.Speed < 10 || mid.Speed > 20 {
		t.Errorf("speed = %v, want near 15", mid.Speed)
	}
	if trip.Duration() <= 0 {
		t.Error("duration not positive")
	}
}

func TestSimulateTripLaneChanges(t *testing.T) {
	r, err := road.StraightRoad("two-lane", 3000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultDriver(14)
	d.LaneChangesPerKm = 3
	trip, err := SimulateTrip(TripConfig{
		Road:   r,
		Driver: d,
		Rng:    rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trip.Changes) == 0 {
		t.Fatal("expected lane changes on two-lane road")
	}
	// Lane index stays within bounds and changes alternate feasibly.
	for _, st := range trip.States {
		if st.Lane < 0 || st.Lane > 1 {
			t.Fatalf("lane out of range: %d", st.Lane)
		}
	}
	for _, ev := range trip.Changes {
		if ev.EndT <= ev.StartT {
			t.Errorf("event has non-positive duration: %+v", ev)
		}
		if ev.Dir != 1 && ev.Dir != -1 {
			t.Errorf("event dir %d", ev.Dir)
		}
	}
	// Steering rate nonzero only around changes.
	var steering int
	for _, st := range trip.States {
		if st.SteerRate != 0 {
			steering++
			if !st.InChange {
				t.Fatal("steering outside a lane change")
			}
		}
	}
	if steering == 0 {
		t.Error("no steering recorded despite lane changes")
	}
}

func TestSimulateTripDisableLaneChanges(t *testing.T) {
	r, _ := road.StraightRoad("two-lane", 2000, 0, 2)
	d := DefaultDriver(14)
	d.LaneChangesPerKm = 5
	trip, err := SimulateTrip(TripConfig{
		Road:               r,
		Driver:             d,
		Rng:                rand.New(rand.NewSource(3)),
		DisableLaneChanges: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trip.Changes) != 0 {
		t.Errorf("lane changes despite DisableLaneChanges: %d", len(trip.Changes))
	}
}

func TestSimulateTripConfigErrors(t *testing.T) {
	r, _ := road.StraightRoad("x", 100, 0, 1)
	if _, err := SimulateTrip(TripConfig{Driver: DefaultDriver(10), Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("missing road should error")
	}
	if _, err := SimulateTrip(TripConfig{Road: r, Driver: DefaultDriver(10)}); err == nil {
		t.Error("missing rng should error")
	}
	bad := DefaultDriver(10)
	bad.TargetSpeedMS = 0
	if _, err := SimulateTrip(TripConfig{Road: r, Driver: bad, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("invalid driver should error")
	}
}

func TestSimulateTripTimeout(t *testing.T) {
	r, _ := road.StraightRoad("long", 5000, 0, 1)
	_, err := SimulateTrip(TripConfig{
		Road:         r,
		Driver:       DefaultDriver(10),
		Rng:          rand.New(rand.NewSource(1)),
		MaxDurationS: 5, // impossible
	})
	if err == nil {
		t.Error("expected timeout error")
	}
}

func TestSimulateTripDeterministic(t *testing.T) {
	r, _ := road.StraightRoad("two-lane", 1500, road.Deg(1), 2)
	run := func() *Trip {
		d := DefaultDriver(13)
		d.LaneChangesPerKm = 2
		trip, err := SimulateTrip(TripConfig{Road: r, Driver: d, Rng: rand.New(rand.NewSource(42))})
		if err != nil {
			t.Fatal(err)
		}
		return trip
	}
	a, b := run(), run()
	if len(a.States) != len(b.States) || len(a.Changes) != len(b.Changes) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.States {
		if a.States[i] != b.States[i] {
			t.Fatalf("state %d differs", i)
		}
	}
}

func TestLongitudinalSpeed(t *testing.T) {
	st := State{Speed: 10, SteerAngle: 0.1}
	want := 10 * math.Cos(0.1)
	if got := st.LongitudinalSpeed(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LongitudinalSpeed = %v, want %v", got, want)
	}
}

func TestLaneChangeDuration(t *testing.T) {
	d := DefaultDriver(12)
	dur := LaneChangeDuration(d, 12)
	if dur < 1 || dur > 10 {
		t.Errorf("duration = %v s, implausible", dur)
	}
	// Faster speeds give shorter maneuvers.
	if LaneChangeDuration(d, 20) >= dur {
		t.Error("duration should shrink with speed")
	}
}

func TestRedRouteTripCoversRoute(t *testing.T) {
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultDriver(40.0 / 3.6)
	d.LaneChangesPerKm = 2
	trip, err := SimulateTrip(TripConfig{Road: r, Driver: d, Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	last := trip.States[len(trip.States)-1]
	if last.S < r.Length() {
		t.Errorf("trip ended early at %v", last.S)
	}
	// All lane changes must be on the two-lane sections (start within one).
	for _, ev := range trip.Changes {
		if lanes := r.LanesAt(ev.StartS); lanes < 2 {
			t.Errorf("lane change started on %d-lane stretch at s=%v", lanes, ev.StartS)
		}
	}
}

func BenchmarkSimulateTrip(b *testing.B) {
	r, err := road.RedRoute()
	if err != nil {
		b.Fatal(err)
	}
	d := DefaultDriver(40.0 / 3.6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateTrip(TripConfig{Road: r, Driver: d, Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}
