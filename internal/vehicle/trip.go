package vehicle

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

// State is the complete ground-truth vehicle state at one simulation step.
// Sensor models observe it; estimators never see it directly.
type State struct {
	T       float64 // time since trip start (s)
	S       float64 // arc length along the road (m)
	Pos     geo.ENU // planar position including lane offset
	Alt     float64 // true altitude (m)
	Speed   float64 // path speed, what wheel odometry measures (m/s)
	Accel   float64 // longitudinal acceleration along the path (m/s²)
	Heading float64 // vehicle heading, CCW from East (rad)
	YawRate float64 // dHeading/dt (rad/s)
	RoadDir float64 // road tangent heading at S (rad)
	// SteerAngle is the deviation between vehicle heading and road
	// direction (α in the paper), nonzero only during lane changes.
	SteerAngle float64
	// SteerRate is dSteerAngle/dt (w_steer in the paper).
	SteerRate float64
	Grade     float64 // true road gradient θ at S (rad)
	Torque    float64 // wheel drive torque (N·m), from inverse dynamics
	Lane      int     // current lane index, 0 = rightmost
	InChange  bool    // true while a lane change is in progress
}

// LongitudinalSpeed returns the along-road velocity v·cos(α), the quantity
// the paper's Eq. (2) recovers from the measured speed.
func (s State) LongitudinalSpeed() float64 {
	return s.Speed * math.Cos(s.SteerAngle)
}

// LaneChangeEvent records one completed lane-change maneuver.
type LaneChangeEvent struct {
	StartT float64
	EndT   float64
	StartS float64
	Dir    int // +1 left, -1 right
}

// Trip is a simulated drive: the road, the driver, the ground-truth state
// trace at the simulation rate, and the lane changes that occurred.
type Trip struct {
	Road    *road.Road
	Driver  DriverProfile
	DT      float64
	States  []State
	Changes []LaneChangeEvent
}

// Duration returns the trip length in seconds.
func (t *Trip) Duration() float64 {
	if len(t.States) == 0 {
		return 0
	}
	return t.States[len(t.States)-1].T
}

// TripConfig configures SimulateTrip.
type TripConfig struct {
	Road   *road.Road
	Driver DriverProfile
	// DT is the integration step (default 0.05 s).
	DT float64
	// Rng drives stochastic choices (lane changes, wobble phase). Required.
	Rng *rand.Rand
	// StartSpeedMS defaults to the driver target speed.
	StartSpeedMS float64
	// DisableLaneChanges freezes the vehicle in its lane regardless of the
	// driver's rate; used by experiments that isolate other effects.
	DisableLaneChanges bool
	// MaxDurationS aborts runaway simulations (default: generous bound from
	// road length and target speed).
	MaxDurationS float64
	// WarmupStopS holds the vehicle stationary at the road start for this
	// many seconds before launching. A warmup gives phone-mount alignment
	// (§III-A / [14]) the gravity-only and forward-acceleration windows it
	// needs.
	WarmupStopS float64
	// StopAtS lists arc positions (meters, ascending) where the driver
	// halts — junctions, traffic lights. Each stop lasts StopDurationS.
	StopAtS []float64
	// StopDurationS is the dwell time per stop (default 4 s).
	StopDurationS float64
}

func (c TripConfig) withDefaults() (TripConfig, error) {
	if c.Road == nil {
		return c, errors.New("vehicle: TripConfig.Road is required")
	}
	if c.Rng == nil {
		return c, errors.New("vehicle: TripConfig.Rng is required (pass a seeded rand.Rand)")
	}
	if err := c.Driver.Validate(); err != nil {
		return c, err
	}
	if c.DT <= 0 {
		c.DT = 0.05
	}
	if c.StartSpeedMS <= 0 {
		c.StartSpeedMS = c.Driver.TargetSpeedMS
	}
	if c.WarmupStopS > 0 {
		c.StartSpeedMS = -1 // sentinel: start parked (v = 0)
	}
	if c.WarmupStopS < 0 {
		return c, fmt.Errorf("vehicle: negative warmup %v", c.WarmupStopS)
	}
	if c.StopDurationS <= 0 {
		c.StopDurationS = 4
	}
	for i := 1; i < len(c.StopAtS); i++ {
		if c.StopAtS[i] <= c.StopAtS[i-1] {
			return c, fmt.Errorf("vehicle: StopAtS not ascending at %d", i)
		}
	}
	if c.MaxDurationS <= 0 {
		// 4x the nominal traversal time plus stop dwell, floor 10 minutes.
		nominal := c.Road.Length()/c.Driver.TargetSpeedMS +
			float64(len(c.StopAtS))*c.StopDurationS
		c.MaxDurationS = math.Max(600, 4*nominal)
	}
	return c, nil
}

// SimulateTrip integrates a drive along cfg.Road from start to end and
// returns the ground-truth trace.
func SimulateTrip(cfg TripConfig) (*Trip, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("vehicle: invalid trip config: %w", err)
	}
	params := DefaultParams()
	r := cfg.Road
	dt := cfg.DT
	rng := cfg.Rng

	wobblePhase := rng.Float64() * 2 * math.Pi
	steps := int(cfg.MaxDurationS/dt) + 1
	trip := &Trip{
		Road:   r,
		Driver: cfg.Driver,
		DT:     dt,
		States: make([]State, 0, int(r.Length()/cfg.Driver.TargetSpeedMS/dt)+64),
	}

	startV := cfg.StartSpeedMS
	if startV < 0 {
		startV = 0
	}
	nextStop := 0
	stopHoldUntil := -1.0
	var alphaJitter float64
	const jitterTau = 2.0 // OU time constant (s)
	var (
		t, s      float64
		v         = startV
		a         float64
		lane      int
		latOffset float64 // lateral offset from lane-0 center, left positive
		alpha     float64 // heading deviation from road direction
		inChange  bool
		plan      laneChangePlan
		planT     float64 // time since maneuver start
		curEvent  LaneChangeEvent
		prevHead  = r.DirectionAt(0)
		havePrev  bool
		jerkLimit = 1.5 // m/s³
	)

	for step := 0; step < steps && s < r.Length(); step++ {
		roadDir := r.DirectionAt(s)
		grade := r.GradeAt(s)

		// Driver longitudinal control: track a gently wobbling target.
		target := cfg.Driver.TargetSpeedMS
		if cfg.Driver.SpeedWobbleMS > 0 && cfg.Driver.SpeedWobblePeriodS > 0 {
			target += cfg.Driver.SpeedWobbleMS *
				math.Sin(2*math.Pi*t/cfg.Driver.SpeedWobblePeriodS+wobblePhase)
		}
		// During the warmup stop the vehicle is parked: no target, no
		// wobble.
		if t < cfg.WarmupStopS {
			target = 0
		}
		// Planned stops (junctions / traffic lights): brake when the stop
		// is within braking distance, dwell, then resume.
		stopping := false
		if nextStop < len(cfg.StopAtS) {
			stopS := cfg.StopAtS[nextStop]
			brakeDist := v*v/(2*cfg.Driver.MaxDecelMS2*0.7) + 5
			switch {
			case stopHoldUntil >= 0:
				target = 0
				stopping = true
				if t >= stopHoldUntil {
					stopHoldUntil = -1
					nextStop++
					stopping = false
				}
			case s >= stopS-brakeDist:
				target = 0
				stopping = true
				if v < 0.2 {
					stopHoldUntil = t + cfg.StopDurationS
				}
			}
		}
		aCmd := cfg.Driver.SpeedGain * (target - v)
		aCmd = clamp(aCmd, -cfg.Driver.MaxDecelMS2, cfg.Driver.MaxAccelMS2)
		a += clamp(aCmd-a, -jerkLimit*dt, jerkLimit*dt)

		// Lane-change state machine.
		steerRate := 0.0
		steering := inChange
		if inChange {
			steerRate = plan.steerRateAt(planT)
			planT += dt
			if planT >= plan.duration() {
				inChange = false
				lane += plan.dir
				alpha = 0 // heading restored by construction
				curEvent.EndT = t
				trip.Changes = append(trip.Changes, curEvent)
			}
		} else if !cfg.DisableLaneChanges {
			start := func(dir int, forced bool) {
				p := planLaneChange(cfg.Driver, math.Max(v, 3), dir)
				endS := s + v*p.duration()
				if endS >= r.Length() {
					return // road ends before the maneuver would
				}
				// Voluntary changes only happen where the lane count
				// persists through the maneuver; forced merges by
				// definition cross a lane-count boundary.
				if !forced && r.LanesAt(endS) != r.LanesAt(s) {
					return
				}
				plan, planT, inChange, steering = p, 0, true, true
				curEvent = LaneChangeEvent{StartT: t, StartS: s, Dir: dir}
				steerRate = plan.steerRateAt(0)
			}
			// Forced merge: the driver moves right ahead of a lane drop.
			lookahead := v*LaneChangeDuration(cfg.Driver, math.Max(v, 3)) + 30
			aheadS := math.Min(s+lookahead, r.Length()-1)
			if lane > 0 && lane >= r.LanesAt(aheadS) {
				start(-1, true)
			} else if cfg.Driver.LaneChangesPerKm > 0 {
				// Voluntary change: Poisson arrival in distance, gated on
				// lane availability.
				pStart := cfg.Driver.LaneChangesPerKm * v * dt / 1000
				if rng.Float64() < pStart {
					switch {
					case lane+1 < r.LanesAt(s):
						start(+1, false)
					case lane > 0:
						start(-1, false)
					}
				}
			}
		}

		// In-lane heading wander (OU process): present whenever moving.
		jitterRate := 0.0
		if cfg.Driver.SteerJitterRad > 0 && v > 1 {
			prevJitter := alphaJitter
			alphaJitter += (-alphaJitter/jitterTau)*dt +
				cfg.Driver.SteerJitterRad*math.Sqrt(2*dt/jitterTau)*rng.NormFloat64()
			jitterRate = (alphaJitter - prevJitter) / dt
		}

		// Integrate heading deviation and motion.
		alpha += steerRate * dt
		if !inChange {
			alpha = 0
		}
		vFloor := 0.5
		if t < cfg.WarmupStopS || stopping {
			vFloor = 0 // parked during warmup or halting at a planned stop
		}
		v = math.Max(vFloor, v+a*dt)
		// Brakes hold the car once nearly stationary at a planned stop;
		// the proportional controller alone would creep.
		if stopping && v < 0.3 {
			v = 0
			a = 0
		}
		totalAlpha := alpha + alphaJitter
		ds := v * math.Cos(totalAlpha) * dt
		s += ds
		latOffset += v * math.Sin(totalAlpha) * dt

		heading := geo.WrapAngle(roadDir + totalAlpha)
		yawRate := 0.0
		if havePrev {
			yawRate = geo.AngleDiff(prevHead, heading) / dt
		}
		prevHead, havePrev = heading, true

		// Planar position: lane center plus maneuver offset, measured along
		// the left normal of the road direction.
		center := r.PositionAt(s)
		offset := latOffset
		normal := roadDir + math.Pi/2
		pos := geo.ENU{
			E: center.E + offset*math.Cos(normal),
			N: center.N + offset*math.Sin(normal),
		}

		st := State{
			T:          t,
			S:          s,
			Pos:        pos,
			Alt:        r.AltitudeAt(s),
			Speed:      v,
			Accel:      a,
			Heading:    heading,
			YawRate:    yawRate,
			RoadDir:    roadDir,
			SteerAngle: alpha + alphaJitter,
			SteerRate:  steerRate + jitterRate,
			Grade:      grade,
			Torque:     params.DriveTorque(v, a, grade),
			Lane:       lane,
			InChange:   steering,
		}
		trip.States = append(trip.States, st)
		t += dt
	}
	if len(trip.States) == 0 {
		return nil, errors.New("vehicle: simulation produced no states")
	}
	if s < r.Length() {
		return nil, fmt.Errorf("vehicle: trip aborted at s=%.1f of %.1f m after %.1f s (MaxDurationS too small?)",
			s, r.Length(), t)
	}
	return trip, nil
}

// SimulateSingleLaneChange produces the clean steering-rate profile of one
// maneuver at the given speed — the workload behind the Table I calibration
// and the Figure 3/4 profiles. The returned times start 2 s before the
// maneuver and end 2 s after; truth carries the matching vehicle states.
func SimulateSingleLaneChange(d DriverProfile, speedMS float64, dir int, dt float64) ([]State, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if speedMS <= 0 {
		return nil, fmt.Errorf("vehicle: speed %v must be positive", speedMS)
	}
	if dir != 1 && dir != -1 {
		return nil, fmt.Errorf("vehicle: lane change dir %d must be ±1", dir)
	}
	if dt <= 0 {
		dt = 0.05
	}
	plan := planLaneChange(d, speedMS, dir)
	lead := 2.0
	total := plan.duration() + 2*lead
	n := int(total/dt) + 1
	states := make([]State, 0, n)
	var alpha, lat float64
	var s float64
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		w := plan.steerRateAt(t - lead)
		alpha += w * dt
		if t-lead >= plan.duration() {
			alpha = 0
		}
		s += speedMS * math.Cos(alpha) * dt
		lat += speedMS * math.Sin(alpha) * dt
		states = append(states, State{
			T:          t,
			S:          s,
			Pos:        geo.ENU{E: s, N: lat},
			Speed:      speedMS,
			Heading:    alpha,
			YawRate:    w,
			RoadDir:    0,
			SteerAngle: alpha,
			SteerRate:  w,
			Lane:       0,
			InChange:   t-lead >= 0 && t-lead < plan.duration(),
		})
	}
	return states, nil
}

// LaneChangeDuration returns the planned maneuver time for a driver at a
// speed, exposed for experiments sizing detection windows.
func LaneChangeDuration(d DriverProfile, speedMS float64) float64 {
	return planLaneChange(d, speedMS, 1).duration()
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
