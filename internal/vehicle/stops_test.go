package vehicle

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/road"
)

func TestPlannedStops(t *testing.T) {
	r, err := road.StraightRoad("stops", 1500, road.Deg(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := SimulateTrip(TripConfig{
		Road:          r,
		Driver:        DefaultDriver(13),
		Rng:           rand.New(rand.NewSource(1)),
		StopAtS:       []float64{400, 900},
		StopDurationS: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The vehicle must come to rest near each stop position.
	for _, stopS := range []float64{400, 900} {
		var stoppedNear bool
		for _, st := range trip.States {
			if st.Speed < 0.05 && math.Abs(st.S-stopS) < 20 {
				stoppedNear = true
				break
			}
		}
		if !stoppedNear {
			t.Errorf("vehicle never stopped near s=%v", stopS)
		}
	}
	// And it still finishes the route.
	if last := trip.States[len(trip.States)-1]; last.S < 1500 {
		t.Errorf("trip ended at %v", last.S)
	}
	// Each stop dwells for roughly the configured duration.
	var zeroTime float64
	for _, st := range trip.States {
		if st.Speed < 0.05 {
			zeroTime += trip.DT
		}
	}
	if zeroTime < 8 || zeroTime > 30 {
		t.Errorf("total stopped time %v s, want ~2 stops x 5 s + braking tails", zeroTime)
	}
}

func TestStopAtSValidation(t *testing.T) {
	r, _ := road.StraightRoad("x", 500, 0, 1)
	_, err := SimulateTrip(TripConfig{
		Road:    r,
		Driver:  DefaultDriver(10),
		Rng:     rand.New(rand.NewSource(1)),
		StopAtS: []float64{300, 200},
	})
	if err == nil {
		t.Error("non-ascending stops should error")
	}
}
