package ann

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := []LayerSpec{{Units: 4, Act: Tanh}, {Units: 1, Act: Identity}}
	if _, err := New(0, specs, rng); err == nil {
		t.Error("zero inputs should error")
	}
	if _, err := New(2, nil, rng); err == nil {
		t.Error("no layers should error")
	}
	if _, err := New(2, specs, nil); err == nil {
		t.Error("nil rng should error")
	}
	if _, err := New(2, []LayerSpec{{Units: 0, Act: Tanh}}, rng); err == nil {
		t.Error("zero units should error")
	}
	if _, err := New(2, []LayerSpec{{Units: 2, Act: Activation(99)}}, rng); err == nil {
		t.Error("bad activation should error")
	}
	n, err := New(3, specs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n.Inputs() != 3 || n.Outputs() != 1 {
		t.Errorf("dims = %d in, %d out", n.Inputs(), n.Outputs())
	}
}

func TestActivationString(t *testing.T) {
	for a, want := range map[Activation]string{Identity: "identity", Tanh: "tanh", ReLU: "relu"} {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
	if Activation(42).String() == "" {
		t.Error("unknown activation should render")
	}
}

func TestPredictWidthCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, _ := New(2, []LayerSpec{{Units: 1, Act: Identity}}, rng)
	if _, err := n.Predict([]float64{1}); err == nil {
		t.Error("wrong input width should error")
	}
}

func TestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, err := New(2, []LayerSpec{{Units: 8, Act: Tanh}, {Units: 1, Act: Identity}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := [][]float64{{0}, {1}, {1}, {0}}
	mse, err := n.Train(inputs, targets, TrainConfig{Epochs: 2000, LearningRate: 0.05, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Fatalf("XOR MSE = %v after training", mse)
	}
	for i, in := range inputs {
		out, err := n.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[0]-targets[i][0]) > 0.2 {
			t.Errorf("XOR(%v) = %v, want %v", in, out[0], targets[i][0])
		}
	}
}

func TestLearnsSineRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, err := New(1, []LayerSpec{{Units: 16, Act: Tanh}, {Units: 1, Act: Identity}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var inputs, targets [][]float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()*2 - 1
		inputs = append(inputs, []float64{x})
		targets = append(targets, []float64{math.Sin(2 * x)})
	}
	mse, err := n.Train(inputs, targets, TrainConfig{Epochs: 300, LearningRate: 0.02, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Errorf("sine regression MSE = %v", mse)
	}
}

func TestReLUNetworkTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, err := New(1, []LayerSpec{{Units: 12, Act: ReLU}, {Units: 1, Act: Identity}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var inputs, targets [][]float64
	for i := 0; i < 100; i++ {
		x := rng.Float64()*2 - 1
		inputs = append(inputs, []float64{x})
		targets = append(targets, []float64{math.Abs(x)})
	}
	mse, err := n.Train(inputs, targets, TrainConfig{Epochs: 400, LearningRate: 0.01, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Errorf("|x| regression MSE = %v", mse)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, _ := New(2, []LayerSpec{{Units: 1, Act: Identity}}, rng)
	if _, err := n.Train(nil, nil, TrainConfig{Rng: rng}); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := n.Train([][]float64{{1, 2}}, [][]float64{{1}}, TrainConfig{}); err == nil {
		t.Error("missing rng should error")
	}
	if _, err := n.Train([][]float64{{1}}, [][]float64{{1}}, TrainConfig{Rng: rng}); err == nil {
		t.Error("wrong input width should error")
	}
	if _, err := n.Train([][]float64{{1, 2}}, [][]float64{{1, 2}}, TrainConfig{Rng: rng}); err == nil {
		t.Error("wrong target width should error")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, _ := New(3, []LayerSpec{{Units: 5, Act: Tanh}, {Units: 2, Act: Identity}}, rng)
	in := []float64{0.3, -0.7, 1.1}
	want, err := n.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var restored Network
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("output %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var n Network
	if err := json.Unmarshal([]byte(`{"layers":[]}`), &n); err == nil {
		t.Error("empty snapshot should error")
	}
	if err := json.Unmarshal([]byte(`{"layers":[{"in":2,"out":1,"act":1,"w":[1],"b":[0]}]}`), &n); err == nil {
		t.Error("malformed weights should error")
	}
	if err := json.Unmarshal([]byte(`not json`), &n); err == nil {
		t.Error("bad json should error")
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n, _ := New(6, []LayerSpec{{Units: 16, Act: Tanh}, {Units: 16, Act: Tanh}, {Units: 1, Act: Identity}}, rng)
	in := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Predict(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n, _ := New(4, []LayerSpec{{Units: 12, Act: Tanh}, {Units: 1, Act: Identity}}, rng)
	var inputs, targets [][]float64
	for i := 0; i < 500; i++ {
		inputs = append(inputs, []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
		targets = append(targets, []float64{rng.Float64()})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Train(inputs, targets, TrainConfig{Epochs: 1, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}
