// Package ann is a small feedforward neural network implemented from
// scratch (dense layers, tanh/ReLU/identity activations, SGD with momentum,
// mean-squared-error loss). It exists to reproduce the paper's ANN-based
// road gradient baseline [8]; the Go ecosystem constraint (stdlib only)
// means we supply the substrate ourselves.
package ann

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer non-linearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota + 1
	Tanh
	ReLU
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// derivative given the activation output y (and pre-activation x for ReLU).
func (a Activation) derivative(x, y float64) float64 {
	switch a {
	case Tanh:
		return 1 - y*y
	case ReLU:
		if x < 0 {
			return 0
		}
		return 1
	default:
		return 1
	}
}

// layer is one dense layer: out = act(W·in + b).
type layer struct {
	In, Out int
	Act     Activation
	W       []float64 // Out x In, row-major
	B       []float64

	// training state
	vW, vB []float64 // momentum buffers
	// forward cache
	input, preact, output []float64
}

// Network is a feedforward net.
type Network struct {
	layers []*layer
}

// LayerSpec declares one layer of a network.
type LayerSpec struct {
	Units int
	Act   Activation
}

// New builds a network with the given input width and layer specs,
// initialized with Xavier-style random weights.
func New(inputs int, specs []LayerSpec, rng *rand.Rand) (*Network, error) {
	if inputs <= 0 {
		return nil, fmt.Errorf("ann: inputs %d must be positive", inputs)
	}
	if len(specs) == 0 {
		return nil, errors.New("ann: at least one layer required")
	}
	if rng == nil {
		return nil, errors.New("ann: rng is required")
	}
	n := &Network{}
	in := inputs
	for i, sp := range specs {
		if sp.Units <= 0 {
			return nil, fmt.Errorf("ann: layer %d has %d units", i, sp.Units)
		}
		if sp.Act < Identity || sp.Act > ReLU {
			return nil, fmt.Errorf("ann: layer %d has unknown activation %d", i, int(sp.Act))
		}
		l := &layer{In: in, Out: sp.Units, Act: sp.Act}
		l.W = make([]float64, l.Out*l.In)
		l.B = make([]float64, l.Out)
		l.vW = make([]float64, len(l.W))
		l.vB = make([]float64, len(l.B))
		scale := math.Sqrt(2.0 / float64(in+sp.Units))
		for j := range l.W {
			l.W[j] = rng.NormFloat64() * scale
		}
		n.layers = append(n.layers, l)
		in = sp.Units
	}
	return n, nil
}

// Inputs returns the expected input width.
func (n *Network) Inputs() int { return n.layers[0].In }

// Outputs returns the output width.
func (n *Network) Outputs() int { return n.layers[len(n.layers)-1].Out }

// Predict runs a forward pass and returns the output (a fresh slice).
// Safe for concurrent use: it allocates per-call buffers instead of touching
// the training caches.
func (n *Network) Predict(in []float64) ([]float64, error) {
	if len(in) != n.Inputs() {
		return nil, fmt.Errorf("ann: input width %d, want %d", len(in), n.Inputs())
	}
	cur := in
	for _, l := range n.layers {
		out := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			sum := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, w := range row {
				sum += w * cur[i]
			}
			out[o] = l.Act.apply(sum)
		}
		cur = out
	}
	if len(n.layers) == 0 {
		return append([]float64(nil), in...), nil
	}
	return cur, nil
}

func (l *layer) forward(in []float64) []float64 {
	if l.input == nil {
		l.input = make([]float64, l.In)
		l.preact = make([]float64, l.Out)
		l.output = make([]float64, l.Out)
	}
	copy(l.input, in)
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, w := range row {
			sum += w * in[i]
		}
		l.preact[o] = sum
		l.output[o] = l.Act.apply(sum)
	}
	return l.output
}

// backward propagates the output-layer gradient dLoss/dOut and accumulates
// parameter updates with learning rate lr and momentum mu.
func (l *layer) backward(gradOut []float64, lr, mu float64) []float64 {
	gradIn := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		d := gradOut[o] * l.Act.derivative(l.preact[o], l.output[o])
		row := l.W[o*l.In : (o+1)*l.In]
		vRow := l.vW[o*l.In : (o+1)*l.In]
		for i := range row {
			gradIn[i] += row[i] * d
			vRow[i] = mu*vRow[i] - lr*d*l.input[i]
			row[i] += vRow[i]
		}
		l.vB[o] = mu*l.vB[o] - lr*d
		l.B[o] += l.vB[o]
	}
	return gradIn
}

// TrainConfig controls SGD.
type TrainConfig struct {
	// Epochs over the dataset (default 50).
	Epochs int
	// LearningRate (default 0.01) and Momentum (default 0.9).
	LearningRate float64
	Momentum     float64
	// Rng shuffles the data each epoch. Required.
	Rng *rand.Rand
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		c.Momentum = 0.9
	}
	return c
}

// Train fits the network to (inputs, targets) with per-sample SGD and MSE
// loss, returning the final epoch's mean squared error.
func (n *Network) Train(inputs, targets [][]float64, cfg TrainConfig) (float64, error) {
	if len(inputs) == 0 || len(inputs) != len(targets) {
		return 0, fmt.Errorf("ann: bad dataset: %d inputs, %d targets", len(inputs), len(targets))
	}
	cfg = cfg.withDefaults()
	if cfg.Rng == nil {
		return 0, errors.New("ann: TrainConfig.Rng is required")
	}
	for i := range inputs {
		if len(inputs[i]) != n.Inputs() {
			return 0, fmt.Errorf("ann: sample %d input width %d, want %d", i, len(inputs[i]), n.Inputs())
		}
		if len(targets[i]) != n.Outputs() {
			return 0, fmt.Errorf("ann: sample %d target width %d, want %d", i, len(targets[i]), n.Outputs())
		}
	}
	idx := make([]int, len(inputs))
	for i := range idx {
		idx[i] = i
	}
	var lastMSE float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sse float64
		for _, k := range idx {
			// Forward.
			cur := inputs[k]
			for _, l := range n.layers {
				cur = l.forward(cur)
			}
			// MSE gradient at the output.
			grad := make([]float64, len(cur))
			for o := range cur {
				diff := cur[o] - targets[k][o]
				grad[o] = 2 * diff / float64(len(cur))
				sse += diff * diff
			}
			// Backward through the stack.
			for li := len(n.layers) - 1; li >= 0; li-- {
				grad = n.layers[li].backward(grad, cfg.LearningRate, cfg.Momentum)
			}
		}
		lastMSE = sse / float64(len(inputs)*n.Outputs())
	}
	return lastMSE, nil
}

// snapshot is the JSON form of a network.
type snapshot struct {
	Layers []layerSnapshot `json:"layers"`
}

type layerSnapshot struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	Act Activation `json:"act"`
	W   []float64  `json:"w"`
	B   []float64  `json:"b"`
}

// MarshalJSON serializes the weights.
func (n *Network) MarshalJSON() ([]byte, error) {
	var snap snapshot
	for _, l := range n.layers {
		snap.Layers = append(snap.Layers, layerSnapshot{
			In: l.In, Out: l.Out, Act: l.Act,
			W: append([]float64(nil), l.W...),
			B: append([]float64(nil), l.B...),
		})
	}
	return json.Marshal(snap)
}

// UnmarshalJSON restores a serialized network.
func (n *Network) UnmarshalJSON(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("ann: decoding network: %w", err)
	}
	if len(snap.Layers) == 0 {
		return errors.New("ann: snapshot has no layers")
	}
	n.layers = nil
	for i, ls := range snap.Layers {
		if ls.In <= 0 || ls.Out <= 0 || len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
			return fmt.Errorf("ann: snapshot layer %d malformed", i)
		}
		l := &layer{In: ls.In, Out: ls.Out, Act: ls.Act}
		l.W = append([]float64(nil), ls.W...)
		l.B = append([]float64(nil), ls.B...)
		l.vW = make([]float64, len(l.W))
		l.vB = make([]float64, len(l.B))
		n.layers = append(n.layers, l)
	}
	return nil
}
