package faultinject_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/core"
	"roadgrade/internal/faultinject"
	"roadgrade/internal/fusion"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// driveOn simulates a trip on r and samples the sensor suite.
func driveOn(t testing.TB, r *road.Road, speedMS float64, seed int64) *sensors.Trace {
	t.Helper()
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: vehicle.DefaultDriver(speedMS),
		Rng: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(seed+1000)))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// steepTrace is a drive on a 6° straight road: the grade keeps |AccelLong|
// above the severity-1 saturation limit so every fault visibly corrupts it.
func steepTrace(t testing.TB) *sensors.Trace {
	t.Helper()
	r, err := road.StraightRoad("steep", 1200, road.Deg(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	return driveOn(t, r, 14, 7)
}

// recordsFingerprint renders the records for equality checks; %v prints NaN
// stably, which reflect.DeepEqual (NaN != NaN) cannot handle.
func recordsFingerprint(tr *sensors.Trace) string {
	return fmt.Sprintf("%v", tr.Records)
}

func TestApplyDeterministic(t *testing.T) {
	trace := steepTrace(t)
	for _, plan := range faultinject.DefaultPlans() {
		a := plan.Apply(trace, 0.7, 42)
		b := plan.Apply(trace, 0.7, 42)
		if recordsFingerprint(a) != recordsFingerprint(b) {
			t.Errorf("plan %s: same seed produced different traces", plan.Name)
		}
		// clock-skew and accel-saturation are purely severity-driven; every
		// other plan draws randomness and must vary with the seed.
		if plan.Name == "clock-skew" || plan.Name == "accel-saturation" {
			continue
		}
		c := plan.Apply(trace, 0.7, 43)
		if recordsFingerprint(a) == recordsFingerprint(c) {
			t.Errorf("plan %s: different seed produced identical corruption", plan.Name)
		}
	}
}

func TestApplySeverityZeroIsNoOp(t *testing.T) {
	trace := steepTrace(t)
	want := recordsFingerprint(trace)
	for _, plan := range faultinject.DefaultPlans() {
		got := plan.Apply(trace, 0, 42)
		if recordsFingerprint(got) != want {
			t.Errorf("plan %s: severity 0 modified the trace", plan.Name)
		}
	}
	if recordsFingerprint(trace) != want {
		t.Fatal("Apply mutated the input trace")
	}
}

func TestEveryPlanCorrupts(t *testing.T) {
	trace := steepTrace(t)
	clean := recordsFingerprint(trace)
	for _, plan := range faultinject.DefaultPlans() {
		got := plan.Apply(trace, 1, 42)
		if recordsFingerprint(got) == clean {
			t.Errorf("plan %s: severity 1 left the trace untouched", plan.Name)
		}
		if len(trace.Truth) > 0 && (len(got.Truth) != len(trace.Truth) || &got.Truth[0] != &trace.Truth[0]) {
			t.Errorf("plan %s: clone does not share truth", plan.Name)
		}
	}
	if recordsFingerprint(trace) != clean {
		t.Fatal("Apply mutated the input trace")
	}
}

func TestPlanByName(t *testing.T) {
	p, err := faultinject.PlanByName("nan-burst")
	if err != nil || p.Name != "nan-burst" {
		t.Fatalf("PlanByName(nan-burst) = %v, %v", p.Name, err)
	}
	if _, err := faultinject.PlanByName("nope"); err == nil {
		t.Error("unknown plan should error")
	}
}

// TestPipelineSurvivesEveryPlan is the headline robustness acceptance: under
// every single-fault plan at default severity, the full red-route pipeline —
// adjustment, four estimation tracks, fusion — completes without panic and
// with a finite fused profile.
func TestPipelineSurvivesEveryPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("full red-route pipeline per fault plan")
	}
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	trace := driveOn(t, r, 40.0/3.6, 11)
	p, err := core.NewPipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range faultinject.DefaultPlans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			corrupted := plan.Apply(trace, 0.5, 99)
			tracks, err := p.EstimateAll(corrupted, r.Line())
			if err != nil {
				t.Fatalf("EstimateAll: %v", err)
			}
			prof, reports, err := fusion.FuseTracksReport(tracks, 5, r.Length())
			if err != nil {
				t.Fatalf("fusing: %v (reports %+v)", err, reports)
			}
			for i, g := range prof.GradeRad {
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("non-finite fused grade at cell %d", i)
				}
				if math.IsNaN(prof.Var[i]) || prof.Var[i] < 0 {
					t.Fatalf("invalid fused variance %v at cell %d", prof.Var[i], i)
				}
			}
		})
	}
}
