package faultinject

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/fusion"
)

func advProfile(cells int) *fusion.Profile {
	p := &fusion.Profile{SpacingM: 5, GradeRad: make([]float64, cells), Var: make([]float64, cells)}
	for c := range p.GradeRad {
		p.GradeRad[c] = 0.03 * math.Sin(float64(c)/10)
		p.Var[c] = 1e-5
	}
	return p
}

func TestAdversaryRegistry(t *testing.T) {
	classes := AdversaryClasses()
	if len(classes) != 4 {
		t.Fatalf("%d adversary classes, want 4", len(classes))
	}
	seen := map[string]bool{}
	for _, a := range classes {
		if seen[a.Name()] {
			t.Errorf("duplicate adversary name %q", a.Name())
		}
		seen[a.Name()] = true
		got, err := AdversaryByName(a.Name())
		if err != nil {
			t.Errorf("AdversaryByName(%q): %v", a.Name(), err)
		} else if got.Name() != a.Name() {
			t.Errorf("AdversaryByName(%q) resolved %q", a.Name(), got.Name())
		}
	}
	if _, err := AdversaryByName("nope"); err == nil {
		t.Error("unknown adversary should error")
	}
}

func TestAdversaryDeterministic(t *testing.T) {
	for _, a := range AdversaryClasses() {
		p1, p2 := advProfile(50), advProfile(50)
		a.Corrupt(p1, 3, rand.New(rand.NewSource(11)))
		a.Corrupt(p2, 3, rand.New(rand.NewSource(11)))
		for c := range p1.GradeRad {
			if math.Float64bits(p1.GradeRad[c]) != math.Float64bits(p2.GradeRad[c]) ||
				math.Float64bits(p1.Var[c]) != math.Float64bits(p2.Var[c]) {
				t.Fatalf("%s: not deterministic at cell %d", a.Name(), c)
			}
		}
	}
}

func TestConstantBiasShifts(t *testing.T) {
	clean, p := advProfile(40), advProfile(40)
	(&ConstantBias{BiasRad: 0.05}).Corrupt(p, 0, rand.New(rand.NewSource(1)))
	for c := range p.GradeRad {
		if d := p.GradeRad[c] - clean.GradeRad[c]; math.Abs(d-0.05) > 1e-12 {
			t.Fatalf("cell %d shifted by %v, want 0.05", c, d)
		}
	}
}

func TestDriftingBiasGrowsAndCaps(t *testing.T) {
	a := &DriftingBias{PerRoundRad: 0.01, MaxRad: 0.08}
	rng := rand.New(rand.NewSource(2))
	var prev float64
	for round := 0; round < 12; round++ {
		clean, p := advProfile(10), advProfile(10)
		a.Corrupt(p, round, rng)
		b := p.GradeRad[0] - clean.GradeRad[0]
		if b < prev-1e-12 {
			t.Fatalf("round %d: bias shrank %v -> %v", round, prev, b)
		}
		if b > 0.08+1e-12 {
			t.Fatalf("round %d: bias %v exceeds cap", round, b)
		}
		prev = b
	}
	if math.Abs(prev-0.08) > 1e-12 {
		t.Errorf("final bias %v, want capped at 0.08", prev)
	}
}

func TestCollusionOverwrites(t *testing.T) {
	p := advProfile(60)
	(&Collusion{TargetGradeRad: 0.04}).Corrupt(p, 0, rand.New(rand.NewSource(3)))
	for c := range p.GradeRad {
		if math.Abs(p.GradeRad[c]-0.04) > 0.002 {
			t.Fatalf("cell %d = %v, want ~0.04 (true shape must be erased)", c, p.GradeRad[c])
		}
	}
}

func TestOverconfidentShrinksVariance(t *testing.T) {
	clean, p := advProfile(60), advProfile(60)
	(&Overconfident{}).Corrupt(p, 0, rand.New(rand.NewSource(4)))
	var noisy bool
	for c := range p.Var {
		if p.Var[c] >= clean.Var[c] {
			t.Fatalf("cell %d: variance not shrunk (%v >= %v)", c, p.Var[c], clean.Var[c])
		}
		if p.GradeRad[c] != clean.GradeRad[c] {
			noisy = true
		}
	}
	if !noisy {
		t.Error("overconfident adversary added no real noise")
	}
}
