package faultinject

import (
	"fmt"
	"math/rand"

	"roadgrade/internal/fusion"
)

// Adversary corrupts a fused-ready grade profile the way a malicious or
// defective *submitter* would — after sensing and local estimation, right
// before upload. This complements the Fault interface above, which corrupts
// raw sensor traces: Faults model broken phones, Adversaries model bad
// actors (or systematically miscalibrated devices) attacking the cloud
// fusion layer.
//
// Corrupt mutates p in place. round is the submission round for the device
// (0-based), letting time-varying adversaries drift; all randomness must come
// from rng so sweeps stay reproducible.
type Adversary interface {
	Name() string
	Corrupt(p *fusion.Profile, round int, rng *rand.Rand)
}

// ConstantBias adds a fixed offset to every cell — a tilted phone mount or a
// deliberate nudge. The easiest class to defeat: the per-device bias
// estimator can learn and subtract it.
type ConstantBias struct {
	// BiasRad is the added grade offset (default 0.05 rad ≈ 2.9°).
	BiasRad float64
}

// Name implements Adversary.
func (a *ConstantBias) Name() string { return "const-bias" }

// Corrupt implements Adversary.
func (a *ConstantBias) Corrupt(p *fusion.Profile, round int, rng *rand.Rand) {
	b := defaultF(a.BiasRad, 0.05)
	for c := range p.GradeRad {
		p.GradeRad[c] += b
	}
}

// DriftingBias grows its offset each round — a degrading mount, or an
// attacker probing how far it can push before the trust layer reacts. Harder
// than ConstantBias because the bias estimator chases a moving target.
type DriftingBias struct {
	// PerRoundRad is the bias increment per round (default 0.01 rad).
	PerRoundRad float64
	// MaxRad caps the drift (default 0.08 rad).
	MaxRad float64
}

// Name implements Adversary.
func (a *DriftingBias) Name() string { return "drift-bias" }

// Corrupt implements Adversary.
func (a *DriftingBias) Corrupt(p *fusion.Profile, round int, rng *rand.Rand) {
	step := defaultF(a.PerRoundRad, 0.01)
	b := clampF(float64(round+1)*step, 0, defaultF(a.MaxRad, 0.08))
	for c := range p.GradeRad {
		p.GradeRad[c] += b
	}
}

// Collusion replaces the whole profile with an agreed-upon fake — every
// colluding device reports the same flat gradient, so colluders corroborate
// each other. This is the strongest class: once colluders outnumber honest
// reporters in a cell's window, they *are* the consensus and no per-cell
// robust estimator can recover (the documented breakdown point).
type Collusion struct {
	// TargetGradeRad is the fabricated gradient (default 0.04 rad).
	TargetGradeRad float64
	// JitterRad is tiny per-cell noise so colluders don't submit literally
	// identical bytes (default 1e-4 rad) — evading trivial duplicate checks.
	JitterRad float64
}

// Name implements Adversary.
func (a *Collusion) Name() string { return "collude" }

// Corrupt implements Adversary.
func (a *Collusion) Corrupt(p *fusion.Profile, round int, rng *rand.Rand) {
	target := a.TargetGradeRad
	if target == 0 {
		target = 0.04
	}
	jit := defaultF(a.JitterRad, 1e-4)
	for c := range p.GradeRad {
		p.GradeRad[c] = target + jit*rng.NormFloat64()
	}
}

// Overconfident keeps honest-looking grades but reports a variance far below
// the truth while actually being *noisier* — the classic way to dominate
// inverse-variance fusion without lying about the mean. Naive fusion hands
// such a device almost all the weight.
type Overconfident struct {
	// VarScale shrinks the reported variance (default 1e-3).
	VarScale float64
	// ExtraNoiseRad is added real noise per cell (default 0.01 rad).
	ExtraNoiseRad float64
}

// Name implements Adversary.
func (a *Overconfident) Name() string { return "overconfident" }

// Corrupt implements Adversary.
func (a *Overconfident) Corrupt(p *fusion.Profile, round int, rng *rand.Rand) {
	scale := defaultF(a.VarScale, 1e-3)
	noise := defaultF(a.ExtraNoiseRad, 0.01)
	for c := range p.GradeRad {
		p.GradeRad[c] += noise * rng.NormFloat64()
		p.Var[c] *= scale
	}
}

// AdversaryClasses returns one default-configured adversary per class, the
// sweep set the poisonsweep experiment charts.
func AdversaryClasses() []Adversary {
	return []Adversary{
		&ConstantBias{},
		&DriftingBias{},
		&Collusion{},
		&Overconfident{},
	}
}

// AdversaryByName finds a default-configured adversary class.
func AdversaryByName(name string) (Adversary, error) {
	for _, a := range AdversaryClasses() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("faultinject: unknown adversary %q", name)
}
