// Package faultinject corrupts sensor traces with the failure modes real
// phone deployments exhibit — IMU sample freezes and drops, stuck
// accelerometer axes, clock jitter and skew, speedometer/OBD stalls, GPS
// multipath spikes, ADC saturation, and NaN bursts from crashing sensor HALs.
//
// Injection is deterministic: the same (trace, plan, severity, seed) always
// produces the same corrupted trace, so robustness experiments are exactly
// reproducible. Faults compose through a Plan and scale through a severity
// knob in [0, 1] so sweeps can chart graceful degradation. The input trace is
// never modified; every application works on a fresh clone.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/sensors"
)

// Fault is one failure mode. Inject corrupts the trace in place; severity is
// clamped to [0, 1] by the Plan before the call (0 = no fault, 1 = worst
// modeled case). Implementations must draw all randomness from rng.
type Fault interface {
	Name() string
	Inject(tr *sensors.Trace, severity float64, rng *rand.Rand)
}

// Plan is a named, composable set of faults applied in order.
type Plan struct {
	Name   string
	Faults []Fault
}

// Apply clones the trace and injects every fault of the plan at the given
// severity. Each fault draws from its own seeded stream, so adding a fault to
// a plan does not perturb the randomness of the others.
func (p Plan) Apply(tr *sensors.Trace, severity float64, seed int64) *sensors.Trace {
	out := Clone(tr)
	sev := clamp01(severity)
	if sev == 0 {
		return out
	}
	for i, f := range p.Faults {
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		f.Inject(out, sev, rng)
	}
	return out
}

// Clone deep-copies the records of a trace. Truth is shared: it is read-only
// evaluation data and faults never touch it.
func Clone(tr *sensors.Trace) *sensors.Trace {
	out := &sensors.Trace{DT: tr.DT, Truth: tr.Truth}
	out.Records = make([]sensors.Record, len(tr.Records))
	copy(out.Records, tr.Records)
	return out
}

// DefaultPlans returns one single-fault plan per modeled failure mode, the
// sweep set RobustnessSweep charts.
func DefaultPlans() []Plan {
	return []Plan{
		{Name: "imu-freeze", Faults: []Fault{&IMUFreeze{}}},
		{Name: "imu-drop", Faults: []Fault{&IMUDrop{}}},
		{Name: "stuck-axis", Faults: []Fault{&StuckAxis{}}},
		{Name: "clock-jitter", Faults: []Fault{&ClockJitter{}}},
		{Name: "clock-skew", Faults: []Fault{&ClockSkew{}}},
		{Name: "speedo-stall", Faults: []Fault{&SpeedStall{}}},
		{Name: "obd-stall", Faults: []Fault{&SpeedStall{OBD: true}}},
		{Name: "gps-multipath", Faults: []Fault{&GPSMultipath{}}},
		{Name: "accel-saturation", Faults: []Fault{&Saturation{}}},
		{Name: "nan-burst", Faults: []Fault{&NaNBurst{}}},
	}
}

// PlanByName finds a default plan.
func PlanByName(name string) (Plan, error) {
	for _, p := range DefaultPlans() {
		if p.Name == name {
			return p, nil
		}
	}
	return Plan{}, fmt.Errorf("faultinject: unknown plan %q", name)
}

// episodes walks the trace ticks and yields [start, end) index ranges of
// failure episodes: per-tick onset hazard ratePerMin (scaled by severity),
// exponential episode duration meanDurS.
func episodes(tr *sensors.Trace, ratePerMin, meanDurS, severity float64, rng *rand.Rand, visit func(start, end int)) {
	n := len(tr.Records)
	hazard := severity * ratePerMin / 60 * tr.DT
	for i := 0; i < n; i++ {
		if rng.Float64() >= hazard {
			continue
		}
		dur := rng.ExpFloat64() * meanDurS
		end := i + int(dur/tr.DT)
		if end <= i {
			end = i + 1
		}
		if end > n {
			end = n
		}
		visit(i, end)
		i = end // episodes do not overlap
	}
}

// IMUFreeze models a HAL hiccup where the IMU keeps reporting the last sample:
// all IMU-class channels hold their onset value for the episode.
type IMUFreeze struct {
	// RatePerMin is the episode onset rate at severity 1 (default 4/min).
	RatePerMin float64
	// MeanDurS is the mean episode length (default 2 s).
	MeanDurS float64
}

// Name implements Fault.
func (f *IMUFreeze) Name() string { return "imu-freeze" }

// Inject implements Fault.
func (f *IMUFreeze) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	rate, dur := defaultF(f.RatePerMin, 4), defaultF(f.MeanDurS, 2)
	episodes(tr, rate, dur, sev, rng, func(start, end int) {
		frozen := tr.Records[start]
		for i := start; i < end; i++ {
			r := &tr.Records[i]
			r.AccelLong, r.GyroYaw = frozen.AccelLong, frozen.GyroYaw
			r.RawAccelX, r.RawAccelY, r.RawAccelZ = frozen.RawAccelX, frozen.RawAccelY, frozen.RawAccelZ
			r.RawGyroX, r.RawGyroY, r.RawGyroZ = frozen.RawGyroX, frozen.RawGyroY, frozen.RawGyroZ
		}
	})
}

// IMUDrop models missing IMU samples surfaced as zeros (what an app reads
// when the sensor queue underruns).
type IMUDrop struct {
	RatePerMin float64 // default 4/min at severity 1
	MeanDurS   float64 // default 1.5 s
}

// Name implements Fault.
func (f *IMUDrop) Name() string { return "imu-drop" }

// Inject implements Fault.
func (f *IMUDrop) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	rate, dur := defaultF(f.RatePerMin, 4), defaultF(f.MeanDurS, 1.5)
	episodes(tr, rate, dur, sev, rng, func(start, end int) {
		for i := start; i < end; i++ {
			r := &tr.Records[i]
			r.AccelLong, r.GyroYaw = 0, 0
			r.RawAccelX, r.RawAccelY, r.RawAccelZ = 0, 0, 0
			r.RawGyroX, r.RawGyroY, r.RawGyroZ = 0, 0, 0
		}
	})
}

// StuckAxis freezes the longitudinal accelerometer axis (the grade-bearing
// channel) at a constant reading from a random onset to the end of the trace.
// Severity sets the stuck fraction of the drive.
type StuckAxis struct{}

// Name implements Fault.
func (f *StuckAxis) Name() string { return "stuck-axis" }

// Inject implements Fault.
func (f *StuckAxis) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	n := len(tr.Records)
	if n == 0 {
		return
	}
	// Stuck tail covers up to half the drive at severity 1.
	frac := 0.5 * sev * (0.5 + 0.5*rng.Float64())
	start := n - int(frac*float64(n))
	if start < 0 {
		start = 0
	}
	if start >= n {
		return
	}
	stuck := tr.Records[start].RawAccelY
	for i := start; i < n; i++ {
		tr.Records[i].RawAccelY = stuck
		tr.Records[i].AccelLong = stuck
	}
}

// ClockJitter perturbs per-sample timestamps (non-monotonic wobble), the
// classic smartphone sensor-event timestamp pathology.
type ClockJitter struct {
	// SigmaS is the jitter standard deviation at severity 1 (default 30 ms).
	SigmaS float64
}

// Name implements Fault.
func (f *ClockJitter) Name() string { return "clock-jitter" }

// Inject implements Fault.
func (f *ClockJitter) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	sigma := defaultF(f.SigmaS, 0.03) * sev
	for i := range tr.Records {
		tr.Records[i].T += rng.NormFloat64() * sigma
	}
}

// ClockSkew stretches the timestamp base (a drifting phone clock): at
// severity 1 the clock runs 2% fast.
type ClockSkew struct {
	MaxPPM float64 // default 20000 ppm (2%)
}

// Name implements Fault.
func (f *ClockSkew) Name() string { return "clock-skew" }

// Inject implements Fault.
func (f *ClockSkew) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	scale := 1 + defaultF(f.MaxPPM, 20000)*1e-6*sev
	for i := range tr.Records {
		tr.Records[i].T *= scale
	}
}

// SpeedStall holds a speed channel at its last value during episodes: the
// phone speedometer (OBD=false) or the CAN/OBD wheel speed and torque
// (OBD=true, a stalling dongle).
type SpeedStall struct {
	OBD        bool
	RatePerMin float64 // default 3/min at severity 1
	MeanDurS   float64 // default 4 s
}

// Name implements Fault.
func (f *SpeedStall) Name() string {
	if f.OBD {
		return "obd-stall"
	}
	return "speedo-stall"
}

// Inject implements Fault.
func (f *SpeedStall) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	rate, dur := defaultF(f.RatePerMin, 3), defaultF(f.MeanDurS, 4)
	episodes(tr, rate, dur, sev, rng, func(start, end int) {
		held := tr.Records[start]
		for i := start; i < end; i++ {
			if f.OBD {
				tr.Records[i].CANSpeed = held.CANSpeed
				tr.Records[i].CANTorque = held.CANTorque
			} else {
				tr.Records[i].Speedometer = held.Speedometer
			}
		}
	})
}

// GPSMultipath spikes valid GPS fixes with large position/altitude offsets
// (urban-canyon reflections). Severity sets the per-fix spike probability.
type GPSMultipath struct {
	// SpikeProb is the per-fix spike probability at severity 1 (default 0.3).
	SpikeProb float64
	// OffsetM is the spike magnitude scale (default 80 m).
	OffsetM float64
}

// Name implements Fault.
func (f *GPSMultipath) Name() string { return "gps-multipath" }

// Inject implements Fault.
func (f *GPSMultipath) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	prob := defaultF(f.SpikeProb, 0.3) * sev
	mag := defaultF(f.OffsetM, 80)
	for i := range tr.Records {
		r := &tr.Records[i]
		if !r.GPSValid || rng.Float64() >= prob {
			continue
		}
		ang := rng.Float64() * 2 * math.Pi
		d := mag * (0.5 + rng.ExpFloat64())
		r.GPSE += d * math.Cos(ang)
		r.GPSN += d * math.Sin(ang)
		r.GPSAlt += mag * rng.NormFloat64() * 0.5
		r.GPSSpeed = math.Max(0, r.GPSSpeed+rng.NormFloat64()*3)
	}
}

// Saturation clips the longitudinal accelerometer at a shrinking full-scale
// range (a mis-configured ADC range): ±10 m/s² at severity 0 down to
// ±0.8 m/s² at severity 1.
type Saturation struct{}

// Name implements Fault.
func (f *Saturation) Name() string { return "accel-saturation" }

// Inject implements Fault.
func (f *Saturation) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	limit := 10 - 9.2*sev
	for i := range tr.Records {
		r := &tr.Records[i]
		r.AccelLong = clampF(r.AccelLong, -limit, limit)
		r.RawAccelY = clampF(r.RawAccelY, -limit, limit)
	}
}

// NaNBurst replaces sensor channels with NaN for short bursts — the raw form
// of a crashing sensor service — exercising every non-finite guard downstream.
type NaNBurst struct {
	RatePerMin float64 // default 3/min at severity 1
	MeanDurS   float64 // default 0.8 s
}

// Name implements Fault.
func (f *NaNBurst) Name() string { return "nan-burst" }

// Inject implements Fault.
func (f *NaNBurst) Inject(tr *sensors.Trace, sev float64, rng *rand.Rand) {
	rate, dur := defaultF(f.RatePerMin, 3), defaultF(f.MeanDurS, 0.8)
	nan := math.NaN()
	episodes(tr, rate, dur, sev, rng, func(start, end int) {
		for i := start; i < end; i++ {
			r := &tr.Records[i]
			r.AccelLong, r.GyroYaw = nan, nan
			r.RawAccelX, r.RawAccelY, r.RawAccelZ = nan, nan, nan
			r.RawGyroX, r.RawGyroY, r.RawGyroZ = nan, nan, nan
			r.Speedometer, r.CANSpeed, r.BaroAlt = nan, nan, nan
		}
	})
}

func defaultF(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

func clamp01(x float64) float64 { return clampF(x, 0, 1) }

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
