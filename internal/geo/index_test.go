package geo

import (
	"math"
	"math/rand"
	"testing"
)

// randomPolyline builds a wandering n-vertex polyline with ~stepM spacing.
func randomPolyline(rng *rand.Rand, n int, stepM float64) *Polyline {
	pts := make([]ENU, 0, n)
	p := ENU{E: rng.Float64() * 100, N: rng.Float64() * 100}
	heading := rng.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		pts = append(pts, p)
		heading += (rng.Float64() - 0.5) * 0.8
		d := stepM * (0.5 + rng.Float64())
		p = ENU{E: p.E + d*math.Cos(heading), N: p.N + d*math.Sin(heading)}
	}
	line, err := NewPolyline(pts)
	if err != nil {
		panic(err)
	}
	return line
}

// TestIndexedClosestSMatchesBrute is the equivalence property the index is
// built around: for random polylines and query points — near the line, far
// from it, and past its ends — the indexed query returns exactly the
// brute-force answer (bit-for-bit, including tie-breaking).
func TestIndexedClosestSMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 40 + rng.Intn(400)
		line := randomPolyline(rng, n, 5+rng.Float64()*20)
		idx := line.Index()
		if idx.cells == nil {
			t.Fatalf("trial %d: index for %d segments fell back to scan", trial, n-1)
		}
		pts := line.Points()
		for q := 0; q < 200; q++ {
			var query ENU
			switch q % 3 {
			case 0: // near the line: a vertex plus GPS-scale noise
				v := pts[rng.Intn(len(pts))]
				query = ENU{E: v.E + rng.NormFloat64()*15, N: v.N + rng.NormFloat64()*15}
			case 1: // far off-road
				v := pts[rng.Intn(len(pts))]
				query = ENU{E: v.E + rng.NormFloat64()*2000, N: v.N + rng.NormFloat64()*2000}
			default: // anywhere in an inflated bounding box
				query = ENU{
					E: pts[0].E + (rng.Float64()-0.5)*8000,
					N: pts[0].N + (rng.Float64()-0.5)*8000,
				}
			}
			wantS, wantD := line.ClosestS(query)
			gotS, gotD := idx.ClosestS(query)
			if gotS != wantS || gotD != wantD {
				t.Fatalf("trial %d query %v: indexed (s=%v d=%v) != brute (s=%v d=%v)",
					trial, query, gotS, gotD, wantS, wantD)
			}
		}
	}
}

// TestIndexSmallPolylineFallsBack checks the below-threshold path: short
// polylines skip grid construction and the indexed query is the exact scan.
func TestIndexSmallPolylineFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	line := randomPolyline(rng, indexMinSegments-5, 10)
	idx := line.Index()
	if idx.cells != nil {
		t.Fatalf("expected nil cells below %d segments", indexMinSegments)
	}
	for q := 0; q < 50; q++ {
		query := ENU{E: rng.NormFloat64() * 300, N: rng.NormFloat64() * 300}
		wantS, wantD := line.ClosestS(query)
		gotS, gotD := idx.ClosestS(query)
		if gotS != wantS || gotD != wantD {
			t.Fatalf("fallback mismatch at %v", query)
		}
	}
}

// TestIndexIsCached checks Index() builds once and returns the same value.
func TestIndexIsCached(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	line := randomPolyline(rng, 100, 10)
	if line.Index() != line.Index() {
		t.Fatal("Index() returned different instances")
	}
}

// TestAtHintMatchesAt sweeps monotone and random positions through the
// hinted locator and checks exact agreement with the plain one.
func TestAtHintMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	line := randomPolyline(rng, 200, 8)
	hint := 0
	for s := -10.0; s < line.Length()+10; s += 0.37 {
		if got, want := line.AtHint(s, &hint), line.At(s); got != want {
			t.Fatalf("monotone sweep: AtHint(%v)=%v, At=%v", s, got, want)
		}
	}
	for i := 0; i < 500; i++ {
		s := (rng.Float64()*1.2 - 0.1) * line.Length()
		if got, want := line.AtHint(s, &hint), line.At(s); got != want {
			t.Fatalf("random jump: AtHint(%v)=%v, At=%v", s, got, want)
		}
		if got, want := line.AtHint(s, nil), line.At(s); got != want {
			t.Fatalf("nil hint: AtHint(%v)=%v, At=%v", s, got, want)
		}
	}
}

// benchQueries builds GPS-fix-like queries scattered along the line.
func benchQueries(line *Polyline, n int) []ENU {
	rng := rand.New(rand.NewSource(3))
	pts := line.Points()
	out := make([]ENU, n)
	for i := range out {
		v := pts[rng.Intn(len(pts))]
		out[i] = ENU{E: v.E + rng.NormFloat64()*10, N: v.N + rng.NormFloat64()*10}
	}
	return out
}

func BenchmarkClosestSBrute(b *testing.B) {
	line := randomPolyline(rand.New(rand.NewSource(2)), 2000, 10)
	queries := benchQueries(line, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		line.ClosestS(q)
	}
}

func BenchmarkClosestSIndexed(b *testing.B) {
	line := randomPolyline(rand.New(rand.NewSource(2)), 2000, 10)
	idx := line.Index()
	queries := benchQueries(line, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		idx.ClosestS(q)
	}
}
