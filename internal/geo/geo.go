// Package geo provides the geographic primitives the system needs: lat/lon
// handling, local East-North-Up projection, great-circle distances, bearings
// measured from the earth East direction (the convention of §III-A of the
// paper), and the §III-D road-segment direction formula used when building
// reference gradient profiles.
//
// Angles are radians unless a name says degrees. Headings are measured
// counter-clockwise from East, matching the paper's X_E (East) / Y_E axes.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusM is the mean earth radius in meters.
const EarthRadiusM = 6371008.8

// LatLon is a WGS-84 position in degrees.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// String renders the position with enough digits for ~1 cm resolution.
func (p LatLon) String() string {
	return fmt.Sprintf("(%.7f, %.7f)", p.Lat, p.Lon)
}

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// HaversineM returns the great-circle distance between a and b in meters.
func HaversineM(a, b LatLon) float64 {
	lat1, lat2 := Radians(a.Lat), Radians(b.Lat)
	dLat := lat2 - lat1
	dLon := Radians(b.Lon - a.Lon)
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusM * math.Asin(math.Min(1, math.Sqrt(h)))
}

// ENU is a local tangent-plane coordinate: meters East and North of an
// origin. Up is carried separately as altitude where needed.
type ENU struct {
	E float64 `json:"e"`
	N float64 `json:"n"`
}

// Projector converts between LatLon and a local ENU frame anchored at an
// origin. The equirectangular approximation is accurate to centimeters over
// the city scales (tens of km) this project simulates.
type Projector struct {
	origin  LatLon
	cosLat0 float64
}

// NewProjector returns a projector anchored at origin.
func NewProjector(origin LatLon) *Projector {
	return &Projector{origin: origin, cosLat0: math.Cos(Radians(origin.Lat))}
}

// Origin returns the anchor position.
func (p *Projector) Origin() LatLon { return p.origin }

// ToENU projects a position into the local frame.
func (p *Projector) ToENU(pos LatLon) ENU {
	return ENU{
		E: EarthRadiusM * Radians(pos.Lon-p.origin.Lon) * p.cosLat0,
		N: EarthRadiusM * Radians(pos.Lat-p.origin.Lat),
	}
}

// ToLatLon inverts ToENU.
func (p *Projector) ToLatLon(e ENU) LatLon {
	return LatLon{
		Lat: p.origin.Lat + Degrees(e.N/EarthRadiusM),
		Lon: p.origin.Lon + Degrees(e.E/(EarthRadiusM*p.cosLat0)),
	}
}

// BearingFromEast returns the direction of travel from a to b, measured
// counter-clockwise from the earth East direction, in (-π, π].
func BearingFromEast(a, b LatLon) float64 {
	dE := EarthRadiusM * Radians(b.Lon-a.Lon) * math.Cos(Radians((a.Lat+b.Lat)/2))
	dN := EarthRadiusM * Radians(b.Lat-a.Lat)
	return math.Atan2(dN, dE)
}

// PaperSegmentDirection is the §III-D formula arctan((λ_E-λ_S)/(φ_E-φ_S))
// computed exactly as printed, kept for fidelity with the reference-profile
// construction. Prefer BearingFromEast for metric-correct directions.
func PaperSegmentDirection(start, end LatLon) float64 {
	return math.Atan((end.Lon - start.Lon) / (end.Lat - start.Lat))
}

// WrapAngle normalizes an angle to (-π, π].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest rotation from a to b in (-π, π].
func AngleDiff(a, b float64) float64 { return WrapAngle(b - a) }
