package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Charlottesville, VA — the paper's experiment city.
var cville = LatLon{Lat: 38.0293, Lon: -78.4767}

func TestRadiansDegreesRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 45, -90, 180, 359} {
		if got := Degrees(Radians(d)); math.Abs(got-d) > 1e-12 {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// One degree of latitude is ~111.2 km.
	a := LatLon{Lat: 38, Lon: -78}
	b := LatLon{Lat: 39, Lon: -78}
	d := HaversineM(a, b)
	if d < 110e3 || d > 112.5e3 {
		t.Errorf("1 degree latitude = %v m, want ~111.2 km", d)
	}
	if HaversineM(a, a) != 0 {
		t.Error("distance to self nonzero")
	}
}

func TestHaversineSymmetric(t *testing.T) {
	a := cville
	b := LatLon{Lat: 38.05, Lon: -78.5}
	if d1, d2 := HaversineM(a, b), HaversineM(b, a); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestProjectorRoundTrip(t *testing.T) {
	p := NewProjector(cville)
	if p.Origin() != cville {
		t.Error("Origin mismatch")
	}
	f := func(dLat, dLon float64) bool {
		// Constrain offsets to city scale (~0.2 degrees).
		pos := LatLon{
			Lat: cville.Lat + math.Mod(dLat, 0.2),
			Lon: cville.Lon + math.Mod(dLon, 0.2),
		}
		back := p.ToLatLon(p.ToENU(pos))
		return math.Abs(back.Lat-pos.Lat) < 1e-9 && math.Abs(back.Lon-pos.Lon) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectorAgreesWithHaversine(t *testing.T) {
	p := NewProjector(cville)
	pos := LatLon{Lat: cville.Lat + 0.05, Lon: cville.Lon + 0.05}
	e := p.ToENU(pos)
	planar := math.Hypot(e.E, e.N)
	hav := HaversineM(cville, pos)
	if math.Abs(planar-hav)/hav > 0.001 {
		t.Errorf("planar %v vs haversine %v", planar, hav)
	}
}

func TestBearingFromEast(t *testing.T) {
	tests := []struct {
		name string
		to   LatLon
		want float64
	}{
		{"east", LatLon{Lat: cville.Lat, Lon: cville.Lon + 0.01}, 0},
		{"north", LatLon{Lat: cville.Lat + 0.01, Lon: cville.Lon}, math.Pi / 2},
		{"west", LatLon{Lat: cville.Lat, Lon: cville.Lon - 0.01}, math.Pi},
		{"south", LatLon{Lat: cville.Lat - 0.01, Lon: cville.Lon}, -math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := BearingFromEast(cville, tt.to)
			if math.Abs(AngleDiff(got, tt.want)) > 1e-6 {
				t.Errorf("bearing = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPaperSegmentDirection(t *testing.T) {
	// Due-north segment: Δλ = 0 so arctan(0) = 0 in the paper's convention.
	s := LatLon{Lat: 38, Lon: -78}
	e := LatLon{Lat: 38.001, Lon: -78}
	if got := PaperSegmentDirection(s, e); got != 0 {
		t.Errorf("north segment direction = %v, want 0", got)
	}
	// 45-degree segment in degree space.
	e2 := LatLon{Lat: 38.001, Lon: -77.999}
	if got := PaperSegmentDirection(s, e2); math.Abs(got-math.Pi/4) > 1e-9 {
		t.Errorf("diag segment direction = %v, want pi/4", got)
	}
}

func TestWrapAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{math.Pi + 0.1, -math.Pi + 0.1},
		{-math.Pi - 0.1, math.Pi - 0.1},
		{2 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := WrapAngle(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		a = math.Mod(a, 100)
		w := WrapAngle(a)
		if w <= -math.Pi || w > math.Pi {
			return false
		}
		// Same direction: difference is a multiple of 2π.
		k := (a - w) / (2 * math.Pi)
		return math.Abs(k-math.Round(k)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, 0.3); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("AngleDiff = %v", got)
	}
	// Crossing the wrap point.
	if got := AngleDiff(math.Pi-0.1, -math.Pi+0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("AngleDiff across wrap = %v, want 0.2", got)
	}
}

func TestLatLonString(t *testing.T) {
	if cville.String() == "" {
		t.Error("empty String")
	}
}

func TestPolylineBasics(t *testing.T) {
	pl, err := NewPolyline([]ENU{{0, 0}, {100, 0}, {100, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl.Length()-150) > 1e-12 {
		t.Errorf("Length = %v, want 150", pl.Length())
	}
	if got := pl.At(50); got.E != 50 || got.N != 0 {
		t.Errorf("At(50) = %+v", got)
	}
	if got := pl.At(125); got.E != 100 || got.N != 25 {
		t.Errorf("At(125) = %+v", got)
	}
	// Clamping.
	if got := pl.At(-5); got != (ENU{0, 0}) {
		t.Errorf("At(-5) = %+v", got)
	}
	if got := pl.At(1e9); got != (ENU{100, 50}) {
		t.Errorf("At(big) = %+v", got)
	}
	if got := pl.DirectionAt(10); math.Abs(got) > 1e-12 {
		t.Errorf("DirectionAt(10) = %v, want 0 (east)", got)
	}
	if got := pl.DirectionAt(120); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("DirectionAt(120) = %v, want pi/2 (north)", got)
	}
}

func TestPolylineErrors(t *testing.T) {
	if _, err := NewPolyline([]ENU{{0, 0}}); err == nil {
		t.Error("single point should error")
	}
	if _, err := NewPolyline([]ENU{{0, 0}, {0, 0}}); err == nil {
		t.Error("duplicate point should error")
	}
}

func TestPolylinePointsCopy(t *testing.T) {
	src := []ENU{{0, 0}, {1, 0}}
	pl, _ := NewPolyline(src)
	pts := pl.Points()
	pts[0].E = 99
	src[1].E = 99
	if pl.At(0).E != 0 || pl.At(1).E != 1 {
		t.Error("polyline aliases caller slices")
	}
}

func TestPolylineResample(t *testing.T) {
	pl, _ := NewPolyline([]ENU{{0, 0}, {10, 0}})
	pts, err := pl.Resample(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("Resample len = %d, want 5: %+v", len(pts), pts)
	}
	if pts[4].E != 10 {
		t.Errorf("last point = %+v", pts[4])
	}
	if _, err := pl.Resample(0); err == nil {
		t.Error("zero spacing should error")
	}
}

func TestPolylineCurvature(t *testing.T) {
	// Approximate a circle of radius 50 m; curvature should be ~1/50.
	const r = 50.0
	var pts []ENU
	for i := 0; i <= 90; i++ {
		a := float64(i) * math.Pi / 180
		pts = append(pts, ENU{E: r * math.Cos(a), N: r * math.Sin(a)})
	}
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	k := pl.CurvatureAt(pl.Length()/2, 10)
	if math.Abs(k-1/r) > 0.002 {
		t.Errorf("curvature = %v, want %v", k, 1/r)
	}
	// Straight line has zero curvature.
	line, _ := NewPolyline([]ENU{{0, 0}, {100, 0}})
	if got := line.CurvatureAt(50, 5); got != 0 {
		t.Errorf("line curvature = %v", got)
	}
	if got := line.CurvatureAt(50, -1); got != 0 {
		t.Errorf("negative window curvature = %v", got)
	}
}

// Property: At(s) advances monotonically in arc length along the line.
func TestPolylineArcLengthProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		pts := make([]ENU, n)
		for i := 1; i < n; i++ {
			pts[i] = ENU{
				E: pts[i-1].E + 1 + r.Float64()*20,
				N: pts[i-1].N + r.NormFloat64()*5,
			}
		}
		pl, err := NewPolyline(pts)
		if err != nil {
			return false
		}
		// Distance travelled between consecutive sample points should be
		// close to the arc-length step (equal for straight segments, less
		// than or equal around corners).
		step := pl.Length() / 50
		prev := pl.At(0)
		for i := 1; i <= 50; i++ {
			cur := pl.At(float64(i) * step)
			if dist(prev, cur) > step+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPolylineAt(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	pts := make([]ENU, 1000)
	for i := 1; i < len(pts); i++ {
		pts[i] = ENU{E: pts[i-1].E + 1 + r.Float64()*10, N: r.NormFloat64() * 3}
	}
	pl, err := NewPolyline(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.At(float64(i%5000) / 5000 * pl.Length())
	}
}
