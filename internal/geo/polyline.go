package geo

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Polyline is a planar path in a local ENU frame with cumulative arc length,
// used to represent road center lines. Altitude is handled by road profiles,
// not here.
type Polyline struct {
	pts []ENU
	cum []float64 // cumulative arc length, cum[0] = 0

	// Lazily built spatial index for ClosestS queries; see Index.
	indexOnce sync.Once
	index     *IndexedPolyline
}

// NewPolyline builds a polyline from at least two points. Consecutive
// duplicate points are rejected because they leave the direction undefined.
func NewPolyline(pts []ENU) (*Polyline, error) {
	if len(pts) < 2 {
		return nil, errors.New("geo: polyline needs at least two points")
	}
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		d := dist(pts[i-1], pts[i])
		if d == 0 {
			return nil, fmt.Errorf("geo: duplicate polyline point at index %d", i)
		}
		cum[i] = cum[i-1] + d
	}
	cp := make([]ENU, len(pts))
	copy(cp, pts)
	return &Polyline{pts: cp, cum: cum}, nil
}

func dist(a, b ENU) float64 {
	return math.Hypot(b.E-a.E, b.N-a.N)
}

// Length returns the total arc length in meters.
func (p *Polyline) Length() float64 { return p.cum[len(p.cum)-1] }

// Points returns a copy of the vertex list.
func (p *Polyline) Points() []ENU {
	out := make([]ENU, len(p.pts))
	copy(out, p.pts)
	return out
}

// At returns the position at arc length s, clamped to [0, Length].
func (p *Polyline) At(s float64) ENU {
	i, t := p.locate(s)
	a, b := p.pts[i], p.pts[i+1]
	return ENU{E: a.E + (b.E-a.E)*t, N: a.N + (b.N-a.N)*t}
}

// DirectionAt returns the tangent heading (CCW from East) at arc length s.
func (p *Polyline) DirectionAt(s float64) float64 {
	i, _ := p.locate(s)
	a, b := p.pts[i], p.pts[i+1]
	return math.Atan2(b.N-a.N, b.E-a.E)
}

// locate returns the segment index i and interpolation fraction t in [0,1]
// such that s lies on segment (i, i+1).
func (p *Polyline) locate(s float64) (int, float64) {
	if s <= 0 {
		return 0, 0
	}
	last := len(p.pts) - 2
	if s >= p.Length() {
		return last, 1
	}
	// Binary search over cumulative lengths.
	lo, hi := 0, len(p.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	segLen := p.cum[lo+1] - p.cum[lo]
	return lo, (s - p.cum[lo]) / segLen
}

// Resample returns positions every spacing meters from 0 to Length inclusive.
func (p *Polyline) Resample(spacing float64) ([]ENU, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("geo: invalid resample spacing %v", spacing)
	}
	n := int(math.Floor(p.Length()/spacing)) + 1
	out := make([]ENU, 0, n+1)
	hint := 0 // sample positions are monotone, so the hinted locate is O(1)
	for i := 0; i < n; i++ {
		out = append(out, p.AtHint(float64(i)*spacing, &hint))
	}
	if p.Length()-float64(n-1)*spacing > spacing/2 {
		out = append(out, p.At(p.Length()))
	}
	return out, nil
}

// ClosestS returns the arc length of the point on the polyline nearest to p,
// and the distance to it. Used for map-matching GPS fixes onto a road. This
// is the exact O(segments) scan; Index().ClosestS gives the same answer
// sub-linearly.
func (p *Polyline) ClosestS(q ENU) (s, dist float64) {
	best := math.Inf(1)
	bestS := 0.0
	for i := 0; i+1 < len(p.pts); i++ {
		if cs, d := p.segClosest(i, q); d < best {
			best, bestS = d, cs
		}
	}
	return bestS, best
}

// segClosest returns the arc length and distance of the point on segment i
// nearest to q. Both the brute-force scan and the spatial index score
// segments through this one helper so their results are bit-identical.
func (p *Polyline) segClosest(i int, q ENU) (s, d float64) {
	a, b := p.pts[i], p.pts[i+1]
	abE, abN := b.E-a.E, b.N-a.N
	segLen2 := abE*abE + abN*abN
	t := ((q.E-a.E)*abE + (q.N-a.N)*abN) / segLen2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	cE, cN := a.E+t*abE, a.N+t*abN
	return p.cum[i] + t*math.Sqrt(segLen2), math.Hypot(q.E-cE, q.N-cN)
}

// AtHint is At with a monotone-query accelerator: hint carries the segment
// index of the previous hit, so sweeps along the road (odometer integration,
// heading windows) locate in O(1) instead of O(log n). Results are identical
// to At for any hint value; a nil hint degrades to plain At.
func (p *Polyline) AtHint(s float64, hint *int) ENU {
	i, t := p.locateHint(s, hint)
	a, b := p.pts[i], p.pts[i+1]
	return ENU{E: a.E + (b.E-a.E)*t, N: a.N + (b.N-a.N)*t}
}

// locateHint is locate with a cached starting segment. The located segment
// is the unique one with cum[i] <= s < cum[i+1], so checking the hinted
// segment (and walking forward a few) returns exactly what the binary
// search would.
func (p *Polyline) locateHint(s float64, hint *int) (int, float64) {
	if hint == nil {
		return p.locate(s)
	}
	if s <= 0 {
		return 0, 0
	}
	last := len(p.pts) - 2
	if s >= p.Length() {
		return last, 1
	}
	if i := *hint; i >= 0 && i <= last && p.cum[i] <= s {
		for step := 0; step < 8 && i < last && p.cum[i+1] <= s; step++ {
			i++
		}
		if p.cum[i] <= s && p.cum[i+1] > s {
			*hint = i
			return i, (s - p.cum[i]) / (p.cum[i+1] - p.cum[i])
		}
	}
	i, t := p.locate(s)
	*hint = i
	return i, t
}

// CurvatureAt estimates signed curvature (1/m) at arc length s by finite
// differencing the tangent direction over a small window. Positive curvature
// turns left (counter-clockwise).
func (p *Polyline) CurvatureAt(s, window float64) float64 {
	if window <= 0 {
		window = 1
	}
	s0 := math.Max(0, s-window/2)
	s1 := math.Min(p.Length(), s+window/2)
	if s1 <= s0 {
		return 0
	}
	d0 := p.DirectionAt(s0)
	d1 := p.DirectionAt(s1)
	return AngleDiff(d0, d1) / (s1 - s0)
}
