package geo

import (
	"math"
)

// IndexedPolyline accelerates nearest-point queries on a Polyline with a
// uniform grid over its segments. Map matching calls ClosestS for every
// GPS-valid record of every trace, and the brute-force scan is O(segments)
// per fix; the index bins segments into grid cells and searches outward
// ring by ring, visiting only the cells that can still contain a closer
// segment.
//
// The query is bit-exact with Polyline.ClosestS: candidate segments are
// scored with the same arithmetic (segClosest) and, after the ring search
// has bounded the answer, re-evaluated in ascending segment order with the
// same strict-less-than comparison, so ties resolve to the same segment the
// brute-force scan picks.
type IndexedPolyline struct {
	line       *Polyline
	minE, minN float64
	cellM      float64
	nx, ny     int
	cells      [][]int32 // cells[cy*nx+cx] = indices of segments overlapping the cell
}

// indexMinSegments is the segment count below which the grid buys nothing;
// shorter polylines fall back to the exact scan.
const indexMinSegments = 32

// indexMaxCells bounds the grid footprint; the cell size grows to fit.
const indexMaxCells = 1 << 18

// Index returns the polyline's spatial index, building it on first use.
// The index is cached on the polyline and safe for concurrent use.
func (p *Polyline) Index() *IndexedPolyline {
	p.indexOnce.Do(func() { p.index = newIndexedPolyline(p) })
	return p.index
}

func newIndexedPolyline(p *Polyline) *IndexedPolyline {
	ip := &IndexedPolyline{line: p}
	nSeg := len(p.pts) - 1
	if nSeg < indexMinSegments {
		return ip // cells == nil: ClosestS falls back to the exact scan
	}
	minE, minN := math.Inf(1), math.Inf(1)
	maxE, maxN := math.Inf(-1), math.Inf(-1)
	for _, pt := range p.pts {
		minE = math.Min(minE, pt.E)
		maxE = math.Max(maxE, pt.E)
		minN = math.Min(minN, pt.N)
		maxN = math.Max(maxN, pt.N)
	}
	// Twice the mean segment length keeps a handful of segments per cell;
	// grow the cell if that would exceed the grid budget.
	cell := 2 * p.Length() / float64(nSeg)
	if cell <= 0 {
		return ip
	}
	nx := int((maxE-minE)/cell) + 1
	ny := int((maxN-minN)/cell) + 1
	if float64(nx)*float64(ny) > indexMaxCells {
		scale := math.Sqrt(float64(nx) * float64(ny) / indexMaxCells)
		cell *= scale
		nx = int((maxE-minE)/cell) + 1
		ny = int((maxN-minN)/cell) + 1
	}
	ip.minE, ip.minN = minE, minN
	ip.cellM = cell
	ip.nx, ip.ny = nx, ny
	ip.cells = make([][]int32, nx*ny)
	for i := 0; i < nSeg; i++ {
		a, b := p.pts[i], p.pts[i+1]
		c0x, c1x := ip.cellX(math.Min(a.E, b.E)), ip.cellX(math.Max(a.E, b.E))
		c0y, c1y := ip.cellY(math.Min(a.N, b.N)), ip.cellY(math.Max(a.N, b.N))
		for cy := c0y; cy <= c1y; cy++ {
			for cx := c0x; cx <= c1x; cx++ {
				k := cy*nx + cx
				ip.cells[k] = append(ip.cells[k], int32(i))
			}
		}
	}
	return ip
}

func (ip *IndexedPolyline) cellX(e float64) int {
	return clampInt(int(math.Floor((e-ip.minE)/ip.cellM)), 0, ip.nx-1)
}

func (ip *IndexedPolyline) cellY(n float64) int {
	return clampInt(int(math.Floor((n-ip.minN)/ip.cellM)), 0, ip.ny-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Line returns the underlying polyline.
func (ip *IndexedPolyline) Line() *Polyline { return ip.line }

// ClosestS returns the arc length of the point on the polyline nearest to q
// and the distance to it, identical to Polyline.ClosestS but sub-linear in
// the segment count for queries near the line.
func (ip *IndexedPolyline) ClosestS(q ENU) (s, dist float64) {
	if ip.cells == nil {
		return ip.line.ClosestS(q)
	}
	// Ring expansion from the query's (virtual, possibly off-grid) cell.
	// After each ring the best distance so far upper-bounds the answer; a
	// ring at Chebyshev radius r cannot hold anything closer than
	// (r-1)*cellM when the query sits inside its own cell, so expansion
	// stops once that lower bound exceeds the best.
	cx := int(math.Floor((q.E - ip.minE) / ip.cellM))
	cy := int(math.Floor((q.N - ip.minN) / ip.cellM))
	maxRing := maxInt(maxInt(cx, ip.nx-1-cx), maxInt(cy, ip.ny-1-cy))
	if maxRing < 0 {
		maxRing = 0
	}
	best := math.Inf(1)
	cand := make([]int32, 0, 64)
	for r := 0; r <= maxRing; r++ {
		if !math.IsInf(best, 1) && float64(r-1)*ip.cellM > best {
			break
		}
		prev := len(cand)
		cand = ip.appendRing(cand, cx, cy, r)
		for _, si := range cand[prev:] {
			if _, d := ip.line.segClosest(int(si), q); d < best {
				best = d
			}
		}
	}
	// Exact pass: evaluate the (deduplicated) candidates in ascending
	// segment order with the brute-force comparison, so the returned arc
	// length matches the exact scan even under distance ties.
	sortInt32(cand)
	best = math.Inf(1)
	bestS := 0.0
	prev := int32(-1)
	for _, si := range cand {
		if si == prev {
			continue
		}
		prev = si
		if cs, d := ip.line.segClosest(int(si), q); d < best {
			best, bestS = d, cs
		}
	}
	return bestS, best
}

// appendRing collects the segment lists of every in-grid cell at Chebyshev
// radius r around (cx, cy).
func (ip *IndexedPolyline) appendRing(cand []int32, cx, cy, r int) []int32 {
	add := func(x, y int) []int32 {
		if x < 0 || x >= ip.nx || y < 0 || y >= ip.ny {
			return cand
		}
		return append(cand, ip.cells[y*ip.nx+x]...)
	}
	if r == 0 {
		return add(cx, cy)
	}
	for x := cx - r; x <= cx+r; x++ {
		cand = add(x, cy-r)
		cand = add(x, cy+r)
	}
	for y := cy - r + 1; y <= cy+r-1; y++ {
		cand = add(cx-r, y)
		cand = add(cx+r, y)
	}
	return cand
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sortInt32 is an insertion sort; candidate sets are tens of entries, below
// the point where sort.Slice's overhead pays off.
func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
