package sensors

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/frame"
	"roadgrade/internal/geo"
	"roadgrade/internal/vehicle"
)

// Record is one sensor sample tick. IMU-class fields update every tick; GPS
// fields are only meaningful when GPSValid is set (1 Hz, minus dropouts).
type Record struct {
	T float64 `json:"t"`
	// AccelLong is the longitudinal specific force in the aligned frame:
	// a + g·sinθ, plus noise and drift. The gravity component is what makes
	// grade observable from the velocity innovation (DESIGN.md
	// interpretation choice 1). When the phone is mounted askew
	// (Config.Mount), this holds the naive (unaligned) Y-axis reading
	// until AlignTrace rewrites it.
	AccelLong float64 `json:"accel_long"`
	// GyroYaw is the measured vehicle direction change rate ŵ_vehicle
	// (phone Z axis; see AccelLong about mounts).
	GyroYaw float64 `json:"gyro_yaw"`
	// Raw 3-axis IMU readings in the phone frame (X right, Y forward,
	// Z up when aligned).
	RawAccelX float64 `json:"raw_accel_x"`
	RawAccelY float64 `json:"raw_accel_y"`
	RawAccelZ float64 `json:"raw_accel_z"`
	RawGyroX  float64 `json:"raw_gyro_x"`
	RawGyroY  float64 `json:"raw_gyro_y"`
	RawGyroZ  float64 `json:"raw_gyro_z"`
	// Speedometer is the phone-derived speed (m/s).
	Speedometer float64 `json:"speedometer"`
	// CANSpeed is the CAN-bus wheel speed (m/s), quantized.
	CANSpeed float64 `json:"can_speed"`
	// CANTorque is the engine/driveline torque (N·m) read over OBD, the
	// quantity the paper's Eq. (3) consumes directly ([21]).
	CANTorque float64 `json:"can_torque"`
	// BaroAlt is the barometric altitude (m).
	BaroAlt float64 `json:"baro_alt"`
	// GPS fix.
	GPSValid bool    `json:"gps_valid"`
	GPSE     float64 `json:"gps_e"`
	GPSN     float64 `json:"gps_n"`
	GPSAlt   float64 `json:"gps_alt"`
	GPSSpeed float64 `json:"gps_speed"`
}

// Trace is a sampled sensor log aligned with the ground truth that produced
// it. Truth is retained for evaluation only; estimators must not read it.
type Trace struct {
	DT      float64
	Records []Record
	Truth   []vehicle.State
}

// Duration returns the trace length in seconds.
func (tr *Trace) Duration() float64 {
	if len(tr.Records) == 0 {
		return 0
	}
	return tr.Records[len(tr.Records)-1].T
}

// Config holds the sensor error budget. Defaults approximate a Samsung
// Galaxy S5-class phone plus an OBD-II CAN dongle.
type Config struct {
	// GPSPeriodS is the GPS fix interval (default 1 s, per §III-A).
	GPSPeriodS float64
	// Accelerometer noise (m/s²).
	Accel NoiseModel
	// Gyroscope noise (rad/s).
	Gyro NoiseModel
	// Barometer altitude noise (m). The paper calls phone barometers
	// "notoriously poor (several meters)".
	Baro NoiseModel
	// Speedometer noise (m/s).
	Speedo NoiseModel
	// CAN wheel-speed noise (m/s) and quantization step.
	CAN         NoiseModel
	CANQuantize float64
	// CANTorque is the OBD torque reading noise (N·m).
	CANTorque NoiseModel
	// GPS errors.
	GPSPosSigmaM    float64
	GPSAltSigmaM    float64
	GPSSpeedSigmaMS float64
	// GPSDropoutProb is the chance, per fix, of entering a dropout.
	GPSDropoutProb float64
	// GPSDropoutMeanS is the mean dropout duration (exponential).
	GPSDropoutMeanS float64
	// Mount is the phone's orientation in the vehicle (§III-A). The zero
	// value is a perfectly aligned phone; non-zero mounts corrupt the
	// naive AccelLong/GyroYaw channels until AlignTrace recovers the
	// orientation from the raw 3-axis data.
	Mount frame.Mount
}

// DefaultConfig returns the nominal smartphone error budget.
func DefaultConfig() Config {
	return Config{
		GPSPeriodS:      1.0,
		Accel:           NoiseModel{Sigma: 0.08, DriftRate: 0.001, InitialBiasSigma: 0.015},
		Gyro:            NoiseModel{Sigma: 0.006, DriftRate: 0.0004, InitialBiasSigma: 0.002},
		Baro:            NoiseModel{Sigma: 2.2, DriftRate: 0.12, InitialBiasSigma: 1.5},
		Speedo:          NoiseModel{Sigma: 0.25, DriftRate: 0.002, InitialBiasSigma: 0.05},
		CAN:             NoiseModel{Sigma: 0.06, DriftRate: 0, InitialBiasSigma: 0},
		CANQuantize:     0.1 / 3.6, // 0.1 km/h
		CANTorque:       NoiseModel{Sigma: 25, DriftRate: 0.5, InitialBiasSigma: 10},
		GPSPosSigmaM:    3.0,
		GPSAltSigmaM:    6.0,
		GPSSpeedSigmaMS: 0.2,
		GPSDropoutProb:  0.008,
		GPSDropoutMeanS: 18,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.GPSPeriodS <= 0 {
		return fmt.Errorf("sensors: GPS period %v must be positive", c.GPSPeriodS)
	}
	if c.GPSDropoutProb < 0 || c.GPSDropoutProb > 1 {
		return fmt.Errorf("sensors: dropout probability %v out of [0,1]", c.GPSDropoutProb)
	}
	return nil
}

// Sample runs the sensor suite over a simulated trip, producing one Record
// per simulation step.
func Sample(trip *vehicle.Trip, cfg Config, rng *rand.Rand) (*Trace, error) {
	if trip == nil || len(trip.States) == 0 {
		return nil, errors.New("sensors: empty trip")
	}
	if rng == nil {
		return nil, errors.New("sensors: rng is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dt := trip.DT

	var accelAxes, gyroAxes [3]*noiseState
	for i := range accelAxes {
		accelAxes[i] = newNoiseState(cfg.Accel, rng)
		gyroAxes[i] = newNoiseState(cfg.Gyro, rng)
	}
	baro := newNoiseState(cfg.Baro, rng)
	speedo := newNoiseState(cfg.Speedo, rng)
	can := newNoiseState(cfg.CAN, rng)
	canTorque := newNoiseState(cfg.CANTorque, rng)

	trace := &Trace{DT: dt, Records: make([]Record, 0, len(trip.States)), Truth: trip.States}
	nextGPS := 0.0
	dropoutUntil := -1.0
	for _, st := range trip.States {
		// Vehicle-frame specific force (X right, Y forward, Z up):
		// lateral centripetal force, longitudinal kinematic + gravity
		// component, and the vertical gravity remainder.
		fVehicle := frame.Vec3{
			X: -st.Speed * st.YawRate,
			Y: st.Accel + vehicle.Gravity*math.Sin(st.Grade),
			Z: vehicle.Gravity * math.Cos(st.Grade),
		}
		wVehicle := frame.Vec3{Z: st.YawRate}
		fPhone := cfg.Mount.PhoneReading(fVehicle)
		wPhone := cfg.Mount.PhoneReading(wVehicle)
		rec := Record{
			T:           st.T,
			RawAccelX:   accelAxes[0].corrupt(fPhone.X, dt, rng),
			RawAccelY:   accelAxes[1].corrupt(fPhone.Y, dt, rng),
			RawAccelZ:   accelAxes[2].corrupt(fPhone.Z, dt, rng),
			RawGyroX:    gyroAxes[0].corrupt(wPhone.X, dt, rng),
			RawGyroY:    gyroAxes[1].corrupt(wPhone.Y, dt, rng),
			RawGyroZ:    gyroAxes[2].corrupt(wPhone.Z, dt, rng),
			Speedometer: speedo.corrupt(st.Speed, dt, rng),
			CANSpeed:    Quantize(can.corrupt(st.Speed, dt, rng), cfg.CANQuantize),
			CANTorque:   canTorque.corrupt(st.Torque, dt, rng),
			BaroAlt:     baro.corrupt(st.Alt, dt, rng),
		}
		// The naive aligned channels assume the phone sits straight; a
		// misaligned mount leaves them wrong until AlignTrace runs.
		rec.AccelLong = rec.RawAccelY
		rec.GyroYaw = rec.RawGyroZ
		if st.T+1e-9 >= nextGPS {
			nextGPS += cfg.GPSPeriodS
			inDropout := st.T < dropoutUntil
			if !inDropout && rng.Float64() < cfg.GPSDropoutProb {
				dropoutUntil = st.T + rng.ExpFloat64()*cfg.GPSDropoutMeanS
				inDropout = true
			}
			if !inDropout {
				rec.GPSValid = true
				rec.GPSE = st.Pos.E + rng.NormFloat64()*cfg.GPSPosSigmaM
				rec.GPSN = st.Pos.N + rng.NormFloat64()*cfg.GPSPosSigmaM
				rec.GPSAlt = st.Alt + rng.NormFloat64()*cfg.GPSAltSigmaM
				gpsSpeed := st.Speed + rng.NormFloat64()*cfg.GPSSpeedSigmaMS
				rec.GPSSpeed = math.Max(0, gpsSpeed)
			}
		}
		trace.Records = append(trace.Records, rec)
	}
	return trace, nil
}

// VelocitySource identifies one of the four speed measurements the paper
// fuses (§III-C3): GPS, phone speedometer, phone accelerometer-derived
// velocity, and CAN-bus wheel speed.
type VelocitySource int

// Velocity sources, matching the paper's enumeration.
const (
	SourceGPS VelocitySource = iota + 1
	SourceSpeedometer
	SourceAccelerometer
	SourceCANBus
)

// String names the source.
func (s VelocitySource) String() string {
	switch s {
	case SourceGPS:
		return "gps"
	case SourceSpeedometer:
		return "speedometer"
	case SourceAccelerometer:
		return "accelerometer"
	case SourceCANBus:
		return "can-bus"
	default:
		return fmt.Sprintf("VelocitySource(%d)", int(s))
	}
}

// AllSources lists the four velocity sources in paper order.
func AllSources() []VelocitySource {
	return []VelocitySource{SourceGPS, SourceSpeedometer, SourceAccelerometer, SourceCANBus}
}

// VelSample is one velocity measurement; Valid is false on ticks where the
// source has no reading (e.g. GPS between fixes or in a dropout).
type VelSample struct {
	T     float64
	V     float64
	Valid bool
}

// Velocity extracts the measurement series of one source from the trace.
//
// The accelerometer source dead-reckons speed by integrating the specific
// force with a barometer-based gravity compensation, re-anchoring to GPS
// fixes with a complementary filter — the standard phone practice, and a
// genuinely independent (drifting) source between fixes.
func (tr *Trace) Velocity(src VelocitySource) ([]VelSample, error) {
	switch src {
	case SourceGPS:
		out := make([]VelSample, len(tr.Records))
		for i, r := range tr.Records {
			out[i] = VelSample{T: r.T, V: r.GPSSpeed, Valid: r.GPSValid}
		}
		return out, nil
	case SourceSpeedometer:
		out := make([]VelSample, len(tr.Records))
		for i, r := range tr.Records {
			out[i] = VelSample{T: r.T, V: r.Speedometer, Valid: true}
		}
		return out, nil
	case SourceCANBus:
		out := make([]VelSample, len(tr.Records))
		for i, r := range tr.Records {
			out[i] = VelSample{T: r.T, V: r.CANSpeed, Valid: true}
		}
		return out, nil
	case SourceAccelerometer:
		return tr.accelVelocity(), nil
	default:
		return nil, fmt.Errorf("sensors: unknown velocity source %d", int(src))
	}
}

// accelVelocity dead-reckons velocity from the accelerometer.
func (tr *Trace) accelVelocity() []VelSample {
	out := make([]VelSample, len(tr.Records))
	if len(tr.Records) == 0 {
		return out
	}
	const (
		anchorGain = 0.6 // complementary-filter pull toward GPS fixes
		// gradeWinS is the barometer gravity-compensation window. It must
		// be long: with meters of barometer noise, a short window injects
		// huge sinθ̂ noise into the dead reckoning.
		gradeWinS = 8.0
	)
	dt := tr.DT
	win := int(gradeWinS / dt)
	if win < 1 {
		win = 1
	}
	// Initialize from the first record's speedometer (a phone app would
	// use any available speed hint at start).
	v := tr.Records[0].Speedometer
	if !finite(v) {
		v = 0
	}
	for i, r := range tr.Records {
		// Gravity compensation: vertical speed from barometer over the
		// window divided by travelled distance gives sinθ̂. Skipped when a
		// sensor fault leaves the window non-finite.
		var gravComp float64
		if i >= win && finite(r.BaroAlt) && finite(tr.Records[i-win].BaroAlt) && finite(r.Speedometer) {
			dz := r.BaroAlt - tr.Records[i-win].BaroAlt
			// Scale by the odometer distance, not the dead-reckoned
			// speed: dividing by the estimate itself creates a positive
			// feedback loop once the estimate drifts (e.g. in a GPS
			// dropout).
			ds := math.Max(1, r.Speedometer*gradeWinS)
			sinTheta := clampF(dz/ds, -0.25, 0.25)
			gravComp = vehicle.Gravity * sinTheta
		}
		// NaN-burst bridging: coast on the previous estimate through ticks
		// whose accelerometer reading is non-finite.
		if finite(r.AccelLong) {
			v += (r.AccelLong - gravComp) * dt
		}
		if r.GPSValid && finite(r.GPSSpeed) {
			v += anchorGain * (r.GPSSpeed - v)
		}
		if v < 0 {
			v = 0
		}
		if !finite(v) {
			// Should be unreachable given the guards above, but a stuck
			// dead-reckoner must never emit NaN: re-anchor to any finite
			// speed hint.
			switch {
			case finite(r.Speedometer):
				v = r.Speedometer
			case r.GPSValid && finite(r.GPSSpeed):
				v = r.GPSSpeed
			default:
				v = 0
			}
		}
		out[i] = VelSample{T: r.T, V: v, Valid: true}
	}
	return out
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// GPSPositions returns the valid GPS fixes as planar points with their times.
func (tr *Trace) GPSPositions() (ts []float64, pts []geo.ENU) {
	for _, r := range tr.Records {
		if r.GPSValid {
			ts = append(ts, r.T)
			pts = append(pts, geo.ENU{E: r.GPSE, N: r.GPSN})
		}
	}
	return ts, pts
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
