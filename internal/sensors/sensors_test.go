package sensors

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/road"
	"roadgrade/internal/vehicle"
)

func testTrip(t testing.TB, lengthM, gradeRad float64, seed int64) *vehicle.Trip {
	t.Helper()
	r, err := road.StraightRoad("sensors-test", lengthM, gradeRad, 1)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:   r,
		Driver: vehicle.DefaultDriver(12),
		Rng:    rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return trip
}

func TestQuantize(t *testing.T) {
	tests := []struct {
		v, step, want float64
	}{
		{1.234, 0.1, 1.2},
		{1.26, 0.1, 1.3},
		{-1.26, 0.1, -1.3},
		{5, 0, 5},
		{5, -1, 5},
	}
	for _, tt := range tests {
		if got := Quantize(tt.v, tt.step); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantize(%v, %v) = %v, want %v", tt.v, tt.step, got, tt.want)
		}
	}
}

func TestNoiseStateWhiteOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := newNoiseState(NoiseModel{Sigma: 0.5}, rng)
	var sum, sumSq float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := n.corrupt(10, 0.05, rng)
		sum += v - 10
		sumSq += (v - 10) * (v - 10)
	}
	mean := sum / trials
	sd := math.Sqrt(sumSq / trials)
	if math.Abs(mean) > 0.02 {
		t.Errorf("white-noise mean = %v, want ~0", mean)
	}
	if math.Abs(sd-0.5) > 0.02 {
		t.Errorf("white-noise sd = %v, want ~0.5", sd)
	}
}

func TestNoiseStateDrifts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := newNoiseState(NoiseModel{DriftRate: 0.1}, rng)
	// After many steps the bias random walk should have wandered.
	var last float64
	for i := 0; i < 100000; i++ {
		last = n.corrupt(0, 0.05, rng)
	}
	// Walk sd after T=5000 s is 0.1*sqrt(5000) ≈ 7; being exactly 0 is
	// essentially impossible.
	if last == 0 {
		t.Error("drift noise never moved")
	}
	if math.Abs(n.bias) < 1e-6 {
		t.Error("bias did not accumulate")
	}
}

func TestSampleBasics(t *testing.T) {
	trip := testTrip(t, 600, road.Deg(3), 3)
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != len(trip.States) {
		t.Fatalf("records %d != states %d", len(tr.Records), len(trip.States))
	}
	if tr.Duration() <= 0 {
		t.Error("duration not positive")
	}
	// Accelerometer includes the gravity component: on a 3° grade at
	// near-constant speed, the mean specific force should approach
	// g·sin(3°) ≈ 0.51, clearly distinguishable from zero.
	var accSum float64
	n := 0
	for i := len(tr.Records) / 2; i < len(tr.Records); i++ {
		accSum += tr.Records[i].AccelLong
		n++
	}
	mean := accSum / float64(n)
	want := vehicle.Gravity * math.Sin(road.Deg(3))
	if math.Abs(mean-want) > 0.2 {
		t.Errorf("mean specific force = %v, want ~%v", mean, want)
	}
	// GPS fixes are about one per second.
	var fixes int
	for _, r := range tr.Records {
		if r.GPSValid {
			fixes++
		}
	}
	perSec := float64(fixes) / tr.Duration()
	if perSec < 0.5 || perSec > 1.3 {
		t.Errorf("GPS fix rate = %v/s, want ~1", perSec)
	}
}

func TestSampleErrors(t *testing.T) {
	trip := testTrip(t, 200, 0, 5)
	if _, err := Sample(nil, DefaultConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil trip should error")
	}
	if _, err := Sample(trip, DefaultConfig(), nil); err == nil {
		t.Error("nil rng should error")
	}
	bad := DefaultConfig()
	bad.GPSPeriodS = 0
	if _, err := Sample(trip, bad, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad config should error")
	}
	bad2 := DefaultConfig()
	bad2.GPSDropoutProb = 2
	if err := bad2.Validate(); err == nil {
		t.Error("dropout prob > 1 should fail validation")
	}
}

func TestSampleDeterministic(t *testing.T) {
	trip := testTrip(t, 300, road.Deg(1), 6)
	a, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGPSDropouts(t *testing.T) {
	trip := testTrip(t, 2000, 0, 7)
	cfg := DefaultConfig()
	cfg.GPSDropoutProb = 0.5
	cfg.GPSDropoutMeanS = 10
	tr, err := Sample(trip, cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	var valid, fixTicks int
	prevGPS := -10.0
	for _, r := range tr.Records {
		if r.T-prevGPS >= cfg.GPSPeriodS-1e-9 {
			fixTicks++
			prevGPS = r.T
			if r.GPSValid {
				valid++
			}
		}
	}
	if valid == fixTicks {
		t.Error("no dropouts despite 50% per-fix probability")
	}
	if valid == 0 {
		t.Error("all fixes dropped; dropout model too aggressive")
	}
}

func TestVelocitySources(t *testing.T) {
	trip := testTrip(t, 1000, road.Deg(2), 10)
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range AllSources() {
		t.Run(src.String(), func(t *testing.T) {
			vs, err := tr.Velocity(src)
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) != len(tr.Records) {
				t.Fatalf("len = %d, want %d", len(vs), len(tr.Records))
			}
			// Error vs truth should be bounded for every source.
			var worst float64
			var validCount int
			for i, v := range vs {
				if !v.Valid {
					continue
				}
				validCount++
				if e := math.Abs(v.V - tr.Truth[i].Speed); e > worst {
					worst = e
				}
			}
			if validCount == 0 {
				t.Fatal("no valid samples")
			}
			// The dead-reckoned accelerometer source may drift for the
			// length of a GPS dropout; direct sources stay tight.
			bound := 3.0
			if src == SourceAccelerometer {
				bound = 5.0
			}
			if worst > bound {
				t.Errorf("worst speed error %v m/s, too large", worst)
			}
		})
	}
	if _, err := tr.Velocity(VelocitySource(99)); err == nil {
		t.Error("unknown source should error")
	}
}

func TestAccelVelocityTracksOnGrade(t *testing.T) {
	// Dead-reckoned accel velocity must not run away on a sustained grade
	// (the gravity compensation plus GPS anchoring contain the drift).
	trip := testTrip(t, 1500, road.Deg(4), 12)
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := tr.Velocity(SourceAccelerometer)
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for i, v := range vs {
		sumErr += math.Abs(v.V - tr.Truth[i].Speed)
	}
	meanErr := sumErr / float64(len(vs))
	if meanErr > 1.0 {
		t.Errorf("mean accel-velocity error %v m/s on grade", meanErr)
	}
}

func TestSourceString(t *testing.T) {
	names := map[VelocitySource]string{
		SourceGPS:           "gps",
		SourceSpeedometer:   "speedometer",
		SourceAccelerometer: "accelerometer",
		SourceCANBus:        "can-bus",
	}
	for src, want := range names {
		if got := src.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(src), got, want)
		}
	}
	if VelocitySource(42).String() == "" {
		t.Error("unknown source should render")
	}
	if len(AllSources()) != 4 {
		t.Error("AllSources should list 4 sources")
	}
}

func TestGPSPositions(t *testing.T) {
	trip := testTrip(t, 500, 0, 14)
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	ts, pts := tr.GPSPositions()
	if len(ts) != len(pts) || len(ts) == 0 {
		t.Fatalf("GPSPositions: %d times, %d points", len(ts), len(pts))
	}
	// Positions should be near the road (within ~5 sigma of GPS noise).
	for i, p := range pts {
		var closest float64 = math.Inf(1)
		for _, st := range tr.Truth {
			d := math.Hypot(st.Pos.E-p.E, st.Pos.N-p.N)
			if d < closest {
				closest = d
			}
		}
		if closest > 15 {
			t.Errorf("fix %d is %v m off the path", i, closest)
		}
	}
}

func TestCANSpeedQuantized(t *testing.T) {
	trip := testTrip(t, 300, 0, 16)
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	step := DefaultConfig().CANQuantize
	for _, r := range tr.Records[:100] {
		ratio := r.CANSpeed / step
		if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
			t.Fatalf("CAN speed %v not quantized to %v", r.CANSpeed, step)
		}
	}
}

func BenchmarkSample(b *testing.B) {
	r, err := road.StraightRoad("bench", 2000, road.Deg(2), 1)
	if err != nil {
		b.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:   r,
		Driver: vehicle.DefaultDriver(14),
		Rng:    rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
