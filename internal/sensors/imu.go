package sensors

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/frame"
)

// AlignResult reports what AlignTrace recovered.
type AlignResult struct {
	// Mount is the estimated phone mounting orientation.
	Mount frame.Mount
	// StationaryStart/End and AccelStart/End are the windows (seconds)
	// used for gravity and forward-acceleration estimation.
	StationaryStart, StationaryEnd float64
	AccelStart, AccelEnd           float64
}

// AlignTrace implements the §III-A / [14] coordinate alignment on a raw
// trace: it finds a stationary window (gravity only) and a launch window
// (gravity + forward force) in the phone-frame IMU data, estimates the
// mounting orientation, and rewrites the trace's aligned channels
// (AccelLong, GyroYaw) from the raw 3-axis measurements.
//
// The trace must begin with a stop-and-launch phase (simulate with
// vehicle.TripConfig.WarmupStopS); real drives have one at every trip start.
func AlignTrace(tr *Trace) (AlignResult, error) {
	if tr == nil || len(tr.Records) == 0 {
		return AlignResult{}, errors.New("sensors: empty trace")
	}
	dt := tr.DT
	const (
		stopSpeedMS = 0.3
		minStopS    = 1.0
		minLaunchS  = 1.5
	)

	// Stationary window: scan a smoothed speed signal (raw speedometer
	// noise is comparable to the threshold), then trim the tail so launch
	// samples cannot contaminate the gravity average.
	smoothWin := int(0.5 / dt)
	if smoothWin < 1 {
		smoothWin = 1
	}
	smoothSpeed := func(i int) float64 {
		lo := i - smoothWin
		if lo < 0 {
			lo = 0
		}
		var sum float64
		for j := lo; j <= i; j++ {
			sum += tr.Records[j].Speedometer
		}
		return sum / float64(i-lo+1)
	}
	// The smoothed speed needs a full window before it is trustworthy, so
	// the scan starts one window in; anything shorter than minStopS is
	// rejected below anyway.
	stopEnd := smoothWin
	for stopEnd < len(tr.Records) && smoothSpeed(stopEnd) < stopSpeedMS {
		stopEnd++
	}
	stopEnd -= smoothWin // trim the smoothing lag plus launch boundary
	if float64(stopEnd)*dt < minStopS {
		return AlignResult{}, fmt.Errorf("sensors: no stationary window at trace start (%.1f s < %.1f s)",
			math.Max(0, float64(stopEnd))*dt, minStopS)
	}

	// Launch window: once the vehicle is unambiguously rolling (smoothed
	// speed past 0.8 m/s) the drivetrain is delivering strong forward
	// acceleration; average over the following stretch.
	const rollingMS = 0.8
	launchStart := -1
	for i := stopEnd; i < len(tr.Records); i++ {
		if smoothSpeed(i) >= rollingMS {
			launchStart = i
			break
		}
		if float64(i-stopEnd)*dt > 60 {
			break // no launch found near the stop
		}
	}
	if launchStart < 0 {
		return AlignResult{}, errors.New("sensors: no launch window after the stop")
	}
	launchEnd := launchStart + int(minLaunchS/dt)
	if launchEnd > len(tr.Records) {
		launchEnd = len(tr.Records)
	}

	stationary := make([]frame.Vec3, 0, stopEnd)
	for i := 0; i < stopEnd; i++ {
		stationary = append(stationary, rawAccel(tr.Records[i]))
	}
	accelerating := make([]frame.Vec3, 0, launchEnd-launchStart)
	for i := launchStart; i < launchEnd; i++ {
		accelerating = append(accelerating, rawAccel(tr.Records[i]))
	}
	mount, err := frame.EstimateMount(stationary, accelerating)
	if err != nil {
		return AlignResult{}, fmt.Errorf("sensors: estimating mount: %w", err)
	}

	// Realign the whole trace.
	for i := range tr.Records {
		rec := &tr.Records[i]
		acc := mount.VehicleReading(rawAccel(*rec))
		gyr := mount.VehicleReading(rawGyro(*rec))
		rec.AccelLong = acc.Y
		rec.GyroYaw = gyr.Z
	}
	return AlignResult{
		Mount:           mount,
		StationaryStart: 0,
		StationaryEnd:   float64(stopEnd) * dt,
		AccelStart:      float64(launchStart) * dt,
		AccelEnd:        float64(launchEnd) * dt,
	}, nil
}

func rawAccel(r Record) frame.Vec3 {
	return frame.Vec3{X: r.RawAccelX, Y: r.RawAccelY, Z: r.RawAccelZ}
}

func rawGyro(r Record) frame.Vec3 {
	return frame.Vec3{X: r.RawGyroX, Y: r.RawGyroY, Z: r.RawGyroZ}
}

// MisalignmentError quantifies how far a mount estimate is from the truth,
// as the worst per-axis angle difference in radians.
func MisalignmentError(got, want frame.Mount) float64 {
	return math.Max(math.Abs(angleDiff(got.Yaw, want.Yaw)),
		math.Max(math.Abs(angleDiff(got.Pitch, want.Pitch)),
			math.Abs(angleDiff(got.Roll, want.Roll))))
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	} else if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
