// Package sensors models the smartphone (and CAN-bus) sensors the system
// reads: accelerometer, gyroscope, barometer, GPS, speedometer and CAN wheel
// speed. Every sensor carries the two noise classes the paper names —
// measuring noise (white, per-sample) and drift noise (a slowly wandering
// bias) — plus sensor-specific artifacts (GPS dropouts, CAN quantization).
package sensors

import (
	"math"
	"math/rand"
)

// NoiseModel is additive sensor corruption: white measuring noise with
// standard deviation Sigma plus a bias random walk ("drift noise") whose
// increments have standard deviation DriftRate·√dt per step.
type NoiseModel struct {
	// Sigma is the white measuring-noise standard deviation.
	Sigma float64
	// DriftRate is the bias random-walk intensity (units/√s).
	DriftRate float64
	// InitialBiasSigma draws the starting bias (calibration error).
	InitialBiasSigma float64
}

// noiseState carries the evolving bias of one sensor instance.
type noiseState struct {
	model NoiseModel
	bias  float64
}

func newNoiseState(m NoiseModel, rng *rand.Rand) *noiseState {
	return &noiseState{model: m, bias: rng.NormFloat64() * m.InitialBiasSigma}
}

// corrupt advances the drift by dt and returns truth + bias + white noise.
func (n *noiseState) corrupt(truth, dt float64, rng *rand.Rand) float64 {
	if n.model.DriftRate > 0 {
		n.bias += rng.NormFloat64() * n.model.DriftRate * math.Sqrt(dt)
	}
	return truth + n.bias + rng.NormFloat64()*n.model.Sigma
}

// Quantize rounds v to the nearest multiple of step; step <= 0 is identity.
// CAN-bus wheel speed is reported in 0.1 km/h increments.
func Quantize(v, step float64) float64 {
	if step <= 0 {
		return v
	}
	return math.Round(v/step) * step
}
