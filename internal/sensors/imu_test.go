package sensors

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/frame"
	"roadgrade/internal/road"
	"roadgrade/internal/vehicle"
)

// warmupTrace simulates a trip with a stationary warmup and the given phone
// mount. The road is level at the start: like the real [14] procedure, mount
// calibration on a slope folds the slope into the pitch estimate (see
// TestAlignTraceSlopeConfound).
func warmupTrace(t testing.TB, mount frame.Mount, seed int64) *Trace {
	t.Helper()
	r, err := road.StraightRoad("imu-test", 800, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:        r,
		Driver:      vehicle.DefaultDriver(13),
		Rng:         rand.New(rand.NewSource(seed)),
		WarmupStopS: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mount = mount
	tr, err := Sample(trip, cfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRawAxesAlignedMount(t *testing.T) {
	tr := warmupTrace(t, frame.Mount{}, 1)
	// With an aligned phone, the naive channels are the raw Y/Z axes.
	for i, rec := range tr.Records[:100] {
		if rec.AccelLong != rec.RawAccelY || rec.GyroYaw != rec.RawGyroZ {
			t.Fatalf("record %d: naive channels diverge from raw axes", i)
		}
	}
	// During the warmup stop, Z-axis accel reads gravity.
	var zSum float64
	var n int
	for _, rec := range tr.Records {
		if rec.T < 3 {
			zSum += rec.RawAccelZ
			n++
		}
	}
	if got := zSum / float64(n); math.Abs(got-vehicle.Gravity) > 0.1 {
		t.Errorf("stationary Z accel = %v, want ~g", got)
	}
}

func TestMisalignedMountCorruptsNaiveChannels(t *testing.T) {
	mount := frame.Mount{Yaw: 0.5, Pitch: 0.15, Roll: -0.1}
	tr := warmupTrace(t, mount, 2)
	// A 0.15 rad pitch leaks a g·sin(pitch) ≈ 1.47 m/s² gravity bias into
	// the naive longitudinal channel while parked.
	var sum float64
	var n int
	for _, rec := range tr.Records {
		if rec.T < 3 {
			sum += rec.AccelLong
			n++
		}
	}
	bias := sum / float64(n)
	if math.Abs(bias) < 0.5 {
		t.Errorf("misaligned stationary AccelLong bias = %v, expected a large gravity leak", bias)
	}
}

func TestAlignTraceRecoversMount(t *testing.T) {
	tests := []frame.Mount{
		{},
		{Yaw: 0.5},
		{Pitch: 0.2, Roll: -0.12},
		{Yaw: -1.2, Pitch: 0.1, Roll: 0.15},
	}
	for i, mount := range tests {
		tr := warmupTrace(t, mount, int64(10+i))
		res, err := AlignTrace(tr)
		if err != nil {
			t.Fatalf("mount %+v: %v", mount, err)
		}
		if e := MisalignmentError(res.Mount, mount); e > 0.05 {
			t.Errorf("mount %+v: recovered %+v (err %v rad)", mount, res.Mount, e)
		}
		if res.StationaryEnd <= res.StationaryStart {
			t.Error("stationary window empty")
		}
		if res.AccelEnd <= res.AccelStart {
			t.Error("launch window empty")
		}
		// After realignment the stationary AccelLong is near zero.
		var sum float64
		var n int
		for _, rec := range tr.Records {
			if rec.T < 3 {
				sum += rec.AccelLong
				n++
			}
		}
		if bias := sum / float64(n); math.Abs(bias) > 0.15 {
			t.Errorf("mount %+v: post-alignment stationary bias %v", mount, bias)
		}
	}
}

func TestAlignTraceErrors(t *testing.T) {
	if _, err := AlignTrace(nil); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := AlignTrace(&Trace{}); err == nil {
		t.Error("empty trace should error")
	}
	// A trace without a warmup stop cannot be aligned.
	r, err := road.StraightRoad("nostop", 500, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: vehicle.DefaultDriver(13), Rng: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AlignTrace(tr); err == nil {
		t.Error("trace without a stop should error")
	}
}

func TestAlignTraceSlopeConfound(t *testing.T) {
	// Documented limitation: calibrating the mount while parked on a grade
	// absorbs the grade into the pitch estimate — the estimator cannot
	// distinguish a tilted phone from a tilted road. Systems relying on
	// this alignment should calibrate on level ground.
	r, err := road.StraightRoad("slope", 800, road.Deg(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:        r,
		Driver:      vehicle.DefaultDriver(13),
		Rng:         rand.New(rand.NewSource(21)),
		WarmupStopS: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlignTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The aligned phone on a +3° grade yields a pitch estimate near the
	// negated grade (the slope leaks into the mount).
	if math.Abs(res.Mount.Pitch-(-road.Deg(3))) > road.Deg(1.2) {
		t.Errorf("pitch estimate %v rad; expected ~%v (slope confound)",
			res.Mount.Pitch, -road.Deg(3))
	}
}

func TestMisalignmentError(t *testing.T) {
	a := frame.Mount{Yaw: 0.1, Pitch: 0.2, Roll: 0.3}
	if got := MisalignmentError(a, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	b := frame.Mount{Yaw: 0.3, Pitch: 0.2, Roll: 0.3}
	if got := MisalignmentError(a, b); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("distance = %v, want 0.2", got)
	}
	// Wrap-around.
	c := frame.Mount{Yaw: math.Pi - 0.05}
	d := frame.Mount{Yaw: -math.Pi + 0.05}
	if got := MisalignmentError(c, d); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("wrapped distance = %v, want 0.1", got)
	}
}

func TestCentripetalForceOnCurve(t *testing.T) {
	// Driving a curve, the lateral accelerometer axis must read the
	// centripetal force (for an aligned phone).
	r, err := road.SCurveRoad(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:               r,
		Driver:             vehicle.DefaultDriver(11),
		Rng:                rand.New(rand.NewSource(5)),
		DisableLaneChanges: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sample(trip, DefaultConfig(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	var worstLat float64
	for _, rec := range tr.Records {
		if math.Abs(rec.RawAccelX) > worstLat {
			worstLat = math.Abs(rec.RawAccelX)
		}
	}
	// v²/r = 11²/60 ≈ 2 m/s² through the arcs.
	if worstLat < 1.0 {
		t.Errorf("peak lateral specific force %v, expected ~2 m/s² in the S-curve", worstLat)
	}
}

func BenchmarkAlignTrace(b *testing.B) {
	tr := warmupTrace(b, frame.Mount{Yaw: 0.4, Pitch: 0.1}, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// AlignTrace mutates; work on a copy of records.
		cp := &Trace{DT: tr.DT, Records: append([]Record(nil), tr.Records...), Truth: tr.Truth}
		if _, err := AlignTrace(cp); err != nil {
			b.Fatal(err)
		}
	}
}
