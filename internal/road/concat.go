package road

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/geo"
)

// Concat joins geometrically consecutive roads (e.g. the edges of a planned
// route) into one drivable road: polylines are concatenated at their shared
// junctions, altitude profiles are stitched continuously, and lane sections
// are offset. The result lets a trip span a whole journey — including the
// junction turns between streets — rather than one edge at a time.
//
// Each road's start must coincide with the previous road's end within
// joinTolM meters (route edges share graph nodes, so this holds by
// construction).
func Concat(id string, roads []*Road) (*Road, error) {
	const joinTolM = 2.0
	if id == "" {
		return nil, errors.New("road: empty id")
	}
	if len(roads) == 0 {
		return nil, errors.New("road: nothing to concatenate")
	}
	if len(roads) == 1 {
		return roads[0], nil
	}

	var pts []geo.ENU
	var alts []float64
	var sections []Section
	spacing := roads[0].Profile().Spacing()
	var offset float64
	cls := roads[0].Class()

	for i, r := range roads {
		if r == nil {
			return nil, fmt.Errorf("road: nil road at index %d", i)
		}
		if r.Profile().Spacing() != spacing {
			return nil, fmt.Errorf("road: profile spacing mismatch at %d: %v vs %v",
				i, r.Profile().Spacing(), spacing)
		}
		rp := r.Line().Points()
		ra := r.Profile().Altitudes()
		if i == 0 {
			pts = append(pts, rp...)
			alts = append(alts, ra...)
		} else {
			prevEnd := pts[len(pts)-1]
			if d := math.Hypot(rp[0].E-prevEnd.E, rp[0].N-prevEnd.N); d > joinTolM {
				return nil, fmt.Errorf("road: %s does not join %s (gap %.1f m)",
					r.ID(), roads[i-1].ID(), d)
			}
			// Drop the duplicated junction vertex; skip degenerate
			// near-duplicates that would break the polyline.
			for _, p := range rp[1:] {
				last := pts[len(pts)-1]
				if math.Hypot(p.E-last.E, p.N-last.N) < 0.01 {
					continue
				}
				pts = append(pts, p)
			}
			// Stitch altitude continuously: shift the incoming profile so
			// its first sample matches the current end altitude (terrain
			// makes these equal already; the shift removes survey noise
			// steps).
			shift := alts[len(alts)-1] - ra[0]
			for _, a := range ra[1:] {
				alts = append(alts, a+shift)
			}
		}
		for _, sec := range r.Sections() {
			sections = append(sections, Section{
				StartS: sec.StartS + offset,
				EndS:   sec.EndS + offset,
				Lanes:  sec.Lanes,
			})
		}
		offset += r.Length()
		if r.Class() < cls {
			cls = r.Class() // keep the highest class (lowest enum value)
		}
	}

	line, err := geo.NewPolyline(pts)
	if err != nil {
		return nil, fmt.Errorf("road: concatenated geometry: %w", err)
	}
	// Each road's resampled profile can be up to ~spacing/2 longer than its
	// geometry; over many segments the rounding accumulates. Trim or pad
	// the stitched altitude series to the joined geometry's length.
	wantSamples := int(math.Round(line.Length()/spacing)) + 1
	for len(alts) > wantSamples {
		alts = alts[:len(alts)-1]
	}
	for len(alts) < wantSamples {
		alts = append(alts, alts[len(alts)-1])
	}
	prof, err := NewProfile(spacing, alts)
	if err != nil {
		return nil, fmt.Errorf("road: concatenated profile: %w", err)
	}
	// Joint geometry may differ slightly in length from the summed section
	// table (vertex dedup); retile the section boundaries proportionally if
	// they drifted beyond the validator's tolerance.
	if len(sections) > 0 {
		scale := line.Length() / sections[len(sections)-1].EndS
		if scale != 1 {
			prev := 0.0
			for i := range sections {
				sections[i].StartS = prev
				sections[i].EndS *= scale
				prev = sections[i].EndS
			}
		}
	}
	return NewRoad(id, line, prof, sections, cls)
}
