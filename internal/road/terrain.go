package road

import (
	"math"
	"math/rand"

	"roadgrade/internal/geo"
)

// Terrain is a smooth deterministic elevation field over a local ENU plane.
// It stands in for the real Charlottesville topography: a sum of randomly
// oriented sinusoidal ridges whose wavelengths (hundreds of meters to a few
// km) and amplitudes are tuned so road grades mostly stay within the ±6-7°
// range the paper's hilly urban routes exhibit.
type Terrain struct {
	waves []wave
	base  float64
}

type wave struct {
	kE, kN float64 // wave vector (rad/m)
	amp    float64 // meters
	phase  float64
}

// TerrainConfig controls terrain roughness.
type TerrainConfig struct {
	// Waves is the number of sinusoidal components (default 12).
	Waves int
	// MinWavelengthM / MaxWavelengthM bound component wavelengths
	// (defaults 400 m and 4000 m).
	MinWavelengthM float64
	MaxWavelengthM float64
	// MaxGradeDeg approximately bounds the slope magnitude of each
	// component; the summed field stays near this bound because long
	// wavelengths dominate (default 4.5).
	MaxGradeDeg float64
	// BaseAltM is the mean altitude (default 180 m, Charlottesville's).
	BaseAltM float64
}

func (c TerrainConfig) withDefaults() TerrainConfig {
	if c.Waves <= 0 {
		c.Waves = 12
	}
	if c.MinWavelengthM <= 0 {
		c.MinWavelengthM = 400
	}
	if c.MaxWavelengthM <= c.MinWavelengthM {
		c.MaxWavelengthM = 4000
	}
	if c.MaxGradeDeg <= 0 {
		c.MaxGradeDeg = 5.0
	}
	if c.BaseAltM == 0 {
		c.BaseAltM = 180
	}
	return c
}

// NewTerrain builds a terrain field from a seed and config. The same seed
// always produces the same terrain.
func NewTerrain(seed int64, cfg TerrainConfig) *Terrain {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	t := &Terrain{base: cfg.BaseAltM}
	// Per-component slope budget: slope of A·sin(k·x) is A·k; divide the
	// total budget across components assuming ~sqrt accumulation.
	slopeBudget := math.Tan(cfg.MaxGradeDeg*math.Pi/180) / math.Sqrt(float64(cfg.Waves)/2)
	for i := 0; i < cfg.Waves; i++ {
		// Log-uniform wavelength.
		logMin, logMax := math.Log(cfg.MinWavelengthM), math.Log(cfg.MaxWavelengthM)
		wl := math.Exp(logMin + rng.Float64()*(logMax-logMin))
		k := 2 * math.Pi / wl
		dir := rng.Float64() * 2 * math.Pi
		amp := slopeBudget / k * (0.5 + rng.Float64())
		t.waves = append(t.waves, wave{
			kE:    k * math.Cos(dir),
			kN:    k * math.Sin(dir),
			amp:   amp,
			phase: rng.Float64() * 2 * math.Pi,
		})
	}
	return t
}

// ElevationAt returns the terrain altitude at a planar position.
func (t *Terrain) ElevationAt(p geo.ENU) float64 {
	z := t.base
	for _, w := range t.waves {
		z += w.amp * math.Sin(w.kE*p.E+w.kN*p.N+w.phase)
	}
	return z
}

// ProfileAlong samples the terrain along a polyline every spacing meters and
// returns the resulting road profile.
func (t *Terrain) ProfileAlong(line *geo.Polyline, spacing float64) (*Profile, error) {
	pts, err := line.Resample(spacing)
	if err != nil {
		return nil, err
	}
	alts := make([]float64, len(pts))
	for i, p := range pts {
		alts[i] = t.ElevationAt(p)
	}
	return NewProfile(spacing, alts)
}
