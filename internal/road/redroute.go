package road

import (
	"fmt"
	"math"

	"roadgrade/internal/geo"
)

// Deg converts degrees to radians; exported for route-spec readability.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// RedRouteSpec returns the section table of the paper's small-scale "red"
// evaluation route (Figure 7(b), Table III): 2.16 km split into seven
// sections with alternating uphill (+) / downhill (-) grades and the lane
// counts 1,1,1,1,2,2,1.
func RedRouteSpec() []SectionSpec {
	return []SectionSpec{
		{LengthM: 300, PeakGradeRad: Deg(+2.6), Lanes: 1}, // section 0-1, uphill
		{LengthM: 320, PeakGradeRad: Deg(-3.2), Lanes: 1}, // section 1-2, downhill
		{LengthM: 280, PeakGradeRad: Deg(+3.8), Lanes: 1}, // section 2-3, uphill
		{LengthM: 340, PeakGradeRad: Deg(-2.4), Lanes: 1}, // section 3-4, downhill
		{LengthM: 360, PeakGradeRad: Deg(+3.4), Lanes: 2}, // section 4-5, uphill
		{LengthM: 280, PeakGradeRad: Deg(-2.8), Lanes: 2}, // section 5-6, downhill
		{LengthM: 280, PeakGradeRad: Deg(+2.0), Lanes: 1}, // section 6-7, uphill
	}
}

// RedRouteLengthM is the total length of the red route (2.16 km).
const RedRouteLengthM = 2160.0

// ProfileSpacingM is the reference-profile segment length used throughout
// the evaluation (§IV-A2 sets it to 1 meter).
const ProfileSpacingM = 1.0

// RedRoute constructs the small-scale evaluation route. The planar geometry
// is mostly straight with two gentle bends (the route is used for grade and
// lane-change evaluation, not curve handling), and the vertical profile
// follows RedRouteSpec.
func RedRoute() (*Road, error) {
	specs := RedRouteSpec()
	b := NewPathBuilder(origin(), 0, 5)
	b.Straight(700).
		Arc(220, Deg(25)).
		Straight(600).
		Arc(260, Deg(-20))
	// Size the final straight so the geometry matches the 2160 m spec.
	b.Straight(RedRouteLengthM - b.Length())
	line, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("road: building red route geometry: %w", err)
	}
	prof, sections, err := BuildProfileFromSections(specs, ProfileSpacingM, 180)
	if err != nil {
		return nil, fmt.Errorf("road: building red route profile: %w", err)
	}
	return NewRoad("red-route", line, prof, sections, ClassCollector)
}

// SCurveRoad constructs a road containing the Figure 5 "S-sharp" geometry:
// a straight lead-in, two opposite arcs, and a straight lead-out. The sweep
// angle and radius control how aggressive the S is; the defaults (radius
// 60 m, sweep 35°) produce steering-rate bumps comparable to lane changes
// but a horizontal displacement far above 3·W_lane.
func SCurveRoad(radius, sweepRad float64) (*Road, error) {
	if radius <= 0 {
		radius = 60
	}
	if sweepRad == 0 {
		sweepRad = Deg(35)
	}
	b := NewPathBuilder(origin(), 0, 3)
	b.Straight(200).SCurve(radius, sweepRad).Straight(200)
	line, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("road: building s-curve geometry: %w", err)
	}
	// Flat profile: the S-curve experiment isolates steering, not grade.
	n := int(math.Round(line.Length()/ProfileSpacingM)) + 1
	alts := make([]float64, n)
	for i := range alts {
		alts[i] = 180
	}
	prof, err := NewProfile(ProfileSpacingM, alts)
	if err != nil {
		return nil, fmt.Errorf("road: building s-curve profile: %w", err)
	}
	return NewRoad("s-curve", line, prof, nil, ClassLocal)
}

// StraightRoad returns a straight flat-or-graded road of the given length,
// lanes and constant grade; the basic fixture for unit tests and steering
// calibration experiments.
func StraightRoad(id string, lengthM, gradeRad float64, lanes int) (*Road, error) {
	b := NewPathBuilder(origin(), 0, 5)
	b.Straight(lengthM)
	line, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("road: building straight road: %w", err)
	}
	n := int(math.Round(lengthM / ProfileSpacingM))
	grades := make([]float64, n)
	for i := range grades {
		grades[i] = gradeRad
	}
	prof, err := NewProfileFromGrades(ProfileSpacingM, grades, 180)
	if err != nil {
		return nil, fmt.Errorf("road: building straight profile: %w", err)
	}
	sections := []Section{{StartS: 0, EndS: line.Length(), Lanes: lanes}}
	return NewRoad(id, line, prof, sections, ClassLocal)
}

func origin() geo.ENU { return geo.ENU{} }
