package road

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"roadgrade/internal/geo"
)

// ElevationField is anything that can report terrain altitude at a planar
// position: the procedural Terrain, or a GridTerrain imported from real
// elevation data.
type ElevationField interface {
	ElevationAt(p geo.ENU) float64
}

// Interface compliance.
var (
	_ ElevationField = (*Terrain)(nil)
	_ ElevationField = (*GridTerrain)(nil)
)

// ProfileAlongField samples any elevation field along a polyline every
// spacing meters and returns the resulting road profile.
func ProfileAlongField(f ElevationField, line *geo.Polyline, spacing float64) (*Profile, error) {
	if f == nil {
		return nil, errors.New("road: nil elevation field")
	}
	pts, err := line.Resample(spacing)
	if err != nil {
		return nil, err
	}
	alts := make([]float64, len(pts))
	for i, p := range pts {
		alts[i] = f.ElevationAt(p)
	}
	return NewProfile(spacing, alts)
}

// GridTerrain is a regular elevation grid with bilinear interpolation — the
// shape real digital elevation models (USGS, SRTM exports) come in, so real
// terrain can drive the simulator.
type GridTerrain struct {
	originE, originN float64 // ENU position of grid cell (0, 0)
	cellM            float64 // cell edge length
	rows, cols       int
	z                []float64 // row-major, z[r*cols+c]
}

// NewGridTerrain builds a grid from row-major elevation samples.
func NewGridTerrain(originE, originN, cellM float64, rows, cols int, z []float64) (*GridTerrain, error) {
	if cellM <= 0 {
		return nil, fmt.Errorf("road: invalid grid cell size %v", cellM)
	}
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("road: grid needs at least 2x2 cells, got %dx%d", rows, cols)
	}
	if len(z) != rows*cols {
		return nil, fmt.Errorf("road: grid has %d samples, want %d", len(z), rows*cols)
	}
	return &GridTerrain{
		originE: originE, originN: originN, cellM: cellM,
		rows: rows, cols: cols,
		z: append([]float64(nil), z...),
	}, nil
}

// ElevationAt returns the bilinearly interpolated altitude at p, clamping
// positions outside the grid to its edges.
func (g *GridTerrain) ElevationAt(p geo.ENU) float64 {
	fx := (p.E - g.originE) / g.cellM
	fy := (p.N - g.originN) / g.cellM
	fx = clampRange(fx, 0, float64(g.cols-1))
	fy = clampRange(fy, 0, float64(g.rows-1))
	c0 := int(fx)
	r0 := int(fy)
	if c0 >= g.cols-1 {
		c0 = g.cols - 2
	}
	if r0 >= g.rows-1 {
		r0 = g.rows - 2
	}
	tx := fx - float64(c0)
	ty := fy - float64(r0)
	z00 := g.z[r0*g.cols+c0]
	z01 := g.z[r0*g.cols+c0+1]
	z10 := g.z[(r0+1)*g.cols+c0]
	z11 := g.z[(r0+1)*g.cols+c0+1]
	return z00*(1-tx)*(1-ty) + z01*tx*(1-ty) + z10*(1-tx)*ty + z11*tx*ty
}

// ProfileAlong samples the grid along a polyline.
func (g *GridTerrain) ProfileAlong(line *geo.Polyline, spacing float64) (*Profile, error) {
	return ProfileAlongField(g, line, spacing)
}

func clampRange(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Grid CSV format: a header row
//
//	grid,<originE>,<originN>,<cellM>,<rows>,<cols>
//
// followed by <rows> rows of <cols> elevation values each (row 0 is the
// southernmost / lowest-N row).

// WriteGridCSV serializes a grid terrain.
func WriteGridCSV(w io.Writer, g *GridTerrain) error {
	if g == nil {
		return errors.New("road: nil grid")
	}
	cw := csv.NewWriter(w)
	header := []string{
		"grid",
		formatF(g.originE), formatF(g.originN), formatF(g.cellM),
		strconv.Itoa(g.rows), strconv.Itoa(g.cols),
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("road: writing grid header: %w", err)
	}
	row := make([]string, g.cols)
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			row[c] = formatF(g.z[r*g.cols+c])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("road: writing grid row %d: %w", r, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("road: flushing grid CSV: %w", err)
	}
	return nil
}

// ReadGridCSV parses a grid terrain written by WriteGridCSV (or exported
// from a DEM in the same shape).
func ReadGridCSV(r io.Reader) (*GridTerrain, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("road: reading grid CSV: %w", err)
	}
	if len(rows) < 3 {
		return nil, errors.New("road: grid CSV needs a header and at least two rows")
	}
	h := rows[0]
	if len(h) != 6 || h[0] != "grid" {
		return nil, errors.New("road: grid CSV header malformed (want grid,<E>,<N>,<cell>,<rows>,<cols>)")
	}
	vals := make([]float64, 3)
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(h[i+1], 64)
		if err != nil {
			return nil, fmt.Errorf("road: grid header field %d: %w", i+1, err)
		}
		vals[i] = v
	}
	nRows, err := strconv.Atoi(h[4])
	if err != nil {
		return nil, fmt.Errorf("road: grid rows: %w", err)
	}
	nCols, err := strconv.Atoi(h[5])
	if err != nil {
		return nil, fmt.Errorf("road: grid cols: %w", err)
	}
	if len(rows)-1 != nRows {
		return nil, fmt.Errorf("road: grid CSV has %d data rows, header says %d", len(rows)-1, nRows)
	}
	z := make([]float64, 0, nRows*nCols)
	for ri, row := range rows[1:] {
		if len(row) != nCols {
			return nil, fmt.Errorf("road: grid row %d has %d cols, want %d", ri, len(row), nCols)
		}
		for ci, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("road: grid cell (%d,%d): %w", ri, ci, err)
			}
			if math.IsNaN(v) {
				return nil, fmt.Errorf("road: grid cell (%d,%d) is NaN", ri, ci)
			}
			z = append(z, v)
		}
	}
	return NewGridTerrain(vals[0], vals[1], vals[2], nRows, nCols, z)
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// SampleToGrid rasterizes any elevation field into a grid covering the
// given extent — useful for archiving a procedural terrain or downsampling.
func SampleToGrid(f ElevationField, originE, originN, cellM float64, rows, cols int) (*GridTerrain, error) {
	if f == nil {
		return nil, errors.New("road: nil elevation field")
	}
	if cellM <= 0 || rows < 2 || cols < 2 {
		return nil, fmt.Errorf("road: invalid grid spec %vx%d x %d", cellM, rows, cols)
	}
	z := make([]float64, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			z = append(z, f.ElevationAt(geo.ENU{
				E: originE + float64(c)*cellM,
				N: originN + float64(r)*cellM,
			}))
		}
	}
	return NewGridTerrain(originE, originN, cellM, rows, cols, z)
}
