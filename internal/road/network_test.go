package road

import "testing"

// TestAdjacencyForwardReverseConsistency: the reverse-adjacency index must be
// the exact mirror of the forward index — every directed edge appears exactly
// once in Outgoing(e.From) and exactly once in Incoming(e.To), and nowhere
// else. Backward graph searches rely on this.
func TestAdjacencyForwardReverseConsistency(t *testing.T) {
	net, err := GenerateNetwork(99, NetworkConfig{TargetStreetKM: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Edges) == 0 {
		t.Fatal("generated network has no edges")
	}

	outCount := 0
	for _, n := range net.Nodes {
		for _, e := range net.Outgoing(n.ID) {
			if e.From != n.ID {
				t.Fatalf("Outgoing(%d) contains edge %s from %d", n.ID, e.Road.ID(), e.From)
			}
			outCount++
		}
	}
	inCount := 0
	for _, n := range net.Nodes {
		for _, e := range net.Incoming(n.ID) {
			if e.To != n.ID {
				t.Fatalf("Incoming(%d) contains edge %s to %d", n.ID, e.Road.ID(), e.To)
			}
			inCount++
		}
	}
	if outCount != len(net.Edges) || inCount != len(net.Edges) {
		t.Fatalf("adjacency sizes out=%d in=%d, want %d each", outCount, inCount, len(net.Edges))
	}

	// Each edge pointer is findable through both indices.
	for _, e := range net.Edges {
		found := false
		for _, o := range net.Outgoing(e.From) {
			if o == e {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %s missing from Outgoing(%d)", e.Road.ID(), e.From)
		}
		found = false
		for _, in := range net.Incoming(e.To) {
			if in == e {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %s missing from Incoming(%d)", e.Road.ID(), e.To)
		}
	}
}
