package road

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadgrade/internal/geo"
)

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile(0, []float64{1, 2}); err == nil {
		t.Error("zero spacing should error")
	}
	if _, err := NewProfile(1, []float64{1}); err == nil {
		t.Error("single sample should error")
	}
}

func TestProfileAltitudeInterpolation(t *testing.T) {
	p, err := NewProfile(10, []float64{100, 110, 105})
	if err != nil {
		t.Fatal(err)
	}
	if p.Length() != 20 {
		t.Errorf("Length = %v", p.Length())
	}
	if p.Spacing() != 10 {
		t.Errorf("Spacing = %v", p.Spacing())
	}
	tests := []struct {
		s, want float64
	}{
		{-5, 100}, {0, 100}, {5, 105}, {10, 110}, {15, 107.5}, {20, 105}, {100, 105},
	}
	for _, tt := range tests {
		if got := p.AltitudeAt(tt.s); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("AltitudeAt(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestProfileGrade(t *testing.T) {
	// 1 m rise over 10 m: grade = arcsin(0.1).
	p, _ := NewProfile(10, []float64{0, 1, 1})
	want := math.Asin(0.1)
	if got := p.GradeAt(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("GradeAt(5) = %v, want %v", got, want)
	}
	if got := p.GradeAt(15); got != 0 {
		t.Errorf("GradeAt(15) = %v, want 0", got)
	}
	// Clamping at the ends.
	if got := p.GradeAt(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("GradeAt(-1) = %v", got)
	}
	if got := p.GradeAt(1e6); got != 0 {
		t.Errorf("GradeAt(big) = %v", got)
	}
	// Steeper than 45° clamps the arcsin argument instead of NaN.
	steep, _ := NewProfile(1, []float64{0, 5})
	if g := steep.GradeAt(0); math.IsNaN(g) || g != math.Pi/2 {
		t.Errorf("steep grade = %v, want pi/2", g)
	}
}

func TestNewProfileFromGradesRoundTrip(t *testing.T) {
	grades := []float64{0.02, 0.05, -0.03, 0}
	p, err := NewProfileFromGrades(2, grades, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grades {
		s := (float64(i) + 0.5) * 2
		if got := p.GradeAt(s); math.Abs(got-g) > 1e-9 {
			t.Errorf("GradeAt(%v) = %v, want %v", s, got, g)
		}
	}
	if _, err := NewProfileFromGrades(1, nil, 0); err == nil {
		t.Error("empty grades should error")
	}
	if _, err := NewProfileFromGrades(-1, grades, 0); err == nil {
		t.Error("negative spacing should error")
	}
}

func TestProfileAltitudesCopy(t *testing.T) {
	p, _ := NewProfile(1, []float64{1, 2, 3})
	a := p.Altitudes()
	a[0] = 99
	if p.AltitudeAt(0) != 1 {
		t.Error("Altitudes aliases internal state")
	}
}

func TestMaxAbsGradeDeg(t *testing.T) {
	p, _ := NewProfileFromGrades(1, []float64{Deg(1), Deg(-3), Deg(2)}, 0)
	if got := p.MaxAbsGradeDeg(); math.Abs(got-3) > 0.01 {
		t.Errorf("MaxAbsGradeDeg = %v, want 3", got)
	}
}

func TestTerrainDeterministic(t *testing.T) {
	a := NewTerrain(7, TerrainConfig{})
	b := NewTerrain(7, TerrainConfig{})
	c := NewTerrain(8, TerrainConfig{})
	p := geo.ENU{E: 1234, N: -567}
	if a.ElevationAt(p) != b.ElevationAt(p) {
		t.Error("same seed, different elevation")
	}
	if a.ElevationAt(p) == c.ElevationAt(p) {
		t.Error("different seeds produced identical elevation (unlikely)")
	}
}

func TestTerrainGradesBounded(t *testing.T) {
	tr := NewTerrain(3, TerrainConfig{MaxGradeDeg: 4})
	b := NewPathBuilder(geo.ENU{}, 0.3, 5)
	b.Straight(5000)
	line, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := tr.ProfileAlong(line, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.MaxAbsGradeDeg(); got > 10 {
		t.Errorf("terrain grade %v deg exceeds sane bound", got)
	}
	if got := prof.MaxAbsGradeDeg(); got < 0.5 {
		t.Errorf("terrain suspiciously flat: %v deg", got)
	}
}

func TestPathBuilderStraight(t *testing.T) {
	b := NewPathBuilder(geo.ENU{}, 0, 5)
	line, err := b.Straight(100).Build()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Length()-100) > 1e-9 {
		t.Errorf("Length = %v", line.Length())
	}
	end := line.At(line.Length())
	if math.Abs(end.E-100) > 1e-9 || math.Abs(end.N) > 1e-9 {
		t.Errorf("end = %+v", end)
	}
}

func TestPathBuilderArc(t *testing.T) {
	// Quarter turn left with radius 100 from heading east ends heading north
	// at (100, 100).
	b := NewPathBuilder(geo.ENU{}, 0, 2)
	line, err := b.Arc(100, math.Pi/2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Heading()-math.Pi/2) > 1e-9 {
		t.Errorf("heading = %v", b.Heading())
	}
	end := line.At(line.Length())
	if math.Abs(end.E-100) > 0.5 || math.Abs(end.N-100) > 0.5 {
		t.Errorf("end = %+v, want ~(100,100)", end)
	}
	wantLen := math.Pi / 2 * 100
	if math.Abs(line.Length()-wantLen) > wantLen*0.01 {
		t.Errorf("arc length = %v, want ~%v", line.Length(), wantLen)
	}
}

func TestPathBuilderArcRight(t *testing.T) {
	b := NewPathBuilder(geo.ENU{}, 0, 2)
	line, err := b.Arc(50, -math.Pi/2).Build()
	if err != nil {
		t.Fatal(err)
	}
	end := line.At(line.Length())
	if math.Abs(end.E-50) > 0.5 || math.Abs(end.N+50) > 0.5 {
		t.Errorf("right-turn end = %+v, want ~(50,-50)", end)
	}
}

func TestPathBuilderSCurveReturnsHeading(t *testing.T) {
	b := NewPathBuilder(geo.ENU{}, 0, 2)
	if _, err := b.SCurve(60, Deg(35)).Build(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Heading()) > 1e-9 {
		t.Errorf("S-curve should restore heading, got %v", b.Heading())
	}
}

func TestPathBuilderEmpty(t *testing.T) {
	b := NewPathBuilder(geo.ENU{}, 0, 5)
	if _, err := b.Build(); err == nil {
		t.Error("empty path should error")
	}
	b.Straight(-5) // no-op
	b.Arc(-1, 1)   // no-op
	b.Arc(10, 0)   // no-op
	if _, err := b.Build(); err == nil {
		t.Error("no-op path should still error")
	}
}

func TestBuildProfileFromSections(t *testing.T) {
	specs := []SectionSpec{
		{LengthM: 100, PeakGradeRad: Deg(2), Lanes: 1},
		{LengthM: 100, PeakGradeRad: Deg(-2), Lanes: 2},
	}
	prof, sections, err := BuildProfileFromSections(specs, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 2 || sections[1].StartS != 100 || sections[1].EndS != 200 {
		t.Errorf("sections = %+v", sections)
	}
	// Peak grade occurs mid-section and approaches the spec value.
	if got := prof.GradeAt(50); math.Abs(got-Deg(2)) > Deg(0.1) {
		t.Errorf("mid-section grade = %v, want ~%v", got, Deg(2))
	}
	// Grade near the section join should be close to zero.
	if got := prof.GradeAt(100); math.Abs(got) > Deg(0.3) {
		t.Errorf("join grade = %v, want ~0", got)
	}
	// Error cases.
	if _, _, err := BuildProfileFromSections(nil, 1, 0); err == nil {
		t.Error("no specs should error")
	}
	if _, _, err := BuildProfileFromSections(specs, -1, 0); err == nil {
		t.Error("bad spacing should error")
	}
	bad := []SectionSpec{{LengthM: 0, PeakGradeRad: 0, Lanes: 1}}
	if _, _, err := BuildProfileFromSections(bad, 1, 0); err == nil {
		t.Error("zero-length section should error")
	}
	bad2 := []SectionSpec{{LengthM: 10, PeakGradeRad: 0, Lanes: 0}}
	if _, _, err := BuildProfileFromSections(bad2, 1, 0); err == nil {
		t.Error("zero-lane section should error")
	}
}

func TestNewRoadValidation(t *testing.T) {
	line, _ := geo.NewPolyline([]geo.ENU{{E: 0, N: 0}, {E: 100, N: 0}})
	prof, _ := NewProfile(1, make([]float64, 101))
	if _, err := NewRoad("", line, prof, nil, ClassLocal); err == nil {
		t.Error("empty id should error")
	}
	if _, err := NewRoad("x", nil, prof, nil, ClassLocal); err == nil {
		t.Error("nil line should error")
	}
	shortProf, _ := NewProfile(1, make([]float64, 11))
	if _, err := NewRoad("x", line, shortProf, nil, ClassLocal); err == nil {
		t.Error("short profile should error")
	}
	// Bad sections.
	bad := []Section{{StartS: 0, EndS: 50, Lanes: 1}, {StartS: 60, EndS: 100, Lanes: 1}}
	if _, err := NewRoad("x", line, prof, bad, ClassLocal); err == nil {
		t.Error("gapped sections should error")
	}
	bad2 := []Section{{StartS: 0, EndS: 100, Lanes: 0}}
	if _, err := NewRoad("x", line, prof, bad2, ClassLocal); err == nil {
		t.Error("zero lanes should error")
	}
	bad3 := []Section{{StartS: 0, EndS: 50, Lanes: 1}}
	if _, err := NewRoad("x", line, prof, bad3, ClassLocal); err == nil {
		t.Error("sections not covering road should error")
	}
	// Default sections.
	r, err := NewRoad("x", line, prof, nil, ClassLocal)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.LanesAt(50); got != 1 {
		t.Errorf("default LanesAt = %d", got)
	}
}

func TestRedRoute(t *testing.T) {
	r, err := RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Length()-RedRouteLengthM) > 20 {
		t.Errorf("red route length = %v, want ~%v", r.Length(), RedRouteLengthM)
	}
	secs := r.Sections()
	if len(secs) != 7 {
		t.Fatalf("sections = %d, want 7", len(secs))
	}
	// Table III: lanes 1,1,1,1,2,2,1 and alternating +,-,+,-,+,-,+ grades.
	wantLanes := []int{1, 1, 1, 1, 2, 2, 1}
	wantSign := []float64{1, -1, 1, -1, 1, -1, 1}
	for i, sec := range secs {
		if sec.Lanes != wantLanes[i] {
			t.Errorf("section %d lanes = %d, want %d", i, sec.Lanes, wantLanes[i])
		}
		mid := (sec.StartS + sec.EndS) / 2
		if g := r.GradeAt(mid); g*wantSign[i] <= 0 {
			t.Errorf("section %d grade sign = %v, want sign %v", i, g, wantSign[i])
		}
	}
	if r.MeanAbsGradeDeg(500) < 0.5 {
		t.Error("red route suspiciously flat")
	}
	if got := r.LanesAt(RedRouteLengthM * 0.99); got != 1 {
		t.Errorf("final section lanes = %d", got)
	}
	if got := r.LanesAt(1e9); got != 1 {
		t.Errorf("LanesAt beyond end = %d", got)
	}
}

func TestSCurveRoad(t *testing.T) {
	r, err := SCurveRoad(0, 0) // defaults
	if err != nil {
		t.Fatal(err)
	}
	// The S restores heading: start and end directions match.
	d0 := r.DirectionAt(10)
	d1 := r.DirectionAt(r.Length() - 10)
	if math.Abs(geo.AngleDiff(d0, d1)) > 0.01 {
		t.Errorf("S-curve heading not restored: %v vs %v", d0, d1)
	}
	// Mid-course heading deviates substantially.
	mid := r.DirectionAt(200 + 60*Deg(35)) // end of first arc
	if math.Abs(geo.AngleDiff(d0, mid)) < Deg(20) {
		t.Errorf("mid-course deviation = %v, want >= 20 deg", geo.AngleDiff(d0, mid))
	}
	// Flat profile.
	if g := r.GradeAt(r.Length() / 2); g != 0 {
		t.Errorf("S-curve grade = %v", g)
	}
}

func TestStraightRoad(t *testing.T) {
	r, err := StraightRoad("s", 500, Deg(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.GradeAt(250)-Deg(3)) > 1e-9 {
		t.Errorf("grade = %v", r.GradeAt(250))
	}
	if r.LanesAt(100) != 2 {
		t.Errorf("lanes = %d", r.LanesAt(100))
	}
	if r.Class() != ClassLocal {
		t.Errorf("class = %v", r.Class())
	}
	// Altitude rises by 500*sin(3 deg).
	wantRise := 500 * math.Sin(Deg(3))
	rise := r.AltitudeAt(500) - r.AltitudeAt(0)
	if math.Abs(rise-wantRise) > 0.1 {
		t.Errorf("rise = %v, want %v", rise, wantRise)
	}
}

func TestClassString(t *testing.T) {
	if ClassArterial.String() != "arterial" || ClassCollector.String() != "collector" ||
		ClassLocal.String() != "local" {
		t.Error("class names wrong")
	}
	if Class(99).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestGenerateNetworkSmall(t *testing.T) {
	net, err := GenerateNetwork(5, NetworkConfig{TargetStreetKM: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Nodes) == 0 || len(net.Edges) == 0 {
		t.Fatal("empty network")
	}
	got := net.TotalLengthM() / 1000
	if got < 5 || got > 16 {
		t.Errorf("street length = %v km, want near 10", got)
	}
	// Both directions exist for the first street.
	e := net.Edges[0]
	found := false
	for _, other := range net.Outgoing(e.To) {
		if other.To == e.From {
			found = true
		}
	}
	if !found {
		t.Error("reverse edge missing")
	}
	// Node positions of edge endpoints roughly match road geometry ends.
	var fromNode Node
	for _, n := range net.Nodes {
		if n.ID == e.From {
			fromNode = n
		}
	}
	start := e.Road.PositionAt(0)
	if math.Hypot(start.E-fromNode.Pos.E, start.N-fromNode.Pos.N) > 1 {
		t.Error("edge geometry does not start at its From node")
	}
}

func TestGenerateNetworkDeterministic(t *testing.T) {
	a, err := GenerateNetwork(11, NetworkConfig{TargetStreetKM: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateNetwork(11, NetworkConfig{TargetStreetKM: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i].Road.Length() != b.Edges[i].Road.Length() {
			t.Fatalf("edge %d length differs", i)
		}
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, nil); err == nil {
		t.Error("empty network should error")
	}
	nodes := []Node{{ID: 1}, {ID: 1}}
	if _, err := NewNetwork(nodes, nil); err == nil {
		t.Error("duplicate node ids should error")
	}
	r, _ := StraightRoad("x", 100, 0, 1)
	edges := []*Edge{{From: 1, To: 99, Road: r}}
	if _, err := NewNetwork([]Node{{ID: 1}}, edges); err == nil {
		t.Error("edge to unknown node should error")
	}
}

func TestCharlottesvilleLength(t *testing.T) {
	if testing.Short() {
		t.Skip("network generation is slow in -short mode")
	}
	net, err := Charlottesville()
	if err != nil {
		t.Fatal(err)
	}
	got := net.TotalLengthM() / 1000
	if math.Abs(got-164.8) > 12 {
		t.Errorf("Charlottesville street length = %v km, want ~164.8", got)
	}
}

// Property: profiles built from bounded grades stay within the grade bound.
func TestProfileGradeBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		bound := 0.05 + r.Float64()*0.1
		grades := make([]float64, n)
		for i := range grades {
			grades[i] = (r.Float64()*2 - 1) * bound
		}
		p, err := NewProfileFromGrades(1, grades, 100)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(p.GradeAt(float64(i)+0.5)) > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateNetwork(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateNetwork(3, NetworkConfig{TargetStreetKM: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileGradeAt(b *testing.B) {
	p, _ := NewProfileFromGrades(1, make([]float64, 2000), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.GradeAt(float64(i % 2000))
	}
}
