package road

import (
	"math"
	"testing"

	"roadgrade/internal/geo"
)

// chainRoads builds n geometrically consecutive straight roads with varying
// grades, each lengthM long, heading east then bending at each junction.
func chainRoads(t *testing.T, n int, lengthM float64) []*Road {
	t.Helper()
	var out []*Road
	start := geo.ENU{}
	heading := 0.0
	alt := 180.0
	for i := 0; i < n; i++ {
		b := NewPathBuilder(start, heading, 5)
		b.Straight(lengthM)
		line, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		grade := Deg(float64(i%3) - 1) // -1, 0, +1 degrees
		steps := int(lengthM / ProfileSpacingM)
		grades := make([]float64, steps)
		for j := range grades {
			grades[j] = grade
		}
		prof, err := NewProfileFromGrades(ProfileSpacingM, grades, alt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRoad(
			// Unique ids.
			string(rune('a'+i)), line, prof,
			[]Section{{StartS: 0, EndS: line.Length(), Lanes: 1 + i%2}},
			ClassLocal,
		)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
		start = line.At(line.Length())
		heading += Deg(30) // bend at the junction
		alt = prof.AltitudeAt(prof.Length())
	}
	return out
}

func TestConcatBasics(t *testing.T) {
	roads := chainRoads(t, 3, 400)
	joined, err := Concat("journey", roads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(joined.Length()-1200) > 2 {
		t.Errorf("length = %v, want ~1200", joined.Length())
	}
	// Grades survive per segment.
	if g := joined.GradeAt(200); math.Abs(g-Deg(-1)) > 1e-6 {
		t.Errorf("grade at 200 = %v, want -1 deg", g)
	}
	if g := joined.GradeAt(600); math.Abs(g) > 1e-6 {
		t.Errorf("grade at 600 = %v, want 0", g)
	}
	if g := joined.GradeAt(1000); math.Abs(g-Deg(1)) > 1e-6 {
		t.Errorf("grade at 1000 = %v, want +1 deg", g)
	}
	// Lane sections offset correctly (roads alternate 1 and 2 lanes).
	if got := joined.LanesAt(200); got != 1 {
		t.Errorf("lanes at 200 = %d", got)
	}
	if got := joined.LanesAt(600); got != 2 {
		t.Errorf("lanes at 600 = %d", got)
	}
	// Altitude continuous across junctions.
	for _, s := range []float64{399, 401, 799, 801} {
		d := math.Abs(joined.AltitudeAt(s+1) - joined.AltitudeAt(s))
		if d > 0.2 {
			t.Errorf("altitude step %v at junction s=%v", d, s)
		}
	}
	// Heading bends at the junction.
	d0 := joined.DirectionAt(200)
	d1 := joined.DirectionAt(600)
	if math.Abs(geo.AngleDiff(d0, d1)-Deg(30)) > 0.01 {
		t.Errorf("junction bend = %v, want 30 deg", geo.AngleDiff(d0, d1))
	}
}

func TestConcatSingleRoadPassThrough(t *testing.T) {
	roads := chainRoads(t, 1, 300)
	joined, err := Concat("one", roads)
	if err != nil {
		t.Fatal(err)
	}
	if joined != roads[0] {
		t.Error("single-road concat should return the road itself")
	}
}

func TestConcatErrors(t *testing.T) {
	roads := chainRoads(t, 2, 300)
	if _, err := Concat("", roads); err == nil {
		t.Error("empty id should error")
	}
	if _, err := Concat("x", nil); err == nil {
		t.Error("no roads should error")
	}
	if _, err := Concat("x", []*Road{roads[0], nil}); err == nil {
		t.Error("nil road should error")
	}
	// Disjoint roads must be rejected.
	far, err := StraightRoad("far", 300, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Concat("x", []*Road{roads[1], far}); err == nil {
		t.Error("disjoint roads should error")
	}
}

func TestConcatRouteEdges(t *testing.T) {
	// Concatenate actual network route edges: consecutive edges share
	// nodes, so they join within tolerance.
	net, err := GenerateNetwork(13, NetworkConfig{TargetStreetKM: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Walk a few hops greedily.
	cur := net.Nodes[0].ID
	var roads []*Road
	seen := map[int]bool{cur: true}
	for len(roads) < 4 {
		outs := net.Outgoing(cur)
		var next *Edge
		for _, e := range outs {
			if !seen[e.To] {
				next = e
				break
			}
		}
		if next == nil {
			break
		}
		roads = append(roads, next.Road)
		seen[next.To] = true
		cur = next.To
	}
	if len(roads) < 2 {
		t.Skip("network walk too short")
	}
	joined, err := Concat("walk", roads)
	if err != nil {
		t.Fatal(err)
	}
	var wantLen float64
	for _, r := range roads {
		wantLen += r.Length()
	}
	if math.Abs(joined.Length()-wantLen) > wantLen*0.01 {
		t.Errorf("joined length %v, want ~%v", joined.Length(), wantLen)
	}
}
