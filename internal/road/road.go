package road

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/geo"
)

// Class categorizes a road for traffic-volume assignment (Fig. 10(b) uses
// AADT per street class).
type Class int

// Road classes, from highest to lowest traffic volume.
const (
	ClassArterial Class = iota + 1
	ClassCollector
	ClassLocal
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassArterial:
		return "arterial"
	case ClassCollector:
		return "collector"
	case ClassLocal:
		return "local"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Section is a stretch of road with a constant lane count, per Table III.
type Section struct {
	StartS float64 // arc length where the section begins (m)
	EndS   float64 // arc length where the section ends (m)
	Lanes  int     // lanes in the driving direction
}

// Road is one drivable road: planar geometry, vertical profile, lane
// sections and a class.
type Road struct {
	id       string
	line     *geo.Polyline
	profile  *Profile
	sections []Section
	class    Class
}

// NewRoad assembles a road. The profile must cover the polyline length
// (within one profile spacing) and sections must tile [0, length) in order.
func NewRoad(id string, line *geo.Polyline, profile *Profile, sections []Section, class Class) (*Road, error) {
	if id == "" {
		return nil, errors.New("road: empty id")
	}
	if line == nil || profile == nil {
		return nil, errors.New("road: nil geometry or profile")
	}
	if math.Abs(line.Length()-profile.Length()) > profile.Spacing()+1 {
		return nil, fmt.Errorf("road %s: profile length %.1f does not cover line length %.1f",
			id, profile.Length(), line.Length())
	}
	if len(sections) == 0 {
		sections = []Section{{StartS: 0, EndS: line.Length(), Lanes: 1}}
	}
	prevEnd := 0.0
	for i, sec := range sections {
		if sec.Lanes < 1 {
			return nil, fmt.Errorf("road %s: section %d has %d lanes", id, i, sec.Lanes)
		}
		if math.Abs(sec.StartS-prevEnd) > 1e-6 {
			return nil, fmt.Errorf("road %s: section %d starts at %.2f, want %.2f", id, i, sec.StartS, prevEnd)
		}
		if sec.EndS <= sec.StartS {
			return nil, fmt.Errorf("road %s: section %d is empty", id, i)
		}
		prevEnd = sec.EndS
	}
	if math.Abs(prevEnd-line.Length()) > 1 {
		return nil, fmt.Errorf("road %s: sections end at %.2f, road length %.2f", id, prevEnd, line.Length())
	}
	secs := make([]Section, len(sections))
	copy(secs, sections)
	return &Road{id: id, line: line, profile: profile, sections: secs, class: class}, nil
}

// ID returns the road identifier.
func (r *Road) ID() string { return r.id }

// Class returns the road class.
func (r *Road) Class() Class { return r.class }

// Line returns the planar geometry.
func (r *Road) Line() *geo.Polyline { return r.line }

// Profile returns the vertical profile.
func (r *Road) Profile() *Profile { return r.profile }

// Length returns the road length in meters.
func (r *Road) Length() float64 { return r.line.Length() }

// Sections returns a copy of the lane sections.
func (r *Road) Sections() []Section {
	out := make([]Section, len(r.sections))
	copy(out, r.sections)
	return out
}

// LanesAt returns the lane count at arc length s.
func (r *Road) LanesAt(s float64) int {
	for _, sec := range r.sections {
		if s < sec.EndS {
			return sec.Lanes
		}
	}
	return r.sections[len(r.sections)-1].Lanes
}

// GradeAt returns the true road gradient (radians) at arc length s.
func (r *Road) GradeAt(s float64) float64 { return r.profile.GradeAt(s) }

// AltitudeAt returns the true altitude (m) at arc length s.
func (r *Road) AltitudeAt(s float64) float64 { return r.profile.AltitudeAt(s) }

// PositionAt returns the planar position at arc length s.
func (r *Road) PositionAt(s float64) geo.ENU { return r.line.At(s) }

// DirectionAt returns the road tangent heading (CCW from East) at s.
func (r *Road) DirectionAt(s float64) float64 { return r.line.DirectionAt(s) }

// MeanAbsGradeDeg returns the mean absolute grade in degrees sampled every
// profile spacing; used by experiments to characterize routes.
func (r *Road) MeanAbsGradeDeg(samples int) float64 {
	if samples < 2 {
		samples = 2
	}
	var sum float64
	for i := 0; i < samples; i++ {
		s := r.Length() * float64(i) / float64(samples-1)
		sum += math.Abs(r.GradeAt(s))
	}
	return sum / float64(samples) * 180 / math.Pi
}
