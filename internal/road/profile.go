// Package road models the road infrastructure the estimation system drives
// over: altitude/grade profiles along arc length, lane sections, individual
// roads with planar geometry, an S-curve construction (Figure 5), the
// seven-section evaluation route of Table III, and a procedural city road
// network standing in for the 164.8 km Charlottesville experiment area.
package road

import (
	"errors"
	"fmt"
	"math"
)

// Profile is a vertical road profile: altitude sampled at fixed arc-length
// spacing. Grade is exposed in radians as θ(s) = arcsin(dz/ds), matching the
// ground-truth construction of §III-D of the paper.
type Profile struct {
	spacing float64
	alts    []float64
}

// NewProfile builds a profile from altitude samples (meters) at the given
// spacing (meters). At least two samples are required.
func NewProfile(spacing float64, alts []float64) (*Profile, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("road: invalid profile spacing %v", spacing)
	}
	if len(alts) < 2 {
		return nil, errors.New("road: profile needs at least two altitude samples")
	}
	cp := make([]float64, len(alts))
	copy(cp, alts)
	return &Profile{spacing: spacing, alts: cp}, nil
}

// NewProfileFromGrades integrates a grade series (radians, one value per
// spacing interval) from a starting altitude to produce a profile.
func NewProfileFromGrades(spacing float64, grades []float64, startAlt float64) (*Profile, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("road: invalid profile spacing %v", spacing)
	}
	if len(grades) == 0 {
		return nil, errors.New("road: no grades")
	}
	alts := make([]float64, len(grades)+1)
	alts[0] = startAlt
	for i, g := range grades {
		alts[i+1] = alts[i] + spacing*math.Sin(g)
	}
	return &Profile{spacing: spacing, alts: alts}, nil
}

// Length returns the arc length covered by the profile.
func (p *Profile) Length() float64 {
	return p.spacing * float64(len(p.alts)-1)
}

// Spacing returns the sample spacing in meters.
func (p *Profile) Spacing() float64 { return p.spacing }

// AltitudeAt returns the altitude at arc length s with linear interpolation,
// clamped to the profile range.
func (p *Profile) AltitudeAt(s float64) float64 {
	if s <= 0 {
		return p.alts[0]
	}
	if s >= p.Length() {
		return p.alts[len(p.alts)-1]
	}
	idx := s / p.spacing
	i := int(idx)
	t := idx - float64(i)
	return p.alts[i]*(1-t) + p.alts[i+1]*t
}

// GradeAt returns the road gradient θ at arc length s in radians,
// θ = arcsin(Δz/Δs) over the sample interval containing s.
func (p *Profile) GradeAt(s float64) float64 {
	n := len(p.alts)
	i := int(s / p.spacing)
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	dz := p.alts[i+1] - p.alts[i]
	ratio := dz / p.spacing
	if ratio > 1 {
		ratio = 1
	} else if ratio < -1 {
		ratio = -1
	}
	return math.Asin(ratio)
}

// Altitudes returns a copy of the altitude samples.
func (p *Profile) Altitudes() []float64 {
	out := make([]float64, len(p.alts))
	copy(out, p.alts)
	return out
}

// MaxAbsGradeDeg returns the maximum absolute grade in degrees, a sanity
// metric for generated terrain.
func (p *Profile) MaxAbsGradeDeg() float64 {
	var max float64
	for i := 0; i+1 < len(p.alts); i++ {
		g := math.Abs(p.GradeAt((float64(i) + 0.5) * p.spacing))
		if g > max {
			max = g
		}
	}
	return max * 180 / math.Pi
}
