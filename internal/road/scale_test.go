package road

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// fingerprintNetwork hashes everything a downstream consumer can observe
// about generation order and content: node slice order, IDs and positions,
// edge slice order, endpoints, road IDs, geometry lengths, and the full
// altitude profiles. Two byte-identical networks hash equal; any reordering
// or numeric drift changes the sum.
func fingerprintNetwork(n *Network) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wF := func(v float64) { wU64(math.Float64bits(v)) }
	for _, nd := range n.Nodes {
		wU64(uint64(nd.ID))
		wF(nd.Pos.E)
		wF(nd.Pos.N)
	}
	for _, e := range n.Edges {
		wU64(uint64(e.From))
		wU64(uint64(e.To))
		h.Write([]byte(e.Road.ID()))
		wF(e.Road.Length())
		for _, alt := range e.Road.Profile().Altitudes() {
			wF(alt)
		}
	}
	return h.Sum64()
}

// TestGenerateNetworkDeterministicAtScale pins the GenerateNetwork
// determinism contract on a config large enough to exercise the streamed
// construction paths: the same seed must reproduce node and edge ordering
// (and all derived geometry) byte-for-byte, because BENCH_PR9 sweeps and the
// CCH node ordering both assume it.
func TestGenerateNetworkDeterministicAtScale(t *testing.T) {
	cfg := NetworkConfig{TargetStreetKM: 800, BlockM: 300}
	a, err := GenerateNetwork(99, cfg)
	if err != nil {
		t.Fatalf("generate a: %v", err)
	}
	b, err := GenerateNetwork(99, cfg)
	if err != nil {
		t.Fatalf("generate b: %v", err)
	}
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Fatalf("sizes differ: %d/%d nodes, %d/%d edges",
			len(a.Nodes), len(b.Nodes), len(a.Edges), len(b.Edges))
	}
	if fa, fb := fingerprintNetwork(a), fingerprintNetwork(b); fa != fb {
		t.Fatalf("same seed produced different networks: %x vs %x", fa, fb)
	}
	other, err := GenerateNetwork(100, cfg)
	if err != nil {
		t.Fatalf("generate other: %v", err)
	}
	if fingerprintNetwork(a) == fingerprintNetwork(other) {
		t.Fatal("different seeds produced identical networks")
	}
	// The scale itself: ~800 km at 300 m blocks is thousands of directed
	// edges; a shortfall means the generator silently under-built.
	if len(a.Edges) < 4000 {
		t.Fatalf("expected a country-scale slice (≥4000 directed edges), got %d", len(a.Edges))
	}
}

// TestCountryConfigEdgeFloor pins the 100× config to the ≥10⁵ directed edge
// floor the country-scale routing claims are measured on. Generation at that
// size takes a few seconds, so the full check only runs outside -short; the
// closed-form street-count estimate is asserted always.
func TestCountryConfigEdgeFloor(t *testing.T) {
	cfg := CountryConfig(100)
	if cfg.TargetStreetKM != 16480 || cfg.BlockM != 300 {
		t.Fatalf("CountryConfig(100) = %+v, want 16480 km at 300 m blocks", cfg)
	}
	// w*(h-1)+h*(w-1) streets, both directions.
	side := int(math.Round((1 + math.Sqrt(1+2*cfg.TargetStreetKM*1000/cfg.BlockM)) / 2))
	if est := 2 * 2 * side * (side - 1); est < 100_000 {
		t.Fatalf("100× config estimates only %d directed edges", est)
	}
	if testing.Short() {
		t.Skip("skipping 100× generation in -short mode")
	}
	net, err := GenerateNetwork(1827, cfg)
	if err != nil {
		t.Fatalf("generate 100×: %v", err)
	}
	if len(net.Edges) < 100_000 {
		t.Fatalf("100× network has %d directed edges, want ≥ 100000", len(net.Edges))
	}
}

// TestNetworkCSRAdjacency pins the CSR index to the documented behavior:
// per-node edge order equals edge-slice insertion order, unknown node IDs
// return nil, and forward/reverse views cover every edge exactly once.
func TestNetworkCSRAdjacency(t *testing.T) {
	net, err := GenerateNetwork(7, NetworkConfig{TargetStreetKM: 8})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	seenOut := make(map[*Edge]bool, len(net.Edges))
	edgePos := make(map[*Edge]int, len(net.Edges))
	for i, e := range net.Edges {
		edgePos[e] = i
	}
	for _, nd := range net.Nodes {
		for _, e := range net.Outgoing(nd.ID) {
			if e.From != nd.ID {
				t.Fatalf("Outgoing(%d) returned edge %d→%d", nd.ID, e.From, e.To)
			}
			if seenOut[e] {
				t.Fatalf("edge %s appears twice in forward adjacency", e.Road.ID())
			}
			seenOut[e] = true
		}
		// Insertion order within the node: positions in net.Edges ascend.
		pos := -1
		for _, e := range net.Outgoing(nd.ID) {
			if at := edgePos[e]; at <= pos {
				t.Fatalf("Outgoing(%d) order does not follow edge insertion order", nd.ID)
			} else {
				pos = at
			}
		}
	}
	if len(seenOut) != len(net.Edges) {
		t.Fatalf("forward adjacency covers %d of %d edges", len(seenOut), len(net.Edges))
	}
	seenIn := make(map[*Edge]bool, len(net.Edges))
	for _, nd := range net.Nodes {
		for _, e := range net.Incoming(nd.ID) {
			if e.To != nd.ID {
				t.Fatalf("Incoming(%d) returned edge %d→%d", nd.ID, e.From, e.To)
			}
			seenIn[e] = true
		}
	}
	if len(seenIn) != len(net.Edges) {
		t.Fatalf("reverse adjacency covers %d of %d edges", len(seenIn), len(net.Edges))
	}
	if net.Outgoing(-42) != nil || net.Incoming(-42) != nil {
		t.Fatal("unknown node id must return nil adjacency")
	}
}

// The map→CSR satellite benchmark: a full-network adjacency sweep (every
// node's outgoing edges touched once, the access pattern of one Dijkstra
// settle pass) over the CSR index vs the legacy per-node map layout.
func adjacencySweep(b *testing.B, outgoing func(id int) []*Edge, nodes []Node) {
	b.Helper()
	var sum float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nd := range nodes {
			for _, e := range outgoing(nd.ID) {
				sum += e.Road.Length()
			}
		}
	}
	if sum < 0 {
		b.Fatal("unreachable")
	}
}

func BenchmarkRouteScaleAdjacencyCSR(b *testing.B) {
	net, err := Charlottesville()
	if err != nil {
		b.Fatalf("network: %v", err)
	}
	adjacencySweep(b, net.Outgoing, net.Nodes)
}

func BenchmarkRouteScaleAdjacencyMap(b *testing.B) {
	net, err := Charlottesville()
	if err != nil {
		b.Fatalf("network: %v", err)
	}
	adj := make(map[int][]*Edge)
	for _, e := range net.Edges {
		adj[e.From] = append(adj[e.From], e)
	}
	adjacencySweep(b, func(id int) []*Edge { return adj[id] }, net.Nodes)
}
