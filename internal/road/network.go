package road

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/geo"
)

// Node is a road-network junction.
type Node struct {
	ID  int
	Pos geo.ENU
}

// Edge is a directed drivable road between two nodes. The Road geometry runs
// from From to To.
type Edge struct {
	From, To int
	Road     *Road
}

// Network is a road graph standing in for the city road network of
// Figure 7(a). Edges are directed; the generator adds both directions for
// every street. Adjacency is CSR: all edges leaving (entering) a node sit in
// one contiguous slice of a single flat array, so Outgoing/Incoming return
// subslices without chasing a per-node heap allocation — on country-scale
// graphs (10⁵–10⁶ edges) the flat layout keeps graph searches cache-resident
// where the old map[int][]*Edge layout missed on every node.
type Network struct {
	Nodes []Node
	Edges []*Edge

	idx      map[int]int32 // node ID → position in Nodes (sparse-ID fallback)
	dense    bool          // node IDs equal slice positions; skip the map
	outOff   []int32       // CSR offsets into outEdges, len(Nodes)+1
	outEdges []*Edge       // edges grouped by From, insertion order within a node
	inOff    []int32       // CSR offsets into inEdges
	inEdges  []*Edge       // edges grouped by To, insertion order within a node
}

// pos maps a node ID to its position in Nodes, -1 if unknown. Generated
// networks number nodes 0..n-1 in slice order, so the common case is a bounds
// check instead of a map probe — that, plus the flat CSR arrays, is what makes
// an adjacency sweep cheaper than the legacy map[int][]*Edge layout.
func (n *Network) pos(id int) int32 {
	if n.dense {
		if id < 0 || id >= len(n.Nodes) {
			return -1
		}
		return int32(id)
	}
	i, ok := n.idx[id]
	if !ok {
		return -1
	}
	return i
}

// NewNetwork assembles a network and builds the forward and reverse CSR
// adjacency indices. Per-node edge order is the edge-slice insertion order,
// so the same input always yields the same adjacency (see GenerateNetwork's
// determinism contract).
func NewNetwork(nodes []Node, edges []*Edge) (*Network, error) {
	if len(nodes) == 0 {
		return nil, errors.New("road: network needs nodes")
	}
	n := &Network{Nodes: nodes, Edges: edges, idx: make(map[int]int32, len(nodes)), dense: true}
	for i, node := range nodes {
		if _, dup := n.idx[node.ID]; dup {
			return nil, fmt.Errorf("road: duplicate node id %d", node.ID)
		}
		n.idx[node.ID] = int32(i)
		if node.ID != i {
			n.dense = false
		}
	}
	n.outOff = make([]int32, len(nodes)+1)
	n.inOff = make([]int32, len(nodes)+1)
	for _, e := range edges {
		from, okF := n.idx[e.From]
		to, okT := n.idx[e.To]
		if !okF || !okT {
			return nil, fmt.Errorf("road: edge %s references unknown node %d->%d", e.Road.ID(), e.From, e.To)
		}
		n.outOff[from+1]++
		n.inOff[to+1]++
	}
	for i := 0; i < len(nodes); i++ {
		n.outOff[i+1] += n.outOff[i]
		n.inOff[i+1] += n.inOff[i]
	}
	n.outEdges = make([]*Edge, len(edges))
	n.inEdges = make([]*Edge, len(edges))
	outCur := make([]int32, len(nodes))
	inCur := make([]int32, len(nodes))
	for _, e := range edges {
		from, to := n.idx[e.From], n.idx[e.To]
		n.outEdges[n.outOff[from]+outCur[from]] = e
		outCur[from]++
		n.inEdges[n.inOff[to]+inCur[to]] = e
		inCur[to]++
	}
	return n, nil
}

// Outgoing returns the edges leaving node id (a shared CSR subslice — do not
// mutate).
func (n *Network) Outgoing(id int) []*Edge {
	i := n.pos(id)
	if i < 0 {
		return nil
	}
	return n.outEdges[n.outOff[i]:n.outOff[i+1]]
}

// Incoming returns the edges entering node id — the reverse adjacency used
// by backward graph searches (e.g. the bidirectional eco-router).
func (n *Network) Incoming(id int) []*Edge {
	i := n.pos(id)
	if i < 0 {
		return nil
	}
	return n.inEdges[n.inOff[i]:n.inOff[i+1]]
}

// TotalLengthM returns the summed length of all directed edges divided by
// two (each street appears in both directions), i.e. the street length.
func (n *Network) TotalLengthM() float64 {
	var sum float64
	for _, e := range n.Edges {
		sum += e.Road.Length()
	}
	return sum / 2
}

// NetworkConfig controls the procedural city generator.
type NetworkConfig struct {
	// TargetStreetKM is the total (undirected) street length to generate;
	// the Charlottesville experiment area is 164.8 km.
	TargetStreetKM float64
	// BlockM is the nominal grid block size (default 450 m).
	BlockM float64
	// JitterFrac perturbs node positions by this fraction of BlockM
	// (default 0.25) so streets bend like a real city.
	JitterFrac float64
	// Terrain provides elevations — the procedural field by default, or an
	// imported GridTerrain for real topography. A default Terrain is
	// derived from the seed when nil.
	Terrain ElevationField
}

func (c NetworkConfig) withDefaults(seed int64) NetworkConfig {
	if c.TargetStreetKM <= 0 {
		c.TargetStreetKM = 164.8
	}
	if c.BlockM <= 0 {
		c.BlockM = 450
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.25
	}
	if c.Terrain == nil {
		c.Terrain = NewTerrain(seed, TerrainConfig{})
	}
	return c
}

// GenerateNetwork builds a deterministic synthetic city road network whose
// total street length approximates cfg.TargetStreetKM. The layout is a
// jittered grid with some diagonal connectors; profiles come from the
// terrain field; classes are assigned so arterials form through-streets.
//
// Determinism contract: the same (seed, cfg) pair always yields byte-
// identical output — the same node slice order, node IDs and positions, the
// same edge slice order, and the same per-road IDs, geometry and profiles —
// at every scale, from the 164.8 km city to country-size 10⁵–10⁶-edge
// graphs. Everything derives from one sequentially-consumed rand source and
// index-ordered loops (no map iteration), which is what makes BENCH_PR9-
// style cross-run comparisons and the CCH node ordering reproducible.
// Construction streams: node and edge storage is preallocated from the grid
// dimensions and every pass is linear in the street count.
func GenerateNetwork(seed int64, cfg NetworkConfig) (*Network, error) {
	cfg = cfg.withDefaults(seed)
	rng := rand.New(rand.NewSource(seed))

	// A w x h grid has w*(h-1) + h*(w-1) streets of ~BlockM each.
	// Solve for a square-ish grid hitting the target length.
	targetM := cfg.TargetStreetKM * 1000
	side := int(math.Round((1 + math.Sqrt(1+2*targetM/cfg.BlockM)) / 2))
	if side < 2 {
		side = 2
	}
	w, h := side, side
	// Shrink until the expected length is at or below target.
	for float64(w*(h-1)+h*(w-1))*cfg.BlockM > targetM && w > 2 {
		w--
	}

	nodes := make([]Node, 0, w*h)
	idAt := func(ix, iy int) int { return iy*w + ix }
	for iy := 0; iy < h; iy++ {
		for ix := 0; ix < w; ix++ {
			jx := (rng.Float64()*2 - 1) * cfg.JitterFrac * cfg.BlockM
			jy := (rng.Float64()*2 - 1) * cfg.JitterFrac * cfg.BlockM
			nodes = append(nodes, Node{
				ID:  idAt(ix, iy),
				Pos: geo.ENU{E: float64(ix)*cfg.BlockM + jx, N: float64(iy)*cfg.BlockM + jy},
			})
		}
	}

	// Both directions of every grid street plus ~6% diagonals.
	edges := make([]*Edge, 0, 2*(w*(h-1)+h*(w-1))+w*h/8)
	var builtM float64
	addStreet := func(a, b Node) error {
		if builtM >= targetM {
			return nil
		}
		cls := classify(a, b, w, h, cfg.BlockM, rng)
		fwd, err := buildStreet(fmt.Sprintf("st-%d-%d", a.ID, b.ID), a.Pos, b.Pos, cls, cfg, rng)
		if err != nil {
			return err
		}
		rev, err := buildStreet(fmt.Sprintf("st-%d-%d", b.ID, a.ID), b.Pos, a.Pos, cls, cfg, rng)
		if err != nil {
			return err
		}
		edges = append(edges,
			&Edge{From: a.ID, To: b.ID, Road: fwd},
			&Edge{From: b.ID, To: a.ID, Road: rev},
		)
		builtM += fwd.Length()
		return nil
	}

	for iy := 0; iy < h; iy++ {
		for ix := 0; ix < w; ix++ {
			a := nodes[idAt(ix, iy)]
			if ix+1 < w {
				if err := addStreet(a, nodes[idAt(ix+1, iy)]); err != nil {
					return nil, err
				}
			}
			if iy+1 < h {
				if err := addStreet(a, nodes[idAt(ix, iy+1)]); err != nil {
					return nil, err
				}
			}
			// Occasional diagonal connector for variety.
			if ix+1 < w && iy+1 < h && rng.Float64() < 0.06 {
				if err := addStreet(a, nodes[idAt(ix+1, iy+1)]); err != nil {
					return nil, err
				}
			}
		}
	}
	return NewNetwork(nodes, edges)
}

// classify makes middle rows/columns arterial through-streets, edges local.
func classify(a, b Node, w, h int, blockM float64, rng *rand.Rand) Class {
	midE := float64(w-1) * blockM / 2
	midN := float64(h-1) * blockM / 2
	cE := (a.Pos.E + b.Pos.E) / 2
	cN := (a.Pos.N + b.Pos.N) / 2
	distMid := math.Min(math.Abs(cE-midE), math.Abs(cN-midN))
	switch {
	case distMid < blockM*0.8:
		return ClassArterial
	case rng.Float64() < 0.35:
		return ClassCollector
	default:
		return ClassLocal
	}
}

// buildStreet creates a single directed road between two junctions with a
// gentle midpoint bend and a terrain-derived profile.
func buildStreet(id string, from, to geo.ENU, cls Class, cfg NetworkConfig, rng *rand.Rand) (*Road, error) {
	heading := math.Atan2(to.N-from.N, to.E-from.E)
	length := math.Hypot(to.E-from.E, to.N-from.N)
	// Bowed midpoint gives curvature without leaving the endpoints.
	bow := (rng.Float64()*2 - 1) * 0.06 * length
	mid := geo.ENU{
		E: (from.E+to.E)/2 - bow*math.Sin(heading),
		N: (from.N+to.N)/2 + bow*math.Cos(heading),
	}
	pts := interpolateQuadratic(from, mid, to, int(math.Max(8, length/25)))
	line, err := geo.NewPolyline(pts)
	if err != nil {
		return nil, fmt.Errorf("road: street %s geometry: %w", id, err)
	}
	prof, err := ProfileAlongField(cfg.Terrain, line, 5)
	if err != nil {
		return nil, fmt.Errorf("road: street %s profile: %w", id, err)
	}
	lanes := 1
	if cls == ClassArterial {
		lanes = 2
	}
	sections := []Section{{StartS: 0, EndS: line.Length(), Lanes: lanes}}
	return NewRoad(id, line, prof, sections, cls)
}

// interpolateQuadratic samples a quadratic Bezier through (a, ctrl, b).
func interpolateQuadratic(a, ctrl, b geo.ENU, n int) []geo.ENU {
	if n < 2 {
		n = 2
	}
	out := make([]geo.ENU, 0, n+1)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		u := 1 - t
		out = append(out, geo.ENU{
			E: u*u*a.E + 2*u*t*ctrl.E + t*t*b.E,
			N: u*u*a.N + 2*u*t*ctrl.N + t*t*b.N,
		})
	}
	return out
}

// Charlottesville returns the deterministic stand-in for the paper's
// 164.8 km experiment network (see DESIGN.md substitutions).
func Charlottesville() (*Network, error) {
	return GenerateNetwork(1827, NetworkConfig{TargetStreetKM: 164.8})
}

// CountryConfig scales the Charlottesville-shaped generator to scale× the
// paper's 164.8 km street length. Large scales shrink the block size toward
// 300 m (denser junctions, like a national network's town cores) so the
// 100× config lands at ~10⁵ directed edges — the country-scale routing
// setting of DESIGN.md §13. The output stays deterministic per seed at any
// scale (see GenerateNetwork).
func CountryConfig(scale float64) NetworkConfig {
	if scale <= 0 {
		scale = 1
	}
	cfg := NetworkConfig{TargetStreetKM: 164.8 * scale}
	if scale >= 25 {
		cfg.BlockM = 300
	}
	return cfg
}
