package road

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/geo"
)

// PathBuilder accumulates planar road geometry from straight and circular-arc
// primitives, emitting polyline vertices every stepM meters. It is the tool
// the synthetic route constructors (red route, S-curves, network edges) use.
type PathBuilder struct {
	stepM   float64
	pos     geo.ENU
	heading float64 // CCW from East
	pts     []geo.ENU
}

// NewPathBuilder starts a path at start with the given heading. stepM
// controls vertex density (default 5 m when <= 0).
func NewPathBuilder(start geo.ENU, heading, stepM float64) *PathBuilder {
	if stepM <= 0 {
		stepM = 5
	}
	return &PathBuilder{stepM: stepM, pos: start, heading: heading, pts: []geo.ENU{start}}
}

// Straight extends the path by length meters along the current heading.
func (b *PathBuilder) Straight(length float64) *PathBuilder {
	if length <= 0 {
		return b
	}
	n := int(math.Ceil(length / b.stepM))
	for i := 1; i <= n; i++ {
		d := length * float64(i) / float64(n)
		b.push(geo.ENU{
			E: b.pos.E + d*math.Cos(b.heading),
			N: b.pos.N + d*math.Sin(b.heading),
		})
	}
	b.pos = b.pts[len(b.pts)-1]
	return b
}

// Arc turns through angle radians (positive = left/CCW) along a circular arc
// of the given radius.
func (b *PathBuilder) Arc(radius, angle float64) *PathBuilder {
	if radius <= 0 || angle == 0 {
		return b
	}
	arcLen := math.Abs(angle) * radius
	n := int(math.Ceil(arcLen / b.stepM))
	if n < 2 {
		n = 2
	}
	sign := 1.0
	if angle < 0 {
		sign = -1
	}
	// Center of the turning circle is perpendicular to the heading.
	cx := b.pos.E - sign*radius*math.Sin(b.heading)
	cy := b.pos.N + sign*radius*math.Cos(b.heading)
	startAngle := math.Atan2(b.pos.N-cy, b.pos.E-cx)
	for i := 1; i <= n; i++ {
		a := startAngle + angle*float64(i)/float64(n)
		b.push(geo.ENU{E: cx + radius*math.Cos(a), N: cy + radius*math.Sin(a)})
	}
	b.pos = b.pts[len(b.pts)-1]
	b.heading = geo.WrapAngle(b.heading + angle)
	return b
}

// SCurve appends two opposite arcs of equal radius and sweep, the Figure 5
// "S-sharp road" shape. Positive angle starts with a left turn.
func (b *PathBuilder) SCurve(radius, angle float64) *PathBuilder {
	return b.Arc(radius, angle).Arc(radius, -angle)
}

func (b *PathBuilder) push(p geo.ENU) {
	last := b.pts[len(b.pts)-1]
	if math.Hypot(p.E-last.E, p.N-last.N) < 1e-9 {
		return
	}
	b.pts = append(b.pts, p)
}

// Heading returns the current path heading.
func (b *PathBuilder) Heading() float64 { return b.heading }

// Length returns the accumulated path length so far.
func (b *PathBuilder) Length() float64 {
	var sum float64
	for i := 1; i < len(b.pts); i++ {
		sum += math.Hypot(b.pts[i].E-b.pts[i-1].E, b.pts[i].N-b.pts[i-1].N)
	}
	return sum
}

// Build returns the accumulated polyline.
func (b *PathBuilder) Build() (*geo.Polyline, error) {
	if len(b.pts) < 2 {
		return nil, errors.New("road: path has no extent; add segments before Build")
	}
	return geo.NewPolyline(b.pts)
}

// SectionSpec describes one vertical section of a synthetic route: length,
// peak grade (radians, signed) and lane count. The grade within the section
// follows a smooth sin² bump that is zero at both ends, so sections join
// with continuous grade.
type SectionSpec struct {
	LengthM      float64
	PeakGradeRad float64
	Lanes        int
}

// BuildProfileFromSections integrates the section grade bumps into an
// altitude profile at the given spacing and returns the profile plus the
// lane Section table.
func BuildProfileFromSections(specs []SectionSpec, spacing, startAlt float64) (*Profile, []Section, error) {
	if len(specs) == 0 {
		return nil, nil, errors.New("road: no section specs")
	}
	if spacing <= 0 {
		return nil, nil, fmt.Errorf("road: invalid spacing %v", spacing)
	}
	var total float64
	sections := make([]Section, 0, len(specs))
	for i, sp := range specs {
		if sp.LengthM <= 0 {
			return nil, nil, fmt.Errorf("road: section %d has length %v", i, sp.LengthM)
		}
		if sp.Lanes < 1 {
			return nil, nil, fmt.Errorf("road: section %d has %d lanes", i, sp.Lanes)
		}
		sections = append(sections, Section{StartS: total, EndS: total + sp.LengthM, Lanes: sp.Lanes})
		total += sp.LengthM
	}
	n := int(math.Round(total / spacing))
	grades := make([]float64, n)
	for i := range grades {
		s := (float64(i) + 0.5) * spacing
		grades[i] = gradeAtSpec(specs, sections, s)
	}
	prof, err := NewProfileFromGrades(spacing, grades, startAlt)
	if err != nil {
		return nil, nil, err
	}
	return prof, sections, nil
}

// gradeAtSpec shapes each section's grade as a trapezoid: a smooth ramp over
// the first 20% of the section, a constant hold at the peak grade, and a
// ramp back to zero over the last 20% — the vertical-curve-plus-tangent
// profile real roads use, with grade continuous across section joins.
func gradeAtSpec(specs []SectionSpec, sections []Section, s float64) float64 {
	const rampFrac = 0.2
	for i, sec := range sections {
		if s >= sec.StartS && s < sec.EndS {
			frac := (s - sec.StartS) / (sec.EndS - sec.StartS)
			var shape float64
			switch {
			case frac < rampFrac:
				u := frac / rampFrac
				shape = 0.5 * (1 - math.Cos(math.Pi*u))
			case frac > 1-rampFrac:
				u := (1 - frac) / rampFrac
				shape = 0.5 * (1 - math.Cos(math.Pi*u))
			default:
				shape = 1
			}
			return specs[i].PeakGradeRad * shape
		}
	}
	return 0
}
