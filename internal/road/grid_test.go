package road

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"roadgrade/internal/geo"
)

func TestNewGridTerrainValidation(t *testing.T) {
	z4 := []float64{1, 2, 3, 4}
	if _, err := NewGridTerrain(0, 0, 0, 2, 2, z4); err == nil {
		t.Error("zero cell should error")
	}
	if _, err := NewGridTerrain(0, 0, 10, 1, 2, z4[:2]); err == nil {
		t.Error("1 row should error")
	}
	if _, err := NewGridTerrain(0, 0, 10, 2, 2, z4[:3]); err == nil {
		t.Error("wrong sample count should error")
	}
	g, err := NewGridTerrain(0, 0, 10, 2, 2, z4)
	if err != nil {
		t.Fatal(err)
	}
	// Constructor copies the input.
	z4[0] = 99
	if g.ElevationAt(geo.ENU{}) != 1 {
		t.Error("grid aliases caller slice")
	}
}

func TestGridBilinearInterpolation(t *testing.T) {
	// z = E/10 + 2*N/10 over a 3x3 grid with 10 m cells: bilinear
	// interpolation reproduces a plane exactly.
	var z []float64
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			z = append(z, float64(c)+2*float64(r))
		}
	}
	g, err := NewGridTerrain(0, 0, 10, 3, 3, z)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		e, n, want float64
	}{
		{0, 0, 0},
		{10, 0, 1},
		{0, 10, 2},
		{5, 5, 1.5},
		{15, 15, 4.5},
		{20, 20, 6},
		// Clamped outside.
		{-5, 0, 0},
		{25, 25, 6},
	}
	for _, tt := range tests {
		if got := g.ElevationAt(geo.ENU{E: tt.e, N: tt.n}); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("ElevationAt(%v,%v) = %v, want %v", tt.e, tt.n, got, tt.want)
		}
	}
}

func TestGridCSVRoundTrip(t *testing.T) {
	src := NewTerrain(5, TerrainConfig{})
	g, err := SampleToGrid(src, -200, -100, 50, 12, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGridCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGridCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geo.ENU{{E: 0, N: 0}, {E: 123, N: 77}, {E: -150, N: 400}} {
		if a, b := g.ElevationAt(p), got.ElevationAt(p); math.Abs(a-b) > 1e-9 {
			t.Errorf("round trip elevation at %+v: %v vs %v", p, a, b)
		}
	}
}

func TestReadGridCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad-header", "nope,1,2\n1,2\n3,4\n"},
		{"bad-float-header", "grid,x,0,10,2,2\n1,2\n3,4\n"},
		{"bad-rows", "grid,0,0,10,x,2\n1,2\n3,4\n"},
		{"bad-cols", "grid,0,0,10,2,x\n1,2\n3,4\n"},
		{"row-count", "grid,0,0,10,3,2\n1,2\n3,4\n"},
		{"col-count", "grid,0,0,10,2,2\n1,2,3\n3,4\n"},
		{"bad-cell", "grid,0,0,10,2,2\n1,x\n3,4\n"},
		{"nan-cell", "grid,0,0,10,2,2\n1,NaN\n3,4\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadGridCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSampleToGridMatchesSource(t *testing.T) {
	src := NewTerrain(9, TerrainConfig{})
	g, err := SampleToGrid(src, 0, 0, 20, 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	// At grid nodes the sampled grid equals the source exactly; between
	// nodes, bilinear interpolation of a smooth field stays close.
	var worst float64
	for e := 5.0; e < 560; e += 37 {
		for n := 5.0; n < 560; n += 41 {
			p := geo.ENU{E: e, N: n}
			if d := math.Abs(g.ElevationAt(p) - src.ElevationAt(p)); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.5 {
		t.Errorf("worst grid interpolation error %v m over 20 m cells", worst)
	}
	// Errors.
	if _, err := SampleToGrid(nil, 0, 0, 10, 4, 4); err == nil {
		t.Error("nil field should error")
	}
	if _, err := SampleToGrid(src, 0, 0, 0, 4, 4); err == nil {
		t.Error("bad spec should error")
	}
}

func TestGridDrivesRoadProfile(t *testing.T) {
	// A road built over an imported grid behaves like any other road.
	var z []float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 40; c++ {
			z = append(z, float64(c)*0.5) // steady eastward climb: 0.5 m per 25 m
		}
	}
	g, err := NewGridTerrain(0, -30, 25, 4, 40, z)
	if err != nil {
		t.Fatal(err)
	}
	b := NewPathBuilder(geo.ENU{}, 0, 5)
	b.Straight(900)
	line, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := g.ProfileAlong(line, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRoad("grid-road", line, prof, nil, ClassLocal)
	if err != nil {
		t.Fatal(err)
	}
	wantGrade := math.Asin(0.5 / 25)
	if got := r.GradeAt(450); math.Abs(got-wantGrade) > 1e-6 {
		t.Errorf("grid road grade = %v, want %v", got, wantGrade)
	}
}

func TestProfileAlongFieldNil(t *testing.T) {
	b := NewPathBuilder(geo.ENU{}, 0, 5)
	b.Straight(100)
	line, _ := b.Build()
	if _, err := ProfileAlongField(nil, line, 5); err == nil {
		t.Error("nil field should error")
	}
}

func BenchmarkGridElevationAt(b *testing.B) {
	src := NewTerrain(3, TerrainConfig{})
	g, err := SampleToGrid(src, 0, 0, 30, 50, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ElevationAt(geo.ENU{E: float64(i % 1400), N: float64((i * 7) % 1400)})
	}
}
