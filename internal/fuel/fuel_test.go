package fuel

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/road"
)

func TestTableIIValid(t *testing.T) {
	if err := TableII().Validate(); err != nil {
		t.Fatalf("TableII invalid: %v", err)
	}
	if PaperTableII[0] != 0.0545 || PaperTableII[5] != 1.479 {
		t.Error("printed Table II constants changed")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*VSPParams)
	}{
		{"gge", func(p *VSPParams) { p.GGEWhPerGallon = 0 }},
		{"eff-zero", func(p *VSPParams) { p.Efficiency = 0 }},
		{"eff-big", func(p *VSPParams) { p.Efficiency = 1.5 }},
		{"mass", func(p *VSPParams) { p.MassTon = 0 }},
		{"idle", func(p *VSPParams) { p.IdleGPH = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := TableII()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestRateGPHPlausible(t *testing.T) {
	p := TableII()
	v := 40.0 / 3.6
	flat := p.RateGPH(v, 0, 0)
	// A 1.5-ton car cruising at 40 km/h burns a fraction of a gallon/hour.
	if flat < 0.2 || flat > 1.2 {
		t.Errorf("flat cruise fuel = %v gal/h, implausible", flat)
	}
}

func TestRateGPHGradeEffect(t *testing.T) {
	p := TableII()
	v := 40.0 / 3.6
	flat := p.RateGPH(v, 0, 0)
	up5 := p.RateGPH(v, 0, road.Deg(5))
	down5 := p.RateGPH(v, 0, road.Deg(-5))
	// Frey et al. [2]: fuel can increase ~40%+ from 0° to 5°; our physical
	// model gives substantially more than that at steady speed.
	if up5 < flat*1.4 {
		t.Errorf("uphill 5° fuel %v not >= 1.4x flat %v", up5, flat)
	}
	// Downhill clamps to idle, never negative.
	if down5 != p.IdleGPH {
		t.Errorf("downhill fuel %v, want idle %v", down5, p.IdleGPH)
	}
	// Monotone in grade over the driving range.
	prev := -1.0
	for g := -6.0; g <= 6; g += 0.5 {
		cur := p.RateGPH(v, 0, road.Deg(g))
		if cur < prev {
			t.Fatalf("fuel not monotone at grade %v", g)
		}
		prev = cur
	}
}

// TestRateGPHGuards: corrupted samples — negative speed, NaN, ±Inf in any
// argument — must return exactly 0 gph (the one value below the idle floor),
// while every valid input stays bit-identical to the unguarded arithmetic.
func TestRateGPHGuards(t *testing.T) {
	p := TableII()
	nan, inf := math.NaN(), math.Inf(1)
	bad := []struct {
		name    string
		v, a, g float64
	}{
		{"neg-speed", -1, 0, 0},
		{"neg-speed-tiny", -1e-300, 0, 0},
		{"nan-speed", nan, 0, 0},
		{"inf-speed", inf, 0, 0},
		{"neg-inf-speed", -inf, 0, 0},
		{"nan-accel", 10, nan, 0},
		{"inf-accel", 10, inf, 0},
		{"nan-grade", 10, 0, nan},
		{"inf-grade", 10, 0, -inf},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.RateGPH(tt.v, tt.a, tt.g); got != 0 {
				t.Errorf("RateGPH(%v, %v, %v) = %v, want exactly 0", tt.v, tt.a, tt.g, got)
			}
		})
	}
	// Valid inputs: bit-identical to the raw Eq. (7) evaluation with the
	// idle floor — the guard must not perturb the arithmetic path.
	good := []struct {
		name    string
		v, a, g float64
	}{
		{"flat-cruise", 40.0 / 3.6, 0, 0},
		{"zero-speed", 0, 0, 0},
		{"uphill", 11.11, 0.3, 0.05},
		{"downhill", 25, -1, -0.08},
	}
	for _, tt := range good {
		t.Run(tt.name, func(t *testing.T) {
			m := p.MassTon
			watts := p.BaseWatts + p.A*tt.v*tt.v*tt.v + p.B*m*tt.v*math.Sin(tt.g) +
				p.C*m*tt.v + 1000*m*tt.a*tt.v + p.D*m*tt.a
			want := watts / (p.GGEWhPerGallon * p.Efficiency)
			if want < p.IdleGPH {
				want = p.IdleGPH
			}
			if got := p.RateGPH(tt.v, tt.a, tt.g); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("RateGPH(%v, %v, %v) = %v, want bit-identical %v", tt.v, tt.a, tt.g, got, want)
			}
		})
	}
}

func TestRateGPHAccelerationEffect(t *testing.T) {
	p := TableII()
	v := 40.0 / 3.6
	if p.RateGPH(v, 1.5, 0) <= p.RateGPH(v, 0, 0) {
		t.Error("acceleration should cost fuel")
	}
}

func TestTripFuel(t *testing.T) {
	p := TableII()
	n := 3600 * 20 // one hour at 20 Hz
	v := make([]float64, n)
	a := make([]float64, n)
	g := make([]float64, n)
	for i := range v {
		v[i] = 40.0 / 3.6
	}
	total, err := TripFuel(p, 0.05, v, a, g)
	if err != nil {
		t.Fatal(err)
	}
	want := p.RateGPH(40.0/3.6, 0, 0)
	if math.Abs(total-want) > want*0.01 {
		t.Errorf("one-hour trip fuel %v, want %v", total, want)
	}
	// Errors.
	if _, err := TripFuel(p, 0, v, a, g); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := TripFuel(p, 0.05, v[:5], a, g); err == nil {
		t.Error("length mismatch should error")
	}
	bad := p
	bad.MassTon = 0
	if _, err := TripFuel(bad, 0.05, v, a, g); err == nil {
		t.Error("invalid params should error")
	}
}

func TestEmissionGPH(t *testing.T) {
	if got := EmissionGPH(2, CO2GramsPerGallon); got != 17816 {
		t.Errorf("CO2 emission = %v", got)
	}
	if got := EmissionGPH(1, PM25GramsPerGallon); got != 0.084 {
		t.Errorf("PM2.5 emission = %v", got)
	}
}

func TestRoadFuelAt(t *testing.T) {
	up, err := road.StraightRoad("up", 500, road.Deg(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := road.StraightRoad("flat", 500, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := TableII()
	v := 40.0 / 3.6
	rfUp, err := RoadFuelAt(up, v, TrueGrade, p)
	if err != nil {
		t.Fatal(err)
	}
	rfFlat, err := RoadFuelAt(flat, v, TrueGrade, p)
	if err != nil {
		t.Fatal(err)
	}
	if rfUp.MeanGPH <= rfFlat.MeanGPH {
		t.Errorf("uphill road fuel %v <= flat %v", rfUp.MeanGPH, rfFlat.MeanGPH)
	}
	if math.Abs(rfUp.MeanGradeDeg-3) > 0.1 {
		t.Errorf("mean grade = %v", rfUp.MeanGradeDeg)
	}
	// FlatGrade func zeroes the gradient.
	rfForced, err := RoadFuelAt(up, v, FlatGrade, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rfForced.MeanGPH-rfFlat.MeanGPH) > 1e-9 {
		t.Errorf("FlatGrade fuel %v != flat road %v", rfForced.MeanGPH, rfFlat.MeanGPH)
	}
	// Errors.
	if _, err := RoadFuelAt(nil, v, TrueGrade, p); err == nil {
		t.Error("nil road should error")
	}
	if _, err := RoadFuelAt(up, 0, TrueGrade, p); err == nil {
		t.Error("zero speed should error")
	}
	if _, err := RoadFuelAt(up, v, nil, p); err == nil {
		t.Error("nil grade func should error")
	}
}

func TestNetworkFuelAndUplift(t *testing.T) {
	net, err := road.GenerateNetwork(9, road.NetworkConfig{TargetStreetKM: 12})
	if err != nil {
		t.Fatal(err)
	}
	p := TableII()
	v := 40.0 / 3.6
	fuels, err := NetworkFuel(net, v, TrueGrade, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fuels) != len(net.Edges) {
		t.Fatalf("fuels %d != edges %d", len(fuels), len(net.Edges))
	}
	uplift, err := FuelUplift(net, v, TrueGrade, p)
	if err != nil {
		t.Fatal(err)
	}
	// Hilly terrain must raise network fuel versus the flat assumption;
	// the paper reports +33.4%. Accept a broad band around it.
	if uplift < 0.1 || uplift > 0.9 {
		t.Errorf("fuel uplift = %v, want within (0.1, 0.9)", uplift)
	}
	if _, err := NetworkFuel(nil, v, TrueGrade, p); err == nil {
		t.Error("nil network should error")
	}
}

func TestAADTByClass(t *testing.T) {
	if AADT(road.ClassArterial, nil) <= AADT(road.ClassCollector, nil) {
		t.Error("arterial AADT should exceed collector")
	}
	if AADT(road.ClassCollector, nil) <= AADT(road.ClassLocal, nil) {
		t.Error("collector AADT should exceed local")
	}
	rng := rand.New(rand.NewSource(1))
	v := AADT(road.ClassArterial, rng)
	if v < 8000 || v > 24000 {
		t.Errorf("arterial AADT with jitter = %v", v)
	}
}

func TestRoadEmissionAt(t *testing.T) {
	rf := RoadFuel{RoadID: "x", Class: road.ClassArterial, MeanGPH: 0.5}
	re, err := RoadEmissionAt(rf, 16000, 40.0/3.6, CO2GramsPerGallon)
	if err != nil {
		t.Fatal(err)
	}
	// 16000/24 ≈ 667 veh/h; /40 km/h ≈ 16.7 veh/km; ×0.5 gal/h ×8908 g/gal
	// ≈ 74.2 kg/km/h ≈ 0.074 ton/km/h.
	if re.TonPerKmHour < 0.05 || re.TonPerKmHour > 0.1 {
		t.Errorf("CO2 density = %v ton/km/h", re.TonPerKmHour)
	}
	if _, err := RoadEmissionAt(rf, -1, 10, CO2GramsPerGallon); err == nil {
		t.Error("negative AADT should error")
	}
	if _, err := RoadEmissionAt(rf, 100, 0, CO2GramsPerGallon); err == nil {
		t.Error("zero speed should error")
	}
}

func TestNetworkEmissionsDeterministic(t *testing.T) {
	net, err := road.GenerateNetwork(9, road.NetworkConfig{TargetStreetKM: 8})
	if err != nil {
		t.Fatal(err)
	}
	fuels, err := NetworkFuel(net, 11, TrueGrade, TableII())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NetworkEmissions(fuels, 11, CO2GramsPerGallon, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NetworkEmissions(fuels, 11, CO2GramsPerGallon, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emissions differ at %d with same seed", i)
		}
	}
	if _, err := NetworkEmissions(nil, 11, CO2GramsPerGallon, 1); err == nil {
		t.Error("empty fuels should error")
	}
}

func BenchmarkRateGPH(b *testing.B) {
	p := TableII()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RateGPH(11.1, 0.3, 0.02)
	}
}

func BenchmarkNetworkFuel(b *testing.B) {
	net, err := road.GenerateNetwork(9, road.NetworkConfig{TargetStreetKM: 12})
	if err != nil {
		b.Fatal(err)
	}
	p := TableII()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NetworkFuel(net, 11.1, TrueGrade, p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEconomyCurveShape(t *testing.T) {
	r, err := road.StraightRoad("eco", 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := TableII()
	curve, err := EconomyCurve(r, TrueGrade, p, 10, 120, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 12 {
		t.Fatalf("curve points = %d", len(curve))
	}
	// Economy worsens at both extremes relative to the optimum.
	best, err := OptimalCruise(r, TrueGrade, p, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	if best.SpeedKmh <= 10 || best.SpeedKmh >= 120 {
		t.Errorf("optimal cruise %v km/h at the sweep edge; expected an interior optimum", best.SpeedKmh)
	}
	first, last := curve[0], curve[len(curve)-1]
	if best.GallonsPerKm >= first.GallonsPerKm || best.GallonsPerKm >= last.GallonsPerKm {
		t.Errorf("optimum %v not below the extremes (%v, %v)",
			best.GallonsPerKm, first.GallonsPerKm, last.GallonsPerKm)
	}
}

// TestSpeedSweepValidation: degenerate sweep inputs (zero-width range,
// non-positive step, non-finite bounds) must surface as explicit errors from
// both EconomyCurve and OptimalCruise — never as silent empty curves or NaN
// points.
func TestSpeedSweepValidation(t *testing.T) {
	r, _ := road.StraightRoad("eco", 500, 0, 1)
	p := TableII()
	cases := []struct {
		name          string
		min, max, sep float64
		wantErr       bool
	}{
		{"valid", 10, 100, 10, false},
		{"zero min", 0, 100, 10, true},
		{"negative min", -5, 100, 10, true},
		{"inverted range", 100, 50, 10, true},
		{"degenerate min==max", 50, 50, 1, true},
		{"zero step", 10, 100, 0, true},
		{"negative step", 10, 100, -1, true},
		{"NaN min", math.NaN(), 100, 10, true},
		{"NaN max", 10, math.NaN(), 10, true},
		{"NaN step", 10, 100, math.NaN(), true},
		{"Inf max", 10, math.Inf(1), 10, true},
		{"Inf step", 10, 100, math.Inf(1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			curve, err := EconomyCurve(r, TrueGrade, p, tc.min, tc.max, tc.sep)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("EconomyCurve(%v, %v, %v) = %d points, want error", tc.min, tc.max, tc.sep, len(curve))
				}
				return
			}
			if err != nil {
				t.Fatalf("EconomyCurve(%v, %v, %v): %v", tc.min, tc.max, tc.sep, err)
			}
			if len(curve) == 0 {
				t.Fatal("valid sweep returned an empty curve")
			}
			for _, pt := range curve {
				if math.IsNaN(pt.GallonsPerKm) || math.IsNaN(pt.SpeedKmh) {
					t.Fatalf("valid sweep produced NaN point %+v", pt)
				}
			}
		})
	}

	// OptimalCruise shares the validation (step fixed at 1 km/h).
	optCases := []struct {
		name     string
		min, max float64
		wantErr  bool
	}{
		{"valid", 10, 120, false},
		{"degenerate min==max", 60, 60, true},
		{"inverted", 80, 20, true},
		{"zero min", 0, 120, true},
		{"NaN bound", math.NaN(), 120, true},
	}
	for _, tc := range optCases {
		t.Run("optimal/"+tc.name, func(t *testing.T) {
			best, err := OptimalCruise(r, TrueGrade, p, tc.min, tc.max)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("OptimalCruise(%v, %v) = %+v, want error", tc.min, tc.max, best)
				}
				return
			}
			if err != nil {
				t.Fatalf("OptimalCruise(%v, %v): %v", tc.min, tc.max, err)
			}
			if math.IsNaN(best.GallonsPerKm) {
				t.Fatalf("valid optimum is NaN: %+v", best)
			}
		})
	}
}

func TestOptimalCruiseUphillSlower(t *testing.T) {
	p := TableII()
	flat, err := road.StraightRoad("flat", 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	steep, err := road.StraightRoad("steep", 1000, road.Deg(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	bFlat, err := OptimalCruise(flat, TrueGrade, p, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	bSteep, err := OptimalCruise(steep, TrueGrade, p, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	// Climbing costs grow linearly with distance regardless of speed, but
	// per-km base-load cost shrinks with speed — so the uphill optimum is
	// at least as fast, and uphill economy is strictly worse.
	if bSteep.GallonsPerKm <= bFlat.GallonsPerKm {
		t.Errorf("uphill economy %v not worse than flat %v", bSteep.GallonsPerKm, bFlat.GallonsPerKm)
	}
}
