// Package fuel implements §III-E of the paper: the Vehicle Specific Power
// (VSP) fuel consumption model of Eq. (7), the proportional air-pollution
// emission model (CO₂, PM2.5), the traffic-volume (AADT) assignment used for
// the Figure 10(b) emission map, and road/network level fuel and emission
// aggregation.
//
// A note on Table II: the paper prints GGE=0.0545, A=4.7887, B=21.2903,
// C=0.3925, D=3.6000, m=1.479. Taken literally these are dimensionally
// inconsistent — the A·v³ term would exceed the B·m·v·sinθ grade term by
// ~300× at urban speeds, contradicting the grade effects the paper itself
// cites (fuel up 1.5-2× on uphills [3]). This package therefore keeps the
// exact Eq. (7) functional form but uses physically consistent coefficients
// derived from the VSP literature the paper references ([24], [38]); the
// printed Table II values are retained as constants for documentation. See
// DESIGN.md (substitutions).
package fuel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/road"
)

// PaperTableII reproduces the Table II row exactly as printed, for
// reference and for the Table II experiment output.
var PaperTableII = [6]float64{0.0545, 4.7887, 21.2903, 0.3925, 3.6000, 1.479}

// VSPParams are the Eq. (7) coefficients:
//
//	Γ = max(idle, (A·v³ + B·m·v·sinθ + C·m·v + m·a·v + D·m·a) / (GGE·η))
//
// with v in m/s, a in m/s², m in metric tons, the polynomial in watts, η the
// drivetrain efficiency and GGE the gasoline energy content; Γ is in
// gallons/hour.
type VSPParams struct {
	// GGEWhPerGallon is the energy content of a gallon of gasoline in
	// watt-hours (33,400 Wh/gal).
	GGEWhPerGallon float64
	// Efficiency is tank-to-wheel efficiency (default 0.25).
	Efficiency float64
	// A is the aerodynamic term ½ρ·C_d·A_f (W/(m/s)³).
	A float64
	// B is the grade term g·1000 (W per ton per m/s of v·sinθ).
	B float64
	// C is the rolling term μ·g·1000 (W per ton per m/s).
	C float64
	// D is the rotational-inertia acceleration term (W per ton per m/s²).
	D float64
	// MassTon is the gross vehicle weight in metric tons (Table II: 1.479).
	MassTon float64
	// BaseWatts is the constant engine base load (idle combustion,
	// accessories) added to the traction power; without it a flat cruise
	// is unrealistically cheap and grade effects are wildly overstated.
	BaseWatts float64
	// IdleGPH floors the fuel rate when demanded power is non-positive
	// (engine idling / deceleration fuel cut).
	IdleGPH float64
}

// TableII returns the evaluation vehicle's parameters: the 1,479 kg average
// passenger car of Table II with physically consistent VSP coefficients.
func TableII() VSPParams {
	return VSPParams{
		GGEWhPerGallon: 33400,
		Efficiency:     0.25,
		A:              0.441, // ½·1.225·0.32·2.25
		B:              9810,  // g × 1000 kg/ton
		C:              117.7, // 0.012 × g × 1000
		D:              90,    // rotating mass equivalent
		MassTon:        1.479,
		BaseWatts:      4300,
		IdleGPH:        0.2,
	}
}

// Validate reports whether the parameters are usable.
func (p VSPParams) Validate() error {
	switch {
	case p.GGEWhPerGallon <= 0:
		return fmt.Errorf("fuel: GGE %v must be positive", p.GGEWhPerGallon)
	case p.Efficiency <= 0 || p.Efficiency > 1:
		return fmt.Errorf("fuel: efficiency %v out of (0,1]", p.Efficiency)
	case p.MassTon <= 0:
		return fmt.Errorf("fuel: mass %v must be positive", p.MassTon)
	case p.IdleGPH < 0:
		return fmt.Errorf("fuel: idle rate %v must be non-negative", p.IdleGPH)
	}
	return nil
}

// RateGPH evaluates Eq. (7): gallons per hour at speed v (m/s),
// acceleration a (m/s²) and road gradient θ (radians), floored at idle.
//
// Garbage in, zero out: a negative speed (vehicles don't drive Eq. (7)
// backwards) or any non-finite input returns exactly 0 gph — the one value
// below the idle floor — so corrupted samples can't poison a trip integral
// with NaN or a huge negative "rate". Valid inputs are evaluated on the
// unchanged arithmetic path, bit-identical to the unguarded form.
func (p VSPParams) RateGPH(vMS, aMS2, gradeRad float64) float64 {
	if vMS < 0 ||
		math.IsNaN(vMS) || math.IsInf(vMS, 0) ||
		math.IsNaN(aMS2) || math.IsInf(aMS2, 0) ||
		math.IsNaN(gradeRad) || math.IsInf(gradeRad, 0) {
		return 0
	}
	m := p.MassTon
	watts := p.BaseWatts +
		p.A*vMS*vMS*vMS +
		p.B*m*vMS*math.Sin(gradeRad) +
		p.C*m*vMS +
		1000*m*aMS2*vMS +
		p.D*m*aMS2
	gph := watts / (p.GGEWhPerGallon * p.Efficiency)
	if gph < p.IdleGPH {
		return p.IdleGPH
	}
	return gph
}

// Emission factors: grams of pollutant per gallon of gasoline burned
// (§III-E: m_emission = F · V_fuel).
const (
	// CO2GramsPerGallon is F for carbon dioxide.
	CO2GramsPerGallon = 8908.0
	// PM25GramsPerGallon is F for PM2.5.
	PM25GramsPerGallon = 0.084
)

// EmissionGPH converts a fuel rate (gallon/hour) into an emission rate
// (grams/hour) for a pollutant factor F (grams/gallon).
func EmissionGPH(fuelGPH, factor float64) float64 { return fuelGPH * factor }

// TripFuel integrates Eq. (7) over a drive described by per-sample speed,
// acceleration and grade at interval dt, returning total gallons.
func TripFuel(p VSPParams, dt float64, v, a, grade []float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if dt <= 0 {
		return 0, fmt.Errorf("fuel: invalid dt %v", dt)
	}
	if len(v) != len(a) || len(v) != len(grade) {
		return 0, fmt.Errorf("fuel: series length mismatch %d/%d/%d", len(v), len(a), len(grade))
	}
	var gallons float64
	for i := range v {
		gallons += p.RateGPH(v[i], a[i], grade[i]) * dt / 3600
	}
	return gallons, nil
}

// GradeFunc supplies a road gradient (radians) at arc length s of a given
// road; used to evaluate fuel maps on true or estimated profiles.
type GradeFunc func(r *road.Road, s float64) float64

// TrueGrade reads the road's built-in profile.
func TrueGrade(r *road.Road, s float64) float64 { return r.GradeAt(s) }

// FlatGrade ignores gradient entirely — the "without considering road
// gradient" comparison of §IV-C.
func FlatGrade(*road.Road, float64) float64 { return 0 }

// RoadFuel is the Figure 10(a) quantity for one road: the average fuel rate
// (gallon/hour) of a vehicle cruising the road at the given speed.
type RoadFuel struct {
	RoadID       string
	Class        road.Class
	LengthM      float64
	MeanGPH      float64
	MeanGradeDeg float64
}

// RoadFuelAt computes the mean Eq. (7) rate along one road at constant
// cruise speed, sampling the gradient every 10 m.
func RoadFuelAt(r *road.Road, speedMS float64, grade GradeFunc, p VSPParams) (RoadFuel, error) {
	if r == nil {
		return RoadFuel{}, errors.New("fuel: nil road")
	}
	if speedMS <= 0 {
		return RoadFuel{}, fmt.Errorf("fuel: speed %v must be positive", speedMS)
	}
	if grade == nil {
		return RoadFuel{}, errors.New("fuel: nil grade func")
	}
	if err := p.Validate(); err != nil {
		return RoadFuel{}, err
	}
	const step = 10.0
	var sumGPH, sumGrade float64
	var n int
	for s := 0.0; s < r.Length(); s += step {
		g := grade(r, s)
		sumGPH += p.RateGPH(speedMS, 0, g)
		sumGrade += g
		n++
	}
	if n == 0 {
		n = 1
		sumGPH = p.RateGPH(speedMS, 0, grade(r, 0))
	}
	return RoadFuel{
		RoadID:       r.ID(),
		Class:        r.Class(),
		LengthM:      r.Length(),
		MeanGPH:      sumGPH / float64(n),
		MeanGradeDeg: sumGrade / float64(n) * 180 / math.Pi,
	}, nil
}

// NetworkFuel evaluates RoadFuelAt over every edge of a network — the data
// behind the Figure 10(a) city fuel map.
func NetworkFuel(net *road.Network, speedMS float64, grade GradeFunc, p VSPParams) ([]RoadFuel, error) {
	if net == nil || len(net.Edges) == 0 {
		return nil, errors.New("fuel: empty network")
	}
	out := make([]RoadFuel, 0, len(net.Edges))
	for _, e := range net.Edges {
		rf, err := RoadFuelAt(e.Road, speedMS, grade, p)
		if err != nil {
			return nil, fmt.Errorf("fuel: road %s: %w", e.Road.ID(), err)
		}
		out = append(out, rf)
	}
	return out, nil
}

// FuelUplift returns the network-average relative increase of fuel
// consumption when the road gradient is considered versus assuming flat
// roads — the paper's headline +33.4% (§IV-C; emissions scale identically).
func FuelUplift(net *road.Network, speedMS float64, grade GradeFunc, p VSPParams) (float64, error) {
	withGrade, err := NetworkFuel(net, speedMS, grade, p)
	if err != nil {
		return 0, err
	}
	flat, err := NetworkFuel(net, speedMS, FlatGrade, p)
	if err != nil {
		return 0, err
	}
	var sumWith, sumFlat float64
	for i := range withGrade {
		// Length-weighted: long roads dominate a drive through the city.
		sumWith += withGrade[i].MeanGPH * withGrade[i].LengthM
		sumFlat += flat[i].MeanGPH * flat[i].LengthM
	}
	if sumFlat == 0 {
		return 0, errors.New("fuel: zero flat-road fuel")
	}
	return sumWith/sumFlat - 1, nil
}

// AADT assigns an annual-average-daily-traffic volume to a road class,
// standing in for the VDOT traffic counts the paper uses [27].
func AADT(class road.Class, rng *rand.Rand) float64 {
	var base, spread float64
	switch class {
	case road.ClassArterial:
		base, spread = 16000, 8000
	case road.ClassCollector:
		base, spread = 5500, 3000
	default:
		base, spread = 1200, 800
	}
	if rng == nil {
		return base
	}
	return base + (rng.Float64()-0.5)*spread
}

// RoadEmission is the Figure 10(b) quantity: pollutant tons per km of road
// per hour, combining per-vehicle fuel with traffic volume.
type RoadEmission struct {
	RoadID       string
	Class        road.Class
	AADT         float64
	TonPerKmHour float64
}

// RoadEmissionAt computes the emission density of one road: vehicles
// present per km (hourly flow divided by speed) times the per-vehicle
// emission rate.
func RoadEmissionAt(rf RoadFuel, aadt, speedMS, factor float64) (RoadEmission, error) {
	if speedMS <= 0 {
		return RoadEmission{}, fmt.Errorf("fuel: speed %v must be positive", speedMS)
	}
	if aadt < 0 {
		return RoadEmission{}, fmt.Errorf("fuel: AADT %v must be non-negative", aadt)
	}
	flowPerHour := aadt / 24
	speedKmh := speedMS * 3.6
	vehPerKm := flowPerHour / speedKmh
	gramsPerKmHour := vehPerKm * EmissionGPH(rf.MeanGPH, factor)
	return RoadEmission{
		RoadID:       rf.RoadID,
		Class:        rf.Class,
		AADT:         aadt,
		TonPerKmHour: gramsPerKmHour / 1e6,
	}, nil
}

// NetworkEmissions maps RoadEmissionAt over a network's fuel results with
// class-based AADT volumes (deterministic per seed).
func NetworkEmissions(fuels []RoadFuel, speedMS, factor float64, seed int64) ([]RoadEmission, error) {
	if len(fuels) == 0 {
		return nil, errors.New("fuel: no road fuel data")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]RoadEmission, 0, len(fuels))
	for _, rf := range fuels {
		re, err := RoadEmissionAt(rf, AADT(rf.Class, rng), speedMS, factor)
		if err != nil {
			return nil, fmt.Errorf("fuel: road %s: %w", rf.RoadID, err)
		}
		out = append(out, re)
	}
	return out, nil
}

// CruisePoint is one sample of the speed-economy curve.
type CruisePoint struct {
	SpeedKmh     float64
	GallonsPerKm float64
}

// EconomyCurve evaluates fuel economy (gallons per km) of cruising a road at
// a range of speeds — the relationship behind the velocity-optimization
// applications the paper motivates. Speeds are in km/h, swept inclusively
// with the given step.
func EconomyCurve(r *road.Road, grade GradeFunc, p VSPParams, minKmh, maxKmh, stepKmh float64) ([]CruisePoint, error) {
	if err := validateSweep(minKmh, maxKmh, stepKmh); err != nil {
		return nil, err
	}
	var out []CruisePoint
	for kmh := minKmh; kmh <= maxKmh+1e-9; kmh += stepKmh {
		speedMS := kmh / 3.6
		rf, err := RoadFuelAt(r, speedMS, grade, p)
		if err != nil {
			return nil, err
		}
		out = append(out, CruisePoint{
			SpeedKmh:     kmh,
			GallonsPerKm: rf.MeanGPH / kmh,
		})
	}
	return out, nil
}

// validateSweep rejects degenerate speed sweeps up front. A NaN bound or
// step would otherwise terminate the sweep loop immediately and return an
// empty curve (NaN comparisons are false), a zero-width [min, min] range
// would silently "optimize" over a single point, and a non-positive step
// would never advance — all are caller bugs better surfaced as errors than
// as empty or NaN results.
func validateSweep(minKmh, maxKmh, stepKmh float64) error {
	for _, v := range [...]float64{minKmh, maxKmh, stepKmh} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fuel: non-finite speed sweep [%v, %v] step %v", minKmh, maxKmh, stepKmh)
		}
	}
	switch {
	case minKmh <= 0:
		return fmt.Errorf("fuel: sweep start %v km/h must be positive", minKmh)
	case maxKmh == minKmh:
		return fmt.Errorf("fuel: degenerate speed sweep [%v, %v]: zero-width range", minKmh, maxKmh)
	case maxKmh < minKmh:
		return fmt.Errorf("fuel: inverted speed sweep [%v, %v]", minKmh, maxKmh)
	case stepKmh <= 0:
		return fmt.Errorf("fuel: sweep step %v km/h must be positive", stepKmh)
	}
	return nil
}

// OptimalCruise returns the speed (km/h) minimizing gallons per km on a
// road, and the economy achieved there. Low speeds waste idle/base fuel per
// km; high speeds waste drag — the optimum sits between.
func OptimalCruise(r *road.Road, grade GradeFunc, p VSPParams, minKmh, maxKmh float64) (CruisePoint, error) {
	curve, err := EconomyCurve(r, grade, p, minKmh, maxKmh, 1)
	if err != nil {
		return CruisePoint{}, err
	}
	if len(curve) == 0 {
		return CruisePoint{}, fmt.Errorf("fuel: empty economy curve for sweep [%v, %v]", minKmh, maxKmh)
	}
	best := curve[0]
	for _, pt := range curve[1:] {
		if pt.GallonsPerKm < best.GallonsPerKm {
			best = pt
		}
	}
	return best, nil
}
