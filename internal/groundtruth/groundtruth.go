// Package groundtruth implements §III-D of the paper: building the reference
// road gradient profile from road geography information (latitude,
// longitude, altitude). The road is divided into small equal segments; each
// segment's direction is arctan(Δλ/Δφ) and its grade arcsin(Δz/d). The paper
// collects the altitude with a 0.01 m altimeter driven over the road; here
// the altimeter vehicle is simulated over the synthetic road's true profile.
package groundtruth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

// GeoSample is one surveyed point: position and altitude.
type GeoSample struct {
	Pos  geo.LatLon `json:"pos"`
	AltM float64    `json:"alt_m"`
}

// Reference is the reference road gradient profile: per-segment grades and
// directions over equal-length segments.
type Reference struct {
	// SegmentLengthM is the nominal segment length (1 m in the paper).
	SegmentLengthM float64
	// GradeRad[i] is the grade of segment i (S_i -> E_i).
	GradeRad []float64
	// DirectionRad[i] is the paper's segment direction arctan(Δλ/Δφ).
	DirectionRad []float64
}

// GradeAt returns the reference grade at arc length s, clamped to the
// profile range.
func (r *Reference) GradeAt(s float64) float64 {
	if len(r.GradeRad) == 0 {
		return 0
	}
	idx := int(s / r.SegmentLengthM)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.GradeRad) {
		idx = len(r.GradeRad) - 1
	}
	return r.GradeRad[idx]
}

// GradeAvgAt returns the grade averaged over a window centred at s. A
// single 1 m segment carries ~0.6-0.8 degrees of altimeter-induced noise
// (arcsin of ±1.4 cm over 1 m), so comparisons should happen at window
// granularity.
func (r *Reference) GradeAvgAt(s, window float64) float64 {
	if len(r.GradeRad) == 0 {
		return 0
	}
	if window < r.SegmentLengthM {
		window = r.SegmentLengthM
	}
	var sum float64
	var n int
	for d := -window / 2; d <= window/2; d += r.SegmentLengthM {
		sum += r.GradeAt(s + d)
		n++
	}
	return sum / float64(n)
}

// Length returns the profile's covered arc length.
func (r *Reference) Length() float64 {
	return float64(len(r.GradeRad)) * r.SegmentLengthM
}

// BuildReference computes the reference profile from consecutive survey
// samples: sample i is segment i's start point S and sample i+1 its end
// point E.
func BuildReference(samples []GeoSample) (*Reference, error) {
	if len(samples) < 2 {
		return nil, errors.New("groundtruth: need at least two samples")
	}
	ref := &Reference{
		GradeRad:     make([]float64, 0, len(samples)-1),
		DirectionRad: make([]float64, 0, len(samples)-1),
	}
	var totalLen float64
	for i := 0; i+1 < len(samples); i++ {
		s, e := samples[i], samples[i+1]
		d := geo.HaversineM(s.Pos, e.Pos)
		if d <= 0 {
			return nil, fmt.Errorf("groundtruth: zero-length segment at %d", i)
		}
		totalLen += d
		ratio := (e.AltM - s.AltM) / d
		if ratio > 1 {
			ratio = 1
		} else if ratio < -1 {
			ratio = -1
		}
		ref.GradeRad = append(ref.GradeRad, math.Asin(ratio))
		ref.DirectionRad = append(ref.DirectionRad, geo.PaperSegmentDirection(s.Pos, e.Pos))
	}
	ref.SegmentLengthM = totalLen / float64(len(ref.GradeRad))
	return ref, nil
}

// SurveyConfig controls the simulated altimeter survey vehicle.
type SurveyConfig struct {
	// SpacingM is the segment length (default 1 m, §IV-A2).
	SpacingM float64
	// AltimeterSigmaM is the altimeter accuracy (default 0.01 m).
	AltimeterSigmaM float64
	// PositionSigmaDeg is the per-sample lat/lon noise. The survey rig
	// marks segment boundaries by odometer distance, so consecutive marks
	// have centimeter-level relative precision; the default is 1e-7
	// degrees (≈ 1 cm). §III-D's quoted 0.00001-degree figure is the
	// coordinate representation precision, not per-mark noise.
	PositionSigmaDeg float64
}

func (c SurveyConfig) withDefaults() SurveyConfig {
	if c.SpacingM <= 0 {
		c.SpacingM = 1
	}
	if c.AltimeterSigmaM <= 0 {
		c.AltimeterSigmaM = 0.01
	}
	if c.PositionSigmaDeg <= 0 {
		c.PositionSigmaDeg = 1e-7
	}
	return c
}

// Survey drives the instrumented vehicle over a road, emitting geo samples
// every SpacingM meters. proj anchors the road's local frame on the globe.
func Survey(r *road.Road, proj *geo.Projector, cfg SurveyConfig, rng *rand.Rand) ([]GeoSample, error) {
	if r == nil {
		return nil, errors.New("groundtruth: nil road")
	}
	if proj == nil {
		return nil, errors.New("groundtruth: nil projector")
	}
	if rng == nil {
		return nil, errors.New("groundtruth: rng is required")
	}
	cfg = cfg.withDefaults()
	n := int(r.Length()/cfg.SpacingM) + 1
	out := make([]GeoSample, 0, n)
	for i := 0; i < n; i++ {
		s := float64(i) * cfg.SpacingM
		pos := proj.ToLatLon(r.PositionAt(s))
		pos.Lat += rng.NormFloat64() * cfg.PositionSigmaDeg
		pos.Lon += rng.NormFloat64() * cfg.PositionSigmaDeg
		out = append(out, GeoSample{
			Pos:  pos,
			AltM: r.AltitudeAt(s) + rng.NormFloat64()*cfg.AltimeterSigmaM,
		})
	}
	return out, nil
}

// ReferenceFor is the convenience path used across the evaluation: survey a
// road at 1 m spacing and build its reference profile.
func ReferenceFor(r *road.Road, rng *rand.Rand) (*Reference, error) {
	proj := geo.NewProjector(geo.LatLon{Lat: 38.0293, Lon: -78.4767}) // Charlottesville
	samples, err := Survey(r, proj, SurveyConfig{}, rng)
	if err != nil {
		return nil, err
	}
	return BuildReference(samples)
}
