package groundtruth

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

func TestBuildReferenceValidation(t *testing.T) {
	if _, err := BuildReference(nil); err == nil {
		t.Error("no samples should error")
	}
	if _, err := BuildReference([]GeoSample{{}}); err == nil {
		t.Error("one sample should error")
	}
	same := GeoSample{Pos: geo.LatLon{Lat: 38, Lon: -78}}
	if _, err := BuildReference([]GeoSample{same, same}); err == nil {
		t.Error("duplicate positions should error")
	}
}

func TestBuildReferenceKnownGrade(t *testing.T) {
	// Two samples 100 m apart (north), 5 m rise: grade = arcsin(0.05).
	origin := geo.LatLon{Lat: 38, Lon: -78}
	proj := geo.NewProjector(origin)
	end := proj.ToLatLon(geo.ENU{E: 0, N: 100})
	ref, err := BuildReference([]GeoSample{
		{Pos: origin, AltM: 100},
		{Pos: end, AltM: 105},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Asin(0.05)
	if math.Abs(ref.GradeRad[0]-want) > 1e-4 {
		t.Errorf("grade = %v, want %v", ref.GradeRad[0], want)
	}
	if math.Abs(ref.SegmentLengthM-100) > 0.5 {
		t.Errorf("segment length = %v", ref.SegmentLengthM)
	}
	// Due-north segment direction is arctan(0) = 0 in the paper convention.
	if ref.DirectionRad[0] != 0 {
		t.Errorf("direction = %v", ref.DirectionRad[0])
	}
}

func TestReferenceGradeAtClamps(t *testing.T) {
	ref := &Reference{SegmentLengthM: 1, GradeRad: []float64{0.01, 0.02, 0.03}}
	if ref.GradeAt(-1) != 0.01 || ref.GradeAt(0.5) != 0.01 || ref.GradeAt(2.5) != 0.03 || ref.GradeAt(99) != 0.03 {
		t.Error("GradeAt clamping wrong")
	}
	if ref.Length() != 3 {
		t.Errorf("Length = %v", ref.Length())
	}
	empty := &Reference{SegmentLengthM: 1}
	if empty.GradeAt(1) != 0 {
		t.Error("empty reference should return 0")
	}
}

func TestSurveyValidation(t *testing.T) {
	r, _ := road.StraightRoad("x", 100, 0, 1)
	proj := geo.NewProjector(geo.LatLon{Lat: 38, Lon: -78})
	rng := rand.New(rand.NewSource(1))
	if _, err := Survey(nil, proj, SurveyConfig{}, rng); err == nil {
		t.Error("nil road should error")
	}
	if _, err := Survey(r, nil, SurveyConfig{}, rng); err == nil {
		t.Error("nil projector should error")
	}
	if _, err := Survey(r, proj, SurveyConfig{}, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestReferenceMatchesTrueProfile(t *testing.T) {
	// The §III-D reference built from a 1 m survey must reproduce the
	// road's true grade profile to within the altimeter noise.
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceFor(r, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ref.Length()-r.Length()) > r.Length()*0.01 {
		t.Errorf("reference length %v vs road %v", ref.Length(), r.Length())
	}
	// Compare at 10 m intervals, smoothing the reference over ±5 m: a
	// single 1 m segment carries ~0.8° of altimeter-induced grade noise
	// (arcsin(±0.014/1)), so the reference is meaningful only at the
	// window level.
	var worst float64
	for s := 10.0; s < r.Length()-10; s += 10 {
		var sum float64
		for d := -5.0; d <= 5; d++ {
			sum += ref.GradeAt(s + d)
		}
		got := sum / 11
		if e := math.Abs(got - r.GradeAt(s)); e > worst {
			worst = e
		}
	}
	if worst > road.Deg(1.2) {
		t.Errorf("worst smoothed reference error %v deg", worst*180/math.Pi)
	}
}

func TestSurveyNoiseLevel(t *testing.T) {
	r, err := road.StraightRoad("flat", 500, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	proj := geo.NewProjector(geo.LatLon{Lat: 38.0293, Lon: -78.4767})
	samples, err := Survey(r, proj, SurveyConfig{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 501 {
		t.Fatalf("samples = %d, want 501", len(samples))
	}
	// Altitudes on a flat road stay within a few sigma of 180.
	for i, gs := range samples {
		if math.Abs(gs.AltM-180) > 0.1 {
			t.Fatalf("sample %d altitude %v, altimeter noise too large", i, gs.AltM)
		}
	}
}

func BenchmarkReferenceFor(b *testing.B) {
	r, err := road.RedRoute()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceFor(r, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
