package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"roadgrade/internal/ecoroute"
	"roadgrade/internal/road"
)

// tickGradeSource is ground truth plus one mutable road: bumping gen models a
// fusion tick that re-estimated that single road's gradient, which is the
// event the CCH's generation-keyed incremental re-customization exists for.
type tickGradeSource struct {
	gen    uint64
	roadID string
}

func (t *tickGradeSource) Generation() uint64 { return t.gen }

func (t *tickGradeSource) Edge(fwd, _ *road.Road) ecoroute.EdgeGrades {
	if fwd.ID() == t.roadID {
		g := t.gen
		return ecoroute.EdgeGrades{Gen: g + 1, At: func(s float64) float64 {
			return fwd.GradeAt(s) + 0.001*float64(g)
		}}
	}
	return ecoroute.EdgeGrades{Gen: 1, At: fwd.GradeAt}
}

// RouteScale compares the two routing engines as the network grows toward
// country scale (DESIGN.md §13): warm point-query latency, the cost of the
// first fuel query (cost tables plus landmark selection for alt; contraction
// plus full customization for cch), and the cost of the first query after a
// one-road fusion tick — where alt rebuilds its landmark tables from scratch
// but cch re-derives only the arcs the tick can reach. Latencies are
// wall-clock, so the experiment is excluded from the deterministic -exp all
// sweep; run it by name.
func RouteScale(opt Options) (Table, error) {
	scales := []float64{1, 10}
	nPairs := 100
	if opt.Quick {
		scales = []float64{0.05}
		nPairs = 12
	}

	rows := make([][]string, 0, 2*len(scales))
	for _, scale := range scales {
		net, err := road.GenerateNetwork(opt.Seed+1827, road.CountryConfig(scale))
		if err != nil {
			return Table{}, err
		}
		// Engine order alt-then-cch keeps each scale's rows adjacent.
		for _, alg := range []string{ecoroute.AlgALT, ecoroute.AlgCCH} {
			src := &tickGradeSource{roadID: net.Edges[0].Road.ID()}
			eng, err := ecoroute.NewEngine(net, src, ecoroute.Config{Algorithm: alg})
			if err != nil {
				return Table{}, err
			}

			// First fuel query pays the engine's whole preprocessing chain.
			probe := [2]int{net.Edges[0].From, net.Edges[len(net.Edges)-1].To}
			t0 := time.Now()
			if _, err := eng.Route(ecoroute.Fuel, cruiseKmh, probe[0], probe[1]); err != nil {
				return Table{}, err
			}
			firstMS := time.Since(t0).Seconds() * 1e3

			// Warm panel: connected pairs, p50/p95 over fuel queries.
			rng := rand.New(rand.NewSource(opt.Seed + 23))
			durs := make([]time.Duration, 0, nPairs)
			for len(durs) < nPairs {
				from := net.Nodes[rng.Intn(len(net.Nodes))].ID
				to := net.Nodes[rng.Intn(len(net.Nodes))].ID
				if from == to {
					continue
				}
				q0 := time.Now()
				_, err := eng.Route(ecoroute.Fuel, cruiseKmh, from, to)
				d := time.Since(q0)
				if err != nil {
					continue // disconnected pair; redraw
				}
				durs = append(durs, d)
			}
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			p50 := durs[len(durs)/2].Seconds() * 1e6
			p95 := durs[int(0.95*float64(len(durs)-1))].Seconds() * 1e6

			// One-road fusion tick: the next query re-prepares the fuel metric.
			src.gen++
			t0 = time.Now()
			if _, err := eng.Route(ecoroute.Fuel, cruiseKmh, probe[0], probe[1]); err != nil {
				return Table{}, err
			}
			tickMS := time.Since(t0).Seconds() * 1e3

			arcs := "-"
			if alg == ecoroute.AlgCCH {
				if st := eng.LastCustomization(); !st.Full {
					arcs = fmt.Sprintf("%d/%d", st.RecomputedArcs, st.TotalArcs)
				}
			}
			rows = append(rows, []string{
				fmt.Sprintf("%g×", scale),
				fmt.Sprintf("%d", len(net.Nodes)),
				fmt.Sprintf("%d", len(net.Edges)),
				alg,
				cell(p50, 0), cell(p95, 0),
				cell(firstMS, 1), cell(tickMS, 1),
				arcs,
			})
		}
	}
	return Table{
		ID:    "RouteScale",
		Title: "Routing engines vs network scale: ALT landmark A* against the customizable contraction hierarchy",
		Note: fmt.Sprintf("%d warm fuel queries per row at %.0f km/h; scale N× = N × the paper's 164.8 km street network; 'tick' = first query after one road's gradient re-fused (alt rebuilds landmarks, cch re-customizes incrementally); wall-clock, so excluded from `-exp all`",
			nPairs, cruiseKmh),
		Header: []string{"scale", "nodes", "edges", "engine", "warm p50 (µs)", "warm p95 (µs)", "first query (ms)", "post-tick (ms)", "arcs recomputed"},
		Rows:   rows,
	}, nil
}
