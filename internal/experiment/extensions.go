package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/baseline"
	"roadgrade/internal/core"
	"roadgrade/internal/frame"
	"roadgrade/internal/fusion"
	"roadgrade/internal/groundtruth"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// This file holds experiments beyond the paper's figures: ablations of the
// design choices, robustness sweeps, and the extensions the paper sketches
// (phone misalignment handling via [14], multi-vehicle cloud fusion).

// redWorkloadWith builds a red-route workload with a custom sensor config
// and driver tweaks.
func redWorkloadWith(seed int64, cfg sensors.Config, warmupS float64) (*workload, error) {
	return redWorkloadDriver(seed, cfg, warmupS, 0)
}

// redWorkloadDriver additionally sets the driver's in-lane steering wander.
func redWorkloadDriver(seed int64, cfg sensors.Config, warmupS, steerJitter float64) (*workload, error) {
	r, err := road.RedRoute()
	if err != nil {
		return nil, err
	}
	d := vehicle.DefaultDriver(cruiseKmh / 3.6)
	d.LaneChangesPerKm = 2
	d.SteerJitterRad = steerJitter
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: d, Rng: rand.New(rand.NewSource(seed)), WarmupStopS: warmupS,
	})
	if err != nil {
		return nil, err
	}
	trace, err := sensors.Sample(trip, cfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, err
	}
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return nil, err
	}
	return &workload{road: r, trip: trip, trace: trace, ref: ref}, nil
}

// runFusedMedian runs the full system on a workload and returns the median
// absolute error in degrees.
func runFusedMedian(p *core.Pipeline, w *workload) (float64, error) {
	prof, _, err := fusedProfile(p, w)
	if err != nil {
		return 0, err
	}
	return medianOf(profileErrors(prof, w.ref, skipM)), nil
}

// Misalignment quantifies §III-A end to end: a phone mounted askew corrupts
// the naive sensor channels; the [14]-style alignment recovers the mount
// from a stop-and-launch window and restores estimation accuracy.
func Misalignment(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	mounts := []struct {
		name  string
		mount frame.Mount
	}{
		{"aligned", frame.Mount{}},
		{"yaw 20 deg", frame.Mount{Yaw: road.Deg(20)}},
		{"pitch 10 deg", frame.Mount{Pitch: road.Deg(10)}},
		{"yaw 30 + pitch 8 + roll 5", frame.Mount{Yaw: road.Deg(30), Pitch: road.Deg(8), Roll: road.Deg(5)}},
	}
	var rows [][]string
	for _, m := range mounts {
		cfg := sensors.DefaultConfig()
		cfg.Mount = m.mount
		// Same seed for every mount: identical trip and noise, so rows
		// differ only in the mount itself.
		w, err := redWorkloadWith(opt.Seed+40, cfg, 5)
		if err != nil {
			return Table{}, err
		}
		// Naive: feed the unaligned channels straight to the pipeline.
		naive, err := runFusedMedian(p, w)
		if err != nil {
			return Table{}, err
		}
		// Aligned: recover the mount, rewrite the channels, re-estimate.
		res, err := sensors.AlignTrace(w.trace)
		if err != nil {
			return Table{}, fmt.Errorf("experiment: aligning %s: %w", m.name, err)
		}
		aligned, err := runFusedMedian(p, w)
		if err != nil {
			return Table{}, err
		}
		rows = append(rows, []string{
			m.name,
			cell(naive, 3),
			cell(aligned, 3),
			cell(sensors.MisalignmentError(res.Mount, m.mount)*180/math.Pi, 2),
		})
	}
	return Table{
		ID:     "Misalignment",
		Title:  "Phone mount misalignment: naive vs coordinate-aligned estimation",
		Note:   "alignment recovers the mount from the trip-start stop-and-launch window (§III-A / [14])",
		Header: []string{"mount", "naive median |err| (deg)", "aligned median |err| (deg)", "mount estimate error (deg)"},
		Rows:   rows,
	}, nil
}

// MultiVehicle extends Figure 8(b) to the cloud level (§III-C3's closing
// paragraph): fusing fused profiles from multiple vehicles.
func MultiVehicle(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	r, err := road.RedRoute()
	if err != nil {
		return Table{}, err
	}
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(opt.Seed+3)))
	if err != nil {
		return Table{}, err
	}
	vehicles := 8
	if opt.Quick {
		vehicles = 3
	}
	var profiles []*fusion.Profile
	var singles []float64
	for v := 0; v < vehicles; v++ {
		d := vehicle.DefaultDriver((34 + 2.5*float64(v)) / 3.6)
		d.LaneChangesPerKm = 1.5
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: d, Rng: rand.New(rand.NewSource(opt.Seed + int64(500+v))),
		})
		if err != nil {
			return Table{}, err
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(opt.Seed+int64(600+v))))
		if err != nil {
			return Table{}, err
		}
		w := &workload{road: r, trip: trip, trace: trc, ref: ref}
		prof, _, err := fusedProfile(p, w)
		if err != nil {
			return Table{}, err
		}
		profiles = append(profiles, prof)
		singles = append(singles, medianOf(profileErrors(prof, ref, skipM)))
	}
	var rows [][]string
	for n := 1; n <= len(profiles); n++ {
		fused, err := fusion.FuseProfiles(profiles[:n])
		if err != nil {
			return Table{}, err
		}
		med := medianOf(profileErrors(fused, ref, skipM))
		rows = append(rows, []string{fmt.Sprintf("%d", n), cell(med, 3)})
	}
	var sum float64
	for _, s := range singles {
		sum += s
	}
	return Table{
		ID:     "MultiVehicle",
		Title:  "Cloud fusion across vehicles (red route)",
		Note:   fmt.Sprintf("mean single-vehicle median error: %.3f deg", sum/float64(len(singles))),
		Header: []string{"vehicles fused", "median |err| (deg)"},
		Rows:   rows,
	}, nil
}

// Ablation quantifies each design choice of the proposed system by removing
// it: the Eq. (2) lane-change correction, the two-pass (forward-backward)
// EKF sweep, and track fusion itself.
func Ablation(opt Options) (Table, error) {
	cal, err := CalibrateFromStudy(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	// An aggressive-lane-change drive so the Eq. (2) ablation has effect
	// to measure.
	r, err := road.RedRoute()
	if err != nil {
		return Table{}, err
	}
	d := vehicle.DefaultDriver(cruiseKmh / 3.6)
	d.LaneChangesPerKm = 8
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: d, Rng: rand.New(rand.NewSource(opt.Seed + 73)),
	})
	if err != nil {
		return Table{}, err
	}
	trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(opt.Seed+71)))
	if err != nil {
		return Table{}, err
	}
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(opt.Seed+72)))
	if err != nil {
		return Table{}, err
	}
	w := &workload{road: r, trip: trip, trace: trc, ref: ref}

	// Spans (in arc length) of the true lane changes, for the localized
	// error metric.
	type span struct{ lo, hi float64 }
	var spans []span
	for _, ev := range trip.Changes {
		var lo, hi float64 = math.Inf(1), 0
		for _, st := range trip.States {
			if st.T >= ev.StartT && st.T <= ev.EndT {
				lo = math.Min(lo, st.S)
				hi = math.Max(hi, st.S)
			}
		}
		if hi > lo {
			spans = append(spans, span{lo, hi})
		}
	}
	inSpan := func(s float64) bool {
		for _, sp := range spans {
			if s >= sp.lo-10 && s <= sp.hi+10 {
				return true
			}
		}
		return false
	}

	variants := []struct {
		name string
		cfg  core.Config
		one  bool // single-track (no fusion)
	}{
		{"full system", core.Config{Thresholds: cal.Thresholds}, false},
		{"no lane-change correction", core.Config{Thresholds: cal.Thresholds, DisableLaneChangeCorrection: true}, false},
		{"no two-pass smoothing", core.Config{Thresholds: cal.Thresholds, DisableTwoPass: true}, false},
		{"no fusion (speedometer only)", core.Config{Thresholds: cal.Thresholds}, true},
	}
	// Reference rows outside the OPS variants: the naive Eq. (3) direct
	// evaluation with OBD torque, no filtering.
	adjForDirect, err := func() ([]float64, error) {
		pl, err := core.NewPipeline(core.Config{Thresholds: cal.Thresholds})
		if err != nil {
			return nil, err
		}
		adj, err := pl.Adjust(w.trace, w.road.Line())
		if err != nil {
			return nil, err
		}
		return adj.S, nil
	}()
	if err != nil {
		return Table{}, err
	}
	direct, err := baseline.DirectEq3(w.trace, adjForDirect, vehicle.DefaultParams())
	if err != nil {
		return Table{}, err
	}
	directErrs := seriesErrors(direct.S, direct.GradeRad, w.ref, skipM)

	var rows [][]string
	for _, v := range variants {
		p, err := core.NewPipeline(v.cfg)
		if err != nil {
			return Table{}, err
		}
		var prof *fusion.Profile
		if v.one {
			adj, err := p.Adjust(w.trace, w.road.Line())
			if err != nil {
				return Table{}, err
			}
			tr, err := p.EstimateTrack(w.trace, adj, sensors.SourceSpeedometer)
			if err != nil {
				return Table{}, err
			}
			if prof, err = fusion.FuseTracks([]*core.Track{tr}, 5, w.road.Length()); err != nil {
				return Table{}, err
			}
		} else {
			if prof, _, err = fusedProfile(p, w); err != nil {
				return Table{}, err
			}
		}
		med := medianOf(profileErrors(prof, w.ref, skipM))
		// Localized metric: mean error over cells inside lane-change spans.
		var sumLC float64
		var nLC int
		for i := range prof.S {
			if prof.S[i] < skipM || prof.S[i] > w.ref.Length() || !inSpan(prof.S[i]) {
				continue
			}
			truth := refGradeAvg(w.ref, prof.S[i], prof.SpacingM)
			sumLC += math.Abs(deg(prof.GradeRad[i] - truth))
			nLC++
		}
		lcErr := math.NaN()
		if nLC > 0 {
			lcErr = sumLC / float64(nLC)
		}
		rows = append(rows, []string{v.name, cell(med, 3), cell(lcErr, 3)})
	}
	rows = append(rows, []string{"naive Eq. (3) direct (OBD torque, no filter)", cell(medianOf(directErrs), 3), ""})
	return Table{
		ID:     "Ablation",
		Title:  fmt.Sprintf("Ablation of the proposed system's components (red route, %d lane changes)", len(trip.Changes)),
		Note:   "the Eq. (2) correction acts only inside lane-change windows (second column). Reproduction finding: at realistic maneuver geometry (heading deviation <= ~10 deg for ~2 s) its effect is within the noise floor — the cos(alpha) speed deviation is ~1%; the components that matter are the two-pass sweep and fusion.",
		Header: []string{"variant", "median |err| (deg)", "mean |err| in lane changes (deg)"},
		Rows:   rows,
	}, nil
}

// Robustness sweeps sensor failure severity: GPS dropout fraction,
// accelerometer drift and barometer degradation, reporting the system's
// graceful degradation (the paper claims robustness to "out of GPS
// service").
func Robustness(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	type variant struct {
		name        string
		mutate      func(*sensors.Config)
		steerJitter float64
	}
	variants := []variant{
		{"nominal sensors", func(*sensors.Config) {}, 0},
		{"GPS dropouts 10x", func(c *sensors.Config) { c.GPSDropoutProb = 0.08 }, 0},
		{"GPS unavailable", func(c *sensors.Config) { c.GPSDropoutProb = 1; c.GPSDropoutMeanS = 1e9 }, 0},
		{"accel drift 5x", func(c *sensors.Config) { c.Accel.DriftRate *= 5 }, 0},
		{"gyro drift 10x", func(c *sensors.Config) { c.Gyro.DriftRate *= 10 }, 0},
		{"barometer 3x worse", func(c *sensors.Config) { c.Baro.Sigma *= 3; c.Baro.DriftRate *= 3 }, 0},
		{"driver lane wander", func(*sensors.Config) {}, 0.004},
	}
	var rows [][]string
	for _, v := range variants {
		cfg := sensors.DefaultConfig()
		v.mutate(&cfg)
		// Same seed for every condition: rows differ only in the injected
		// sensor degradation.
		w, err := redWorkloadDriver(opt.Seed+80, cfg, 0, v.steerJitter)
		if err != nil {
			return Table{}, err
		}
		med, err := runFusedMedian(p, w)
		if err != nil {
			return Table{}, err
		}
		rows = append(rows, []string{v.name, cell(med, 3)})
	}
	return Table{
		ID:     "Robustness",
		Title:  "Failure injection: fused estimation error under degraded sensors",
		Note:   "the proposed system keeps working without GPS (localization falls back to odometry; speed sources still flow)",
		Header: []string{"condition", "median |err| (deg)"},
		Rows:   rows,
	}, nil
}

// SpeedSweep measures estimation accuracy across the 15-65 km/h driving
// range of the steering study.
func SpeedSweep(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	r, err := road.RedRoute()
	if err != nil {
		return Table{}, err
	}
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(opt.Seed+4)))
	if err != nil {
		return Table{}, err
	}
	speeds := []float64{15, 25, 40, 55, 65}
	if opt.Quick {
		speeds = []float64{15, 40, 65}
	}
	var rows [][]string
	for i, kmh := range speeds {
		d := vehicle.DefaultDriver(kmh / 3.6)
		d.LaneChangesPerKm = 2
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: d, Rng: rand.New(rand.NewSource(opt.Seed + int64(90+i))),
		})
		if err != nil {
			return Table{}, err
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(opt.Seed+int64(95+i))))
		if err != nil {
			return Table{}, err
		}
		w := &workload{road: r, trip: trip, trace: trc, ref: ref}
		med, err := runFusedMedian(p, w)
		if err != nil {
			return Table{}, err
		}
		rows = append(rows, []string{fmt.Sprintf("%.0f", kmh), cell(med, 3)})
	}
	return Table{
		ID:     "SpeedSweep",
		Title:  "Fused estimation error vs cruise speed (red route)",
		Header: []string{"speed (km/h)", "median |err| (deg)"},
		Rows:   rows,
	}, nil
}
