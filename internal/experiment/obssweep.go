package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"roadgrade/internal/cloud"
	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// ObsSweep charts the cost of the serving observability plane on the mixed
// cloud path (batched binary submits through the write coalescer plus fused
// reads, the cloudload mix): the same deterministic workload runs against an
// in-process HTTP server with tracing off, head-sampled at 1%, and fully
// sampled with the tail-store and SLO engine attached. The table reports
// throughput, submit/fetch latency quantiles, kept-trace counts, and the
// throughput overhead of each configuration against the off baseline.
//
// The expected shape: the 1% production configuration is within noise of off,
// and even 100% sampling — every request allocating spans, every fold span
// linked across the queue, every histogram observation carrying an exemplar —
// stays within the PR's 5% acceptance bar. Wall-clock numbers vary run to
// run; the *ratio* between rows is the claim.
func ObsSweep(opt Options) (Table, error) {
	ops, batch, roads, cells := 4000, 16, 8, 120
	if opt.Quick {
		ops = 400
	}

	type result struct {
		name       string
		throughput float64 // submissions+fetches per second
		submitP50  float64 // seconds, per batched request
		submitP99  float64
		fetchP50   float64
		fetchP99   float64
		kept       int
	}

	quantile := func(xs []float64, q float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		sort.Float64s(xs)
		return xs[int(q*float64(len(xs)-1)+0.5)]
	}

	// runOne drives the workload against a fresh server under one tracing
	// configuration. sample < 0 leaves the tracer disabled; otherwise the
	// full plane is on: head-sampling at that rate, trace store, SLO engine.
	runOne := func(name string, sample float64) (result, error) {
		tr := &obs.Tracer{}
		srv := cloud.NewServerWithShards(8)
		srv.Tracer = tr
		srv.MaxSubmissionsPerRoad = 32
		srv.EnableCoalescing(cloud.CoalesceConfig{})
		defer srv.Close()
		var st *obs.TraceStore
		if sample >= 0 {
			st = srv.EnableTracing(obs.StoreConfig{})
			tr.SetSampleRate(sample)
			if err := srv.EnableSLO(cloud.DefaultObjectives()); err != nil {
				return result{}, err
			}
		}
		defer tr.Disable()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cli, err := cloud.NewClient(ts.URL, ts.Client(),
			cloud.WithTracer(tr), cloud.WithBinaryBatch(true))
		if err != nil {
			return result{}, err
		}

		// Prefill every road synchronously so fetches never 404.
		rng := rand.New(rand.NewSource(opt.Seed + 900))
		profiles := make([]*fusion.Profile, 16)
		for i := range profiles {
			p := &fusion.Profile{
				SpacingM: 5,
				S:        make([]float64, cells),
				GradeRad: make([]float64, cells),
				Var:      make([]float64, cells),
			}
			for c := 0; c < cells; c++ {
				p.S[c] = float64(c) * 5
				p.GradeRad[c] = 0.02 * rng.NormFloat64()
				p.Var[c] = 1e-5
			}
			profiles[i] = p
		}
		roadID := func(i int) string { return fmt.Sprintf("obs-road-%02d", i) }
		for r := 0; r < roads; r++ {
			if err := srv.Submit(roadID(r), profiles[r%len(profiles)]); err != nil {
				return result{}, err
			}
		}

		// Measured phase: one sequential client (scheduler noise would
		// otherwise dominate the single-digit-percent effect being measured),
		// half the ops fused reads, half batched submissions. The warmup
		// round and the forced GC keep configs comparable: the sweep runs
		// all three in one process, and without the barrier the first
		// config would be measured against a fresh heap the others never see.
		ctx := context.Background()
		var submitLat, fetchLat []float64
		items := make([]cloud.BatchItem, 0, batch)
		seq := 0
		warmup := ops / 10
		runtime.GC()
		start := time.Now()
		for i := -warmup; i < ops; i++ {
			if i == 0 {
				submitLat, fetchLat = submitLat[:0], fetchLat[:0]
				runtime.GC()
				start = time.Now()
			}
			if rng.Float64() < 0.5 {
				t0 := time.Now()
				if _, err := cli.FetchProfile(ctx, roadID(rng.Intn(roads))); err != nil {
					return result{}, err
				}
				fetchLat = append(fetchLat, time.Since(t0).Seconds())
				continue
			}
			seq++
			items = append(items, cloud.BatchItem{
				RoadID:  roadID(rng.Intn(roads)),
				Key:     fmt.Sprintf("%s-%d", name, seq),
				Device:  fmt.Sprintf("dev-%02d", seq%24),
				Profile: profiles[seq%len(profiles)],
			})
			if len(items) == batch {
				t0 := time.Now()
				if _, err := cli.SubmitBatch(ctx, items); err != nil {
					return result{}, err
				}
				submitLat = append(submitLat, time.Since(t0).Seconds())
				items = items[:0]
			}
		}
		wall := time.Since(start).Seconds()
		res := result{
			name:       name,
			throughput: float64(ops) / wall,
			submitP50:  quantile(submitLat, 0.50),
			submitP99:  quantile(submitLat, 0.99),
			fetchP50:   quantile(fetchLat, 0.50),
			fetchP99:   quantile(fetchLat, 0.99),
		}
		if st != nil {
			res.kept = st.Len()
		}
		return res, nil
	}

	configs := []struct {
		name   string
		sample float64
	}{
		{"off", -1},
		{"sampled-1pct", 0.01},
		{"full", 1.0},
	}
	// Three interleaved rounds (off, sampled, full, off, ...), best per
	// config: single-run wall clock on a shared machine swings more than the
	// effect under measurement, and interleaving decorrelates slow machine
	// drift from the config order.
	results := make([]result, len(configs))
	for round := 0; round < 3; round++ {
		for i, cfg := range configs {
			r, err := runOne(cfg.name, cfg.sample)
			if err != nil {
				return Table{}, fmt.Errorf("experiment: obssweep %s: %w", cfg.name, err)
			}
			if round == 0 || r.throughput > results[i].throughput {
				results[i] = r
			}
		}
	}

	base := results[0].throughput
	var rows [][]string
	for _, r := range results {
		overhead := (base/r.throughput - 1) * 100
		rows = append(rows, []string{
			r.name,
			cell(r.throughput, 0),
			cell(r.submitP50*1e6, 0), cell(r.submitP99*1e6, 0),
			cell(r.fetchP50*1e6, 0), cell(r.fetchP99*1e6, 0),
			fmt.Sprintf("%d", r.kept),
			cell(overhead, 1),
		})
	}
	return Table{
		ID:    "ObsSweep",
		Title: "Observability overhead sweep: tracing off vs 1% head-sampled vs fully sampled",
		Note: fmt.Sprintf("%d mixed ops (50%% fused reads, 50%% binary submits in batches of %d) on an "+
			"in-process coalescing server; full = every request traced, fold spans linked across the "+
			"queue, exemplars on, SLO engine recording; overhead is throughput loss vs off "+
			"(acceptance bar 5%%; best of three interleaved rounds per config with warmup and GC barriers, "+
			"wall-clock — ratios are the claim)", ops, batch),
		Header: []string{"tracing", "ops/s", "submit p50 (us)", "submit p99 (us)", "fetch p50 (us)", "fetch p99 (us)", "traces kept", "overhead (%)"},
		Rows:   rows,
	}, nil
}
