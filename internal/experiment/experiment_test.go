package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpt is the test-suite configuration: deterministic and small.
var quickOpt = Options{Seed: 1, Quick: true}

func TestTableString(t *testing.T) {
	tb := Table{
		ID:     "X",
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4", "5"}}, // wider row than header
	}
	s := tb.String()
	for _, want := range []string{"X", "demo", "note", "a", "5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact has a registered experiment.
	want := []string{
		// Paper artifacts.
		"table1", "table2", "table3",
		"fig3", "fig4", "fig5",
		"fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b",
		"lanechange", "headline", "uplift",
		// Extension studies.
		"misalignment", "multivehicle", "ablation", "robustness", "robustsweep",
		"poisonsweep", "speedsweep", "obssweep",
		"journey", "routing", "ecoroutes", "emissionmaps", "routescale",
	}
	reg := Registry()
	for _, name := range want {
		if _, ok := reg[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
	if len(Names()) != len(want) {
		t.Errorf("Names() has %d entries", len(Names()))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickOpt); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestCalibrateFromStudy(t *testing.T) {
	cal, err := CalibrateFromStudy(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Drivers) != 10 || len(cal.Features) != 20 {
		t.Fatalf("drivers=%d features=%d", len(cal.Drivers), len(cal.Features))
	}
	th := cal.Thresholds
	// The calibrated δ should be in the neighborhood of the paper's
	// 0.1167 rad/s (our drivers span 0.12-0.18 peak rates).
	if th.DeltaRad < 0.08 || th.DeltaRad > 0.16 {
		t.Errorf("calibrated delta = %v rad/s", th.DeltaRad)
	}
	if th.TMinS <= 0.3 || th.TMinS > 2.5 {
		t.Errorf("calibrated T = %v s", th.TMinS)
	}
	// Determinism.
	cal2, err := CalibrateFromStudy(3)
	if err != nil {
		t.Fatal(err)
	}
	if cal2.Thresholds != th {
		t.Error("calibration not deterministic")
	}
}

func TestTableIValues(t *testing.T) {
	tb, err := TableI(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Average deltas exceed the minimum threshold column.
	min, err := strconv.ParseFloat(tb.Rows[0][5], 64)
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 4; col++ {
		v, err := strconv.ParseFloat(tb.Rows[0][col], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < min {
			t.Errorf("column %d average %v below minimum %v", col, v, min)
		}
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	tb, err := TableIII(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	wantSigns := []string{"+", "-", "+", "-", "+", "-", "+"}
	wantLanes := []string{"1", "1", "1", "1", "2", "2", "1"}
	for i := range wantSigns {
		if tb.Rows[0][i+1] != wantSigns[i] {
			t.Errorf("section %d sign = %s, want %s", i, tb.Rows[0][i+1], wantSigns[i])
		}
		if tb.Rows[1][i+1] != wantLanes[i] {
			t.Errorf("section %d lanes = %s, want %s", i, tb.Rows[1][i+1], wantLanes[i])
		}
	}
}

func TestFigure5SeparatesManeuvers(t *testing.T) {
	tb, err := Figure5(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Rows[0][2], "accepted") {
		t.Errorf("lane change row = %v", tb.Rows[0])
	}
	if !strings.Contains(tb.Rows[1][2], "rejected") {
		t.Errorf("S-curve row = %v", tb.Rows[1])
	}
	// Lane change displacement near 3.65 m.
	w, err := strconv.ParseFloat(tb.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if w < 2.5 || w > 5 {
		t.Errorf("lane change displacement %v, want ~3.65", w)
	}
}

func TestFigure8aOrdering(t *testing.T) {
	tb, err := Figure8a(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// The note carries the MREs; OPS must beat EKF which must beat ANN.
	mres := parseMREs(t, tb.Note)
	if !(mres[0] < mres[1] && mres[1] < mres[2]) {
		t.Errorf("MRE ordering violated: %v", mres)
	}
	if mres[0] > 20 {
		t.Errorf("OPS MRE %v%% too large", mres[0])
	}
}

// parseMREs pulls the three percentages out of the Figure 8(a) note.
func parseMREs(t *testing.T, note string) [3]float64 {
	t.Helper()
	var out [3]float64
	idx := 0
	for _, tok := range strings.Fields(note) {
		for _, prefix := range []string{"OPS=", "EKF=", "ANN="} {
			if strings.HasPrefix(tok, prefix) {
				v := strings.TrimSuffix(strings.TrimPrefix(tok, prefix), "%")
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("parsing %q: %v", tok, err)
				}
				if idx < 3 {
					out[idx] = f
					idx++
				}
			}
		}
	}
	if idx != 3 {
		t.Fatalf("found %d MREs in note %q", idx, note)
	}
	return out
}

func TestFigure8bFusionHelps(t *testing.T) {
	tb, err := Figure8b(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	med1, err := strconv.ParseFloat(tb.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	med4, err := strconv.ParseFloat(tb.Rows[0][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if med4 >= med1*0.8 {
		t.Errorf("4-track fusion median %v not clearly below single-track %v", med4, med1)
	}
}

func TestFigure9bOrdering(t *testing.T) {
	tb, err := Figure9b(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	ekf, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	ann, _ := strconv.ParseFloat(tb.Rows[0][3], 64)
	if !(ops < ekf && ekf < ann) {
		t.Errorf("median ordering violated: OPS=%v EKF=%v ANN=%v", ops, ekf, ann)
	}
}

func TestHeadlineReduction(t *testing.T) {
	tb, err := Headline(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	red := tb.Rows[3][1]
	v, err := strconv.ParseFloat(strings.TrimSuffix(red, "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Paper claims 22%; any clear positive reduction reproduces the shape.
	if v < 10 {
		t.Errorf("error reduction %v%%, want >= 10%%", v)
	}
}

func TestLaneChangeAccuracyHigh(t *testing.T) {
	tb, err := LaneChangeAccuracy(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]string{}
	for _, row := range tb.Rows {
		metrics[row[0]] = row[1]
	}
	for _, key := range []string{"precision", "recall", "direction accuracy"} {
		v, err := strconv.ParseFloat(metrics[key], 64)
		if err != nil {
			t.Fatalf("parsing %s: %v", key, err)
		}
		if v < 0.8 {
			t.Errorf("%s = %v, want >= 0.8", key, v)
		}
	}
	if !strings.HasPrefix(metrics["S-curve false positives"], "0 ") {
		t.Errorf("S-curve false positives: %s", metrics["S-curve false positives"])
	}
}

func TestFuelUpliftPositive(t *testing.T) {
	tb, err := FuelUplift(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	val := strings.Fields(tb.Rows[0][1])[0]
	v, err := strconv.ParseFloat(strings.TrimSuffix(val, "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 5 || v > 90 {
		t.Errorf("uplift = %v%%, outside plausible band", v)
	}
}

func TestFigure9aRuns(t *testing.T) {
	tb, err := Figure9a(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFiguresProduceSeries(t *testing.T) {
	for _, name := range []string{"fig3", "fig4"} {
		tb, err := Run(name, quickOpt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) < 10 {
			t.Errorf("%s produced only %d rows", name, len(tb.Rows))
		}
	}
}

func TestAllDeterministic(t *testing.T) {
	a, err := Run("fig8b", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig8b", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("experiment output not deterministic for equal seeds")
	}
}

func TestTableII(t *testing.T) {
	tb, err := TableII(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "0.0545" {
		t.Errorf("paper GGE cell = %s", tb.Rows[0][1])
	}
}

func BenchmarkQuickFigure8a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure8a(quickOpt); err != nil {
			b.Fatal(err)
		}
	}
}
