package experiment

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"roadgrade/internal/cloud"
	"roadgrade/internal/ecoroute"
	"roadgrade/internal/emission"
	"roadgrade/internal/fusion"
	"roadgrade/internal/road"
	"roadgrade/internal/stats"
)

// truthProfile builds the fused-store submission for one road from its
// ground-truth gradients at 5 m spacing — the steady state a fleet of honest
// vehicles converges to.
func truthProfile(r *road.Road) *fusion.Profile {
	n := int(math.Ceil(r.Length()/5)) + 1
	p := &fusion.Profile{
		SpacingM: 5,
		S:        make([]float64, n),
		GradeRad: make([]float64, n),
		Var:      make([]float64, n),
	}
	for i := range p.S {
		p.S[i] = 5 * float64(i)
		p.GradeRad[i] = r.GradeAt(p.S[i])
		p.Var[i] = 1e-4
	}
	return p
}

// EmissionMaps extends Figure 10(b) from proportional CO₂ to the
// operating-mode pollutants: it stands up an in-process cloud server, feeds
// it truth-derived profiles for every road, and reads back the city-wide
// per-road, per-pollutant emission table from the fused map (the data behind
// a pollutant city map). The second half quantifies why separate pollutant
// objectives matter: over random O/D pairs on the hilly network, min-NOx
// routing diverges from min-fuel — NOx rates jump whole operating-mode bins
// on climbs that fuel, linear in sinθ, still accepts.
func EmissionMaps(opt Options) (Table, error) {
	targetKM := 30.0
	nPairs := 40
	if opt.Quick {
		targetKM = 6
		nPairs = 12
	}
	net, err := cachedNetwork(opt.Seed+1826, targetKM)
	if err != nil {
		return Table{}, err
	}

	// The cloud side: submit every road's truth profile, then read the
	// emission table the way `GET /v1/emissions` serves it.
	srv := cloud.NewServer()
	if err := srv.EnableEmissions(net); err != nil {
		return Table{}, err
	}
	for _, ed := range net.Edges {
		if err := srv.Submit(ed.Road.ID(), truthProfile(ed.Road)); err != nil {
			return Table{}, fmt.Errorf("experiment: submit %s: %w", ed.Road.ID(), err)
		}
	}
	carTable, err := srv.EmissionTable(emission.Car, cruiseKmh)
	if err != nil {
		return Table{}, err
	}
	fused := 0
	nox := make([]float64, 0, len(carTable.Roads))
	for _, row := range carTable.Roads {
		if row.Provenance == "fused" {
			fused++
		}
		nox = append(nox, row.NOxGPerKm)
	}
	sum, err := stats.Summarize(nox)
	if err != nil {
		return Table{}, err
	}

	// Figure 10(a)'s co-location claim, restated for NOx: the steepest
	// quartile of roads out-emits the flattest.
	sorted := append([]cloud.EmissionRoadDTO(nil), carTable.Roads...)
	sort.Slice(sorted, func(i, j int) bool {
		return math.Abs(sorted[i].MeanGradeDeg) < math.Abs(sorted[j].MeanGradeDeg)
	})
	q := len(sorted) / 4
	if q == 0 {
		q = 1
	}
	meanNOx := func(rows []cloud.EmissionRoadDTO) float64 {
		var s float64
		for _, r := range rows {
			s += r.NOxGPerKm
		}
		return s / float64(len(rows))
	}
	flattest := meanNOx(sorted[:q])
	steepest := meanNOx(sorted[len(sorted)-q:])

	classMeans := make([]float64, 0, 3)
	for _, cls := range []emission.VehicleClass{emission.Car, emission.Truck, emission.Bus} {
		tbl, err := srv.EmissionTable(cls, cruiseKmh)
		if err != nil {
			return Table{}, err
		}
		var s float64
		for _, row := range tbl.Roads {
			s += row.NOxGPerKm
		}
		classMeans = append(classMeans, s/float64(len(tbl.Roads)))
	}

	// The routing side: min-NOx vs min-fuel over the same fused map.
	eng, err := ecoroute.NewEngine(net, ecoroute.CloudSource{Store: srv},
		ecoroute.Config{Algorithm: opt.RouteEngine})
	if err != nil {
		return Table{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 41))
	type pair struct{ from, to int }
	var pairs []pair
	for len(pairs) < nPairs {
		from := net.Nodes[rng.Intn(len(net.Nodes))].ID
		to := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		if _, err := eng.Route(ecoroute.Distance, cruiseKmh, from, to); err != nil {
			if errors.Is(err, ecoroute.ErrNoPath) {
				continue
			}
			return Table{}, err
		}
		pairs = append(pairs, pair{from, to})
	}
	diverged := 0
	var noxSave, fuelPenalty float64
	for _, pr := range pairs {
		minFuel, err := eng.Route(ecoroute.Fuel, cruiseKmh, pr.from, pr.to)
		if err != nil {
			return Table{}, err
		}
		minNOx, err := eng.Route(ecoroute.NOx, cruiseKmh, pr.from, pr.to)
		if err != nil {
			return Table{}, err
		}
		if samePath(minFuel.RoadIDs, minNOx.RoadIDs) {
			continue
		}
		diverged++
		fuelNOx, err := eng.PlanEmissions(minFuel)
		if err != nil {
			return Table{}, err
		}
		if g := fuelNOx[emission.NOx]; g > 0 {
			noxSave += (g - minNOx.EmisG[emission.NOx]) / g
		}
		if minFuel.FuelGal > 0 {
			fuelPenalty += (minNOx.FuelGal - minFuel.FuelGal) / minFuel.FuelGal
		}
	}
	divRow := func(v float64) string {
		if diverged == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f%%", v/float64(diverged)*100)
	}

	return Table{
		ID:    "EmissionMaps",
		Title: "City pollutant emission map from the fused gradient map (NOx, 40 km/h)",
		Note: fmt.Sprintf("per-road operating-mode intensities over a %.0f km network; min-NOx vs min-fuel compared on %d O/D pairs; reproduce with `gradebench -exp emissionmaps`",
			netKM(net), len(pairs)),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"roads", fmt.Sprintf("%d", len(carTable.Roads))},
			{"roads with fused provenance", fmt.Sprintf("%d/%d", fused, len(carTable.Roads))},
			{"mean NOx (g/km, car)", cell(sum.Mean, 3)},
			{"median NOx (g/km, car)", cell(sum.Median, 3)},
			{"p90 NOx (g/km, car)", cell(sum.P90, 3)},
			{"mean NOx, flattest quartile (g/km)", cell(flattest, 3)},
			{"mean NOx, steepest quartile (g/km)", cell(steepest, 3)},
			{"steep/flat NOx ratio", cell(steepest/flattest, 2)},
			{"mean NOx (g/km, truck)", cell(classMeans[1], 3)},
			{"mean NOx (g/km, bus)", cell(classMeans[2], 3)},
			{"O/D pairs where min-NOx diverges from min-fuel", fmt.Sprintf("%d/%d", diverged, len(pairs))},
			{"mean NOx saving on diverged pairs", divRow(noxSave)},
			{"mean fuel penalty on diverged pairs", divRow(fuelPenalty)},
		},
	}, nil
}

// samePath reports whether two plans traverse the identical road sequence.
func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
