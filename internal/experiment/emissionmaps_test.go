package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// TestEmissionMaps checks the city-map invariants: every road is covered
// with fused provenance, the steep quartile out-emits the flat one, heavier
// classes out-emit the car, and at least one O/D pair demonstrates the
// min-NOx vs min-fuel divergence the pollutant objectives exist for.
func TestEmissionMaps(t *testing.T) {
	tb, err := EmissionMaps(quickOpt)
	if err != nil {
		t.Fatalf("EmissionMaps: %v", err)
	}
	rows := map[string]string{}
	for _, r := range tb.Rows {
		rows[r[0]] = r[1]
	}
	num := func(key string) float64 {
		v, err := strconv.ParseFloat(rows[key], 64)
		if err != nil {
			t.Fatalf("row %q = %q: %v", key, rows[key], err)
		}
		return v
	}
	frac := func(key string) (int, int) {
		parts := strings.SplitN(rows[key], "/", 2)
		if len(parts) != 2 {
			t.Fatalf("row %q = %q is not a fraction", key, rows[key])
		}
		a, err1 := strconv.Atoi(parts[0])
		b, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("row %q = %q: bad integers", key, rows[key])
		}
		return a, b
	}

	if got, total := frac("roads with fused provenance"); got != total || total == 0 {
		t.Errorf("fused provenance %d/%d after submitting every road", got, total)
	}
	if num("mean NOx (g/km, car)") <= 0 {
		t.Error("car NOx mean not positive")
	}
	flat := num("mean NOx, flattest quartile (g/km)")
	steep := num("mean NOx, steepest quartile (g/km)")
	if steep <= flat {
		t.Errorf("steep quartile %.3f g/km not above flat %.3f — grade drives the map", steep, flat)
	}
	car := num("mean NOx (g/km, car)")
	if num("mean NOx (g/km, truck)") <= car || num("mean NOx (g/km, bus)") <= car {
		t.Error("heavier classes do not out-emit the car")
	}
	div, total := frac("O/D pairs where min-NOx diverges from min-fuel")
	if div < 1 {
		t.Errorf("no O/D pair diverged (%d/%d) — pollutant objectives add nothing", div, total)
	}
	save := rows["mean NOx saving on diverged pairs"]
	if !strings.HasSuffix(save, "%") {
		t.Errorf("NOx saving %q not a percentage", save)
	} else if v, err := strconv.ParseFloat(strings.TrimSuffix(save, "%"), 64); err != nil || v <= 0 {
		t.Errorf("min-NOx routes save %q NOx on diverged pairs, want > 0", save)
	}
	if !strings.Contains(tb.Note, "gradebench -exp emissionmaps") {
		t.Error("note lacks the reproduction command")
	}
}
