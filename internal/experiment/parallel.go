package experiment

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(i) for i in [0, n) on a bounded worker pool and
// returns the first error. Each index must be independent; determinism comes
// from assigning any randomness (seeds) to indices before the parallel
// phase. After an error, remaining indices are skipped (drained) rather than
// executed.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	// done is closed on the first error so the producer stops dispatching
	// instead of feeding every remaining index through the drain path.
	done := make(chan struct{})
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed() {
					continue // drain in-flight work without running it
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
						close(done)
					}
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch // abort; workers exit once next closes
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}
