package experiment

import (
	"fmt"
	"math/rand"

	"roadgrade/internal/groundtruth"
	"roadgrade/internal/road"
	"roadgrade/internal/route"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// Journey drives a multi-street route across the city in one continuous
// trip — junction turns, traffic-light stops and all — and estimates the
// gradient profile of the whole journey. It exercises the conditions the
// per-edge evaluation cannot: intersection turns that must not be mistaken
// for lane changes, stop-and-go traffic, and long-trace filtering.
func Journey(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	targetKM := 40.0
	if opt.Quick {
		targetKM = 10
	}
	net, err := cachedNetwork(opt.Seed+1826, targetKM)
	if err != nil {
		return Table{}, err
	}
	// Route corner to corner and concatenate the edges into one road.
	from := net.Nodes[0].ID
	to := net.Nodes[len(net.Nodes)-1].ID
	rt, err := route.Shortest(net, from, to, route.DistanceCost)
	if err != nil {
		return Table{}, err
	}
	roads := make([]*road.Road, 0, len(rt.Edges))
	for _, e := range rt.Edges {
		roads = append(roads, e.Road)
	}
	journey, err := road.Concat("journey", roads)
	if err != nil {
		return Table{}, fmt.Errorf("experiment: concatenating route: %w", err)
	}

	// Traffic lights: stop at roughly half the junctions.
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	var stops []float64
	var offset float64
	for _, r := range roads[:len(roads)-1] {
		offset += r.Length()
		if rng.Float64() < 0.5 {
			stops = append(stops, offset-8) // stop line just before the junction
		}
	}

	d := vehicle.DefaultDriver(cruiseKmh / 3.6)
	d.LaneChangesPerKm = 1.5
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:          journey,
		Driver:        d,
		Rng:           rand.New(rand.NewSource(opt.Seed + 8)),
		StopAtS:       stops,
		StopDurationS: 6,
	})
	if err != nil {
		return Table{}, err
	}
	trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(opt.Seed+9)))
	if err != nil {
		return Table{}, err
	}
	ref, err := groundtruth.ReferenceFor(journey, rand.New(rand.NewSource(opt.Seed+10)))
	if err != nil {
		return Table{}, err
	}
	w := &workload{road: journey, trip: trip, trace: trc, ref: ref}

	adj, err := p.Adjust(trc, journey.Line())
	if err != nil {
		return Table{}, err
	}
	prof, _, err := fusedProfile(p, w)
	if err != nil {
		return Table{}, err
	}
	errs := profileErrors(prof, ref, skipM)
	med := medianOf(errs)
	mre := profileMRE(prof, ref, skipM)

	// Intersection turns misclassified as lane changes: detections that do
	// NOT correspond to a true maneuver but whose span covers a junction.
	matched := make([]bool, len(adj.Detections))
	for _, ev := range trip.Changes {
		for di, det := range adj.Detections {
			if matched[di] {
				continue
			}
			if det.StartT <= ev.EndT+1 && det.EndT >= ev.StartT-1 {
				matched[di] = true
				break
			}
		}
	}
	var falseAtJunction int
	offset = 0
	junctionS := make([]float64, 0, len(roads)-1)
	for _, r := range roads[:len(roads)-1] {
		offset += r.Length()
		junctionS = append(junctionS, offset)
	}
	for di, det := range adj.Detections {
		if matched[di] {
			continue
		}
		sLo := adj.S[det.StartIdx]
		sHi := adj.S[det.EndIdx-1]
		for _, js := range junctionS {
			if js >= sLo-20 && js <= sHi+20 {
				falseAtJunction++
				break
			}
		}
	}
	return Table{
		ID:     "Journey",
		Title:  "Continuous multi-street journey across the city",
		Note:   "one trip spanning turns and traffic-light stops, estimated end to end",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"route", fmt.Sprintf("%d streets, %.2f km", len(roads), journey.Length()/1000)},
			{"traffic-light stops", fmt.Sprintf("%d", len(stops))},
			{"trip duration", fmt.Sprintf("%.0f s", trip.Duration())},
			{"true lane changes", fmt.Sprintf("%d", len(trip.Changes))},
			{"detections", fmt.Sprintf("%d", len(adj.Detections))},
			{"false detections at junctions", fmt.Sprintf("%d", falseAtJunction)},
			{"median |err|", cell(med, 3) + " deg"},
			{"MRE", fmt.Sprintf("%.1f%%", mre*100)},
		},
	}, nil
}
