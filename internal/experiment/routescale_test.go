package experiment

import (
	"strings"
	"testing"
)

// TestRouteScale checks the engine-comparison invariants on the quick
// workload: one alt and one cch row per scale, and the cch post-tick column
// must prove the re-customization was incremental (a/b with a < b).
func TestRouteScale(t *testing.T) {
	tb, err := RouteScale(quickOpt)
	if err != nil {
		t.Fatalf("RouteScale: %v", err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("quick run produced %d rows, want 2", len(tb.Rows))
	}
	if eng := tb.Rows[0][3]; eng != "alt" {
		t.Fatalf("first row engine = %q, want alt", eng)
	}
	if eng := tb.Rows[1][3]; eng != "cch" {
		t.Fatalf("second row engine = %q, want cch", eng)
	}
	if arcs := tb.Rows[0][8]; arcs != "-" {
		t.Fatalf("alt arcs column = %q, want -", arcs)
	}
	arcs := tb.Rows[1][8]
	frac := strings.Split(arcs, "/")
	if len(frac) != 2 || frac[0] == frac[1] {
		t.Fatalf("cch tick was not incremental: arcs recomputed = %q", arcs)
	}
}
