package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// TestEcoRoutes checks the panel invariants: three planner rows plus the two
// savings rows, the min-fuel planner no worse on fuel than either
// alternative, and the shortest planner shortest on mean length.
func TestEcoRoutes(t *testing.T) {
	tb, err := EcoRoutes(quickOpt)
	if err != nil {
		t.Fatalf("EcoRoutes: %v", err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("got %d rows, want 3 planners + 2 savings", len(tb.Rows))
	}
	col := func(row int, c int) float64 {
		v, err := strconv.ParseFloat(tb.Rows[row][c], 64)
		if err != nil {
			t.Fatalf("row %d col %d %q: %v", row, c, tb.Rows[row][c], err)
		}
		return v
	}
	shortLen, fastLen, ecoLen := col(0, 1), col(1, 1), col(2, 1)
	shortFuel, fastFuel, ecoFuel := col(0, 3), col(1, 3), col(2, 3)
	if ecoFuel > shortFuel || ecoFuel > fastFuel {
		t.Errorf("min-fuel planner burns %.4f gal, shortest %.4f, fastest %.4f — eco must be minimal",
			ecoFuel, shortFuel, fastFuel)
	}
	if shortLen > fastLen || shortLen > ecoLen {
		t.Errorf("shortest planner drives %.3f km, fastest %.3f, eco %.3f — shortest must be minimal",
			shortLen, fastLen, ecoLen)
	}
	if !strings.HasSuffix(tb.Rows[3][1], "%") || !strings.HasSuffix(tb.Rows[4][1], "%") {
		t.Errorf("savings rows %q / %q not percentages", tb.Rows[3][1], tb.Rows[4][1])
	}
	if !strings.Contains(tb.Note, "gradebench -exp ecoroutes") {
		t.Error("note lacks the reproduction command")
	}
}
