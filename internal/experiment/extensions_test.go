package experiment

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing cell %q: %v", s, err)
	}
	return v
}

func TestMisalignmentRecovery(t *testing.T) {
	tb, err := Misalignment(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		naive := parseCell(t, row[1])
		aligned := parseCell(t, row[2])
		mountErr := parseCell(t, row[3])
		// Alignment must restore near-nominal accuracy for every mount.
		if aligned > 0.35 {
			t.Errorf("%s: aligned error %v deg too large", row[0], aligned)
		}
		if mountErr > 1.5 {
			t.Errorf("%s: mount estimate error %v deg", row[0], mountErr)
		}
		// The pitched mounts must be catastrophically bad without
		// alignment (gravity leaks into the longitudinal axis).
		if row[0] == "pitch 10 deg" && naive < 2 {
			t.Errorf("pitched naive error %v deg suspiciously small", naive)
		}
	}
}

func TestMultiVehicleFusionImproves(t *testing.T) {
	tb, err := MultiVehicle(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	first := parseCell(t, tb.Rows[0][1])
	last := parseCell(t, tb.Rows[len(tb.Rows)-1][1])
	if last > first {
		t.Errorf("fusing more vehicles should not hurt: 1 vehicle %v vs all %v", first, last)
	}
}

func TestAblationTwoPassMatters(t *testing.T) {
	tb, err := Ablation(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{}
	for _, row := range tb.Rows {
		metrics[row[0]] = parseCell(t, row[1])
	}
	if metrics["no two-pass smoothing"] <= metrics["full system"] {
		t.Errorf("two-pass ablation should hurt: full %v vs ablated %v",
			metrics["full system"], metrics["no two-pass smoothing"])
	}
	if metrics["no fusion (speedometer only)"] <= metrics["full system"]*0.9 {
		t.Errorf("single-track should not beat the fused system clearly: full %v vs single %v",
			metrics["full system"], metrics["no fusion (speedometer only)"])
	}
}

func TestRobustnessDegradesGracefully(t *testing.T) {
	tb, err := Robustness(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{}
	for _, row := range tb.Rows {
		metrics[row[0]] = parseCell(t, row[1])
	}
	nominal := metrics["nominal sensors"]
	if nominal <= 0 || nominal > 0.5 {
		t.Fatalf("nominal error %v implausible", nominal)
	}
	// The paper's robustness claim: still works without GPS.
	if noGPS := metrics["GPS unavailable"]; noGPS > nominal*2.5 {
		t.Errorf("GPS-free error %v degrades too much vs nominal %v", noGPS, nominal)
	}
	// Severe accel drift hurts but does not explode.
	if drift := metrics["accel drift 5x"]; drift > 1.5 {
		t.Errorf("accel drift error %v exploded", drift)
	}
}

func TestSpeedSweepBounded(t *testing.T) {
	tb, err := SpeedSweep(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if v := parseCell(t, row[1]); v > 0.6 {
			t.Errorf("speed %s km/h: error %v deg too large", row[0], v)
		}
	}
}

func TestJourneyEndToEnd(t *testing.T) {
	tb, err := Journey(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]string{}
	for _, row := range tb.Rows {
		metrics[row[0]] = row[1]
	}
	med := parseCell(t, strings.Fields(metrics["median |err|"])[0])
	if med > 0.5 {
		t.Errorf("journey median error %v deg too large", med)
	}
	if metrics["false detections at junctions"] != "0" {
		t.Errorf("junction turns misclassified as lane changes: %s",
			metrics["false detections at junctions"])
	}
}

func TestRoutingRegretSmall(t *testing.T) {
	tb, err := Routing(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	var regret float64
	for _, row := range tb.Rows {
		if row[0] == "regret of estimates" {
			regret = parseCell(t, strings.TrimSuffix(row[1], "%"))
		}
	}
	// Estimated gradients should plan routes nearly as well as truth.
	if regret > 5 {
		t.Errorf("routing regret %v%% too large", regret)
	}
	if regret < 0 {
		t.Errorf("negative regret %v%% (estimates cannot beat truth on truth)", regret)
	}
}

func TestFigure10Tables(t *testing.T) {
	a, err := Figure10a(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]string{}
	for _, row := range a.Rows {
		metrics[row[0]] = row[1]
	}
	mean := parseCell(t, metrics["mean fuel (gal/h)"])
	if mean < 0.3 || mean > 3 {
		t.Errorf("mean city fuel %v gal/h implausible", mean)
	}
	ratio := parseCell(t, metrics["steep/flat fuel ratio"])
	if ratio <= 1 {
		t.Errorf("steep/flat ratio %v; steep roads must burn more", ratio)
	}

	b, err := Figure10b(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	em := map[string]string{}
	for _, row := range b.Rows {
		em[row[0]] = row[1]
	}
	art := parseCell(t, em["arterial mean (ton/km/h)"])
	loc := parseCell(t, em["local mean (ton/km/h)"])
	if art <= loc {
		t.Errorf("arterial emission %v not above local %v", art, loc)
	}
}

func TestAllQuickRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("All in quick mode still takes a few seconds")
	}
	tables, err := All(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, name := range Names() {
		if !measured[name] {
			want++
		}
	}
	if len(tables) != want {
		t.Errorf("All returned %d tables, want %d (measured experiments are skipped)", len(tables), want)
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Header) == 0 {
			t.Errorf("table %q malformed", tb.Title)
		}
		if seen[tb.ID] {
			t.Errorf("duplicate table id %q", tb.ID)
		}
		seen[tb.ID] = true
	}
}

func TestParallelForSequentialFallbackAndErrors(t *testing.T) {
	// n = 0 and n = 1 paths.
	if err := parallelFor(0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var ran bool
	if err := parallelFor(1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("single-item body did not run")
	}
	// Error propagation.
	boom := func(i int) error {
		if i == 3 {
			return errTest
		}
		return nil
	}
	if err := parallelFor(8, boom); err != errTest {
		t.Errorf("err = %v, want errTest", err)
	}
}

var errTest = errors.New("boom")
