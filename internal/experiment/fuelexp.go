package experiment

import (
	"fmt"
	"math"
	"sort"

	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
	"roadgrade/internal/stats"
)

// cachedNetwork memoizes city-network generation per (seed, target length).
// The experiments generate differently sized networks from the same base
// seed (fuel figures, journey, routing), so the length is part of the key.
// Consumers treat the network as read-only.
func cachedNetwork(seed int64, targetKM float64) (*road.Network, error) {
	return cached(cacheKey{kind: "network", seed: seed, km: targetKM}, func() (*road.Network, error) {
		return road.GenerateNetwork(seed, road.NetworkConfig{TargetStreetKM: targetKM})
	})
}

// evalNetwork builds the city network used by the fuel/emission figures.
func evalNetwork(opt Options) (*road.Network, error) {
	targetKM := 164.8
	if opt.Quick {
		targetKM = 10
	}
	// Default seed 1 reproduces the canonical road.Charlottesville()
	// stand-in (terrain seed 1827).
	return cachedNetwork(opt.Seed+1826, targetKM)
}

// Figure10a reproduces Figure 10(a): average fuel consumption per hour over
// the city at 40 km/h, summarized as the per-road distribution plus the
// correlation the paper highlights (high fuel co-locates with large grade).
func Figure10a(opt Options) (Table, error) {
	net, err := evalNetwork(opt)
	if err != nil {
		return Table{}, err
	}
	params := fuel.TableII()
	fuels, err := fuel.NetworkFuel(net, cruiseKmh/3.6, fuel.TrueGrade, params)
	if err != nil {
		return Table{}, err
	}
	gph := make([]float64, 0, len(fuels))
	for _, f := range fuels {
		gph = append(gph, f.MeanGPH)
	}
	sum, err := stats.Summarize(gph)
	if err != nil {
		return Table{}, err
	}
	// The paper's visual claim: high fuel sits on high-grade segments.
	// Quantify as the mean fuel of the steepest vs flattest quartile.
	sorted := append([]fuel.RoadFuel(nil), fuels...)
	sort.Slice(sorted, func(i, j int) bool {
		return math.Abs(sorted[i].MeanGradeDeg) < math.Abs(sorted[j].MeanGradeDeg)
	})
	q := len(sorted) / 4
	if q == 0 {
		q = 1
	}
	meanOf := func(fs []fuel.RoadFuel) float64 {
		var s float64
		for _, f := range fs {
			s += f.MeanGPH
		}
		return s / float64(len(fs))
	}
	flattest := meanOf(sorted[:q])
	steepest := meanOf(sorted[len(sorted)-q:])
	return Table{
		ID:     "Figure10a",
		Title:  "Average fuel consumption per hour across the city (40 km/h)",
		Note:   "high fuel values co-locate with large road gradients, as in the paper's map",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"roads", fmt.Sprintf("%d", len(fuels))},
			{"mean fuel (gal/h)", cell(sum.Mean, 3)},
			{"median fuel (gal/h)", cell(sum.Median, 3)},
			{"p90 fuel (gal/h)", cell(sum.P90, 3)},
			{"max fuel (gal/h)", cell(sum.Max, 3)},
			{"mean fuel, flattest quartile (gal/h)", cell(flattest, 3)},
			{"mean fuel, steepest quartile (gal/h)", cell(steepest, 3)},
			{"steep/flat fuel ratio", cell(steepest/flattest, 2)},
		},
	}, nil
}

// Figure10b reproduces Figure 10(b): CO₂ emission density (ton/km/hour) per
// road combining per-vehicle fuel with AADT traffic volumes.
func Figure10b(opt Options) (Table, error) {
	net, err := evalNetwork(opt)
	if err != nil {
		return Table{}, err
	}
	params := fuel.TableII()
	speed := cruiseKmh / 3.6
	fuels, err := fuel.NetworkFuel(net, speed, fuel.TrueGrade, params)
	if err != nil {
		return Table{}, err
	}
	emissions, err := fuel.NetworkEmissions(fuels, speed, fuel.CO2GramsPerGallon, opt.Seed)
	if err != nil {
		return Table{}, err
	}
	byClass := map[road.Class][]float64{}
	all := make([]float64, 0, len(emissions))
	for _, e := range emissions {
		byClass[e.Class] = append(byClass[e.Class], e.TonPerKmHour)
		all = append(all, e.TonPerKmHour)
	}
	sum, err := stats.Summarize(all)
	if err != nil {
		return Table{}, err
	}
	rows := [][]string{
		{"all roads mean (ton/km/h)", cell(sum.Mean, 4)},
		{"all roads median (ton/km/h)", cell(sum.Median, 4)},
		{"all roads p90 (ton/km/h)", cell(sum.P90, 4)},
	}
	for _, cls := range []road.Class{road.ClassArterial, road.ClassCollector, road.ClassLocal} {
		vals := byClass[cls]
		if len(vals) == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%s mean (ton/km/h)", cls), cell(stats.Mean(vals), 4),
		})
	}
	return Table{
		ID:     "Figure10b",
		Title:  "CO2 emission density across the city (ton/km/hour)",
		Note:   "emission density follows traffic volume, not just grade — arterials dominate, as the paper observes of its map",
		Header: []string{"metric", "value"},
		Rows:   rows,
	}, nil
}

// FuelUplift reproduces the abstract's application claim: fuel and emission
// estimates increase when road gradient is considered (paper: +33.4%).
func FuelUplift(opt Options) (Table, error) {
	net, err := evalNetwork(opt)
	if err != nil {
		return Table{}, err
	}
	params := fuel.TableII()
	uplift, err := fuel.FuelUplift(net, cruiseKmh/3.6, fuel.TrueGrade, params)
	if err != nil {
		return Table{}, err
	}
	return Table{
		ID:     "FuelUplift",
		Title:  "Fuel/emission estimate increase when considering road gradient",
		Note:   "CO2 and PM2.5 are proportional to fuel, so the same uplift applies to emissions",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"uplift vs flat-road assumption", fmt.Sprintf("%.1f%% (paper: 33.4%%)", uplift*100)},
		},
	}, nil
}
