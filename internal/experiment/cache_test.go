package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCachedColdVsWarmIdentical runs a cache-heavy subset of experiments
// twice — once against a cold cache, once warm — and requires byte-identical
// tables: memoization must not change any result.
func TestCachedColdVsWarmIdentical(t *testing.T) {
	opt := Options{Seed: 1, Quick: true}
	ids := []string{"fig9a", "fig9b", "fig10a", "fig10b", "uplift", "headline"}
	run := func() []byte {
		var tables []Table
		for _, id := range ids {
			tb, err := Run(id, opt)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			tables = append(tables, tb)
		}
		b, err := json.Marshal(tables)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	resetCache()
	cold := run()
	warm := run() // second pass hits every memoized builder
	if string(cold) != string(warm) {
		t.Fatal("warm-cache run differs from cold-cache run")
	}
	resetCache()
	cold2 := run()
	if string(cold) != string(cold2) {
		t.Fatal("cold-cache runs differ across resets")
	}
}

// TestCachedSharesOneBuild checks the memoization actually shares: repeated
// and concurrent calls with one key build once and return the same pointer,
// while distinct keys build separately. Run under -race this also exercises
// the cache's concurrency safety.
func TestCachedSharesOneBuild(t *testing.T) {
	resetCache()
	t.Cleanup(resetCache)
	var builds atomic.Int32
	key := cacheKey{kind: "test", seed: 123}
	build := func() (*CalibrationResult, error) {
		builds.Add(1)
		return &CalibrationResult{Drivers: []string{"x"}}, nil
	}
	const workers = 16
	got := make([]*CalibrationResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := cached(key, build)
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = v
		}(w)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatal("concurrent callers received different instances")
		}
	}
	other, err := cached(cacheKey{kind: "test", seed: 124}, build)
	if err != nil {
		t.Fatal(err)
	}
	if other == got[0] {
		t.Fatal("distinct keys shared one value")
	}
	if builds.Load() != 2 {
		t.Fatalf("distinct key did not build separately")
	}
}

// TestCachedMemoizesErrors: a failed build is remembered, not retried.
func TestCachedMemoizesErrors(t *testing.T) {
	resetCache()
	t.Cleanup(resetCache)
	var builds int
	boom := errors.New("boom")
	build := func() (*CalibrationResult, error) {
		builds++
		return nil, boom
	}
	for i := 0; i < 3; i++ {
		if _, err := cached(cacheKey{kind: "err"}, build); !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	if builds != 1 {
		t.Fatalf("failed builder ran %d times, want 1", builds)
	}
}

// TestCachedExperimentBuildersShare checks the wired builders return the
// shared instance on repeat calls — the property the All() speedup rests on.
func TestCachedExperimentBuildersShare(t *testing.T) {
	resetCache()
	t.Cleanup(resetCache)
	c1, err := CalibrateFromStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CalibrateFromStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("CalibrateFromStudy(1) rebuilt instead of sharing")
	}
	c3, err := CalibrateFromStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("different seeds shared one calibration")
	}
	if reflect.DeepEqual(c1.Thresholds, c3.Thresholds) {
		t.Fatal("different seeds produced identical thresholds (suspicious)")
	}

	opt := Options{Seed: 1, Quick: true}
	w1, km1, err := networkWorkloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	w2, km2, err := networkWorkloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) == 0 || &w1[0] != &w2[0] || km1 != km2 {
		t.Fatal("networkWorkloads rebuilt instead of sharing")
	}

	n1, err := cachedNetwork(1827, 6)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := cachedNetwork(1827, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatal("cachedNetwork rebuilt for one (seed, km)")
	}
	n3, err := cachedNetwork(1827, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n3 == n1 {
		t.Fatal("cachedNetwork shared across different target lengths")
	}
}

// TestParallelForStopsDispatchAfterError: once a worker fails, the producer
// must stop handing out new indices instead of streaming all n through the
// drain path. With maxExtra = workers indices possibly already queued, the
// executed count must stay far below n.
func TestParallelForStopsDispatchAfterError(t *testing.T) {
	const n = 100000
	var executed atomic.Int32
	err := parallelFor(n, func(i int) error {
		executed.Add(1)
		return fmt.Errorf("fail at %d", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := executed.Load(); got > 1000 {
		t.Fatalf("executed %d indices after first error, dispatch did not stop", got)
	}
}

// TestParallelForError checks the first error is returned and successful
// indices still ran.
func TestParallelForError(t *testing.T) {
	var ran atomic.Int32
	err := parallelFor(50, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return errors.New("index 10 failed")
		}
		return nil
	})
	if err == nil || err.Error() != "index 10 failed" {
		t.Fatalf("got %v, want index 10 failure", err)
	}
	if ran.Load() == 0 {
		t.Fatal("nothing ran")
	}
}
