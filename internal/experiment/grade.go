package experiment

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/baseline"
	"roadgrade/internal/core"
	"roadgrade/internal/fusion"
	"roadgrade/internal/geo"
	"roadgrade/internal/groundtruth"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/stats"
	"roadgrade/internal/vehicle"
)

// skipM excludes the first meters of a drive from scoring: every method
// (including the baselines) needs a short convergence window, and the paper
// likewise evaluates steady driving.
const skipM = 100

// trainANNBaseline trains the [8]-style ANN on 4,320 samples collected from
// terrain-derived training roads disjoint from the evaluation routes. The
// trained estimator is memoized per seed; Estimate is stateless, so sharing
// it (even across parallel workers) is safe.
func trainANNBaseline(seed int64) (*baseline.ANNEstimator, error) {
	return cached(cacheKey{kind: "annBaseline", seed: seed}, func() (*baseline.ANNEstimator, error) {
		return buildANNBaseline(seed)
	})
}

func buildANNBaseline(seed int64) (*baseline.ANNEstimator, error) {
	terrain := road.NewTerrain(seed+17, road.TerrainConfig{})
	var traces []*sensors.Trace
	for k := 0; k < 2; k++ {
		b := road.NewPathBuilder(geo.ENU{E: float64(k) * 3000, N: -2000}, 0.4+0.5*float64(k), 5)
		b.Straight(6000)
		line, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("experiment: ANN training road: %w", err)
		}
		prof, err := terrain.ProfileAlong(line, 5)
		if err != nil {
			return nil, fmt.Errorf("experiment: ANN training profile: %w", err)
		}
		r, err := road.NewRoad(fmt.Sprintf("ann-train-%d", k), line, prof, nil, road.ClassLocal)
		if err != nil {
			return nil, fmt.Errorf("experiment: ANN training road: %w", err)
		}
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: vehicle.DefaultDriver(13), Rng: rand.New(rand.NewSource(seed + int64(k))),
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: ANN training trip: %w", err)
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(seed+int64(50+k))))
		if err != nil {
			return nil, fmt.Errorf("experiment: ANN training trace: %w", err)
		}
		traces = append(traces, trc)
	}
	return baseline.TrainANN(traces, baseline.PaperTrainingSamples, rand.New(rand.NewSource(seed+99)))
}

// methodRun holds one workload's per-method absolute errors (degrees).
type methodRun struct {
	ops, ekf, ann []float64
}

// compareMethods runs OPS, the altitude-EKF and the ANN over one workload.
func compareMethods(w *workload, p *core.Pipeline, annEst *baseline.ANNEstimator) (*methodRun, error) {
	adj, err := p.Adjust(w.trace, w.road.Line())
	if err != nil {
		return nil, err
	}
	prof, _, err := fusedProfile(p, w)
	if err != nil {
		return nil, err
	}
	ekfRes, err := baseline.AltitudeEKF(w.trace, adj.S, baseline.AltEKFConfig{})
	if err != nil {
		return nil, err
	}
	annRes, err := annEst.Estimate(w.trace, adj.S)
	if err != nil {
		return nil, err
	}
	return &methodRun{
		ops: profileErrors(prof, w.ref, skipM),
		ekf: seriesErrors(ekfRes.S, ekfRes.GradeRad, w.ref, skipM),
		ann: seriesErrors(annRes.S, annRes.GradeRad, w.ref, skipM),
	}, nil
}

// Figure8a reproduces Figure 8(a): absolute estimation error along the red
// route for OPS, the EKF baseline and the ANN baseline, with the per-method
// MREs (paper: 11.9%, 20.3%, 31.6%).
func Figure8a(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	w, err := redRouteWorkload(opt.Seed + 10)
	if err != nil {
		return Table{}, err
	}
	annEst, err := trainANNBaseline(opt.Seed + 20)
	if err != nil {
		return Table{}, err
	}
	adj, err := p.Adjust(w.trace, w.road.Line())
	if err != nil {
		return Table{}, err
	}
	prof, _, err := fusedProfile(p, w)
	if err != nil {
		return Table{}, err
	}
	ekfRes, err := baseline.AltitudeEKF(w.trace, adj.S, baseline.AltEKFConfig{})
	if err != nil {
		return Table{}, err
	}
	annRes, err := annEst.Estimate(w.trace, adj.S)
	if err != nil {
		return Table{}, err
	}

	// Error-vs-position rows every 100 m.
	lookup := func(s []float64, g []float64, at float64) float64 {
		best, bestD := math.NaN(), math.Inf(1)
		for i := range s {
			if d := math.Abs(s[i] - at); d < bestD {
				bestD = d
				best = g[i]
			}
		}
		return best
	}
	var rows [][]string
	for at := 100.0; at < w.road.Length(); at += 100 {
		truth := refGradeAvg(w.ref, at, 5)
		rows = append(rows, []string{
			cell(at, 0),
			cell(math.Abs(deg(prof.GradeAt(at)-truth)), 3),
			cell(math.Abs(deg(lookup(ekfRes.S, ekfRes.GradeRad, at)-truth)), 3),
			cell(math.Abs(deg(lookup(annRes.S, annRes.GradeRad, at)-truth)), 3),
		})
	}
	opsMRE := profileMRE(prof, w.ref, skipM)
	ekfMRE := seriesMRE(ekfRes.S, ekfRes.GradeRad, w.ref, skipM)
	annMRE := seriesMRE(annRes.S, annRes.GradeRad, w.ref, skipM)
	return Table{
		ID:    "Figure8a",
		Title: "Absolute road gradient estimation error vs position (red route)",
		Note: fmt.Sprintf("MRE: OPS=%.1f%% EKF=%.1f%% ANN=%.1f%% (paper: 11.9%% / 20.3%% / 31.6%%)",
			opsMRE*100, ekfMRE*100, annMRE*100),
		Header: []string{"position (m)", "OPS |err| (deg)", "EKF |err| (deg)", "ANN |err| (deg)"},
		Rows:   rows,
	}, nil
}

// Figure8b reproduces Figure 8(b): error CDFs of the proposed system when
// fusing 1..4 velocity-source tracks (paper: median 0.23° with one track,
// ≈0.09° with fusion; 3+ tracks saturate).
func Figure8b(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	w, err := redRouteWorkload(opt.Seed + 10)
	if err != nil {
		return Table{}, err
	}
	tracks, err := p.EstimateAll(w.trace, w.road.Line())
	if err != nil {
		return Table{}, err
	}
	var cdfs []*stats.CDF
	for n := 1; n <= len(tracks); n++ {
		prof, err := fusion.FuseTracks(tracks[:n], 5, w.road.Length())
		if err != nil {
			return Table{}, err
		}
		errs := profileErrors(prof, w.ref, skipM)
		cdf, err := stats.NewCDF(errs)
		if err != nil {
			return Table{}, err
		}
		cdfs = append(cdfs, cdf)
	}
	header := []string{"metric"}
	for n := range cdfs {
		header = append(header, fmt.Sprintf("%d track(s)", n+1))
	}
	quantRow := func(label string, q float64) []string {
		row := []string{label}
		for _, cdf := range cdfs {
			v, _ := cdf.Quantile(q)
			row = append(row, cell(v, 3))
		}
		return row
	}
	rows := [][]string{
		quantRow("median |err| (deg)", 0.5),
		quantRow("p90 |err| (deg)", 0.9),
	}
	for _, lv := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 1.0} {
		rowCells := []string{fmt.Sprintf("P(err<=%.2f deg)", lv)}
		for _, cdf := range cdfs {
			rowCells = append(rowCells, cell(cdf.At(lv), 2))
		}
		rows = append(rows, rowCells)
	}
	return Table{
		ID:     "Figure8b",
		Title:  "Error CDFs for different numbers of fused tracks (red route)",
		Note:   "paper: median 0.23 deg unfused vs ~0.09 deg fused; 3+ tracks saturate",
		Header: header,
		Rows:   rows,
	}, nil
}

// networkWorkloads simulates a drive over each edge of a synthetic city
// network, returning per-edge workloads. Figures 9(a) and 9(b) consume the
// same drives, so the whole set is memoized per (seed, quick) and shared
// read-only.
func networkWorkloads(opt Options) ([]*workload, float64, error) {
	type result struct {
		works     []*workload
		coveredKM float64
	}
	res, err := cached(cacheKey{kind: "networkWorkloads", seed: opt.Seed, quick: opt.Quick}, func() (*result, error) {
		works, km, err := buildNetworkWorkloads(opt)
		if err != nil {
			return nil, err
		}
		return &result{works: works, coveredKM: km}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	return res.works, res.coveredKM, nil
}

func buildNetworkWorkloads(opt Options) ([]*workload, float64, error) {
	targetKM := 164.8
	if opt.Quick {
		targetKM = 6
	}
	// Default seed 1 reproduces the canonical road.Charlottesville()
	// stand-in (terrain seed 1827).
	net, err := cachedNetwork(opt.Seed+1826, targetKM)
	if err != nil {
		return nil, 0, err
	}
	// Select the drivable edges and pre-assign deterministic seeds, then
	// build the per-edge workloads in parallel (they are independent).
	type job struct {
		road                         *road.Road
		tripSeed, traceSeed, refSeed int64
	}
	var jobs []job
	var coveredKM float64
	rng := rand.New(rand.NewSource(opt.Seed + 5))
	for i, e := range net.Edges {
		// One direction per street suffices for the map.
		if i%2 == 1 {
			continue
		}
		r := e.Road
		if r.Length() < 150 {
			continue
		}
		jobs = append(jobs, job{
			road: r, tripSeed: rng.Int63(), traceSeed: rng.Int63(), refSeed: rng.Int63(),
		})
		coveredKM += r.Length() / 1000
	}
	if len(jobs) == 0 {
		return nil, 0, errors.New("experiment: network produced no drivable edges")
	}
	out := make([]*workload, len(jobs))
	err = parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		d := vehicle.DefaultDriver(cruiseKmh / 3.6)
		d.LaneChangesPerKm = 1.5
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: j.road, Driver: d, Rng: rand.New(rand.NewSource(j.tripSeed)),
		})
		if err != nil {
			return fmt.Errorf("experiment: trip on %s: %w", j.road.ID(), err)
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(j.traceSeed)))
		if err != nil {
			return fmt.Errorf("experiment: trace on %s: %w", j.road.ID(), err)
		}
		ref, err := groundtruth.ReferenceFor(j.road, rand.New(rand.NewSource(j.refSeed)))
		if err != nil {
			return fmt.Errorf("experiment: reference for %s: %w", j.road.ID(), err)
		}
		out[i] = &workload{road: j.road, trip: trip, trace: trc, ref: ref}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, coveredKM, nil
}

// Figure9a reproduces Figure 9(a): the estimated road gradient map of the
// city network and its MRE (paper: 12.4%, close to the small-scale result).
func Figure9a(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	works, coveredKM, err := networkWorkloads(opt)
	if err != nil {
		return Table{}, err
	}
	profs := make([]*fusion.Profile, len(works))
	if err := parallelFor(len(works), func(i int) error {
		prof, _, err := fusedProfile(p, works[i])
		if err != nil {
			return fmt.Errorf("experiment: %s: %w", works[i].road.ID(), err)
		}
		profs[i] = prof
		return nil
	}); err != nil {
		return Table{}, err
	}
	var num, den float64
	totalCells := 0
	for _, prof := range profs {
		totalCells += len(prof.S)
	}
	allErrs := make([]float64, 0, totalCells)
	var gradeBins [5]int // |grade| histogram for the map's color scale
	for wi, w := range works {
		prof := profs[wi]
		for i := range prof.S {
			if prof.S[i] < skipM || prof.S[i] > w.ref.Length() {
				continue
			}
			truth := refGradeAvg(w.ref, prof.S[i], prof.SpacingM)
			num += math.Abs(prof.GradeRad[i] - truth)
			den += math.Abs(truth)
			allErrs = append(allErrs, math.Abs(deg(prof.GradeRad[i]-truth)))
			bin := int(math.Abs(deg(prof.GradeRad[i])))
			if bin > 4 {
				bin = 4
			}
			gradeBins[bin]++
		}
	}
	mre := num / den
	med := medianOf(allErrs)
	total := 0
	for _, c := range gradeBins {
		total += c
	}
	rows := [][]string{
		{"roads driven", fmt.Sprintf("%d", len(works))},
		{"street km covered", cell(coveredKM, 1)},
		{"MRE", fmt.Sprintf("%.1f%% (paper: 12.4%%)", mre*100)},
		{"median |err|", cell(med, 3) + " deg"},
	}
	labels := []string{"0-1", "1-2", "2-3", "3-4", ">=4"}
	for i, c := range gradeBins {
		rows = append(rows, []string{
			fmt.Sprintf("|grade| %s deg (map share)", labels[i]),
			fmt.Sprintf("%.1f%%", 100*float64(c)/float64(total)),
		})
	}
	return Table{
		ID:     "Figure9a",
		Title:  "Estimated road gradient of the city network",
		Note:   "map rendered as the estimated-|grade| distribution over all road cells",
		Header: []string{"metric", "value"},
		Rows:   rows,
	}, nil
}

// Figure9b reproduces Figure 9(b): large-scale error CDFs of OPS vs the EKF
// and ANN baselines (paper medians: 0.09 / 0.13 / 0.36 degrees).
func Figure9b(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	annEst, err := trainANNBaseline(opt.Seed + 20)
	if err != nil {
		return Table{}, err
	}
	works, _, err := networkWorkloads(opt)
	if err != nil {
		return Table{}, err
	}
	runs := make([]*methodRun, len(works))
	if err := parallelFor(len(works), func(i int) error {
		run, err := compareMethods(works[i], p, annEst)
		if err != nil {
			return fmt.Errorf("experiment: %s: %w", works[i].road.ID(), err)
		}
		runs[i] = run
		return nil
	}); err != nil {
		return Table{}, err
	}
	var nOps, nEKF, nANN int
	for _, run := range runs {
		nOps += len(run.ops)
		nEKF += len(run.ekf)
		nANN += len(run.ann)
	}
	ops := make([]float64, 0, nOps)
	ekf := make([]float64, 0, nEKF)
	ann := make([]float64, 0, nANN)
	for _, run := range runs {
		ops = append(ops, run.ops...)
		ekf = append(ekf, run.ekf...)
		ann = append(ann, run.ann...)
	}
	build := func(errs []float64) (*stats.CDF, error) { return stats.NewCDF(errs) }
	opsCDF, err := build(ops)
	if err != nil {
		return Table{}, err
	}
	ekfCDF, err := build(ekf)
	if err != nil {
		return Table{}, err
	}
	annCDF, err := build(ann)
	if err != nil {
		return Table{}, err
	}
	medOPS, _ := opsCDF.Quantile(0.5)
	medEKF, _ := ekfCDF.Quantile(0.5)
	medANN, _ := annCDF.Quantile(0.5)
	rows := [][]string{
		{"median |err| (deg)", cell(medOPS, 3), cell(medEKF, 3), cell(medANN, 3)},
	}
	for _, lv := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 1.0} {
		rows = append(rows, []string{
			fmt.Sprintf("P(err<=%.2f deg)", lv),
			cell(opsCDF.At(lv), 2), cell(ekfCDF.At(lv), 2), cell(annCDF.At(lv), 2),
		})
	}
	return Table{
		ID:     "Figure9b",
		Title:  "Large-scale error CDFs: OPS vs EKF vs ANN",
		Note:   "paper medians at y=0.5: OPS 0.09, EKF 0.13, ANN 0.36 (deg)",
		Header: []string{"metric", "OPS", "EKF", "ANN"},
		Rows:   rows,
	}, nil
}

// Headline reproduces the abstract's estimation-error claim: the error
// reduction of OPS relative to the best existing method (paper: 22%).
func Headline(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	annEst, err := trainANNBaseline(opt.Seed + 20)
	if err != nil {
		return Table{}, err
	}
	w, err := redRouteWorkload(opt.Seed + 10)
	if err != nil {
		return Table{}, err
	}
	run, err := compareMethods(w, p, annEst)
	if err != nil {
		return Table{}, err
	}
	opsMed := medianOf(run.ops)
	ekfMed := medianOf(run.ekf)
	annMed := medianOf(run.ann)
	best := math.Min(ekfMed, annMed)
	reduction := (best - opsMed) / best
	return Table{
		ID:     "Headline",
		Title:  "Estimation error reduction vs existing methods",
		Note:   "paper abstract: error reduced by 22% compared with existing methods",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"OPS median |err| (deg)", cell(opsMed, 3)},
			{"EKF median |err| (deg)", cell(ekfMed, 3)},
			{"ANN median |err| (deg)", cell(annMed, 3)},
			{"reduction vs best baseline", fmt.Sprintf("%.0f%%", reduction*100)},
		},
	}, nil
}
