// Package experiment reproduces every table and figure of the paper's
// evaluation (§IV) on the simulated substrate: each experiment builds its
// workload, runs the system (and the compared methods where the paper does),
// and returns a formatted table with the same rows/series the paper reports.
// DESIGN.md §3 maps experiment IDs to paper artifacts.
package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"roadgrade/internal/core"
	"roadgrade/internal/fusion"
	"roadgrade/internal/geo"
	"roadgrade/internal/groundtruth"
	"roadgrade/internal/lanechange"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/stats"
	"roadgrade/internal/vehicle"
)

// Options configure an experiment run.
type Options struct {
	// Seed drives all randomness; the same seed reproduces the run.
	Seed int64
	// Quick shrinks workloads (fewer drivers, shorter network) so the
	// experiment finishes in test-suite time. Benchmarks and the CLI run
	// with Quick=false.
	Quick bool
	// RouteEngine picks the eco-routing search engine for routing
	// experiments: "alt" (default) or "cch". Route costs are bit-identical
	// either way, so seed-deterministic tables don't depend on it.
	RouteEngine string
}

// Table is a rendered experiment result.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// cell formats a float at the given precision.
func cell(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// deg converts radians to degrees.
func deg(rad float64) float64 { return rad * 180 / math.Pi }

// cruiseKmh is the evaluation cruise speed (§IV-C: 40 km/h).
const cruiseKmh = 40.0

// workload bundles one simulated drive.
type workload struct {
	road  *road.Road
	trip  *vehicle.Trip
	trace *sensors.Trace
	ref   *groundtruth.Reference
}

// redRouteWorkload simulates the small-scale evaluation drive on the
// Table III red route, including lane changes, and builds the §III-D
// reference profile. The workload is memoized per seed and shared read-only
// across experiments.
func redRouteWorkload(seed int64) (*workload, error) {
	return cached(cacheKey{kind: "redRoute", seed: seed}, func() (*workload, error) {
		return buildRedRouteWorkload(seed)
	})
}

func buildRedRouteWorkload(seed int64) (*workload, error) {
	r, err := road.RedRoute()
	if err != nil {
		return nil, err
	}
	d := vehicle.DefaultDriver(cruiseKmh / 3.6)
	d.LaneChangesPerKm = 2
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: d, Rng: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, err
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, err
	}
	ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return nil, err
	}
	return &workload{road: r, trip: trip, trace: trace, ref: ref}, nil
}

// refGradeAvg averages the reference profile over a window centred at s —
// per-1 m reference segments carry altimeter noise, so comparisons happen at
// cell granularity (see groundtruth docs).
func refGradeAvg(ref *groundtruth.Reference, s, window float64) float64 {
	return ref.GradeAvgAt(s, window)
}

// CalibrationResult is the driver-study output: per-maneuver features and
// the derived thresholds.
type CalibrationResult struct {
	Drivers    []string
	Features   []lanechange.ManeuverFeatures // left change at even, right at odd index
	Thresholds lanechange.Thresholds
}

// CalibrateFromStudy runs the ten-driver steering study (§III-B1): each
// driver performs a left and a right lane change at their cruise speed; the
// measured (gyro-noise-corrupted, then smoothed) steering-rate profiles are
// reduced to bump features; thresholds are the minima. The result is
// memoized per seed (nearly every experiment calibrates first) and must be
// treated as read-only.
func CalibrateFromStudy(seed int64) (*CalibrationResult, error) {
	return cached(cacheKey{kind: "calibrate", seed: seed}, func() (*CalibrationResult, error) {
		return calibrateFromStudy(seed)
	})
}

func calibrateFromStudy(seed int64) (*CalibrationResult, error) {
	rng := rand.New(rand.NewSource(seed))
	drivers := vehicle.StudyDrivers(rng)
	gyroNoise := sensors.DefaultConfig().Gyro
	res := &CalibrationResult{}
	const dt = 0.05
	for _, d := range drivers {
		res.Drivers = append(res.Drivers, d.Name)
		for _, dir := range []int{+1, -1} {
			states, err := vehicle.SimulateSingleLaneChange(d, d.TargetSpeedMS, dir, dt)
			if err != nil {
				return nil, fmt.Errorf("experiment: simulating %s maneuver: %w", d.Name, err)
			}
			steer := make([]float64, len(states))
			for i, st := range states {
				steer[i] = st.SteerRate + rng.NormFloat64()*gyroNoise.Sigma
			}
			smoothed, err := lanechange.SmoothProfile(dt, steer, 1.2)
			if err != nil {
				return nil, fmt.Errorf("experiment: smoothing %s profile: %w", d.Name, err)
			}
			f, err := lanechange.ExtractManeuverFeatures(dt, smoothed)
			if err != nil {
				return nil, fmt.Errorf("experiment: extracting %s features: %w", d.Name, err)
			}
			res.Features = append(res.Features, f)
		}
	}
	th, err := lanechange.Calibrate(res.Features)
	if err != nil {
		return nil, fmt.Errorf("experiment: calibrating thresholds: %w", err)
	}
	// The paper takes minima "in order not to miss any bumps whose
	// features are close to our results" — bumps observed on the road sit
	// at the minima ± sensor noise and smoothing attenuation, so leave a
	// tolerance below the study's minima.
	th.DeltaRad *= 0.88
	th.TMinS *= 0.8
	res.Thresholds = th
	return res, nil
}

// opsPipeline builds the proposed system's pipeline with study-calibrated
// thresholds.
func opsPipeline(seed int64) (*core.Pipeline, *CalibrationResult, error) {
	cal, err := CalibrateFromStudy(seed)
	if err != nil {
		return nil, nil, err
	}
	p, err := core.NewPipeline(core.Config{Thresholds: cal.Thresholds})
	if err != nil {
		return nil, nil, err
	}
	return p, cal, nil
}

// fusedProfile runs the full proposed system over a workload: adjust,
// estimate all four tracks, fuse on a 5 m grid.
func fusedProfile(p *core.Pipeline, w *workload) (*fusion.Profile, []*core.Track, error) {
	tracks, err := p.EstimateAll(w.trace, w.road.Line())
	if err != nil {
		return nil, nil, err
	}
	prof, err := fusion.FuseTracks(tracks, 5, w.road.Length())
	if err != nil {
		return nil, nil, err
	}
	return prof, tracks, nil
}

// profileErrors compares a fused profile against the reference, returning
// absolute errors in degrees (skipping the first skipM meters).
func profileErrors(prof *fusion.Profile, ref *groundtruth.Reference, skipM float64) []float64 {
	out := make([]float64, 0, len(prof.S))
	for i := range prof.S {
		if prof.S[i] < skipM || prof.S[i] > ref.Length() {
			continue
		}
		truth := refGradeAvg(ref, prof.S[i], prof.SpacingM)
		out = append(out, math.Abs(deg(prof.GradeRad[i]-truth)))
	}
	return out
}

// profileMRE is Σ|err| / Σ|truth| against the reference.
func profileMRE(prof *fusion.Profile, ref *groundtruth.Reference, skipM float64) float64 {
	var num, den float64
	for i := range prof.S {
		if prof.S[i] < skipM || prof.S[i] > ref.Length() {
			continue
		}
		truth := refGradeAvg(ref, prof.S[i], prof.SpacingM)
		num += math.Abs(prof.GradeRad[i] - truth)
		den += math.Abs(truth)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// seriesErrors compares an arbitrary (S, grade) series against the
// reference, in degrees.
func seriesErrors(s, grade []float64, ref *groundtruth.Reference, skipM float64) []float64 {
	out := make([]float64, 0, len(s))
	for i := range s {
		if s[i] < skipM || s[i] > ref.Length() {
			continue
		}
		truth := refGradeAvg(ref, s[i], 5)
		out = append(out, math.Abs(deg(grade[i]-truth)))
	}
	return out
}

// seriesMRE is the MRE of an (S, grade) series against the reference.
func seriesMRE(s, grade []float64, ref *groundtruth.Reference, skipM float64) float64 {
	var num, den float64
	for i := range s {
		if s[i] < skipM || s[i] > ref.Length() {
			continue
		}
		truth := refGradeAvg(ref, s[i], 5)
		num += math.Abs(grade[i] - truth)
		den += math.Abs(truth)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// medianOf is a convenience wrapper that tolerates empty input.
func medianOf(xs []float64) float64 {
	m, err := stats.Median(xs)
	if err != nil {
		return math.NaN()
	}
	return m
}

// cvilleProjector anchors local frames for geo-referencing output.
func cvilleProjector() *geo.Projector {
	return geo.NewProjector(geo.LatLon{Lat: 38.0293, Lon: -78.4767})
}
