package experiment

import (
	"fmt"
	"math/rand"

	"roadgrade/internal/fuel"
	"roadgrade/internal/fusion"
	"roadgrade/internal/road"
	"roadgrade/internal/route"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// Routing closes the loop the paper motivates: vehicles estimate gradient
// profiles, the cloud fuses them, and a route planner consumes the estimates.
// The experiment measures the fuel regret of planning on estimated gradients
// instead of ground truth — if the regret is near zero, the estimation
// accuracy suffices for the application.
func Routing(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	targetKM := 20.0
	if opt.Quick {
		targetKM = 6
	}
	net, err := cachedNetwork(opt.Seed+1826, targetKM)
	if err != nil {
		return Table{}, err
	}

	// Estimate a fused gradient profile for every street (one direction,
	// mirrored to the reverse edge by negating the profile would not be
	// exact for asymmetric geometry, so both directions are driven).
	// Seeds are assigned sequentially, then the independent per-edge
	// estimation runs in parallel.
	rng := rand.New(rand.NewSource(opt.Seed + 11))
	type job struct {
		road                *road.Road
		tripSeed, traceSeed int64
	}
	var jobs []job
	for _, e := range net.Edges {
		if e.Road.Length() < 150 {
			continue
		}
		jobs = append(jobs, job{road: e.Road, tripSeed: rng.Int63(), traceSeed: rng.Int63()})
	}
	profiles := make([]*fusion.Profile, len(jobs))
	if err := parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		d := vehicle.DefaultDriver(cruiseKmh / 3.6)
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: j.road, Driver: d, Rng: rand.New(rand.NewSource(j.tripSeed)),
		})
		if err != nil {
			return fmt.Errorf("experiment: trip on %s: %w", j.road.ID(), err)
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(j.traceSeed)))
		if err != nil {
			return err
		}
		tracks, err := p.EstimateAll(trc, j.road.Line())
		if err != nil {
			return err
		}
		prof, err := fusion.FuseTracks(tracks, 5, j.road.Length())
		if err != nil {
			return err
		}
		profiles[i] = prof
		return nil
	}); err != nil {
		return Table{}, err
	}
	estimated := make(map[string]*fusion.Profile, len(jobs))
	for i, j := range jobs {
		estimated[j.road.ID()] = profiles[i]
	}
	edgesDriven := len(jobs)

	// Grade source backed by the estimates, falling back to flat where no
	// vehicle has driven (short stubs).
	estGrade := func(r *road.Road, s float64) float64 {
		if prof, ok := estimated[r.ID()]; ok {
			return prof.GradeAt(s)
		}
		return 0
	}

	params := fuel.TableII()
	speed := cruiseKmh / 3.6
	from := net.Nodes[0].ID
	to := net.Nodes[len(net.Nodes)-1].ID

	truthRoute, err := route.Shortest(net, from, to, route.FuelCost(speed, fuel.TrueGrade, params))
	if err != nil {
		return Table{}, err
	}
	estRoute, err := route.Shortest(net, from, to, route.FuelCost(speed, estGrade, params))
	if err != nil {
		return Table{}, err
	}
	distRoute, err := route.Shortest(net, from, to, route.DistanceCost)
	if err != nil {
		return Table{}, err
	}

	// Evaluate every plan on the TRUE gradients.
	evalFuel := func(rt route.Route) (float64, error) {
		return rt.FuelGallons(speed, fuel.TrueGrade, params)
	}
	truthFuel, err := evalFuel(truthRoute)
	if err != nil {
		return Table{}, err
	}
	estFuel, err := evalFuel(estRoute)
	if err != nil {
		return Table{}, err
	}
	distFuel, err := evalFuel(distRoute)
	if err != nil {
		return Table{}, err
	}
	regret := (estFuel - truthFuel) / truthFuel * 100
	return Table{
		ID:     "Routing",
		Title:  "Eco-routing on estimated vs true gradients",
		Note:   "all plans are evaluated on the true gradients; 'regret' is the extra fuel from planning with estimates instead of truth",
		Header: []string{"planner", "roads", "length (km)", "fuel on truth (gal)"},
		Rows: [][]string{
			{"true gradients", fmt.Sprintf("%d", len(truthRoute.Edges)),
				cell(truthRoute.LengthM()/1000, 2), fmt.Sprintf("%.4f", truthFuel)},
			{"estimated gradients", fmt.Sprintf("%d", len(estRoute.Edges)),
				cell(estRoute.LengthM()/1000, 2), fmt.Sprintf("%.4f", estFuel)},
			{"shortest distance", fmt.Sprintf("%d", len(distRoute.Edges)),
				cell(distRoute.LengthM()/1000, 2), fmt.Sprintf("%.4f", distFuel)},
			{"regret of estimates", fmt.Sprintf("%.2f%%", regret), "", ""},
			{"streets estimated", fmt.Sprintf("%d", edgesDriven), "", ""},
		},
	}, nil
}
