package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/frame"
	"roadgrade/internal/lanechange"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// maneuverProfile simulates one lane change at 40 km/h and returns the
// measured (noisy) steering-rate series with its sample interval.
func maneuverProfile(seed int64, dir int) (dt float64, steer, speed []float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	dt = 0.05
	d := vehicle.DefaultDriver(cruiseKmh / 3.6)
	states, err := vehicle.SimulateSingleLaneChange(d, d.TargetSpeedMS, dir, dt)
	if err != nil {
		return 0, nil, nil, err
	}
	gyroSigma := sensors.DefaultConfig().Gyro.Sigma
	steer = make([]float64, len(states))
	speed = make([]float64, len(states))
	for i, st := range states {
		steer[i] = st.SteerRate + rng.NormFloat64()*gyroSigma
		speed[i] = st.Speed
	}
	return dt, steer, speed, nil
}

// downsampleRows renders a series as table rows every strideS seconds.
func downsampleRows(dt float64, series map[string][]float64, order []string, strideS float64) (header []string, rows [][]string) {
	header = append([]string{"t (s)"}, order...)
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	stride := int(strideS / dt)
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		row := []string{cell(float64(i)*dt, 2)}
		for _, name := range order {
			s := series[name]
			if i < len(s) {
				row = append(row, cell(s[i], 4))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return header, rows
}

// Figure3 reproduces Figure 3: the measured (raw) steering-rate profiles of
// a left and a right lane change.
func Figure3(opt Options) (Table, error) {
	dt, left, _, err := maneuverProfile(opt.Seed, +1)
	if err != nil {
		return Table{}, err
	}
	_, right, _, err := maneuverProfile(opt.Seed+1, -1)
	if err != nil {
		return Table{}, err
	}
	header, rows := downsampleRows(dt, map[string][]float64{
		"left (rad/s)":  left,
		"right (rad/s)": right,
	}, []string{"left (rad/s)", "right (rad/s)"}, 0.5)
	return Table{
		ID:     "Figure3",
		Title:  "Average steering rates during lane changes (raw measurements)",
		Note:   "left change: positive bump then negative; right change: the opposite",
		Header: header,
		Rows:   rows,
	}, nil
}

// Figure4 reproduces Figure 4: the local-regression-smoothed profiles with
// their (δ, T) bump annotations.
func Figure4(opt Options) (Table, error) {
	dt, left, _, err := maneuverProfile(opt.Seed, +1)
	if err != nil {
		return Table{}, err
	}
	_, right, _, err := maneuverProfile(opt.Seed+1, -1)
	if err != nil {
		return Table{}, err
	}
	leftSm, err := lanechange.SmoothProfile(dt, left, 1.2)
	if err != nil {
		return Table{}, err
	}
	rightSm, err := lanechange.SmoothProfile(dt, right, 1.2)
	if err != nil {
		return Table{}, err
	}
	fl, err := lanechange.ExtractManeuverFeatures(dt, leftSm)
	if err != nil {
		return Table{}, err
	}
	fr, err := lanechange.ExtractManeuverFeatures(dt, rightSm)
	if err != nil {
		return Table{}, err
	}
	header, rows := downsampleRows(dt, map[string][]float64{
		"left smoothed":  leftSm,
		"right smoothed": rightSm,
	}, []string{"left smoothed", "right smoothed"}, 0.5)
	return Table{
		ID:    "Figure4",
		Title: "Smoothed steering rate profiles during lane changes",
		Note: fmt.Sprintf("left: delta+=%.4f T+=%.2fs delta-=%.4f T-=%.2fs | right: delta+=%.4f T+=%.2fs delta-=%.4f T-=%.2fs",
			fl.DeltaPos, fl.TPos, fl.DeltaNeg, fl.TNeg, fr.DeltaPos, fr.TPos, fr.DeltaNeg, fr.TNeg),
		Header: header,
		Rows:   rows,
	}, nil
}

// Figure5 reproduces Figure 5: the steering-track comparison between a right
// lane change and an S-curve, and the Eq. (1) horizontal displacements that
// separate them (lane change ≈ 3.65 m, S-curve ≫ 3·W_lane).
func Figure5(opt Options) (Table, error) {
	// Lane change displacement from the measured maneuver profile.
	dt, steer, speed, err := maneuverProfile(opt.Seed, -1)
	if err != nil {
		return Table{}, err
	}
	smoothed, err := lanechange.SmoothProfile(dt, steer, 1.2)
	if err != nil {
		return Table{}, err
	}
	wLane := displacementOverBumps(dt, smoothed, speed)

	// S-curve residual steering track: drive the Figure 5 S-sharp road and
	// derive w_steer against the coarse map heading.
	r, err := road.SCurveRoad(0, 0)
	if err != nil {
		return Table{}, err
	}
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:               r,
		Driver:             vehicle.DefaultDriver(cruiseKmh / 3.6),
		Rng:                rand.New(rand.NewSource(opt.Seed + 7)),
		DisableLaneChanges: true,
	})
	if err != nil {
		return Table{}, err
	}
	trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(opt.Seed+8)))
	if err != nil {
		return Table{}, err
	}
	est, err := frame.NewSteeringEstimator(r.Line(), 0)
	if err != nil {
		return Table{}, err
	}
	gyro := make([]float64, len(trc.Records))
	spd := make([]float64, len(trc.Records))
	for i, rec := range trc.Records {
		gyro[i] = rec.GyroYaw
		spd[i] = rec.Speedometer
	}
	sRates, err := est.SteerRates(trc.DT, gyro, spd)
	if err != nil {
		return Table{}, err
	}
	sSmoothed, err := lanechange.SmoothProfile(trc.DT, sRates, 1.2)
	if err != nil {
		return Table{}, err
	}
	// Evaluate Eq. (1) over the span of the leaked bumps, exactly as the
	// detector would when considering this as a candidate lane change.
	wCurve := displacementOverBumps(trc.DT, sSmoothed, spd)

	limit := 3 * vehicle.WLaneM
	verdict := func(w float64) string {
		if math.Abs(w) <= limit {
			return "lane change (accepted)"
		}
		return "S-curve (rejected)"
	}
	return Table{
		ID:     "Figure5",
		Title:  "Lane change vs S-sharp road: horizontal displacement test",
		Note:   fmt.Sprintf("threshold 3*W_lane = %.2f m", limit),
		Header: []string{"maneuver", "displacement W (m)", "classification"},
		Rows: [][]string{
			{"right lane change", cell(math.Abs(wLane), 2), verdict(wLane)},
			{"S-sharp road (r=60m, 35deg)", cell(math.Abs(wCurve), 2), verdict(wCurve)},
		},
	}, nil
}

// LaneChangeAccuracy quantifies the detector against ground-truth maneuvers
// on two-lane drives (the paper: "the results also demonstrate the accuracy
// of our lane change detection"): detection precision/recall, direction
// accuracy, and the S-curve false-positive rate.
func LaneChangeAccuracy(opt Options) (Table, error) {
	cal, err := CalibrateFromStudy(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	det := lanechange.NewDetector(lanechange.Config{Thresholds: cal.Thresholds})

	trips := 6
	if opt.Quick {
		trips = 2
	}
	var truthCount, detected, matched, dirCorrect int
	for k := 0; k < trips; k++ {
		r, err := road.StraightRoad(fmt.Sprintf("lc-%d", k), 3000, road.Deg(1.5), 2)
		if err != nil {
			return Table{}, err
		}
		d := vehicle.DefaultDriver(cruiseKmh / 3.6)
		d.LaneChangesPerKm = 2.5
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: d, Rng: rand.New(rand.NewSource(opt.Seed + int64(100+k))),
		})
		if err != nil {
			return Table{}, err
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(opt.Seed+int64(200+k))))
		if err != nil {
			return Table{}, err
		}
		est, err := frame.NewSteeringEstimator(r.Line(), 0)
		if err != nil {
			return Table{}, err
		}
		gyro := make([]float64, len(trc.Records))
		spd := make([]float64, len(trc.Records))
		for i, rec := range trc.Records {
			gyro[i] = rec.GyroYaw
			spd[i] = rec.Speedometer
		}
		sRates, err := est.SteerRates(trc.DT, gyro, spd)
		if err != nil {
			return Table{}, err
		}
		dets, err := det.Detect(trc.DT, sRates, spd)
		if err != nil {
			return Table{}, err
		}
		truthCount += len(trip.Changes)
		detected += len(dets)
		used := make([]bool, len(dets))
		for _, ev := range trip.Changes {
			for di, dv := range dets {
				if used[di] {
					continue
				}
				// Overlap in time counts as a match.
				if dv.StartT <= ev.EndT+1 && dv.EndT >= ev.StartT-1 {
					used[di] = true
					matched++
					wantDir := lanechange.Right
					if ev.Dir > 0 {
						wantDir = lanechange.Left
					}
					if dv.Dir == wantDir {
						dirCorrect++
					}
					break
				}
			}
		}
	}

	// S-curve false positives.
	curves := 4
	if opt.Quick {
		curves = 2
	}
	var curveFP int
	for k := 0; k < curves; k++ {
		r, err := road.SCurveRoad(55+5*float64(k), road.Deg(30+2*float64(k)))
		if err != nil {
			return Table{}, err
		}
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road:               r,
			Driver:             vehicle.DefaultDriver(cruiseKmh / 3.6),
			Rng:                rand.New(rand.NewSource(opt.Seed + int64(300+k))),
			DisableLaneChanges: true,
		})
		if err != nil {
			return Table{}, err
		}
		trc, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(opt.Seed+int64(400+k))))
		if err != nil {
			return Table{}, err
		}
		est, err := frame.NewSteeringEstimator(r.Line(), 0)
		if err != nil {
			return Table{}, err
		}
		gyro := make([]float64, len(trc.Records))
		spd := make([]float64, len(trc.Records))
		for i, rec := range trc.Records {
			gyro[i] = rec.GyroYaw
			spd[i] = rec.Speedometer
		}
		sRates, err := est.SteerRates(trc.DT, gyro, spd)
		if err != nil {
			return Table{}, err
		}
		dets, err := det.Detect(trc.DT, sRates, spd)
		if err != nil {
			return Table{}, err
		}
		curveFP += len(dets)
	}

	precision, recall, dirAcc := 1.0, 1.0, 1.0
	if detected > 0 {
		precision = float64(matched) / float64(detected)
	}
	if truthCount > 0 {
		recall = float64(matched) / float64(truthCount)
	}
	if matched > 0 {
		dirAcc = float64(dirCorrect) / float64(matched)
	}
	return Table{
		ID:     "LaneChangeAccuracy",
		Title:  "Lane change detection accuracy",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"true lane changes", fmt.Sprintf("%d", truthCount)},
			{"detections", fmt.Sprintf("%d", detected)},
			{"precision", cell(precision, 3)},
			{"recall", cell(recall, 3)},
			{"direction accuracy", cell(dirAcc, 3)},
			{"S-curve false positives", fmt.Sprintf("%d over %d curves", curveFP, curves)},
		},
	}, nil
}

// displacementOverBumps evaluates the Eq. (1) horizontal displacement over
// the span from the first to the last steering bump in a smoothed profile —
// the window the detection state machine uses. Falls back to the whole
// profile when no bumps are found.
func displacementOverBumps(dt float64, smoothed, speed []float64) float64 {
	bumps := lanechange.FindBumps(dt, smoothed, 0.08, 0.4)
	if len(bumps) == 0 {
		return lanechange.Displacement(dt, smoothed, speed)
	}
	start := bumps[0].StartIdx
	end := bumps[len(bumps)-1].EndIdx
	return lanechange.Displacement(dt, smoothed[start:end], speed[start:end])
}
