package experiment

import (
	"fmt"
	"math"

	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
)

// TableI reproduces Table I: the extracted bump features of the ten-driver
// steering study, with per-direction minima and the derived (δ, T)
// thresholds. Paper values: δ = 0.1167 rad/s, T = 1.383 s.
func TableI(opt Options) (Table, error) {
	cal, err := CalibrateFromStudy(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	// Per-column averages over the ten drivers (the Table I cells), plus
	// the raw minima (the paper's "Minimum value" row); the detector's
	// thresholds apply a tolerance margin below those minima.
	var sumDLP, sumDLN, sumDRP, sumDRN float64
	var sumTLP, sumTLN, sumTRP, sumTRN float64
	minDelta, minT := math.Inf(1), math.Inf(1)
	var n float64
	for i := 0; i+1 < len(cal.Features); i += 2 {
		left, right := cal.Features[i], cal.Features[i+1]
		sumDLP += left.DeltaPos
		sumDLN += left.DeltaNeg
		sumTLP += left.TPos
		sumTLN += left.TNeg
		sumDRP += right.DeltaPos
		sumDRN += right.DeltaNeg
		sumTRP += right.TPos
		sumTRN += right.TNeg
		for _, f := range []float64{left.DeltaPos, left.DeltaNeg, right.DeltaPos, right.DeltaNeg} {
			minDelta = math.Min(minDelta, f)
		}
		for _, f := range []float64{left.TPos, left.TNeg, right.TPos, right.TNeg} {
			minT = math.Min(minT, f)
		}
		n++
	}
	if n == 0 {
		return Table{}, fmt.Errorf("experiment: no maneuver features extracted")
	}
	return Table{
		ID:    "TableI",
		Title: "Extracted bump features of the 10-driver steering study",
		Note: fmt.Sprintf("cells are driver averages; 'minimum' is the raw study minimum (paper: delta=0.1167 rad/s, T=1.383 s); the detector thresholds apply a tolerance margin below it (delta=%.4f, T=%.3f). Our sinusoidal maneuvers hold the 0.7-delta band for less time than the paper's flatter-topped human steering, so T runs smaller.",
			cal.Thresholds.DeltaRad, cal.Thresholds.TMinS),
		Header: []string{"feature", "delta_L+", "delta_L-", "delta_R+", "delta_R-", "minimum"},
		Rows: [][]string{
			{"delta (rad/s)", cell(sumDLP/n, 4), cell(sumDLN/n, 4), cell(sumDRP/n, 4),
				cell(sumDRN/n, 4), cell(minDelta, 4)},
			{"T (second)", cell(sumTLP/n, 3), cell(sumTLN/n, 3), cell(sumTRP/n, 3),
				cell(sumTRN/n, 3), cell(minT, 3)},
		},
	}, nil
}

// TableII reproduces Table II: the vehicle parameters of the fuel model,
// printing both the paper's literal row and the physically consistent
// working parameters (see the fuel package note).
func TableII(Options) (Table, error) {
	p := fuel.TableII()
	lit := fuel.PaperTableII
	return Table{
		ID:     "TableII",
		Title:  "Vehicle parameters for performance evaluation",
		Note:   "first row as printed in the paper; second row the dimensionally consistent VSP parameters this library evaluates with (fuel package doc)",
		Header: []string{"set", "GGE", "A", "B", "C", "D", "m"},
		Rows: [][]string{
			{"paper (printed)", cell(lit[0], 4), cell(lit[1], 4), cell(lit[2], 4), cell(lit[3], 4), cell(lit[4], 4), cell(lit[5], 3)},
			{"working (W-basis)", fmt.Sprintf("%.0f Wh/gal", p.GGEWhPerGallon), cell(p.A, 3), cell(p.B, 0), cell(p.C, 1), cell(p.D, 0), cell(p.MassTon, 3)},
		},
	}, nil
}

// TableIII reproduces Table III: the red route's per-section grade sign and
// lane count, measured from the constructed road.
func TableIII(Options) (Table, error) {
	r, err := road.RedRoute()
	if err != nil {
		return Table{}, err
	}
	secs := r.Sections()
	signRow := []string{"uphill(+)/downhill(-)"}
	laneRow := []string{"num. of lanes"}
	header := []string{"section"}
	for i, sec := range secs {
		header = append(header, fmt.Sprintf("%d-%d", i, i+1))
		mid := (sec.StartS + sec.EndS) / 2
		if r.GradeAt(mid) >= 0 {
			signRow = append(signRow, "+")
		} else {
			signRow = append(signRow, "-")
		}
		laneRow = append(laneRow, fmt.Sprintf("%d", sec.Lanes))
	}
	return Table{
		ID:     "TableIII",
		Title:  fmt.Sprintf("Road gradient and lane numbers of the red route (%.2f km)", r.Length()/1000),
		Header: header,
		Rows:   [][]string{signRow, laneRow},
	}, nil
}
