package experiment

import (
	"fmt"
	"sort"

	"roadgrade/internal/obs"
)

// Runner is one experiment entry point.
type Runner func(Options) (Table, error)

// Registry maps experiment IDs to runners, covering every table and figure
// of the paper, the headline claims, and the extension studies (ablations,
// robustness, misalignment, multi-vehicle fusion, speed sweep); see
// DESIGN.md §3.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":     TableI,
		"table2":     TableII,
		"table3":     TableIII,
		"fig3":       Figure3,
		"fig4":       Figure4,
		"fig5":       Figure5,
		"fig8a":      Figure8a,
		"fig8b":      Figure8b,
		"fig9a":      Figure9a,
		"fig9b":      Figure9b,
		"fig10a":     Figure10a,
		"fig10b":     Figure10b,
		"lanechange": LaneChangeAccuracy,
		"headline":   Headline,
		"uplift":     FuelUplift,
		// Extensions beyond the paper's figures.
		"misalignment": Misalignment,
		"multivehicle": MultiVehicle,
		"ablation":     Ablation,
		"obssweep":     ObsSweep,
		"robustness":   Robustness,
		"robustsweep":  RobustnessSweep,
		"poisonsweep":  PoisonSweep,
		"speedsweep":   SpeedSweep,
		"journey":      Journey,
		"routing":      Routing,
		"ecoroutes":    EcoRoutes,
		"emissionmaps": EmissionMaps,
		"routescale":   RouteScale,
	}
}

// Names returns the registered experiment IDs in stable order.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID. Each run is recorded as a span, so a
// `gradebench -tracefile` timeline shows per-experiment walls with the
// pipeline and fusion stages nested inside.
func Run(name string, opt Options) (Table, error) {
	r, ok := Registry()[name]
	if !ok {
		return Table{}, fmt.Errorf("experiment: unknown experiment %q (known: %v)", name, Names())
	}
	sp := obs.DefaultTracer.Start("experiment:"+name, "experiment")
	defer sp.End()
	return r(opt)
}

// measured marks experiments whose tables contain wall-clock measurements
// (throughput, latency) rather than seed-deterministic values. All skips
// them so the full-sweep output stays a pure function of -seed — the
// determinism contract CI diffs against; they run only when requested by
// name with -exp.
var measured = map[string]bool{
	"obssweep":   true,
	"routescale": true,
}

// All runs every registered experiment in stable order, skipping
// wall-clock-measured ones (see measured).
func All(opt Options) ([]Table, error) {
	var out []Table
	for _, name := range Names() {
		if measured[name] {
			continue
		}
		t, err := Run(name, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", name, err)
		}
		out = append(out, t)
	}
	return out, nil
}
