package experiment

import (
	"fmt"
	"math"

	"roadgrade/internal/faultinject"
	"roadgrade/internal/fusion"
	"roadgrade/internal/sensors"
)

// RobustnessSweep runs the red-route drive under every fault-injection plan
// at increasing severity and charts graceful degradation: grade RMSE versus
// fault severity, plus what the hardening machinery did about it (gated
// measurements, filter resets, quarantined tracks). The estimator must fail
// soft — error grows with severity, output stays finite — never hard.
func RobustnessSweep(opt Options) (Table, error) {
	p, _, err := opsPipeline(opt.Seed)
	if err != nil {
		return Table{}, err
	}
	w, err := redRouteWorkload(opt.Seed + 80)
	if err != nil {
		return Table{}, err
	}
	severities := []float64{0.25, 0.5, 1.0}
	if opt.Quick {
		severities = []float64{0.5}
	}

	var rows [][]string
	run := func(label, sevLabel string, trace *sensors.Trace) error {
		tracks, err := p.EstimateAll(trace, w.road.Line())
		if err != nil {
			return fmt.Errorf("experiment: %s: %w", label, err)
		}
		prof, reports, err := fusion.FuseTracksReport(tracks, 5, w.road.Length())
		if err != nil {
			return fmt.Errorf("experiment: %s: fusing: %w", label, err)
		}
		var quarantined, gated, resets int
		for _, r := range reports {
			if r.Quarantined {
				quarantined++
			}
		}
		for _, t := range tracks {
			gated += t.Rejected
			resets += t.Resets
		}
		errs := profileErrors(prof, w.ref, skipM)
		finiteOut := "yes"
		for _, g := range prof.GradeRad {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				finiteOut = "NO"
				break
			}
		}
		rows = append(rows, []string{
			label, sevLabel,
			cell(rmseOf(errs), 3), cell(medianOf(errs), 3),
			fmt.Sprintf("%d", quarantined), fmt.Sprintf("%d", gated),
			fmt.Sprintf("%d", resets), finiteOut,
		})
		return nil
	}

	if err := run("clean", "-", w.trace); err != nil {
		return Table{}, err
	}
	for _, plan := range faultinject.DefaultPlans() {
		for _, sev := range severities {
			if err := run(plan.Name, cell(sev, 2), plan.Apply(w.trace, sev, opt.Seed+900)); err != nil {
				return Table{}, err
			}
		}
	}
	return Table{
		ID:    "RobustnessSweep",
		Title: "Fault-injection sweep: degradation under sensing failures (red route)",
		Note: "deterministic faults injected into the sensor trace (internal/faultinject); " +
			"'gated' counts measurements the NIS gate rejected, 'resets' divergence recoveries, " +
			"'quar.' quarantined tracks — the estimator fails soft, never NaN",
		Header: []string{"fault plan", "severity", "RMSE (deg)", "median |err| (deg)", "quar.", "gated", "resets", "finite"},
		Rows:   rows,
	}, nil
}

// rmseOf is the root-mean-square of a series (NaN on empty input).
func rmseOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs)))
}
