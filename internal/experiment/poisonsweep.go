package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/faultinject"
	"roadgrade/internal/fusion"
)

// PoisonSweep charts the cloud fusion layer under data poisoning: a fleet of
// submitters — a bad fraction of which runs one adversary class
// (internal/faultinject) — feeds the *same* deterministic submission sequence
// into three per-road accumulators that differ only in fusion policy (naive
// inverse-variance, huber, trimmed). The table reports fused-map RMSE against
// ground truth per (class, bad fraction, policy), plus a clean baseline.
//
// The expected shape: naive fusion inherits the adversaries' bias almost
// proportionally (and collapses under overconfident variances); the robust
// policies hold near the clean baseline until colluders approach the
// consensus majority, the documented breakdown point of any per-cell robust
// estimator.
func PoisonSweep(opt Options) (Table, error) {
	devices, rounds := 48, 12
	fracs := []float64{0.1, 0.3, 0.5}
	if opt.Quick {
		devices, rounds = 24, 4
		fracs = []float64{0.3}
	}
	const (
		cells   = 240
		spacing = 5.0
		window  = 64
	)
	truth := make([]float64, cells)
	for c := range truth {
		truth[c] = 0.03 * math.Sin(float64(c)/10)
	}

	policies := []fusion.Policy{fusion.PolicyNaive, fusion.PolicyHuber, fusion.PolicyTrimmed}

	// runOne feeds one poisoned fleet into all three policies at once, off a
	// single rng, so every policy sees bit-identical submissions in the same
	// order. Returns RMSE (degrees) per policy.
	runOne := func(adv faultinject.Adversary, frac float64, seed int64) ([]float64, error) {
		accs := make([]*fusion.RobustAccumulator, len(policies))
		states := make([]map[int]*fusion.DeviceState, len(policies))
		for k, pol := range policies {
			accs[k] = fusion.NewRobustAccumulator(window, fusion.FusionPolicy{Policy: pol})
			states[k] = make(map[int]*fusion.DeviceState, devices)
			for d := 0; d < devices; d++ {
				states[k][d] = fusion.NewDeviceState()
			}
		}
		rng := rand.New(rand.NewSource(seed))
		nBad := int(frac*float64(devices) + 0.5)
		for round := 0; round < rounds; round++ {
			// Shuffled arrival order each round: a fleet's uploads interleave.
			// Without this the sweep charts a different (worst-case) threat —
			// adversaries submitting first and seeding the per-cell consensus
			// before any honest report lands (first-reporter capture, see
			// DESIGN.md §11); arrival order is not an attacker-controlled
			// input at the fusion layer, so the sweep charts the mixed case.
			for _, d := range rng.Perm(devices) {
				// Heterogeneous honest fleet: per-device noise floor in
				// [0.002, 0.006] rad, deterministic in the device index.
				sigma := 0.002 + 0.004*float64(d%5)/4
				p := &fusion.Profile{
					SpacingM: spacing,
					S:        make([]float64, cells),
					GradeRad: make([]float64, cells),
					Var:      make([]float64, cells),
				}
				for c := 0; c < cells; c++ {
					p.S[c] = float64(c) * spacing
					p.GradeRad[c] = truth[c] + sigma*rng.NormFloat64()
					p.Var[c] = sigma * sigma
				}
				if adv != nil && d < nBad {
					adv.Corrupt(p, round, rng)
				}
				for k := range accs {
					if err := accs[k].AddDevice(p, states[k][d]); err != nil {
						return nil, fmt.Errorf("experiment: poisonsweep %s add: %w", policies[k], err)
					}
				}
			}
		}
		out := make([]float64, len(policies))
		for k := range accs {
			fused, err := accs[k].Fused()
			if err != nil {
				return nil, fmt.Errorf("experiment: poisonsweep %s fuse: %w", policies[k], err)
			}
			errs := make([]float64, 0, cells)
			for c := 0; c < cells && c < fused.Len(); c++ {
				errs = append(errs, deg(fused.GradeRad[c]-truth[c]))
			}
			out[k] = rmseOf(errs)
		}
		return out, nil
	}

	var rows [][]string
	addRow := func(class string, fracLabel string, rmse []float64) {
		rows = append(rows, []string{
			class, fracLabel,
			cell(rmse[0], 4), cell(rmse[1], 4), cell(rmse[2], 4),
		})
	}

	clean, err := runOne(nil, 0, opt.Seed+7000)
	if err != nil {
		return Table{}, err
	}
	addRow("clean", "0.00", clean)

	for _, adv := range faultinject.AdversaryClasses() {
		sweep := fracs
		if adv.Name() == "collude" && !opt.Quick {
			// Chart past the breakdown point: colluders as the majority.
			sweep = append(append([]float64(nil), fracs...), 0.6)
		}
		for _, frac := range sweep {
			rmse, err := runOne(adv, frac, opt.Seed+7000)
			if err != nil {
				return Table{}, err
			}
			addRow(adv.Name(), cell(frac, 2), rmse)
		}
	}

	return Table{
		ID:    "PoisonSweep",
		Title: "Data-poisoning sweep: fused-map RMSE by adversary class, bad fraction, and fusion policy",
		Note: fmt.Sprintf("fleet of %d submitters × %d rounds on a %d-cell road, window %d; identical "+
			"submission sequences per policy; trust state (reputation, learned bias) evolves across rounds; "+
			"collusion past ~50%% owns the per-cell consensus — the breakdown point no per-cell estimator survives",
			devices, rounds, cells, window),
		Header: []string{"adversary", "bad frac", "naive RMSE (deg)", "huber RMSE (deg)", "trimmed RMSE (deg)"},
		Rows:   rows,
	}, nil
}
