package experiment

import (
	"errors"
	"fmt"
	"math/rand"

	"roadgrade/internal/ecoroute"
	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
)

// EcoRoutes quantifies what gradient-aware routing buys: over a panel of
// random origin/destination pairs on the city network, it plans each trip
// three ways (shortest distance, fastest, min fuel) with the ecoroute engine
// on ground-truth gradients and reports the panel means under every metric.
// The eco rows at the bottom are the headline: fuel and CO2 saved per trip by
// routing on the gradient map instead of the odometer or the clock.
func EcoRoutes(opt Options) (Table, error) {
	targetKM := 30.0
	nPairs := 50
	if opt.Quick {
		targetKM = 6
		nPairs = 12
	}
	net, err := cachedNetwork(opt.Seed+1826, targetKM)
	if err != nil {
		return Table{}, err
	}
	eng, err := ecoroute.NewEngine(net, ecoroute.TruthSource{}, ecoroute.Config{Algorithm: opt.RouteEngine})
	if err != nil {
		return Table{}, err
	}

	// Draw connected O/D pairs; the generator can leave stray nodes outside
	// the main component, so pairs are validated with a cheap probe route.
	rng := rand.New(rand.NewSource(opt.Seed + 23))
	type pair struct{ from, to int }
	var pairs []pair
	for len(pairs) < nPairs {
		from := net.Nodes[rng.Intn(len(net.Nodes))].ID
		to := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		if _, err := eng.Route(ecoroute.Distance, cruiseKmh, from, to); err != nil {
			if errors.Is(err, ecoroute.ErrNoPath) {
				continue
			}
			return Table{}, err
		}
		pairs = append(pairs, pair{from, to})
	}

	planners := []ecoroute.Objective{ecoroute.Distance, ecoroute.Time, ecoroute.Fuel}
	type agg struct{ lengthM, timeS, fuelGal, co2G float64 }
	sums := make([]agg, len(planners))
	plans := make([][]ecoroute.Plan, len(planners))
	for i := range plans {
		plans[i] = make([]ecoroute.Plan, len(pairs))
	}
	// Pairs are independent; fan them out like every other panel experiment.
	if err := parallelFor(len(pairs), func(j int) error {
		for i, obj := range planners {
			p, err := eng.Route(obj, cruiseKmh, pairs[j].from, pairs[j].to)
			if err != nil {
				return fmt.Errorf("experiment: %s route %d→%d: %w", obj, pairs[j].from, pairs[j].to, err)
			}
			plans[i][j] = p
		}
		return nil
	}); err != nil {
		return Table{}, err
	}
	for i := range planners {
		for j := range pairs {
			p := plans[i][j]
			sums[i].lengthM += p.LengthM
			sums[i].timeS += p.TimeS
			sums[i].fuelGal += p.FuelGal
			sums[i].co2G += p.CO2G
		}
	}

	n := float64(len(pairs))
	rows := make([][]string, 0, len(planners)+2)
	names := []string{"shortest distance", "fastest", "min fuel"}
	for i := range planners {
		rows = append(rows, []string{
			names[i],
			cell(sums[i].lengthM/n/1000, 3),
			cell(sums[i].timeS/n, 1),
			fmt.Sprintf("%.4f", sums[i].fuelGal/n),
			cell(sums[i].co2G/n/1000, 3),
		})
	}
	savings := func(base agg) string {
		if base.fuelGal == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f%%", (base.fuelGal-sums[2].fuelGal)/base.fuelGal*100)
	}
	rows = append(rows,
		[]string{"eco fuel saving vs shortest", savings(sums[0]), "", "", ""},
		[]string{"eco fuel saving vs fastest", savings(sums[1]), "", "", ""},
	)
	return Table{
		ID:    "EcoRoutes",
		Title: "Fuel/emission-optimal routing over the gradient map",
		Note: fmt.Sprintf("%d random O/D pairs on a %.0f km network at %.0f km/h; each planner's routes are evaluated on true gradients (CO2 = fuel x %.0f g/gal); reproduce with `gradebench -exp ecoroutes`",
			len(pairs), netKM(net), cruiseKmh, fuel.CO2GramsPerGallon),
		Header: []string{"planner", "mean length (km)", "mean time (s)", "mean fuel (gal)", "mean CO2 (kg)"},
		Rows:   rows,
	}, nil
}

// netKM returns a network's total street length in km.
func netKM(net *road.Network) float64 { return net.TotalLengthM() / 1000 }
