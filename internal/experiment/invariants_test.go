package experiment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadgrade/internal/core"
	"roadgrade/internal/fuel"
	"roadgrade/internal/fusion"
	"roadgrade/internal/groundtruth"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// System-level invariants checked across random worlds. These complement
// the per-package unit tests: each property runs the real pipeline on a
// fresh random scenario.

// Property: a simulated trip is physically sane for any seed — arc length
// is monotone, speed is bounded, lanes stay within the road, and the trip
// reaches the end.
func TestTripPhysicalInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lanes := 1 + rng.Intn(2)
		grade := (rng.Float64()*2 - 1) * 0.07
		r, err := road.StraightRoad("inv", 800+rng.Float64()*800, grade, lanes)
		if err != nil {
			return false
		}
		d := vehicle.DefaultDriver(8 + rng.Float64()*10)
		d.LaneChangesPerKm = rng.Float64() * 4
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: d, Rng: rng,
		})
		if err != nil {
			return false
		}
		prevS := -1.0
		for _, st := range trip.States {
			if st.S < prevS {
				return false // arc length must be monotone
			}
			prevS = st.S
			if st.Speed < 0 || st.Speed > d.TargetSpeedMS*2+5 {
				return false
			}
			if st.Lane < 0 || st.Lane >= lanes {
				return false
			}
			if math.Abs(st.SteerAngle) > 0.5 {
				return false // heading deviation stays small
			}
		}
		return trip.States[len(trip.States)-1].S >= r.Length()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the EKF gradient estimate stays bounded (no divergence) for any
// seed and grade, and its reported variance stays positive.
func TestPipelineStabilityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grade := (rng.Float64()*2 - 1) * 0.08
		r, err := road.StraightRoad("stab", 600, grade, 1)
		if err != nil {
			return false
		}
		trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
			Road: r, Driver: vehicle.DefaultDriver(10 + rng.Float64()*8), Rng: rng,
		})
		if err != nil {
			return false
		}
		trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rng)
		if err != nil {
			return false
		}
		p, err := core.NewPipeline(core.Config{})
		if err != nil {
			return false
		}
		tracks, err := p.EstimateAll(trace, r.Line())
		if err != nil {
			return false
		}
		for _, tr := range tracks {
			for i := range tr.GradeRad {
				if math.IsNaN(tr.GradeRad[i]) || math.Abs(tr.GradeRad[i]) > math.Pi/4 {
					return false
				}
				if tr.Var[i] <= 0 || math.IsNaN(tr.Var[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: fusing tracks in any order gives the same profile.
func TestFusionPermutationInvariant(t *testing.T) {
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	_, trace := wkSimulate(t, r, 40.0/3.6, 41)
	p, err := core.NewPipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := p.EstimateAll(trace, r.Line())
	if err != nil {
		t.Fatal(err)
	}
	a, err := fusion.FuseTracks(tracks, 5, r.Length())
	if err != nil {
		t.Fatal(err)
	}
	reversed := []*core.Track{tracks[3], tracks[2], tracks[1], tracks[0]}
	b, err := fusion.FuseTracks(reversed, 5, r.Length())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.GradeRad {
		if math.Abs(a.GradeRad[i]-b.GradeRad[i]) > 1e-9 {
			t.Fatalf("fusion is order-dependent at cell %d: %v vs %v", i, a.GradeRad[i], b.GradeRad[i])
		}
	}
}

// Property: the fuel uplift of any (two-way) network is non-negative — the
// idle clamp makes downhill savings smaller than uphill costs, and both
// directions of every street are present.
func TestFuelUpliftNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		net, err := road.GenerateNetwork(seed, road.NetworkConfig{TargetStreetKM: 5})
		if err != nil {
			return false
		}
		u, err := fuel.FuelUplift(net, 40.0/3.6, fuel.TrueGrade, fuel.TableII())
		if err != nil {
			return false
		}
		return u > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: every node of a generated network reaches every other node
// (both directions exist for each street).
func TestNetworkConnectivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		net, err := road.GenerateNetwork(seed, road.NetworkConfig{TargetStreetKM: 6})
		if err != nil {
			return false
		}
		// BFS from node 0.
		visited := map[int]bool{net.Nodes[0].ID: true}
		queue := []int{net.Nodes[0].ID}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range net.Outgoing(cur) {
				if !visited[e.To] {
					visited[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
		// Nodes with no edges at all can exist at the grid fringe when the
		// length budget runs out; every node that has edges must be
		// reachable.
		for _, n := range net.Nodes {
			if len(net.Outgoing(n.ID)) > 0 && !visited[n.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the reference profile and the road's true profile agree for any
// synthetic road, at window granularity.
func TestReferenceAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grade := (rng.Float64()*2 - 1) * 0.06
		r, err := road.StraightRoad("refp", 400, grade, 1)
		if err != nil {
			return false
		}
		ref, err := groundtruth.ReferenceFor(r, rand.New(rand.NewSource(seed+500)))
		if err != nil {
			return false
		}
		for s := 50.0; s < 350; s += 50 {
			if math.Abs(ref.GradeAvgAt(s, 10)-grade) > 0.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// wkSimulate builds a trip + trace (local helper mirroring core's test
// helper without exporting it).
func wkSimulate(t *testing.T, r *road.Road, speedMS float64, seed int64) (*vehicle.Trip, *sensors.Trace) {
	t.Helper()
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road: r, Driver: vehicle.DefaultDriver(speedMS), Rng: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return trip, trace
}
