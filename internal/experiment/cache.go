package experiment

import "sync"

// The experiment suite re-derives the same expensive build products over and
// over: All() runs every registered experiment, and nearly each one starts by
// calibrating the driver study, simulating the red-route drive, training the
// ANN baseline, or generating (and driving) the city network from the same
// seed. Those builders are pure functions of their explicit seeds — every
// random stream is a fresh rand.New(rand.NewSource(seed)) — so their outputs
// are memoized here and shared across experiments.
//
// Cached values are shared pointers, so everything stored MUST be treated as
// read-only by consumers; experiments that mutate a workload (e.g. sensor
// realignment) build their own through the uncached paths.

// cacheKey identifies one deterministic build product. kind names the
// builder; seed/quick/km mirror every input that changes the output (km
// distinguishes the differently sized networks the fuel, journey and routing
// experiments generate from the same seed).
type cacheKey struct {
	kind  string
	seed  int64
	quick bool
	km    float64
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

var buildCache = struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
}{m: map[cacheKey]*cacheEntry{}}

// cached memoizes build under key. Concurrent callers of the same key block
// on one build (per-entry sync.Once); distinct keys build independently.
func cached[V any](key cacheKey, build func() (V, error)) (V, error) {
	buildCache.mu.Lock()
	e, ok := buildCache.m[key]
	if !ok {
		e = &cacheEntry{}
		buildCache.m[key] = e
	}
	buildCache.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	if e.err != nil {
		var zero V
		return zero, e.err
	}
	return e.val.(V), nil
}

// resetCache drops every memoized product (test isolation).
func resetCache() {
	buildCache.mu.Lock()
	buildCache.m = map[cacheKey]*cacheEntry{}
	buildCache.mu.Unlock()
}
