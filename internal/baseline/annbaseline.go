package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"roadgrade/internal/ann"
	"roadgrade/internal/sensors"
)

// PaperTrainingSamples is the training set size §IV reports (4,320 samples);
// the paper attributes the ANN's weak accuracy to this limited set.
const PaperTrainingSamples = 4320

// ANNEstimator is the [8]-style baseline: a feedforward network mapping
// smartphone-measured (velocity, acceleration, altitude-history) features to
// road gradient.
type ANNEstimator struct {
	net *ann.Network
	dt  float64
}

// annFeatures builds the input vector at tick i of a trace: normalized
// speed, longitudinal acceleration, and two barometric altitude differences
// (2 s and 5 s windows) that give the network the altitude trend the paper's
// inputs carry.
func annFeatures(trace *sensors.Trace, i int) []float64 {
	rec := trace.Records[i]
	w2 := int(2.0 / trace.DT)
	w5 := int(5.0 / trace.DT)
	dz2, dz5 := 0.0, 0.0
	if i >= w2 {
		dz2 = rec.BaroAlt - trace.Records[i-w2].BaroAlt
	}
	if i >= w5 {
		dz5 = rec.BaroAlt - trace.Records[i-w5].BaroAlt
	}
	return []float64{
		rec.Speedometer / 20,
		rec.AccelLong / 3,
		dz2 / 5,
		dz5 / 10,
	}
}

// gradeScale normalizes the training target (radians) into the network's
// comfortable output range.
const gradeScale = 10

// TrainANN fits the baseline on traces that carry ground-truth labels
// (Truth states), using at most maxSamples samples — the paper uses 4,320.
// Samples are drawn uniformly across the traces.
func TrainANN(traces []*sensors.Trace, maxSamples int, rng *rand.Rand) (*ANNEstimator, error) {
	if len(traces) == 0 {
		return nil, errors.New("baseline: no training traces")
	}
	if rng == nil {
		return nil, errors.New("baseline: rng is required")
	}
	if maxSamples <= 0 {
		maxSamples = PaperTrainingSamples
	}
	var inputs, targets [][]float64
	var total int
	for _, tr := range traces {
		if len(tr.Truth) != len(tr.Records) {
			return nil, errors.New("baseline: training trace lacks ground truth")
		}
		total += len(tr.Records)
	}
	if total == 0 {
		return nil, errors.New("baseline: empty training traces")
	}
	stride := total / maxSamples
	if stride < 1 {
		stride = 1
	}
	for _, tr := range traces {
		for i := 0; i < len(tr.Records); i += stride {
			if len(inputs) >= maxSamples {
				break
			}
			inputs = append(inputs, annFeatures(tr, i))
			targets = append(targets, []float64{tr.Truth[i].Grade * gradeScale})
		}
	}
	net, err := ann.New(4, []ann.LayerSpec{
		{Units: 12, Act: ann.Tanh},
		{Units: 1, Act: ann.Identity},
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: building ANN: %w", err)
	}
	// Deliberately modest training budget: the paper reports the ANN is
	// undertrained at this sample count and retrains periodically.
	if _, err := net.Train(inputs, targets, ann.TrainConfig{
		Epochs:       30,
		LearningRate: 0.005,
		Rng:          rng,
	}); err != nil {
		return nil, fmt.Errorf("baseline: training ANN: %w", err)
	}
	return &ANNEstimator{net: net, dt: traces[0].DT}, nil
}

// Estimate runs the trained network over a trace. s georeferences the
// output, as in AltitudeEKF.
func (a *ANNEstimator) Estimate(trace *sensors.Trace, s []float64) (*Result, error) {
	if a == nil || a.net == nil {
		return nil, errors.New("baseline: ANN not trained")
	}
	if trace == nil || len(trace.Records) == 0 {
		return nil, errors.New("baseline: empty trace")
	}
	if len(s) != len(trace.Records) {
		return nil, fmt.Errorf("baseline: position series %d != records %d", len(s), len(trace.Records))
	}
	res := &Result{
		T:        make([]float64, 0, len(trace.Records)),
		S:        make([]float64, 0, len(trace.Records)),
		GradeRad: make([]float64, 0, len(trace.Records)),
	}
	for i, rec := range trace.Records {
		out, err := a.net.Predict(annFeatures(trace, i))
		if err != nil {
			return nil, fmt.Errorf("baseline: ANN predict at t=%.2f: %w", rec.T, err)
		}
		grade := out[0] / gradeScale
		if math.Abs(grade) > math.Pi/6 {
			grade = math.Copysign(math.Pi/6, grade)
		}
		res.T = append(res.T, rec.T)
		res.S = append(res.S, s[i])
		res.GradeRad = append(res.GradeRad, grade)
	}
	return res, nil
}
