// Package baseline implements the two road-gradient estimators the paper
// compares against (§IV "Compared Methods"):
//
//   - EKF: the altitude-based Extended Kalman Filter of Sahlholm &
//     Johansson [7], here driven by the smartphone barometer and
//     speedometer, with the driving torque derived from vehicle speed,
//     acceleration and mass exactly as the paper's comparison does.
//   - ANN: the artificial-neural-network method of [8], trained on 4,320
//     samples of (velocity, acceleration, altitude) features with
//     ground-truth gradient labels.
//
// Both are causal single-pass estimators without lane-change handling or
// track fusion, which is the methodological gap the paper's system closes.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/kalman"
	"roadgrade/internal/mat"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

// Result is a baseline gradient estimate series, aligned with the trace.
type Result struct {
	T        []float64
	S        []float64
	GradeRad []float64
}

// Len returns the number of samples.
func (r *Result) Len() int { return len(r.T) }

// AltEKFConfig tunes the altitude-EKF baseline.
type AltEKFConfig struct {
	// SpeedoSigma / BaroSigma are measurement noise standard deviations
	// (defaults 0.25 m/s, 2.5 m).
	SpeedoSigma float64
	BaroSigma   float64
	// ProcessNoiseV, ProcessNoiseZ, ProcessNoiseTheta per √s
	// (defaults 0.05, 0.05, 0.012).
	ProcessNoiseV     float64
	ProcessNoiseZ     float64
	ProcessNoiseTheta float64
}

func (c AltEKFConfig) withDefaults() AltEKFConfig {
	if c.SpeedoSigma <= 0 {
		c.SpeedoSigma = 0.25
	}
	if c.BaroSigma <= 0 {
		c.BaroSigma = 2.5
	}
	if c.ProcessNoiseV <= 0 {
		c.ProcessNoiseV = 0.05
	}
	if c.ProcessNoiseZ <= 0 {
		c.ProcessNoiseZ = 0.05
	}
	if c.ProcessNoiseTheta <= 0 {
		c.ProcessNoiseTheta = 0.012
	}
	return c
}

// AltitudeEKF runs the [7]-style filter over a trace. s is the per-tick arc
// position used only to georeference the output (the same localization every
// method shares in the evaluation).
func AltitudeEKF(trace *sensors.Trace, s []float64, cfg AltEKFConfig) (*Result, error) {
	if trace == nil || len(trace.Records) == 0 {
		return nil, errors.New("baseline: empty trace")
	}
	if len(s) != len(trace.Records) {
		return nil, fmt.Errorf("baseline: position series %d != records %d", len(s), len(trace.Records))
	}
	cfg = cfg.withDefaults()
	dt := trace.DT

	// State [v, z, θ]; â is fed per-step like the core model.
	var accel float64
	model := kalman.Model{
		StateDim: 3,
		MeasDim:  2,
		Predict: func(x []float64) []float64 {
			v, z, theta := x[0], x[1], clamp(x[2])
			return []float64{
				math.Max(0, v+(accel-vehicle.Gravity*math.Sin(theta))*dt),
				z + v*math.Sin(theta)*dt,
				theta,
			}
		},
		PredictJacobian: func(x []float64) *mat.Matrix {
			v, theta := x[0], clamp(x[2])
			return mat.FromRows([][]float64{
				{1, 0, -vehicle.Gravity * math.Cos(theta) * dt},
				{math.Sin(theta) * dt, 1, v * math.Cos(theta) * dt},
				{0, 0, 1},
			})
		},
		Measure: func(x []float64) []float64 { return []float64{x[0], x[1]} },
		MeasureJacobian: func(x []float64) *mat.Matrix {
			return mat.FromRows([][]float64{{1, 0, 0}, {0, 1, 0}})
		},
	}
	first := trace.Records[0]
	f, err := kalman.NewFilter(model,
		[]float64{first.Speedometer, first.BaroAlt, 0},
		mat.Diag(1, cfg.BaroSigma*cfg.BaroSigma, deg2(2)),
		mat.Diag(
			cfg.ProcessNoiseV*cfg.ProcessNoiseV*dt,
			cfg.ProcessNoiseZ*cfg.ProcessNoiseZ*dt,
			cfg.ProcessNoiseTheta*cfg.ProcessNoiseTheta*dt,
		),
		mat.Diag(cfg.SpeedoSigma*cfg.SpeedoSigma, cfg.BaroSigma*cfg.BaroSigma),
	)
	if err != nil {
		return nil, fmt.Errorf("baseline: building altitude EKF: %w", err)
	}
	res := &Result{
		T:        make([]float64, 0, len(trace.Records)),
		S:        make([]float64, 0, len(trace.Records)),
		GradeRad: make([]float64, 0, len(trace.Records)),
	}
	for i, rec := range trace.Records {
		accel = rec.AccelLong
		f.Predict()
		if _, err := f.Update([]float64{rec.Speedometer, rec.BaroAlt}); err != nil {
			return nil, fmt.Errorf("baseline: altitude EKF update at t=%.2f: %w", rec.T, err)
		}
		res.T = append(res.T, rec.T)
		res.S = append(res.S, s[i])
		res.GradeRad = append(res.GradeRad, f.StateAt(2))
	}
	return res, nil
}

func clamp(theta float64) float64 {
	const lim = math.Pi / 6
	if theta > lim {
		return lim
	}
	if theta < -lim {
		return -lim
	}
	return theta
}

func deg2(d float64) float64 {
	r := d * math.Pi / 180
	return r * r
}
