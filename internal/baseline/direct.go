package baseline

import (
	"errors"
	"fmt"

	"roadgrade/internal/sensors"
	"roadgrade/internal/smoothing"
	"roadgrade/internal/vehicle"
)

// DirectEq3 evaluates the paper's Eq. (3) pointwise, with no filtering:
//
//	θ = arcsin(M/(r·m·g) − ρ·A_f·C_d·v²/(2·m·g) − a/g) − β
//
// M comes from the OBD torque reading, v from the speedometer, and the
// kinematic acceleration a from a smoothed speedometer derivative. This is
// the naive estimator the paper's EKF machinery improves on — useful as the
// "why filtering matters" reference in ablations.
func DirectEq3(trace *sensors.Trace, s []float64, params vehicle.Params) (*Result, error) {
	if trace == nil || len(trace.Records) == 0 {
		return nil, errors.New("baseline: empty trace")
	}
	if len(s) != len(trace.Records) {
		return nil, fmt.Errorf("baseline: position series %d != records %d", len(s), len(trace.Records))
	}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: invalid params: %w", err)
	}
	n := len(trace.Records)
	dt := trace.DT

	// Kinematic acceleration from the speedometer: smooth, then central
	// difference. The smoothing window (1 s) trades derivative noise for
	// lag, exactly the compromise the EKF avoids.
	speeds := make([]float64, n)
	for i, rec := range trace.Records {
		speeds[i] = rec.Speedometer
	}
	half := int(0.5 / dt)
	smoothed := smoothing.MovingAverage(speeds, half)
	accel := make([]float64, n)
	for i := range accel {
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		if hi > lo {
			accel[i] = (smoothed[hi] - smoothed[lo]) / (float64(hi-lo) * dt)
		}
	}

	res := &Result{
		T:        make([]float64, 0, n),
		S:        make([]float64, 0, n),
		GradeRad: make([]float64, 0, n),
	}
	for i, rec := range trace.Records {
		theta := params.GradeFromStates(rec.CANTorque, rec.Speedometer, accel[i])
		res.T = append(res.T, rec.T)
		res.S = append(res.S, s[i])
		res.GradeRad = append(res.GradeRad, theta)
	}
	return res, nil
}
