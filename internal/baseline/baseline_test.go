package baseline

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/geo"
	"roadgrade/internal/road"
	"roadgrade/internal/sensors"
	"roadgrade/internal/vehicle"
)

func makeTrace(t testing.TB, r *road.Road, speedMS float64, seed int64) *sensors.Trace {
	t.Helper()
	trip, err := vehicle.SimulateTrip(vehicle.TripConfig{
		Road:   r,
		Driver: vehicle.DefaultDriver(speedMS),
		Rng:    rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sensors.Sample(trip, sensors.DefaultConfig(), rand.New(rand.NewSource(seed+500)))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func truthS(trace *sensors.Trace) []float64 {
	s := make([]float64, len(trace.Records))
	for i := range s {
		s[i] = trace.Truth[i].S
	}
	return s
}

func TestAltitudeEKFValidation(t *testing.T) {
	r, _ := road.StraightRoad("x", 300, 0, 1)
	trace := makeTrace(t, r, 12, 1)
	if _, err := AltitudeEKF(nil, nil, AltEKFConfig{}); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := AltitudeEKF(trace, []float64{1}, AltEKFConfig{}); err == nil {
		t.Error("mismatched positions should error")
	}
}

func TestAltitudeEKFConstantGrade(t *testing.T) {
	const grade = 3.0
	r, err := road.StraightRoad("up", 1500, road.Deg(grade), 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := makeTrace(t, r, 13, 2)
	res, err := AltitudeEKF(trace, truthS(trace), AltEKFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(trace.Records) {
		t.Fatalf("result len %d", res.Len())
	}
	// After convergence the estimate should be near the truth, though
	// looser than the proposed system (barometer-driven).
	var sum float64
	var n int
	for i := range res.T {
		if res.T[i] < 40 {
			continue
		}
		sum += res.GradeRad[i]
		n++
	}
	got := sum / float64(n) * 180 / math.Pi
	if math.Abs(got-grade) > 1.0 {
		t.Errorf("mean grade = %v deg, want ~%v", got, grade)
	}
}

func TestAltitudeEKFWorseThanPerfect(t *testing.T) {
	// Sanity: the baseline's error on a varying-grade route is nonzero and
	// bounded (it works, just not as well as the paper's system).
	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	trace := makeTrace(t, r, 40.0/3.6, 3)
	res, err := AltitudeEKF(trace, truthS(trace), AltEKFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for i := range res.T {
		if res.T[i] < 30 {
			continue
		}
		errs = append(errs, math.Abs(res.GradeRad[i]-r.GradeAt(res.S[i]))*180/math.Pi)
	}
	med := medianOf(errs)
	if med <= 0 {
		t.Error("suspiciously perfect baseline")
	}
	if med > 2.0 {
		t.Errorf("median error %v deg; baseline broken", med)
	}
}

func TestTrainANNValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := TrainANN(nil, 100, rng); err == nil {
		t.Error("no traces should error")
	}
	r, _ := road.StraightRoad("x", 200, 0, 1)
	trace := makeTrace(t, r, 12, 5)
	if _, err := TrainANN([]*sensors.Trace{trace}, 100, nil); err == nil {
		t.Error("nil rng should error")
	}
	noTruth := &sensors.Trace{DT: trace.DT, Records: trace.Records}
	if _, err := TrainANN([]*sensors.Trace{noTruth}, 100, rng); err == nil {
		t.Error("trace without truth should error")
	}
}

func TestANNTrainsAndEstimates(t *testing.T) {
	// Train on terrain-derived roads, evaluate on the red route.
	terrain := road.NewTerrain(17, road.TerrainConfig{})
	b := road.NewPathBuilder(geo.ENU{}, 0.4, 5)
	b.Straight(6000)
	line, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := terrain.ProfileAlong(line, 5)
	if err != nil {
		t.Fatal(err)
	}
	trainRoad, err := road.NewRoad("train", line, prof, nil, road.ClassLocal)
	if err != nil {
		t.Fatal(err)
	}
	trainTrace := makeTrace(t, trainRoad, 13, 6)
	est, err := TrainANN([]*sensors.Trace{trainTrace}, PaperTrainingSamples, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	r, err := road.RedRoute()
	if err != nil {
		t.Fatal(err)
	}
	evalTrace := makeTrace(t, r, 40.0/3.6, 8)
	res, err := est.Estimate(evalTrace, truthS(evalTrace))
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for i := range res.T {
		if res.T[i] < 30 {
			continue
		}
		errs = append(errs, math.Abs(res.GradeRad[i]-r.GradeAt(res.S[i]))*180/math.Pi)
	}
	med := medianOf(errs)
	// The ANN should be meaningfully correlated with the truth (beats a
	// zero predictor on this hilly route) but clearly weaker than the EKFs.
	if med > 3.0 {
		t.Errorf("ANN median error %v deg; training failed", med)
	}
	if med == 0 {
		t.Error("ANN suspiciously perfect")
	}
}

func TestANNEstimateValidation(t *testing.T) {
	var nilEst *ANNEstimator
	if _, err := nilEst.Estimate(nil, nil); err == nil {
		t.Error("nil estimator should error")
	}
	r, _ := road.StraightRoad("x", 200, 0, 1)
	trace := makeTrace(t, r, 12, 9)
	est, err := TrainANN([]*sensors.Trace{trace}, 200, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(nil, nil); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := est.Estimate(trace, []float64{1}); err == nil {
		t.Error("mismatched positions should error")
	}
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func BenchmarkAltitudeEKF(b *testing.B) {
	r, err := road.RedRoute()
	if err != nil {
		b.Fatal(err)
	}
	trace := makeTrace(b, r, 40.0/3.6, 11)
	s := truthS(trace)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AltitudeEKF(trace, s, AltEKFConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDirectEq3ConstantGrade(t *testing.T) {
	const grade = 3.0
	r, err := road.StraightRoad("direct", 1500, road.Deg(grade), 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := makeTrace(t, r, 13, 20)
	res, err := DirectEq3(trace, truthS(trace), vehicle.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The mean of the noisy pointwise estimate recovers the grade, but
	// individual samples are far noisier than the EKF output.
	var sum float64
	var n int
	var errs []float64
	for i := range res.T {
		if res.T[i] < 20 {
			continue
		}
		sum += res.GradeRad[i]
		errs = append(errs, math.Abs(res.GradeRad[i]-road.Deg(grade))*180/math.Pi)
		n++
	}
	mean := sum / float64(n) * 180 / math.Pi
	if math.Abs(mean-grade) > 0.6 {
		t.Errorf("mean direct grade %v deg, want ~%v", mean, grade)
	}
	med := medianOf(errs)
	if med < 0.2 {
		t.Errorf("direct Eq.(3) median error %v deg suspiciously good; torque noise should dominate", med)
	}
	if med > 5 {
		t.Errorf("direct Eq.(3) median error %v deg; estimator broken", med)
	}
}

func TestDirectEq3Validation(t *testing.T) {
	if _, err := DirectEq3(nil, nil, vehicle.DefaultParams()); err == nil {
		t.Error("nil trace should error")
	}
	r, _ := road.StraightRoad("x", 300, 0, 1)
	trace := makeTrace(t, r, 12, 21)
	if _, err := DirectEq3(trace, []float64{1}, vehicle.DefaultParams()); err == nil {
		t.Error("mismatched positions should error")
	}
	bad := vehicle.Params{MassKg: -1}
	if _, err := DirectEq3(trace, truthS(trace), bad); err == nil {
		t.Error("invalid params should error")
	}
}
