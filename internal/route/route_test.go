package route

import (
	"errors"
	"math"
	"testing"

	"roadgrade/internal/fuel"
	"roadgrade/internal/geo"
	"roadgrade/internal/road"
)

// diamondNetwork builds a four-node diamond: 0 -> 1 -> 3 (hilly but short)
// and 0 -> 2 -> 3 (flat but longer).
func diamondNetwork(t *testing.T) *road.Network {
	t.Helper()
	nodes := []road.Node{
		{ID: 0, Pos: geo.ENU{E: 0, N: 0}},
		{ID: 1, Pos: geo.ENU{E: 500, N: 200}},
		{ID: 2, Pos: geo.ENU{E: 500, N: -300}},
		{ID: 3, Pos: geo.ENU{E: 1000, N: 0}},
	}
	mk := func(id string, length, gradeDeg float64) *road.Road {
		r, err := road.StraightRoad(id, length, road.Deg(gradeDeg), 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	edges := []*road.Edge{
		{From: 0, To: 1, Road: mk("up-a", 500, 4)},
		{From: 1, To: 3, Road: mk("up-b", 500, 4)},
		{From: 0, To: 2, Road: mk("flat-a", 700, 0)},
		{From: 2, To: 3, Road: mk("flat-b", 700, 0)},
	}
	net, err := road.NewNetwork(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDistanceCostPrefersShort(t *testing.T) {
	net := diamondNetwork(t)
	r, err := Shortest(net, 0, 3, DistanceCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 2 || r.Edges[0].Road.ID() != "up-a" {
		t.Errorf("distance route = %v", ids(r))
	}
	if math.Abs(r.LengthM()-1000) > 1 {
		t.Errorf("length = %v", r.LengthM())
	}
}

func TestFuelCostAvoidsHill(t *testing.T) {
	net := diamondNetwork(t)
	v := 40.0 / 3.6
	r, err := Shortest(net, 0, 3, FuelCost(v, fuel.TrueGrade, fuel.TableII()))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 2 || r.Edges[0].Road.ID() != "flat-a" {
		t.Errorf("fuel route = %v; the 4-degree climb should cost more than 400 extra meters", ids(r))
	}
	// Fuel on the eco route is below fuel on the short route.
	short, err := Shortest(net, 0, 3, DistanceCost)
	if err != nil {
		t.Fatal(err)
	}
	fEco, err := r.FuelGallons(v, fuel.TrueGrade, fuel.TableII())
	if err != nil {
		t.Fatal(err)
	}
	fShort, err := short.FuelGallons(v, fuel.TrueGrade, fuel.TableII())
	if err != nil {
		t.Fatal(err)
	}
	if fEco >= fShort {
		t.Errorf("eco fuel %v >= short fuel %v", fEco, fShort)
	}
}

func TestTimeCost(t *testing.T) {
	net := diamondNetwork(t)
	r, err := Shortest(net, 0, 3, TimeCost(10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-100) > 0.5 {
		t.Errorf("time = %v, want ~100 s", r.Cost)
	}
	if _, err := Shortest(net, 0, 3, TimeCost(0)); err == nil {
		t.Error("zero speed should error")
	}
}

func TestShortestValidation(t *testing.T) {
	net := diamondNetwork(t)
	if _, err := Shortest(nil, 0, 1, DistanceCost); err == nil {
		t.Error("nil network should error")
	}
	if _, err := Shortest(net, 0, 1, nil); err == nil {
		t.Error("nil cost should error")
	}
	if _, err := Shortest(net, 0, 99, DistanceCost); err == nil {
		t.Error("unknown endpoint should error")
	}
}

func TestShortestSameNode(t *testing.T) {
	net := diamondNetwork(t)
	r, err := Shortest(net, 2, 2, DistanceCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 0 || r.Cost != 0 {
		t.Errorf("self route = %+v", r)
	}
}

func TestShortestUnreachable(t *testing.T) {
	// 5 is isolated.
	nodes := []road.Node{{ID: 0}, {ID: 5, Pos: geo.ENU{E: 9999, N: 9999}}}
	net, err := road.NewNetwork(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Shortest(net, 0, 5, DistanceCost); err == nil {
		t.Error("unreachable target should error")
	}
}

func TestNegativeCostRejected(t *testing.T) {
	net := diamondNetwork(t)
	bad := func(e *road.Edge) (float64, error) { return -1, nil }
	if _, err := Shortest(net, 0, 3, bad); err == nil {
		t.Error("negative cost should error")
	}
	failing := func(e *road.Edge) (float64, error) { return 0, errors.New("boom") }
	if _, err := Shortest(net, 0, 3, failing); err == nil {
		t.Error("cost error should propagate")
	}
}

func TestShortestOnGeneratedNetwork(t *testing.T) {
	net, err := road.GenerateNetwork(13, road.NetworkConfig{TargetStreetKM: 15})
	if err != nil {
		t.Fatal(err)
	}
	from := net.Nodes[0].ID
	to := net.Nodes[len(net.Nodes)-1].ID
	r, err := Shortest(net, from, to, DistanceCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) == 0 {
		t.Fatal("empty route across grid")
	}
	// Route is connected: consecutive edges share nodes.
	for i := 1; i < len(r.Edges); i++ {
		if r.Edges[i].From != r.Edges[i-1].To {
			t.Fatalf("disconnected route at %d", i)
		}
	}
	if r.Edges[0].From != from || r.Edges[len(r.Edges)-1].To != to {
		t.Error("route endpoints wrong")
	}
}

func ids(r Route) []string {
	out := make([]string, 0, len(r.Edges))
	for _, e := range r.Edges {
		out = append(out, e.Road.ID())
	}
	return out
}

func BenchmarkShortestDistance(b *testing.B) {
	net, err := road.GenerateNetwork(13, road.NetworkConfig{TargetStreetKM: 40})
	if err != nil {
		b.Fatal(err)
	}
	from := net.Nodes[0].ID
	to := net.Nodes[len(net.Nodes)-1].ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Shortest(net, from, to, DistanceCost); err != nil {
			b.Fatal(err)
		}
	}
}
