// Package route implements eco-routing on the road network — the
// application the paper motivates: once road gradients are known, fuel
// consumption per road is predictable and routes can be planned to minimize
// fuel rather than distance. Routing is Dijkstra's algorithm over the
// directed edge graph with a pluggable edge-cost function.
package route

import (
	"container/heap"
	"errors"
	"fmt"

	"roadgrade/internal/fuel"
	"roadgrade/internal/road"
)

// CostFunc assigns a non-negative traversal cost to an edge.
type CostFunc func(e *road.Edge) (float64, error)

// DistanceCost minimizes travelled meters.
func DistanceCost(e *road.Edge) (float64, error) {
	return e.Road.Length(), nil
}

// TimeCost minimizes travel time at a fixed cruise speed.
func TimeCost(speedMS float64) CostFunc {
	return func(e *road.Edge) (float64, error) {
		if speedMS <= 0 {
			return 0, fmt.Errorf("route: speed %v must be positive", speedMS)
		}
		return e.Road.Length() / speedMS, nil
	}
}

// FuelCost minimizes gallons burned, integrating the Eq. (7) rate over each
// edge's gradient profile at a fixed cruise speed. grade selects the profile
// (true or estimated).
func FuelCost(speedMS float64, grade fuel.GradeFunc, params fuel.VSPParams) CostFunc {
	return func(e *road.Edge) (float64, error) {
		rf, err := fuel.RoadFuelAt(e.Road, speedMS, grade, params)
		if err != nil {
			return 0, err
		}
		hours := e.Road.Length() / speedMS / 3600
		return rf.MeanGPH * hours, nil
	}
}

// Route is a path through the network.
type Route struct {
	Edges []*road.Edge
	// Cost is the summed edge cost under the requested CostFunc.
	Cost float64
}

// LengthM returns the route's total length.
func (r Route) LengthM() float64 {
	var sum float64
	for _, e := range r.Edges {
		sum += e.Road.Length()
	}
	return sum
}

// FuelGallons evaluates the route's fuel under a grade source, regardless of
// the cost function it was planned with.
func (r Route) FuelGallons(speedMS float64, grade fuel.GradeFunc, params fuel.VSPParams) (float64, error) {
	var sum float64
	costFn := FuelCost(speedMS, grade, params)
	for _, e := range r.Edges {
		c, err := costFn(e)
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum, nil
}

// pqItem is a priority-queue entry.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Shortest runs Dijkstra from node `from` to node `to` under cost.
func Shortest(net *road.Network, from, to int, cost CostFunc) (Route, error) {
	if net == nil {
		return Route{}, errors.New("route: nil network")
	}
	if cost == nil {
		return Route{}, errors.New("route: nil cost function")
	}
	valid := make(map[int]bool, len(net.Nodes))
	for _, n := range net.Nodes {
		valid[n.ID] = true
	}
	if !valid[from] || !valid[to] {
		return Route{}, fmt.Errorf("route: unknown endpoint %d -> %d", from, to)
	}

	dist := map[int]float64{from: 0}
	prev := map[int]*road.Edge{}
	done := map[int]bool{}
	q := &pq{{node: from, dist: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == to {
			break
		}
		for _, e := range net.Outgoing(cur.node) {
			if done[e.To] {
				continue
			}
			c, err := cost(e)
			if err != nil {
				return Route{}, fmt.Errorf("route: cost of %s: %w", e.Road.ID(), err)
			}
			if c < 0 {
				return Route{}, fmt.Errorf("route: negative cost %v on %s", c, e.Road.ID())
			}
			nd := cur.dist + c
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = e
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if !done[to] {
		if from == to {
			return Route{Cost: 0}, nil
		}
		return Route{}, fmt.Errorf("route: no path from %d to %d", from, to)
	}

	// Reconstruct.
	var edges []*road.Edge
	for at := to; at != from; {
		e := prev[at]
		if e == nil {
			return Route{}, fmt.Errorf("route: broken predecessor chain at %d", at)
		}
		edges = append(edges, e)
		at = e.From
	}
	// Reverse into travel order.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return Route{Edges: edges, Cost: dist[to]}, nil
}
