// Package lanechange implements §III-B of the paper: bump feature extraction
// from steering-rate profiles (Table I), the lane-change detection state
// machine (Algorithm 1) with the horizontal-displacement test of Eq. (1)
// that separates lane changes from S-curves, and the longitudinal-velocity
// correction of Eq. (2).
package lanechange

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/smoothing"
)

// Bump is one steering-rate lobe: a maximal same-sign excursion of the
// profile.
type Bump struct {
	StartIdx int     // first sample of the lobe
	EndIdx   int     // one past the last sample
	Sign     int     // +1 positive lobe, -1 negative
	PeakRad  float64 // δ: maximum |w| in the lobe (rad/s)
	// DurAt07S is T: how long |w| stays within [0.7·peak, peak] (s).
	DurAt07S float64
}

// StartT returns the lobe start time given the sample interval.
func (b Bump) StartT(dt float64) float64 { return float64(b.StartIdx) * dt }

// EndT returns the lobe end time given the sample interval.
func (b Bump) EndT(dt float64) float64 { return float64(b.EndIdx) * dt }

// FindBumps scans a (smoothed) steering-rate profile for lobes whose peak
// magnitude reaches at least minPeak and whose time above 70% of their own
// peak lasts at least minDur — the two necessary bump conditions of
// §III-B1. Pass minPeak = 0 and minDur = 0 to enumerate all lobes above the
// noise floor (used during calibration).
func FindBumps(dt float64, steer []float64, minPeak, minDur float64) []Bump {
	const noiseFloor = 0.02 // rad/s; below this a sample belongs to no lobe
	var bumps []Bump
	i := 0
	n := len(steer)
	for i < n {
		if math.Abs(steer[i]) < noiseFloor {
			i++
			continue
		}
		sign := 1
		if steer[i] < 0 {
			sign = -1
		}
		start := i
		peak := 0.0
		for i < n && float64(sign)*steer[i] >= noiseFloor {
			if v := math.Abs(steer[i]); v > peak {
				peak = v
			}
			i++
		}
		end := i
		// Time within [0.7 peak, peak].
		var above int
		for j := start; j < end; j++ {
			if math.Abs(steer[j]) >= 0.7*peak {
				above++
			}
		}
		dur := float64(above) * dt
		if peak >= minPeak && dur >= minDur {
			bumps = append(bumps, Bump{
				StartIdx: start, EndIdx: end, Sign: sign,
				PeakRad: peak, DurAt07S: dur,
			})
		}
	}
	return bumps
}

// ManeuverFeatures are the Table I quantities for one lane-change maneuver:
// peak magnitude and 0.7δ-band duration of the positive and negative bumps.
type ManeuverFeatures struct {
	DeltaPos float64 // δ⁺ (rad/s)
	DeltaNeg float64 // δ⁻ (rad/s)
	TPos     float64 // T⁺ (s)
	TNeg     float64 // T⁻ (s)
}

// ExtractManeuverFeatures reduces one maneuver's steering-rate profile to
// its bump features. The profile must contain exactly one positive and one
// negative dominant lobe (a single lane change).
func ExtractManeuverFeatures(dt float64, steer []float64) (ManeuverFeatures, error) {
	if dt <= 0 {
		return ManeuverFeatures{}, fmt.Errorf("lanechange: invalid dt %v", dt)
	}
	bumps := FindBumps(dt, steer, 0, 0)
	var pos, neg *Bump
	for i := range bumps {
		b := &bumps[i]
		switch {
		case b.Sign > 0 && (pos == nil || b.PeakRad > pos.PeakRad):
			pos = b
		case b.Sign < 0 && (neg == nil || b.PeakRad > neg.PeakRad):
			neg = b
		}
	}
	if pos == nil || neg == nil {
		return ManeuverFeatures{}, errors.New("lanechange: profile lacks an opposite bump pair")
	}
	return ManeuverFeatures{
		DeltaPos: pos.PeakRad,
		DeltaNeg: neg.PeakRad,
		TPos:     pos.DurAt07S,
		TNeg:     neg.DurAt07S,
	}, nil
}

// Thresholds are the calibrated detection thresholds: δ and T are the
// minimum peak magnitude and minimum 0.7δ-band duration over every observed
// bump, per the Table I procedure ("minimum values ... in order not to miss
// any bumps").
type Thresholds struct {
	DeltaRad float64
	TMinS    float64
}

// PaperThresholds are the values Table I reports: δ = 0.1167 rad/s,
// T = 1.383 s. They describe the paper's human drivers, whose steering-rate
// bumps have flatter tops (longer time in the 0.7δ band) than this
// simulator's sinusoidal maneuvers.
var PaperThresholds = Thresholds{DeltaRad: 0.1167, TMinS: 1.383}

// SimulatorThresholds match the maneuvers this repository's driver model
// produces, obtained with the same calibration procedure
// (experiment.CalibrateFromStudy). Use Calibrate on your own driver data
// when plugging in real traces.
var SimulatorThresholds = Thresholds{DeltaRad: 0.11, TMinS: 0.55}

// Calibrate reduces a set of maneuver features (e.g. 10 drivers × left and
// right changes) to detection thresholds.
func Calibrate(features []ManeuverFeatures) (Thresholds, error) {
	if len(features) == 0 {
		return Thresholds{}, errors.New("lanechange: no features to calibrate from")
	}
	th := Thresholds{DeltaRad: math.Inf(1), TMinS: math.Inf(1)}
	for _, f := range features {
		th.DeltaRad = math.Min(th.DeltaRad, math.Min(f.DeltaPos, f.DeltaNeg))
		th.TMinS = math.Min(th.TMinS, math.Min(f.TPos, f.TNeg))
	}
	if th.DeltaRad <= 0 || th.TMinS <= 0 {
		return Thresholds{}, fmt.Errorf("lanechange: degenerate calibration %+v", th)
	}
	return th, nil
}

// SmoothProfile applies the paper's local-regression smoothing [16] to a raw
// steering-rate profile, using a fixed time window (default 1.2 s) converted
// to a LOESS span.
func SmoothProfile(dt float64, steer []float64, windowS float64) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("lanechange: invalid dt %v", dt)
	}
	if len(steer) == 0 {
		return nil, errors.New("lanechange: empty profile")
	}
	if windowS <= 0 {
		windowS = 1.2
	}
	total := float64(len(steer)) * dt
	span := windowS / total
	if span > 1 {
		span = 1
	}
	// LOESS needs at least degree+1 points in the window.
	if span*float64(len(steer)) < 4 {
		span = 4 / float64(len(steer))
		if span > 1 {
			span = 1
		}
	}
	l, err := smoothing.NewLoess(span, 2)
	if err != nil {
		return nil, fmt.Errorf("lanechange: building smoother: %w", err)
	}
	xs := make([]float64, len(steer))
	for i := range xs {
		xs[i] = float64(i) * dt
	}
	out, err := l.Smooth(xs, steer)
	if err != nil {
		return nil, fmt.Errorf("lanechange: smoothing profile: %w", err)
	}
	return out, nil
}
