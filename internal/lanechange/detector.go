package lanechange

import (
	"errors"
	"fmt"
	"math"
)

// Direction labels a detected lane change.
type Direction int

// Lane-change directions. A left change shows a positive bump first
// (counter-clockwise steering), a right change a negative bump first.
const (
	Left Direction = iota + 1
	Right
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Detection is one detected lane change.
type Detection struct {
	// StartIdx/EndIdx span both bumps in the sample stream.
	StartIdx int
	EndIdx   int
	StartT   float64
	EndT     float64
	Dir      Direction
	// DisplacementM is the Eq. (1) horizontal displacement over the span.
	DisplacementM float64
}

// Config tunes the detector.
type Config struct {
	// Thresholds are the calibrated (δ, T); defaults to PaperThresholds.
	Thresholds Thresholds
	// WLaneM is the nominal lane-change displacement (default 3.65 m);
	// detections with |W| > 3·WLaneM are rejected as S-curves per §III-B2.
	WLaneM float64
	// MaxGapS is how long a lone bump stays pending before it expires
	// (default 6 s). The paper leaves this implicit; without it, bumps
	// minutes apart would be paired.
	MaxGapS float64
	// SmoothWindowS is the local-regression window (default 1.2 s);
	// set negative to skip smoothing (profile already smoothed).
	SmoothWindowS float64
}

func (c Config) withDefaults() Config {
	if c.Thresholds.DeltaRad <= 0 || c.Thresholds.TMinS <= 0 {
		c.Thresholds = PaperThresholds
	}
	if c.WLaneM <= 0 {
		c.WLaneM = 3.65
	}
	if c.MaxGapS <= 0 {
		c.MaxGapS = 6
	}
	if c.SmoothWindowS == 0 {
		c.SmoothWindowS = 1.2
	}
	return c
}

// Detector implements Algorithm 1 over a sampled steering-rate profile.
type Detector struct {
	cfg Config
}

// NewDetector returns a detector with the given config (zero value = paper
// defaults).
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Detect runs lane-change detection over a trip's steering-rate and speed
// series sampled at interval dt, returning the detections in time order.
func (d *Detector) Detect(dt float64, steer, speed []float64) ([]Detection, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("lanechange: invalid dt %v", dt)
	}
	if len(steer) != len(speed) {
		return nil, fmt.Errorf("lanechange: steer/speed length mismatch %d vs %d", len(steer), len(speed))
	}
	if len(steer) == 0 {
		return nil, errors.New("lanechange: empty profile")
	}
	profile := steer
	if d.cfg.SmoothWindowS > 0 {
		sm, err := SmoothProfile(dt, steer, d.cfg.SmoothWindowS)
		if err != nil {
			return nil, err
		}
		profile = sm
	}
	th := d.cfg.Thresholds
	bumps := FindBumps(dt, profile, th.DeltaRad, th.TMinS)

	// Algorithm 1: pair consecutive opposite-sign bumps, verify the
	// horizontal displacement, classify by the first bump's sign.
	var out []Detection
	var pending *Bump
	for i := range bumps {
		b := bumps[i]
		if pending == nil {
			pending = &bumps[i] // STATE: no-bump -> one-bump
			continue
		}
		if b.StartT(dt)-pending.EndT(dt) > d.cfg.MaxGapS {
			pending = &bumps[i] // stale pending bump expires
			continue
		}
		if b.Sign == pending.Sign {
			// Same sign: per Algorithm 1, continue; keep the newer bump as
			// pending so a following opposite bump pairs with it.
			pending = &bumps[i]
			continue
		}
		w := displacement(dt, profile, speed, pending.StartIdx, b.EndIdx)
		if math.Abs(w) <= 3*d.cfg.WLaneM {
			dir := Right
			if pending.Sign > 0 {
				dir = Left
			}
			out = append(out, Detection{
				StartIdx:      pending.StartIdx,
				EndIdx:        b.EndIdx,
				StartT:        pending.StartT(dt),
				EndT:          b.EndT(dt),
				Dir:           dir,
				DisplacementM: w,
			})
			pending = nil // STATE back to no-bump
		} else {
			// S-curve: discard the pair entirely; the opposite bump of an
			// S-curve must not seed a new pairing.
			pending = nil
		}
	}
	return out, nil
}

// displacement evaluates Eq. (1) over samples [start, end):
//
//	W = Σ_i v̂_i·Ω·sin(Σ_{j<=i} w_j·Ω)
func displacement(dt float64, steer, speed []float64, start, end int) float64 {
	var w, alpha float64
	for i := start; i < end && i < len(steer); i++ {
		alpha += steer[i] * dt
		w += speed[i] * dt * math.Sin(alpha)
	}
	return w
}

// Displacement exposes the Eq. (1) computation for experiments (Figure 5
// compares lane-change vs S-curve displacements).
func Displacement(dt float64, steer, speed []float64) float64 {
	n := len(steer)
	if len(speed) < n {
		n = len(speed)
	}
	return displacement(dt, steer, speed, 0, n)
}

// CorrectVelocities applies the Eq. (2) longitudinal-velocity correction:
// inside every detection span the measured speed is multiplied by
// cos(accumulated steering angle); outside, it passes through. The input is
// not modified.
func CorrectVelocities(dt float64, speed, steer []float64, detections []Detection) ([]float64, error) {
	if len(speed) != len(steer) {
		return nil, fmt.Errorf("lanechange: speed/steer length mismatch %d vs %d", len(speed), len(steer))
	}
	out := make([]float64, len(speed))
	copy(out, speed)
	for _, det := range detections {
		if det.StartIdx < 0 || det.EndIdx > len(speed) || det.StartIdx >= det.EndIdx {
			return nil, fmt.Errorf("lanechange: detection span [%d,%d) out of range", det.StartIdx, det.EndIdx)
		}
		var alpha float64
		for i := det.StartIdx; i < det.EndIdx; i++ {
			alpha += steer[i] * dt
			out[i] = speed[i] * math.Cos(alpha)
		}
	}
	return out, nil
}
