package lanechange

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/vehicle"
)

// synthManeuver builds a clean two-bump steering profile: a positive sine
// lobe of peak w1 over t1 seconds, then a negative lobe of peak w2 over t2.
func synthManeuver(dt, lead, w1, t1, w2, t2 float64) []float64 {
	total := 2*lead + t1 + t2
	n := int(total / dt)
	out := make([]float64, n)
	for i := range out {
		t := float64(i)*dt - lead
		switch {
		case t >= 0 && t < t1:
			out[i] = w1 * math.Sin(math.Pi*t/t1)
		case t >= t1 && t < t1+t2:
			out[i] = -w2 * math.Sin(math.Pi*(t-t1)/t2)
		}
	}
	return out
}

func constSpeed(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestFindBumpsBasic(t *testing.T) {
	dt := 0.05
	steer := synthManeuver(dt, 2, 0.15, 2, 0.12, 2.5)
	bumps := FindBumps(dt, steer, 0, 0)
	if len(bumps) != 2 {
		t.Fatalf("found %d bumps, want 2", len(bumps))
	}
	if bumps[0].Sign != 1 || bumps[1].Sign != -1 {
		t.Errorf("signs = %d, %d", bumps[0].Sign, bumps[1].Sign)
	}
	if math.Abs(bumps[0].PeakRad-0.15) > 0.01 {
		t.Errorf("peak = %v, want ~0.15", bumps[0].PeakRad)
	}
	// Time above 0.7·peak of a sine lobe is ~50.6% of its width.
	if math.Abs(bumps[0].DurAt07S-0.506*2) > 0.15 {
		t.Errorf("dur = %v, want ~%v", bumps[0].DurAt07S, 0.506*2)
	}
	// Threshold filtering removes the weaker bump.
	strong := FindBumps(dt, steer, 0.13, 0)
	if len(strong) != 1 || strong[0].Sign != 1 {
		t.Errorf("minPeak filter: %+v", strong)
	}
	long := FindBumps(dt, steer, 0, 1.2)
	if len(long) != 1 || long[0].Sign != -1 {
		t.Errorf("minDur filter: %+v", long)
	}
}

func TestFindBumpsIgnoresNoiseFloor(t *testing.T) {
	dt := 0.05
	steer := make([]float64, 200)
	for i := range steer {
		steer[i] = 0.01 * math.Sin(float64(i)/5) // below the 0.02 floor
	}
	if got := FindBumps(dt, steer, 0, 0); len(got) != 0 {
		t.Errorf("found %d bumps in sub-floor noise", len(got))
	}
}

func TestBumpTimes(t *testing.T) {
	b := Bump{StartIdx: 10, EndIdx: 30}
	if b.StartT(0.1) != 1 || b.EndT(0.1) != 3 {
		t.Errorf("times = %v, %v", b.StartT(0.1), b.EndT(0.1))
	}
}

func TestExtractManeuverFeatures(t *testing.T) {
	dt := 0.05
	steer := synthManeuver(dt, 2, 0.16, 2, 0.12, 2.6)
	f, err := ExtractManeuverFeatures(dt, steer)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.DeltaPos-0.16) > 0.01 || math.Abs(f.DeltaNeg-0.12) > 0.01 {
		t.Errorf("features = %+v", f)
	}
	if f.TNeg <= f.TPos {
		t.Errorf("longer lobe should have longer duration: %+v", f)
	}
	// Error cases.
	if _, err := ExtractManeuverFeatures(0, steer); err == nil {
		t.Error("zero dt should error")
	}
	onlyPos := synthManeuver(dt, 1, 0.15, 2, 0, 1)
	if _, err := ExtractManeuverFeatures(dt, onlyPos); err == nil {
		t.Error("single-lobe profile should error")
	}
}

func TestCalibrate(t *testing.T) {
	features := []ManeuverFeatures{
		{DeltaPos: 0.1215, DeltaNeg: 0.1445, TPos: 1.625, TNeg: 1.766},
		{DeltaPos: 0.1723, DeltaNeg: 0.1167, TPos: 1.383, TNeg: 2.072},
	}
	th, err := Calibrate(features)
	if err != nil {
		t.Fatal(err)
	}
	// Table I: minimums are 0.1167 rad/s and 1.383 s.
	if math.Abs(th.DeltaRad-0.1167) > 1e-9 || math.Abs(th.TMinS-1.383) > 1e-9 {
		t.Errorf("Calibrate = %+v, want Table I minima", th)
	}
	if _, err := Calibrate(nil); err == nil {
		t.Error("empty calibration should error")
	}
	if _, err := Calibrate([]ManeuverFeatures{{}}); err == nil {
		t.Error("zero features should error")
	}
}

func TestSmoothProfileReducesNoise(t *testing.T) {
	dt := 0.05
	clean := synthManeuver(dt, 2, 0.15, 2, 0.15, 2)
	rng := rand.New(rand.NewSource(4))
	noisy := make([]float64, len(clean))
	for i := range noisy {
		noisy[i] = clean[i] + rng.NormFloat64()*0.02
	}
	sm, err := SmoothProfile(dt, noisy, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var rawErr, smErr float64
	for i := range clean {
		rawErr += math.Abs(noisy[i] - clean[i])
		smErr += math.Abs(sm[i] - clean[i])
	}
	if smErr >= rawErr*0.6 {
		t.Errorf("smoothing insufficient: %v vs %v", smErr, rawErr)
	}
	if _, err := SmoothProfile(0, noisy, 1); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := SmoothProfile(dt, nil, 1); err == nil {
		t.Error("empty profile should error")
	}
	// Tiny profiles clamp the span instead of failing.
	if _, err := SmoothProfile(dt, []float64{0.1, 0.2, 0.1, 0, 0.1}, 0.01); err != nil {
		t.Errorf("tiny profile: %v", err)
	}
}

func TestDirectionString(t *testing.T) {
	if Left.String() != "left" || Right.String() != "right" {
		t.Error("direction names wrong")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction should render")
	}
}

// calibrated builds thresholds matched to our simulated maneuver shapes.
func calibrated(t *testing.T) Thresholds {
	t.Helper()
	dt := 0.05
	var features []ManeuverFeatures
	peaks := []float64{0.12, 0.14, 0.17}
	for vi, v := range []float64{15.0 / 3.6, 40.0 / 3.6, 65.0 / 3.6} {
		d := vehicle.DefaultDriver(v)
		d.SteerPeakRad = peaks[vi]
		for _, dir := range []int{1, -1} {
			states, err := vehicle.SimulateSingleLaneChange(d, v, dir, dt)
			if err != nil {
				t.Fatal(err)
			}
			steer := make([]float64, len(states))
			for i, st := range states {
				steer[i] = st.SteerRate
			}
			f, err := ExtractManeuverFeatures(dt, steer)
			if err != nil {
				t.Fatal(err)
			}
			features = append(features, f)
		}
	}
	th, err := Calibrate(features)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestDetectLaneChanges(t *testing.T) {
	dt := 0.05
	th := calibrated(t)
	det := NewDetector(Config{Thresholds: th})
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		dir  int
		want Direction
	}{
		{"left", +1, Left},
		{"right", -1, Right},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := 40.0 / 3.6
			states, err := vehicle.SimulateSingleLaneChange(vehicle.DefaultDriver(v), v, tc.dir, dt)
			if err != nil {
				t.Fatal(err)
			}
			steer := make([]float64, len(states))
			speed := make([]float64, len(states))
			for i, st := range states {
				steer[i] = st.SteerRate + rng.NormFloat64()*0.006
				speed[i] = st.Speed
			}
			got, err := det.Detect(dt, steer, speed)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 {
				t.Fatalf("detections = %d, want 1: %+v", len(got), got)
			}
			if got[0].Dir != tc.want {
				t.Errorf("dir = %v, want %v", got[0].Dir, tc.want)
			}
			if math.Abs(math.Abs(got[0].DisplacementM)-vehicle.WLaneM) > 1.2 {
				t.Errorf("displacement = %v, want ~±%v", got[0].DisplacementM, vehicle.WLaneM)
			}
		})
	}
}

func TestDetectRejectsSCurve(t *testing.T) {
	// An S-curve residual: same bump shape but sustained, producing a large
	// heading excursion and displacement > 3·W_lane.
	dt := 0.05
	steer := synthManeuver(dt, 2, 0.15, 4, 0.15, 4)
	speed := constSpeed(len(steer), 12)
	w := Displacement(dt, steer, speed)
	if math.Abs(w) <= 3*3.65 {
		t.Fatalf("test fixture displacement %v should exceed %v", w, 3*3.65)
	}
	det := NewDetector(Config{Thresholds: Thresholds{DeltaRad: 0.1, TMinS: 0.5}})
	got, err := det.Detect(dt, steer, speed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("S-curve detected as lane change: %+v", got)
	}
}

func TestDetectAcceptsTrueDisplacement(t *testing.T) {
	// The same shape at lane-change scale is accepted.
	dt := 0.05
	steer := synthManeuver(dt, 2, 0.15, 2, 0.15, 2)
	speed := constSpeed(len(steer), 10)
	det := NewDetector(Config{Thresholds: Thresholds{DeltaRad: 0.1, TMinS: 0.5}})
	got, err := det.Detect(dt, steer, speed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dir != Left {
		t.Fatalf("detections = %+v, want one left change", got)
	}
}

func TestDetectBumpGapExpires(t *testing.T) {
	dt := 0.05
	// Positive bump, 10 s of silence, negative bump: must not pair.
	a := synthManeuver(dt, 1, 0.15, 2, 0, 1)
	gap := make([]float64, int(10/dt))
	b := synthManeuver(dt, 1, 0, 1, 0.15, 2)
	steer := append(append(a, gap...), b...)
	speed := constSpeed(len(steer), 10)
	det := NewDetector(Config{Thresholds: Thresholds{DeltaRad: 0.1, TMinS: 0.5}, MaxGapS: 4})
	got, err := det.Detect(dt, steer, speed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("distant bumps paired: %+v", got)
	}
}

func TestDetectSameSignKeepsLatest(t *testing.T) {
	dt := 0.05
	// Two positive bumps then a negative: the pair should be (second
	// positive, negative), still a left change.
	p1 := synthManeuver(dt, 1, 0.15, 2, 0, 1)
	p2 := synthManeuver(dt, 1, 0.15, 2, 0.15, 2)
	steer := append(p1, p2...)
	speed := constSpeed(len(steer), 10)
	det := NewDetector(Config{Thresholds: Thresholds{DeltaRad: 0.1, TMinS: 0.5}})
	got, err := det.Detect(dt, steer, speed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dir != Left {
		t.Fatalf("detections = %+v", got)
	}
	// The detection span should start at the second positive bump.
	if got[0].StartT < float64(len(p1))*dt*0.8 {
		t.Errorf("span starts at %v, should start near second bump", got[0].StartT)
	}
}

func TestDetectErrors(t *testing.T) {
	det := NewDetector(Config{})
	if _, err := det.Detect(0, []float64{1}, []float64{1}); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := det.Detect(0.05, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := det.Detect(0.05, nil, nil); err == nil {
		t.Error("empty profile should error")
	}
}

func TestCorrectVelocities(t *testing.T) {
	dt := 0.05
	steer := synthManeuver(dt, 0, 0.2, 2, 0.2, 2)
	speed := constSpeed(len(steer), 10)
	dets := []Detection{{StartIdx: 0, EndIdx: len(steer)}}
	got, err := CorrectVelocities(dt, speed, steer, dets)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-maneuver the heading deviation is at its maximum, so the
	// corrected velocity dips below the measured speed.
	mid := len(steer) / 2
	alphaMax := 0.2 * 2 / math.Pi * 2 // ∫ δ sin = 2δT/π with T=2
	want := 10 * math.Cos(alphaMax)
	if math.Abs(got[mid]-want) > 0.05 {
		t.Errorf("corrected mid velocity = %v, want ~%v", got[mid], want)
	}
	// Outside any detection, untouched.
	none, err := CorrectVelocities(dt, speed, steer, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range none {
		if none[i] != speed[i] {
			t.Fatal("velocity modified outside detections")
		}
	}
	// Input must not be mutated.
	if speed[mid] != 10 {
		t.Error("CorrectVelocities mutated input")
	}
	// Errors.
	if _, err := CorrectVelocities(dt, speed[:5], steer, nil); err == nil {
		t.Error("length mismatch should error")
	}
	bad := []Detection{{StartIdx: -1, EndIdx: 2}}
	if _, err := CorrectVelocities(dt, speed, steer, bad); err == nil {
		t.Error("bad span should error")
	}
}

func TestPaperThresholdValues(t *testing.T) {
	if PaperThresholds.DeltaRad != 0.1167 || PaperThresholds.TMinS != 1.383 {
		t.Errorf("PaperThresholds = %+v", PaperThresholds)
	}
}

func BenchmarkDetect(b *testing.B) {
	dt := 0.05
	steer := synthManeuver(dt, 30, 0.15, 2, 0.15, 2)
	speed := constSpeed(len(steer), 10)
	det := NewDetector(Config{Thresholds: Thresholds{DeltaRad: 0.1, TMinS: 0.5}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(dt, steer, speed); err != nil {
			b.Fatal(err)
		}
	}
}
