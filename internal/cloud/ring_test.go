package cloud

import (
	"fmt"
	"testing"
)

// checkRingInvariant asserts map and ring describe the same key set.
func checkRingInvariant(t *testing.T, k *keyRing) {
	t.Helper()
	if len(k.seen) != k.n {
		t.Fatalf("drift: map has %d keys, ring has %d", len(k.seen), k.n)
	}
	for i := 0; i < k.n; i++ {
		key := k.keys[(k.head+i)%len(k.keys)]
		if _, ok := k.seen[key]; !ok {
			t.Fatalf("ring slot %d holds %q which is not in the map", i, key)
		}
	}
}

func TestKeyRingReserveAndDup(t *testing.T) {
	k := newKeyRing(3)
	if k.reserve("a") {
		t.Error("first reserve of a reported dup")
	}
	if !k.reserve("a") {
		t.Error("second reserve of a should be a dup")
	}
	if k.live() != 1 {
		t.Errorf("live = %d, want 1", k.live())
	}
	checkRingInvariant(t, k)
}

func TestKeyRingFIFOEviction(t *testing.T) {
	k := newKeyRing(3)
	for _, key := range []string{"a", "b", "c", "d"} {
		k.reserve(key)
	}
	// Capacity 3: "a" (the oldest) must be gone, the rest retained.
	if k.reserve("a") {
		t.Error("evicted key should be reservable again, got dup")
	}
	checkRingInvariant(t, k)
	for _, key := range []string{"c", "d"} {
		if !k.reserve(key) {
			t.Errorf("key %q should still be live", key)
		}
	}
}

// TestKeyRingRollbackMidQueue is the regression test for the drift bug: a
// rollback of a key that is NOT the newest reservation must remove it from
// the ring too, so later evictions cannot pop the dead entry and evict a
// live key early.
func TestKeyRingRollbackMidQueue(t *testing.T) {
	k := newKeyRing(3)
	k.reserve("a")
	k.reserve("bad") // will be rolled back, sits mid-ring once "b" lands
	k.reserve("b")
	k.release("bad")
	checkRingInvariant(t, k)

	// Ring now holds a, b (in order). Reserving c must NOT evict anything:
	// two live keys + one free slot.
	k.reserve("c")
	checkRingInvariant(t, k)
	for _, key := range []string{"a", "b", "c"} {
		if !k.reserve(key) {
			t.Errorf("key %q was evicted early after a mid-queue rollback", key)
		}
	}

	// One more reservation evicts exactly the oldest live key ("a").
	k.reserve("d")
	checkRingInvariant(t, k)
	if k.reserve("a") {
		t.Error("oldest key should have been evicted")
	}
}

func TestKeyRingReReserveAfterRollback(t *testing.T) {
	k := newKeyRing(2)
	k.reserve("k")
	k.release("k")
	if k.reserve("k") {
		t.Error("released key must be reservable again")
	}
	if !k.reserve("k") {
		t.Error("re-reserved key must dedup")
	}
	checkRingInvariant(t, k)
}

func TestKeyRingReleaseUnknown(t *testing.T) {
	k := newKeyRing(2)
	k.reserve("a")
	k.release("nope")
	checkRingInvariant(t, k)
	if !k.reserve("a") {
		t.Error("releasing an unknown key must not disturb live keys")
	}
}

func TestKeyRingWraparound(t *testing.T) {
	// Exercise head wraparound with interleaved rollbacks.
	k := newKeyRing(4)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if k.reserve(key) {
			t.Fatalf("fresh key %s reported dup", key)
		}
		if i%3 == 0 {
			k.release(key)
		}
		checkRingInvariant(t, k)
		if k.live() > 4 {
			t.Fatalf("live = %d exceeds capacity", k.live())
		}
	}
}
