package cloud

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"roadgrade/internal/fusion"
)

// The ingest benchmark family (BenchmarkIngest*) backs the PR 6 acceptance
// claims, snapshotted by scripts/bench.sh into BENCH_PR6.json:
//
//   - BenchmarkIngestSingleJSON vs BenchmarkIngestBatch*: per-submission
//     wall cost through a real HTTP server. Every op is ONE submission, so
//     the ns/op columns compare directly; the batch paths amortize the
//     request round trip, header parsing, and shard locking over
//     ingestBatchSize submissions.
//   - BenchmarkIngestDecode*: server-side decode cost of one wire batch,
//     JSON vs binary (the >=3x decode claim).

const (
	ingestCells     = 100 // ~500 m of road at 5 m spacing, a typical drive segment
	ingestBatchSize = 64
	ingestPoolSize  = 64
)

// ingestProfiles builds a reusable pool of submissions. perturb makes each
// use unique (distinct content-derived idempotency keys), so the dedup ring
// never short-circuits the work being measured.
func ingestProfiles(rng *rand.Rand) []*fusion.Profile {
	pool := make([]*fusion.Profile, ingestPoolSize)
	for i := range pool {
		pool[i] = realisticProfile(rng, ingestCells)
	}
	return pool
}

func perturb(p *fusion.Profile, i int) {
	p.GradeRad[0] = 0.01 * math.Sin(float64(i))
}

// ingestWindow shrinks the per-road retention cap so the store cost per
// submission is small and constant: eviction rebuilds are O(window x cells)
// and hit every submit path identically (they are covered by the PR 4
// serving family), while an unbounded window grows the live heap with b.N
// and turns the benchmark into a GC measurement. Either way would hide the
// transport difference being measured.
const ingestWindow = 8

func BenchmarkIngestSingleJSON(b *testing.B) {
	srv := NewServer()
	srv.MaxSubmissionsPerRoad = ingestWindow
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cli, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		b.Fatal(err)
	}
	pool := ingestProfiles(rand.New(rand.NewSource(1)))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pool[i%ingestPoolSize]
		perturb(p, i)
		if err := cli.SubmitProfile(ctx, roadName(i%7), p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngestBatch measures the batched path: one op is one submission, with
// a request flushed every ingestBatchSize ops.
func benchIngestBatch(b *testing.B, opts ...Option) {
	srv := NewServerWithShards(32)
	srv.MaxSubmissionsPerRoad = ingestWindow
	srv.EnableCoalescing(CoalesceConfig{QueueDepth: 4096, BatchMax: 512})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cli, err := NewClient(ts.URL, ts.Client(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	pool := ingestProfiles(rand.New(rand.NewSource(1)))
	ctx := context.Background()
	items := make([]BatchItem, 0, ingestBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items = append(items, BatchItem{
			RoadID:  roadName(i % 7),
			Key:     fmt.Sprintf("b-%d", i),
			Profile: pool[i%ingestPoolSize],
		})
		if len(items) == ingestBatchSize {
			if _, err := cli.SubmitBatch(ctx, items); err != nil {
				b.Fatal(err)
			}
			items = items[:0]
		}
	}
	if len(items) > 0 {
		if _, err := cli.SubmitBatch(ctx, items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestBatchJSON(b *testing.B)   { benchIngestBatch(b) }
func BenchmarkIngestBatchBinary(b *testing.B) { benchIngestBatch(b, WithBinaryBatch(true)) }
func BenchmarkIngestBatchBinaryGzip(b *testing.B) {
	benchIngestBatch(b, WithBinaryBatch(true), WithGzip(true))
}

func BenchmarkIngestDecodeJSON(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	items := testBatch(rng, ingestBatchSize, ingestCells)
	dto := batchRequestDTO{Items: make([]batchItemDTO, len(items))}
	for i := range items {
		dto.Items[i] = batchItemDTO{RoadID: items[i].RoadID, Key: items[i].Key, Profile: FromProfile(items[i].Profile)}
	}
	wire, err := json.Marshal(dto)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req batchRequestDTO
		if err := json.Unmarshal(wire, &req); err != nil {
			b.Fatal(err)
		}
		for j := range req.Items {
			if _, err := req.Items[j].Profile.toProfile(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIngestDecodeBinary(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	wire, err := EncodeBatchBinary(testBatch(rng, ingestBatchSize, ingestCells))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatchBinary(wire); err != nil {
			b.Fatal(err)
		}
	}
}
