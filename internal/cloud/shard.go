package cloud

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"sync"

	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// Serving-cache instrumentation: hits mean a GET was answered from the
// generation-stamped cache (snapshot struct or pre-encoded bytes); misses
// mean submissions landed since the last read and the cache was rebuilt.
var (
	obsSnapHits  = obs.Default.Counter("cloud_fused_cache_hits_total", obs.L("cache", "snapshot"))
	obsSnapMiss  = obs.Default.Counter("cloud_fused_cache_misses_total", obs.L("cache", "snapshot"))
	obsEncHits   = obs.Default.Counter("cloud_fused_cache_hits_total", obs.L("cache", "encoded"))
	obsEncMiss   = obs.Default.Counter("cloud_fused_cache_misses_total", obs.L("cache", "encoded"))
	obsEncGzHits = obs.Default.Counter("cloud_fused_cache_hits_total", obs.L("cache", "encoded_gzip"))
	obsEncGzMiss = obs.Default.Counter("cloud_fused_cache_misses_total", obs.L("cache", "encoded_gzip"))
	obsShardLoad = obs.Default.Counter("cloud_road_states_created_total")
)

// fnv1aOffset and fnv1aPrime are the 32-bit FNV-1a parameters.
const (
	fnv1aOffset = 2166136261
	fnv1aPrime  = 16777619
)

// fnv1a hashes a road id without allocating (hash/fnv would force the id
// through an io.Writer interface and a heap-allocated digest).
func fnv1a(s string) uint32 {
	h := uint32(fnv1aOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnv1aPrime
	}
	return h
}

// shard is 1/N of the server's state. Roads hash onto shards by FNV-1a of the
// road id, so readers and writers of different roads contend only when they
// collide on a shard — never on a global lock. The shard's own lock guards
// the road map and the per-shard idempotency ring; each road's mutable state
// has a finer lock of its own, so a slow fuse of one road does not block the
// shard.
type shard struct {
	mu    sync.RWMutex
	roads map[string]*roadState
	dedup *keyRing
}

// roadState is one road's submissions plus its serving caches. gen counts
// accepted submissions; the fused snapshot and its wire encoding are stamped
// with the generation they were built at, so a read needs work only when a
// submission landed since the previous read — repeated GETs of an unchanged
// road are a lock, a counter compare, and a buffer write.
type roadState struct {
	mu  sync.RWMutex
	acc *fusion.RobustAccumulator
	gen uint64 // bumped on every accepted submission

	snapGen uint64
	snap    *fusion.Profile // cached fused profile; immutable once published

	encGen uint64
	enc    []byte // cached JSON response body (snapshot + trailing newline)

	encGzGen uint64
	encGz    []byte // cached gzip of enc, for Accept-Encoding: gzip readers
}

// addLocked validates spacing and folds one submission into the road's
// accumulator, consulting and updating the submitting device's trust state
// when one is attached (de may be nil: anonymous submission). rs.mu must be
// held for writing; the device entry's own lock is taken here — the lock
// order is road lock → device lock, and device code never takes a road lock,
// so the hierarchy is acyclic. The caller bumps generations and the
// server-wide counter (the direct path bumps per call, the coalescer
// amortizes across a fold batch). The returned report carries the fold's
// robustness counts (downweighted/trimmed/clamped cells, post-fold
// reputation) for span annotation; it is zero on error.
func (rs *roadState) addLocked(p *fusion.Profile, de *deviceEntry) (fusion.FoldReport, error) {
	if rs.acc.Len() > 0 && rs.acc.Spacing() != p.SpacingM {
		return fusion.FoldReport{}, fmt.Errorf("cloud: expects spacing %v, got %v", rs.acc.Spacing(), p.SpacingM)
	}
	if de == nil {
		return rs.acc.AddDeviceReport(p, nil)
	}
	de.mu.Lock()
	rep, err := rs.acc.AddDeviceReport(p, &de.st)
	de.mu.Unlock()
	if err == nil {
		obsDeviceReputation.Observe(rep.Reputation)
	}
	return rep, err
}

// fusedLocked returns the current fused snapshot, rebuilding from the
// accumulator if stale. rs.mu must be held for writing.
func (rs *roadState) fusedLocked() (*fusion.Profile, error) {
	if rs.snap != nil && rs.snapGen == rs.gen {
		return rs.snap, nil
	}
	obsSnapMiss.Inc()
	snap, err := rs.acc.Fused()
	if err != nil {
		return nil, err
	}
	rs.snap, rs.snapGen = snap, rs.gen
	return snap, nil
}

// encBufPool recycles the transient buffers used to encode fused responses;
// the retained rs.enc copy is exact-size, so the pool only absorbs encoder
// churn, not cache memory.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodedLocked returns the wire form of the fused profile, rebuilding the
// cached encoding if stale. rs.mu must be held for writing. The returned
// bytes are immutable: writers replace rs.enc, never mutate it, so concurrent
// readers can keep writing an old encoding to their sockets.
func (rs *roadState) encodedLocked() ([]byte, error) {
	if rs.enc != nil && rs.encGen == rs.gen {
		return rs.enc, nil
	}
	obsEncMiss.Inc()
	snap, err := rs.fusedLocked()
	if err != nil {
		return nil, err
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// Encode the snapshot's slices directly (FromProfile would copy them
	// only for the encoder to read). json.Encoder matches the previous
	// wire format exactly, trailing newline included.
	dto := ProfileDTO{SpacingM: snap.SpacingM, GradeRad: snap.GradeRad, Var: snap.Var}
	if err := json.NewEncoder(buf).Encode(dto); err != nil {
		encBufPool.Put(buf)
		return nil, err
	}
	rs.enc = append([]byte(nil), buf.Bytes()...)
	rs.encGen = rs.gen
	encBufPool.Put(buf)
	return rs.enc, nil
}

// gzippedLocked returns the gzipped wire form of the fused profile,
// rebuilding the cached compression if stale. rs.mu must be held for
// writing. Like enc, the returned bytes are immutable once published.
func (rs *roadState) gzippedLocked() ([]byte, error) {
	if rs.encGz != nil && rs.encGzGen == rs.gen {
		return rs.encGz, nil
	}
	obsEncGzMiss.Inc()
	enc, err := rs.encodedLocked()
	if err != nil {
		return nil, err
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	gz := gzipWriterPool.Get().(*gzip.Writer)
	gz.Reset(buf)
	if _, err := gz.Write(enc); err != nil {
		gzipWriterPool.Put(gz)
		encBufPool.Put(buf)
		return nil, err
	}
	if err := gz.Close(); err != nil {
		gzipWriterPool.Put(gz)
		encBufPool.Put(buf)
		return nil, err
	}
	gzipWriterPool.Put(gz)
	rs.encGz = append([]byte(nil), buf.Bytes()...)
	rs.encGzGen = rs.gen
	encBufPool.Put(buf)
	return rs.encGz, nil
}

// shardFor maps a road id to its shard (shard count is a power of two).
func (s *Server) shardFor(roadID string) *shard {
	return &s.shards[fnv1a(roadID)&s.shardMask]
}

// lookup returns the road's state, or nil if the road is unknown.
func (s *Server) lookup(roadID string) *roadState {
	sh := s.shardFor(roadID)
	sh.mu.RLock()
	rs := sh.roads[roadID]
	sh.mu.RUnlock()
	return rs
}

// roadFor returns the road's state, creating it on first submission. The
// retention window is captured from MaxSubmissionsPerRoad at creation.
func (s *Server) roadFor(roadID string) *roadState {
	sh := s.shardFor(roadID)
	sh.mu.RLock()
	rs := sh.roads[roadID]
	sh.mu.RUnlock()
	if rs != nil {
		return rs
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rs = sh.roads[roadID]; rs == nil {
		rs = &roadState{acc: fusion.NewRobustAccumulator(s.MaxSubmissionsPerRoad, s.Policy)}
		sh.roads[roadID] = rs
		obsShardLoad.Inc()
	}
	return rs
}
