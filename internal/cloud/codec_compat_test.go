package cloud

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// encodeBatchV1 reproduces the PR 6 wire format (version 0x01, no device
// field) so the decoder's backward compatibility can be pinned down against
// real v1 bytes, not a round-trip of the current encoder.
func encodeBatchV1(t *testing.T, items []BatchItem) []byte {
	t.Helper()
	buf := []byte(binaryMagic)
	buf = append(buf, binaryVersionV1)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for i := range items {
		p := items[i].Profile
		buf = binary.AppendUvarint(buf, uint64(len(items[i].RoadID)))
		buf = append(buf, items[i].RoadID...)
		buf = binary.AppendUvarint(buf, uint64(len(items[i].Key)))
		buf = append(buf, items[i].Key...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.SpacingM))
		buf = binary.AppendUvarint(buf, uint64(p.Len()))
		prev := int64(0)
		for _, g := range p.GradeRad {
			q := int64(math.Round(g / gradeQuantum))
			buf = binary.AppendUvarint(buf, zigzag(q-prev))
			prev = q
		}
		prev = 0
		for _, v := range p.Var {
			q := int64(math.Round(v / varQuantum))
			if q < 1 {
				q = 1
			}
			buf = binary.AppendUvarint(buf, zigzag(q-prev))
			prev = q
		}
	}
	return buf
}

// TestDecodeBatchBinaryV1Compat: a version-1 batch (no device field) still
// decodes, item for item, with empty Device — deployed PR 6 fleets keep
// working against the upgraded server.
func TestDecodeBatchBinaryV1Compat(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	items := []BatchItem{
		{RoadID: "road-a", Key: "k1", Profile: realisticProfile(rng, 50)},
		{RoadID: "road-b", Profile: realisticProfile(rng, 8)},
	}
	wire := encodeBatchV1(t, items)
	dec, err := DecodeBatchBinary(wire)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if len(dec) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(dec), len(items))
	}
	for i := range dec {
		if dec[i].RoadID != items[i].RoadID || dec[i].Key != items[i].Key {
			t.Errorf("item %d: id/key mismatch: %+v", i, dec[i])
		}
		if dec[i].Device != "" {
			t.Errorf("item %d: v1 item decoded with device %q", i, dec[i].Device)
		}
		if dec[i].Profile.Len() != items[i].Profile.Len() {
			t.Errorf("item %d: %d cells, want %d", i, dec[i].Profile.Len(), items[i].Profile.Len())
		}
	}
	// The same submissions through the v2 encoder must decode identically
	// (modulo the now-present empty device field).
	v2, err := EncodeBatchBinary(items)
	if err != nil {
		t.Fatal(err)
	}
	if v2[3] != binaryVersion {
		t.Fatalf("encoder wrote version %d, want %d", v2[3], binaryVersion)
	}
	dec2, err := DecodeBatchBinary(v2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		for c := range dec[i].Profile.GradeRad {
			if math.Float64bits(dec[i].Profile.GradeRad[c]) != math.Float64bits(dec2[i].Profile.GradeRad[c]) {
				t.Fatalf("item %d cell %d: v1 and v2 decode differ", i, c)
			}
		}
	}
}

// TestCodecDeviceRoundTrip: device ids survive the binary codec, bounds are
// enforced, and Decode∘Encode stays idempotent with devices present.
func TestCodecDeviceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := []BatchItem{
		{RoadID: "r", Key: "k", Device: "ph-00ff", Profile: realisticProfile(rng, 30)},
		{RoadID: "r2", Device: "", Profile: realisticProfile(rng, 12)},
	}
	wire, err := EncodeBatchBinary(items)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBatchBinary(wire)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].Device != "ph-00ff" || dec[1].Device != "" {
		t.Errorf("devices = %q, %q", dec[0].Device, dec[1].Device)
	}
	rewire, err := EncodeBatchBinary(dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != string(rewire) {
		t.Error("Decode∘Encode not idempotent with device ids")
	}

	long := items[:1]
	long[0].Device = string(make([]byte, maxDeviceIDLen+1))
	if _, err := EncodeBatchBinary(long); err == nil {
		t.Error("oversized device id should fail to encode")
	}
}
