package cloud

// Serving benchmarks for the sharded, incrementally-fused store, plus a
// faithful reimplementation of the pre-sharding server (one mutex over one
// map, FuseProfiles re-run on every read) as the baseline the rework is
// measured against. scripts/bench.sh snapshots this family to BENCH_PR4.json
// and scripts/bench_check.sh gates regressions against it.
//
// The headline comparison is BenchmarkServerMixedLoad vs
// BenchmarkServerMixedLoadLegacy: 8+ goroutines, 16 roads at the default
// 64-submission window, 95% fused reads / 5% submits — the acceptance
// workload for the ≥10× throughput criterion. The read-heavy mix mirrors the
// paper's serving story: the fused network is consumed by every eco-routing
// query, while a vehicle uploads a profile once per completed drive.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"roadgrade/internal/fusion"
)

const (
	benchCells    = 200 // 1 km of road at 5 m spacing
	benchWindow   = 64  // submissions retained per road
	benchRoads    = 16
	benchReadFrac = 0.95 // fused fetches per eco-routing query vs one upload per drive
)

// legacyServer reproduces the pre-change serving architecture exactly: a
// single mutex over one map of submission slices, with the fused profile
// recomputed from every stored submission on every read.
type legacyServer struct {
	mu    sync.Mutex
	roads map[string][]*fusion.Profile
	max   int
}

func newLegacyServer() *legacyServer {
	return &legacyServer{roads: make(map[string][]*fusion.Profile), max: benchWindow}
}

func (l *legacyServer) submit(roadID string, p *fusion.Profile) {
	l.mu.Lock()
	defer l.mu.Unlock()
	list := append(l.roads[roadID], p)
	if len(list) > l.max {
		list = list[len(list)-l.max:]
	}
	l.roads[roadID] = list
}

func (l *legacyServer) fused(roadID string) (*fusion.Profile, error) {
	l.mu.Lock()
	list := append([]*fusion.Profile(nil), l.roads[roadID]...)
	l.mu.Unlock()
	return fusion.FuseProfiles(list)
}

// benchProfiles pre-generates distinct submissions so the measured loop does
// no generation work.
func benchProfiles(n int) []*fusion.Profile {
	rng := rand.New(rand.NewSource(1))
	out := make([]*fusion.Profile, n)
	for i := range out {
		out[i] = randProfile(rng, benchCells)
	}
	return out
}

// BenchmarkServerSubmit measures the steady-state write path: the window is
// full, so every submit pays the eviction rebuild (O(window × cells)) that
// keeps fused output bit-identical to the batch algorithm.
func BenchmarkServerSubmit(b *testing.B) {
	s := NewServer()
	profs := benchProfiles(benchWindow + 64)
	for i := 0; i < benchWindow; i++ {
		if err := s.Submit("r", profs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Submit("r", profs[benchWindow+i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerFused measures a fused read of an unchanged road at the full
// 64-submission window: a snapshot-cache hit plus the defensive copy,
// independent of submission count.
func BenchmarkServerFused(b *testing.B) {
	s := NewServer()
	for _, p := range benchProfiles(benchWindow) {
		if err := s.Submit("r", p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fused("r"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerFusedLegacy is the same read against the pre-change
// architecture: FuseProfiles over all 64 submissions per call.
func BenchmarkServerFusedLegacy(b *testing.B) {
	l := newLegacyServer()
	for _, p := range benchProfiles(benchWindow) {
		l.submit("r", p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.fused("r"); err != nil {
			b.Fatal(err)
		}
	}
}

// mixedLoad drives the acceptance workload against either serving path: 16
// roads prefilled to the 64-submission window, then a 95/5 read/write mix
// from parallel goroutines. The read callback must perform what the
// respective GET handler performs — for the legacy server that includes the
// per-read refusion and JSON encode, for the sharded server the pre-encoded
// cache lookup — so the two benchmarks compare the real serving cost.
func mixedLoad(b *testing.B, submit func(string, *fusion.Profile), read func(string) error) {
	b.Helper()
	ids := make([]string, benchRoads)
	for r := range ids {
		ids[r] = fmt.Sprintf("road-%02d", r)
	}
	profs := benchProfiles(256)
	for r, id := range ids {
		for i := 0; i < benchWindow; i++ {
			submit(id, profs[(r*benchWindow+i)%len(profs)])
		}
	}
	// ≥ 8 concurrent clients regardless of GOMAXPROCS.
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(99))
		for pb.Next() {
			id := ids[rng.Intn(len(ids))]
			if rng.Float64() < benchReadFrac {
				if err := read(id); err != nil {
					b.Error(err)
					return
				}
			} else {
				submit(id, profs[rng.Intn(len(profs))])
			}
		}
	})
}

// BenchmarkServerMixedLoad is the acceptance benchmark: ns/op here vs the
// Legacy variant below is the serving-throughput ratio recorded in
// EXPERIMENTS.md. A read is what handleFused does now: a generation-checked
// lookup of the pre-encoded response.
func BenchmarkServerMixedLoad(b *testing.B) {
	s := NewServer()
	mixedLoad(b,
		func(id string, p *fusion.Profile) {
			if err := s.Submit(id, p); err != nil {
				b.Fatal(err)
			}
		},
		func(id string) error {
			_, err := s.fusedJSON(id)
			return err
		})
}

// BenchmarkServerMixedLoadLegacy runs the identical workload against the
// pre-change serving path: single mutex, FuseProfiles over all submissions
// and a fresh JSON encode on every read (what the old handleFused did).
func BenchmarkServerMixedLoadLegacy(b *testing.B) {
	l := newLegacyServer()
	mixedLoad(b, l.submit, func(id string) error {
		prof, err := l.fused(id)
		if err != nil {
			return err
		}
		return json.NewEncoder(io.Discard).Encode(FromProfile(prof))
	})
}

// BenchmarkHandleFusedHTTP measures the full HTTP read path — routing,
// instrumentation, and the pre-encoded response cache — with an in-process
// ResponseRecorder (no sockets).
func BenchmarkHandleFusedHTTP(b *testing.B) {
	s := NewServer()
	for _, p := range benchProfiles(benchWindow) {
		if err := s.Submit("r", p); err != nil {
			b.Fatal(err)
		}
	}
	h := s.Handler()
	req := httptest.NewRequest("GET", "/v1/roads/r/profile", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}
