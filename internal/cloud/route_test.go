package cloud

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"roadgrade/internal/ecoroute"
	"roadgrade/internal/road"
)

// routeTestServer wires a server, an eco-routing engine fed by the server's
// own fused store, and the HTTP handler.
func routeTestServer(t testing.TB, net *road.Network) (*Server, *ecoroute.Engine, http.Handler) {
	t.Helper()
	s := NewServer()
	eng, err := ecoroute.NewEngine(net, ecoroute.CloudSource{Store: s}, ecoroute.Config{SpeedsKmh: []float64{40}})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	s.EnableRouting(eng)
	return s, eng, s.Handler()
}

// getRoute fires one GET /v1/route and returns the status and decoded body.
func getRoute(t testing.TB, h http.Handler, query string) (int, RouteDTO) {
	t.Helper()
	req := httptest.NewRequest("GET", "/v1/route?"+query, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var dto RouteDTO
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &dto); err != nil {
			t.Fatalf("decoding route response: %v", err)
		}
	}
	return rec.Code, dto
}

// truthDTO builds the wire form of a road's ground-truth profile at 5 m
// spacing, the shape a vehicle's pipeline would upload.
func truthDTO(r *road.Road) ProfileDTO {
	n := int(math.Ceil(r.Length()/5)) + 1
	dto := ProfileDTO{SpacingM: 5, GradeRad: make([]float64, n), Var: make([]float64, n)}
	for i := range dto.GradeRad {
		dto.GradeRad[i] = r.GradeAt(5 * float64(i))
		dto.Var[i] = 1e-4
	}
	return dto
}

// TestRouteEndpoint drives the full loop: a route over the unmapped network
// (flat fallback), then vehicle submissions for every road on the answer,
// then the same query again — the fuel estimate must change once the fused
// map knows the hills, and all the error paths must map to the right codes.
func TestRouteEndpoint(t *testing.T) {
	net, err := road.GenerateNetwork(61, road.NetworkConfig{TargetStreetKM: 5})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	_, eng, h := routeTestServer(t, net)

	// Find a connected pair with some climbing on the route.
	rng := rand.New(rand.NewSource(2))
	var from, to int
	var flat ecoroute.Plan
	for {
		from = net.Nodes[rng.Intn(len(net.Nodes))].ID
		to = net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		p, err := eng.Route(ecoroute.Fuel, 40, from, to)
		if err == nil && len(p.RoadIDs) >= 3 {
			flat = p
			break
		}
	}

	q := "from=" + strconv.Itoa(from) + "&to=" + strconv.Itoa(to)
	code, dto := getRoute(t, h, q+"&objective=fuel&speed_kmh=40")
	if code != http.StatusOK {
		t.Fatalf("route: HTTP %d", code)
	}
	if dto.Objective != "fuel" || dto.From != from || dto.To != to {
		t.Fatalf("route echoed %s %d→%d, want fuel %d→%d", dto.Objective, dto.From, dto.To, from, to)
	}
	if len(dto.RoadIDs) == 0 || dto.FuelGal <= 0 || dto.LengthM <= 0 {
		t.Fatalf("degenerate plan: %+v", dto)
	}
	if math.Abs(dto.FuelGal-flat.FuelGal) > 1e-12 {
		t.Fatalf("HTTP plan fuel %.12f != engine plan fuel %.12f", dto.FuelGal, flat.FuelGal)
	}

	// Upload ground truth for every road in the network through the real
	// submit endpoint, as the fleet's pipelines would.
	for _, ed := range net.Edges {
		body, err := json.Marshal(truthDTO(ed.Road))
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/v1/roads/"+ed.Road.ID()+"/profiles", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d: %s", ed.Road.ID(), rec.Code, rec.Body.String())
		}
	}

	code, mapped := getRoute(t, h, q+"&objective=fuel&speed_kmh=40")
	if code != http.StatusOK {
		t.Fatalf("route after submissions: HTTP %d", code)
	}
	if mapped.FuelGal == dto.FuelGal {
		t.Error("fuel estimate unchanged after the fused map learned the gradients")
	}

	// Error mapping.
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"from=abc&to=1", http.StatusBadRequest},
		{"from=1", http.StatusBadRequest},
		{q + "&objective=scenic", http.StatusBadRequest},
		{q + "&speed_kmh=banana", http.StatusBadRequest},
		{q + "&speed_kmh=-5", http.StatusBadRequest},
		{"from=999999&to=" + strconv.Itoa(to), http.StatusNotFound},
		{"from=" + strconv.Itoa(from) + "&to=999999", http.StatusNotFound},
	} {
		if code, _ := getRoute(t, h, tc.query); code != tc.code {
			t.Errorf("GET /v1/route?%s: HTTP %d, want %d", tc.query, code, tc.code)
		}
	}

	// Routing disabled → 503.
	bare := NewServer()
	req := httptest.NewRequest("GET", "/v1/route?from=1&to=2", nil)
	rec := httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("routing disabled: HTTP %d, want 503", rec.Code)
	}
}

// BenchmarkEcoRouteServeWarm is the serving acceptance benchmark: warm
// GET /v1/route queries against the full HTTP stack on the 164.8 km network,
// with the fused store primed. The reported p95-ns must stay ≤ 1e6 (1 ms).
func BenchmarkEcoRouteServeWarm(b *testing.B) {
	net, err := road.Charlottesville()
	if err != nil {
		b.Fatalf("network: %v", err)
	}
	s, eng, h := routeTestServer(b, net)
	// Prime the fused store with one ground-truth submission per road.
	for _, ed := range net.Edges {
		p, err := truthDTO(ed.Road).toProfile()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Submit(ed.Road.ID(), p); err != nil {
			b.Fatal(err)
		}
	}
	// Pre-draw connected pairs and warm tables + landmarks.
	rng := rand.New(rand.NewSource(5))
	var queries []string
	for len(queries) < 256 {
		from := net.Nodes[rng.Intn(len(net.Nodes))].ID
		to := net.Nodes[rng.Intn(len(net.Nodes))].ID
		if from == to {
			continue
		}
		if _, err := eng.Route(ecoroute.Fuel, 40, from, to); err != nil {
			continue
		}
		queries = append(queries, "/v1/route?from="+strconv.Itoa(from)+"&to="+strconv.Itoa(to)+"&objective=fuel&speed_kmh=40")
	}
	durs := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", queries[i%len(queries)], nil)
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		durs = append(durs, time.Since(start))
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p95 := durs[int(0.95*float64(len(durs)-1))]
	b.ReportMetric(float64(p95.Nanoseconds()), "p95-ns")
}
