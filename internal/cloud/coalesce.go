package cloud

// The write coalescer: the fleet-scale ingest path. Handlers validate and
// decode submissions, then append them to a bounded per-shard queue; one
// worker goroutine per shard drains its queue in batches and folds every
// queued submission into the fusion accumulators under a single pass of lock
// acquisitions — one shard-lock hold for all idempotency reservations, one
// road-lock hold per road group — instead of the per-request
// lock/bump/unlock the direct path pays. Fusion output is bit-identical to
// the direct path: within a road, queued submissions fold in FIFO arrival
// order, which is the same Accumulator.Add order Submit would have used.
//
// The queue is also the admission controller. Enqueue never blocks: when a
// shard's queue is full the item is shed, the handler answers 429 with
// Retry-After, and the client's retry/backoff machinery (PR 2) re-submits
// just the shed items — per-item idempotency keys make over-retry harmless.

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// Write-path instrumentation: queue depth is the backpressure signal, the
// batch-size histogram shows how much amortization the coalescer achieves
// (mean batch size = items per lock pass), folds count lock passes, and the
// shed counter is the load-shedding rate.
var (
	obsCoalesceFolds = obs.Default.Counter("cloud_coalesce_folds_total")
	obsCoalesceBatch = obs.Default.Histogram("cloud_coalesce_batch_size",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	obsSubmitShed  = obs.Default.Counter("cloud_submit_shed_total")
	obsBatchItems  = map[string]*obs.Counter{}
	obsBatchItemMu sync.Mutex
)

// batchItemCounter returns the cloud_batch_items_total{status=...} counter,
// pre-creating on first use (statuses are a small closed set).
func batchItemCounter(status string) *obs.Counter {
	obsBatchItemMu.Lock()
	defer obsBatchItemMu.Unlock()
	c, ok := obsBatchItems[status]
	if !ok {
		c = obs.Default.Counter("cloud_batch_items_total", obs.L("status", status))
		obsBatchItems[status] = c
	}
	return c
}

// Per-item batch outcomes.
const (
	statusAccepted  = "accepted"
	statusDuplicate = "duplicate"
	statusRejected  = "rejected"
	statusShed      = "shed"
)

// BatchItemResult is one submission's outcome inside a batch response.
type BatchItemResult struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// pendingItem is one queued submission plus where to report its outcome.
// The worker writes *out and then calls done.Done(); the enqueueing handler
// reads results only after done.Wait(), so no further synchronization is
// needed on out.
type pendingItem struct {
	roadID string
	key    string
	device string
	p      *fusion.Profile
	out    *BatchItemResult
	done   *sync.WaitGroup
	// sc is the enqueueing handler span's context; the fold span links back
	// to it so a trace crosses the async queue boundary. Zero when the
	// request was untraced.
	sc obs.SpanContext
}

// CoalesceConfig shapes the write coalescer.
type CoalesceConfig struct {
	// QueueDepth bounds each shard's pending queue; a full queue sheds
	// (default 1024 items/shard).
	QueueDepth int
	// BatchMax caps how many queued items one fold pass drains
	// (default 512).
	BatchMax int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
}

// withDefaults fills zero fields.
func (c CoalesceConfig) withDefaults() CoalesceConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 512
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// coalescer owns the per-shard queues and workers.
type coalescer struct {
	cfg    CoalesceConfig
	queues []chan *pendingItem
	quit   chan struct{}
	wg     sync.WaitGroup

	// shed counts submissions dropped by admission control since the
	// coalescer started (per server, unlike the process-wide obs counter;
	// surfaced on /healthz via CoalesceStats).
	shed atomic.Uint64

	// mu serializes enqueues against Close: enqueue holds the read side, so
	// once Close holds the write side and flips closed, no new item can
	// enter a queue and the final drain is complete.
	mu     sync.RWMutex
	closed bool
}

// EnableCoalescing switches the batch ingest path to per-shard write
// coalescing: one worker per shard folds queued submissions in arrival
// order, and full queues shed with 429 + Retry-After. Call before serving;
// calling on a server that already coalesces is a no-op. Stop the workers
// with Close.
func (s *Server) EnableCoalescing(cfg CoalesceConfig) {
	if s.coal != nil {
		return
	}
	c := &coalescer{
		cfg:    cfg.withDefaults(),
		queues: make([]chan *pendingItem, len(s.shards)),
		quit:   make(chan struct{}),
	}
	for i := range c.queues {
		c.queues[i] = make(chan *pendingItem, c.cfg.QueueDepth)
	}
	s.coal = c
	obs.Default.GaugeFunc("cloud_submit_queue_depth", func() float64 {
		n := 0
		for _, q := range c.queues {
			n += len(q)
		}
		return float64(n)
	})
	c.wg.Add(len(s.shards))
	for i := range s.shards {
		go s.coalesceWorker(i)
	}
}

// Coalescing reports whether the batch path runs through the coalescer.
func (s *Server) Coalescing() bool { return s.coal != nil }

// Close stops the coalescer workers, folding everything already queued
// before returning. Safe to call multiple times and on a server that never
// enabled coalescing. After Close, batch submissions shed (the server is
// shutting down).
func (s *Server) Close() {
	c := s.coal
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
}

// enqueue appends items to their shard queues without blocking. Items that
// don't fit (or arrive after Close) are marked shed immediately; the rest
// will have their outcome written by a shard worker. Returns the number
// shed. done must have been Add'ed for len(items) by the caller; shed items
// are Done'd here.
func (s *Server) enqueue(items []*pendingItem) (shed int) {
	c := s.coal
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, it := range items {
		if c.closed {
			it.out.Status = statusShed
			it.done.Done()
			shed++
			continue
		}
		q := c.queues[fnv1a(it.roadID)&s.shardMask]
		select {
		case q <- it:
		default:
			it.out.Status = statusShed
			it.done.Done()
			shed++
		}
	}
	if shed > 0 {
		c.shed.Add(uint64(shed))
		obsSubmitShed.Add(uint64(shed))
		batchItemCounter(statusShed).Add(uint64(shed))
	}
	return shed
}

// CoalesceStats reports the write coalescer's health for probes (/healthz):
// whether coalescing is enabled, the items currently queued across shards,
// and the total submissions shed by admission control.
func (s *Server) CoalesceStats() (enabled bool, queued int, shed uint64) {
	c := s.coal
	if c == nil {
		return false, 0, 0
	}
	return true, c.queueDepth(), c.shed.Load()
}

// coalesceWorker drains shard i's queue until Close. Each pass collects up
// to BatchMax items that are already waiting and folds them in one shot.
func (s *Server) coalesceWorker(i int) {
	c := s.coal
	defer c.wg.Done()
	q := c.queues[i]
	buf := make([]*pendingItem, 0, c.cfg.BatchMax)
	for {
		select {
		case it := <-q:
			buf = s.collect(append(buf[:0], it), q)
			s.foldShard(&s.shards[i], buf)
		case <-c.quit:
			// Drain what made it into the queue before the close; enqueue
			// is excluded by c.mu, so an empty queue here is final.
			for {
				select {
				case it := <-q:
					buf = s.collect(append(buf[:0], it), q)
					s.foldShard(&s.shards[i], buf)
				default:
					return
				}
			}
		}
	}
}

// collect greedily drains waiting items into buf, up to BatchMax.
func (s *Server) collect(buf []*pendingItem, q chan *pendingItem) []*pendingItem {
	for len(buf) < s.coal.cfg.BatchMax {
		select {
		case it := <-q:
			buf = append(buf, it)
		default:
			return buf
		}
	}
	return buf
}

// foldShard folds one collected batch into the shard's state:
//
//  1. one shard-lock hold reserves every idempotency key (duplicates are
//     settled here and skip the fold),
//  2. one road-lock hold per road group adds that road's submissions in
//     arrival order and bumps the generation once per accepted item,
//  3. one shard-lock hold releases the keys of rejected submissions so
//     they stay retryable.
//
// The per-cell arithmetic is exactly Accumulator.Add in the same order the
// direct path would have run, so the fused output is bit-identical.
//
// When any folded item carries a span context, the whole pass is wrapped in
// a fold span — its own single-span trace, always kept by the tail sampler
// (keep=fold) — that links back to each distinct request span it folded for,
// annotated with the robust-fusion outcome (downweighted/trimmed/clamped
// cells) so a trace shows what trust machinery did to a submission.
func (s *Server) foldShard(sh *shard, items []*pendingItem) {
	obsCoalesceFolds.Inc()
	obsCoalesceBatch.Observe(float64(len(items)))

	var fold *obs.Span
	if tr := s.tracer(); tr.Enabled() {
		var linked []obs.SpanContext
		for _, it := range items {
			if !it.sc.IsValid() {
				continue
			}
			dup := false
			for _, sc := range linked {
				if sc == it.sc {
					dup = true
					break
				}
			}
			if !dup {
				linked = append(linked, it.sc)
			}
		}
		if len(linked) > 0 {
			fold = tr.Start("coalesce:fold", "cloud",
				obs.L("keep", "fold"), obs.L("batch", strconv.Itoa(len(items))))
			for _, sc := range linked {
				fold.Link(sc)
			}
		}
	}

	sh.mu.Lock()
	for _, it := range items {
		if it.key != "" && sh.dedup.reserve(it.key) {
			it.out.Status = statusDuplicate
		}
	}
	sh.mu.Unlock()

	// Group by road preserving arrival order, both across groups and
	// within each group.
	order := make([]string, 0, 8)
	groups := make(map[string][]*pendingItem, 8)
	for _, it := range items {
		if it.out.Status == statusDuplicate {
			continue
		}
		if _, ok := groups[it.roadID]; !ok {
			order = append(order, it.roadID)
		}
		groups[it.roadID] = append(groups[it.roadID], it)
	}

	var accepted uint64
	var robust fusion.FoldReport
	var rejectedKeys []string
	for _, road := range order {
		group := groups[road]
		rs := s.roadFor(road)
		rs.mu.Lock()
		for _, it := range group {
			var de *deviceEntry
			if it.device != "" {
				de = s.deviceFor(it.device)
			}
			rep, err := rs.addLocked(it.p, de)
			if err != nil {
				it.out.Status = statusRejected
				it.out.Error = err.Error()
				if it.key != "" {
					rejectedKeys = append(rejectedKeys, it.key)
				}
				continue
			}
			robust.Downweighted += rep.Downweighted
			robust.Trimmed += rep.Trimmed
			robust.Clamped += rep.Clamped
			it.out.Status = statusAccepted
			rs.gen++
			accepted++
		}
		rs.mu.Unlock()
	}
	if len(rejectedKeys) > 0 {
		sh.mu.Lock()
		for _, k := range rejectedKeys {
			sh.dedup.release(k)
		}
		sh.mu.Unlock()
	}
	if accepted > 0 {
		s.totalGen.Add(accepted)
	}
	var dups, rejected int
	for _, it := range items {
		switch it.out.Status {
		case statusAccepted:
			batchItemCounter(statusAccepted).Inc()
		case statusDuplicate:
			batchItemCounter(statusDuplicate).Inc()
			dups++
		case statusRejected:
			batchItemCounter(statusRejected).Inc()
			rejected++
		}
	}
	// End the fold span before releasing the handlers: by the time a batch
	// response reaches the client, the fold's link into that request trace is
	// already in the trace store.
	if fold != nil {
		fold.Annotate("accepted", strconv.FormatUint(accepted, 10))
		fold.Annotate("duplicate", strconv.Itoa(dups))
		fold.Annotate("rejected", strconv.Itoa(rejected))
		fold.Annotate("downweighted_cells", strconv.FormatUint(robust.Downweighted, 10))
		fold.Annotate("trimmed_cells", strconv.FormatUint(robust.Trimmed, 10))
		fold.Annotate("clamped_cells", strconv.FormatUint(robust.Clamped, 10))
		fold.End()
	}
	for _, it := range items {
		it.done.Done()
	}
}

// foldDirect is the non-coalescing batch fold: per-item SubmitIdempotent,
// used when EnableCoalescing was not called. It still amortizes the HTTP
// and decode cost across the batch, just not the lock acquisitions.
func (s *Server) foldDirect(items []BatchItem, results []BatchItemResult) {
	for i := range items {
		dup, err := s.SubmitIdempotentDevice(items[i].RoadID, items[i].Key, items[i].Device, items[i].Profile)
		switch {
		case err != nil:
			results[i] = BatchItemResult{Status: statusRejected, Error: err.Error()}
			batchItemCounter(statusRejected).Inc()
		case dup:
			results[i] = BatchItemResult{Status: statusDuplicate}
			batchItemCounter(statusDuplicate).Inc()
		default:
			results[i] = BatchItemResult{Status: statusAccepted}
			batchItemCounter(statusAccepted).Inc()
		}
	}
}

// retryAfter returns the 429 hint in whole seconds (minimum 1).
func (c *coalescer) retryAfter() int {
	secs := int(c.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// queueDepth returns the total queued items (for tests and health checks).
func (c *coalescer) queueDepth() int {
	n := 0
	for _, q := range c.queues {
		n += len(q)
	}
	return n
}
