package cloud

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// accessLine is the decoded form of one JSON access-log record.
type accessLine struct {
	Msg            string  `json:"msg"`
	Method         string  `json:"method"`
	Route          string  `json:"route"`
	Path           string  `json:"path"`
	Status         int     `json:"status"`
	Bytes          int     `json:"bytes"`
	RequestID      string  `json:"request_id"`
	IdempotencyDup bool    `json:"idempotency_dup"`
	Duration       float64 `json:"duration"` // nanoseconds (slog renders time.Duration numerically)
}

func decodeAccessLog(t *testing.T, buf *bytes.Buffer) []accessLine {
	t.Helper()
	var out []accessLine
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var al accessLine
		if err := json.Unmarshal([]byte(line), &al); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, al)
	}
	return out
}

func TestAccessLogAndRequestID(t *testing.T) {
	var logBuf bytes.Buffer
	srv := NewServer()
	srv.Logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"spacing_m":5,"grade_rad":[0.01,0.02],"var":[0.001,0.001]}`
	post := func(reqID string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/roads/r1/profiles", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "k-1")
		if reqID != "" {
			req.Header.Set(RequestIDHeader, reqID)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// First submission: accepted, request id generated.
	resp := post("")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got == "" {
		t.Error("no X-Request-Id generated on response")
	}

	// Retry with the same idempotency key and a caller-supplied request id:
	// still 202, id echoed back, flagged as a duplicate in the log.
	resp = post("phone-42")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submit: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "phone-42" {
		t.Errorf("X-Request-Id = %q, want echoed phone-42", got)
	}

	// A fetch too, so the log covers a second route.
	fresp, err := ts.Client().Get(ts.URL + "/v1/roads/r1/profile")
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()

	lines := decodeAccessLog(t, &logBuf)
	if len(lines) != 3 {
		t.Fatalf("got %d access-log lines, want 3", len(lines))
	}
	first, dup, fetch := lines[0], lines[1], lines[2]
	if first.Method != "POST" || first.Route != routeSubmit || first.Status != http.StatusAccepted {
		t.Errorf("first line = %+v", first)
	}
	if first.IdempotencyDup {
		t.Error("first submission flagged as duplicate")
	}
	if first.RequestID == "" || first.Duration <= 0 {
		t.Errorf("first line missing request_id/duration: %+v", first)
	}
	if !dup.IdempotencyDup {
		t.Errorf("retry not flagged as idempotency dup: %+v", dup)
	}
	if dup.RequestID != "phone-42" {
		t.Errorf("retry request_id = %q, want phone-42", dup.RequestID)
	}
	if fetch.Method != "GET" || fetch.Route != routeFused || fetch.Status != http.StatusOK {
		t.Errorf("fetch line = %+v", fetch)
	}
	if fetch.Bytes == 0 {
		t.Errorf("fetch logged zero response bytes: %+v", fetch)
	}
}

// TestHandlerNoLogger: metrics/request-id middleware must be nil-safe when no
// logger is configured (the default for library users and existing tests).
func TestHandlerNoLogger(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/roads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("request id missing without logger")
	}
}
