package cloud

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"roadgrade/internal/fusion"
)

func profileOf(spacing float64, grades []float64, vari float64) *fusion.Profile {
	p := &fusion.Profile{
		SpacingM: spacing,
		S:        make([]float64, len(grades)),
		GradeRad: append([]float64(nil), grades...),
		Var:      make([]float64, len(grades)),
	}
	for i := range grades {
		p.S[i] = float64(i) * spacing
		p.Var[i] = vari
	}
	return p
}

func TestServerSubmitAndFuse(t *testing.T) {
	s := NewServer()
	a := profileOf(5, []float64{0.02, 0.02}, 1e-4)
	b := profileOf(5, []float64{0.04, 0.04}, 1e-4)
	if err := s.Submit("main-st", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("main-st", b); err != nil {
		t.Fatal(err)
	}
	fused, err := s.Fused("main-st")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fused.GradeRad[0]-0.03) > 1e-12 {
		t.Errorf("fused = %v, want 0.03", fused.GradeRad[0])
	}
	roads := s.Roads()
	if len(roads) != 1 || roads[0].Submissions != 2 || roads[0].RoadID != "main-st" {
		t.Errorf("Roads = %+v", roads)
	}
}

func TestServerValidation(t *testing.T) {
	s := NewServer()
	if err := s.Submit("", profileOf(5, []float64{0.1}, 1)); err == nil {
		t.Error("empty id should error")
	}
	if err := s.Submit("x", nil); err == nil {
		t.Error("nil profile should error")
	}
	if err := s.Submit("x", profileOf(5, []float64{0.1}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("x", profileOf(3, []float64{0.1}, 1)); err == nil {
		t.Error("mismatched spacing should error")
	}
	if _, err := s.Fused("unknown"); err == nil {
		t.Error("unknown road should error")
	}
}

func TestServerSubmissionCap(t *testing.T) {
	s := NewServer()
	s.MaxSubmissionsPerRoad = 3
	for i := 0; i < 10; i++ {
		if err := s.Submit("x", profileOf(5, []float64{0.1}, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Roads()[0].Submissions; got != 3 {
		t.Errorf("submissions = %d, want capped at 3", got)
	}
}

func TestServerConcurrentSubmissions(t *testing.T) {
	s := NewServer()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := s.Submit("r", profileOf(5, []float64{0.01, 0.02}, 1e-3)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, err := s.Fused("r"); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Two vehicles submit differing profiles for the same road.
	if err := client.SubmitProfile(ctx, "red-route", profileOf(5, []float64{0.02, 0.03}, 1e-4)); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitProfile(ctx, "red-route", profileOf(5, []float64{0.04, 0.05}, 1e-4)); err != nil {
		t.Fatal(err)
	}
	fused, err := client.FetchProfile(ctx, "red-route")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fused.GradeRad[0]-0.03) > 1e-12 || math.Abs(fused.GradeRad[1]-0.04) > 1e-12 {
		t.Errorf("fused = %v", fused.GradeRad)
	}
	roads, err := client.ListRoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(roads) != 1 || roads[0].Submissions != 2 {
		t.Errorf("roads = %+v", roads)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := client.FetchProfile(ctx, "nope"); err == nil {
		t.Error("fetch of unknown road should error")
	}
	if !strings.Contains(errString(client.FetchProfile(ctx, "nope")), "404") {
		t.Error("error should carry the HTTP status")
	}
	if err := client.SubmitProfile(ctx, "x", nil); err == nil {
		t.Error("nil profile should error client-side")
	}
	// Spacing conflict surfaces as an HTTP error.
	if err := client.SubmitProfile(ctx, "y", profileOf(5, []float64{0.1}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitProfile(ctx, "y", profileOf(3, []float64{0.1}, 1)); err == nil {
		t.Error("conflicting spacing should error")
	}
}

func TestHTTPBadPayload(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/roads/x/profiles", "application/json",
		strings.NewReader(`{"spacing_m":0,"grade_rad":[],"var":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	resp2, err := srv.Client().Post(srv.URL+"/v1/roads/x/profiles", "application/json",
		strings.NewReader(`garbage`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp2.StatusCode)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("", nil); err == nil {
		t.Error("empty base should error")
	}
}

func TestProfileDTOValidation(t *testing.T) {
	tests := []struct {
		name string
		dto  ProfileDTO
	}{
		{"spacing", ProfileDTO{SpacingM: 0, GradeRad: []float64{1}, Var: []float64{1}}},
		{"empty", ProfileDTO{SpacingM: 5}},
		{"mismatch", ProfileDTO{SpacingM: 5, GradeRad: []float64{1, 2}, Var: []float64{1}}},
		{"neg-var", ProfileDTO{SpacingM: 5, GradeRad: []float64{1}, Var: []float64{-1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.dto.toProfile(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func errString(_ *fusion.Profile, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
