package cloud

// keyRing is the bounded idempotency-dedup store: the set of live accepted
// keys plus a fixed-capacity FIFO ring that drives eviction.
//
// It replaces a plain slice queue with two defects. First, the slice FIFO
// (`queue = queue[1:]`) pinned the backing array and kept growing it across
// evictions; the ring's backing array is allocated once. Second, rolling back
// a rejected submission removed the key from the map but only popped it from
// the queue when it happened to be the tail, so the two could drift: a later
// eviction would pop the dead queue entry as if it were live and evict a
// different, still-live key early — making a retried upload double-count.
// release now removes the key wherever it sits in the ring, so the map and
// ring describe the same key set at all times (len(seen) == n is an
// invariant).
//
// keyRing is not safe for concurrent use; the owning shard locks around it.
type keyRing struct {
	keys []string // fixed-capacity circular buffer
	head int      // index of the oldest key
	n    int      // occupied slots
	seen map[string]struct{}
}

// newKeyRing returns a ring retaining at most capacity keys.
func newKeyRing(capacity int) *keyRing {
	if capacity < 1 {
		capacity = 1
	}
	return &keyRing{
		keys: make([]string, capacity),
		seen: make(map[string]struct{}, capacity),
	}
}

// reserve claims key, evicting the oldest live key if the ring is full. It
// reports whether the key was already reserved (an idempotent replay).
func (k *keyRing) reserve(key string) (dup bool) {
	if _, ok := k.seen[key]; ok {
		return true
	}
	if k.n == len(k.keys) {
		oldest := k.keys[k.head]
		delete(k.seen, oldest)
		k.keys[k.head] = ""
		k.head = (k.head + 1) % len(k.keys)
		k.n--
	}
	k.keys[(k.head+k.n)%len(k.keys)] = key
	k.n++
	k.seen[key] = struct{}{}
	return false
}

// release rolls back a reservation whose submission was rejected: the key is
// removed from the map and from wherever it sits in the ring (preserving the
// FIFO order of the others), so it stays retryable and cannot later cause a
// live key to be evicted in its place. Unknown keys are ignored.
func (k *keyRing) release(key string) {
	if _, ok := k.seen[key]; !ok {
		return
	}
	delete(k.seen, key)
	size := len(k.keys)
	for i := 0; i < k.n; i++ {
		if k.keys[(k.head+i)%size] != key {
			continue
		}
		// Shift every younger key back one slot.
		for j := i; j < k.n-1; j++ {
			k.keys[(k.head+j)%size] = k.keys[(k.head+j+1)%size]
		}
		k.keys[(k.head+k.n-1)%size] = ""
		k.n--
		return
	}
}

// live returns the number of reserved keys.
func (k *keyRing) live() int { return len(k.seen) }
