package cloud

// POST /v1/submit-batch: many profile submissions in one request, with
// per-item outcomes. The request body is either the JSON form
//
//	{"items":[{"road_id":"r","key":"k","profile":{"spacing_m":5,...}}, ...]}
//
// (Content-Type: application/json) or the compact binary codec of codec.go
// (Content-Type: application/x-roadgrade-batch). Either form may be
// compressed with Content-Encoding: gzip. The response is always JSON —
//
//	{"results":[{"status":"accepted"}, {"status":"shed"}, ...]}
//
// index-aligned with the request items — gzipped when the client accepts it.
// Statuses: accepted, duplicate (idempotency-key replay), rejected (invalid
// for this road, e.g. spacing mismatch; carries an error), shed (admission
// control dropped it; retry after Retry-After). A response with any shed
// item is a 429; otherwise 200.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"roadgrade/internal/obs"
)

// batchRequestDTO is the JSON wire form of a batch.
type batchRequestDTO struct {
	Items []batchItemDTO `json:"items"`
}

// batchItemDTO is one JSON batch entry.
type batchItemDTO struct {
	RoadID  string     `json:"road_id"`
	Key     string     `json:"key,omitempty"`
	Device  string     `json:"device,omitempty"`
	Profile ProfileDTO `json:"profile"`
}

// batchResponseDTO is the JSON response body.
type batchResponseDTO struct {
	Results []BatchItemResult `json:"results"`
}

// maxBatchBodyBytes caps a batch request body (pre- and post-decompression):
// 4096 items × a few km of road each fits comfortably.
const maxBatchBodyBytes = 64 << 20

// gzipWriterPool recycles response compressors.
var gzipWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// readBody slurps the request body into a pooled buffer, transparently
// decompressing a gzip Content-Encoding and bounding both the wire and the
// decompressed size. The caller must return buf to bodyBufPool.
func readBody(w http.ResponseWriter, r *http.Request, maxBytes int64) (*bytes.Buffer, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	var src io.Reader = r.Body
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
	case "gzip":
		gz, err := gzip.NewReader(r.Body)
		if err != nil {
			return nil, fmt.Errorf("gzip body: %w", err)
		}
		defer gz.Close()
		// A tiny wire body can inflate without bound; cap the decompressed
		// size too. LimitReader+1 so overflow is detectable.
		src = io.LimitReader(gz, maxBytes+1)
	default:
		return nil, fmt.Errorf("%w %q", errUnsupportedEncoding, enc)
	}
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(src); err != nil {
		bodyBufPool.Put(buf)
		return nil, err
	}
	if int64(buf.Len()) > maxBytes {
		bodyBufPool.Put(buf)
		return nil, fmt.Errorf("decompressed body exceeds %d bytes", maxBytes)
	}
	return buf, nil
}

// acceptsGzip reports whether the client advertised gzip support.
func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

// handleSubmitBatch is the batched ingest door.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	buf, err := readBody(w, r, maxBatchBodyBytes)
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		} else if errors.Is(err, errUnsupportedEncoding) {
			code = http.StatusUnsupportedMediaType
		}
		httpError(w, code, fmt.Errorf("reading batch: %w", err))
		return
	}
	defer bodyBufPool.Put(buf)

	items, err := decodeBatch(r.Header.Get("Content-Type"), buf.Bytes())
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errUnsupportedMedia) {
			code = http.StatusUnsupportedMediaType
		}
		httpError(w, code, err)
		return
	}
	if len(items) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("cloud: empty batch"))
		return
	}

	results := make([]BatchItemResult, len(items))
	shed := 0
	if c := s.coal; c != nil {
		// The handler span's context (set by instrument) crosses the queue
		// boundary on each item; the fold span links back to it.
		sc, _ := obs.SpanContextFrom(r.Context())
		var done sync.WaitGroup
		done.Add(len(items))
		pend := make([]*pendingItem, len(items))
		backing := make([]pendingItem, len(items))
		for i := range items {
			backing[i] = pendingItem{
				roadID: items[i].RoadID,
				key:    items[i].Key,
				device: items[i].Device,
				p:      items[i].Profile,
				out:    &results[i],
				done:   &done,
				sc:     sc,
			}
			pend[i] = &backing[i]
		}
		shed = s.enqueue(pend)
		done.Wait()
	} else {
		s.foldDirect(items, results)
	}

	code := http.StatusOK
	if shed > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(s.coal.retryAfter()))
		code = http.StatusTooManyRequests
	}
	writeBatchResponse(w, r, code, batchResponseDTO{Results: results})
}

// errUnsupportedMedia marks an unknown batch Content-Type (→ 415).
var errUnsupportedMedia = errors.New("cloud: unsupported batch content type")

// errUnsupportedEncoding marks an unknown request Content-Encoding (→ 415).
var errUnsupportedEncoding = errors.New("cloud: unsupported Content-Encoding")

// decodeBatch dispatches on Content-Type and returns validated submissions.
func decodeBatch(contentType string, body []byte) ([]BatchItem, error) {
	mt := contentType
	if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
		mt = parsed
	}
	switch mt {
	case ContentTypeBinary:
		return DecodeBatchBinary(body)
	case ContentTypeJSON, "":
		var dto batchRequestDTO
		if err := json.Unmarshal(body, &dto); err != nil {
			return nil, fmt.Errorf("decoding batch: %w", err)
		}
		if len(dto.Items) > maxBatchItems {
			return nil, fmt.Errorf("cloud: batch too large (%d items, max %d)", len(dto.Items), maxBatchItems)
		}
		items := make([]BatchItem, len(dto.Items))
		for i := range dto.Items {
			if dto.Items[i].RoadID == "" {
				return nil, fmt.Errorf("cloud: batch item %d: empty road id", i)
			}
			if len(dto.Items[i].Key) > maxKeyLen {
				return nil, fmt.Errorf("cloud: batch item %d: idempotency key too long", i)
			}
			if err := validDeviceID(dto.Items[i].Device); err != nil {
				return nil, fmt.Errorf("cloud: batch item %d: %w", i, err)
			}
			p, err := dto.Items[i].Profile.toProfile()
			if err != nil {
				return nil, fmt.Errorf("cloud: batch item %d: %w", i, err)
			}
			items[i] = BatchItem{RoadID: dto.Items[i].RoadID, Key: dto.Items[i].Key, Device: dto.Items[i].Device, Profile: p}
		}
		return items, nil
	default:
		return nil, fmt.Errorf("%w %q", errUnsupportedMedia, contentType)
	}
}

// writeBatchResponse encodes the per-item results, gzipping when the client
// accepts it (batch responses grow with the batch, so compression pays).
func writeBatchResponse(w http.ResponseWriter, r *http.Request, code int, body batchResponseDTO) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Vary", "Accept-Encoding")
	if !acceptsGzip(r) {
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(body)
		return
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.WriteHeader(code)
	gz := gzipWriterPool.Get().(*gzip.Writer)
	gz.Reset(w)
	_ = json.NewEncoder(gz).Encode(body)
	_ = gz.Close()
	gzipWriterPool.Put(gz)
}
