package cloud

import (
	"testing"
	"time"
)

// TestParseRetryAfter covers RFC 9110 §10.2.3: delta-seconds and all three
// HTTP-date forms (IMF-fixdate, obsolete RFC 850, ANSI C asctime), plus the
// degenerate values that must fall back to "no hint".
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"delta seconds", "7", 7 * time.Second},
		{"delta one", "1", time.Second},
		{"delta zero", "0", 0},
		{"delta negative", "-3", 0},
		{"imf fixdate future", "Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second},
		{"imf fixdate past", "Sat, 08 Aug 2026 11:59:00 GMT", 0},
		{"imf fixdate far future", "Sat, 08 Aug 2026 13:00:00 GMT", time.Hour},
		{"rfc850 date", "Saturday, 08-Aug-26 12:01:00 GMT", time.Minute},
		{"asctime date", "Sat Aug  8 12:00:10 2026", 10 * time.Second},
		{"garbage", "soon", 0},
		{"float seconds", "1.5", 0},
		{"trailing junk", "7 seconds", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.v, now); got != tc.want {
				t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}
