package cloud

import (
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// randProfile builds a deterministic random profile for a road.
func randProfile(rng *rand.Rand, cells int) *fusion.Profile {
	p := &fusion.Profile{
		SpacingM: 5,
		S:        make([]float64, cells),
		GradeRad: make([]float64, cells),
		Var:      make([]float64, cells),
	}
	for i := 0; i < cells; i++ {
		p.S[i] = float64(i) * 5
		p.GradeRad[i] = 0.05 * (rng.Float64() - 0.5)
		p.Var[i] = 1e-5 + 1e-4*rng.Float64()
	}
	return p
}

// TestFusedMatchesBatchOverRetainedWindow asserts the acceptance criterion:
// the served fused profile is bit-identical to batch FuseProfiles over the
// retained window (the most recent MaxSubmissionsPerRoad submissions), even
// after evictions, and the read path performs zero FuseProfiles calls.
func TestFusedMatchesBatchOverRetainedWindow(t *testing.T) {
	s := NewServer()
	s.MaxSubmissionsPerRoad = 64
	rng := rand.New(rand.NewSource(7))
	var all []*fusion.Profile
	for i := 0; i < 100; i++ { // 100 > 64: forces eviction + rebuild
		p := randProfile(rng, 50)
		all = append(all, p)
		if err := s.Submit("hill-rd", p); err != nil {
			t.Fatal(err)
		}
	}

	batchCalls := obs.Default.Counter("fusion_profile_batch_fuses_total")
	before := batchCalls.Value()
	var got *fusion.Profile
	for i := 0; i < 10; i++ { // repeated reads: snapshot cache path too
		var err error
		got, err = s.Fused("hill-rd")
		if err != nil {
			t.Fatal(err)
		}
	}
	if delta := batchCalls.Value() - before; delta != 0 {
		t.Errorf("read path called FuseProfiles %d times, want 0", delta)
	}

	want, err := fusion.FuseProfiles(all[len(all)-64:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("fused len = %d, want %d", got.Len(), want.Len())
	}
	for c := range want.S {
		if math.Float64bits(got.GradeRad[c]) != math.Float64bits(want.GradeRad[c]) ||
			math.Float64bits(got.Var[c]) != math.Float64bits(want.Var[c]) {
			t.Fatalf("cell %d: fused (%v, %v) != batch (%v, %v)",
				c, got.GradeRad[c], got.Var[c], want.GradeRad[c], want.Var[c])
		}
	}
}

// TestFusedJSONCache asserts that repeated GETs of an unchanged road serve
// the identical pre-encoded bytes, and that a new submission invalidates the
// cache.
func TestFusedJSONCache(t *testing.T) {
	s := NewServer()
	rng := rand.New(rand.NewSource(8))
	if err := s.Submit("r", randProfile(rng, 10)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func() string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/v1/roads/r/profile")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return string(buf[:n])
	}
	a, b := get(), get()
	if a != b {
		t.Error("unchanged road served different bytes")
	}
	if err := s.Submit("r", randProfile(rng, 10)); err != nil {
		t.Fatal(err)
	}
	if c := get(); c == a {
		t.Error("submission did not invalidate the fused response cache")
	}
}

// TestConcurrentMixedLoadAcrossShards hammers SubmitIdempotent, Fused, and
// Roads from many goroutines across many roads (so every shard sees traffic)
// with a small retention window (so eviction/rebuild happens under
// contention). Run under -race this is the serving path's data-race gate.
func TestConcurrentMixedLoadAcrossShards(t *testing.T) {
	s := NewServer()
	s.MaxSubmissionsPerRoad = 4
	const (
		writers = 8
		readers = 8
		roads   = 32
		ops     = 50
	)
	roadID := func(i int) string { return fmt.Sprintf("road-%02d", i%roads) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < ops; i++ {
				id := roadID(rng.Intn(roads))
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := s.SubmitIdempotent(id, key, randProfile(rng, 20)); err != nil {
					t.Error(err)
					return
				}
				// Occasionally retry the same key: must dedup, not store.
				if i%7 == 0 {
					if dup, err := s.SubmitIdempotent(id, key, randProfile(rng, 20)); err != nil || !dup {
						t.Errorf("retry of %s: dup=%v err=%v", key, dup, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < ops; i++ {
				id := roadID(rng.Intn(roads))
				if prof, err := s.Fused(id); err == nil {
					// Returned profiles are copies; scribbling on them
					// must be harmless (the race detector checks).
					for c := range prof.GradeRad {
						prof.GradeRad[c] = 0
					}
				}
				if i%10 == 0 {
					s.Roads()
				}
			}
		}(r)
	}
	wg.Wait()

	// Exactly writers*ops accepted submissions, window-capped per road.
	total := 0
	for _, rs := range s.Roads() {
		if rs.Submissions > s.MaxSubmissionsPerRoad {
			t.Errorf("road %s retains %d submissions, cap %d", rs.RoadID, rs.Submissions, s.MaxSubmissionsPerRoad)
		}
		total += rs.Submissions
	}
	if total == 0 {
		t.Error("no submissions retained")
	}
	// Every road must still serve a valid fused profile.
	for _, rs := range s.Roads() {
		prof, err := s.Fused(rs.RoadID)
		if err != nil {
			t.Errorf("road %s: %v", rs.RoadID, err)
			continue
		}
		for c := range prof.GradeRad {
			if math.IsNaN(prof.GradeRad[c]) || prof.Var[c] < 0 {
				t.Errorf("road %s cell %d: corrupt fused value", rs.RoadID, c)
				break
			}
		}
	}
}

// TestConcurrentIdempotencyOneWinner races N submissions of the same key:
// exactly one must store.
func TestConcurrentIdempotencyOneWinner(t *testing.T) {
	s := NewServer()
	rng := rand.New(rand.NewSource(3))
	p := randProfile(rng, 10)
	const racers = 16
	var wg sync.WaitGroup
	dups := make(chan bool, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dup, err := s.SubmitIdempotent("one-rd", "the-key", p)
			if err != nil {
				t.Error(err)
				return
			}
			dups <- dup
		}()
	}
	wg.Wait()
	close(dups)
	stored := 0
	for dup := range dups {
		if !dup {
			stored++
		}
	}
	if stored != 1 {
		t.Errorf("%d racers stored, want exactly 1", stored)
	}
	if roads := s.Roads(); len(roads) != 1 || roads[0].Submissions != 1 {
		t.Errorf("roads = %+v, want one road with one submission", roads)
	}
}

// TestShardDistribution sanity-checks the FNV-1a shard mapping: distinct ids
// spread over more than one shard, and the same id is stable.
func TestShardDistribution(t *testing.T) {
	s := NewServer()
	used := make(map[*shard]bool)
	for i := 0; i < 256; i++ {
		used[s.shardFor(fmt.Sprintf("road-%d", i))] = true
	}
	if len(used) < 8 {
		t.Errorf("256 roads landed on only %d shards", len(used))
	}
	if s.shardFor("main-st") != s.shardFor("main-st") {
		t.Error("shard mapping is not stable")
	}
}

// TestNewServerWithShards checks the power-of-two rounding and clamping.
func TestNewServerWithShards(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {3, 4}, {32, 32}, {33, 64}, {5000, 1024},
	} {
		if got := len(NewServerWithShards(tc.in).shards); got != tc.want {
			t.Errorf("NewServerWithShards(%d) = %d shards, want %d", tc.in, got, tc.want)
		}
	}
}
