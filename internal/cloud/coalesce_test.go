package cloud

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"roadgrade/internal/obs"
)

// newCoalescedServer returns a serving test pair: a coalescing server and
// its HTTP test server. The caller must Close both.
func newCoalescedServer(t *testing.T, cfg CoalesceConfig, maxPerRoad int) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServerWithShards(4)
	if maxPerRoad > 0 {
		srv.MaxSubmissionsPerRoad = maxPerRoad
	}
	srv.EnableCoalescing(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestCoalescedFusionBitIdentical is the write-path mirror of PR 4's
// serving property test: the same submission sequence pushed through the
// coalesced batch path and through the direct Submit path must produce
// fused profiles with identical Float64bits — including after retention
// evictions force accumulator rebuilds.
func TestCoalescedFusionBitIdentical(t *testing.T) {
	for _, window := range []int{0, 1, 3, 8} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			srv, ts := newCoalescedServer(t, CoalesceConfig{}, window)
			direct := NewServerWithShards(4)
			if window > 0 {
				direct.MaxSubmissionsPerRoad = window
			}

			cli, err := NewClient(ts.URL, ts.Client(), WithBinaryBatch(true))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(41 + window)))
			roads := []string{"r-a", "r-b", "r-c"}
			seq := 0
			for batch := 0; batch < 6; batch++ {
				n := 3 + rng.Intn(6)
				items := make([]BatchItem, n)
				for i := range items {
					road := roads[rng.Intn(len(roads))]
					p := realisticProfile(rng, 40+rng.Intn(30))
					items[i] = BatchItem{RoadID: road, Key: fmt.Sprintf("k-%d", seq), Profile: p}
					seq++
				}
				res, err := cli.SubmitBatch(context.Background(), items)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range res {
					if r.Status != "accepted" {
						t.Fatalf("batch %d item %d: %+v", batch, i, r)
					}
				}
				// The binary codec quantizes; feed the direct path the same
				// post-quantization values by re-decoding the wire form.
				enc, err := EncodeBatchBinary(items)
				if err != nil {
					t.Fatal(err)
				}
				dec, err := DecodeBatchBinary(enc)
				if err != nil {
					t.Fatal(err)
				}
				for i := range dec {
					if err := direct.Submit(dec[i].RoadID, dec[i].Profile); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, road := range roads {
				got, err := srv.Fused(road)
				if err != nil {
					t.Fatalf("coalesced %s: %v", road, err)
				}
				want, err := direct.Fused(road)
				if err != nil {
					t.Fatalf("direct %s: %v", road, err)
				}
				if got.Len() != want.Len() || got.SpacingM != want.SpacingM {
					t.Fatalf("%s: shape mismatch", road)
				}
				for c := range want.GradeRad {
					if math.Float64bits(got.GradeRad[c]) != math.Float64bits(want.GradeRad[c]) {
						t.Fatalf("%s cell %d: grade bits differ: %v vs %v", road, c, got.GradeRad[c], want.GradeRad[c])
					}
					if math.Float64bits(got.Var[c]) != math.Float64bits(want.Var[c]) {
						t.Fatalf("%s cell %d: var bits differ", road, c)
					}
				}
			}
		})
	}
}

// TestBatchedSubmitZeroFuseProfiles asserts the write-side mirror of the
// PR 4 serving invariant: a storm of batched submits followed by fused
// reads performs zero batch FuseProfiles calls — everything runs through
// the incremental accumulator.
func TestBatchedSubmitZeroFuseProfiles(t *testing.T) {
	srv, ts := newCoalescedServer(t, CoalesceConfig{}, 0)
	cli, err := NewClient(ts.URL, ts.Client(), WithBinaryBatch(true))
	if err != nil {
		t.Fatal(err)
	}
	batchCalls := obs.Default.Counter("fusion_profile_batch_fuses_total")
	before := batchCalls.Value()

	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 4; round++ {
		items := make([]BatchItem, 16)
		for i := range items {
			items[i] = BatchItem{
				RoadID:  fmt.Sprintf("road-%d", i%5),
				Key:     fmt.Sprintf("zfp-%d-%d", round, i),
				Profile: realisticProfile(rng, 50),
			}
		}
		if _, err := cli.SubmitBatch(context.Background(), items); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := srv.Fused(fmt.Sprintf("road-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if delta := batchCalls.Value() - before; delta != 0 {
		t.Errorf("batched write path called FuseProfiles %d times, want 0", delta)
	}
}

// TestCoalescerConcurrentBatches hammers the coalescer from many goroutines
// and checks nothing is lost or double-counted: every accepted item is in a
// road's window, duplicates settle to exactly one accept per key.
func TestCoalescerConcurrentBatches(t *testing.T) {
	// A retention window larger than the offered load, so stored submissions
	// can be reconciled against accepted statuses without evictions.
	srv, ts := newCoalescedServer(t, CoalesceConfig{QueueDepth: 8192, BatchMax: 64}, 4096)

	const workers = 8
	const batches = 10
	const perBatch = 20
	var wg sync.WaitGroup
	accepted := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := NewClient(ts.URL, ts.Client(), WithBinaryBatch(w%2 == 0), WithGzip(w%3 == 0))
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for b := 0; b < batches; b++ {
				items := make([]BatchItem, perBatch)
				for i := range items {
					items[i] = BatchItem{
						RoadID:  fmt.Sprintf("road-%d", rng.Intn(6)),
						Key:     fmt.Sprintf("w%d-b%d-i%d", w, b, i),
						Profile: realisticProfile(rng, 30),
					}
				}
				res, err := cli.SubmitBatch(context.Background(), items)
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range res {
					if r.Status == "accepted" {
						accepted[w]++
					} else if r.Status != "shed" {
						t.Errorf("unexpected status %+v", r)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var wantTotal uint64
	for _, n := range accepted {
		wantTotal += n
	}
	var gotTotal uint64
	for _, rs := range srv.Roads() {
		gotTotal += uint64(rs.Submissions)
	}
	if gotTotal != wantTotal {
		t.Errorf("stored %d submissions, clients saw %d accepted", gotTotal, wantTotal)
	}
	if srv.StoreGeneration() != wantTotal {
		t.Errorf("store generation %d, want %d", srv.StoreGeneration(), wantTotal)
	}
}

// TestKeyRingConcurrentBatchedSubmits is the idempotency race: the same key
// appears in two (and more) in-flight batches; exactly one copy may be
// stored no matter how the folds interleave.
func TestKeyRingConcurrentBatchedSubmits(t *testing.T) {
	srv, ts := newCoalescedServer(t, CoalesceConfig{QueueDepth: 4096, BatchMax: 32}, 0)

	const contenders = 6
	const sharedKeys = 25
	var wg sync.WaitGroup
	for w := 0; w < contenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := NewClient(ts.URL, ts.Client())
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(w)))
			items := make([]BatchItem, sharedKeys)
			for i := range items {
				// Same key from every contender — a fleet of phones
				// retrying the same upload concurrently.
				items[i] = BatchItem{
					RoadID:  "contended-road",
					Key:     fmt.Sprintf("shared-%d", i),
					Profile: realisticProfile(rng, 20),
				}
			}
			res, err := cli.SubmitBatch(context.Background(), items)
			if err != nil {
				t.Error(err)
				return
			}
			for i, r := range res {
				if r.Status != "accepted" && r.Status != "duplicate" {
					t.Errorf("contender %d item %d: %+v", w, i, r)
				}
			}
		}(w)
	}
	wg.Wait()

	roads := srv.Roads()
	if len(roads) != 1 || roads[0].Submissions != sharedKeys {
		t.Errorf("roads = %+v, want 1 road with %d submissions (one per shared key)", roads, sharedKeys)
	}
}

// TestCoalescerSheds drives a server whose queue cannot absorb the offered
// load and checks admission control degrades gracefully: 429 + Retry-After,
// per-item shed statuses, and nothing stored beyond what was accepted.
func TestCoalescerSheds(t *testing.T) {
	// One-shard server with a tiny queue and a worker kept busy: the easiest
	// deterministic way to overflow is to enqueue more than QueueDepth in
	// one batch.
	srv := NewServerWithShards(1)
	srv.EnableCoalescing(CoalesceConfig{QueueDepth: 4, BatchMax: 2, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	rng := rand.New(rand.NewSource(9))
	items := make([]BatchItem, 64)
	for i := range items {
		items[i] = BatchItem{RoadID: "r", Key: fmt.Sprintf("shed-%d", i), Profile: realisticProfile(rng, 10)}
	}
	// Raw one-shot client (no shed retry) to observe the 429 itself.
	cli, err := NewClient(ts.URL, ts.Client(), WithRetry(1, time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, retryAfter, err := cli.submitBatchOnce(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	var shed, accepted int
	for _, r := range res {
		switch r.Status {
		case "shed":
			shed++
		case "accepted":
			accepted++
		}
	}
	if shed == 0 {
		t.Fatalf("expected shedding with queue depth 4 and 64 items; results: %d accepted", accepted)
	}
	if retryAfter != 3*time.Second {
		t.Errorf("Retry-After = %v, want 3s", retryAfter)
	}

	// The retrying client path recovers: re-driving the same batch (same
	// keys) eventually lands every item exactly once.
	retier, err := NewClient(ts.URL, ts.Client(), WithRetry(20, time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	retier.sleep = func(d time.Duration) { time.Sleep(time.Millisecond) }
	final, err := retier.SubmitBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range final {
		if r.Status != "accepted" && r.Status != "duplicate" {
			t.Errorf("after retries item %d: %+v", i, r)
		}
	}
	if got := srv.Roads(); len(got) != 1 || got[0].Submissions != len(items) {
		t.Errorf("stored %+v, want %d submissions exactly once", got, len(items))
	}
}

// TestCoalescerClose checks shutdown semantics: Close folds what was queued,
// is idempotent, and post-Close batches shed instead of hanging.
func TestCoalescerClose(t *testing.T) {
	srv := NewServerWithShards(2)
	srv.EnableCoalescing(CoalesceConfig{QueueDepth: 128})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cli, err := NewClient(ts.URL, ts.Client(), WithRetry(1, time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	items := []BatchItem{{RoadID: "r", Key: "c1", Profile: realisticProfile(rng, 10)}}
	if _, err := cli.SubmitBatch(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent

	res, _, err := cli.submitBatchOnce(context.Background(),
		[]BatchItem{{RoadID: "r", Key: "c2", Profile: realisticProfile(rng, 10)}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != "shed" {
		t.Errorf("post-Close submit status = %+v, want shed", res[0])
	}
	if got := srv.Roads(); len(got) != 1 || got[0].Submissions != 1 {
		t.Errorf("roads after close = %+v", got)
	}
}

// TestBatchDirectPath checks the endpoint works without coalescing enabled
// (synchronous per-item fold), including per-item rejects.
func TestBatchDirectPath(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cli, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	good := realisticProfile(rng, 20)
	mismatched := realisticProfile(rng, 20)
	mismatched.SpacingM = 10 // conflicts with the first accepted submission
	items := []BatchItem{
		{RoadID: "r", Key: "d1", Profile: good},
		{RoadID: "r", Key: "d1", Profile: good}, // same key: duplicate
		{RoadID: "r", Key: "d2", Profile: mismatched},
	}
	res, err := cli.SubmitBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"accepted", "duplicate", "rejected"}
	for i, w := range want {
		if res[i].Status != w {
			t.Errorf("item %d status = %+v, want %s", i, res[i], w)
		}
	}
	if res[2].Error == "" {
		t.Error("rejected item should carry an error")
	}
}
