package cloud

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"time"

	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// Client-side instrumentation: retry pressure is the early-warning signal of
// a struggling fusion service (or flaky phone uplink).
var (
	obsCliRetries  = obs.Default.Counter("cloud_client_retries_total")
	obsCliFailures = obs.Default.Counter("cloud_client_request_failures_total")
	obsCliBackoff  = obs.Default.Histogram("cloud_client_backoff_sleep_seconds", obs.LatencyBuckets)
)

// Client talks to a fusion Server over HTTP. Requests that fail with a
// transport error or a 5xx are retried with exponential backoff plus jitter;
// submissions carry a content-derived Idempotency-Key so a retry after an
// ambiguous failure (request delivered, response lost) cannot double-count a
// profile.
type Client struct {
	base string
	hc   *http.Client

	maxAttempts   int
	baseBackoff   time.Duration
	maxBackoff    time.Duration
	perTryTimeout time.Duration

	// useGzip compresses request bodies and explicitly negotiates gzip
	// responses (see WithGzip for the transport subtlety this implies).
	useGzip bool
	// binaryBatch selects the compact binary codec for SubmitBatch.
	binaryBatch bool

	// sleep and jitter are injectable for tests.
	sleep  func(time.Duration)
	jitter func() float64

	// tracer emits client spans; nil shares obs.DefaultTracer.
	tracer *obs.Tracer
}

// tr returns the client's span tracer (the process default unless WithTracer
// overrode it).
func (c *Client) tr() *obs.Tracer {
	if c.tracer != nil {
		return c.tracer
	}
	return obs.DefaultTracer
}

// startRoot opens a client root span subject to the tracer's head-sampling
// rate; a context already carrying a span always continues its trace. The
// attempt spans and the traceparent header follow the root's decision, so an
// unsampled operation costs one atomic load and sends no header.
func (c *Client) startRoot(ctx context.Context, name string, args ...obs.Label) (context.Context, *obs.Span) {
	tr := c.tr()
	if _, ok := obs.SpanContextFrom(ctx); !ok && !tr.ShouldSample() {
		return ctx, nil
	}
	return tr.StartCtx(ctx, name, "cloud", args...)
}

// Option customizes a Client.
type Option func(*Client)

// WithRetry sets the total attempt budget (including the first try) and the
// backoff window. attempts < 1 disables retries.
func WithRetry(attempts int, base, max time.Duration) Option {
	return func(c *Client) {
		c.maxAttempts = attempts
		c.baseBackoff = base
		c.maxBackoff = max
	}
}

// WithPerTryTimeout bounds each individual attempt (0 disables; the caller's
// context still applies to the whole call).
func WithPerTryTimeout(d time.Duration) Option {
	return func(c *Client) { c.perTryTimeout = d }
}

// WithGzip turns on explicit gzip negotiation: request bodies are
// compressed with Content-Encoding: gzip, and responses are requested with
// an explicit Accept-Encoding: gzip header. Setting Accept-Encoding by hand
// disables net/http's transparent decompression — the transport then hands
// back the raw compressed body — so the client decompresses itself and
// drains the underlying stream for connection reuse. (Without this option
// the transport still negotiates gzip invisibly; the option exists so
// payload sizes on the wire are observable and the request direction is
// compressed too.)
func WithGzip(on bool) Option {
	return func(c *Client) { c.useGzip = on }
}

// WithBinaryBatch makes SubmitBatch use the compact binary wire codec
// (ContentTypeBinary) instead of JSON.
func WithBinaryBatch(on bool) Option {
	return func(c *Client) { c.binaryBatch = on }
}

// WithTracer routes the client's spans to tr instead of obs.DefaultTracer.
func WithTracer(tr *obs.Tracer) Option {
	return func(c *Client) { c.tracer = tr }
}

// NewClient returns a client for the service at base (e.g.
// "http://localhost:8080"). hc defaults to http.DefaultClient. The default
// policy is 4 attempts, 100 ms base backoff capped at 2 s, 10 s per attempt.
func NewClient(base string, hc *http.Client, opts ...Option) (*Client, error) {
	if base == "" {
		return nil, errors.New("cloud: empty base URL")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{
		base:          base,
		hc:            hc,
		maxAttempts:   4,
		baseBackoff:   100 * time.Millisecond,
		maxBackoff:    2 * time.Second,
		perTryTimeout: 10 * time.Second,
		sleep:         time.Sleep,
		jitter:        rand.Float64,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.maxAttempts < 1 {
		c.maxAttempts = 1
	}
	return c, nil
}

// NewTransport returns an *http.Transport tuned for sustained traffic
// against a single fusion service, sized for maxConcurrent in-flight
// requests. http.DefaultTransport keeps only 2 idle connections per host
// (DefaultMaxIdleConnsPerHost), so any client running more than 2 concurrent
// requests churns a TCP (and possibly TLS) handshake per request once the
// burst subsides — a load harness with default settings measures connection
// setup, not the server. The knobs, and why each is set (see DESIGN.md §8):
//
//   - MaxIdleConnsPerHost = maxConcurrent: every worker's connection
//     survives between requests, so steady-state traffic is handshake-free.
//   - MaxIdleConns scales with it (the pool is effectively single-host).
//   - IdleConnTimeout 90 s: idle sockets outlive normal think-time gaps but
//     don't pin server FDs forever.
//   - Dialer KeepAlive 30 s: TCP keep-alives detect half-open connections
//     (e.g. a crashed server) instead of stalling a future request.
//   - MaxConnsPerHost is left 0 (unlimited): admission control belongs to
//     the caller's worker count, and a hard cap here would queue requests
//     invisibly and distort latency measurements.
func NewTransport(maxConcurrent int) *http.Transport {
	if maxConcurrent <= 0 {
		maxConcurrent = 64
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          maxConcurrent,
		MaxIdleConnsPerHost:   maxConcurrent,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// maxErrorBodyBytes caps how much of an error response is read; a
// misbehaving server cannot balloon client memory.
const maxErrorBodyBytes = 4096

// maxResponseBodyBytes caps decoded success responses (a full network
// profile is well under 1 MiB).
const maxResponseBodyBytes = 8 << 20

// drainClose discards at most maxErrorBodyBytes of the remaining body and
// closes it, on every path, so the transport can reuse the connection and a
// hostile body cannot grow without bound.
func drainClose(resp *http.Response) {
	if resp == nil || resp.Body == nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBodyBytes))
	_ = resp.Body.Close()
}

// retryable reports whether an attempt outcome warrants another try.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true // transport-level failure
	}
	return resp.StatusCode >= 500
}

// backoffFor computes the pre-attempt delay: exponential in the retry count,
// capped, with ±50% jitter so a fleet of phones retrying a recovering server
// does not synchronize.
func (c *Client) backoffFor(retry int) time.Duration {
	d := c.baseBackoff << uint(retry)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	return time.Duration(float64(d) * (0.5 + c.jitter()))
}

// do runs one request with the retry policy. build must return a fresh
// request each call (bodies are consumed by failed attempts). The returned
// response body is the caller's to close.
//
// The first attempt propagates the caller's span context (the method root)
// directly in the traceparent header — the common single-attempt request
// costs exactly one client span. Retry attempts each get their own child
// span, so when a request DID retry, the trace shows every attempt
// separately rather than one blurred request; an attempt span in a trace is
// itself the signal that the request was retried.
func (c *Client) do(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.backoffFor(attempt - 1)
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("cloud: giving up after %d attempts: %w", attempt, ctx.Err())
			default:
				obsCliRetries.Inc()
				obsCliBackoff.Observe(wait.Seconds())
				c.sleep(wait)
			}
		}
		tryCtx := ctx
		var cancel context.CancelFunc = func() {}
		if c.perTryTimeout > 0 {
			tryCtx, cancel = context.WithTimeout(ctx, c.perTryTimeout)
		}
		var asp *obs.Span
		if attempt > 0 {
			if _, ok := obs.SpanContextFrom(tryCtx); ok || c.tr().ShouldSample() {
				tryCtx, asp = c.tr().StartCtx(tryCtx, "client:attempt", "cloud",
					obs.L("attempt", strconv.Itoa(attempt)))
			}
		}
		req, err := build(tryCtx)
		if err != nil {
			asp.End()
			cancel()
			return nil, fmt.Errorf("cloud: building request: %w", err)
		}
		if sc, ok := obs.SpanContextFrom(tryCtx); ok {
			req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
		}
		resp, err := c.hc.Do(req)
		if asp != nil {
			if err != nil {
				asp.Annotate("error", err.Error())
			} else {
				asp.Annotate("status", strconv.Itoa(resp.StatusCode))
			}
			asp.End()
		}
		if !retryable(resp, err) {
			// Success or a non-retryable (4xx) response: hand it to the
			// caller. The cancel must outlive the body read, so tie it to
			// the body's Close.
			resp.Body = &cancelOnClose{rc: resp.Body, cancel: cancel}
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("%s", readError(resp))
			drainClose(resp)
		}
		cancel()
		if ctx.Err() != nil {
			break
		}
	}
	obsCliFailures.Inc()
	return nil, fmt.Errorf("cloud: request failed after %d attempts: %w", c.maxAttempts, lastErr)
}

// cancelOnClose releases an attempt's timeout when the caller finishes
// reading the response.
type cancelOnClose struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Read(p []byte) (int, error) { return c.rc.Read(p) }

func (c *cancelOnClose) Close() error {
	err := c.rc.Close()
	c.cancel()
	return err
}

// gzipBytes compresses b (used for request bodies when WithGzip is on).
func gzipBytes(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(b); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// responseBody returns the reader success-path decoders should consume:
// when the server answered with Content-Encoding: gzip (which only happens
// once the client explicitly negotiated it), the body is wrapped in a gzip
// reader. Draining for connection reuse still happens on the raw resp.Body
// via drainClose, which is exactly what the transport needs to see at EOF.
func responseBody(resp *http.Response) (io.Reader, error) {
	switch enc := resp.Header.Get("Content-Encoding"); enc {
	case "", "identity":
		return resp.Body, nil
	case "gzip":
		gz, err := gzip.NewReader(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("cloud: gzip response: %w", err)
		}
		return gz, nil
	default:
		return nil, fmt.Errorf("cloud: unsupported response Content-Encoding %q", enc)
	}
}

// prepareBody applies the client's request compression policy, returning
// the on-wire bytes and the Content-Encoding header value ("" for none).
func (c *Client) prepareBody(body []byte) ([]byte, string, error) {
	if !c.useGzip {
		return body, "", nil
	}
	zipped, err := gzipBytes(body)
	if err != nil {
		return nil, "", fmt.Errorf("cloud: compressing body: %w", err)
	}
	return zipped, "gzip", nil
}

// SubmitProfile uploads one vehicle's fused profile for a road. Retries are
// idempotent: the request carries a key derived from the road and payload, so
// the server stores at most one copy no matter how many attempts land.
func (c *Client) SubmitProfile(ctx context.Context, roadID string, p *fusion.Profile) error {
	if p == nil || p.Len() == 0 {
		return errors.New("cloud: empty profile")
	}
	ctx, root := c.startRoot(ctx, "client:submit", obs.L("road", roadID))
	defer root.End()
	body, err := json.Marshal(FromProfile(p))
	if err != nil {
		return fmt.Errorf("cloud: encoding profile: %w", err)
	}
	sum := sha256.Sum256(append([]byte(roadID+"\x00"), body...))
	key := hex.EncodeToString(sum[:])
	wire, contentEnc, err := c.prepareBody(body)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/roads/%s/profiles", c.base, roadID)
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(wire))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		if contentEnc != "" {
			req.Header.Set("Content-Encoding", contentEnc)
		}
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("cloud: submitting profile: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cloud: submit failed: %s", readError(resp))
	}
	return nil
}

// FetchProfile downloads the fused profile for a road.
func (c *Client) FetchProfile(ctx context.Context, roadID string) (*fusion.Profile, error) {
	ctx, root := c.startRoot(ctx, "client:fetch", obs.L("road", roadID))
	defer root.End()
	url := fmt.Sprintf("%s/v1/roads/%s/profile", c.base, roadID)
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if c.useGzip {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		return req, nil
	})
	if err != nil {
		return nil, fmt.Errorf("cloud: fetching profile: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloud: fetch failed: %s", readError(resp))
	}
	body, err := responseBody(resp)
	if err != nil {
		return nil, err
	}
	var dto ProfileDTO
	if err := json.NewDecoder(io.LimitReader(body, maxResponseBodyBytes)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("cloud: decoding profile: %w", err)
	}
	return dto.toProfile()
}

// Route asks GET /v1/route for an eco-route between two network nodes under
// the given objective ("" = the server default) and cruise speed (0 = the
// server default). The server must have routing enabled.
func (c *Client) Route(ctx context.Context, from, to int, objective string, speedKmh float64) (RouteDTO, error) {
	ctx, root := c.startRoot(ctx, "client:route", obs.L("objective", objective))
	defer root.End()
	url := fmt.Sprintf("%s/v1/route?from=%d&to=%d", c.base, from, to)
	if objective != "" {
		url += "&objective=" + objective
	}
	if speedKmh > 0 {
		url += fmt.Sprintf("&speed_kmh=%g", speedKmh)
	}
	var dto RouteDTO
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	})
	if err != nil {
		return dto, fmt.Errorf("cloud: routing: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return dto, fmt.Errorf("cloud: route failed: %s", readError(resp))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBodyBytes)).Decode(&dto); err != nil {
		return dto, fmt.Errorf("cloud: decoding route: %w", err)
	}
	return dto, nil
}

// FetchEmissions asks GET /v1/emissions for the city-wide per-road emission
// table of one vehicle class ("" = car) at a cruise speed (0 = the server
// default). The server must have emissions enabled.
func (c *Client) FetchEmissions(ctx context.Context, vehicle string, speedKmh float64) (EmissionTableDTO, error) {
	ctx, root := c.startRoot(ctx, "client:emissions", obs.L("vehicle", vehicle))
	defer root.End()
	url := c.base + "/v1/emissions"
	sep := "?"
	if vehicle != "" {
		url += sep + "vehicle=" + vehicle
		sep = "&"
	}
	if speedKmh > 0 {
		url += fmt.Sprintf("%sspeed_kmh=%g", sep, speedKmh)
	}
	var dto EmissionTableDTO
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	})
	if err != nil {
		return dto, fmt.Errorf("cloud: fetching emissions: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return dto, fmt.Errorf("cloud: emissions fetch failed: %s", readError(resp))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBodyBytes)).Decode(&dto); err != nil {
		return dto, fmt.Errorf("cloud: decoding emissions: %w", err)
	}
	return dto, nil
}

// ListRoads fetches the submission summary.
func (c *Client) ListRoads(ctx context.Context) ([]RoadStatus, error) {
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/roads", nil)
	})
	if err != nil {
		return nil, fmt.Errorf("cloud: listing roads: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloud: list failed: %s", readError(resp))
	}
	var out []RoadStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBodyBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("cloud: decoding road list: %w", err)
	}
	return out, nil
}

// ProfileKey derives a content-based idempotency key for one submission:
// sha256 over the road id and the profile's raw float bits. Fleets that
// already track per-device sequence numbers should pass their own cheaper
// keys instead.
func ProfileKey(roadID string, p *fusion.Profile) string {
	h := sha256.New()
	h.Write([]byte(roadID))
	h.Write([]byte{0})
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.SpacingM))
	h.Write(b[:])
	for _, g := range p.GradeRad {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(g))
		h.Write(b[:])
	}
	for _, v := range p.Var {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encodeBatch builds the wire body for the configured codec.
func (c *Client) encodeBatch(items []BatchItem) (body []byte, contentType string, err error) {
	if c.binaryBatch {
		body, err = EncodeBatchBinary(items)
		return body, ContentTypeBinary, err
	}
	dto := batchRequestDTO{Items: make([]batchItemDTO, len(items))}
	for i := range items {
		dto.Items[i] = batchItemDTO{
			RoadID:  items[i].RoadID,
			Key:     items[i].Key,
			Device:  items[i].Device,
			Profile: FromProfile(items[i].Profile),
		}
	}
	body, err = json.Marshal(dto)
	return body, ContentTypeJSON, err
}

// SubmitBatch uploads many submissions in one request and returns per-item
// outcomes aligned with items. Items without a Key get a content-derived
// one, so every retry path is idempotent. Transport errors and 5xx are
// retried by the usual backoff machinery; shed items (server admission
// control, HTTP 429) are re-submitted — just the shed subset — after the
// server's Retry-After hint (or the backoff, whichever is longer) until the
// attempt budget runs out. A nil error means the protocol ran to
// completion; callers must still inspect the per-item statuses ("accepted",
// "duplicate", "rejected", "shed").
func (c *Client) SubmitBatch(ctx context.Context, items []BatchItem) ([]BatchItemResult, error) {
	if len(items) == 0 {
		return nil, errors.New("cloud: empty batch")
	}
	for i := range items {
		if items[i].Profile == nil || items[i].Profile.Len() == 0 {
			return nil, fmt.Errorf("cloud: batch item %d: empty profile", i)
		}
		if items[i].Key == "" {
			items[i].Key = ProfileKey(items[i].RoadID, items[i].Profile)
		}
	}
	// One root span covers the whole batched submission: the first send,
	// every shed-subset retry, and (through the traceparent each attempt
	// carries) the server's handler spans and the coalescer's fold span —
	// one trace id, end to end.
	ctx, root := c.startRoot(ctx, "client:submit_batch",
		obs.L("items", strconv.Itoa(len(items))))
	defer root.End()
	results := make([]BatchItemResult, len(items))
	// pending maps the current wire batch's positions onto results indices.
	pending := make([]int, len(items))
	for i := range pending {
		pending[i] = i
	}
	batch := items
	for attempt := 0; ; attempt++ {
		// The first send rides the root span; each shed-subset retry gets its
		// own attempt span (mirroring do's per-attempt policy), so a trace
		// containing client:attempt spans is precisely one that retried.
		sendCtx := ctx
		var asp *obs.Span
		if attempt > 0 {
			if _, ok := obs.SpanContextFrom(ctx); ok {
				sendCtx, asp = c.tr().StartCtx(ctx, "client:attempt", "cloud",
					obs.L("attempt", strconv.Itoa(attempt)),
					obs.L("items", strconv.Itoa(len(batch))))
			}
		}
		res, retryAfter, err := c.submitBatchOnce(sendCtx, batch)
		asp.End()
		if err != nil {
			root.Annotate("error", err.Error())
			return nil, err
		}
		if len(res) != len(batch) {
			return nil, fmt.Errorf("cloud: batch response has %d results for %d items", len(res), len(batch))
		}
		var shedIdx []int
		for i, r := range res {
			results[pending[i]] = r
			if r.Status == statusShed {
				shedIdx = append(shedIdx, pending[i])
			}
		}
		if len(shedIdx) == 0 || attempt+1 >= c.maxAttempts {
			return results, nil
		}
		root.Annotate("shed_retry", strconv.Itoa(len(shedIdx)))
		wait := c.backoffFor(attempt)
		if retryAfter > wait {
			wait = retryAfter
		}
		select {
		case <-ctx.Done():
			return results, nil
		default:
			obsCliRetries.Inc()
			obsCliBackoff.Observe(wait.Seconds())
			c.sleep(wait)
		}
		batch = make([]BatchItem, len(shedIdx))
		for i, idx := range shedIdx {
			batch[i] = items[idx]
		}
		pending = shedIdx
	}
}

// submitBatchOnce runs one batch request (with transport-level retries) and
// decodes the per-item results plus any Retry-After hint.
func (c *Client) submitBatchOnce(ctx context.Context, batch []BatchItem) ([]BatchItemResult, time.Duration, error) {
	body, contentType, err := c.encodeBatch(batch)
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: encoding batch: %w", err)
	}
	wire, contentEnc, err := c.prepareBody(body)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/submit-batch", bytes.NewReader(wire))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		if contentEnc != "" {
			req.Header.Set("Content-Encoding", contentEnc)
		}
		if c.useGzip {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		return req, nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: submitting batch: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		return nil, 0, fmt.Errorf("cloud: batch submit failed: %s", readError(resp))
	}
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	rb, err := responseBody(resp)
	if err != nil {
		return nil, 0, err
	}
	var dto batchResponseDTO
	if err := json.NewDecoder(io.LimitReader(rb, maxResponseBodyBytes)).Decode(&dto); err != nil {
		return nil, 0, fmt.Errorf("cloud: decoding batch response: %w", err)
	}
	return dto.Results, retryAfter, nil
}

// parseRetryAfter interprets a Retry-After value per RFC 9110 §10.2.3:
// either non-negative delta-seconds or an HTTP-date (IMF-fixdate, obsolete
// RFC 850, or ANSI C asctime — http.ParseTime accepts all three). now
// anchors the date form. An absent, malformed, zero, or already-elapsed
// value yields 0 (no server hint; the client falls back to its own backoff).
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

func readError(resp *http.Response) string {
	var body errorBody
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxErrorBodyBytes))
	if err == nil && json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Sprintf("%s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Sprintf("HTTP %d", resp.StatusCode)
}
