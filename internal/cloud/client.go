package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"roadgrade/internal/fusion"
)

// Client talks to a fusion Server over HTTP.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the service at base (e.g.
// "http://localhost:8080"). hc defaults to http.DefaultClient.
func NewClient(base string, hc *http.Client) (*Client, error) {
	if base == "" {
		return nil, errors.New("cloud: empty base URL")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}, nil
}

// SubmitProfile uploads one vehicle's fused profile for a road.
func (c *Client) SubmitProfile(ctx context.Context, roadID string, p *fusion.Profile) error {
	if p == nil || p.Len() == 0 {
		return errors.New("cloud: empty profile")
	}
	body, err := json.Marshal(FromProfile(p))
	if err != nil {
		return fmt.Errorf("cloud: encoding profile: %w", err)
	}
	url := fmt.Sprintf("%s/v1/roads/%s/profiles", c.base, roadID)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cloud: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cloud: submitting profile: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cloud: submit failed: %s", readError(resp))
	}
	return nil
}

// FetchProfile downloads the fused profile for a road.
func (c *Client) FetchProfile(ctx context.Context, roadID string) (*fusion.Profile, error) {
	url := fmt.Sprintf("%s/v1/roads/%s/profile", c.base, roadID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cloud: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: fetching profile: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloud: fetch failed: %s", readError(resp))
	}
	var dto ProfileDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		return nil, fmt.Errorf("cloud: decoding profile: %w", err)
	}
	return dto.toProfile()
}

// ListRoads fetches the submission summary.
func (c *Client) ListRoads(ctx context.Context) ([]RoadStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/roads", nil)
	if err != nil {
		return nil, fmt.Errorf("cloud: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: listing roads: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloud: list failed: %s", readError(resp))
	}
	var out []RoadStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cloud: decoding road list: %w", err)
	}
	return out, nil
}

func readError(resp *http.Response) string {
	var body errorBody
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err == nil && json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Sprintf("%s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Sprintf("HTTP %d", resp.StatusCode)
}
