package cloud

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"time"

	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// Client-side instrumentation: retry pressure is the early-warning signal of
// a struggling fusion service (or flaky phone uplink).
var (
	obsCliRetries  = obs.Default.Counter("cloud_client_retries_total")
	obsCliFailures = obs.Default.Counter("cloud_client_request_failures_total")
	obsCliBackoff  = obs.Default.Histogram("cloud_client_backoff_sleep_seconds", obs.LatencyBuckets)
)

// Client talks to a fusion Server over HTTP. Requests that fail with a
// transport error or a 5xx are retried with exponential backoff plus jitter;
// submissions carry a content-derived Idempotency-Key so a retry after an
// ambiguous failure (request delivered, response lost) cannot double-count a
// profile.
type Client struct {
	base string
	hc   *http.Client

	maxAttempts   int
	baseBackoff   time.Duration
	maxBackoff    time.Duration
	perTryTimeout time.Duration

	// sleep and jitter are injectable for tests.
	sleep  func(time.Duration)
	jitter func() float64
}

// Option customizes a Client.
type Option func(*Client)

// WithRetry sets the total attempt budget (including the first try) and the
// backoff window. attempts < 1 disables retries.
func WithRetry(attempts int, base, max time.Duration) Option {
	return func(c *Client) {
		c.maxAttempts = attempts
		c.baseBackoff = base
		c.maxBackoff = max
	}
}

// WithPerTryTimeout bounds each individual attempt (0 disables; the caller's
// context still applies to the whole call).
func WithPerTryTimeout(d time.Duration) Option {
	return func(c *Client) { c.perTryTimeout = d }
}

// NewClient returns a client for the service at base (e.g.
// "http://localhost:8080"). hc defaults to http.DefaultClient. The default
// policy is 4 attempts, 100 ms base backoff capped at 2 s, 10 s per attempt.
func NewClient(base string, hc *http.Client, opts ...Option) (*Client, error) {
	if base == "" {
		return nil, errors.New("cloud: empty base URL")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{
		base:          base,
		hc:            hc,
		maxAttempts:   4,
		baseBackoff:   100 * time.Millisecond,
		maxBackoff:    2 * time.Second,
		perTryTimeout: 10 * time.Second,
		sleep:         time.Sleep,
		jitter:        rand.Float64,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.maxAttempts < 1 {
		c.maxAttempts = 1
	}
	return c, nil
}

// NewTransport returns an *http.Transport tuned for sustained traffic
// against a single fusion service, sized for maxConcurrent in-flight
// requests. http.DefaultTransport keeps only 2 idle connections per host
// (DefaultMaxIdleConnsPerHost), so any client running more than 2 concurrent
// requests churns a TCP (and possibly TLS) handshake per request once the
// burst subsides — a load harness with default settings measures connection
// setup, not the server. The knobs, and why each is set (see DESIGN.md §8):
//
//   - MaxIdleConnsPerHost = maxConcurrent: every worker's connection
//     survives between requests, so steady-state traffic is handshake-free.
//   - MaxIdleConns scales with it (the pool is effectively single-host).
//   - IdleConnTimeout 90 s: idle sockets outlive normal think-time gaps but
//     don't pin server FDs forever.
//   - Dialer KeepAlive 30 s: TCP keep-alives detect half-open connections
//     (e.g. a crashed server) instead of stalling a future request.
//   - MaxConnsPerHost is left 0 (unlimited): admission control belongs to
//     the caller's worker count, and a hard cap here would queue requests
//     invisibly and distort latency measurements.
func NewTransport(maxConcurrent int) *http.Transport {
	if maxConcurrent <= 0 {
		maxConcurrent = 64
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          maxConcurrent,
		MaxIdleConnsPerHost:   maxConcurrent,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// maxErrorBodyBytes caps how much of an error response is read; a
// misbehaving server cannot balloon client memory.
const maxErrorBodyBytes = 4096

// maxResponseBodyBytes caps decoded success responses (a full network
// profile is well under 1 MiB).
const maxResponseBodyBytes = 8 << 20

// drainClose discards at most maxErrorBodyBytes of the remaining body and
// closes it, on every path, so the transport can reuse the connection and a
// hostile body cannot grow without bound.
func drainClose(resp *http.Response) {
	if resp == nil || resp.Body == nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBodyBytes))
	_ = resp.Body.Close()
}

// retryable reports whether an attempt outcome warrants another try.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true // transport-level failure
	}
	return resp.StatusCode >= 500
}

// backoffFor computes the pre-attempt delay: exponential in the retry count,
// capped, with ±50% jitter so a fleet of phones retrying a recovering server
// does not synchronize.
func (c *Client) backoffFor(retry int) time.Duration {
	d := c.baseBackoff << uint(retry)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	return time.Duration(float64(d) * (0.5 + c.jitter()))
}

// do runs one request with the retry policy. build must return a fresh
// request each call (bodies are consumed by failed attempts). The returned
// response body is the caller's to close.
func (c *Client) do(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.backoffFor(attempt - 1)
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("cloud: giving up after %d attempts: %w", attempt, ctx.Err())
			default:
				obsCliRetries.Inc()
				obsCliBackoff.Observe(wait.Seconds())
				c.sleep(wait)
			}
		}
		tryCtx := ctx
		var cancel context.CancelFunc = func() {}
		if c.perTryTimeout > 0 {
			tryCtx, cancel = context.WithTimeout(ctx, c.perTryTimeout)
		}
		req, err := build(tryCtx)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("cloud: building request: %w", err)
		}
		resp, err := c.hc.Do(req)
		if !retryable(resp, err) {
			// Success or a non-retryable (4xx) response: hand it to the
			// caller. The cancel must outlive the body read, so tie it to
			// the body's Close.
			resp.Body = &cancelOnClose{rc: resp.Body, cancel: cancel}
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("%s", readError(resp))
			drainClose(resp)
		}
		cancel()
		if ctx.Err() != nil {
			break
		}
	}
	obsCliFailures.Inc()
	return nil, fmt.Errorf("cloud: request failed after %d attempts: %w", c.maxAttempts, lastErr)
}

// cancelOnClose releases an attempt's timeout when the caller finishes
// reading the response.
type cancelOnClose struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Read(p []byte) (int, error) { return c.rc.Read(p) }

func (c *cancelOnClose) Close() error {
	err := c.rc.Close()
	c.cancel()
	return err
}

// SubmitProfile uploads one vehicle's fused profile for a road. Retries are
// idempotent: the request carries a key derived from the road and payload, so
// the server stores at most one copy no matter how many attempts land.
func (c *Client) SubmitProfile(ctx context.Context, roadID string, p *fusion.Profile) error {
	if p == nil || p.Len() == 0 {
		return errors.New("cloud: empty profile")
	}
	body, err := json.Marshal(FromProfile(p))
	if err != nil {
		return fmt.Errorf("cloud: encoding profile: %w", err)
	}
	sum := sha256.Sum256(append([]byte(roadID+"\x00"), body...))
	key := hex.EncodeToString(sum[:])
	url := fmt.Sprintf("%s/v1/roads/%s/profiles", c.base, roadID)
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("cloud: submitting profile: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cloud: submit failed: %s", readError(resp))
	}
	return nil
}

// FetchProfile downloads the fused profile for a road.
func (c *Client) FetchProfile(ctx context.Context, roadID string) (*fusion.Profile, error) {
	url := fmt.Sprintf("%s/v1/roads/%s/profile", c.base, roadID)
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("cloud: fetching profile: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloud: fetch failed: %s", readError(resp))
	}
	var dto ProfileDTO
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBodyBytes)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("cloud: decoding profile: %w", err)
	}
	return dto.toProfile()
}

// ListRoads fetches the submission summary.
func (c *Client) ListRoads(ctx context.Context) ([]RoadStatus, error) {
	resp, err := c.do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/roads", nil)
	})
	if err != nil {
		return nil, fmt.Errorf("cloud: listing roads: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloud: list failed: %s", readError(resp))
	}
	var out []RoadStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBodyBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("cloud: decoding road list: %w", err)
	}
	return out, nil
}

func readError(resp *http.Response) string {
	var body errorBody
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxErrorBodyBytes))
	if err == nil && json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Sprintf("%s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Sprintf("HTTP %d", resp.StatusCode)
}
