package cloud

// The PR's acceptance test: one trace id follows a batched submission end to
// end — client send, 429 shed with Retry-After, shed-subset retry, accept,
// and the coalescer fold on the far side of the async queue (via span link)
// — and the whole story is retrievable from the tail-sampling trace store.

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"roadgrade/internal/obs"
)

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTraceEndToEnd drives a deterministic shed-then-retry through a
// coalescing server with a private tracer and asserts the trace store holds,
// under the client's single trace id: the client root, the retry's attempt
// span (first attempts ride the root and get no span of their own), the 429
// server span, the 200 server span, and the linked coalescer fold span with
// its robust-fusion annotations.
func TestTraceEndToEnd(t *testing.T) {
	tr := &obs.Tracer{}
	srv := NewServerWithShards(1)
	srv.Tracer = tr
	// Sample rate 0 on the probabilistic path: everything kept must be kept
	// for cause (shed annotation, fold keep), not by luck.
	st := srv.EnableTracing(obs.StoreConfig{Rand: func() float64 { return 1 }})
	defer tr.Disable()
	srv.EnableCoalescing(CoalesceConfig{QueueDepth: 1, BatchMax: 1, RetryAfter: 1 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Deterministic congestion: hold the lock of a road whose queued item the
	// worker is folding, so the worker blocks mid-fold; then fill the
	// one-slot queue behind it. The next batch submission must shed.
	rng := rand.New(rand.NewSource(7))
	blockRS := srv.roadFor("r-block")
	blockRS.mu.Lock()
	var blockedDone sync.WaitGroup
	for i := 0; i < 2; i++ {
		blockedDone.Add(1)
		it := &pendingItem{
			roadID: "r-block",
			key:    "blk-" + strconv.Itoa(i),
			p:      realisticProfile(rng, 24),
			out:    &BatchItemResult{},
			done:   &blockedDone,
		}
		if shed := srv.enqueue([]*pendingItem{it}); shed != 0 {
			blockRS.mu.Unlock()
			t.Fatalf("setup item %d shed", i)
		}
		if i == 0 {
			// Wait until the worker pulled it and is blocked on the road
			// lock, so the next item occupies the queue slot.
			waitFor(t, "worker to pick up the blocker", func() bool {
				_, queued, _ := srv.CoalesceStats()
				return queued == 0
			})
		}
	}

	// The client's stubbed sleep is where the retry pause happens: release
	// the road lock so the worker drains the queue, then wait for it, so the
	// retry is guaranteed to be admitted.
	unblocked := false
	cli, err := NewClient(ts.URL, ts.Client(),
		WithTracer(tr),
		WithRetry(3, time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cli.sleep = func(time.Duration) {
		if !unblocked {
			unblocked = true
			blockRS.mu.Unlock()
		}
		waitFor(t, "queue to drain before retry", func() bool {
			_, queued, _ := srv.CoalesceStats()
			return queued == 0
		})
		blockedDone.Wait()
	}

	res, err := cli.SubmitBatch(context.Background(),
		[]BatchItem{{RoadID: "r-sub", Device: "veh-1", Profile: realisticProfile(rng, 24)}})
	if err != nil {
		t.Fatal(err)
	}
	if !unblocked {
		t.Fatal("submission was never shed; congestion setup broken")
	}
	if res[0].Status != statusAccepted {
		t.Fatalf("final status = %+v, want accepted after retry", res[0])
	}

	// The client root finalized the trace on End; the server's 200 handler
	// span may land microseconds later (it ends after the response is
	// written) and merges into the kept trace. Poll for the full span set.
	var rootID obs.TraceID
	waitFor(t, "kept client trace", func() bool {
		for _, s := range st.Summaries() {
			if s.Root == "client:submit_batch" {
				id, err := obs.ParseTraceID(s.TraceID)
				if err != nil {
					t.Fatal(err)
				}
				rootID = id
				return true
			}
		}
		return false
	})

	type want struct {
		name  string
		count int
	}
	waitFor(t, "all spans of the trace", func() bool {
		spans, ok := st.Trace(rootID)
		if !ok {
			return false
		}
		counts := map[string]int{}
		for _, s := range spans {
			counts[s.Name]++
		}
		for _, w := range []want{
			{"client:submit_batch", 1},
			{"client:attempt", 1},
			{"server:submit_batch", 2},
			{"coalesce:fold", 1},
		} {
			if counts[w.name] != w.count {
				return false
			}
		}
		return true
	})

	spans, _ := st.Trace(rootID)
	var sawShed, sawOK, sawFold bool
	for _, s := range spans {
		if s.Trace != rootID && s.Name != "coalesce:fold" {
			t.Errorf("span %s in foreign trace %s", s.Name, s.Trace)
		}
		switch s.Name {
		case "server:submit_batch":
			if v, _ := s.Arg("status"); v == "429" {
				if _, ok := s.Arg("shed"); !ok {
					t.Error("429 span missing shed annotation")
				}
				sawShed = true
			} else if v == "200" {
				sawOK = true
			}
		case "coalesce:fold":
			sawFold = true
			if len(s.Links) == 0 || s.Links[0].Trace != rootID {
				t.Errorf("fold span links = %+v, want link into %s", s.Links, rootID)
			}
			if v, _ := s.Arg("accepted"); v != "1" {
				t.Errorf("fold accepted = %q, want 1", v)
			}
			if _, ok := s.Arg("downweighted_cells"); !ok {
				t.Error("fold span missing robust-fusion annotations")
			}
		}
	}
	if !sawShed || !sawOK || !sawFold {
		t.Fatalf("trace incomplete: shed=%v ok=%v fold=%v", sawShed, sawOK, sawFold)
	}

	// The shed keep-reason wins for the request trace, and the exemplar on
	// the batch route's latency histogram carries a real kept trace id.
	for _, s := range st.Summaries() {
		if s.Root == "client:submit_batch" && s.Reason != "shed" {
			t.Errorf("request trace kept for %q, want shed", s.Reason)
		}
	}
}
