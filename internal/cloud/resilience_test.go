package cloud

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient disables real sleeping so retry tests run instantly.
func fastClient(t *testing.T, base string, hc *http.Client, opts ...Option) *Client {
	t.Helper()
	c, err := NewClient(base, hc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	c.sleep = func(time.Duration) {}
	c.jitter = func() float64 { return 0.5 }
	return c
}

func TestClientRetriesTransient5xx(t *testing.T) {
	inner := NewServer()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := fastClient(t, srv.URL, srv.Client())
	if err := c.SubmitProfile(context.Background(), "r1", profileOf(5, []float64{0.01, 0.02}, 1e-4)); err != nil {
		t.Fatalf("submit with transient 5xx: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two failures + success)", got)
	}
	if roads := inner.Roads(); len(roads) != 1 || roads[0].Submissions != 1 {
		t.Errorf("roads = %+v, want one road with one submission", roads)
	}
}

func TestClientGivesUpAfterBudget(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := fastClient(t, srv.URL, srv.Client(), WithRetry(3, time.Millisecond, time.Millisecond))
	err := c.SubmitProfile(context.Background(), "r1", profileOf(5, []float64{0.01}, 1e-4))
	if err == nil {
		t.Fatal("persistent 5xx should fail")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want exactly the 3-attempt budget", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := fastClient(t, srv.URL, srv.Client())
	if err := c.SubmitProfile(context.Background(), "r1", profileOf(5, []float64{0.01}, 1e-4)); err == nil {
		t.Fatal("4xx should surface as an error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (4xx is not retryable)", got)
	}
}

// TestIdempotentResubmission covers the ambiguous-failure case: the server
// stores the profile but the response is lost, so the client retries. The
// Idempotency-Key must keep the road at one submission.
func TestIdempotentResubmission(t *testing.T) {
	inner := NewServer()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		inner.Handler().ServeHTTP(rec, r)
		// First attempt: request processed, response replaced with a 500.
		if calls.Add(1) == 1 {
			http.Error(w, "response lost", http.StatusBadGateway)
			return
		}
		for k, vs := range rec.Header() {
			w.Header()[k] = vs
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
	}))
	defer srv.Close()

	c := fastClient(t, srv.URL, srv.Client())
	if err := c.SubmitProfile(context.Background(), "r1", profileOf(5, []float64{0.01, 0.02}, 1e-4)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got := calls.Load(); got < 2 {
		t.Fatalf("expected a retry, server saw %d calls", got)
	}
	roads := inner.Roads()
	if len(roads) != 1 || roads[0].Submissions != 1 {
		t.Errorf("roads = %+v, want exactly one stored submission despite retry", roads)
	}
}

func TestSubmitIdempotentRollbackOnError(t *testing.T) {
	s := NewServer()
	p := profileOf(5, []float64{0.01}, 1e-4)
	// Empty road id fails Submit; the key must stay usable afterwards.
	if _, err := s.SubmitIdempotent("", "k1", p); err == nil {
		t.Fatal("empty road id should error")
	}
	dup, err := s.SubmitIdempotent("r1", "k1", p)
	if err != nil || dup {
		t.Fatalf("key must be released after a failed submit: dup=%v err=%v", dup, err)
	}
	dup, err = s.SubmitIdempotent("r1", "k1", p)
	if err != nil || !dup {
		t.Fatalf("second use of an accepted key: dup=%v err=%v, want duplicate", dup, err)
	}
}

func TestServerRejectsOversizedBody(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()

	body := `{"spacing_m":5,"grade_rad":[` + strings.Repeat("0.01,", 1<<20) + `0.01],"var":[1]}`
	resp, err := srv.Client().Post(srv.URL+"/v1/roads/r1/profiles", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
}

func TestServerRejectsCorruptProfiles(t *testing.T) {
	cases := []struct {
		name string
		dto  ProfileDTO
	}{
		{"nan-grade", ProfileDTO{SpacingM: 5, GradeRad: []float64{math.NaN()}, Var: []float64{1e-4}}},
		{"inf-grade", ProfileDTO{SpacingM: 5, GradeRad: []float64{math.Inf(1)}, Var: []float64{1e-4}}},
		{"steep-grade", ProfileDTO{SpacingM: 5, GradeRad: []float64{1.5}, Var: []float64{1e-4}}},
		{"nan-var", ProfileDTO{SpacingM: 5, GradeRad: []float64{0.01}, Var: []float64{math.NaN()}}},
		{"zero-var", ProfileDTO{SpacingM: 5, GradeRad: []float64{0.01}, Var: []float64{0}}},
		{"nan-spacing", ProfileDTO{SpacingM: math.NaN(), GradeRad: []float64{0.01}, Var: []float64{1e-4}}},
		{"len-mismatch", ProfileDTO{SpacingM: 5, GradeRad: []float64{0.01, 0.02}, Var: []float64{1e-4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.dto.toProfile(); err == nil {
				t.Error("corrupt DTO passed validation")
			}
		})
	}
}
