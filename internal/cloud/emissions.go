package cloud

// The city emission map endpoint — the paper's Fig. 10(b) extended to the
// operating-mode pollutants:
//
//	GET /v1/emissions?vehicle=<car|truck|bus>&speed_kmh=<v>
//
// serves a per-road, per-pollutant emission intensity table (grams per km
// per vehicle) computed from the crowd-fused gradient map. Tables are
// generation-cached: an unchanged store serves pre-encoded JSON bytes, and
// a store that moved re-integrates only roads whose fused profile (or
// provenance) actually changed — the same stamp discipline as the routing
// engine's cost tables.
//
// The endpoint is optional: a server without an attached network answers
// 503 (like routing without an engine).

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"roadgrade/internal/emission"
	"roadgrade/internal/obs"
	"roadgrade/internal/road"
)

var (
	obsEmisRequests = obs.Default.Counter("cloud_emission_requests_total")
	obsEmisHits     = obs.Default.Counter("cloud_emission_cache_hits_total")
	obsEmisRoads    = obs.Default.Counter("cloud_emission_roads_recomputed_total")
	obsEmisRebuilds = obs.Default.Counter("cloud_emission_rebuilds_total")
	obsEmisSecs     = obs.Default.Histogram("cloud_emission_rebuild_seconds", obs.LatencyBuckets)
)

// emissionSpeedsKmh are the cruise speeds emission tables are built for;
// requests snap to the nearest. A fixed set bounds the cache at
// |vehicles| × |speeds| entries.
var emissionSpeedsKmh = []float64{30, 40, 50, 60}

// emisEdge is one directed road plus its opposite-direction sibling (the
// sign-flip fallback), resolved once at EnableEmissions.
type emisEdge struct {
	road *road.Road
	rev  *road.Road
}

// emisKey identifies one cached table.
type emisKey struct {
	vehicle emission.VehicleClass
	speed   float64
}

// emisEntry is one generation-stamped emission table: the DTO rows, the
// per-road provenance stamps they were built from, and the pre-encoded
// response body.
type emisEntry struct {
	storeGen uint64
	stamps   []uint64
	dto      EmissionTableDTO
	json     []byte
}

// emissions is the endpoint's state, attached via EnableEmissions.
type emissions struct {
	edges []emisEdge
	mu    sync.Mutex
	cache map[emisKey]*emisEntry
}

// EnableEmissions attaches a road network, turning on GET /v1/emissions.
// Call before Handler()/serving. The table is computed from this server's
// own fused store; roads nobody has driven fall back to the opposite
// direction's profile sign-flipped, then to flat — the same provenance
// ladder the routing engine uses.
func (s *Server) EnableEmissions(net *road.Network) error {
	if net == nil || len(net.Edges) == 0 {
		return errors.New("cloud: emissions need a non-empty network")
	}
	em := &emissions{
		edges: make([]emisEdge, len(net.Edges)),
		cache: make(map[emisKey]*emisEntry),
	}
	byPair := make(map[[2]int]*road.Road, len(net.Edges))
	for _, ed := range net.Edges {
		byPair[[2]int{ed.From, ed.To}] = ed.Road
	}
	for i, ed := range net.Edges {
		em.edges[i] = emisEdge{road: ed.Road, rev: byPair[[2]int{ed.To, ed.From}]}
	}
	s.emis = em
	return nil
}

// EmissionRoadDTO is one road's emission intensities on the wire.
type EmissionRoadDTO struct {
	RoadID       string  `json:"road_id"`
	Class        string  `json:"class"`
	LengthM      float64 `json:"length_m"`
	MeanGradeDeg float64 `json:"mean_grade_deg"`
	// Provenance records where the road's grades came from: "fused" (its
	// own crowd profile), "reverse" (opposite direction, sign-flipped), or
	// "flat" (no data — grade assumed zero).
	Provenance string  `json:"provenance"`
	COGPerKm   float64 `json:"co_g_per_km"`
	NOxGPerKm  float64 `json:"nox_g_per_km"`
	HCGPerKm   float64 `json:"hc_g_per_km"`
	PM25GPerKm float64 `json:"pm25_g_per_km"`
}

// EmissionTableDTO is the city-wide emission table on the wire.
type EmissionTableDTO struct {
	// Generation is the store generation the table reflects.
	Generation uint64            `json:"generation"`
	Vehicle    string            `json:"vehicle"`
	SpeedKmh   float64           `json:"speed_kmh"`
	Roads      []EmissionRoadDTO `json:"roads"`
}

// snapEmissionSpeed snaps a requested cruise speed to the nearest table
// bucket.
func snapEmissionSpeed(kmh float64) (float64, error) {
	if kmh <= 0 || math.IsNaN(kmh) || math.IsInf(kmh, 0) {
		return 0, fmt.Errorf("cloud: invalid speed_kmh %v", kmh)
	}
	best, bestGap := emissionSpeedsKmh[0], math.Inf(1)
	for _, s := range emissionSpeedsKmh {
		if gap := math.Abs(s - kmh); gap < bestGap {
			best, bestGap = s, gap
		}
	}
	return best, nil
}

// emisGrades resolves one road's grade closure, provenance label, and
// provenance-disjoint stamp (3g+1 fused, 3g+2 reverse, 0 flat — the
// CloudSource discipline, so a provenance switch always changes the stamp).
func (s *Server) emisGrades(ed emisEdge) (func(float64) float64, string, uint64) {
	if p, gen, err := s.FusedGeneration(ed.road.ID()); err == nil {
		return p.GradeAt, "fused", 3*gen + 1
	}
	if ed.rev != nil {
		if p, gen, err := s.FusedGeneration(ed.rev.ID()); err == nil {
			length := ed.rev.Length()
			return func(at float64) float64 { return -p.GradeAt(length - at) }, "reverse", 3*gen + 2
		}
	}
	return func(float64) float64 { return 0 }, "flat", 0
}

// EmissionTable returns the current per-road emission table for a vehicle
// class at a cruise speed (snapped to the nearest bucket), rebuilding from
// the fused store only what changed. The experiment suite calls this
// directly; the HTTP handler serves its pre-encoded form.
func (s *Server) EmissionTable(vehicle emission.VehicleClass, speedKmh float64) (EmissionTableDTO, error) {
	dto, _, err := s.emissionEntry(vehicle, speedKmh)
	return dto, err
}

func (s *Server) emissionEntry(vehicle emission.VehicleClass, speedKmh float64) (EmissionTableDTO, []byte, error) {
	em := s.emis
	if em == nil {
		return EmissionTableDTO{}, nil, errors.New("cloud: emissions not enabled")
	}
	speed, err := snapEmissionSpeed(speedKmh)
	if err != nil {
		return EmissionTableDTO{}, nil, err
	}
	params := emission.ForVehicle(vehicle)
	key := emisKey{vehicle: vehicle, speed: speed}
	gen := s.StoreGeneration()

	em.mu.Lock()
	defer em.mu.Unlock()
	prev := em.cache[key]
	if prev != nil && prev.storeGen == gen {
		obsEmisHits.Inc()
		return prev.dto, prev.json, nil
	}
	start := time.Now()
	entry := &emisEntry{
		storeGen: gen,
		stamps:   make([]uint64, len(em.edges)),
		dto: EmissionTableDTO{
			Generation: gen,
			Vehicle:    vehicle.String(),
			SpeedKmh:   speed,
			Roads:      make([]EmissionRoadDTO, len(em.edges)),
		},
	}
	speedMS := speed / 3.6
	recomputed := 0
	for i, ed := range em.edges {
		grade, prov, stamp := s.emisGrades(ed)
		entry.stamps[i] = stamp
		if prev != nil && prev.stamps[i] == stamp {
			entry.dto.Roads[i] = prev.dto.Roads[i]
			continue
		}
		re, err := emission.RoadEmissionsAt(ed.road, speedMS,
			func(_ *road.Road, at float64) float64 { return grade(at) }, params)
		if err != nil {
			return EmissionTableDTO{}, nil, fmt.Errorf("cloud: road %s: %w", ed.road.ID(), err)
		}
		entry.dto.Roads[i] = EmissionRoadDTO{
			RoadID:       re.RoadID,
			Class:        roadClassName(re.Class),
			LengthM:      re.LengthM,
			MeanGradeDeg: re.MeanGradeDeg,
			Provenance:   prov,
			COGPerKm:     re.GramsPerKm[emission.CO],
			NOxGPerKm:    re.GramsPerKm[emission.NOx],
			HCGPerKm:     re.GramsPerKm[emission.HC],
			PM25GPerKm:   re.GramsPerKm[emission.PM25],
		}
		recomputed++
	}
	entry.json, err = json.Marshal(entry.dto)
	if err != nil {
		return EmissionTableDTO{}, nil, err
	}
	em.cache[key] = entry
	obsEmisRebuilds.Inc()
	obsEmisRoads.Add(uint64(recomputed))
	obsEmisSecs.Observe(time.Since(start).Seconds())
	return entry.dto, entry.json, nil
}

// roadClassName labels a road class for the wire (mirrors the fuel map's
// class vocabulary).
func roadClassName(c road.Class) string {
	switch c {
	case road.ClassArterial:
		return "arterial"
	case road.ClassCollector:
		return "collector"
	case road.ClassLocal:
		return "local"
	default:
		return fmt.Sprintf("class_%d", int(c))
	}
}

func (s *Server) handleEmissions(w http.ResponseWriter, r *http.Request) {
	if s.emis == nil {
		httpError(w, http.StatusServiceUnavailable, errors.New("cloud: emissions not enabled"))
		return
	}
	q := r.URL.Query()
	vehicle, err := emission.ParseVehicleClass(q.Get("vehicle"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	speed := 40.0
	if v := q.Get("speed_kmh"); v != "" {
		if speed, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("cloud: invalid speed_kmh %q", v))
			return
		}
	}
	obsEmisRequests.Inc()
	_, body, err := s.emissionEntry(vehicle, speed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}
