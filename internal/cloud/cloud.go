// Package cloud implements the crowd-sourcing stage the paper sketches at
// the end of §III-C3: vehicles upload their per-road gradient profiles to a
// cloud service, which fuses submissions from different vehicles with the
// same convex-combination algorithm and serves the fused network profile to
// transportation services (e.g. route planning).
//
// The service is a plain net/http JSON API:
//
//	POST /v1/roads/{id}/profiles   submit one vehicle's profile for a road
//	GET  /v1/roads/{id}/profile    fetch the fused profile for a road
//	GET  /v1/roads                 list known roads with submission counts
package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"roadgrade/internal/ecoroute"
	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// ProfileDTO is the wire form of a gradient profile.
type ProfileDTO struct {
	SpacingM float64   `json:"spacing_m"`
	GradeRad []float64 `json:"grade_rad"`
	Var      []float64 `json:"var"`
}

// maxProfileCells bounds a submission: at the standard 5 m spacing this is
// 5000 km of road, far beyond any single drive.
const maxProfileCells = 1 << 20

// maxGradeRad bounds a believable submitted grade (≈45°); anything steeper is
// sensor garbage, not road.
const maxGradeRad = 0.8

// toProfile validates and converts the DTO. Validation is strict — a single
// corrupt submission (NaN, absurd length, impossible grade) must be rejected
// at the door rather than poisoning every future fusion of the road.
func (d ProfileDTO) toProfile() (*fusion.Profile, error) {
	if d.SpacingM <= 0 || math.IsNaN(d.SpacingM) || math.IsInf(d.SpacingM, 0) {
		return nil, fmt.Errorf("cloud: invalid spacing %v", d.SpacingM)
	}
	if len(d.GradeRad) == 0 {
		return nil, errors.New("cloud: empty profile")
	}
	if len(d.GradeRad) > maxProfileCells {
		return nil, fmt.Errorf("cloud: profile too long (%d cells, max %d)", len(d.GradeRad), maxProfileCells)
	}
	if len(d.GradeRad) != len(d.Var) {
		return nil, fmt.Errorf("cloud: grade/var length mismatch %d vs %d", len(d.GradeRad), len(d.Var))
	}
	for i, g := range d.GradeRad {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return nil, fmt.Errorf("cloud: non-finite grade at %d", i)
		}
		if math.Abs(g) > maxGradeRad {
			return nil, fmt.Errorf("cloud: implausible grade %v rad at %d", g, i)
		}
	}
	for i, v := range d.Var {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("cloud: invalid variance %v at %d", v, i)
		}
	}
	p := &fusion.Profile{
		SpacingM: d.SpacingM,
		S:        make([]float64, len(d.GradeRad)),
		GradeRad: append([]float64(nil), d.GradeRad...),
		Var:      append([]float64(nil), d.Var...),
	}
	for i := range p.S {
		p.S[i] = float64(i) * d.SpacingM
	}
	return p, nil
}

// FromProfile builds the wire form of a profile.
func FromProfile(p *fusion.Profile) ProfileDTO {
	return ProfileDTO{
		SpacingM: p.SpacingM,
		GradeRad: append([]float64(nil), p.GradeRad...),
		Var:      append([]float64(nil), p.Var...),
	}
}

// RoadStatus summarizes one road's submissions.
type RoadStatus struct {
	RoadID      string `json:"road_id"`
	Submissions int    `json:"submissions"`
}

// Server is the fusion service. Safe for concurrent use.
//
// State is split across a power-of-two number of shards keyed by FNV-1a of
// the road id; each shard has its own RWMutex and idempotency ring, and each
// road keeps an incremental fusion.Accumulator plus generation-stamped fused
// caches. A GET therefore costs O(cells) worst case (first read after a
// submission) and a cache hit otherwise, independent of how many submissions
// the road has — the batch FuseProfiles never runs on the read path.
type Server struct {
	shards    []shard
	shardMask uint32

	// devShards is the per-device trust table (device.go), sharded like
	// the road store.
	devShards []deviceShard

	// coal, when set via EnableCoalescing, runs the batched ingest path
	// through per-shard write coalescing with admission control.
	coal *coalescer

	// totalGen counts accepted submissions across all roads. It is the O(1)
	// staleness signal the eco-routing engine polls: unchanged counter means
	// no road's fused profile can have changed.
	totalGen atomic.Uint64

	// router, when set via EnableRouting, serves GET /v1/route;
	// routeQueries counts answered queries labeled by the engine's search
	// algorithm (alt/cch), so dashboards can attribute latency shifts to an
	// engine switch.
	router       *ecoroute.Engine
	routeQueries *obs.Counter

	// emis, when set via EnableEmissions, serves GET /v1/emissions: the
	// generation-cached city-wide per-road emission table (emissions.go).
	emis *emissions

	// MaxSubmissionsPerRoad bounds memory; once reached, the oldest
	// submission is dropped (the fused result keeps improving from fresh
	// data). Default 64. The value is captured per road at its first
	// submission.
	MaxSubmissionsPerRoad int

	// Policy selects the per-cell fusion estimator (zero value = naive,
	// the plain Eq. (6) inverse-variance average). Like
	// MaxSubmissionsPerRoad it is captured per road at the road's first
	// submission, so set it before serving traffic.
	Policy fusion.FusionPolicy

	// Logger, when set, enables structured access logging (one line per
	// request: method, route, status, bytes, duration, request id,
	// idempotency-dup flag). Nil disables logging; metrics stay on.
	Logger *slog.Logger

	// Tracer, when set, overrides the process-wide obs.DefaultTracer for
	// server/coalescer spans. Set before serving traffic; nil shares the
	// default so one trace file captures the whole process.
	Tracer *obs.Tracer

	// traces, when set via EnableTracing, retains tail-sampled traces and
	// serves GET /v1/debug/traces.
	traces *obs.TraceStore

	// slo, when set via EnableSLO, evaluates per-route burn rates from the
	// middleware's request outcomes.
	slo *obs.SLOEngine
}

// defaultShards balances lock granularity against footprint: 32 shards keep
// the collision probability of two hot roads low while the empty server stays
// a few KB.
const defaultShards = 32

// maxDedupKeys is the total idempotency-key budget, split evenly across
// shards (same overall bound as the previous global FIFO).
const maxDedupKeys = 4096

// NewServer returns an empty fusion server with the default shard count.
func NewServer() *Server { return NewServerWithShards(defaultShards) }

// NewServerWithShards returns an empty fusion server with n shards (rounded
// up to a power of two, clamped to [1, 1024]). More shards reduce lock
// collisions between hot roads at a small fixed memory cost.
func NewServerWithShards(n int) *Server {
	if n < 1 {
		n = 1
	}
	if n > 1024 {
		n = 1024
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Server{
		shards:                make([]shard, pow),
		shardMask:             uint32(pow - 1),
		devShards:             make([]deviceShard, pow),
		MaxSubmissionsPerRoad: 64,
	}
	perShard := maxDedupKeys / pow
	if perShard < 16 {
		perShard = 16
	}
	for i := range s.shards {
		s.shards[i].roads = make(map[string]*roadState)
		s.shards[i].dedup = newKeyRing(perShard)
		s.devShards[i].devices = make(map[string]*deviceEntry)
	}
	return s
}

// Submit stores one anonymous profile for a road. The profile is retained by
// reference and must not be mutated by the caller afterwards.
func (s *Server) Submit(roadID string, p *fusion.Profile) error {
	return s.SubmitDevice(roadID, "", p)
}

// SubmitDevice stores one profile for a road, attributed to a device. A
// non-empty deviceID consults and updates that device's trust state
// (reputation, learned bias) as part of the fold; an empty id submits
// anonymously at full weight.
func (s *Server) SubmitDevice(roadID, deviceID string, p *fusion.Profile) error {
	if roadID == "" {
		return errors.New("cloud: empty road id")
	}
	if p == nil || p.Len() == 0 {
		return errors.New("cloud: empty profile")
	}
	if err := validDeviceID(deviceID); err != nil {
		return err
	}
	var de *deviceEntry
	if deviceID != "" {
		de = s.deviceFor(deviceID)
	}
	rs := s.roadFor(roadID)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, err := rs.addLocked(p, de); err != nil {
		return fmt.Errorf("cloud: road %s: %w", roadID, err)
	}
	rs.gen++ // invalidates the fused snapshot and encoded caches
	s.totalGen.Add(1)
	return nil
}

// StoreGeneration returns the count of accepted submissions — the O(1)
// staleness signal for generation-keyed consumers (ecoroute.CloudStore).
func (s *Server) StoreGeneration() uint64 { return s.totalGen.Load() }

// FusedGeneration returns the road's fused snapshot and the submission
// generation it reflects (ecoroute.CloudStore). Unlike Fused it serves the
// cached snapshot without a defensive copy: snapshots are immutable once
// published, and routing refreshes read every road's profile, so per-call
// copies would dominate the refresh.
func (s *Server) FusedGeneration(roadID string) (*fusion.Profile, uint64, error) {
	rs := s.lookup(roadID)
	if rs == nil {
		return nil, 0, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	rs.mu.RLock()
	if rs.snap != nil && rs.snapGen == rs.gen {
		snap, gen := rs.snap, rs.gen
		rs.mu.RUnlock()
		obsSnapHits.Inc()
		return snap, gen, nil
	}
	rs.mu.RUnlock()
	rs.mu.Lock()
	snap, err := rs.fusedLocked()
	gen := rs.gen
	rs.mu.Unlock()
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	return snap, gen, nil
}

// SubmitIdempotent stores a profile unless the idempotency key has already
// been accepted, in which case it reports duplicate=true and stores nothing —
// a retried upload after a lost response cannot double-count. An empty key
// always stores. Keys are deduplicated within the road's shard (a client's
// key embeds the road id, so its retries always land on the same ring).
func (s *Server) SubmitIdempotent(roadID, key string, p *fusion.Profile) (duplicate bool, err error) {
	return s.SubmitIdempotentDevice(roadID, key, "", p)
}

// SubmitIdempotentDevice is SubmitIdempotent with device attribution
// (SubmitDevice's deviceID semantics).
func (s *Server) SubmitIdempotentDevice(roadID, key, deviceID string, p *fusion.Profile) (duplicate bool, err error) {
	if key == "" {
		return false, s.SubmitDevice(roadID, deviceID, p)
	}
	// Reserve the key atomically so two concurrent retries of the same
	// upload cannot both store.
	sh := s.shardFor(roadID)
	sh.mu.Lock()
	dup := sh.dedup.reserve(key)
	sh.mu.Unlock()
	if dup {
		return true, nil
	}
	if err := s.SubmitDevice(roadID, deviceID, p); err != nil {
		// Release the reservation: a rejected submission must stay
		// retryable after the client fixes it.
		sh.mu.Lock()
		sh.dedup.release(key)
		sh.mu.Unlock()
		return false, err
	}
	return false, nil
}

// Fused returns the fused profile for a road: the cached snapshot when no
// submission landed since the last read, an O(cells) accumulator
// materialization otherwise. The result is the caller's to keep (a copy of
// the cache).
func (s *Server) Fused(roadID string) (*fusion.Profile, error) {
	rs := s.lookup(roadID)
	if rs == nil {
		return nil, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	// Fast path: a current snapshot served under the read lock, so
	// concurrent readers of a quiet road never serialize.
	rs.mu.RLock()
	if rs.snap != nil && rs.snapGen == rs.gen {
		snap := rs.snap
		rs.mu.RUnlock()
		obsSnapHits.Inc()
		return copyProfile(snap), nil
	}
	rs.mu.RUnlock()
	rs.mu.Lock()
	snap, err := rs.fusedLocked()
	rs.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	return copyProfile(snap), nil
}

// fusedJSON returns the pre-encoded wire form of the fused profile; repeated
// GETs of an unchanged road skip both refusion and marshalling. The returned
// bytes are shared and immutable.
func (s *Server) fusedJSON(roadID string) ([]byte, error) {
	rs := s.lookup(roadID)
	if rs == nil {
		return nil, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	rs.mu.RLock()
	if rs.enc != nil && rs.encGen == rs.gen {
		enc := rs.enc
		rs.mu.RUnlock()
		obsEncHits.Inc()
		return enc, nil
	}
	rs.mu.RUnlock()
	rs.mu.Lock()
	enc, err := rs.encodedLocked()
	rs.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	return enc, nil
}

// fusedJSONGzip returns the gzipped wire form of the fused profile, cached
// per road like the plain encoding: a fleet of read-mostly clients that
// accept gzip costs one compression per submission generation, not one per
// GET. The returned bytes are shared and immutable.
func (s *Server) fusedJSONGzip(roadID string) ([]byte, error) {
	rs := s.lookup(roadID)
	if rs == nil {
		return nil, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	rs.mu.RLock()
	if rs.encGz != nil && rs.encGzGen == rs.gen {
		enc := rs.encGz
		rs.mu.RUnlock()
		obsEncGzHits.Inc()
		return enc, nil
	}
	rs.mu.RUnlock()
	rs.mu.Lock()
	enc, err := rs.gzippedLocked()
	rs.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	return enc, nil
}

// copyProfile deep-copies a cached snapshot so callers cannot corrupt it.
func copyProfile(p *fusion.Profile) *fusion.Profile {
	return &fusion.Profile{
		SpacingM: p.SpacingM,
		S:        append([]float64(nil), p.S...),
		GradeRad: append([]float64(nil), p.GradeRad...),
		Var:      append([]float64(nil), p.Var...),
	}
}

// Roads lists known roads sorted by id.
func (s *Server) Roads() []RoadStatus {
	var out []RoadStatus
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, rs := range sh.roads {
			rs.mu.RLock()
			n := rs.acc.Len()
			rs.mu.RUnlock()
			if n == 0 {
				continue
			}
			out = append(out, RoadStatus{RoadID: id, Submissions: n})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RoadID < out[j].RoadID })
	return out
}

// Handler returns the HTTP API: every route is instrumented (request
// counters, latency histograms, access logs when Logger is set) and wrapped
// with X-Request-Id propagation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/roads/{id}/profiles", s.instrument(routeSubmit, s.handleSubmit))
	mux.Handle("POST /v1/submit-batch", s.instrument(routeBatch, s.handleSubmitBatch))
	mux.Handle("GET /v1/roads/{id}/profile", s.instrument(routeFused, s.handleFused))
	mux.Handle("GET /v1/roads", s.instrument(routeList, s.handleList))
	mux.Handle("GET /v1/route", s.instrument(routeRoute, s.handleRoute))
	mux.Handle("GET /v1/emissions", s.instrument(routeEmis, s.handleEmissions))
	mux.Handle("GET /v1/devices/{id}", s.instrument(routeDevice, s.handleDevice))
	mux.Handle("GET /v1/debug/traces", s.instrument(routeTraces, s.handleTraces))
	return RequestID(mux)
}

// maxSubmitBodyBytes caps a submission request body; profiles are ~30 bytes
// per 5 m cell, so 4 MiB covers hundreds of kilometers.
const maxSubmitBodyBytes = 4 << 20

// Submit-path pools: the body buffer and the decode target are recycled
// across requests, so a sustained upload stream re-uses its allocations
// (json.Unmarshal grows slices in place, keeping their capacity for the next
// request) instead of churning the GC under load.
var (
	bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	dtoPool     = sync.Pool{New: func() any { return new(ProfileDTO) }}
)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	buf, err := readBody(w, r, maxSubmitBodyBytes)
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		} else if errors.Is(err, errUnsupportedEncoding) {
			code = http.StatusUnsupportedMediaType
		}
		httpError(w, code, fmt.Errorf("decoding profile: %w", err))
		return
	}
	defer bodyBufPool.Put(buf)
	dto := dtoPool.Get().(*ProfileDTO)
	// Reset before decoding: json.Unmarshal leaves absent fields untouched,
	// and a stale value from the previous request must read as absent.
	dto.SpacingM = 0
	dto.GradeRad = dto.GradeRad[:0]
	dto.Var = dto.Var[:0]
	defer dtoPool.Put(dto)
	if err := json.Unmarshal(buf.Bytes(), dto); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding profile: %w", err))
		return
	}
	p, err := dto.toProfile() // copies the slices; the DTO can be pooled
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	device := r.Header.Get("X-Device-Id")
	if err := validDeviceID(device); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dup, err := s.SubmitIdempotentDevice(id, r.Header.Get("Idempotency-Key"), device, p)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	if dup {
		markDuplicate(w)
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleFused(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.Header().Set("Vary", "Accept-Encoding")
	if acceptsGzip(r) {
		enc, err := s.fusedJSONGzip(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Encoding", "gzip")
		_, _ = w.Write(enc)
		return
	}
	enc, err := s.fusedJSON(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(enc)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Roads())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
