// Package cloud implements the crowd-sourcing stage the paper sketches at
// the end of §III-C3: vehicles upload their per-road gradient profiles to a
// cloud service, which fuses submissions from different vehicles with the
// same convex-combination algorithm and serves the fused network profile to
// transportation services (e.g. route planning).
//
// The service is a plain net/http JSON API:
//
//	POST /v1/roads/{id}/profiles   submit one vehicle's profile for a road
//	GET  /v1/roads/{id}/profile    fetch the fused profile for a road
//	GET  /v1/roads                 list known roads with submission counts
package cloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"sync"

	"roadgrade/internal/fusion"
)

// ProfileDTO is the wire form of a gradient profile.
type ProfileDTO struct {
	SpacingM float64   `json:"spacing_m"`
	GradeRad []float64 `json:"grade_rad"`
	Var      []float64 `json:"var"`
}

// maxProfileCells bounds a submission: at the standard 5 m spacing this is
// 5000 km of road, far beyond any single drive.
const maxProfileCells = 1 << 20

// maxGradeRad bounds a believable submitted grade (≈45°); anything steeper is
// sensor garbage, not road.
const maxGradeRad = 0.8

// toProfile validates and converts the DTO. Validation is strict — a single
// corrupt submission (NaN, absurd length, impossible grade) must be rejected
// at the door rather than poisoning every future fusion of the road.
func (d ProfileDTO) toProfile() (*fusion.Profile, error) {
	if d.SpacingM <= 0 || math.IsNaN(d.SpacingM) || math.IsInf(d.SpacingM, 0) {
		return nil, fmt.Errorf("cloud: invalid spacing %v", d.SpacingM)
	}
	if len(d.GradeRad) == 0 {
		return nil, errors.New("cloud: empty profile")
	}
	if len(d.GradeRad) > maxProfileCells {
		return nil, fmt.Errorf("cloud: profile too long (%d cells, max %d)", len(d.GradeRad), maxProfileCells)
	}
	if len(d.GradeRad) != len(d.Var) {
		return nil, fmt.Errorf("cloud: grade/var length mismatch %d vs %d", len(d.GradeRad), len(d.Var))
	}
	for i, g := range d.GradeRad {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return nil, fmt.Errorf("cloud: non-finite grade at %d", i)
		}
		if math.Abs(g) > maxGradeRad {
			return nil, fmt.Errorf("cloud: implausible grade %v rad at %d", g, i)
		}
	}
	for i, v := range d.Var {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("cloud: invalid variance %v at %d", v, i)
		}
	}
	p := &fusion.Profile{
		SpacingM: d.SpacingM,
		S:        make([]float64, len(d.GradeRad)),
		GradeRad: append([]float64(nil), d.GradeRad...),
		Var:      append([]float64(nil), d.Var...),
	}
	for i := range p.S {
		p.S[i] = float64(i) * d.SpacingM
	}
	return p, nil
}

// FromProfile builds the wire form of a profile.
func FromProfile(p *fusion.Profile) ProfileDTO {
	return ProfileDTO{
		SpacingM: p.SpacingM,
		GradeRad: append([]float64(nil), p.GradeRad...),
		Var:      append([]float64(nil), p.Var...),
	}
}

// RoadStatus summarizes one road's submissions.
type RoadStatus struct {
	RoadID      string `json:"road_id"`
	Submissions int    `json:"submissions"`
}

// Server is the fusion service. Safe for concurrent use.
type Server struct {
	mu    sync.Mutex
	roads map[string][]*fusion.Profile

	// Idempotency dedup: keys of accepted submissions, bounded FIFO.
	seenKeys map[string]struct{}
	keyQueue []string
	maxKeys  int

	// MaxSubmissionsPerRoad bounds memory; once reached, the oldest
	// submission is dropped (the fused result keeps improving from fresh
	// data). Default 64.
	MaxSubmissionsPerRoad int

	// Logger, when set, enables structured access logging (one line per
	// request: method, route, status, bytes, duration, request id,
	// idempotency-dup flag). Nil disables logging; metrics stay on.
	Logger *slog.Logger
}

// NewServer returns an empty fusion server.
func NewServer() *Server {
	return &Server{
		roads:                 make(map[string][]*fusion.Profile),
		seenKeys:              make(map[string]struct{}),
		maxKeys:               4096,
		MaxSubmissionsPerRoad: 64,
	}
}

// Submit stores one vehicle's profile for a road.
func (s *Server) Submit(roadID string, p *fusion.Profile) error {
	if roadID == "" {
		return errors.New("cloud: empty road id")
	}
	if p == nil || p.Len() == 0 {
		return errors.New("cloud: empty profile")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.roads[roadID]
	if len(list) > 0 && list[0].SpacingM != p.SpacingM {
		return fmt.Errorf("cloud: road %s expects spacing %v, got %v", roadID, list[0].SpacingM, p.SpacingM)
	}
	list = append(list, p)
	if max := s.MaxSubmissionsPerRoad; max > 0 && len(list) > max {
		list = list[len(list)-max:]
	}
	s.roads[roadID] = list
	return nil
}

// SubmitIdempotent stores a profile unless the idempotency key has already
// been accepted, in which case it reports duplicate=true and stores nothing —
// a retried upload after a lost response cannot double-count. An empty key
// always stores.
func (s *Server) SubmitIdempotent(roadID, key string, p *fusion.Profile) (duplicate bool, err error) {
	if key != "" {
		// Reserve the key atomically so two concurrent retries of the same
		// upload cannot both store.
		s.mu.Lock()
		if _, ok := s.seenKeys[key]; ok {
			s.mu.Unlock()
			return true, nil
		}
		s.seenKeys[key] = struct{}{}
		s.keyQueue = append(s.keyQueue, key)
		if len(s.keyQueue) > s.maxKeys {
			delete(s.seenKeys, s.keyQueue[0])
			s.keyQueue = s.keyQueue[1:]
		}
		s.mu.Unlock()
	}
	if err := s.Submit(roadID, p); err != nil {
		if key != "" {
			// Release the reservation: a rejected submission must stay
			// retryable after the client fixes it.
			s.mu.Lock()
			delete(s.seenKeys, key)
			if n := len(s.keyQueue); n > 0 && s.keyQueue[n-1] == key {
				s.keyQueue = s.keyQueue[:n-1]
			}
			s.mu.Unlock()
		}
		return false, err
	}
	return false, nil
}

// Fused returns the fused profile for a road.
func (s *Server) Fused(roadID string) (*fusion.Profile, error) {
	s.mu.Lock()
	list := append([]*fusion.Profile(nil), s.roads[roadID]...)
	s.mu.Unlock()
	if len(list) == 0 {
		return nil, fmt.Errorf("cloud: no submissions for road %s", roadID)
	}
	return fusion.FuseProfiles(list)
}

// Roads lists known roads sorted by id.
func (s *Server) Roads() []RoadStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RoadStatus, 0, len(s.roads))
	for id, list := range s.roads {
		out = append(out, RoadStatus{RoadID: id, Submissions: len(list)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RoadID < out[j].RoadID })
	return out
}

// Handler returns the HTTP API: every route is instrumented (request
// counters, latency histograms, access logs when Logger is set) and wrapped
// with X-Request-Id propagation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/roads/{id}/profiles", s.instrument(routeSubmit, s.handleSubmit))
	mux.Handle("GET /v1/roads/{id}/profile", s.instrument(routeFused, s.handleFused))
	mux.Handle("GET /v1/roads", s.instrument(routeList, s.handleList))
	return RequestID(mux)
}

// maxSubmitBodyBytes caps a submission request body; profiles are ~30 bytes
// per 5 m cell, so 4 MiB covers hundreds of kilometers.
const maxSubmitBodyBytes = 4 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBodyBytes)
	var dto ProfileDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Errorf("decoding profile: %w", err))
		return
	}
	p, err := dto.toProfile()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dup, err := s.SubmitIdempotent(id, r.Header.Get("Idempotency-Key"), p)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	if dup {
		markDuplicate(w)
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleFused(w http.ResponseWriter, r *http.Request) {
	fused, err := s.Fused(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, FromProfile(fused))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Roads())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
