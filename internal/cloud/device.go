package cloud

// The per-device trust table. Submissions may carry a device id (the
// X-Device-Id header on single submits, the device field of batch items);
// the server keeps one fusion.DeviceState per id — reputation, learned bias,
// down-weight counters — consulted and updated on every fold of that
// device's submissions and served on GET /v1/devices/{id}.
//
// The table is sharded like the road store (FNV-1a of the device id over the
// same power-of-two shard count) so device lookups never contend on a global
// lock. Each entry has a tiny mutex of its own: folds hold road lock →
// device lock (device code never takes a road lock, so the hierarchy is
// acyclic), which serializes a device's state updates across roads while two
// different devices folding into the same road only serialize on the road.
//
// Cross-road determinism note: within one road, submissions fold in FIFO
// order (direct path and coalescer alike), so a road's fused map is a pure
// function of its submission sequence and of each submission's device-state
// snapshot at fold time. A device interleaving submissions across roads on
// different shards may have its reputation updates ordered differently
// between runs; the bit-reproducibility guarantee is therefore per road for
// a fixed per-road sequence of (profile, device-state) pairs — the property
// the coalescer tests pin down.

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"roadgrade/internal/fusion"
	"roadgrade/internal/obs"
)

// Device-table instrumentation: the reputation histogram is observed once
// per device-attributed fold, so it is the submission-weighted reputation
// distribution of the fleet; the created counter sizes the table.
var (
	obsDeviceReputation = obs.Default.Histogram("cloud_device_reputation",
		[]float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.85, 0.95, 1.0})
	obsDevicesCreated = obs.Default.Counter("cloud_device_states_created_total")
)

// maxDeviceIDLen bounds a device id so a hostile submitter cannot make the
// table allocate unbounded strings.
const maxDeviceIDLen = 128

// deviceShard is 1/N of the device-state table.
type deviceShard struct {
	mu      sync.RWMutex
	devices map[string]*deviceEntry
}

// deviceEntry is one device's trust state plus its lock (see the package
// comment above for the lock order).
type deviceEntry struct {
	mu sync.Mutex
	st fusion.DeviceState
}

// validDeviceID reports whether a submitted device id is acceptable.
func validDeviceID(id string) error {
	if len(id) > maxDeviceIDLen {
		return fmt.Errorf("cloud: device id too long (%d bytes, max %d)", len(id), maxDeviceIDLen)
	}
	return nil
}

// deviceFor returns the device's entry, creating it (fully trusted) on first
// sight. id must be non-empty.
func (s *Server) deviceFor(id string) *deviceEntry {
	sh := &s.devShards[fnv1a(id)&s.shardMask]
	sh.mu.RLock()
	de := sh.devices[id]
	sh.mu.RUnlock()
	if de != nil {
		return de
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if de = sh.devices[id]; de == nil {
		de = &deviceEntry{st: *fusion.NewDeviceState()}
		sh.devices[id] = de
		obsDevicesCreated.Inc()
	}
	return de
}

// DeviceState returns a snapshot of a device's trust state, and whether the
// device has ever been seen.
func (s *Server) DeviceState(id string) (fusion.DeviceState, bool) {
	if id == "" {
		return fusion.DeviceState{}, false
	}
	sh := &s.devShards[fnv1a(id)&s.shardMask]
	sh.mu.RLock()
	de := sh.devices[id]
	sh.mu.RUnlock()
	if de == nil {
		return fusion.DeviceState{}, false
	}
	de.mu.Lock()
	st := de.st
	de.mu.Unlock()
	return st, true
}

// ReputationQuantiles returns the p10/p50/p90 of the fleet's current device
// reputations — the /healthz summary of how much of the fleet the robust
// fusion trusts. An empty table reads as (1, 1, 1): unseen devices start
// fully trusted.
func (s *Server) ReputationQuantiles() (p10, p50, p90 float64) {
	var reps []float64
	for i := range s.devShards {
		sh := &s.devShards[i]
		sh.mu.RLock()
		for _, de := range sh.devices {
			de.mu.Lock()
			reps = append(reps, de.st.Reputation)
			de.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	if len(reps) == 0 {
		return 1, 1, 1
	}
	sort.Float64s(reps)
	q := func(f float64) float64 {
		return reps[int(f*float64(len(reps)-1)+0.5)]
	}
	return q(0.10), q(0.50), q(0.90)
}

// Devices returns the number of known devices.
func (s *Server) Devices() int {
	n := 0
	for i := range s.devShards {
		sh := &s.devShards[i]
		sh.mu.RLock()
		n += len(sh.devices)
		sh.mu.RUnlock()
	}
	return n
}

// DeviceStateDTO is the wire form of GET /v1/devices/{id}.
type DeviceStateDTO struct {
	DeviceID      string  `json:"device_id"`
	Reputation    float64 `json:"reputation"`
	BiasRad       float64 `json:"bias_rad"`
	Submissions   uint64  `json:"submissions"`
	Downweighted  uint64  `json:"downweighted"`
	LastAgreement float64 `json:"last_agreement"`
}

// handleDevice serves one device's trust state.
func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := validDeviceID(id); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := s.DeviceState(id)
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("cloud: unknown device"))
		return
	}
	writeJSON(w, DeviceStateDTO{
		DeviceID:      id,
		Reputation:    st.Reputation,
		BiasRad:       st.BiasRad,
		Submissions:   st.Submissions,
		Downweighted:  st.Downweighted,
		LastAgreement: st.LastAgreement,
	})
}
