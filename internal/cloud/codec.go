package cloud

// The compact binary batch codec: the wire format a phone fleet uses to
// upload many profile submissions in one request. JSON spends ~45 bytes per
// cell printing two full-precision floats; roads are spatially smooth, so a
// fixed-point delta encoding spends 1-2 bytes per cell on a quiet road and
// single digits even when sensor noise dominates. The format is stdlib-only
// (encoding/binary varints), versioned by a leading magic, and deliberately
// simple enough to decode with one linear pass and zero reflection.
//
// Layout (all integers are unsigned varints unless noted):
//
//	magic   3 bytes  "RGB"           (RoadGrade Batch)
//	version 1 byte   0x02            (0x01 accepted on decode)
//	nItems  uvarint  1..maxBatchItems
//	item × nItems:
//	  roadID   uvarint length (1..maxRoadIDLen) + bytes
//	  key      uvarint length (0..maxKeyLen) + bytes   (0 = no idempotency key)
//	  device   uvarint length (0..maxDeviceIDLen) + bytes   (version >= 2;
//	           0 = anonymous submission; absent in version 1)
//	  spacing  8 bytes little-endian IEEE-754 float64 bits
//	  nCells   uvarint  1..maxProfileCells
//	  grades   nCells zigzag varints: deltas of qᵢ = round(gradeᵢ/1e-9),
//	           q₋₁ = 0 (grades quantized to nano-radians)
//	  vars     nCells zigzag varints: deltas of vᵢ = round(varᵢ/1e-12),
//	           v₋₁ = 0 (variances quantized to 1e-12 rad², floor 1e-12)
//
// Quantization is part of the contract: a binary submission's grades are
// defined on the 1e-9 rad lattice (≈6e-8 degrees — five orders of magnitude
// below sensor noise) and variances on the 1e-12 rad² lattice, clamped to
// [1e-12, 1e6]. Decode(Encode(x)) is idempotent: re-encoding a decoded batch
// reproduces the same bytes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/fusion"
)

// Content types negotiated on POST /v1/submit-batch.
const (
	// ContentTypeJSON is the JSON batch form ({"items":[...]}).
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the compact binary batch codec defined above.
	ContentTypeBinary = "application/x-roadgrade-batch"
)

// BatchItem is one profile submission inside a batch: the road it belongs
// to, an optional idempotency key, an optional submitting device id (empty =
// anonymous), and the profile itself.
type BatchItem struct {
	RoadID  string
	Key     string
	Device  string
	Profile *fusion.Profile
}

// Binary codec limits. Road ids and keys are bounded so a hostile batch
// cannot make the decoder allocate unbounded strings; item count bounds the
// per-request fold work.
const (
	binaryMagic = "RGB"
	// binaryVersion is what the encoder writes; binaryVersionV1 (the PR 6
	// format, identical except for the absent device field) is still
	// accepted on decode so a deployed fleet upgrades without a flag day.
	binaryVersion   = 0x02
	binaryVersionV1 = 0x01

	maxBatchItems = 4096
	maxRoadIDLen  = 256
	maxKeyLen     = 128

	// gradeQuantum is the grade lattice: 1 nano-radian.
	gradeQuantum = 1e-9
	// varQuantum is the variance lattice: 1e-12 rad².
	varQuantum = 1e-12
	// maxEncodableVar bounds a variance the binary codec accepts; anything
	// larger carries no fusion weight worth preserving (1e6 rad² is ~10⁹×
	// a plausible sensor variance) and would overflow the fixed-point range.
	maxEncodableVar = 1e6
)

// maxGradeQ is the largest legal quantized grade (±maxGradeRad on the
// lattice).
const maxGradeQ = int64(maxGradeRad / gradeQuantum)

// maxVarQ is the largest legal quantized variance.
const maxVarQ = int64(maxEncodableVar / varQuantum)

// zigzag maps a signed delta onto the unsigned varint domain, small
// magnitudes first.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeBatchBinary serializes items with the binary codec. Every profile is
// validated with the same rules the JSON door applies (finite spacing > 0,
// 1..maxProfileCells cells, |grade| <= maxGradeRad, finite var > 0) plus the
// codec's variance ceiling, so an encoded batch always decodes cleanly.
func EncodeBatchBinary(items []BatchItem) ([]byte, error) {
	if len(items) == 0 {
		return nil, errors.New("cloud: empty batch")
	}
	if len(items) > maxBatchItems {
		return nil, fmt.Errorf("cloud: batch too large (%d items, max %d)", len(items), maxBatchItems)
	}
	// Size guess: header + per item (ids + spacing + ~5 bytes/cell for the
	// two streams together on realistic data).
	guess := 8
	for i := range items {
		if items[i].Profile != nil {
			guess += len(items[i].RoadID) + len(items[i].Key) + 16 + 10*items[i].Profile.Len()
		}
	}
	buf := make([]byte, 0, guess)
	buf = append(buf, binaryMagic...)
	buf = append(buf, binaryVersion)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for i := range items {
		var err error
		buf, err = appendItem(buf, &items[i])
		if err != nil {
			return nil, fmt.Errorf("cloud: batch item %d: %w", i, err)
		}
	}
	return buf, nil
}

// appendItem encodes one validated submission.
func appendItem(buf []byte, it *BatchItem) ([]byte, error) {
	if it.RoadID == "" || len(it.RoadID) > maxRoadIDLen {
		return nil, fmt.Errorf("invalid road id length %d", len(it.RoadID))
	}
	if len(it.Key) > maxKeyLen {
		return nil, fmt.Errorf("idempotency key too long (%d bytes, max %d)", len(it.Key), maxKeyLen)
	}
	if err := validDeviceID(it.Device); err != nil {
		return nil, err
	}
	p := it.Profile
	if p == nil || p.Len() == 0 {
		return nil, errors.New("empty profile")
	}
	if p.Len() > maxProfileCells {
		return nil, fmt.Errorf("profile too long (%d cells, max %d)", p.Len(), maxProfileCells)
	}
	if p.SpacingM <= 0 || math.IsNaN(p.SpacingM) || math.IsInf(p.SpacingM, 0) {
		return nil, fmt.Errorf("invalid spacing %v", p.SpacingM)
	}
	if len(p.GradeRad) != len(p.Var) {
		return nil, fmt.Errorf("grade/var length mismatch %d vs %d", len(p.GradeRad), len(p.Var))
	}
	buf = binary.AppendUvarint(buf, uint64(len(it.RoadID)))
	buf = append(buf, it.RoadID...)
	buf = binary.AppendUvarint(buf, uint64(len(it.Key)))
	buf = append(buf, it.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(it.Device)))
	buf = append(buf, it.Device...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.SpacingM))
	buf = binary.AppendUvarint(buf, uint64(p.Len()))
	prev := int64(0)
	for c, g := range p.GradeRad {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return nil, fmt.Errorf("non-finite grade at %d", c)
		}
		q := int64(math.Round(g / gradeQuantum))
		if q > maxGradeQ || q < -maxGradeQ {
			return nil, fmt.Errorf("implausible grade %v rad at %d", g, c)
		}
		buf = binary.AppendUvarint(buf, zigzag(q-prev))
		prev = q
	}
	prev = 0
	for c, v := range p.Var {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("invalid variance %v at %d", v, c)
		}
		if v > maxEncodableVar {
			return nil, fmt.Errorf("variance %v at %d exceeds codec ceiling %v", v, c, float64(maxEncodableVar))
		}
		q := int64(math.Round(v / varQuantum))
		if q < 1 {
			q = 1 // floor: a decoded variance must stay > 0
		}
		buf = binary.AppendUvarint(buf, zigzag(q-prev))
		prev = q
	}
	return buf, nil
}

// binaryReader walks an encoded batch with bounds checking.
type binaryReader struct {
	buf []byte
	off int
}

func (r *binaryReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errors.New("cloud: truncated or malformed varint")
	}
	r.off += n
	return v, nil
}

func (r *binaryReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, errors.New("cloud: truncated batch")
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// DecodeBatchBinary parses a binary batch into validated submissions. The
// returned profiles are freshly allocated and valid by construction (the
// quantized ranges enforce the same grade/variance bounds the JSON door
// checks), so the ingest path can fold them without re-validating.
func DecodeBatchBinary(data []byte) ([]BatchItem, error) {
	r := &binaryReader{buf: data}
	head, err := r.bytes(4)
	if err != nil {
		return nil, errors.New("cloud: batch too short")
	}
	if string(head[:3]) != binaryMagic {
		return nil, errors.New("cloud: bad batch magic")
	}
	version := head[3]
	if version != binaryVersion && version != binaryVersionV1 {
		return nil, fmt.Errorf("cloud: unsupported batch version %d", version)
	}
	nItems, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nItems == 0 || nItems > maxBatchItems {
		return nil, fmt.Errorf("cloud: batch item count %d out of range [1, %d]", nItems, maxBatchItems)
	}
	items := make([]BatchItem, 0, nItems)
	for i := uint64(0); i < nItems; i++ {
		it, err := r.readItem(version)
		if err != nil {
			return nil, fmt.Errorf("cloud: batch item %d: %w", i, err)
		}
		items = append(items, it)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("cloud: %d trailing bytes after batch", len(data)-r.off)
	}
	return items, nil
}

// readItem decodes one submission of the given format version.
func (r *binaryReader) readItem(version byte) (BatchItem, error) {
	var it BatchItem
	idLen, err := r.uvarint()
	if err != nil {
		return it, err
	}
	if idLen == 0 || idLen > maxRoadIDLen {
		return it, fmt.Errorf("road id length %d out of range", idLen)
	}
	id, err := r.bytes(int(idLen))
	if err != nil {
		return it, err
	}
	it.RoadID = string(id)
	keyLen, err := r.uvarint()
	if err != nil {
		return it, err
	}
	if keyLen > maxKeyLen {
		return it, fmt.Errorf("key length %d out of range", keyLen)
	}
	key, err := r.bytes(int(keyLen))
	if err != nil {
		return it, err
	}
	it.Key = string(key)
	if version >= 2 {
		devLen, err := r.uvarint()
		if err != nil {
			return it, err
		}
		if devLen > maxDeviceIDLen {
			return it, fmt.Errorf("device id length %d out of range", devLen)
		}
		dev, err := r.bytes(int(devLen))
		if err != nil {
			return it, err
		}
		it.Device = string(dev)
	}
	sp, err := r.bytes(8)
	if err != nil {
		return it, err
	}
	spacing := math.Float64frombits(binary.LittleEndian.Uint64(sp))
	if spacing <= 0 || math.IsNaN(spacing) || math.IsInf(spacing, 0) {
		return it, fmt.Errorf("invalid spacing %v", spacing)
	}
	nCells, err := r.uvarint()
	if err != nil {
		return it, err
	}
	if nCells == 0 || nCells > maxProfileCells {
		return it, fmt.Errorf("cell count %d out of range [1, %d]", nCells, maxProfileCells)
	}
	// Cheap plausibility check before allocating: each cell needs at least
	// one grade byte and one variance byte.
	if int(nCells)*2 > len(r.buf)-r.off {
		return it, errors.New("cell count exceeds remaining payload")
	}
	p := &fusion.Profile{
		SpacingM: spacing,
		S:        make([]float64, nCells),
		GradeRad: make([]float64, nCells),
		Var:      make([]float64, nCells),
	}
	prev := int64(0)
	for c := range p.GradeRad {
		d, err := r.uvarint()
		if err != nil {
			return it, err
		}
		prev += unzigzag(d)
		if prev > maxGradeQ || prev < -maxGradeQ {
			return it, fmt.Errorf("implausible grade at cell %d", c)
		}
		p.GradeRad[c] = float64(prev) * gradeQuantum
	}
	prev = 0
	for c := range p.Var {
		d, err := r.uvarint()
		if err != nil {
			return it, err
		}
		prev += unzigzag(d)
		if prev < 1 || prev > maxVarQ {
			return it, fmt.Errorf("variance out of range at cell %d", c)
		}
		p.Var[c] = float64(prev) * varQuantum
	}
	for c := range p.S {
		p.S[c] = float64(c) * spacing
	}
	it.Profile = p
	return it, nil
}
