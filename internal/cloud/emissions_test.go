package cloud

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"roadgrade/internal/emission"
	"roadgrade/internal/road"
)

// getEmissions fires one GET /v1/emissions and returns the status and body.
func getEmissions(t testing.TB, h http.Handler, query string) (int, EmissionTableDTO) {
	t.Helper()
	url := "/v1/emissions"
	if query != "" {
		url += "?" + query
	}
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var dto EmissionTableDTO
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &dto); err != nil {
			t.Fatalf("decoding emission table: %v", err)
		}
	}
	return rec.Code, dto
}

// TestEmissionsEndpoint drives the city emission map through its lifecycle:
// an unmapped network serves a flat-provenance table, an unchanged store is a
// cache hit (no roads re-integrated), and one road's submission recomputes
// exactly that road and its reverse-direction sibling while every other row
// is carried forward bit-identically.
func TestEmissionsEndpoint(t *testing.T) {
	net, err := road.GenerateNetwork(61, road.NetworkConfig{TargetStreetKM: 3})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	s := NewServer()
	if err := s.EnableEmissions(net); err != nil {
		t.Fatalf("enable: %v", err)
	}
	h := s.Handler()

	hits0, rebuilds0, roads0 := obsEmisHits.Value(), obsEmisRebuilds.Value(), obsEmisRoads.Value()

	code, flat := getEmissions(t, h, "")
	if code != http.StatusOK {
		t.Fatalf("emissions: HTTP %d", code)
	}
	if flat.Vehicle != "car" || flat.SpeedKmh != 40 {
		t.Fatalf("defaults: vehicle %q speed %v, want car 40", flat.Vehicle, flat.SpeedKmh)
	}
	if len(flat.Roads) != len(net.Edges) {
		t.Fatalf("%d rows for %d edges", len(flat.Roads), len(net.Edges))
	}
	for _, row := range flat.Roads {
		if row.Provenance != "flat" {
			t.Fatalf("road %s provenance %q before any submission", row.RoadID, row.Provenance)
		}
		if row.COGPerKm <= 0 || row.NOxGPerKm <= 0 || row.HCGPerKm <= 0 || row.PM25GPerKm <= 0 {
			t.Fatalf("road %s has a non-positive intensity: %+v", row.RoadID, row)
		}
		if row.LengthM <= 0 || row.Class == "" {
			t.Fatalf("degenerate row: %+v", row)
		}
	}
	if d := obsEmisRoads.Value() - roads0; d != uint64(len(net.Edges)) {
		t.Fatalf("first build recomputed %d roads, want %d", d, len(net.Edges))
	}

	// Same store generation again: cache hit, nothing recomputed.
	code, again := getEmissions(t, h, "vehicle=car&speed_kmh=40")
	if code != http.StatusOK {
		t.Fatalf("emissions (warm): HTTP %d", code)
	}
	if again.Generation != flat.Generation {
		t.Fatalf("generation moved %d→%d with no submissions", flat.Generation, again.Generation)
	}
	if obsEmisHits.Value()-hits0 != 1 {
		t.Errorf("warm fetch was not a cache hit (hits delta %d)", obsEmisHits.Value()-hits0)
	}
	if obsEmisRebuilds.Value()-rebuilds0 != 1 {
		t.Errorf("rebuilds delta %d after a warm fetch, want 1", obsEmisRebuilds.Value()-rebuilds0)
	}

	// Submit ground truth for one road; exactly that road (fused) and its
	// opposite-direction sibling (reverse) change.
	target := net.Edges[0]
	var revID string
	for _, ed := range net.Edges {
		if ed.From == target.To && ed.To == target.From {
			revID = ed.Road.ID()
		}
	}
	p, err := truthDTO(target.Road).toProfile()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(target.Road.ID(), p); err != nil {
		t.Fatalf("submit: %v", err)
	}
	roads1 := obsEmisRoads.Value()
	code, mapped := getEmissions(t, h, "")
	if code != http.StatusOK {
		t.Fatalf("emissions after submit: HTTP %d", code)
	}
	if mapped.Generation <= flat.Generation {
		t.Fatalf("generation did not advance: %d → %d", flat.Generation, mapped.Generation)
	}
	changed := uint64(1)
	for i, row := range mapped.Roads {
		switch row.RoadID {
		case target.Road.ID():
			if row.Provenance != "fused" {
				t.Errorf("submitted road provenance %q, want fused", row.Provenance)
			}
		case revID:
			if row.Provenance != "reverse" {
				t.Errorf("sibling road provenance %q, want reverse", row.Provenance)
			}
			changed++
		default:
			if row != flat.Roads[i] {
				t.Errorf("untouched road %s changed: %+v → %+v", row.RoadID, flat.Roads[i], row)
			}
		}
	}
	if d := obsEmisRoads.Value() - roads1; d != changed {
		t.Errorf("incremental rebuild recomputed %d roads, want %d", d, changed)
	}

	// Speeds snap to the nearest table bucket; off-bucket speeds don't grow
	// the cache.
	code, snapped := getEmissions(t, h, "speed_kmh=42")
	if code != http.StatusOK || snapped.SpeedKmh != 40 {
		t.Fatalf("speed 42 snapped to %v (HTTP %d), want 40", snapped.SpeedKmh, code)
	}

	// Heavier classes emit more per km everywhere.
	code, truck := getEmissions(t, h, "vehicle=truck")
	if code != http.StatusOK {
		t.Fatalf("truck table: HTTP %d", code)
	}
	for i, row := range truck.Roads {
		if row.NOxGPerKm <= mapped.Roads[i].NOxGPerKm {
			t.Fatalf("road %s: truck NOx %.3f not above car %.3f",
				row.RoadID, row.NOxGPerKm, mapped.Roads[i].NOxGPerKm)
		}
	}

	// Error mapping.
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"vehicle=hovercraft", http.StatusBadRequest},
		{"speed_kmh=banana", http.StatusBadRequest},
		{"speed_kmh=-5", http.StatusBadRequest},
		{"speed_kmh=0", http.StatusBadRequest},
	} {
		if code, _ := getEmissions(t, h, tc.query); code != tc.code {
			t.Errorf("GET /v1/emissions?%s: HTTP %d, want %d", tc.query, code, tc.code)
		}
	}

	// Emissions not enabled → 503; a nil/empty network can't be enabled.
	bare := NewServer()
	if code, _ := getEmissions(t, bare.Handler(), ""); code != http.StatusServiceUnavailable {
		t.Errorf("emissions disabled: HTTP %d, want 503", code)
	}
	if err := bare.EnableEmissions(nil); err == nil {
		t.Error("EnableEmissions(nil) did not fail")
	}
}

// TestEmissionsClientRoundTrip checks Client.FetchEmissions against the live
// handler and the server-side EmissionTable view of the same store.
func TestEmissionsClientRoundTrip(t *testing.T) {
	net, err := road.GenerateNetwork(62, road.NetworkConfig{TargetStreetKM: 2})
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	s := NewServer()
	if err := s.EnableEmissions(net); err != nil {
		t.Fatalf("enable: %v", err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatalf("client: %v", err)
	}

	got, err := c.FetchEmissions(context.Background(), "bus", 50)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	want, err := s.EmissionTable(emission.Bus, 50)
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	if got.Vehicle != "bus" || got.SpeedKmh != 50 || len(got.Roads) != len(want.Roads) {
		t.Fatalf("fetched %s@%v with %d roads, want %s@%v with %d",
			got.Vehicle, got.SpeedKmh, len(got.Roads), want.Vehicle, want.SpeedKmh, len(want.Roads))
	}
	for i := range got.Roads {
		if got.Roads[i] != want.Roads[i] {
			t.Fatalf("road %d differs over the wire: %+v != %+v", i, got.Roads[i], want.Roads[i])
		}
	}

	if _, err := c.FetchEmissions(context.Background(), "hovercraft", 40); err == nil {
		t.Error("bad vehicle did not error through the client")
	}
}

// benchEmissionServer stands up a server with emissions enabled over the
// 164.8 km network, fused store primed with one truth submission per road.
func benchEmissionServer(b *testing.B) (*Server, *road.Network) {
	b.Helper()
	net, err := road.Charlottesville()
	if err != nil {
		b.Fatalf("network: %v", err)
	}
	s := NewServer()
	if err := s.EnableEmissions(net); err != nil {
		b.Fatalf("enable: %v", err)
	}
	for _, ed := range net.Edges {
		p, err := truthDTO(ed.Road).toProfile()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Submit(ed.Road.ID(), p); err != nil {
			b.Fatal(err)
		}
	}
	return s, net
}

// BenchmarkEmissionTableBuild pays the full city-table integration on every
// iteration: a fresh server has no cached entry, so all roads integrate all
// four pollutants over their 5 m cells. scripts/bench.sh snapshots this to
// BENCH_PR10.json; bench_check.sh gates the build cost.
func BenchmarkEmissionTableBuild(b *testing.B) {
	s, _ := benchEmissionServer(b)
	em := s.emis
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Dropping the cache forces the prev==nil full-build path without
		// re-priming the fused store.
		em.mu.Lock()
		em.cache = make(map[emisKey]*emisEntry)
		em.mu.Unlock()
		if _, err := s.EmissionTable(emission.Car, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmissionTableIncremental measures the steady-state serving cost
// after one road's re-fusion: the store generation moves, the stamp scan
// carries every unchanged row forward, and exactly one road re-integrates.
func BenchmarkEmissionTableIncremental(b *testing.B) {
	s, net := benchEmissionServer(b)
	if _, err := s.EmissionTable(emission.Car, 40); err != nil {
		b.Fatal(err)
	}
	p, err := truthDTO(net.Edges[0].Road).toProfile()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Submit(net.Edges[0].Road.ID(), p); err != nil {
			b.Fatal(err)
		}
		if _, err := s.EmissionTable(emission.Car, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmissionTableWarm is the cache-hit path GET /v1/emissions serves
// from: unchanged store generation, pre-encoded JSON bytes.
func BenchmarkEmissionTableWarm(b *testing.B) {
	s, _ := benchEmissionServer(b)
	if _, err := s.EmissionTable(emission.Car, 40); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.emissionEntry(emission.Car, 40); err != nil {
			b.Fatal(err)
		}
	}
}
