package cloud

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"roadgrade/internal/obs"
)

// The traced-ingest benchmark family (BenchmarkTracedIngest*) backs the PR 8
// overhead claim, snapshotted by scripts/bench.sh into BENCH_PR8.json: the
// same mixed ingest path (batched binary submits through the coalescer plus a
// fused read per flush) measured with tracing off, head-sampled at 1%, and
// fully sampled with the tail-store attached. One op is one submission, so
// the ns/op columns compare directly and
// (Full - Off) / Off is the end-to-end observability tax — the acceptance bar
// is <= 5%.

// benchTracedIngest runs the mixed path under one tracing configuration.
// sample < 0 leaves the tracer disabled (the baseline); otherwise tracing is
// enabled at that head-sampling rate with a TraceStore sink and the default
// SLO engine, i.e. the full observability plane.
func benchTracedIngest(b *testing.B, sample float64) {
	tr := &obs.Tracer{}
	srv := NewServerWithShards(32)
	srv.Tracer = tr
	srv.MaxSubmissionsPerRoad = ingestWindow
	srv.EnableCoalescing(CoalesceConfig{QueueDepth: 4096, BatchMax: 512})
	defer srv.Close()
	if sample >= 0 {
		srv.EnableTracing(obs.StoreConfig{})
		tr.SetSampleRate(sample)
		if err := srv.EnableSLO(DefaultObjectives()); err != nil {
			b.Fatal(err)
		}
	}
	defer tr.Disable()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cli, err := NewClient(ts.URL, ts.Client(), WithTracer(tr), WithBinaryBatch(true))
	if err != nil {
		b.Fatal(err)
	}
	pool := ingestProfiles(rand.New(rand.NewSource(1)))
	ctx := context.Background()
	items := make([]BatchItem, 0, ingestBatchSize)
	flushed := false
	flush := func(i int) {
		if _, err := cli.SubmitBatch(ctx, items); err != nil {
			b.Fatal(err)
		}
		items = items[:0]
		flushed = true
		// The batch handler acks after the fold completes, so the fetch
		// reads a road that exists; one read per flush keeps the mix fixed
		// across b.N.
		if _, err := cli.FetchProfile(ctx, roadName(i%7)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items = append(items, BatchItem{
			RoadID:  roadName(i % 7),
			Key:     fmt.Sprintf("t-%d", i),
			Device:  fmt.Sprintf("dev-%d", i%32),
			Profile: pool[i%ingestPoolSize],
		})
		if len(items) == ingestBatchSize {
			flush(i)
		}
	}
	if len(items) > 0 || !flushed {
		// Tail flush fetches road 0: always submitted (item 0 maps to it),
		// unlike roadName(b.N%7) on a short first benchmark round.
		flush(0)
	}
}

func BenchmarkTracedIngestOff(b *testing.B)     { benchTracedIngest(b, -1) }
func BenchmarkTracedIngestSampled(b *testing.B) { benchTracedIngest(b, 0.01) }
func BenchmarkTracedIngestFull(b *testing.B)    { benchTracedIngest(b, 1) }
