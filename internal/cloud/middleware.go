package cloud

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"roadgrade/internal/obs"
)

// Server-side instrumentation: request counts by route and status, latency
// histograms by route, and idempotency dedup hits. Latency histograms are
// pre-created per route; the per-status request counters are resolved through
// the registry at request time (status is only known after serving).
var (
	obsSrvLatency = map[string]*obs.Histogram{
		routeSubmit: obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeSubmit)),
		routeBatch:  obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeBatch)),
		routeFused:  obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeFused)),
		routeList:   obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeList)),
		routeRoute:  obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeRoute)),
		routeEmis:   obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeEmis)),
		routeDevice: obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeDevice)),
		routeTraces: obs.Default.Histogram("cloud_server_request_seconds", obs.LatencyBuckets, obs.L("route", routeTraces)),
	}
	obsSrvDupHits = obs.Default.Counter("cloud_idempotency_dup_total")
)

// Route names used as the route label and in access logs.
const (
	routeSubmit = "submit"
	routeBatch  = "submit_batch"
	routeFused  = "fused"
	routeList   = "list"
	routeRoute  = "route"
	routeEmis   = "emissions"
	routeDevice = "device"
	routeTraces = "debug_traces"
)

// requestIDKey carries the request id through the context.
type requestIDKey struct{}

// RequestIDHeader is the propagation header: an inbound id is reused, an
// absent one is generated, and either way the id is echoed in the response
// and attached to the request context for access logs.
const RequestIDHeader = "X-Request-Id"

// RequestID wraps next with X-Request-Id propagation.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > 128 {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// requestIDFrom returns the propagated request id, if any.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures what the handler wrote so the middleware can meter
// and log it.
type statusRecorder struct {
	http.ResponseWriter
	status    int
	bytes     int
	duplicate bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += n
	return n, err
}

// markDuplicate flags the in-flight response as an idempotency-dedup hit so
// the access log and metrics record it. w must be the handler's own writer
// (the instrument wrapper's recorder).
func markDuplicate(w http.ResponseWriter) {
	if sr, ok := w.(*statusRecorder); ok {
		sr.duplicate = true
	}
}

// instrument wraps one route's handler with metrics, tracing, and (when
// s.Logger is set) structured access logging: method, route, status, bytes,
// duration, request id, and whether the request was an idempotent replay.
//
// Tracing: an inbound traceparent header makes the server span a child of
// the client's span (the same trace id follows the request through retries
// and into coalescer folds via span links); without one, a new trace starts
// subject to the tracer's head-sampling rate. The span context rides the
// request context so handlers — the batch door in particular — can thread it
// across the coalescer's queue boundary.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := s.tracer()
		var sp *obs.Span
		if tr.Enabled() {
			var ctx context.Context
			if sc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
				ctx, sp = tr.StartChildCtx(r.Context(), sc, "server:"+route, "cloud",
					obs.L("method", r.Method))
			} else if tr.ShouldSample() {
				ctx, sp = tr.StartCtx(r.Context(), "server:"+route, "cloud",
					obs.L("method", r.Method))
			}
			if sp != nil {
				r = r.WithContext(ctx)
			}
		}
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		dur := time.Since(start)
		if sp != nil {
			sp.Annotate("status", strconv.Itoa(rec.status))
			switch {
			case rec.status >= 500:
				sp.Annotate("error", http.StatusText(rec.status))
			case rec.status == http.StatusTooManyRequests:
				sp.Annotate("shed", "1")
			}
			if rec.duplicate {
				sp.Annotate("idempotency_dup", "1")
			}
			sp.End()
		}
		obs.Default.Counter("cloud_server_requests_total",
			obs.L("route", route), obs.L("status", strconv.Itoa(rec.status))).Inc()
		if hist, ok := obsSrvLatency[route]; ok {
			if sp != nil {
				// Exemplar: outliers in the latency histogram carry the
				// trace id of a request that actually landed in that bucket.
				hist.ObserveTrace(dur.Seconds(), sp.Context().Trace)
			} else {
				hist.Observe(dur.Seconds())
			}
		}
		if rec.duplicate {
			obsSrvDupHits.Inc()
		}
		if e := s.slo; e != nil {
			e.Record(route, rec.status >= 500, dur.Seconds())
		}
		if s.Logger != nil {
			s.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int("bytes", rec.bytes),
				slog.Duration("duration", dur),
				slog.String("request_id", requestIDFrom(r.Context())),
				slog.Bool("idempotency_dup", rec.duplicate),
			)
		}
	})
}
