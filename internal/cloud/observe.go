package cloud

// The server's observability plane: tail-sampled trace retention behind
// GET /v1/debug/traces, and the SLO engine that turns per-route request
// outcomes into burn rates for /healthz. Both are opt-in — a server without
// EnableTracing/EnableSLO pays only the disabled-tracer atomic load per
// request — and both hang off the same *obs.Tracer the rest of the process
// uses, so one gradebench -tracefile run sees pipeline, client, server, and
// coalescer spans together.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"roadgrade/internal/obs"
)

// tracer returns the server's span tracer: the explicitly configured one, or
// the process-wide default so server spans land in the same ring as pipeline
// and client spans.
func (s *Server) tracer() *obs.Tracer {
	if s.Tracer != nil {
		return s.Tracer
	}
	return obs.DefaultTracer
}

// EnableTracing turns on distributed tracing: the server's tracer is enabled,
// a tail-sampling TraceStore subscribes to its completed spans, and
// GET /v1/debug/traces starts serving the kept traces. Returns the store so
// callers (tests, the CLI) can inspect it directly. Calling again is a no-op
// returning the existing store.
func (s *Server) EnableTracing(cfg obs.StoreConfig) *obs.TraceStore {
	if s.traces != nil {
		return s.traces
	}
	st := obs.NewTraceStore(cfg)
	s.traces = st
	tr := s.tracer()
	tr.SetSink(st)
	tr.Enable()
	return st
}

// TraceStore returns the trace store, or nil when tracing is not enabled.
func (s *Server) TraceStore() *obs.TraceStore { return s.traces }

// EnableSLO installs the burn-rate engine over the given objectives; request
// outcomes feed it from the instrument middleware and /healthz surfaces its
// status. Burn-rate gauges are registered on the default registry. Calling
// again replaces the objectives.
func (s *Server) EnableSLO(objectives []obs.Objective) error {
	e, err := obs.NewSLOEngine(obs.SLOConfig{Objectives: objectives})
	if err != nil {
		return err
	}
	e.RegisterGauges(obs.Default)
	s.slo = e
	return nil
}

// SLOReport returns the current SLO evaluation and whether an engine is
// installed. The engine snapshots its windows on demand via Tick, so callers
// need no background goroutine for a fresh report.
func (s *Server) SLOReport() (obs.SLOReport, bool) {
	if s.slo == nil {
		return obs.SLOReport{}, false
	}
	s.slo.Tick()
	return s.slo.Report(), true
}

// handleTraces serves the debug trace plane (see obs.TraceStore.Handler).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusNotFound, errors.New("cloud: tracing not enabled"))
		return
	}
	s.traces.Handler().ServeHTTP(w, r)
}

// DefaultObjectives are the service-level objectives the paper's serving
// story implies: batched ingest must stay available (phones buffer only so
// much), and fused reads must stay fast enough for interactive route planning.
func DefaultObjectives() []obs.Objective {
	return []obs.Objective{
		{Name: "submit-batch-availability", Route: routeBatch, Kind: obs.SLOAvailability, Target: 0.999},
		{Name: "fused-read-p99", Route: routeFused, Kind: obs.SLOLatency, Target: 0.99, ThresholdS: 0.001},
	}
}

// ParseObjectives parses a comma-separated objective spec for CLI flags:
//
//	name:route:avail:<target>
//	name:route:latency:<target>:<threshold_seconds>
//
// e.g. "ingest:submit_batch:avail:0.999,read:fused:latency:0.99:0.001".
// The literal spec "default" yields DefaultObjectives.
func ParseObjectives(spec string) ([]obs.Objective, error) {
	if spec == "default" {
		return DefaultObjectives(), nil
	}
	var out []obs.Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) < 4 {
			return nil, fmt.Errorf("cloud: objective %q: want name:route:kind:target[:threshold]", part)
		}
		o := obs.Objective{Name: f[0], Route: f[1]}
		target, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("cloud: objective %q: bad target: %w", part, err)
		}
		o.Target = target
		switch f[2] {
		case "avail", "availability":
			if len(f) != 4 {
				return nil, fmt.Errorf("cloud: objective %q: availability takes no threshold", part)
			}
			o.Kind = obs.SLOAvailability
		case "latency":
			if len(f) != 5 {
				return nil, fmt.Errorf("cloud: objective %q: latency needs a threshold", part)
			}
			thr, err := strconv.ParseFloat(f[4], 64)
			if err != nil {
				return nil, fmt.Errorf("cloud: objective %q: bad threshold: %w", part, err)
			}
			o.Kind, o.ThresholdS = obs.SLOLatency, thr
		default:
			return nil, fmt.Errorf("cloud: objective %q: unknown kind %q", part, f[2])
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, errors.New("cloud: empty objective spec")
	}
	return out, nil
}
