package cloud

// The eco-routing endpoint: the cloud service doesn't just serve fused
// profiles back to vehicles, it answers the question the fused map exists
// for — "which way burns the least fuel?"
//
//	GET /v1/route?from=<node>&to=<node>&objective=<distance|time|fuel|co2>&speed_kmh=<v>
//
// Routing is optional: a server without an attached engine answers 503.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"roadgrade/internal/ecoroute"
	"roadgrade/internal/emission"
	"roadgrade/internal/obs"
)

// EnableRouting attaches an eco-routing engine, turning on GET /v1/route.
// Call before Handler()/serving; the engine is typically built over this
// server's own fused store (ecoroute.CloudSource{Store: s}), so routes follow
// the crowd-sourced gradient map as submissions refine it. Served queries are
// counted per search engine (alt/cch) so a config switch shows up in the
// metrics, not just in latency.
func (s *Server) EnableRouting(eng *ecoroute.Engine) {
	s.router = eng
	s.routeQueries = obs.Default.Counter("cloud_route_queries_total",
		obs.L("engine", eng.Algorithm()))
}

// RouteDTO is the wire form of an answered routing query.
type RouteDTO struct {
	From      int      `json:"from"`
	To        int      `json:"to"`
	Objective string   `json:"objective"`
	SpeedKmh  float64  `json:"speed_kmh"`
	RoadIDs   []string `json:"road_ids"`
	Nodes     []int    `json:"nodes"`
	Cost      float64  `json:"cost"`
	LengthM   float64  `json:"length_m"`
	TimeS     float64  `json:"time_s"`
	FuelGal   float64  `json:"fuel_gal"`
	CO2G      float64  `json:"co2_g"`
	// Operating-mode pollutant grams, filled for pollutant objectives
	// (nox/co/hc/pm); zero otherwise.
	COG   float64 `json:"co_g,omitempty"`
	NOxG  float64 `json:"nox_g,omitempty"`
	HCG   float64 `json:"hc_g,omitempty"`
	PM25G float64 `json:"pm25_g,omitempty"`
}

// fromPlan builds the wire form of a plan.
func fromPlan(p ecoroute.Plan) RouteDTO {
	return RouteDTO{
		From:      p.From,
		To:        p.To,
		Objective: p.Objective.String(),
		SpeedKmh:  p.SpeedKmh,
		RoadIDs:   p.RoadIDs,
		Nodes:     p.Nodes,
		Cost:      p.Cost,
		LengthM:   p.LengthM,
		TimeS:     p.TimeS,
		FuelGal:   p.FuelGal,
		CO2G:      p.CO2G,
		COG:       p.EmisG[emission.CO],
		NOxG:      p.EmisG[emission.NOx],
		HCG:       p.EmisG[emission.HC],
		PM25G:     p.EmisG[emission.PM25],
	}
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if s.router == nil {
		httpError(w, http.StatusServiceUnavailable, errors.New("cloud: routing not enabled"))
		return
	}
	q := r.URL.Query()
	from, err := strconv.Atoi(q.Get("from"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cloud: invalid from node %q", q.Get("from")))
		return
	}
	to, err := strconv.Atoi(q.Get("to"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cloud: invalid to node %q", q.Get("to")))
		return
	}
	obj := ecoroute.Fuel
	if v := q.Get("objective"); v != "" {
		if obj, err = ecoroute.ParseObjective(v); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	speed := 40.0
	if v := q.Get("speed_kmh"); v != "" {
		if speed, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("cloud: invalid speed_kmh %q", v))
			return
		}
	}
	s.routeQueries.Inc()
	plan, err := s.router.Route(obj, speed, from, to)
	switch {
	case errors.Is(err, ecoroute.ErrUnknownNode), errors.Is(err, ecoroute.ErrNoPath):
		httpError(w, http.StatusNotFound, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, fromPlan(plan))
}
