package cloud

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"roadgrade/internal/fusion"
)

// realisticProfile builds a paper-shaped submission: a smooth terrain
// signal plus per-cell sensor noise, with the constant per-segment variance
// a device derives from its noise model.
func realisticProfile(rng *rand.Rand, cells int) *fusion.Profile {
	p := &fusion.Profile{
		SpacingM: 5,
		S:        make([]float64, cells),
		GradeRad: make([]float64, cells),
		Var:      make([]float64, cells),
	}
	noise := 1e-3 * (0.5 + rng.Float64())
	for i := 0; i < cells; i++ {
		p.S[i] = float64(i) * 5
		p.GradeRad[i] = 0.03*math.Sin(float64(i)/40) + noise*rng.NormFloat64()
		p.Var[i] = noise * noise
	}
	return p
}

func testBatch(rng *rand.Rand, n, cells int) []BatchItem {
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{
			RoadID:  roadName(i % 7),
			Key:     "",
			Profile: realisticProfile(rng, cells),
		}
	}
	items[0].Key = "key-zero"
	return items
}

func roadName(i int) string { return "road-" + string(rune('a'+i)) }

// TestBinaryCodecRoundTrip checks decode(encode(x)) preserves everything up
// to the documented quantization, and that re-encoding a decoded batch is
// byte-identical (the lattice is a fixed point).
func TestBinaryCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := testBatch(rng, 12, 300)
	enc, err := EncodeBatchBinary(items)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBatchBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(dec), len(items))
	}
	for i := range items {
		if dec[i].RoadID != items[i].RoadID || dec[i].Key != items[i].Key {
			t.Fatalf("item %d identity mismatch: %+v", i, dec[i])
		}
		in, out := items[i].Profile, dec[i].Profile
		if out.SpacingM != in.SpacingM || out.Len() != in.Len() {
			t.Fatalf("item %d shape mismatch", i)
		}
		for c := range in.GradeRad {
			if d := math.Abs(out.GradeRad[c] - in.GradeRad[c]); d > gradeQuantum {
				t.Fatalf("item %d cell %d grade off lattice by %g", i, c, d)
			}
			if d := math.Abs(out.Var[c] - in.Var[c]); d > varQuantum {
				t.Fatalf("item %d cell %d var off lattice by %g", i, c, d)
			}
			if out.Var[c] <= 0 {
				t.Fatalf("item %d cell %d decoded var %v not positive", i, c, out.Var[c])
			}
		}
	}
	// Idempotence: the decoded batch re-encodes to the same bytes.
	enc2, err := EncodeBatchBinary(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("re-encoding a decoded batch changed the bytes")
	}
}

// TestBinaryCodecSizeRatio pins the headline claim: the binary codec is at
// least 5x smaller than the JSON batch form on realistic submissions.
func TestBinaryCodecSizeRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := testBatch(rng, 32, 200)
	bin, err := EncodeBatchBinary(items)
	if err != nil {
		t.Fatal(err)
	}
	dto := batchRequestDTO{Items: make([]batchItemDTO, len(items))}
	for i := range items {
		dto.Items[i] = batchItemDTO{RoadID: items[i].RoadID, Key: items[i].Key, Profile: FromProfile(items[i].Profile)}
	}
	js, err := json.Marshal(dto)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(js)) / float64(len(bin))
	t.Logf("json %d B, binary %d B, ratio %.2fx (%.1f B/cell binary)",
		len(js), len(bin), ratio, float64(len(bin))/float64(32*200))
	if ratio < 5 {
		t.Errorf("binary codec only %.2fx smaller than JSON, want >= 5x", ratio)
	}
}

// TestBinaryCodecRejects covers the decode guard rails.
func TestBinaryCodecRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	good, err := EncodeBatchBinary(testBatch(rng, 2, 50))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short":         good[:3],
		"bad magic":     append([]byte("XXX\x01"), good[4:]...),
		"bad version":   append([]byte("RGB\x09"), good[4:]...),
		"truncated":     good[:len(good)-3],
		"trailing junk": append(append([]byte{}, good...), 0xff),
	}
	for name, data := range cases {
		if _, err := DecodeBatchBinary(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// TestBinaryCodecEncodeValidation checks the encoder applies the same door
// rules as the JSON path plus the codec's variance ceiling.
func TestBinaryCodecEncodeValidation(t *testing.T) {
	mk := func(mut func(*fusion.Profile)) []BatchItem {
		p := realisticProfile(rand.New(rand.NewSource(1)), 10)
		mut(p)
		return []BatchItem{{RoadID: "r", Profile: p}}
	}
	cases := map[string][]BatchItem{
		"empty batch":   {},
		"nil profile":   {{RoadID: "r"}},
		"empty road id": {{RoadID: "", Profile: realisticProfile(rand.New(rand.NewSource(1)), 4)}},
		"long key":      {{RoadID: "r", Key: strings.Repeat("k", maxKeyLen+1), Profile: realisticProfile(rand.New(rand.NewSource(1)), 4)}},
		"nan grade":     mk(func(p *fusion.Profile) { p.GradeRad[3] = math.NaN() }),
		"steep grade":   mk(func(p *fusion.Profile) { p.GradeRad[3] = 1.5 }),
		"zero variance": mk(func(p *fusion.Profile) { p.Var[3] = 0 }),
		"huge variance": mk(func(p *fusion.Profile) { p.Var[3] = maxEncodableVar * 2 }),
		"inf spacing":   mk(func(p *fusion.Profile) { p.SpacingM = math.Inf(1) }),
		"length mismatch": mk(func(p *fusion.Profile) {
			p.Var = p.Var[:len(p.Var)-1]
		}),
	}
	for name, items := range cases {
		if _, err := EncodeBatchBinary(items); err == nil {
			t.Errorf("%s: encoder accepted invalid input", name)
		}
	}
}

// TestZigzag pins the varint mapping.
func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}
