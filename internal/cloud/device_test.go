package cloud

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadgrade/internal/fusion"
)

// newHTTPServer wraps a Server in an httptest server torn down with the test.
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestDeviceStateEndpoint drives attributed submissions through the single
// submit door (X-Device-Id) and checks GET /v1/devices/{id}: JSON shape, 404
// for unknown devices, 400 for oversized ids.
func TestDeviceStateEndpoint(t *testing.T) {
	srv := NewServerWithShards(4)
	srv.Policy = fusion.FusionPolicy{Policy: fusion.PolicyHuber}
	ts := newHTTPServer(t, srv)

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(FromProfile(realisticProfile(rng, 40)))
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/roads/r1/profiles", strings.NewReader(string(body)))
		req.Header.Set("X-Device-Id", "ph-42")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/devices/ph-42")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("device GET: HTTP %d", resp.StatusCode)
	}
	var dto DeviceStateDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	if dto.DeviceID != "ph-42" {
		t.Errorf("device_id = %q", dto.DeviceID)
	}
	if dto.Submissions != 5 {
		t.Errorf("submissions = %d, want 5", dto.Submissions)
	}
	if dto.Reputation <= 0 || dto.Reputation > 1 {
		t.Errorf("reputation = %v out of (0, 1]", dto.Reputation)
	}

	if resp, err := ts.Client().Get(ts.URL + "/v1/devices/never-seen"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown device: HTTP %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := ts.Client().Get(ts.URL + "/v1/devices/" + strings.Repeat("x", maxDeviceIDLen+1)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("oversized device id: HTTP %d, want 400", resp.StatusCode)
		}
	}
}

// TestDeviceReputationDropsUnderAdversary: a constant-bias device folding
// into a huber-policy server against honest traffic ends with low reputation
// (or a learned bias), while honest devices stay trusted — the cloud-layer
// mirror of the fusion-layer reputation tests.
func TestDeviceReputationDropsUnderAdversary(t *testing.T) {
	srv := NewServerWithShards(4)
	srv.Policy = fusion.FusionPolicy{Policy: fusion.PolicyHuber}

	rng := rand.New(rand.NewSource(9))
	honest := []string{"h-0", "h-1", "h-2"}
	base := realisticProfile(rng, 60)
	submitLike := func(dev string, bias float64) {
		p := &fusion.Profile{
			SpacingM: base.SpacingM,
			S:        append([]float64(nil), base.S...),
			GradeRad: make([]float64, base.Len()),
			Var:      make([]float64, base.Len()),
		}
		for c := range p.GradeRad {
			p.GradeRad[c] = base.GradeRad[c] + bias + 0.003*rng.NormFloat64()
			p.Var[c] = 9e-6
		}
		if err := srv.SubmitDevice("road", dev, p); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 12; round++ {
		for _, h := range honest {
			submitLike(h, 0)
		}
		if round >= 2 {
			submitLike("evil", 0.09)
		}
	}
	evil, ok := srv.DeviceState("evil")
	if !ok {
		t.Fatal("adversary device unknown")
	}
	// The trust layer neutralizes a constant-bias device one of two ways:
	// reputation collapse, or learning (and subtracting) the bias. Either
	// leaves the device flagged as downweighted at least once.
	if evil.Reputation > 0.6 && math.Abs(evil.BiasRad) < 0.03 {
		t.Errorf("adversary neither demoted nor bias-corrected: rep=%.3f bias=%.4f", evil.Reputation, evil.BiasRad)
	}
	if evil.Downweighted == 0 {
		t.Error("adversary never downweighted")
	}
	for _, h := range honest {
		st, ok := srv.DeviceState(h)
		if !ok {
			t.Fatalf("honest device %s unknown", h)
		}
		if st.Reputation < 0.7 {
			t.Errorf("honest device %s demoted to %.3f", h, st.Reputation)
		}
	}
	if srv.Devices() != 4 {
		t.Errorf("Devices() = %d, want 4", srv.Devices())
	}
}

// TestDeviceCoalescedBitIdentical extends the PR 6 determinism property to
// attributed robust fusion: the same per-road submission sequence — now with
// device ids and a huber policy — through the coalesced batch path and the
// direct SubmitDevice path must produce Float64bits-identical fused maps,
// and the same device trust state. Each device submits to a single road, so
// its state sequence is pinned by that road's FIFO order.
func TestDeviceCoalescedBitIdentical(t *testing.T) {
	for _, window := range []int{0, 3, 8} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			srv, ts := newCoalescedServer(t, CoalesceConfig{}, window)
			srv.Policy = fusion.FusionPolicy{Policy: fusion.PolicyHuber}
			direct := NewServerWithShards(4)
			direct.Policy = fusion.FusionPolicy{Policy: fusion.PolicyHuber}
			if window > 0 {
				direct.MaxSubmissionsPerRoad = window
			}

			cli, err := NewClient(ts.URL, ts.Client(), WithBinaryBatch(true))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(17 + window)))
			roads := []string{"r-a", "r-b", "r-c"}
			seq := 0
			for batch := 0; batch < 6; batch++ {
				n := 3 + rng.Intn(6)
				items := make([]BatchItem, n)
				for i := range items {
					ri := rng.Intn(len(roads))
					p := realisticProfile(rng, 40+rng.Intn(30))
					if rng.Intn(3) == 0 { // a rotating miscalibrated device per road
						for c := range p.GradeRad {
							p.GradeRad[c] += 0.06
						}
					}
					items[i] = BatchItem{
						RoadID:  roads[ri],
						Key:     fmt.Sprintf("k-%d", seq),
						Device:  fmt.Sprintf("dev-%s-%d", roads[ri], seq%2),
						Profile: p,
					}
					seq++
				}
				res, err := cli.SubmitBatch(context.Background(), items)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range res {
					if r.Status != "accepted" {
						t.Fatalf("batch %d item %d: %+v", batch, i, r)
					}
				}
				enc, err := EncodeBatchBinary(items)
				if err != nil {
					t.Fatal(err)
				}
				dec, err := DecodeBatchBinary(enc)
				if err != nil {
					t.Fatal(err)
				}
				for i := range dec {
					if dec[i].Device == "" {
						t.Fatal("device id lost in binary round-trip")
					}
					if err := direct.SubmitDevice(dec[i].RoadID, dec[i].Device, dec[i].Profile); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, road := range roads {
				got, err := srv.Fused(road)
				if err != nil {
					t.Fatalf("coalesced %s: %v", road, err)
				}
				want, err := direct.Fused(road)
				if err != nil {
					t.Fatalf("direct %s: %v", road, err)
				}
				if got.Len() != want.Len() || got.SpacingM != want.SpacingM {
					t.Fatalf("%s: shape mismatch", road)
				}
				for c := range want.GradeRad {
					if math.Float64bits(got.GradeRad[c]) != math.Float64bits(want.GradeRad[c]) {
						t.Fatalf("%s cell %d: grade bits differ: %v vs %v", road, c, got.GradeRad[c], want.GradeRad[c])
					}
					if math.Float64bits(got.Var[c]) != math.Float64bits(want.Var[c]) {
						t.Fatalf("%s cell %d: var bits differ", road, c)
					}
				}
			}
			// Device trust state must agree between the two paths too.
			for _, road := range roads {
				for d := 0; d < 2; d++ {
					id := fmt.Sprintf("dev-%s-%d", road, d)
					a, okA := srv.DeviceState(id)
					b, okB := direct.DeviceState(id)
					if okA != okB {
						t.Fatalf("device %s known on one path only", id)
					}
					if !okA {
						continue
					}
					if math.Float64bits(a.Reputation) != math.Float64bits(b.Reputation) ||
						math.Float64bits(a.BiasRad) != math.Float64bits(b.BiasRad) ||
						a.Submissions != b.Submissions {
						t.Fatalf("device %s state diverged: %+v vs %+v", id, a, b)
					}
				}
			}
		})
	}
}

// TestCoalesceStats covers the /healthz data source: disabled servers report
// zeros, enabled ones report queue depth and the shed counter.
func TestCoalesceStats(t *testing.T) {
	plain := NewServerWithShards(2)
	if enabled, queued, shed := plain.CoalesceStats(); enabled || queued != 0 || shed != 0 {
		t.Errorf("plain server stats = %v %d %d, want false 0 0", enabled, queued, shed)
	}

	srv, ts := newCoalescedServer(t, CoalesceConfig{QueueDepth: 1, BatchMax: 1}, 0)
	if enabled, _, _ := srv.CoalesceStats(); !enabled {
		t.Error("coalescing server reports disabled")
	}
	// Overrun the 1-deep queues so at least one item sheds, then check the
	// counter moved. One attempt, no retries: shed outcomes are expected.
	cli, err := NewClient(ts.URL, ts.Client(), WithRetry(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	items := make([]BatchItem, 64)
	for i := range items {
		items[i] = BatchItem{RoadID: "one-road", Key: fmt.Sprintf("k%d", i), Profile: realisticProfile(rng, 200)}
	}
	sawShed := false
	for try := 0; try < 10 && !sawShed; try++ {
		res, err := cli.SubmitBatch(context.Background(), items)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i].Status == statusShed {
				sawShed = true
			}
			items[i].Key = fmt.Sprintf("k%d-%d", i, try) // fresh keys per round
		}
	}
	if !sawShed {
		t.Skip("could not provoke shedding on this machine")
	}
	if _, _, shed := srv.CoalesceStats(); shed == 0 {
		t.Error("shed counter did not move")
	}
}
