package cloud

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestClientRoundTripMatrix runs the full submit->fetch cycle through a real
// server for every codec x compression combination: the fetched fused profile
// must be identical regardless of how the bytes traveled.
func TestClientRoundTripMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	items := make([]BatchItem, 12)
	for i := range items {
		items[i] = BatchItem{
			RoadID:  roadName(i % 3),
			Key:     fmt.Sprintf("m-%d", i),
			Profile: realisticProfile(rng, 80),
		}
	}
	// Quantize once so the JSON and binary codecs carry identical values and
	// every combination fuses to the same bits.
	enc, err := EncodeBatchBinary(items)
	if err != nil {
		t.Fatal(err)
	}
	items, err = DecodeBatchBinary(enc)
	if err != nil {
		t.Fatal(err)
	}

	var want [][]float64
	for _, binary := range []bool{false, true} {
		for _, gz := range []bool{false, true} {
			name := fmt.Sprintf("binary=%v/gzip=%v", binary, gz)
			t.Run(name, func(t *testing.T) {
				srv, ts := newCoalescedServer(t, CoalesceConfig{}, 0)
				_ = srv
				cli, err := NewClient(ts.URL, ts.Client(), WithBinaryBatch(binary), WithGzip(gz))
				if err != nil {
					t.Fatal(err)
				}
				batch := make([]BatchItem, len(items))
				copy(batch, items)
				res, err := cli.SubmitBatch(context.Background(), batch)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range res {
					if r.Status != "accepted" {
						t.Fatalf("item %d: %+v", i, r)
					}
				}
				var got []float64
				for r := 0; r < 3; r++ {
					p, err := cli.FetchProfile(context.Background(), roadName(r))
					if err != nil {
						t.Fatalf("fetch %s: %v", roadName(r), err)
					}
					got = append(got, p.GradeRad...)
					got = append(got, p.Var...)
				}
				if want == nil {
					want = append(want, got)
					return
				}
				ref := want[0]
				if len(got) != len(ref) {
					t.Fatalf("fused length %d, want %d", len(got), len(ref))
				}
				for i := range ref {
					if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
						t.Fatalf("fused value %d differs from the plain-JSON combination: %v vs %v", i, got[i], ref[i])
					}
				}
			})
		}
	}
}

// TestServerGzipNegotiation hits the raw HTTP surface: a gzip-accepting GET
// must get a gzip body that inflates to exactly the identity body, and batch
// submits must accept gzip request bodies.
func TestServerGzipNegotiation(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(23))
	if err := srv.Submit("r", realisticProfile(rng, 60)); err != nil {
		t.Fatal(err)
	}

	// Transparent-decompression off, so the raw wire bytes are observable.
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr}

	get := func(acceptGzip bool) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/roads/r/profile", nil)
		if acceptGzip {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	respPlain, plain := get(false)
	if respPlain.Header.Get("Content-Encoding") == "gzip" {
		t.Fatal("identity request answered with gzip")
	}
	respGz, zipped := get(true)
	if respGz.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("gzip-accepting request not answered with gzip")
	}
	if respGz.Header.Get("Vary") != "Accept-Encoding" {
		t.Error("gzip response missing Vary: Accept-Encoding")
	}
	if len(zipped) >= len(plain) {
		t.Errorf("gzip body (%d B) not smaller than identity (%d B)", len(zipped), len(plain))
	}
	zr, err := gzip.NewReader(bytes.NewReader(zipped))
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(inflated) != string(plain) {
		t.Error("gzip body does not inflate to the identity body")
	}

	// A second gzip GET of the unchanged road must come from the cache.
	hitsBefore := obsEncGzHits.Value()
	get(true)
	if obsEncGzHits.Value() == hitsBefore {
		t.Error("repeated gzip GET did not hit the encoded_gzip cache")
	}

	// Unsupported request Content-Encoding is rejected up front.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/submit-batch", bytes.NewReader([]byte("x")))
	req.Header.Set("Content-Type", ContentTypeJSON)
	req.Header.Set("Content-Encoding", "br")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("Content-Encoding br: status %d, want 415", resp.StatusCode)
	}
}
