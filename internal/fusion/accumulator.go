package fusion

import (
	"errors"
	"fmt"
	"math"

	"roadgrade/internal/obs"
)

// Cloud-serving instrumentation: every batch FuseProfiles call and every
// accumulator rebuild is counted, so a serving deployment can verify that
// fused reads really come from the incremental state (the batch counter must
// stay flat while reads flow) and see how much rebuild work evictions cost.
var (
	obsProfileFuses = obs.Default.Counter("fusion_profile_batch_fuses_total")
	obsAccAdds      = obs.Default.Counter("fusion_accumulator_adds_total")
	obsAccRebuilds  = obs.Default.Counter("fusion_accumulator_rebuilds_total")
)

// Accumulator maintains the cloud-stage profile fusion of FuseProfiles
// incrementally. FuseProfiles is a per-cell precision-weighted sum
// (Eq. (6) applied across vehicles):
//
//	θ̄_c = U_c Σ_k θ_k,c / P_k,c,   U_c = (Σ_k 1/P_k,c)⁻¹
//
// so instead of re-running the batch over every stored submission on every
// read — O(submissions × cells) — the accumulator keeps the running totals
// Σ 1/P_k,c (sumInv) and Σ θ_k,c/P_k,c (sumWeighted) per cell:
//
//   - Add folds one submission in: O(cells of that submission).
//   - Fused materializes the fused profile from the totals: O(cells), with
//     zero FuseProfiles calls.
//   - When the retention window is full, accepting a new submission evicts
//     the oldest and rebuilds the totals exactly from the retained window:
//     O(window × cells), paid only on writes past the cap.
//
// The output is bit-identical to FuseProfiles over the retained window: the
// per-cell additions happen in the same submission order with the same
// association as the batch loop, and eviction never subtracts (floating-point
// subtraction would drift) — it rebuilds from scratch in batch order.
//
// An Accumulator is not safe for concurrent use; callers (cloud.Server)
// provide their own locking. Added profiles are retained by reference and
// must not be mutated afterwards.
type Accumulator struct {
	maxWindow int // retention cap; <= 0 means unbounded

	spacing float64
	window  []contribution // retained submissions in arrival order

	cells       int
	sumInv      []float64 // Σ 1/Var[c] over the window, in arrival order
	sumWeighted []float64 // Σ GradeRad[c]/Var[c] over the window
}

// contribution is one retained submission with its per-cell terms
// precomputed: inv[c] = 1/Var[c] and w[c] = inv[c]*GradeRad[c], the exact
// values the batch loop of FuseProfiles derives per read. Computing them once
// at Add time makes eviction rebuilds pure additions — no divisions or
// multiplications — while staying bit-identical (the same operands produce
// the same IEEE results no matter when they are computed). Cells with
// Var[c] <= 0 hold zeroes and are skipped at rebuild exactly as the batch
// loop skips them.
type contribution struct {
	p   *Profile
	inv []float64
	w   []float64
}

// newContribution precomputes a profile's per-cell fusion terms.
func newContribution(p *Profile) contribution {
	n := p.Len()
	e := contribution{p: p, inv: make([]float64, n), w: make([]float64, n)}
	for c := 0; c < n; c++ {
		if p.Var[c] <= 0 {
			continue
		}
		e.inv[c] = 1 / p.Var[c]
		e.w[c] = e.inv[c] * p.GradeRad[c]
	}
	return e
}

// NewAccumulator returns an empty accumulator retaining at most maxWindow
// submissions (<= 0 for unbounded).
func NewAccumulator(maxWindow int) *Accumulator {
	return &Accumulator{maxWindow: maxWindow}
}

// Len returns the number of retained submissions.
func (a *Accumulator) Len() int { return len(a.window) }

// Cells returns the current fused grid length (the longest retained
// submission).
func (a *Accumulator) Cells() int { return a.cells }

// Spacing returns the grid spacing, or 0 while empty.
func (a *Accumulator) Spacing() float64 {
	if len(a.window) == 0 {
		return 0
	}
	return a.spacing
}

// Window returns the retained submissions in arrival order (a fresh slice;
// the profiles are shared and must be treated as read-only).
func (a *Accumulator) Window() []*Profile {
	out := make([]*Profile, len(a.window))
	for i := range a.window {
		out[i] = a.window[i].p
	}
	return out
}

// Add folds one submission into the running totals, evicting the oldest
// retained submission first when the window is full.
func (a *Accumulator) Add(p *Profile) error {
	if p == nil || p.Len() == 0 {
		return errors.New("fusion: empty profile")
	}
	if len(a.window) == 0 {
		a.spacing = p.SpacingM
	} else if math.Abs(p.SpacingM-a.spacing) > 1e-9 {
		return fmt.Errorf("fusion: profile spacing %v != %v", p.SpacingM, a.spacing)
	}
	obsAccAdds.Inc()
	e := newContribution(p)
	if a.maxWindow > 0 && len(a.window) >= a.maxWindow {
		// Window full: drop the oldest submission(s) and rebuild the
		// totals exactly from what remains plus the newcomer.
		drop := len(a.window) - a.maxWindow + 1
		keep := copy(a.window, a.window[drop:])
		for i := keep; i < len(a.window); i++ {
			a.window[i] = contribution{} // release for GC
		}
		a.window = append(a.window[:keep], e)
		a.rebuild()
		return nil
	}
	a.window = append(a.window, e)
	a.accumulate(e)
	return nil
}

// accumulate folds one contribution's cells into the totals, growing the grid
// as needed.
func (a *Accumulator) accumulate(e contribution) {
	if n := e.p.Len(); n > a.cells {
		a.sumInv = growZero(a.sumInv, n)
		a.sumWeighted = growZero(a.sumWeighted, n)
		a.cells = n
	}
	vari := e.p.Var[:e.p.Len()]
	for c := range vari {
		if vari[c] <= 0 {
			continue // same skip rule as FuseProfiles
		}
		a.sumInv[c] += e.inv[c]
		a.sumWeighted[c] += e.w[c]
	}
}

// rebuild recomputes the totals from the retained window in arrival order —
// the exact batch summation FuseProfiles performs, so the post-eviction state
// is bit-identical to fusing the retained window from scratch. The per-cell
// 1/Var and weighted-grade terms were precomputed at Add time, so the rebuild
// is pure additions over the window.
func (a *Accumulator) rebuild() {
	obsAccRebuilds.Inc()
	a.cells = 0
	for i := range a.window {
		if n := a.window[i].p.Len(); n > a.cells {
			a.cells = n
		}
	}
	a.sumInv = zeroed(a.sumInv, a.cells)
	a.sumWeighted = zeroed(a.sumWeighted, a.cells)
	for i := range a.window {
		e := &a.window[i]
		vari, inv, w := e.p.Var[:e.p.Len()], e.inv, e.w
		sumInv := a.sumInv[:len(vari)]
		sumW := a.sumWeighted[:len(vari)]
		for c := range vari {
			if vari[c] <= 0 {
				continue
			}
			sumInv[c] += inv[c]
			sumW[c] += w[c]
		}
	}
}

// Fused materializes the fused profile from the running totals: O(cells),
// no FuseProfiles call. The result is freshly allocated and bit-identical to
// FuseProfiles(a.Window()).
func (a *Accumulator) Fused() (*Profile, error) {
	if len(a.window) == 0 {
		return nil, errors.New("fusion: no profiles")
	}
	out := &Profile{
		SpacingM: a.spacing,
		S:        make([]float64, a.cells),
		GradeRad: make([]float64, a.cells),
		Var:      make([]float64, a.cells),
	}
	for c := 0; c < a.cells; c++ {
		out.S[c] = float64(c) * a.spacing
		if a.sumInv[c] == 0 {
			// No submission covers this cell; carry forward, exactly as
			// the batch fuse does.
			if c > 0 {
				out.GradeRad[c] = out.GradeRad[c-1]
				out.Var[c] = out.Var[c-1]
			}
			continue
		}
		u := 1 / a.sumInv[c] // Eq. (6b)
		out.GradeRad[c] = u * a.sumWeighted[c]
		out.Var[c] = u
	}
	return out, nil
}

// growZero extends s to length n, preserving existing totals and zero-filling
// the new cells.
func growZero(s []float64, n int) []float64 {
	if cap(s) >= n {
		old := len(s)
		s = s[:n]
		for i := old; i < n; i++ {
			s[i] = 0
		}
		return s
	}
	out := make([]float64, n)
	copy(out, s)
	return out
}

// zeroed returns s resized to length n with every cell zero, reusing the
// backing array when possible.
func zeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
