package fusion

import (
	"errors"
	"fmt"
	"math"
	"time"

	"roadgrade/internal/obs"
)

// Robust-fusion instrumentation: how often the bounded-influence machinery
// actually fired (Huber down-weighting, residual clamping, trimming) and how
// long a robust fold takes per policy. The per-policy histograms are
// pre-created so the Add path never builds label strings.
var (
	obsRobustDownweighted = obs.Default.Counter("fusion_robust_downweighted_total")
	obsRobustClamped      = obs.Default.Counter("fusion_robust_clamped_total")
	obsRobustTrimmed      = obs.Default.Counter("fusion_robust_trimmed_total")

	obsRobustAddSeconds = map[Policy]*obs.Histogram{
		PolicyNaive:   obs.Default.Histogram("fusion_robust_add_seconds", obs.LatencyBuckets, obs.L("policy", string(PolicyNaive))),
		PolicyHuber:   obs.Default.Histogram("fusion_robust_add_seconds", obs.LatencyBuckets, obs.L("policy", string(PolicyHuber))),
		PolicyTrimmed: obs.Default.Histogram("fusion_robust_add_seconds", obs.LatencyBuckets, obs.L("policy", string(PolicyTrimmed))),
	}
)

// Policy selects the per-cell estimator of a RobustAccumulator.
type Policy string

const (
	// PolicyNaive is the plain inverse-variance average of Eq. (6):
	// every submission is trusted at its reported precision, reputation
	// and bias corrections are ignored. Bit-identical to Accumulator /
	// FuseProfiles.
	PolicyNaive Policy = "naive"
	// PolicyHuber down-weights outlying submissions per cell with the
	// Huber ψ-weight min(1, k/|z|) of the standardized residual z, and
	// clamps the admitted residual to ±ClampRad.
	PolicyHuber Policy = "huber"
	// PolicyTrimmed drops cells whose standardized residual exceeds
	// TrimZ entirely, and clamps the admitted residual to ±ClampRad.
	PolicyTrimmed Policy = "trimmed"
)

// FusionPolicy configures the robust estimator. The zero value selects the
// naive policy; WithDefaults fills unset knobs.
type FusionPolicy struct {
	// Policy selects the estimator ("" means naive).
	Policy Policy
	// HuberK is the Huber tuning constant in standardized-residual units
	// (default 1.2 — slightly harsher than the classical 95%-efficiency
	// 1.345, trading a little clean-fleet efficiency for a cleaner
	// consensus under contamination, which the per-device bias learner
	// then locks onto).
	HuberK float64
	// TrimZ is the trimming threshold in standardized-residual units
	// (default 3).
	TrimZ float64
	// ClampRad bounds the residual any single submission may inject into
	// a consensus cell, in radians (default 0.01 ≈ 0.57°). This is the
	// bounded-influence guarantee: one submission moves a fused cell by
	// strictly less than ClampRad. Road gradients drift slowly, so a
	// tight clamp costs legitimate traffic almost nothing while starving
	// the transient an adversary needs to seed the consensus.
	ClampRad float64
	// MinConsensus is the number of prior contributions a cell needs
	// before robust weighting applies (default 3); below it submissions
	// fuse naively so the first reporters cannot be "outliers" against
	// an empty map.
	MinConsensus int
	// MinWeight floors the reputation weight so a rehabilitated device's
	// submissions keep flowing into the agreement estimate (default 0.01).
	MinWeight float64
}

// WithDefaults returns the policy with unset knobs at their defaults.
func (fp FusionPolicy) WithDefaults() FusionPolicy {
	if fp.Policy == "" {
		fp.Policy = PolicyNaive
	}
	if fp.HuberK <= 0 {
		fp.HuberK = 1.2
	}
	if fp.TrimZ <= 0 {
		fp.TrimZ = 3.0
	}
	if fp.ClampRad <= 0 {
		fp.ClampRad = 0.01
	}
	if fp.MinConsensus <= 0 {
		fp.MinConsensus = 3
	}
	if fp.MinWeight <= 0 {
		fp.MinWeight = 0.01
	}
	return fp
}

// Robust reports whether the policy applies robust weighting (anything but
// naive).
func (fp FusionPolicy) Robust() bool {
	return fp.Policy != PolicyNaive && fp.Policy != ""
}

// ParsePolicy maps a policy name ("naive", "huber", "trimmed") to a
// FusionPolicy with default knobs.
func ParsePolicy(name string) (FusionPolicy, error) {
	switch Policy(name) {
	case PolicyNaive, PolicyHuber, PolicyTrimmed:
		return FusionPolicy{Policy: Policy(name)}.WithDefaults(), nil
	}
	return FusionPolicy{}, fmt.Errorf("fusion: unknown policy %q (want naive, huber, or trimmed)", name)
}

// Reputation EWMA and bias-learning constants. Demotion is faster than
// recovery (hysteresis): one bad submission drops a device quickly, and it
// must agree repeatedly to climb back.
const (
	repAlphaDown = 0.30 // EWMA gain when agreement < reputation
	repAlphaUp   = 0.12 // EWMA gain when agreement >= reputation
	repFloor     = 0.02 // reputation never reaches zero, so devices can recover
	agreeZ2      = 4.0  // |z| <= 2 counts as agreeing with consensus
	minScoreCell = 8    // consensus cells needed before rep/bias update

	biasGain   = 0.25 // EWMA gain of the additive bias estimate
	maxBiasRad = 0.15 // |learned bias| cap, radians (≈ 8.6°)
)

// DeviceState is the per-device trust state: an EWMA reputation in (0, 1]
// tracking how often the device's cells agree with the fused consensus, and a
// learned additive grade bias subtracted from its submissions before robust
// fusion. The caller (cloud.Server) owns locking.
type DeviceState struct {
	// Reputation in [repFloor, 1]; new devices start at 1.
	Reputation float64
	// BiasRad is the learned additive calibration offset, radians.
	BiasRad float64
	// Submissions counts folds that consulted this state.
	Submissions uint64
	// Downweighted counts submissions where the robust estimator fired
	// (Huber weight < 1, a trim, or a residual clamp on any cell).
	Downweighted uint64
	// LastAgreement is the most recent per-submission agreement score in
	// [0, 1] (fraction of consensus cells with |z| <= 2).
	LastAgreement float64
	// BiasObs counts submissions that updated BiasRad (enough consensus
	// overlap); it drives the decaying learning-rate schedule.
	BiasObs uint64
}

// NewDeviceState returns the state of a fresh, fully-trusted device.
func NewDeviceState() *DeviceState {
	return &DeviceState{Reputation: 1, LastAgreement: 1}
}

// weight maps reputation to the multiplicative fusion weight. Squaring makes
// the penalty super-linear (a rep-0.5 device contributes a quarter), and the
// floor keeps rehabilitation possible.
func (d *DeviceState) weight(minWeight float64) float64 {
	w := d.Reputation * d.Reputation
	if w < minWeight {
		return minWeight
	}
	return w
}

// foldStats is what one robust fold learned about the submitting device.
type foldStats struct {
	consensus int     // cells with an established consensus
	agree     int     // of those, cells with z^2 <= agreeZ2
	resSum    float64 // Σ residual over consensus cells (after bias subtraction)
	fired     bool    // any cell down-weighted, trimmed, or clamped
	// Per-mechanism cell counts, also batched into the obs counters.
	downweighted uint64
	trimmed      uint64
	clamped      uint64
}

// FoldReport summarizes what one fold did to one submission — the per-cell
// robustness interventions and the device's post-fold reputation — so
// callers (the coalescer's fold spans) can annotate traces with the
// trust decisions that shaped the map.
type FoldReport struct {
	ConsensusCells int     // cells scored against an established consensus
	AgreeCells     int     // of those, cells within the agreement band
	Downweighted   uint64  // cells Huber-downweighted
	Trimmed        uint64  // cells trimmed to zero weight
	Clamped        uint64  // cells residual-clamped
	Reputation     float64 // device reputation after the fold (1 when anonymous)
}

// observe folds one submission's agreement evidence into the device state.
// Reputation only moves when the submission overlapped enough established
// consensus (minScoreCell cells) for the score to mean something.
func (d *DeviceState) observe(st foldStats) {
	d.Submissions++
	if st.fired {
		d.Downweighted++
	}
	if st.consensus < minScoreCell {
		return
	}
	score := float64(st.agree) / float64(st.consensus)
	d.LastAgreement = score
	alpha := repAlphaUp
	if score < d.Reputation {
		alpha = repAlphaDown
	}
	d.Reputation += alpha * (score - d.Reputation)
	if d.Reputation < repFloor {
		d.Reputation = repFloor
	} else if d.Reputation > 1 {
		d.Reputation = 1
	}
	// Additive bias: the mean residual against consensus is an unbiased
	// estimate of the device's remaining calibration offset (honest noise
	// averages out across cells). The gain schedule is sample-mean-like
	// early (1, 1/2, 1/3, ...) so a constant offset is learned almost
	// immediately, floored at the EWMA gain so the estimate keeps tracking
	// late drift. Bounded so a malicious device cannot bank an absurd
	// "calibration".
	d.BiasObs++
	gain := biasGain
	if g := 1 / float64(d.BiasObs); g > gain {
		gain = g
	}
	mean := st.resSum / float64(st.consensus)
	d.BiasRad += gain * mean
	if d.BiasRad > maxBiasRad {
		d.BiasRad = maxBiasRad
	} else if d.BiasRad < -maxBiasRad {
		d.BiasRad = -maxBiasRad
	}
}

// RobustAccumulator is the trust-weighted generalization of Accumulator: the
// same incremental per-cell running totals, but each submission's per-cell
// terms are scaled by a bounded-influence weight computed against the
// consensus at admission time:
//
//	wi[c] = ρ(device) · ψ(z[c]) · 1/Var[c]
//	cw[c] = wi[c] · clamp(θ_sub[c] − bias, consensus ± ClampRad)
//
// where z[c] = (θ_sub − θ̄)/√(Var + U) is the standardized residual against
// the current fused cell, ψ is the policy's weight function (Huber or hard
// trim), and ρ is the submitting device's reputation weight.
//
// The weights are *frozen* at Add time — this is a sequential (online) robust
// estimator. Freezing is what keeps the accumulator's complexity and
// determinism guarantees intact: Add stays O(cells), eviction rebuilds are
// pure additions of precomputed terms in arrival order (bit-reproducible),
// and the same submission sequence always produces the bit-identical map, on
// the direct path or through the write coalescer.
//
// Under PolicyNaive the weight machinery is bypassed entirely (wi = 1/Var,
// cw = wi·θ, no bias subtraction), so the output is bit-identical to
// Accumulator and FuseProfiles — Float64bits-equal, asserted by tests.
//
// Not safe for concurrent use; callers provide locking. Added profiles are
// retained by reference and must not be mutated afterwards.
type RobustAccumulator struct {
	policy    FusionPolicy
	maxWindow int // retention cap; <= 0 means unbounded

	spacing float64
	window  []contribution // retained submissions in arrival order

	cells       int
	sumInv      []float64 // Σ wi[c] over the window
	sumWeighted []float64 // Σ cw[c] over the window
	nSub        []int32   // contributions with Var[c] > 0, for MinConsensus
}

// NewRobustAccumulator returns an empty accumulator retaining at most
// maxWindow submissions (<= 0 for unbounded) and fusing under the given
// policy (zero value = naive).
func NewRobustAccumulator(maxWindow int, policy FusionPolicy) *RobustAccumulator {
	return &RobustAccumulator{maxWindow: maxWindow, policy: policy.WithDefaults()}
}

// Policy returns the accumulator's fusion policy (with defaults applied).
func (a *RobustAccumulator) Policy() FusionPolicy { return a.policy }

// Len returns the number of retained submissions.
func (a *RobustAccumulator) Len() int { return len(a.window) }

// Cells returns the current fused grid length.
func (a *RobustAccumulator) Cells() int { return a.cells }

// Spacing returns the grid spacing, or 0 while empty.
func (a *RobustAccumulator) Spacing() float64 {
	if len(a.window) == 0 {
		return 0
	}
	return a.spacing
}

// Window returns the retained submissions in arrival order (a fresh slice;
// the profiles are shared and must be treated as read-only).
func (a *RobustAccumulator) Window() []*Profile {
	out := make([]*Profile, len(a.window))
	for i := range a.window {
		out[i] = a.window[i].p
	}
	return out
}

// Add folds one anonymous submission in: AddDevice with no device state.
func (a *RobustAccumulator) Add(p *Profile) error { return a.AddDevice(p, nil) }

// AddDevice folds one submission from the given device into the running
// totals, evicting the oldest retained submission first when the window is
// full. dev may be nil (anonymous submission: full weight, no bias, no
// reputation update). The device's reputation and bias are updated from the
// submission's agreement with the pre-existing consensus — under every
// policy, so reputations are observable even while fusing naively — but only
// robust policies *apply* them to the fusion weights.
func (a *RobustAccumulator) AddDevice(p *Profile, dev *DeviceState) error {
	_, err := a.AddDeviceReport(p, dev)
	return err
}

// AddDeviceReport is AddDevice returning the fold's robustness report.
func (a *RobustAccumulator) AddDeviceReport(p *Profile, dev *DeviceState) (FoldReport, error) {
	if p == nil || p.Len() == 0 {
		return FoldReport{}, errors.New("fusion: empty profile")
	}
	if len(a.window) == 0 {
		a.spacing = p.SpacingM
	} else if math.Abs(p.SpacingM-a.spacing) > 1e-9 {
		return FoldReport{}, fmt.Errorf("fusion: profile spacing %v != %v", p.SpacingM, a.spacing)
	}
	start := time.Now()
	obsAccAdds.Inc()
	e, st := a.newRobustContribution(p, dev)
	rep := FoldReport{
		ConsensusCells: st.consensus,
		AgreeCells:     st.agree,
		Downweighted:   st.downweighted,
		Trimmed:        st.trimmed,
		Clamped:        st.clamped,
		Reputation:     1,
	}
	if dev != nil {
		dev.observe(st)
		rep.Reputation = dev.Reputation
	}
	if a.maxWindow > 0 && len(a.window) >= a.maxWindow {
		drop := len(a.window) - a.maxWindow + 1
		keep := copy(a.window, a.window[drop:])
		for i := keep; i < len(a.window); i++ {
			a.window[i] = contribution{} // release for GC
		}
		a.window = append(a.window[:keep], e)
		a.rebuild()
	} else {
		a.window = append(a.window, e)
		a.accumulate(e)
	}
	obsRobustAddSeconds[a.policy.Policy].Observe(time.Since(start).Seconds())
	return rep, nil
}

// newRobustContribution computes the submission's frozen per-cell terms
// against the current consensus, plus the agreement stats for the device
// update. Under PolicyNaive the terms are exactly newContribution's
// (inv = 1/Var, w = inv·grade) — same operands, same IEEE results.
func (a *RobustAccumulator) newRobustContribution(p *Profile, dev *DeviceState) (contribution, foldStats) {
	n := p.Len()
	e := contribution{p: p, inv: make([]float64, n), w: make([]float64, n)}
	var st foldStats

	robust := a.policy.Robust()
	rho, bias := 1.0, 0.0
	if robust && dev != nil {
		rho = dev.weight(a.policy.MinWeight)
		bias = dev.BiasRad
	}
	// Hoist every policy field out of the loop: Policy is a string, and a
	// per-cell switch on it would pay a string compare per cell.
	huber := a.policy.Policy == PolicyHuber
	huberK := a.policy.HuberK
	k2 := huberK * huberK
	tz2 := a.policy.TrimZ * a.policy.TrimZ
	clamp := a.policy.ClampRad
	minC := int32(a.policy.MinConsensus)
	wantStats := dev != nil

	// Counter increments are atomic RMWs; batch them per fold rather than
	// paying one per fired cell (a biased submission fires on most of its
	// cells, which would dominate the fold's cost).

	for c := 0; c < n; c++ {
		if p.Var[c] <= 0 {
			continue // same skip rule as FuseProfiles
		}
		inv := 1 / p.Var[c]
		g := p.GradeRad[c]

		// Consensus lookup: established once MinConsensus prior
		// contributions cover the cell. Read before this submission is
		// folded in, so a device never scores against itself.
		var theta, u float64
		established := false
		if c < a.cells && a.nSub[c] >= minC && a.sumInv[c] > 0 {
			u = 1 / a.sumInv[c] // one reciprocal serves both Eq. (6b) terms
			theta = a.sumWeighted[c] * u
			established = true
		}

		if !robust {
			// Naive policy: the exact batch-fuse arithmetic, frozen.
			e.inv[c] = inv
			e.w[c] = inv * g
			if wantStats && established {
				r := g - theta
				st.consensus++
				if r*r <= agreeZ2*(p.Var[c]+u) {
					st.agree++
				}
				st.resSum += r
			}
			continue
		}

		// Robust policies: bias-correct, standardize against consensus,
		// weight and clamp.
		gc := g
		if bias != 0 {
			gc = g - bias
		}
		if !established {
			// No consensus yet: fuse at reputation weight only.
			wi := rho * inv
			e.inv[c] = wi
			e.w[c] = wi * gc
			continue
		}
		// Standardized-residual tests in squared form — rr vs z²·denom — so
		// inlier cells (the common case on a healthy fleet) cost multiplies
		// only; the divide and sqrt are reserved for actual outliers.
		r := gc - theta
		rr := r * r
		denom := p.Var[c] + u
		if wantStats {
			st.consensus++
			if rr <= agreeZ2*denom {
				st.agree++
			}
			st.resSum += r
		}
		w := 1.0
		if huber {
			if rr > k2*denom {
				w = huberK * math.Sqrt(denom/rr) // k/|z|
				st.fired = true
				st.downweighted++
			}
		} else if rr > tz2*denom { // trimmed
			st.fired = true
			st.trimmed++
			continue // wi = cw = 0: cell contributes nothing
		}
		gEff := gc
		if r > clamp {
			gEff = theta + clamp
			st.fired = true
			st.clamped++
		} else if r < -clamp {
			gEff = theta - clamp
			st.fired = true
			st.clamped++
		}
		wi := rho * w * inv
		e.inv[c] = wi
		e.w[c] = wi * gEff
	}
	if st.downweighted > 0 {
		obsRobustDownweighted.Add(st.downweighted)
	}
	if st.trimmed > 0 {
		obsRobustTrimmed.Add(st.trimmed)
	}
	if st.clamped > 0 {
		obsRobustClamped.Add(st.clamped)
	}
	return e, st
}

// accumulate folds one contribution's cells into the totals, growing the grid
// as needed.
func (a *RobustAccumulator) accumulate(e contribution) {
	if n := e.p.Len(); n > a.cells {
		a.sumInv = growZero(a.sumInv, n)
		a.sumWeighted = growZero(a.sumWeighted, n)
		a.nSub = growZeroInt32(a.nSub, n)
		a.cells = n
	}
	vari := e.p.Var[:e.p.Len()]
	for c := range vari {
		if vari[c] <= 0 {
			continue
		}
		a.sumInv[c] += e.inv[c]
		a.sumWeighted[c] += e.w[c]
		a.nSub[c]++
	}
}

// rebuild recomputes the totals from the retained window in arrival order —
// pure additions of the frozen per-cell terms, exactly as Accumulator.rebuild,
// so the post-eviction state is bit-identical to replaying the retained
// window.
func (a *RobustAccumulator) rebuild() {
	obsAccRebuilds.Inc()
	a.cells = 0
	for i := range a.window {
		if n := a.window[i].p.Len(); n > a.cells {
			a.cells = n
		}
	}
	a.sumInv = zeroed(a.sumInv, a.cells)
	a.sumWeighted = zeroed(a.sumWeighted, a.cells)
	a.nSub = zeroedInt32(a.nSub, a.cells)
	for i := range a.window {
		e := &a.window[i]
		vari, inv, w := e.p.Var[:e.p.Len()], e.inv, e.w
		sumInv := a.sumInv[:len(vari)]
		sumW := a.sumWeighted[:len(vari)]
		nSub := a.nSub[:len(vari)]
		for c := range vari {
			if vari[c] <= 0 {
				continue
			}
			sumInv[c] += inv[c]
			sumW[c] += w[c]
			nSub[c]++
		}
	}
}

// Fused materializes the fused profile from the running totals: O(cells), no
// batch fuse. Bit-identical to Accumulator.Fused under PolicyNaive.
func (a *RobustAccumulator) Fused() (*Profile, error) {
	if len(a.window) == 0 {
		return nil, errors.New("fusion: no profiles")
	}
	out := &Profile{
		SpacingM: a.spacing,
		S:        make([]float64, a.cells),
		GradeRad: make([]float64, a.cells),
		Var:      make([]float64, a.cells),
	}
	for c := 0; c < a.cells; c++ {
		out.S[c] = float64(c) * a.spacing
		if a.sumInv[c] == 0 {
			// No (untrimmed) submission covers this cell; carry forward,
			// exactly as the batch fuse does.
			if c > 0 {
				out.GradeRad[c] = out.GradeRad[c-1]
				out.Var[c] = out.Var[c-1]
			}
			continue
		}
		u := 1 / a.sumInv[c] // Eq. (6b)
		out.GradeRad[c] = u * a.sumWeighted[c]
		out.Var[c] = u
	}
	return out, nil
}

// growZeroInt32 extends s to length n, preserving counts and zero-filling.
func growZeroInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		old := len(s)
		s = s[:n]
		for i := old; i < n; i++ {
			s[i] = 0
		}
		return s
	}
	out := make([]int32, n)
	copy(out, s)
	return out
}

// zeroedInt32 returns s resized to length n with every count zero.
func zeroedInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
