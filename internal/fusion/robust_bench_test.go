package fusion

import (
	"math/rand"
	"testing"
)

// benchSubmissions builds a pool of realistic 240-cell (1.2 km at 5 m)
// submissions from a rotating set of devices with per-device bias and noise.
func benchSubmissions(n, cells int) []*Profile {
	rng := rand.New(rand.NewSource(1234))
	out := make([]*Profile, n)
	for i := range out {
		bias := 0.002 * float64(i%7-3)
		out[i] = syntheticProfile(cells, 5, bias, 0.003+0.001*float64(i%5), rng)
	}
	return out
}

// benchRobustAdd measures one submission fold (Accumulator.AddDevice) under
// the given policy. The accumulator is recreated every 512 adds so memory
// stays bounded without paying windowed-eviction rebuilds every op — the
// number under test is the per-submission fold itself.
func benchRobustAdd(b *testing.B, policy Policy) {
	subs := benchSubmissions(64, 240)
	devs := make([]*DeviceState, 16)
	for i := range devs {
		devs[i] = NewDeviceState()
	}
	pol := FusionPolicy{Policy: policy}.WithDefaults()
	var acc *RobustAccumulator
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%512 == 0 {
			acc = NewRobustAccumulator(0, pol)
		}
		if err := acc.AddDevice(subs[i%len(subs)], devs[i%len(devs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusionAccAddPlain is the PR 4 baseline: the non-robust
// Accumulator's fold, against which the ≤3× robust-overhead criterion is
// checked.
func BenchmarkFusionAccAddPlain(b *testing.B) {
	subs := benchSubmissions(64, 240)
	var acc *Accumulator
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%512 == 0 {
			acc = NewAccumulator(0)
		}
		if err := acc.Add(subs[i%len(subs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusionAccAddRobustNaive(b *testing.B)   { benchRobustAdd(b, PolicyNaive) }
func BenchmarkFusionAccAddRobustHuber(b *testing.B)   { benchRobustAdd(b, PolicyHuber) }
func BenchmarkFusionAccAddRobustTrimmed(b *testing.B) { benchRobustAdd(b, PolicyTrimmed) }
