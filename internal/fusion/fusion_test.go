package fusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadgrade/internal/core"
	"roadgrade/internal/sensors"
)

// syntheticTrack builds a track sampled every meter whose grade estimate is
// truth(s) + noise with the given sigma, reporting variance sigma².
func syntheticTrack(rng *rand.Rand, src sensors.VelocitySource, lengthM, sigma float64, truth func(s float64) float64) *core.Track {
	n := int(lengthM) + 1
	tr := &core.Track{
		Source:   src,
		T:        make([]float64, n),
		S:        make([]float64, n),
		GradeRad: make([]float64, n),
		Var:      make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s := float64(i)
		tr.T[i] = s / 10
		tr.S[i] = s
		tr.GradeRad[i] = truth(s) + rng.NormFloat64()*sigma
		tr.Var[i] = sigma * sigma
	}
	return tr
}

func flatTruth(float64) float64 { return 0.03 }

func TestFuseTracksValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := syntheticTrack(rng, sensors.SourceGPS, 100, 0.01, flatTruth)
	if _, err := FuseTracks(nil, 5, 100); err == nil {
		t.Error("no tracks should error")
	}
	if _, err := FuseTracks([]*core.Track{tr}, 0, 100); err == nil {
		t.Error("zero spacing should error")
	}
	if _, err := FuseTracks([]*core.Track{tr}, 5, 0); err == nil {
		t.Error("zero length should error")
	}
	if _, err := FuseTracks([]*core.Track{{}}, 5, 100); err == nil {
		t.Error("empty track should error")
	}
}

func TestFuseSingleTrackPassesThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := syntheticTrack(rng, sensors.SourceGPS, 200, 0.005, flatTruth)
	prof, err := FuseTracks([]*core.Track{tr}, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Len() != 41 {
		t.Fatalf("cells = %d, want 41", prof.Len())
	}
	for i := range prof.S {
		if math.Abs(prof.GradeRad[i]-0.03) > 0.01 {
			t.Errorf("cell %d grade %v far from truth", i, prof.GradeRad[i])
		}
	}
}

func TestFusionReducesError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := func(s float64) float64 { return 0.04 * math.Sin(s/150) }
	var tracks []*core.Track
	for i, src := range sensors.AllSources() {
		tracks = append(tracks, syntheticTrack(rng, src, 1000, 0.01+0.002*float64(i), truth))
	}
	single, err := FuseTracks(tracks[:1], 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	all, err := FuseTracks(tracks, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(p *Profile) float64 {
		var sum float64
		for i := range p.S {
			sum += math.Abs(p.GradeRad[i] - truth(p.S[i]))
		}
		return sum / float64(p.Len())
	}
	if errOf(all) >= errOf(single)*0.8 {
		t.Errorf("fusion gain too small: single %v, fused %v", errOf(single), errOf(all))
	}
}

func TestFusionDownweightsBadTrack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := flatTruth
	good := syntheticTrack(rng, sensors.SourceCANBus, 500, 0.005, truth)
	// Bad track: large actual error but the same *reported* variance —
	// exactly the miscalibration the consensus pass must fix.
	bad := syntheticTrack(rng, sensors.SourceGPS, 500, 0.05, truth)
	for i := range bad.Var {
		bad.Var[i] = good.Var[i]
	}
	prof, err := FuseTracks([]*core.Track{good, bad}, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range prof.S {
		sum += math.Abs(prof.GradeRad[i] - truth(prof.S[i]))
	}
	mean := sum / float64(prof.Len())
	// Naive equal-weight fusion would give ~0.025 mean error; calibrated
	// fusion must stay near the good track's level.
	if mean > 0.012 {
		t.Errorf("fused mean error %v; bad track not down-weighted", mean)
	}
}

func TestProfileGradeAt(t *testing.T) {
	p := &Profile{
		SpacingM: 10,
		S:        []float64{0, 10, 20},
		GradeRad: []float64{0.01, 0.02, 0.03},
		Var:      []float64{1, 1, 1},
	}
	tests := []struct {
		s, want float64
	}{
		{-5, 0.01}, {0, 0.01}, {9, 0.02}, {14, 0.02}, {20, 0.03}, {999, 0.03},
	}
	for _, tt := range tests {
		if got := p.GradeAt(tt.s); got != tt.want {
			t.Errorf("GradeAt(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
	empty := &Profile{SpacingM: 1}
	if empty.GradeAt(5) != 0 {
		t.Error("empty profile should return 0")
	}
}

func TestFuseProfiles(t *testing.T) {
	a := &Profile{SpacingM: 5, S: []float64{0, 5}, GradeRad: []float64{0.02, 0.02}, Var: []float64{1e-4, 1e-4}}
	b := &Profile{SpacingM: 5, S: []float64{0, 5}, GradeRad: []float64{0.04, 0.04}, Var: []float64{1e-4, 1e-4}}
	fused, err := FuseProfiles([]*Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fused.S {
		if math.Abs(fused.GradeRad[i]-0.03) > 1e-12 {
			t.Errorf("equal-variance fusion should average: %v", fused.GradeRad[i])
		}
		if math.Abs(fused.Var[i]-5e-5) > 1e-12 {
			t.Errorf("fused variance = %v, want 5e-5", fused.Var[i])
		}
	}
	// Weighted: second profile much more certain.
	b2 := &Profile{SpacingM: 5, S: []float64{0, 5}, GradeRad: []float64{0.04, 0.04}, Var: []float64{1e-6, 1e-6}}
	fused2, err := FuseProfiles([]*Profile{a, b2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fused2.GradeRad[0]-0.04) > 0.001 {
		t.Errorf("low-variance profile should dominate: %v", fused2.GradeRad[0])
	}
	// Errors.
	if _, err := FuseProfiles(nil); err == nil {
		t.Error("no profiles should error")
	}
	if _, err := FuseProfiles([]*Profile{a, {SpacingM: 3, S: []float64{0}, GradeRad: []float64{0}, Var: []float64{1}}}); err == nil {
		t.Error("mismatched spacing should error")
	}
	if _, err := FuseProfiles([]*Profile{{}}); err == nil {
		t.Error("empty profile should error")
	}
}

func TestFuseProfilesDifferentLengths(t *testing.T) {
	a := &Profile{SpacingM: 5, S: []float64{0, 5, 10}, GradeRad: []float64{0.01, 0.01, 0.01}, Var: []float64{1e-4, 1e-4, 1e-4}}
	b := &Profile{SpacingM: 5, S: []float64{0, 5}, GradeRad: []float64{0.03, 0.03}, Var: []float64{1e-4, 1e-4}}
	fused, err := FuseProfiles([]*Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Len() != 3 {
		t.Fatalf("fused len = %d, want 3", fused.Len())
	}
	if math.Abs(fused.GradeRad[0]-0.02) > 1e-12 {
		t.Errorf("overlap cell = %v, want average", fused.GradeRad[0])
	}
	if math.Abs(fused.GradeRad[2]-0.01) > 1e-12 {
		t.Errorf("tail cell = %v, want sole contributor", fused.GradeRad[2])
	}
}

// Property: the fused estimate is a convex combination — it lies within the
// min/max of contributing track values at each cell (where all cover it).
func TestFusionConvexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := func(s float64) float64 { return 0.02 * math.Sin(s/90) }
		var tracks []*core.Track
		k := 2 + rng.Intn(3)
		for i := 0; i < k; i++ {
			tracks = append(tracks, syntheticTrack(rng, sensors.SourceGPS, 300,
				0.002+rng.Float64()*0.02, truth))
		}
		prof, err := FuseTracks(tracks, 10, 300)
		if err != nil {
			return false
		}
		// Recompute per-cell min/max from raw tracks.
		for c := 0; c < prof.Len(); c++ {
			s := prof.S[c]
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, tr := range tracks {
				// cell average of the track in [s-5, s+5)
				var sum float64
				var n int
				for i := range tr.S {
					if math.Abs(tr.S[i]-s) <= 5 {
						sum += tr.GradeRad[i]
						n++
					}
				}
				if n == 0 {
					continue
				}
				m := sum / float64(n)
				lo = math.Min(lo, m)
				hi = math.Max(hi, m)
			}
			if prof.GradeRad[c] < lo-0.01 || prof.GradeRad[c] > hi+0.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: fused variance never exceeds the smallest contributing variance.
func TestFusionVarianceShrinksProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tracks []*core.Track
		minVar := math.Inf(1)
		for i := 0; i < 3; i++ {
			sigma := 0.005 + rng.Float64()*0.01
			tracks = append(tracks, syntheticTrack(rng, sensors.SourceGPS, 200, sigma, flatTruth))
		}
		prof, err := FuseTracks(tracks, 10, 200)
		if err != nil {
			return false
		}
		// Recompute the per-cell min variance *after* calibration is
		// unknown; use the raw min as a generous upper bound times the
		// possible calibration inflation. The invariant tested here is
		// simply that fused variance is below the largest track variance.
		maxVar := 0.0
		for _, tr := range tracks {
			for _, v := range tr.Var {
				maxVar = math.Max(maxVar, v)
				minVar = math.Min(minVar, v)
			}
		}
		for _, v := range prof.Var {
			if v > maxVar {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFuseTracks(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	truth := func(s float64) float64 { return 0.03 * math.Sin(s/120) }
	var tracks []*core.Track
	for _, src := range sensors.AllSources() {
		tracks = append(tracks, syntheticTrack(rng, src, 2000, 0.01, truth))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FuseTracks(tracks, 5, 2000); err != nil {
			b.Fatal(err)
		}
	}
}
