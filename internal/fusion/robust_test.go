package fusion

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticProfile builds a submission over a sine-wave truth grade: truth
// plus the device's additive bias plus zero-mean noise of the given sigma,
// reported at variance sigma².
func syntheticProfile(cells int, spacing, bias, sigma float64, rng *rand.Rand) *Profile {
	p := &Profile{
		SpacingM: spacing,
		S:        make([]float64, cells),
		GradeRad: make([]float64, cells),
		Var:      make([]float64, cells),
	}
	for i := 0; i < cells; i++ {
		p.S[i] = float64(i) * spacing
		p.GradeRad[i] = 0.03*math.Sin(float64(i)/10) + bias + sigma*rng.NormFloat64()
		p.Var[i] = sigma * sigma
	}
	return p
}

// TestRobustNaivePolicyBitIdentical is the PR 7 equivalence property: under
// PolicyNaive (reputations all starting at 1.0 — and in fact ignored
// entirely, so the property holds for any reputation history), the robust
// accumulator's fused output is bit-identical (Float64bits) to batch
// FuseProfiles over the retained window, across eviction windows 0/1/3/8.
// Exercised both with per-device state attached and with anonymous
// submissions.
func TestRobustNaivePolicyBitIdentical(t *testing.T) {
	for _, withDevices := range []bool{false, true} {
		for _, window := range []int{0, 1, 3, 8} {
			rng := rand.New(rand.NewSource(42))
			acc := NewRobustAccumulator(window, FusionPolicy{Policy: PolicyNaive})
			devices := make([]*DeviceState, 4)
			for i := range devices {
				devices[i] = NewDeviceState()
			}
			var all []*Profile
			for i := 0; i < 120; i++ {
				p := randomProfile(rng, 5)
				var dev *DeviceState
				if withDevices {
					dev = devices[i%len(devices)]
				}
				if err := acc.AddDevice(p, dev); err != nil {
					t.Fatalf("window %d add %d: %v", window, i, err)
				}
				all = append(all, p)
				retained := all
				if window > 0 && len(retained) > window {
					retained = retained[len(retained)-window:]
				}
				want, err := FuseProfiles(retained)
				if err != nil {
					t.Fatalf("window %d batch fuse: %v", window, err)
				}
				got, err := acc.Fused()
				if err != nil {
					t.Fatalf("window %d robust fuse: %v", window, err)
				}
				if !bitIdentical(got, want) {
					t.Fatalf("devices=%v window %d after %d adds: naive robust fuse diverged from batch",
						withDevices, window, i+1)
				}
			}
		}
	}
}

// TestRobustBoundedInfluence: once a cell has consensus, one adversarial
// device — arbitrarily wrong and arbitrarily overconfident — moves any fused
// cell by at most the policy's clamp bound, for fleets of N honest devices.
func TestRobustBoundedInfluence(t *testing.T) {
	const cells = 60
	for _, policy := range []Policy{PolicyHuber, PolicyTrimmed} {
		for _, n := range []int{3, 10, 100} {
			pol := FusionPolicy{Policy: policy}.WithDefaults()
			acc := NewRobustAccumulator(0, pol)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < n; i++ {
				if err := acc.AddDevice(syntheticProfile(cells, 5, 0, 0.002, rng), NewDeviceState()); err != nil {
					t.Fatal(err)
				}
			}
			before, err := acc.Fused()
			if err != nil {
				t.Fatal(err)
			}
			// Adversary: hugely wrong grade at absurdly overconfident
			// (tiny) reported variance, so naive fusion would hand it
			// nearly all the weight.
			adv := syntheticProfile(cells, 5, 0, 0.002, rng)
			for c := range adv.GradeRad {
				adv.GradeRad[c] = 0.5
				adv.Var[c] = 1e-9
			}
			if err := acc.AddDevice(adv, NewDeviceState()); err != nil {
				t.Fatal(err)
			}
			after, err := acc.Fused()
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < cells; c++ {
				if d := math.Abs(after.GradeRad[c] - before.GradeRad[c]); d > pol.ClampRad+1e-12 {
					t.Fatalf("policy %s N=%d cell %d moved %.4f rad > clamp %.4f",
						policy, n, c, d, pol.ClampRad)
				}
			}
			// Sanity: naive fusion with the same inputs is NOT bounded —
			// the overconfident adversary captures the cell.
			if policy == PolicyHuber && n == 10 {
				naive := NewRobustAccumulator(0, FusionPolicy{Policy: PolicyNaive})
				rng2 := rand.New(rand.NewSource(7))
				for i := 0; i < n; i++ {
					_ = naive.Add(syntheticProfile(cells, 5, 0, 0.002, rng2))
				}
				nb, _ := naive.Fused()
				_ = naive.Add(adv)
				na, _ := naive.Fused()
				moved := math.Abs(na.GradeRad[10] - nb.GradeRad[10])
				if moved < 0.1 {
					t.Fatalf("naive fusion should be captured by the adversary, moved only %.4f rad", moved)
				}
			}
		}
	}
}

// TestRobustDeterministic: the robust path must stay bit-reproducible — the
// same submission/device sequence yields the bit-identical map, including
// across windowed evictions (frozen weights make rebuilds pure additions).
func TestRobustDeterministic(t *testing.T) {
	for _, window := range []int{3, 8, 0} {
		run := func() *Profile {
			rng := rand.New(rand.NewSource(99))
			acc := NewRobustAccumulator(window, FusionPolicy{Policy: PolicyHuber})
			devs := []*DeviceState{NewDeviceState(), NewDeviceState(), NewDeviceState()}
			for i := 0; i < 60; i++ {
				bias := 0.0
				if i%3 == 2 {
					bias = 0.08 // one misbehaving device in the rotation
				}
				p := syntheticProfile(40, 5, bias, 0.004, rng)
				if err := acc.AddDevice(p, devs[i%3]); err != nil {
					t.Fatal(err)
				}
			}
			f, err := acc.Fused()
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
		a, b := run(), run()
		if !bitIdentical(a, b) {
			t.Fatalf("window %d: robust fusion is not deterministic", window)
		}
	}
}

// TestDeviceReputationHysteresis: disagreement demotes a device's reputation
// quickly; sustained agreement recovers it, but strictly more slowly than the
// fall (hysteresis), and never below the floor.
func TestDeviceReputationHysteresis(t *testing.T) {
	const cells = 40
	rng := rand.New(rand.NewSource(5))
	acc := NewRobustAccumulator(0, FusionPolicy{Policy: PolicyTrimmed})
	honest := []*DeviceState{NewDeviceState(), NewDeviceState(), NewDeviceState()}
	for i := 0; i < 6; i++ {
		if err := acc.AddDevice(syntheticProfile(cells, 5, 0, 0.004, rng), honest[i%3]); err != nil {
			t.Fatal(err)
		}
	}
	bad := NewDeviceState()
	// Zero-mean, large, alternating-sign disagreement: every cell is an
	// outlier but the mean residual is ~0, so the bias estimator cannot
	// "explain" it and reputation must take the hit.
	badProfile := func() *Profile {
		p := syntheticProfile(cells, 5, 0, 0.004, rng)
		for c := range p.GradeRad {
			off := 0.1
			if c%2 == 1 {
				off = -0.1
			}
			p.GradeRad[c] += off
		}
		return p
	}
	drops := 0
	for bad.Reputation > 0.2 {
		if err := acc.AddDevice(badProfile(), bad); err != nil {
			t.Fatal(err)
		}
		// Keep the consensus anchored by honest traffic.
		if err := acc.AddDevice(syntheticProfile(cells, 5, 0, 0.004, rng), honest[drops%3]); err != nil {
			t.Fatal(err)
		}
		drops++
		if drops > 20 {
			t.Fatalf("reputation did not drop below 0.2 after %d bad submissions (now %.3f)", drops, bad.Reputation)
		}
	}
	if drops > 8 {
		t.Fatalf("demotion too slow: %d submissions to fall below 0.2", drops)
	}
	if bad.LastAgreement > 0.3 {
		t.Errorf("LastAgreement = %.2f after persistent disagreement, want low", bad.LastAgreement)
	}
	if math.Abs(bad.BiasRad) > 0.02 {
		t.Errorf("zero-mean disagreement leaked into bias estimate: %.4f rad", bad.BiasRad)
	}

	// Rehabilitation: honest submissions from the demoted device.
	recoveries := 0
	for bad.Reputation < 0.9 {
		if err := acc.AddDevice(syntheticProfile(cells, 5, 0, 0.004, rng), bad); err != nil {
			t.Fatal(err)
		}
		recoveries++
		if recoveries > 60 {
			t.Fatalf("reputation did not recover above 0.9 after %d honest submissions (now %.3f)", recoveries, bad.Reputation)
		}
	}
	if recoveries <= drops {
		t.Errorf("no hysteresis: recovery (%d submissions) not slower than demotion (%d)", recoveries, drops)
	}
	if bad.Downweighted == 0 {
		t.Error("Downweighted counter never incremented for a misbehaving device")
	}
}

// TestDeviceBiasConvergence: a systematically miscalibrated (but otherwise
// honest) device has its additive offset learned from consensus residuals and
// subtracted, so its agreement — and usefulness — recovers.
func TestDeviceBiasConvergence(t *testing.T) {
	const cells, trueBias = 40, 0.05
	rng := rand.New(rand.NewSource(11))
	acc := NewRobustAccumulator(0, FusionPolicy{Policy: PolicyHuber})
	honest := []*DeviceState{NewDeviceState(), NewDeviceState(), NewDeviceState()}
	for i := 0; i < 6; i++ {
		if err := acc.AddDevice(syntheticProfile(cells, 5, 0, 0.004, rng), honest[i%3]); err != nil {
			t.Fatal(err)
		}
	}
	dev := NewDeviceState()
	for i := 0; i < 25; i++ {
		if err := acc.AddDevice(syntheticProfile(cells, 5, trueBias, 0.004, rng), dev); err != nil {
			t.Fatal(err)
		}
		if err := acc.AddDevice(syntheticProfile(cells, 5, 0, 0.004, rng), honest[i%3]); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(dev.BiasRad-trueBias) > 0.01 {
		t.Errorf("learned bias %.4f rad, want ≈ %.2f", dev.BiasRad, trueBias)
	}
	if dev.LastAgreement < 0.8 {
		t.Errorf("agreement %.2f after bias correction, want ≥ 0.8", dev.LastAgreement)
	}
	if dev.Reputation < 0.5 {
		t.Errorf("reputation %.2f: bias-corrected device should rehabilitate", dev.Reputation)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"naive", "huber", "trimmed"} {
		fp, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if string(fp.Policy) != name {
			t.Errorf("ParsePolicy(%q).Policy = %q", name, fp.Policy)
		}
		if fp.HuberK != 1.2 || fp.TrimZ != 3.0 || fp.ClampRad != 0.01 || fp.MinConsensus != 3 {
			t.Errorf("ParsePolicy(%q) defaults not applied: %+v", name, fp)
		}
	}
	if _, err := ParsePolicy("median"); err == nil {
		t.Error("unknown policy should error")
	}
	if (FusionPolicy{}).WithDefaults().Policy != PolicyNaive {
		t.Error("zero-value policy should default to naive")
	}
	if (FusionPolicy{Policy: PolicyHuber}).Robust() != true || (FusionPolicy{}).Robust() {
		t.Error("Robust() misclassifies policies")
	}
}

func TestRobustAccumulatorValidation(t *testing.T) {
	acc := NewRobustAccumulator(4, FusionPolicy{Policy: PolicyHuber})
	if _, err := acc.Fused(); err == nil {
		t.Error("empty accumulator should refuse to fuse")
	}
	if err := acc.Add(nil); err == nil {
		t.Error("nil profile should error")
	}
	if err := acc.Add(&Profile{SpacingM: 5}); err == nil {
		t.Error("empty profile should error")
	}
	p := randomProfile(rand.New(rand.NewSource(1)), 5)
	if err := acc.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(randomProfile(rand.New(rand.NewSource(2)), 3)); err == nil {
		t.Error("spacing mismatch should error")
	}
	if acc.Len() != 1 {
		t.Errorf("rejected profile must not be retained: Len = %d", acc.Len())
	}
	if acc.Spacing() != 5 {
		t.Errorf("Spacing = %v, want 5", acc.Spacing())
	}
	if got := acc.Policy().Policy; got != PolicyHuber {
		t.Errorf("Policy() = %q", got)
	}
}
