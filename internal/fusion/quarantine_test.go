package fusion

import (
	"math"
	"math/rand"
	"testing"

	"roadgrade/internal/core"
	"roadgrade/internal/sensors"
)

func TestCheckTrack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	good := syntheticTrack(rng, sensors.SourceGPS, 300, 0.01, flatTruth)
	if err := CheckTrack(good); err != nil {
		t.Fatalf("healthy track rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*core.Track)
	}{
		{"nil", func(tr *core.Track) { *tr = core.Track{} }},
		{"nan-grade", func(tr *core.Track) { tr.GradeRad[10] = math.NaN() }},
		{"inf-s", func(tr *core.Track) { tr.S[0] = math.Inf(1) }},
		{"zero-var", func(tr *core.Track) { tr.Var[3] = 0 }},
		{"negative-var", func(tr *core.Track) { tr.Var[3] = -1 }},
		{"length-mismatch", func(tr *core.Track) { tr.Var = tr.Var[:len(tr.Var)-1] }},
		{"implausible-grade", func(tr *core.Track) {
			for i := range tr.GradeRad {
				tr.GradeRad[i] = 1.2 // ~69°, everywhere
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			tr := syntheticTrack(rng, sensors.SourceGPS, 300, 0.01, flatTruth)
			tc.mutate(tr)
			if err := CheckTrack(tr); err == nil {
				t.Error("degenerate track passed health check")
			}
		})
	}
}

// TestQuarantineMatchesCleanFusion is the fusion acceptance criterion: fusing
// two clean tracks plus one deliberately corrupted track must match the clean
// two-track fusion within 0.1° mean absolute grade error — the corrupted
// source is quarantined, not averaged in.
func TestQuarantineMatchesCleanFusion(t *testing.T) {
	truth := func(s float64) float64 { return 0.02 * math.Sin(s/150) }
	const lengthM = 900
	a := syntheticTrack(rand.New(rand.NewSource(10)), sensors.SourceGPS, lengthM, 0.008, truth)
	b := syntheticTrack(rand.New(rand.NewSource(11)), sensors.SourceCANBus, lengthM, 0.005, truth)
	clean, err := FuseTracks([]*core.Track{a, b}, 5, lengthM)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := syntheticTrack(rand.New(rand.NewSource(12)), sensors.SourceAccelerometer, lengthM, 0.005, truth)
	for i := range corrupt.GradeRad {
		if i%3 == 0 {
			corrupt.GradeRad[i] = math.NaN()
		}
	}
	fused, reports, err := FuseTracksReport([]*core.Track{a, corrupt, b}, 5, lengthM)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[1].Quarantined {
		t.Fatal("corrupted track was not quarantined")
	}
	if reports[0].Quarantined || reports[2].Quarantined {
		t.Fatal("healthy track was quarantined")
	}
	if fused.Len() != clean.Len() {
		t.Fatalf("profile lengths differ: %d vs %d", fused.Len(), clean.Len())
	}
	var mae float64
	for i := range fused.GradeRad {
		if math.IsNaN(fused.GradeRad[i]) || math.IsInf(fused.GradeRad[i], 0) {
			t.Fatalf("non-finite fused grade at %d", i)
		}
		mae += math.Abs(fused.GradeRad[i] - clean.GradeRad[i])
	}
	mae = mae / float64(fused.Len()) * 180 / math.Pi
	if mae > 0.1 {
		t.Errorf("fusion with corrupted track deviates %.3f° MAE from clean fusion, want ≤ 0.1°", mae)
	}
}

func TestFuseTracksAllQuarantinedErrors(t *testing.T) {
	bad := syntheticTrack(rand.New(rand.NewSource(13)), sensors.SourceGPS, 100, 0.01, flatTruth)
	for i := range bad.GradeRad {
		bad.GradeRad[i] = math.NaN()
	}
	if _, err := FuseTracks([]*core.Track{bad, {}}, 5, 100); err == nil {
		t.Error("fusion with no healthy tracks should error")
	}
}
