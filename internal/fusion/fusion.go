// Package fusion implements the track fusion stage of §III-C3: the basic
// convex combination algorithm of Eq. (6), applied per road position across
// gradient tracks from different velocity sources, and again at the cloud
// level across vehicles.
package fusion

import (
	"errors"
	"fmt"
	"math"
	"time"

	"roadgrade/internal/core"
	"roadgrade/internal/obs"
	"roadgrade/internal/sensors"
)

// Fusion instrumentation: how many tracks survived to be fused, how many
// were quarantined (broken down by the CheckTrack verdict category), and how
// long a fuse takes. Quarantine counters are pre-created per category so the
// fuse path never builds label strings.
var (
	obsFuseSeconds = obs.Default.Histogram("fusion_fuse_seconds", obs.LatencyBuckets)
	obsFusedTracks = obs.Default.Counter("fusion_tracks_fused_total")

	obsQuarantined = map[string]*obs.Counter{
		reasonEmpty:       obs.Default.Counter("fusion_tracks_quarantined_total", obs.L("reason", reasonEmpty)),
		reasonLayout:      obs.Default.Counter("fusion_tracks_quarantined_total", obs.L("reason", reasonLayout)),
		reasonNonFinite:   obs.Default.Counter("fusion_tracks_quarantined_total", obs.L("reason", reasonNonFinite)),
		reasonVariance:    obs.Default.Counter("fusion_tracks_quarantined_total", obs.L("reason", reasonVariance)),
		reasonImplausible: obs.Default.Counter("fusion_tracks_quarantined_total", obs.L("reason", reasonImplausible)),
	}
)

// Quarantine verdict categories (the reason label of
// fusion_tracks_quarantined_total).
const (
	reasonEmpty       = "empty"
	reasonLayout      = "layout"
	reasonNonFinite   = "non_finite"
	reasonVariance    = "bad_variance"
	reasonImplausible = "implausible_grade"
)

// Profile is a fused road-gradient profile on a regular arc-length grid.
type Profile struct {
	// SpacingM is the grid spacing.
	SpacingM float64
	// S are the grid positions, GradeRad the fused θ̄, Var the fused
	// variance U of Eq. (6b).
	S        []float64
	GradeRad []float64
	Var      []float64
}

// Len returns the number of grid points.
func (p *Profile) Len() int { return len(p.S) }

// GradeAt returns the fused gradient at arc length s (nearest grid point).
func (p *Profile) GradeAt(s float64) float64 {
	if len(p.S) == 0 {
		return 0
	}
	idx := int(math.Round(s / p.SpacingM))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(p.S) {
		idx = len(p.S) - 1
	}
	return p.GradeRad[idx]
}

// gridded is one track resampled onto the fusion grid.
type gridded struct {
	grade []float64
	vari  []float64
	valid []bool
}

// resample averages a track's samples into grid cells.
func resample(t *core.Track, spacing float64, cells int) gridded {
	g := gridded{
		grade: make([]float64, cells),
		vari:  make([]float64, cells),
		valid: make([]bool, cells),
	}
	counts := make([]int, cells)
	for i := range t.S {
		idx := int(math.Round(t.S[i] / spacing))
		if idx < 0 || idx >= cells {
			continue
		}
		g.grade[idx] += t.GradeRad[i]
		g.vari[idx] += t.Var[i]
		counts[idx]++
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		g.grade[i] /= float64(c)
		g.vari[i] /= float64(c)
		g.valid[i] = true
	}
	// Fill small gaps by carrying the previous cell forward so sparse
	// sources (e.g. a slow track) still contribute.
	for i := 1; i < cells; i++ {
		if !g.valid[i] && g.valid[i-1] {
			g.grade[i] = g.grade[i-1]
			g.vari[i] = g.vari[i-1] * 1.5 // inflate carried-forward variance
			g.valid[i] = true
		}
	}
	return g
}

// maxPlausibleGradeRad bounds a believable road grade estimate (≈34°);
// tracks spending a real fraction of their samples beyond it are degenerate.
const maxPlausibleGradeRad = 0.6

// TrackReport is the health verdict for one input track of a fusion call.
type TrackReport struct {
	Index       int
	Source      sensors.VelocitySource
	Quarantined bool
	Reason      string
}

// CheckTrack returns nil for a healthy track, or the reason it must be
// quarantined: empty or inconsistent layout, non-finite samples, non-positive
// variance, or an implausible grade profile.
func CheckTrack(t *core.Track) error {
	_, err := checkTrackReason(t)
	return err
}

// checkTrackReason is CheckTrack plus the coarse verdict category used as the
// quarantine metric's reason label.
func checkTrackReason(t *core.Track) (string, error) {
	if t == nil || t.Len() == 0 {
		return reasonEmpty, errors.New("empty track")
	}
	n := t.Len()
	if len(t.S) != n || len(t.GradeRad) != n || len(t.Var) != n {
		return reasonLayout, fmt.Errorf("inconsistent lengths T=%d S=%d grade=%d var=%d",
			n, len(t.S), len(t.GradeRad), len(t.Var))
	}
	implausible := 0
	for i := 0; i < n; i++ {
		if !finite(t.S[i]) || !finite(t.GradeRad[i]) || !finite(t.Var[i]) {
			return reasonNonFinite, fmt.Errorf("non-finite sample at %d", i)
		}
		if t.Var[i] <= 0 {
			return reasonVariance, fmt.Errorf("non-positive variance %v at %d", t.Var[i], i)
		}
		if math.Abs(t.GradeRad[i]) > maxPlausibleGradeRad {
			implausible++
		}
	}
	if frac := float64(implausible) / float64(n); frac > 0.02 {
		return reasonImplausible, fmt.Errorf("implausible grade (|θ| > %.2f rad) on %.0f%% of samples",
			maxPlausibleGradeRad, frac*100)
	}
	return "", nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// FuseTracks combines gradient tracks with the basic convex combination of
// Eq. (6):
//
//	θ̄ = U Σ_k P_k⁻¹ θ_k,   U = (Σ_k P_k⁻¹)⁻¹
//
// evaluated per grid cell of the given spacing over [0, lengthM].
//
// P_k is the k-th track's estimation error covariance. The filter-reported
// variance understates the error of tracks with model mismatch (e.g. lag on
// sparse GPS updates), so before combining, each track's variance is
// calibrated against the cross-track consensus: two rounds of estimating the
// consensus profile and rescaling each track's P_k to its empirical deviation
// variance. This keeps the Eq. (6) form while making the weights reflect
// realized track quality.
//
// Degenerate tracks (NaN samples, zero variance, implausible grades — see
// CheckTrack) are quarantined rather than fused, so one corrupted velocity
// source degrades the result to the surviving tracks instead of poisoning the
// consensus; FuseTracksReport exposes the verdicts. Fusing fails only when no
// healthy track remains.
func FuseTracks(tracks []*core.Track, spacingM, lengthM float64) (*Profile, error) {
	prof, _, err := FuseTracksReport(tracks, spacingM, lengthM)
	return prof, err
}

// FuseTracksReport is FuseTracks returning the per-track health verdicts
// alongside the fused profile.
func FuseTracksReport(tracks []*core.Track, spacingM, lengthM float64) (*Profile, []TrackReport, error) {
	sp := obs.DefaultTracer.Start("fusion.fuse_tracks", "fusion")
	defer sp.End()
	start := time.Now()
	if len(tracks) == 0 {
		return nil, nil, errors.New("fusion: no tracks")
	}
	if spacingM <= 0 {
		return nil, nil, fmt.Errorf("fusion: invalid spacing %v", spacingM)
	}
	if lengthM <= 0 {
		return nil, nil, fmt.Errorf("fusion: invalid length %v", lengthM)
	}
	reports := make([]TrackReport, len(tracks))
	var healthy []*core.Track
	for i, t := range tracks {
		reports[i] = TrackReport{Index: i}
		if t != nil {
			reports[i].Source = t.Source
		}
		if category, err := checkTrackReason(t); err != nil {
			reports[i].Quarantined = true
			reports[i].Reason = err.Error()
			obsQuarantined[category].Inc()
			continue
		}
		healthy = append(healthy, t)
	}
	obsFusedTracks.Add(uint64(len(healthy)))
	if len(healthy) == 0 {
		return nil, reports, fmt.Errorf("fusion: no healthy tracks (%d quarantined, e.g. track %d: %s)",
			len(tracks), reports[0].Index, reports[0].Reason)
	}
	cells := int(lengthM/spacingM) + 1
	gs := make([]gridded, len(healthy))
	for i, t := range healthy {
		gs[i] = resample(t, spacingM, cells)
	}
	calibrateVariances(gs, cells)
	prof := &Profile{
		SpacingM: spacingM,
		S:        make([]float64, cells),
		GradeRad: make([]float64, cells),
		Var:      make([]float64, cells),
	}
	for c := 0; c < cells; c++ {
		prof.S[c] = float64(c) * spacingM
		var sumInv, sumWeighted float64
		for _, g := range gs {
			if !g.valid[c] || g.vari[c] <= 0 {
				continue
			}
			inv := 1 / g.vari[c]
			sumInv += inv
			sumWeighted += inv * g.grade[c]
		}
		if sumInv == 0 {
			// No track covers this cell; carry forward.
			if c > 0 {
				prof.GradeRad[c] = prof.GradeRad[c-1]
				prof.Var[c] = prof.Var[c-1]
			}
			continue
		}
		u := 1 / sumInv // Eq. (6b)
		prof.GradeRad[c] = u * sumWeighted
		prof.Var[c] = u
	}
	obsFuseSeconds.Observe(time.Since(start).Seconds())
	return prof, reports, nil
}

// calibrateVariances rescales each gridded track's variance to its empirical
// deviation variance around the current consensus, iterating twice so the
// consensus itself improves once bad tracks are down-weighted. With a single
// track there is no cross information and the variances are left untouched.
func calibrateVariances(gs []gridded, cells int) {
	if len(gs) < 2 {
		return
	}
	const iterations = 2
	for iter := 0; iter < iterations; iter++ {
		// Consensus per cell under current weights.
		consensus := make([]float64, cells)
		ok := make([]bool, cells)
		for c := 0; c < cells; c++ {
			var sumInv, sumW float64
			for _, g := range gs {
				if !g.valid[c] || g.vari[c] <= 0 {
					continue
				}
				inv := 1 / g.vari[c]
				sumInv += inv
				sumW += inv * g.grade[c]
			}
			if sumInv > 0 {
				consensus[c] = sumW / sumInv
				ok[c] = true
			}
		}
		// Empirical deviation variance per track, then rescale.
		for i := range gs {
			var sum float64
			var n int
			for c := 0; c < cells; c++ {
				if !ok[c] || !gs[i].valid[c] {
					continue
				}
				d := gs[i].grade[c] - consensus[c]
				sum += d * d
				n++
			}
			if n < 10 {
				continue
			}
			emp := sum / float64(n)
			var meanVar float64
			for c := 0; c < cells; c++ {
				if gs[i].valid[c] {
					meanVar += gs[i].vari[c]
				}
			}
			meanVar /= float64(n)
			if meanVar <= 0 || emp <= 0 {
				continue
			}
			// Never deflate below the filter's own assessment: the
			// consensus deviation underestimates the error of the best
			// track (it dominates the consensus).
			scale := math.Max(1, emp/meanVar)
			for c := 0; c < cells; c++ {
				gs[i].vari[c] *= scale
			}
		}
	}
}

// FuseProfiles combines already-fused profiles from multiple vehicles (the
// cloud stage: "the cloud can use the track fusion algorithm to fuse road
// gradient results from different vehicles"). All profiles must share the
// grid spacing; the result covers the longest profile.
func FuseProfiles(profiles []*Profile) (*Profile, error) {
	obsProfileFuses.Inc()
	if len(profiles) == 0 {
		return nil, errors.New("fusion: no profiles")
	}
	spacing := profiles[0].SpacingM
	cells := 0
	for i, p := range profiles {
		if p == nil || p.Len() == 0 {
			return nil, fmt.Errorf("fusion: profile %d is empty", i)
		}
		if math.Abs(p.SpacingM-spacing) > 1e-9 {
			return nil, fmt.Errorf("fusion: profile %d spacing %v != %v", i, p.SpacingM, spacing)
		}
		if p.Len() > cells {
			cells = p.Len()
		}
	}
	out := &Profile{
		SpacingM: spacing,
		S:        make([]float64, cells),
		GradeRad: make([]float64, cells),
		Var:      make([]float64, cells),
	}
	for c := 0; c < cells; c++ {
		out.S[c] = float64(c) * spacing
		var sumInv, sumWeighted float64
		for _, p := range profiles {
			if c >= p.Len() || p.Var[c] <= 0 {
				continue
			}
			inv := 1 / p.Var[c]
			sumInv += inv
			sumWeighted += inv * p.GradeRad[c]
		}
		if sumInv == 0 {
			if c > 0 {
				out.GradeRad[c] = out.GradeRad[c-1]
				out.Var[c] = out.Var[c-1]
			}
			continue
		}
		u := 1 / sumInv
		out.GradeRad[c] = u * sumWeighted
		out.Var[c] = u
	}
	return out, nil
}
