package fusion

import (
	"math"
	"math/rand"
	"testing"
)

// randomProfile builds a profile with rng-driven length, grades and
// variances; a few cells get non-positive variance so the FuseProfiles skip
// rule is exercised.
func randomProfile(rng *rand.Rand, spacing float64) *Profile {
	n := 1 + rng.Intn(40)
	p := &Profile{
		SpacingM: spacing,
		S:        make([]float64, n),
		GradeRad: make([]float64, n),
		Var:      make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.S[i] = float64(i) * spacing
		p.GradeRad[i] = 0.1 * (rng.Float64() - 0.5)
		p.Var[i] = 1e-5 + 1e-3*rng.Float64()
		if rng.Intn(20) == 0 {
			p.Var[i] = 0 // uncovered cell: batch fuse skips it
		}
	}
	return p
}

// bitIdentical reports whether two profiles match bit-for-bit (NaN-safe).
func bitIdentical(a, b *Profile) bool {
	if a.SpacingM != b.SpacingM || a.Len() != b.Len() {
		return false
	}
	for i := range a.S {
		if math.Float64bits(a.S[i]) != math.Float64bits(b.S[i]) ||
			math.Float64bits(a.GradeRad[i]) != math.Float64bits(b.GradeRad[i]) ||
			math.Float64bits(a.Var[i]) != math.Float64bits(b.Var[i]) {
			return false
		}
	}
	return true
}

// TestAccumulatorMatchesBatchFuse is the equivalence property test: after
// every Add — through growth, uncovered cells and windowed eviction — the
// accumulator's fused output must be bit-identical to batch FuseProfiles over
// the retained window.
func TestAccumulatorMatchesBatchFuse(t *testing.T) {
	for _, window := range []int{0, 1, 3, 8, 64} {
		rng := rand.New(rand.NewSource(42))
		acc := NewAccumulator(window)
		var all []*Profile
		for i := 0; i < 200; i++ {
			p := randomProfile(rng, 5)
			if err := acc.Add(p); err != nil {
				t.Fatalf("window %d add %d: %v", window, i, err)
			}
			all = append(all, p)
			retained := all
			if window > 0 && len(retained) > window {
				retained = retained[len(retained)-window:]
			}
			if got := acc.Len(); got != len(retained) {
				t.Fatalf("window %d: Len = %d, want %d", window, got, len(retained))
			}
			want, err := FuseProfiles(retained)
			if err != nil {
				t.Fatalf("window %d batch fuse: %v", window, err)
			}
			got, err := acc.Fused()
			if err != nil {
				t.Fatalf("window %d incremental fuse: %v", window, err)
			}
			if !bitIdentical(got, want) {
				t.Fatalf("window %d after %d adds: incremental fuse diverged from batch", window, i+1)
			}
		}
	}
}

func TestAccumulatorValidation(t *testing.T) {
	acc := NewAccumulator(4)
	if _, err := acc.Fused(); err == nil {
		t.Error("empty accumulator should refuse to fuse")
	}
	if err := acc.Add(nil); err == nil {
		t.Error("nil profile should error")
	}
	if err := acc.Add(&Profile{SpacingM: 5}); err == nil {
		t.Error("empty profile should error")
	}
	p := randomProfile(rand.New(rand.NewSource(1)), 5)
	if err := acc.Add(p); err != nil {
		t.Fatal(err)
	}
	q := randomProfile(rand.New(rand.NewSource(2)), 3)
	if err := acc.Add(q); err == nil {
		t.Error("spacing mismatch should error")
	}
	if acc.Len() != 1 {
		t.Errorf("rejected profile must not be retained: Len = %d", acc.Len())
	}
	if acc.Spacing() != 5 {
		t.Errorf("Spacing = %v, want 5", acc.Spacing())
	}
}

func TestAccumulatorWindowShrinksCells(t *testing.T) {
	// A long profile followed by short ones: once the long one is evicted,
	// the fused grid must shrink back to the retained maximum, exactly as a
	// batch fuse over the retained window would.
	long := &Profile{SpacingM: 5, S: make([]float64, 30), GradeRad: make([]float64, 30), Var: make([]float64, 30)}
	for i := range long.S {
		long.S[i] = float64(i) * 5
		long.GradeRad[i] = 0.01
		long.Var[i] = 1e-4
	}
	short := &Profile{SpacingM: 5, S: []float64{0, 5}, GradeRad: []float64{0.02, 0.03}, Var: []float64{1e-4, 1e-4}}
	acc := NewAccumulator(2)
	for _, p := range []*Profile{long, short, short} {
		if err := acc.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := acc.Fused()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("cells = %d after evicting the long profile, want 2", got.Len())
	}
	want, err := FuseProfiles([]*Profile{short, short})
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(got, want) {
		t.Error("post-shrink fuse diverged from batch")
	}
}

func TestAccumulatorFusedIsFresh(t *testing.T) {
	// Fused must hand out independent allocations: mutating one result must
	// not corrupt a later read.
	acc := NewAccumulator(4)
	if err := acc.Add(randomProfile(rand.New(rand.NewSource(3)), 5)); err != nil {
		t.Fatal(err)
	}
	a, _ := acc.Fused()
	b, _ := acc.Fused()
	a.GradeRad[0] = 99
	if b.GradeRad[0] == 99 {
		t.Error("Fused results share backing arrays")
	}
}
